GO ?= go

.PHONY: all build vet test race race-grid bench bench-json fuzz examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/adhoc/... ./internal/word/

# Grid/runner differential tests under the race detector: exercises the
# kinematics cache and the parallel scenario runner concurrently.
race-grid:
	$(GO) test -run=TestGrid -race ./internal/adhoc/...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot (ns/op, B/op, allocs/op for E1-E10
# plus the adhoc scaling suite) for tracking perf across commits.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . ./internal/adhoc/ | $(GO) run ./cmd/benchjson -o BENCH_adhoc.json

# Short fuzzing passes over the parsers and encoders.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/timed/
	$(GO) test -fuzz=FuzzStrRoundTrip -fuzztime=20s ./internal/encoding/
	$(GO) test -fuzz=FuzzRecordRoundTrip -fuzztime=20s ./internal/encoding/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadline
	$(GO) run ./examples/adhoc
	$(GO) run ./examples/rtdb
	$(GO) run ./examples/parallel
	$(GO) run ./examples/automata

experiments:
	$(GO) run ./cmd/rtcheck
	$(GO) run ./cmd/daccsim
	$(GO) run ./cmd/rtdbsim
	$(GO) run ./cmd/adhocsim

clean:
	$(GO) clean ./...
