GO ?= go

.PHONY: all build vet test race race-grid race-rtdb race-net race-repl race-sub race-gc race-shard race-partition bench bench-json fuzz torture torture-short torture-failover torture-shard torture-partition soak-short examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/adhoc/... ./internal/word/

# Grid/runner differential tests under the race detector: exercises the
# kinematics cache and the parallel scenario runner concurrently.
race-grid:
	$(GO) test -run=TestGrid -race ./internal/adhoc/...

# rtdbd server + WAL under the race detector: includes the 64-session
# hammer that asserts the deadline-miss conservation law.
race-rtdb:
	$(GO) test -race ./internal/rtdb/log/ ./internal/rtdb/server/

# The TCP serving layer under the race detector: frame codec, listener,
# client package, and the 32-client loopback hammer that asserts the
# conservation laws end-to-end over the wire, plus the mid-flight drain.
race-net:
	$(GO) test -race ./internal/rtwire/ ./internal/rtdb/netserve/ ./internal/rtdb/client/

# WAL-streaming replication under the race detector: the replica package
# (live tail, catch-up, resync, promotion fencing, auto-promote watchdog)
# plus the torture failover sweep's short configuration.
race-repl:
	$(GO) test -race ./internal/rtdb/replica/
	$(GO) test -race -run=TestFailover ./internal/rtdb/torture/

# Group commit under the race detector: the 64-writer fsync-batching
# hammer (mid-run Sync/CloseWindow antagonist, mid-run Close, goroutine
# leak checks), the window-edge table tests, and the server's ack-barrier
# test that pins "reply only after the covering fsync".
race-gc:
	$(GO) test -race -run='GroupCommit|Group(Window|Single|Firm|Batch|FsyncFailure|Close|Tail|Amortized)|AppendBatch|BatchedShipping' ./internal/rtdb/log/ ./internal/rtdb/server/ ./internal/rtdb/replica/

# Keyspace sharding under the race detector: the 8-shard × 32-writer
# hammer (concurrent routed samples, queries, ticks, and flushes against
# the cross-shard conservation sums), the differential suite that replays
# every sharded run against a single-shard oracle, and the sharded
# failover sweep with its placement-announcing Welcome.
race-shard:
	$(GO) test -race -run='TestRaceShard|TestShard' ./internal/rtdb/server/
	$(GO) test -race -run='TestShard|TestFailoverSharded' ./internal/rtdb/netserve/ ./internal/rtdb/replica/ ./internal/rtdb/torture/

# Standing queries under the race detector: the sub package's queue/table,
# the SUB-xxx conformance suite on both transports, and the 32-subscriber ×
# 4-writer hammer with a mid-flight listener drain and resume.
race-sub:
	$(GO) test -race ./internal/rtdb/sub/ ./internal/rtdb/subspec/

# Full crash-torture sweep: deterministic fault points (power cuts at
# every mutating op, transient EIO / torn writes on every data write,
# snapshot rename failures, the sharded-deployment victim sweep, and the
# concurrent server chaos run) across 3 seeds. Every recovery is checked
# against the deep-equal recovery invariant; a failure prints a
# one-command seed reproduction.
torture:
	$(GO) run ./cmd/rttorture -mode all -seeds 3 -events 90 -v

# Bounded sweep for CI: the torture + faultfs test suites under -race, then
# a single-seed strided sweep of every fault family.
torture-short:
	$(GO) test -race -count=1 ./internal/faultfs/ ./internal/rtdb/torture/
	$(GO) run ./cmd/rttorture -mode all -seeds 1 -events 60 -stride 2

# Full shard sweep: crash one shard's WAL at every fault point of a
# 4-shard deployment — rotating the victim through every shard — while the
# others keep committing. Each point checks the victim's durability bound
# (acked ≤ n ≤ acked+1), exact survivor recovery, the cross-shard
# conservation sum, and that the consistent read horizon never regresses.
torture-shard:
	$(GO) run ./cmd/rttorture -mode shard -seeds 3 -events 160 -v

# Full failover sweep: kill the primary at every WAL fault point, promote
# the replica, and assert the durability bound (acked ≤ survived ≤ acked+1),
# epoch fencing, and the standby conservation law at each point.
torture-failover:
	$(GO) run ./cmd/rttorture -mode failover -seeds 3 -events 90 -v

# Full partition sweep: arm one seeded network fault — a mid-frame cut, a
# silent drop, a corrupted byte, a slow-loris stall, a one- or two-way
# blackhole, or a full primary isolation with mid-partition failover — at
# every fabric write op of a client/primary/replica stack, and check the
# wire invariants at each point: zero lost acked writes, epoch fencing
# against the deposed primary, subscription cursor monotonicity,
# conservation on both sides of the cut, and post-heal liveness. A failing
# point prints its `-seed S -at N` reproduction.
torture-partition:
	$(GO) run ./cmd/rttorture -mode partition -seeds 3 -events 90 -v

# Race-grade wire chaos: 32 clients + 1 replica hammer a primary through a
# chaos-shaped faultnet fabric (split writes, jittered delivery) while a
# fault monkey cuts, stalls, and partitions links at random — every
# watchdog, eviction, redial, and teardown path under the race detector,
# plus the short deterministic sweep and the fabric-driven corruption,
# heartbeat, and client-teardown suites.
race-partition:
	$(GO) test -race -count=1 -run='TestPartitionHammer|TestPartitionSweepShort|TestPartitionPointRepro' ./internal/rtdb/torture/
	$(GO) test -race -count=1 -run='TestCorruptedFrame|TestHeartbeatOneWay' ./internal/rtdb/netserve/
	$(GO) test -race -count=1 -run='TestClose(AfterPartitionCut|DuringSlowLoris)' ./internal/rtdb/client/
	$(GO) test -race -count=1 ./internal/faultnet/

# Flat-latency soak: start a real rtdbd, age it by 60k injected samples
# over TCP, and assert that the late-run serving p99 (as-of reads and
# queries) stays within a small factor of the early-run p99. Catches any
# regression that makes publish or read cost grow with total history.
SOAK_PORT ?= 7693
soak-short:
	$(GO) build -o /tmp/rtdbd-soak ./cmd/rtdbd
	$(GO) build -o /tmp/rtdbload-soak ./cmd/rtdbload
	/tmp/rtdbd-soak -listen 127.0.0.1:$(SOAK_PORT) -sessions 8 & \
	pid=$$!; sleep 1; \
	/tmp/rtdbload-soak -addr 127.0.0.1:$(SOAK_PORT) -soak 60000; rc=$$?; \
	kill $$pid 2>/dev/null; exit $$rc

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot (ns/op, B/op, allocs/op for E1-E10
# plus the adhoc scaling suite) for tracking perf across commits.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . ./internal/adhoc/ | $(GO) run ./cmd/benchjson -o BENCH_adhoc.json
	$(GO) test -run='^$$' -bench=. -benchmem -timeout=30m ./internal/rtdb/log/ ./internal/rtdb/server/ ./internal/rtdb/sub/ ./internal/rtdb/netserve/ ./internal/rtdb/replica/ ./internal/rtdb/torture/ | $(GO) run ./cmd/benchjson -o BENCH_rtdb.json

# Short fuzzing passes over the parsers and encoders.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/timed/
	$(GO) test -fuzz=FuzzStrRoundTrip -fuzztime=20s ./internal/encoding/
	$(GO) test -fuzz=FuzzRecordRoundTrip -fuzztime=20s ./internal/encoding/
	$(GO) test -fuzz=FuzzEventRoundTrip -fuzztime=20s ./internal/rtdb/log/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=20s ./internal/rtdb/log/
	$(GO) test -fuzz=FuzzSegmentRecovery -fuzztime=20s ./internal/rtdb/log/
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=20s ./internal/rtwire/
	$(GO) test -fuzz=FuzzRequestRoundTrip -fuzztime=20s ./internal/rtwire/
	$(GO) test -fuzz=FuzzShardRoute -fuzztime=20s ./internal/rtwire/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadline
	$(GO) run ./examples/adhoc
	$(GO) run ./examples/rtdb
	$(GO) run ./examples/parallel
	$(GO) run ./examples/automata

experiments:
	$(GO) run ./cmd/rtcheck
	$(GO) run ./cmd/daccsim
	$(GO) run ./cmd/rtdbsim
	$(GO) run ./cmd/adhocsim

clean:
	$(GO) clean ./...
