GO ?= go

.PHONY: all build vet test race bench fuzz examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/adhoc/ ./internal/word/

bench:
	$(GO) test -bench=. -benchmem .

# Short fuzzing passes over the parsers and encoders.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/timed/
	$(GO) test -fuzz=FuzzStrRoundTrip -fuzztime=20s ./internal/encoding/
	$(GO) test -fuzz=FuzzRecordRoundTrip -fuzztime=20s ./internal/encoding/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadline
	$(GO) run ./examples/adhoc
	$(GO) run ./examples/rtdb
	$(GO) run ./examples/parallel
	$(GO) run ./examples/automata

experiments:
	$(GO) run ./cmd/rtcheck
	$(GO) run ./cmd/daccsim
	$(GO) run ./cmd/rtdbsim
	$(GO) run ./cmd/adhocsim

clean:
	$(GO) clean ./...
