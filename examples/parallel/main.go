// Parallel/distributed example (§6): processes as goroutines communicating
// by messages, with their behaviour captured as the trace-word tuple
// (c_k·l_k·r_k); the PRAM degenerate case with null message words; and the
// rt-PROC probe — the same data-accumulating workload needs more processors
// as the load grows.
//
//	go run ./examples/parallel
package main

import (
	"fmt"

	"rtc/internal/dacc"
	"rtc/internal/parallel"
	"rtc/internal/word"
)

func main() {
	// --- A 3-process pipeline: each process forwards to the next.
	procs := make([]parallel.Process, 3)
	for k := 0; k < 3; k++ {
		k := k
		procs[k] = parallel.ProcessFunc(func(ctx *parallel.Ctx) {
			for _, m := range ctx.Inbox {
				ctx.Emit(fmt.Sprintf("p%d:%s", k, m.Payload))
				if k < 2 {
					ctx.Send(k+1, m.Payload)
				}
			}
		})
	}
	sys := parallel.NewSystem(procs...)
	sys.Inject(0, "job")
	sys.Run(4)
	for k := 0; k < 3; k++ {
		fmt.Printf("process %d: c=%v l=%v r=%v\n",
			k, sys.CompWord(k), len(sys.SentWord(k)), len(sys.RecvWord(k)))
	}
	fmt.Println("behaviour word of p1:", word.Prefix(sys.BehaviorWord(1), 4))

	// --- PRAM: communication through shared memory, l_k = r_k = ε.
	const p = 4
	sprocs := make([]parallel.SharedProcess, p)
	for k := 0; k < p; k++ {
		k := k
		sprocs[k] = parallel.SharedProcessFunc(func(ctx *parallel.SharedCtx) {
			if ctx.Now == 0 {
				ctx.Write(p+k, ctx.Read(k)*ctx.Read(k)) // square my input
				ctx.Emit("squared")
			} else if ctx.Now == 1 && ctx.ID == 0 {
				var sum int64
				for i := 0; i < p; i++ {
					sum += ctx.Read(p + i)
				}
				ctx.Write(2*p, sum)
			}
		})
	}
	pram := parallel.NewSharedSystem(2*p+1, sprocs...)
	// (inputs seeded through round-0 snapshot: zero here, so demo with the
	// message system above carries the interesting part)
	pram.Run(2)
	fmt.Println("PRAM sum of squares of zeros:", pram.Mem()[2*p])

	// --- rt-PROC: more load, more processors (§7's hierarchy question).
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	for _, n := range []uint64{100, 400, 1200} {
		pmin, ok := parallel.MinProcessorsParallel(law, n, wl, 8, 450)
		fmt.Printf("batch n=%-5d → minimum processors to meet the deadline: %d (ok=%v)\n", n, pmin, ok)
	}
}
