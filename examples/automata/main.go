// Automata example (§2–§3): the ω-automata and timed-automata substrate in
// action — Büchi/Muller acceptance on lasso words, the executable Theorem
// 3.1 / Corollary 3.2 refutations, the timed Büchi automaton that separates
// words by timestamps alone, and the rt-SPACE measurement showing the
// memory that finite-state devices lack.
//
//	go run ./examples/automata
package main

import (
	"fmt"

	"rtc/internal/automata"
	"rtc/internal/complexity"
	"rtc/internal/core"
	"rtc/internal/omega"
	"rtc/internal/timed"
	"rtc/internal/word"
)

func main() {
	// --- Büchi acceptance on lasso ω-words.
	b := omega.NewBuchi([]word.Symbol{"a", "b"}, 2, 0)
	b.AddTrans(0, "a", 1)
	b.AddTrans(0, "b", 0)
	b.AddTrans(1, "a", 1)
	b.AddTrans(1, "b", 0)
	b.SetAccept(1)
	for _, w := range []omega.LassoWord{
		{Cycle: automata.Syms("ab")},
		{Prefix: automata.Syms("aaa"), Cycle: automata.Syms("b")},
	} {
		_, ok := b.AcceptsLasso(w)
		fmt.Printf("infinitely-many-a's automaton on %v: %v\n", w, ok)
	}

	// --- Theorem 3.1: any DFA candidate for L = {a^u b^x c^v d^x} is
	// refuted with a concrete counterexample.
	ce := automata.RefuteL(automata.CandidateOverDFA())
	fmt.Printf("\nTheorem 3.1 witness against a⁺b⁺c⁺d⁺: %q (DFA accepts: %v, in L: %v)\n",
		automata.String(ce.Word), ce.DFAAccepts, ce.InLanguage)

	// --- Corollary 3.2: the Büchi candidate falls to run splicing.
	oce := omega.RefuteLOmega(omega.CandidateShapeBuchi())
	fmt.Printf("Corollary 3.2 witness: %v (accepted: %v, in L_ω: %v)\n",
		oce.Word, oce.BuchiAccepts, oce.InLanguage)

	// --- …while the real-time algorithm (with working storage) decides
	// L_ω, at a measurable linear space cost.
	xs := []int{2, 4, 8, 16}
	prof := complexity.SpaceProfile(xs, 128)
	fmt.Println("\nrt-SPACE profile of the L_ω acceptor (block size → cells):")
	for i, x := range xs {
		fmt.Printf("  x=%-3d → %d\n", x, prof[i])
	}
	m := core.NewMachine(&complexity.LOmegaAcceptor{}, complexity.NonMemberWord(3, 1))
	fmt.Println("on a non-member:", core.RunForVerdict(m, 100))

	// --- Timed automata: same symbols, different timestamps, different
	// verdicts.
	cs := timed.NewClockSet("x")
	tba := timed.NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	tba.AddTrans(0, 0, "a", cs.Le("x", 2), "x")
	tba.SetAccept(0)
	tight := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 2)
	loose := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 3)
	fmt.Printf("\nTBA (gap ≤ 2): period-2 word accepted: %v, period-3: %v\n",
		tba.AcceptsLasso(tight), tba.AcceptsLasso(loose))
	if wit, empty := tba.Empty(); !empty {
		fmt.Println("emptiness witness:", wit.Word)
	}
}
