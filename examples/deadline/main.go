// Deadline example (§4.1): the same computation under no deadline, a firm
// deadline, and a soft deadline with a decaying usefulness function. The
// instance is encoded as a timed ω-word whose input tape makes the deadline
// observable; the two-process acceptor (P_w solving, P_m monitoring)
// decides membership in L(Π).
//
//	go run ./examples/deadline
package main

import (
	"fmt"

	"rtc/internal/automata"
	"rtc/internal/deadline"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func solver() deadline.Solver {
	return &deadline.FuncSolver{
		// Sorting six symbols costs 2 chronons each: P_w finishes at t=11.
		Cost: func(n int) uint64 { return 2 * uint64(n) },
		Solve: func(in []word.Symbol) []word.Symbol {
			out := append([]word.Symbol{}, in...)
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		},
	}
}

func main() {
	base := deadline.Instance{
		Input:    automata.Syms("fedcba"),
		Proposed: automata.Syms("abcdef"),
	}

	// (i) No deadline: correctness is all that matters.
	fmt.Println("no deadline:      ", deadline.Accepts(base, solver(), 200))

	// (ii) Firm deadlines: the verdict flips exactly where the work fits.
	for _, td := range []timeseq.Time{8, 12, 16} {
		inst := base
		inst.Kind = deadline.Firm
		inst.Deadline = td
		inst.MinUseful = 1
		fmt.Printf("firm t_d=%-2d:       %v\n", td, deadline.Accepts(inst, solver(), 200))
	}

	// (iii) Soft deadline: finishing late is fine while usefulness
	// u(t) = max/(t−t_d) stays above the announced minimum.
	inst := base
	inst.Kind = deadline.Soft
	inst.Deadline = 8
	inst.MinUseful = 3
	inst.U = deadline.Hyperbolic(12, 8)
	fmt.Println("soft, min u = 3:  ", deadline.Accepts(inst, solver(), 200))
	inst.MinUseful = 7
	fmt.Println("soft, min u = 7:  ", deadline.Accepts(inst, solver(), 200))

	// The instance word itself, as the acceptor sees it.
	w := base.Word()
	fmt.Println("instance word:    ", word.Prefix(w, 12))
}
