// Real-time database example (§5.1): a live database with a periodically
// sampled image object, a derived object updated by an active rule, and the
// recognition problem of Definition 5.1 — an aperiodic query with a firm
// deadline and a periodic query — run through the real-time algorithm
// acceptor.
//
//	go run ./examples/rtdb
package main

import (
	"fmt"
	"strconv"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
	"rtc/internal/word"
)

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func tempRead(t timeseq.Time) rtdb.Value {
	return strconv.Itoa(20 + int(t)/10) // the simulated physical world
}

func main() {
	// --- The live database: sampling, archival history, active rules.
	sched := vtime.New()
	db := rtdb.New(sched)
	db.AddInvariant("limit", "22")
	db.AddImage(&rtdb.ImageObject{Name: "temp", Period: 5, Read: tempRead})
	db.AddDerived(&rtdb.DerivedObject{
		Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
	})
	// The §5.1.2 execution model: immediate firing on image updates.
	db.AddRule(rtdb.Rule{
		Name: "rederive", On: "sample:temp", Mode: rtdb.Immediate,
		Then: func(db *rtdb.DB, e rtdb.Event) { _ = db.Rederive("status") },
	})
	sched.RunUntil(42)
	img, _ := db.Image("temp")
	fmt.Println("samples so far:      ", len(img.History()))
	v, stamp, _ := func() (rtdb.Value, timeseq.Time, bool) {
		d, _ := db.Derived("status")
		return d.Current()
	}()
	fmt.Printf("derived status:       %q (timestamp %d, age %d)\n", v, stamp, rtdb.Age(db.Now(), stamp))
	fmt.Println("absolutely consistent (Ta=5):", db.AbsoluteConsistency(5))

	// --- The recognition problem (Definition 5.1).
	sp := rtdb.Spec{
		Invariants: map[string]rtdb.Value{"limit": "22"},
		Derived: []*rtdb.DerivedObject{{
			Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
		}},
		Images: []*rtdb.ImageObject{{Name: "temp", Period: 5, Read: tempRead}},
	}
	cat := rtdb.Catalog{"status_q": func(v *rtdb.View) []rtdb.Value {
		if s, ok := v.DeriveNow("status"); ok {
			return []rtdb.Value{s}
		}
		return nil
	}}
	reg := rtdb.DeriveRegistry{"status": statusDerive}

	qs := rtdb.QuerySpec{
		Query: "status_q", Issue: 25, Candidate: "ok",
		Kind: deadline.Firm, Deadline: 5, MinUseful: 1,
	}
	fmt.Println("\naperiodic, fast eval:", rtdb.RunAperiodic(sp, qs, cat, reg, 2, 300).Verdict)
	fmt.Println("aperiodic, slow eval:", rtdb.RunAperiodic(sp, qs, cat, reg, 9, 300).Verdict)

	ps := rtdb.PeriodicSpec{
		Query: "status_q", Issue: 2, Period: 10,
		Candidates: func(i uint64) rtdb.Value {
			s, _ := sp.ViewAt(2 + timeseq.Time(i)*10).DeriveNow("status")
			return s
		},
	}
	res, acc := rtdb.RunPeriodic(sp, ps, cat, reg, 1, 150)
	fmt.Printf("periodic:             %v (%d served, %d f's)\n", res.Verdict, acc.Served(), res.FCount)

	// Lemma 5.1 in action: the pq word's clock diverges.
	w := ps.PqWord()
	idx, _ := rtdb.Lemma51Bound(w, 100, 1_000_000)
	fmt.Printf("Lemma 5.1: τ_%d ≥ 100 in pq word (finite index, as claimed)\n", idx)
	fmt.Println("pq word prefix:      ", word.Prefix(w, 10))
}
