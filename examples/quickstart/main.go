// Quickstart: build timed ω-words, combine them with the Definition 3.5
// concatenation, and run a real-time algorithm (Definition 3.3/3.4) that
// accepts a simple timed language.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rtc/internal/core"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// containsGo accepts exactly the timed words that carry the symbol "go"
// somewhere: on seeing it, the control commits to the accepting absorbing
// state s_f, in which it writes f on the output tape at every chronon —
// Definition 3.4's acceptance ("f appears infinitely many times").
type containsGo struct {
	core.Control
}

func (p *containsGo) Tick(t *core.Tick) {
	for _, e := range t.New {
		if e.Sym == "go" {
			p.AcceptForever()
		}
	}
	p.Drive(t)
}

func main() {
	// A finite timed word: symbols with arrival timestamps.
	header := word.MustFinite(
		word.TimedSym{Sym: "boot", At: 0},
		word.TimedSym{Sym: "go", At: 3},
	)
	// An infinite, well-behaved tail: "idle" once per chronon, forever.
	tail := word.RepeatClassical("idle", 1)

	// Definition 3.5 concatenation: merge by arrival time.
	input := word.Concat(header, tail)
	fmt.Println("input prefix: ", word.Prefix(input, 6))
	fmt.Println("well-behaved within horizon:", word.WellBehavedWithin(input, 64))

	// Run the acceptor. The verdict is *proven* because the program
	// declares its absorbing state.
	m := core.NewMachine(&containsGo{}, input)
	res := core.RunForVerdict(m, 50)
	fmt.Println("verdict:      ", res)

	// The same machine on a word without "go" rejects.
	m2 := core.NewMachine(&containsGo{}, word.RepeatClassical("idle", 1))
	fmt.Println("without go:   ", core.RunForVerdict(m2, 50))

	// Time sequences are first-class: monotonicity is enforced, progress
	// is checkable.
	if _, err := timeseq.New(3, 2); err != nil {
		fmt.Println("monotonicity: ", err)
	}
}
