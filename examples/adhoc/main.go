// Ad hoc network example (§5.2): run a small mobile network under two
// routing protocols, validate the delivered routes against the routing
// language R_{n,u}, and render the network trace as the timed ω-words of
// §5.2.2–§5.2.5.
//
//	go run ./examples/adhoc
package main

import (
	"fmt"

	"rtc/internal/adhoc"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func run(name string, mk func() adhoc.Protocol) {
	nodes := make([]*adhoc.Node, 10)
	for i := range nodes {
		nodes[i] = &adhoc.Node{
			ID:    i + 1,
			Mob:   adhoc.NewWaypoint(int64(40+i), 120, 120, 1.5, 30),
			Range: 45,
			Proto: mk(),
		}
	}
	net := adhoc.NewNetwork(nodes)
	for id := uint64(1); id <= 6; id++ {
		net.Inject(adhoc.Message{
			ID: id, Src: int(id), Dst: int(id%10) + 4,
			At: timeseq.Time(30 + 15*id), Payload: "b",
		})
	}
	net.Run(300)

	fmt.Printf("== %s\n", name)
	fmt.Println("metrics:", net.Metrics())
	for id := uint64(1); id <= 6; id++ {
		ck := net.Trace().CheckRoute(id, net)
		if !ck.Delivered {
			fmt.Printf("  message %d: not delivered (t'_f = ω)\n", id)
			continue
		}
		fmt.Printf("  message %d: %d hops in %d chronons, route valid per §5.2.4: %v\n",
			id, len(ck.Hops), ck.Latency, ck.OK)
	}
	// The network as a timed word: h_1 … h_n m r m r …
	w := adhoc.RoutingWord(net)
	fmt.Println("  routing word prefix:", clip(fmt.Sprint(word.Prefix(w, 14)), 100))
	// One node's §5.2.5 component word H_i = 𝓛_i·𝓡_i.
	h3 := adhoc.ComponentWord(net, 3)
	fmt.Println("  H_3 prefix:         ", clip(fmt.Sprint(word.Prefix(h3, 14)), 100))
	fmt.Println()
}

func main() {
	run("flooding", func() adhoc.Protocol { return &adhoc.Flooding{} })
	run("dsr-like source routing", func() adhoc.Protocol { return &adhoc.SR{} })
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
