module rtc

go 1.22
