package rtc_test

// One benchmark per experiment of the DESIGN.md index (E1–E10). The paper
// has no numeric tables; each benchmark regenerates the corresponding
// construction/figure/claim and reports domain-specific metrics alongside
// ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// The same code paths back the CLIs (cmd/rtcheck, cmd/adhocsim,
// cmd/daccsim, cmd/rtdbsim); see EXPERIMENTS.md for the recorded outputs.

import (
	"fmt"
	"runtime"

	"testing"

	"rtc/internal/adhoc"
	"rtc/internal/automata"
	"rtc/internal/complexity"
	"rtc/internal/core"
	"rtc/internal/dacc"
	"rtc/internal/deadline"
	"rtc/internal/experiments"
	"rtc/internal/language"
	"rtc/internal/omega"
	"rtc/internal/parallel"
	"rtc/internal/pcgs"
	"rtc/internal/relational"
	"rtc/internal/rtdb"
	"rtc/internal/timed"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// E1: Theorem 3.1 / Corollary 3.2 — refute a candidate Büchi automaton for
// L_ω by pumping its accepting run.
func BenchmarkE1_NonRegularWitness(b *testing.B) {
	cand := omega.CandidateShapeBuchi()
	refuted := 0
	for i := 0; i < b.N; i++ {
		ce := omega.RefuteLOmega(cand)
		if ce.BuchiAccepts != ce.InLanguage {
			refuted++
		}
	}
	if refuted != b.N {
		b.Fatal("candidate escaped refutation")
	}
}

// E1 (DFA half): refute the bounded-counter DFA.
func BenchmarkE1_DFARefutation(b *testing.B) {
	cand := automata.CandidateBoundedDFA(4)
	for i := 0; i < b.N; i++ {
		ce := automata.RefuteL(cand)
		if ce.DFAAccepts == ce.InLanguage {
			b.Fatal("not a disagreement")
		}
	}
}

// E2: Theorem 3.3 — the closure operations on timed ω-languages.
func BenchmarkE2_ClosureOps(b *testing.B) {
	allA := language.FromPredicate("a+", func(w word.Finite) bool {
		if len(w) == 0 {
			return false
		}
		for _, e := range w {
			if e.Sym != "a" {
				return false
			}
		}
		return true
	})
	allB := language.FromPredicate("b+", func(w word.Finite) bool {
		if len(w) == 0 {
			return false
		}
		for _, e := range w {
			if e.Sym != "b" {
				return false
			}
		}
		return true
	})
	comp := language.Complement(language.Union(language.Intersection(allA, allB), language.Concat(allA, allB, 12)))
	w := word.Concat(word.FromClassical("aaa", 0), word.FromClassical("bb", 1)).(word.Finite)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp.Contains(w, 16) == language.Unknown {
			b.Fatal("unexpected unknown")
		}
	}
}

// E3: Figures 1–2 — the NGC database under the November query.
func BenchmarkE3_NGCQuery(b *testing.B) {
	db := relational.NGCDatabase()
	q := relational.NovemberQuery()
	want := relational.Figure2Result()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := q.Eval(db)
		if err != nil || !got.Equal(want) {
			b.Fatal("Figure 2 mismatch")
		}
	}
}

// E3 (recognition form): the language (5) membership test.
func BenchmarkE3_RecognitionLanguage(b *testing.B) {
	db := relational.NGCDatabase()
	lang := relational.RecognitionLanguage(relational.NovemberQuery())
	w := relational.RecognitionWord(db, relational.Tuple{"Schaefer", "St. Catharines"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lang.Contains(w, 1<<20) != language.Yes {
			b.Fatal("member rejected")
		}
	}
}

// E4: §4.1 — the deadline acceptance sweep (firm and soft).
func BenchmarkE4_DeadlineAcceptance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.E4Deadline()
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// E4 (single instance): one firm-deadline acceptor run.
func BenchmarkE4_SingleFirmInstance(b *testing.B) {
	inst := deadline.Instance{
		Input:     automata.Syms("fedcba"),
		Proposed:  automata.Syms("abcdef"),
		Kind:      deadline.Firm,
		Deadline:  20,
		MinUseful: 1,
	}
	mk := func() deadline.Solver {
		return &deadline.FuncSolver{
			Cost:  func(n int) uint64 { return 2 * uint64(n) },
			Solve: func(in []word.Symbol) []word.Symbol { return append([]word.Symbol{}, in...) },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst2 := inst
		inst2.Proposed = automata.Syms("fedcba")
		res := deadline.Accepts(inst2, mk(), 200)
		if !res.Verdict.Proven() {
			b.Fatal("unproven verdict")
		}
	}
}

// E5: §4.2 — the data-accumulating termination sweep.
func BenchmarkE5_DataAccumulating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.E5DataAccumulating()
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// E5 (acceptor): one full §4.2 word + two-process acceptor run.
func BenchmarkE5_Acceptor(b *testing.B) {
	law := dacc.PolyLaw{K: 2, Gamma: 0.5, Beta: 0.5}
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 1}
	inst, sim := dacc.BuildInstance(law, 16, wl, 997, 100000, false)
	if !sim.Terminated {
		b.Fatal("setup: diverged")
	}
	horizon := uint64(sim.At)*2 + 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := &dacc.Acceptor{Solver: &dacc.ChecksumSolver{Mod: 997}, Work: wl}
		m := core.NewMachine(acc, inst.Word())
		if res := core.RunForVerdict(m, horizon); res.Verdict != core.AcceptProven {
			b.Fatalf("verdict %v", res.Verdict)
		}
	}
}

// E6: Definition 5.1 — the real-time database recognition pipeline.
func BenchmarkE6_RTDBRecognition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.E6RTDB()
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// E6 (Lemma 5.1): scanning the periodic-query word for the progress bound.
func BenchmarkE6_Lemma51(b *testing.B) {
	ps := rtdb.PeriodicSpec{
		Query: "q", Issue: 3, Period: 10,
		Candidates: func(i uint64) rtdb.Value { return "s" },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ps.PqWord()
		if _, ok := rtdb.Lemma51Bound(w, 200, 1_000_000); !ok {
			b.Fatal("Lemma 5.1 bound not found")
		}
	}
}

// E7: §5.2 — one cell of the routing comparison per protocol, on the
// grid-backed fast path.
func BenchmarkE7_RoutingFlooding(b *testing.B) {
	benchRouting(b, false, func() adhoc.Protocol { return &adhoc.Flooding{} })
}
func BenchmarkE7_RoutingDV(b *testing.B) {
	benchRouting(b, false, func() adhoc.Protocol { return &adhoc.DV{BeaconEvery: 5} })
}
func BenchmarkE7_RoutingSR(b *testing.B) {
	benchRouting(b, false, func() adhoc.Protocol { return &adhoc.SR{} })
}
func BenchmarkE7_RoutingGeo(b *testing.B) {
	benchRouting(b, false, func() adhoc.Protocol { return &adhoc.Geo{BeaconEvery: 5, BeaconTTL: 4} })
}

// E7 reference-path variants: identical cells with the kinematics cache
// and spatial grid disabled, so the fast path's gain is measurable as the
// Brute/grid ratio on the same workload.
func BenchmarkE7_RoutingFloodingBrute(b *testing.B) {
	benchRouting(b, true, func() adhoc.Protocol { return &adhoc.Flooding{} })
}
func BenchmarkE7_RoutingGeoBrute(b *testing.B) {
	benchRouting(b, true, func() adhoc.Protocol { return &adhoc.Geo{BeaconEvery: 5, BeaconTTL: 4} })
}

func benchRouting(b *testing.B, brute bool, mk func() adhoc.Protocol) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		nodes := make([]*adhoc.Node, 16)
		for j := range nodes {
			nodes[j] = &adhoc.Node{
				ID:    j + 1,
				Mob:   adhoc.NewWaypoint(int64(j+1), 150, 150, 1.5, 60),
				Range: 50,
				Proto: mk(),
			}
		}
		net := adhoc.NewNetwork(nodes)
		net.TraceMode = adhoc.TraceData // routing measures need only data events
		net.BruteForce = brute
		for id := uint64(1); id <= 10; id++ {
			net.Inject(adhoc.Message{
				ID: id, Src: int(id%16) + 1, Dst: int((id*7)%16) + 1,
				At: timeseq.Time(30 + id*10), Payload: "b",
			})
		}
		net.Run(300)
		if net.Metrics().Sent == 0 {
			b.Fatal("no workload")
		}
	}
}

// E7 matrix: the full pause × protocol sweep (3 pauses × 5 protocols = 15
// cells plus route validation) on the scenario runner, serial vs. all
// CPUs. Near-linear scaling in the worker count is the acceptance target.
func BenchmarkE7_ScenarioMatrix(b *testing.B) {
	pauses := []timeseq.Time{0, 60, 240}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.E7Config{
				Nodes: 16, Arena: 150, Range: 50, Speed: 1.5,
				Messages: 12, Horizon: 400, Seed: 1, Workers: workers,
			}
			for i := 0; i < b.N; i++ {
				rows, _ := experiments.E7Routing(cfg, pauses)
				if len(rows) != len(pauses)*5 {
					b.Fatalf("matrix produced %d rows", len(rows))
				}
			}
		})
	}
}

// E8: §6/§7 — the rt-PROC staircase on the goroutine system.
func BenchmarkE8_RTProc(b *testing.B) {
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	for i := 0; i < b.N; i++ {
		out := parallel.RunDAcc(law, 400, wl, 2, 450)
		if !out.Terminated {
			b.Fatal("p=2 should meet the deadline for n=400")
		}
	}
}

// E9: Definition 3.5 — the merge concatenation itself.
func BenchmarkE9_Concat(b *testing.B) {
	x := make(word.Finite, 512)
	y := make(word.Finite, 512)
	for i := range x {
		x[i] = word.TimedSym{Sym: "x", At: timeseq.Time(2 * i)}
		y[i] = word.TimedSym{Sym: "y", At: timeseq.Time(2*i + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := word.Concat(x, y).(word.Finite)
		if len(m) != 1024 {
			b.Fatal("merge length")
		}
	}
}

// E10: §2.1 — timed Büchi automaton acceptance and emptiness.
func BenchmarkE10_TBAAcceptance(b *testing.B) {
	cs := timed.NewClockSet("x")
	a := timed.NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	a.AddTrans(0, 0, "a", cs.Le("x", 2), "x")
	a.SetAccept(0)
	w := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.AcceptsLasso(w) {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkE10_TBAEmptiness(b *testing.B) {
	cs := timed.NewClockSet("x", "y")
	a := timed.NewTBA([]word.Symbol{"a", "b"}, 2, 0, cs)
	a.AddTrans(0, 1, "a", cs.Le("x", 3), "y")
	a.AddTrans(1, 0, "b", cs.Ge("y", 1), "x")
	a.SetAccept(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, empty := a.Empty(); empty {
			b.Fatal("declared empty")
		}
	}
}

// rt-SPACE: the measured footprint of the unbounded L_ω acceptor.
func BenchmarkSpaceProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := complexity.SpaceProfile([]int{4, 8, 16}, 64)
		if len(prof) != 3 || prof[2] <= prof[0] {
			b.Fatal("profile shape wrong")
		}
	}
}

// PCGS: generating the non-context-free window {a^n b^{n+1} c^{n+1}} via
// synchronized communicating grammars (the §6 intuition).
func BenchmarkPCGSGeneration(b *testing.B) {
	master := pcgs.Grammar{
		Nonterminals: map[pcgs.Symbol]bool{"S1": true, "S2": true},
		Rules: []pcgs.Rule{
			{Left: "S1", Right: []pcgs.Symbol{"a", "S1"}},
			{Left: "S1", Right: []pcgs.Symbol{pcgs.QuerySymbol(2)}},
			{Left: "S2", Right: nil},
		},
		Axiom: "S1",
	}
	worker := pcgs.Grammar{
		Nonterminals: map[pcgs.Symbol]bool{"S2": true},
		Rules:        []pcgs.Rule{{Left: "S2", Right: []pcgs.Symbol{"b", "S2", "c"}}},
		Axiom:        "S2",
	}
	for i := 0; i < b.N; i++ {
		sys := &pcgs.System{Components: []pcgs.Grammar{master, worker}, Mode: pcgs.Returning, MaxForm: 32}
		words := sys.Generate(12, 12)
		if len(words) == 0 {
			b.Fatal("no words")
		}
	}
}

// Data complexity of the recognition problem (5): membership cost as the
// instance grows with the query fixed — the measure §5.1.1 singles out
// ("the size of the database input dominates by far the size of the
// query").
func BenchmarkE3_DataComplexity(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			db := relational.NewDatabase()
			ex := relational.NewRelation(relational.ExhibitionsSchema)
			sch := relational.NewRelation(relational.SchedulesSchema)
			for i := 0; i < n; i++ {
				title := fmt.Sprintf("T%d", i)
				ex.MustInsert(title, "desc", fmt.Sprintf("Artist%d", i))
				month := "October 1999"
				if i%2 == 0 {
					month = "November 1999"
				}
				sch.MustInsert(fmt.Sprintf("City%d", i), title, month)
			}
			db.Add(ex)
			db.Add(sch)
			lang := relational.RecognitionLanguage(relational.NovemberQuery())
			w := relational.RecognitionWord(db, relational.Tuple{"Artist0", "City0"})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if lang.Contains(w, 1<<24) != language.Yes {
					b.Fatal("member rejected")
				}
			}
		})
	}
}
