// Package rtc is a from-scratch Go reproduction of
//
//	S. D. Bruda and S. G. Akl,
//	"Real-Time Computation: A Formal Definition and its Applications",
//	IPPS/SPDP Workshops 2001.
//
// The paper proposes well-behaved timed ω-languages as the formal
// definition of real-time computation and a general acceptor — the
// real-time algorithm of Definition 3.3/3.4 — and then uses the formalism
// to model computing with deadlines (§4.1), real-time input arrival via the
// data-accumulating paradigm (§4.2), the recognition problem for real-time
// database queries (§5.1), routing in ad hoc networks (§5.2), and an
// explicitly parallel/distributed variant (§6).
//
// The library implements every substrate the paper touches:
//
//   - internal/timeseq, internal/word, internal/language — time sequences,
//     timed ω-words in three representations (finite, lasso, generator),
//     the Definition 3.5 concatenation and Definition 3.6 Kleene closure;
//   - internal/automata, internal/omega, internal/timed — classical
//     automata, Büchi/Muller automata with exact lasso decision procedures
//     and the constructive Theorem 3.1 / Corollary 3.2 refuters, and timed
//     Büchi automata (Alur–Dill) with clock constraints and emptiness;
//   - internal/core — the real-time algorithm runtime: timed input tape,
//     write-only output tape, one output symbol per chronon, acceptance by
//     "f infinitely often" with proven/horizon verdicts;
//   - internal/deadline, internal/dacc — the §4 models and their
//     two-process (P_w/P_m) acceptors;
//   - internal/relational, internal/rtdb — a relational engine (with the
//     Figure 1/2 example) and the real-time database layer (image/derived/
//     invariant objects, consistency, lifespans, active rules, the
//     Definition 5.1 recognition languages, Lemma 5.1);
//   - internal/adhoc — a discrete-event mobile network with four routing
//     protocols, the Broch-et-al. performance measures, and the routing
//     language R_{n,u} with trace validation;
//   - internal/parallel — §6's processes-as-goroutines model with trace
//     words (c_k, l_k, r_k) and the PRAM degenerate case;
//   - internal/experiments — the E1–E10 experiment harness shared by the
//     CLIs (cmd/...) and the benchmarks (bench_test.go).
//
// See DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package rtc
