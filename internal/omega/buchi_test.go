package omega

import (
	"testing"

	"rtc/internal/automata"
	"rtc/internal/word"
)

// infA is a Büchi automaton over {a,b} accepting words with infinitely many
// a's.
func infA() *Buchi {
	b := NewBuchi([]word.Symbol{"a", "b"}, 2, 0)
	b.AddTrans(0, "a", 1)
	b.AddTrans(0, "b", 0)
	b.AddTrans(1, "a", 1)
	b.AddTrans(1, "b", 0)
	b.SetAccept(1)
	return b
}

// infB accepts words with infinitely many b's.
func infB() *Buchi {
	b := NewBuchi([]word.Symbol{"a", "b"}, 2, 0)
	b.AddTrans(0, "a", 0)
	b.AddTrans(0, "b", 1)
	b.AddTrans(1, "a", 0)
	b.AddTrans(1, "b", 1)
	b.SetAccept(1)
	return b
}

func lasso(prefix, cycle string) LassoWord {
	return LassoWord{Prefix: automata.Syms(prefix), Cycle: automata.Syms(cycle)}
}

func TestBuchiAcceptsLasso(t *testing.T) {
	b := infA()
	cases := []struct {
		w    LassoWord
		want bool
	}{
		{lasso("", "a"), true},
		{lasso("", "b"), false},
		{lasso("bbb", "ab"), true},
		{lasso("aaa", "b"), false}, // only finitely many a's
		{lasso("", "ba"), true},
		{lasso("ab", "bb"), false},
	}
	for _, c := range cases {
		run, got := b.AcceptsLasso(c.w)
		if got != c.want {
			t.Errorf("infA accepts %v = %v, want %v", c.w, got, c.want)
		}
		if got {
			validateRun(t, b, c.w, run)
		}
	}
}

// validateRun checks that a returned run is a genuine accepting run: the
// stem starts at a start state, every transition is legal, the loop closes,
// and the loop visits an accepting state.
func validateRun(t *testing.T, b *Buchi, w LassoWord, run Run) {
	t.Helper()
	if len(run.StemStates) == 0 || len(run.LoopStates) == 0 {
		t.Fatalf("degenerate run %+v", run)
	}
	isStart := false
	for _, s := range b.Start {
		if run.StemStates[0] == s {
			isStart = true
		}
	}
	if !isStart {
		t.Fatalf("run does not begin at a start state: %+v", run)
	}
	hasTrans := func(from int, sym word.Symbol, to int) bool {
		for _, x := range b.succ(from, sym) {
			if x == to {
				return true
			}
		}
		return false
	}
	pos := 0
	for i := 0; i+1 < len(run.StemStates); i++ {
		sym := w.At(pos)
		if !hasTrans(run.StemStates[i], sym, run.StemStates[i+1]) {
			t.Fatalf("illegal stem transition %d -%s-> %d", run.StemStates[i], sym, run.StemStates[i+1])
		}
		pos++
	}
	if run.LoopStates[0] != run.StemStates[len(run.StemStates)-1] {
		t.Fatalf("loop does not start at stem end")
	}
	accepting := false
	for i := 0; i < len(run.LoopStates); i++ {
		sym := w.At(pos + i)
		next := run.LoopStates[(i+1)%len(run.LoopStates)]
		if !hasTrans(run.LoopStates[i], sym, next) {
			t.Fatalf("illegal loop transition %d -%s-> %d", run.LoopStates[i], sym, next)
		}
		if b.Accept[run.LoopStates[i]] {
			accepting = true
		}
	}
	if !accepting {
		t.Fatalf("loop visits no accepting state: %+v", run)
	}
	// Loop length must realign with the word's cycle.
	if len(run.LoopStates)%len(w.Cycle) != 0 {
		t.Fatalf("loop length %d not a multiple of cycle length %d",
			len(run.LoopStates), len(w.Cycle))
	}
}

func TestBuchiEmpty(t *testing.T) {
	b := infA()
	if w, empty := b.Empty(); empty {
		t.Error("infA declared empty")
	} else if _, ok := b.AcceptsLasso(w); !ok {
		t.Errorf("emptiness witness %v not accepted", w)
	}

	// No accepting state on any cycle → empty.
	e := NewBuchi([]word.Symbol{"a"}, 2, 0)
	e.AddTrans(0, "a", 1) // 1 is a trap with no outgoing cycle through accept
	e.SetAccept(0)        // accepting but not on a cycle
	if _, empty := e.Empty(); !empty {
		t.Error("automaton with no accepting cycle declared non-empty")
	}
}

func TestBuchiUnion(t *testing.T) {
	u := Union(infA(), infB())
	// Any infinite word over {a,b} has infinitely many a's or b's.
	for _, w := range []LassoWord{
		lasso("", "a"), lasso("", "b"), lasso("ab", "ab"), lasso("b", "a"),
	} {
		if _, ok := u.AcceptsLasso(w); !ok {
			t.Errorf("union rejects %v", w)
		}
	}
}

func TestBuchiIntersect(t *testing.T) {
	i := Intersect(infA(), infB())
	yes := []LassoWord{lasso("", "ab"), lasso("aaa", "ba"), lasso("", "aabb")}
	no := []LassoWord{lasso("", "a"), lasso("", "b"), lasso("ab", "a"), lasso("ba", "b")}
	for _, w := range yes {
		if _, ok := i.AcceptsLasso(w); !ok {
			t.Errorf("intersection rejects %v (has inf a's and b's)", w)
		}
	}
	for _, w := range no {
		if _, ok := i.AcceptsLasso(w); ok {
			t.Errorf("intersection accepts %v", w)
		}
	}
}

func TestMullerAcceptance(t *testing.T) {
	// Deterministic two-state walker over {a,b}: state tracks last symbol.
	m := NewMuller([]word.Symbol{"a", "b"}, 2, 0)
	m.AddTrans(0, "a", 0)
	m.AddTrans(0, "b", 1)
	m.AddTrans(1, "a", 0)
	m.AddTrans(1, "b", 1)
	// Accept exactly runs that settle into only-a's: inf(r) = {0}.
	m.AddAccepting(0)
	if !m.AcceptsLasso(lasso("bbb", "a")) {
		t.Error("Muller rejects b³a^ω")
	}
	if m.AcceptsLasso(lasso("", "ab")) {
		t.Error("Muller accepts (ab)^ω though inf(r) = {0,1}")
	}
	if m.AcceptsLasso(lasso("", "b")) {
		t.Error("Muller accepts b^ω though inf(r) = {1}")
	}
	// Now also accept inf(r) = {0,1}.
	m.AddAccepting(0, 1)
	if !m.AcceptsLasso(lasso("", "ab")) {
		t.Error("Muller rejects (ab)^ω after adding {0,1}")
	}
	if m.AcceptsLasso(lasso("", "b")) {
		t.Error("Muller still must reject b^ω")
	}
}

// FromBuchi must preserve the accepted lasso words.
func TestFromBuchiEquivalence(t *testing.T) {
	b := infA()
	m := FromBuchi(b)
	words := []LassoWord{
		lasso("", "a"), lasso("", "b"), lasso("bbb", "ab"),
		lasso("aaa", "b"), lasso("", "ba"), lasso("ab", "bb"),
	}
	for _, w := range words {
		_, wantOK := b.AcceptsLasso(w)
		if got := m.AcceptsLasso(w); got != wantOK {
			t.Errorf("FromBuchi differs on %v: muller=%v buchi=%v", w, got, wantOK)
		}
	}
}

func TestLassoWordAt(t *testing.T) {
	w := lasso("xy", "ab")
	want := "xyababab"
	for i := 0; i < len(want); i++ {
		if w.At(i) != word.Symbol(want[i:i+1]) {
			t.Fatalf("At(%d) = %s, want %s", i, w.At(i), want[i:i+1])
		}
	}
}
