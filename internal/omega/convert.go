package omega

import (
	"sort"

	"rtc/internal/automata"
	"rtc/internal/word"
)

// ToBuchi converts a Muller automaton into an equivalent Büchi automaton by
// the classical guess-and-verify construction: a run nondeterministically
// jumps from a copy of the original automaton into a checking copy for some
// F ∈ 𝓕, where it must stay within F forever; a visited-set sweep resets
// every time all of F has been seen, and the resets are the Büchi accepting
// visits. The construction is exponential in |F| (visited ⊆ F), as Muller →
// Büchi inherently is.
func (m *Muller) ToBuchi() *Buchi {
	// State layout: 0..n-1 = the free copy; then per family member F a
	// block of |F|·2^|F| states indexed by (position of s in F, visited
	// mask).
	n := m.NumStates
	type block struct {
		states []int       // sorted members of F
		index  map[int]int // state → position
		base   int         // first Büchi id of the block
	}
	blocks := make([]block, 0, len(m.Family))
	next := n
	for _, F := range m.Family {
		var states []int
		for s := range F {
			states = append(states, s)
		}
		sort.Ints(states)
		idx := make(map[int]int, len(states))
		for i, s := range states {
			idx[s] = i
		}
		blocks = append(blocks, block{states: states, index: idx, base: next})
		next += len(states) << uint(len(states))
	}
	id := func(b block, s int, mask int) int {
		return b.base + b.index[s]<<uint(len(b.states)) + mask
	}

	out := NewBuchi(m.Alphabet, next, m.Start...)
	addFree := func(from int, sym word.Symbol, to int) {
		out.AddTrans(from, sym, to)
		// Also allow the jump into any checking copy whose F contains the
		// target: the guess "from now on, inf(r) = F".
		for _, b := range blocks {
			if j, ok := b.index[to]; ok {
				_ = j
				mask := 1 << uint(b.index[to])
				full := 1<<uint(len(b.states)) - 1
				if mask == full {
					mask = 0 // immediately completed a sweep of a singleton F
				}
				out.AddTrans(from, sym, id(b, to, mask))
			}
		}
	}
	for s, mm := range m.Trans {
		for sym, ts := range mm {
			for _, t := range ts {
				addFree(s, sym, t)
			}
		}
	}
	// Checking copies: transitions restricted to F, visited-mask updates,
	// reset (and accept) on completion.
	for _, b := range blocks {
		full := 1<<uint(len(b.states)) - 1
		for _, s := range b.states {
			for sym, ts := range m.Trans[s] {
				for _, t := range ts {
					if _, ok := b.index[t]; !ok {
						continue // leaving F kills the run in this copy
					}
					for mask := 0; mask <= full; mask++ {
						nm := mask | 1<<uint(b.index[t])
						if nm == full {
							nm = 0
						}
						out.AddTrans(id(b, s, mask), sym, id(b, t, nm))
					}
				}
			}
		}
		// Accepting: mask == 0 states (a full sweep of F just completed).
		for _, s := range b.states {
			out.Accept[id(b, s, 0)] = true
		}
	}
	return out
}

// LimitBuchi lifts a DFA to the Büchi automaton accepting
//
//	lim L(D) = { w ∈ Σ^ω : infinitely many prefixes of w are in L(D) },
//
// the classical limit operation (for deterministic D the construction is
// literally "reinterpret accepting states as Büchi accepting").
func LimitBuchi(d *automata.DFA) *Buchi {
	c := d.Complete()
	b := NewBuchi(c.Alphabet, c.NumStates, c.Start)
	for s, mm := range c.Trans {
		for sym, t := range mm {
			b.AddTrans(s, sym, t)
		}
	}
	for s := range c.Accept {
		b.SetAccept(s)
	}
	return b
}
