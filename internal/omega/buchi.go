// Package omega implements ω-automata (§2.1): Büchi and Muller acceptance
// over ultimately periodic (lasso) ω-words, with exact decision procedures,
// run extraction, and the constructive refutation behind Theorem 3.1 /
// Corollary 3.2 — for any candidate Büchi automaton claimed to accept
// L_ω = (L·$)^ω with L = {a^u b^x c^v d^x}, a concrete disagreeing lasso is
// produced by pumping the accepting run.
package omega

import (
	"fmt"

	"rtc/internal/word"
)

// LassoWord is an ultimately periodic classical ω-word: Prefix·Cycle^ω.
// Cycle must be non-empty.
type LassoWord struct {
	Prefix []word.Symbol
	Cycle  []word.Symbol
}

// FromTimedLasso projects the symbol sequence of a timed lasso.
func FromTimedLasso(l *word.Lasso) LassoWord {
	return LassoWord{Prefix: l.Prefix.Syms(), Cycle: l.Cycle.Syms()}
}

// At returns the i-th symbol of the ω-word.
func (w LassoWord) At(i int) word.Symbol {
	if i < len(w.Prefix) {
		return w.Prefix[i]
	}
	return w.Cycle[(i-len(w.Prefix))%len(w.Cycle)]
}

// String renders the lasso.
func (w LassoWord) String() string {
	return fmt.Sprintf("%s(%s)^ω", wordString(w.Prefix), wordString(w.Cycle))
}

func wordString(ws []word.Symbol) string {
	s := ""
	for _, a := range ws {
		s += string(a)
	}
	return s
}

// Buchi is a (nondeterministic) Büchi automaton. A run is accepting iff it
// visits an accepting state infinitely often (inf(r) ∩ F ≠ ∅).
type Buchi struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     []int
	Trans     map[int]map[word.Symbol][]int
	Accept    map[int]bool
}

// NewBuchi allocates an empty Büchi automaton.
func NewBuchi(alphabet []word.Symbol, numStates int, start ...int) *Buchi {
	return &Buchi{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Trans:     make(map[int]map[word.Symbol][]int),
		Accept:    make(map[int]bool),
	}
}

// AddTrans adds a transition (from, sym) → to.
func (b *Buchi) AddTrans(from int, sym word.Symbol, to int) {
	m, ok := b.Trans[from]
	if !ok {
		m = make(map[word.Symbol][]int)
		b.Trans[from] = m
	}
	m[sym] = append(m[sym], to)
}

// SetAccept marks states as accepting.
func (b *Buchi) SetAccept(states ...int) {
	for _, s := range states {
		b.Accept[s] = true
	}
}

// succ returns the successors of s under sym.
func (b *Buchi) succ(s int, sym word.Symbol) []int {
	if m, ok := b.Trans[s]; ok {
		return m[sym]
	}
	return nil
}

// Run is an accepting run over a lasso word, in product-graph form: the
// stem visits StemStates while consuming the first len(StemStates)-1 symbols
// of the word; the loop then repeats forever, with LoopStates[i] the state
// before consuming the (len(StemStates)-1+i)-th symbol. LoopStates is
// non-empty; the transition from the last loop state back to the first
// consumes the final loop symbol. LoopLen symbols are consumed per loop
// traversal (== len(LoopStates)), a multiple of the word's cycle length so
// the loop re-aligns with the word.
type Run struct {
	StemStates []int // states s_0, s_1, …, s_k (s_0 ∈ Start); k symbols consumed
	LoopStates []int // states around the loop, starting at s_k
}

// node is a product-graph vertex: automaton state × word position class.
// Positions 0..len(prefix)-1 are the prefix; len(prefix)+j (0 ≤ j < cycle)
// repeat forever.
type node struct {
	state int
	pos   int
}

// posAfter returns the position class following p for a word with the given
// prefix and cycle lengths.
func posAfter(p, prefixLen, cycleLen int) int {
	p++
	if p >= prefixLen+cycleLen {
		p = prefixLen
	}
	return p
}

// symbolAt returns the symbol consumed at position class p.
func symbolAtClass(w LassoWord, p int) word.Symbol {
	if p < len(w.Prefix) {
		return w.Prefix[p]
	}
	return w.Cycle[p-len(w.Prefix)]
}

// AcceptsLasso decides — exactly — whether the automaton accepts the lasso
// word, and returns an accepting run when it does.
func (b *Buchi) AcceptsLasso(w LassoWord) (Run, bool) {
	if len(w.Cycle) == 0 {
		return Run{}, false
	}
	prefixLen, cycleLen := len(w.Prefix), len(w.Cycle)
	numPos := prefixLen + cycleLen

	// Forward reachability over the product graph.
	id := func(n node) int { return n.state*numPos + n.pos }
	parent := make(map[int]node) // BFS tree for stem reconstruction
	inQueue := make(map[int]bool)
	var queue []node
	push := func(n node, from node, root bool) {
		k := id(n)
		if inQueue[k] {
			return
		}
		inQueue[k] = true
		if !root {
			parent[k] = from
		}
		queue = append(queue, n)
	}
	for _, s := range b.Start {
		push(node{s, 0}, node{}, true)
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		sym := symbolAtClass(w, cur.pos)
		np := posAfter(cur.pos, prefixLen, cycleLen)
		for _, t := range b.succ(cur.state, sym) {
			push(node{t, np}, cur, false)
		}
	}
	// Accepting loop: a reachable accepting node in the cyclic part from
	// which a non-empty path returns to itself.
	for qi := range queue {
		n := queue[qi]
		if n.pos < prefixLen || !b.Accept[n.state] {
			continue
		}
		loop, ok := b.findLoop(w, n)
		if !ok {
			continue
		}
		// Stem: BFS-tree path from a start node to n.
		var stemRev []node
		cur := n
		for {
			stemRev = append(stemRev, cur)
			p, ok := parent[id(cur)]
			if !ok {
				break
			}
			cur = p
		}
		stem := make([]int, len(stemRev))
		for i := range stemRev {
			stem[i] = stemRev[len(stemRev)-1-i].state
		}
		return Run{StemStates: stem, LoopStates: loop}, true
	}
	return Run{}, false
}

// findLoop searches for a non-empty product-graph path from n back to n,
// returning the states along it (starting at n, excluding the final return
// to n).
func (b *Buchi) findLoop(w LassoWord, n node) ([]int, bool) {
	prefixLen, cycleLen := len(w.Prefix), len(w.Cycle)
	numPos := prefixLen + cycleLen
	id := func(x node) int { return x.state*numPos + x.pos }
	parent := make(map[int]node)
	seen := make(map[int]bool)
	var queue []node
	// Seed with successors of n (paths of length ≥ 1).
	sym := symbolAtClass(w, n.pos)
	np := posAfter(n.pos, prefixLen, cycleLen)
	for _, t := range b.succ(n.state, sym) {
		m := node{t, np}
		if m == n {
			return []int{n.state}, true // self-loop
		}
		if !seen[id(m)] {
			seen[id(m)] = true
			parent[id(m)] = n
			queue = append(queue, m)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		csym := symbolAtClass(w, cur.pos)
		cnp := posAfter(cur.pos, prefixLen, cycleLen)
		for _, t := range b.succ(cur.state, csym) {
			m := node{t, cnp}
			if m == n {
				// Reconstruct n → … → cur, then back to n.
				var rev []node
				x := cur
				for x != n {
					rev = append(rev, x)
					x = parent[id(x)]
				}
				loop := make([]int, 0, len(rev)+1)
				loop = append(loop, n.state)
				for i := len(rev) - 1; i >= 0; i-- {
					loop = append(loop, rev[i].state)
				}
				return loop, true
			}
			if !seen[id(m)] {
				seen[id(m)] = true
				parent[id(m)] = cur
				queue = append(queue, m)
			}
		}
	}
	return nil, false
}

// Empty reports whether the automaton accepts no ω-word at all, and when it
// is non-empty returns a witnessing lasso word. Standard ω-emptiness:
// search for a reachable accepting state on a cycle, with symbols recorded.
func (b *Buchi) Empty() (LassoWord, bool) {
	// BFS over states recording one reaching word per state.
	reach := make(map[int][]word.Symbol)
	var order []int
	for _, s := range b.Start {
		if _, ok := reach[s]; !ok {
			reach[s] = []word.Symbol{}
			order = append(order, s)
		}
	}
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for sym, ts := range b.Trans[s] {
			for _, t := range ts {
				if _, ok := reach[t]; !ok {
					w := append(append([]word.Symbol{}, reach[s]...), sym)
					reach[t] = w
					order = append(order, t)
				}
			}
		}
	}
	// For each reachable accepting state, search a cycle back to it.
	for _, s := range order {
		if !b.Accept[s] {
			continue
		}
		if cyc, ok := b.cycleThrough(s); ok {
			return LassoWord{Prefix: reach[s], Cycle: cyc}, false
		}
	}
	return LassoWord{}, true
}

// cycleThrough finds a non-empty symbol path from s back to s.
func (b *Buchi) cycleThrough(s int) ([]word.Symbol, bool) {
	type entry struct {
		state int
		via   word.Symbol
		prev  int
	}
	var queue []entry
	seen := make(map[int]bool)
	enqueue := func(t int, via word.Symbol, prev int) {
		if !seen[t] {
			seen[t] = true
			queue = append(queue, entry{t, via, prev})
		}
	}
	for sym, ts := range b.Trans[s] {
		for _, t := range ts {
			if t == s {
				return []word.Symbol{sym}, true
			}
			enqueue(t, sym, -1)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for sym, ts := range b.Trans[cur.state] {
			for _, t := range ts {
				if t == s {
					var rev []word.Symbol
					rev = append(rev, sym)
					i := qi
					for i != -1 {
						rev = append(rev, queue[i].via)
						i = queue[i].prev
					}
					cyc := make([]word.Symbol, len(rev))
					for k := range rev {
						cyc[k] = rev[len(rev)-1-k]
					}
					return cyc, true
				}
				if !seen[t] {
					seen[t] = true
					queue = append(queue, entry{t, sym, qi})
				}
			}
		}
	}
	return nil, false
}

// Union returns a Büchi automaton for L(a) ∪ L(b) via disjoint union.
func Union(a, c *Buchi) *Buchi {
	out := NewBuchi(a.Alphabet, a.NumStates+c.NumStates)
	out.Start = append(out.Start, a.Start...)
	for _, s := range c.Start {
		out.Start = append(out.Start, s+a.NumStates)
	}
	for s, m := range a.Trans {
		for sym, ts := range m {
			for _, t := range ts {
				out.AddTrans(s, sym, t)
			}
		}
	}
	for s, m := range c.Trans {
		for sym, ts := range m {
			for _, t := range ts {
				out.AddTrans(s+a.NumStates, sym, t+a.NumStates)
			}
		}
	}
	for s := range a.Accept {
		out.Accept[s] = true
	}
	for s := range c.Accept {
		out.Accept[s+a.NumStates] = true
	}
	return out
}

// Intersect returns a Büchi automaton for L(a) ∩ L(b) via the standard
// two-phase product (Baier–Katoen): the phase flag waits in phase 0 for an
// accepting a-state and in phase 1 for an accepting c-state, flipping on the
// current state. Accepting states are phase-0 states whose a-component is
// accepting: visiting them infinitely often forces infinitely many accepting
// visits in both components.
func Intersect(a, c *Buchi) *Buchi {
	id := func(sa, sc, phase int) int { return (sa*c.NumStates+sc)*2 + phase }
	out := NewBuchi(a.Alphabet, a.NumStates*c.NumStates*2)
	for _, sa := range a.Start {
		for _, sc := range c.Start {
			out.Start = append(out.Start, id(sa, sc, 0))
		}
	}
	for sa := 0; sa < a.NumStates; sa++ {
		for sc := 0; sc < c.NumStates; sc++ {
			for phase := 0; phase < 2; phase++ {
				np := phase
				if phase == 0 && a.Accept[sa] {
					np = 1
				} else if phase == 1 && c.Accept[sc] {
					np = 0
				}
				for _, sym := range a.Alphabet {
					for _, ta := range a.succ(sa, sym) {
						for _, tc := range c.succ(sc, sym) {
							out.AddTrans(id(sa, sc, phase), sym, id(ta, tc, np))
						}
					}
				}
			}
			if a.Accept[sa] {
				out.Accept[id(sa, sc, 0)] = true
			}
		}
	}
	return out
}
