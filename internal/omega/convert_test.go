package omega

import (
	"math/rand"
	"testing"

	"rtc/internal/automata"
	"rtc/internal/word"
)

var ab = []word.Symbol{"a", "b"}

// randomLassos builds a deterministic pool of test words over {a,b}.
func randomLassos(rng *rand.Rand, count int) []LassoWord {
	alpha := "ab"
	mk := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			s += string(alpha[rng.Intn(2)])
		}
		return s
	}
	var out []LassoWord
	for i := 0; i < count; i++ {
		out = append(out, lasso(mk(rng.Intn(4)), mk(1+rng.Intn(4))))
	}
	return out
}

// lastSymbolMuller tracks the last symbol read (state 0 after a, 1 after b).
func lastSymbolMuller() *Muller {
	m := NewMuller(ab, 2, 0)
	m.AddTrans(0, "a", 0)
	m.AddTrans(0, "b", 1)
	m.AddTrans(1, "a", 0)
	m.AddTrans(1, "b", 1)
	return m
}

func TestMullerToBuchiHandExamples(t *testing.T) {
	// Accept inf(r) = {0}: "eventually only a's".
	m := lastSymbolMuller()
	m.AddAccepting(0)
	b := m.ToBuchi()
	cases := []struct {
		w    LassoWord
		want bool
	}{
		{lasso("", "a"), true},
		{lasso("bbb", "a"), true},
		{lasso("", "ab"), false},
		{lasso("", "b"), false},
		{lasso("ab", "aa"), true},
	}
	for _, c := range cases {
		if _, got := b.AcceptsLasso(c.w); got != c.want {
			t.Errorf("ToBuchi on %v = %v, want %v", c.w, got, c.want)
		}
	}
	// Adding inf(r) = {0,1} ("both infinitely often") extends the accepted
	// set accordingly.
	m.AddAccepting(0, 1)
	b = m.ToBuchi()
	if _, got := b.AcceptsLasso(lasso("", "ab")); !got {
		t.Error("ToBuchi rejects (ab)^ω after adding {0,1}")
	}
	if _, got := b.AcceptsLasso(lasso("", "b")); got {
		t.Error("ToBuchi accepts b^ω though {1} ∉ 𝓕")
	}
}

// Property: ToBuchi preserves the accepted lasso words on random Muller
// automata.
func TestMullerToBuchiEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := randomLassos(rng, 40)
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(3)
		m := NewMuller(ab, n, rng.Intn(n))
		for s := 0; s < n; s++ {
			for _, a := range ab {
				for c := 1 + rng.Intn(2); c > 0; c-- {
					m.AddTrans(s, a, rng.Intn(n))
				}
			}
		}
		// Random family: a few random non-empty subsets.
		for f := 1 + rng.Intn(3); f > 0; f-- {
			var set []int
			for s := 0; s < n; s++ {
				if rng.Intn(2) == 0 {
					set = append(set, s)
				}
			}
			if len(set) == 0 {
				set = []int{rng.Intn(n)}
			}
			m.AddAccepting(set...)
		}
		b := m.ToBuchi()
		for _, w := range words {
			want := m.AcceptsLasso(w)
			if _, got := b.AcceptsLasso(w); got != want {
				t.Fatalf("trial %d: ToBuchi differs on %v: buchi=%v muller=%v",
					trial, w, got, want)
			}
		}
	}
}

// The round trip Büchi → Muller (FromBuchi) → Büchi (ToBuchi) preserves the
// language.
func TestBuchiMullerRoundTrip(t *testing.T) {
	orig := infA()
	back := FromBuchi(orig).ToBuchi()
	rng := rand.New(rand.NewSource(9))
	for _, w := range randomLassos(rng, 60) {
		_, want := orig.AcceptsLasso(w)
		_, got := back.AcceptsLasso(w)
		if got != want {
			t.Fatalf("round trip differs on %v: %v vs %v", w, got, want)
		}
	}
}

func TestLimitBuchi(t *testing.T) {
	// evenA: words with an even number of a's. lim evenA = ω-words with
	// infinitely many even-a prefixes — true unless the word has finitely
	// many prefixes with even a-count, i.e. unless eventually every prefix
	// has odd count, which cannot persist if a's keep coming… concretely:
	// infinitely many a's → counts alternate → accept; finitely many a's →
	// accept iff the final fixed count is even.
	d := automata.NewDFA(ab, 2, 0)
	d.SetTrans(0, "a", 1)
	d.SetTrans(1, "a", 0)
	d.SetTrans(0, "b", 0)
	d.SetTrans(1, "b", 1)
	d.SetAccept(0)
	b := LimitBuchi(d)
	cases := []struct {
		w    LassoWord
		want bool
	}{
		{lasso("", "a"), true},   // infinitely many a's
		{lasso("", "b"), true},   // zero a's forever: every prefix even
		{lasso("a", "b"), false}, // one a then b's: all late prefixes odd
		{lasso("aa", "b"), true}, // two a's then b's
		{lasso("", "ab"), true},  // alternating
		{lasso("aab", "ab"), true},
	}
	for _, c := range cases {
		if _, got := b.AcceptsLasso(c.w); got != c.want {
			t.Errorf("lim evenA on %v = %v, want %v", c.w, got, c.want)
		}
	}
}
