package omega

import (
	"strings"

	"rtc/internal/automata"
	"rtc/internal/word"
)

// This file is the executable content of Theorem 3.1 at the ω level and of
// Corollary 3.2. The language
//
//	L_ω = { l_1 $ l_2 $ l_3 $ … | l_i ∈ L }, L = { a^u b^x c^v d^x | u,x,v>0 }
//
// is not ω-regular. The executable form mirrors the refuter of package
// automata: given ANY candidate Büchi automaton, RefuteLOmega constructs a
// lasso ω-word on which the candidate disagrees with L_ω. When the candidate
// accepts all small members, the accepting run of the largest one is pumped
// inside a b-block — the run-splicing version of the paper's A′ argument —
// yielding an accepted lasso with unbalanced b's and d's.

// LOmegaAlphabet is the alphabet of L_ω.
var LOmegaAlphabet = []word.Symbol{"a", "b", "c", "d", "$"}

// InLOmega decides — exactly — membership of a lasso word in L_ω: the word
// must consist of infinitely many $-separated blocks, each in L.
func InLOmega(w LassoWord) bool {
	if len(w.Cycle) == 0 {
		return false
	}
	hasDollar := false
	for _, s := range w.Cycle {
		if s == "$" {
			hasDollar = true
			break
		}
	}
	if !hasDollar {
		// Eventually a block never terminates, so some l_i is infinite —
		// not a member (every l_i ∈ L is finite).
		return false
	}
	// Every distinct block content appears as a complete block within
	// Prefix + 3 copies of Cycle: blocks fully inside the prefix, the block
	// spanning the prefix/cycle boundary, and all periodic blocks (period
	// divides |Cycle|, and each block is shorter than 2|Cycle|).
	var unrolled []word.Symbol
	unrolled = append(unrolled, w.Prefix...)
	for r := 0; r < 3; r++ {
		unrolled = append(unrolled, w.Cycle...)
	}
	blocks := splitBlocks(unrolled)
	// The final element of splitBlocks is the trailing partial block (after
	// the last $); its content repeats an already-checked complete block,
	// so only complete blocks are tested.
	for _, blk := range blocks[:len(blocks)-1] {
		if !automata.InL(blk) {
			return false
		}
	}
	return true
}

// splitBlocks splits ws on "$"; the final element is the (possibly empty)
// trailing segment after the last $.
func splitBlocks(ws []word.Symbol) [][]word.Symbol {
	var out [][]word.Symbol
	cur := []word.Symbol{}
	for _, s := range ws {
		if s == "$" {
			out = append(out, cur)
			cur = []word.Symbol{}
		} else {
			cur = append(cur, s)
		}
	}
	out = append(out, cur)
	return out
}

// MemberLasso returns the member (a·b^x·c·d^x·$)^ω of L_ω.
func MemberLasso(x int) LassoWord {
	return LassoWord{Cycle: automata.Syms(
		"a" + strings.Repeat("b", x) + "c" + strings.Repeat("d", x) + "$")}
}

// OmegaCounterexample records a disagreement between a candidate Büchi
// automaton and L_ω.
type OmegaCounterexample struct {
	Word         LassoWord
	BuchiAccepts bool
	InLanguage   bool
	PumpedFromX  int  // when Pumped, the block size that was pumped
	Pumped       bool // witness came from run splicing
}

// RefuteLOmega produces, for an arbitrary candidate Büchi automaton over
// LOmegaAlphabet, a lasso word on which the candidate disagrees with L_ω.
// It always succeeds — which is Corollary 3.2 (take C = ∅ to lift the
// statement to timed ω-regular languages, as the paper does).
func RefuteLOmega(b *Buchi) OmegaCounterexample {
	n := b.NumStates
	if n < 1 {
		n = 1
	}
	// Step 1: the members (a b^x c d^x $)^ω for x ≤ n+1 must all be
	// accepted.
	for x := 1; x <= n+1; x++ {
		m := MemberLasso(x)
		if _, ok := b.AcceptsLasso(m); !ok {
			return OmegaCounterexample{Word: m, BuchiAccepts: false, InLanguage: true}
		}
	}
	// Step 2: pump the accepting run of the largest member.
	x := n + 1
	m := MemberLasso(x)
	run, ok := b.AcceptsLasso(m)
	if !ok {
		// Cannot happen: step 1 just accepted it. Keep the refuter total.
		return OmegaCounterexample{Word: m, BuchiAccepts: false, InLanguage: true}
	}
	L := len(m.Cycle) // 2x+3
	LL := len(run.LoopStates)
	stemLen := len(run.StemStates) - 1 // symbols consumed by the stem
	// Position (within the cycle) of the k-th loop symbol.
	loopPos := func(k int) int { return (stemLen + k) % L }

	// Rotate the loop so that index 0 sits at the start of a b-block
	// (cycle position 1). Rotating by r extends the stem by r symbols.
	r := 0
	for loopPos(r) != 1 {
		r++
	}
	rotStates := make([]int, LL)
	for k := 0; k < LL; k++ {
		rotStates[k] = run.LoopStates[(r+k)%LL]
	}
	newStemLen := stemLen + r
	rotPos := func(k int) int { return (newStemLen + k) % L }

	// The states before consuming each of the x b's, plus the state after
	// the last b, are rotStates[0..x] — x+1 = n+2 values over n states.
	seen := make(map[int]int)
	k1, k2 := -1, -1
	for k := 0; k <= x && k < LL; k++ {
		if prev, ok := seen[rotStates[k]]; ok {
			k1, k2 = prev, k
			break
		}
		seen[rotStates[k]] = k
	}
	if k1 < 0 {
		// Unreachable by pigeonhole (x+1 > NumStates); keep total.
		return OmegaCounterexample{Word: m, BuchiAccepts: true, InLanguage: true}
	}
	// Pumped loop: duplicate the segment [k1, k2). The duplicated input is
	// b^{k2-k1}, so exactly one block per loop traversal becomes
	// a·b^{x+(k2-k1)}·c·d^x — not in L.
	pumpedSyms := make([]word.Symbol, 0, LL+(k2-k1))
	for k := 0; k < k2; k++ {
		pumpedSyms = append(pumpedSyms, m.Cycle[rotPos(k)])
	}
	for k := k1; k < LL; k++ {
		pumpedSyms = append(pumpedSyms, m.Cycle[rotPos(k)])
	}
	prefixSyms := make([]word.Symbol, newStemLen)
	for i := 0; i < newStemLen; i++ {
		prefixSyms[i] = m.Cycle[i%L]
	}
	pumped := LassoWord{Prefix: prefixSyms, Cycle: pumpedSyms}
	_, accepts := b.AcceptsLasso(pumped)
	return OmegaCounterexample{
		Word:         pumped,
		BuchiAccepts: accepts,
		InLanguage:   InLOmega(pumped),
		PumpedFromX:  x,
		Pumped:       true,
	}
}

// CandidateShapeBuchi returns a Büchi automaton accepting (a⁺b⁺c⁺d⁺$)^ω —
// the finite-state over-approximation of L_ω. RefuteLOmega must catch it
// with a pumped lasso it wrongly accepts.
func CandidateShapeBuchi() *Buchi {
	b := NewBuchi(LOmegaAlphabet, 5, 0)
	b.AddTrans(0, "a", 1)
	b.AddTrans(1, "a", 1)
	b.AddTrans(1, "b", 2)
	b.AddTrans(2, "b", 2)
	b.AddTrans(2, "c", 3)
	b.AddTrans(3, "c", 3)
	b.AddTrans(3, "d", 4)
	b.AddTrans(4, "d", 4)
	b.AddTrans(4, "$", 0)
	b.SetAccept(0)
	return b
}

// CandidateBoundedBuchi counts b's and d's exactly up to k, then gives up on
// larger blocks (rejecting them). RefuteLOmega must catch it with a member
// whose block size exceeds k.
func CandidateBoundedBuchi(k int) *Buchi {
	// Reuse the DFA construction and tie acceptance back to the start.
	d := automata.CandidateBoundedDFA(k)
	b := NewBuchi(LOmegaAlphabet, d.NumStates, d.Start)
	for s, m := range d.Trans {
		for sym, t := range m {
			b.AddTrans(s, word.Symbol(sym), t)
		}
	}
	for s := range d.Accept {
		b.AddTrans(s, "$", d.Start)
	}
	b.SetAccept(d.Start)
	return b
}
