package omega

import (
	"sort"

	"rtc/internal/word"
)

// Muller is a Muller automaton (§2.1): instead of accepting states it
// carries an acceptance family 𝓕 ⊆ 2^S, and a run r is accepting iff
// inf(r) ∈ 𝓕.
type Muller struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     []int
	Trans     map[int]map[word.Symbol][]int
	// Family is the acceptance family; each element is a state set.
	Family []map[int]bool
}

// NewMuller allocates an empty Muller automaton.
func NewMuller(alphabet []word.Symbol, numStates int, start ...int) *Muller {
	return &Muller{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Trans:     make(map[int]map[word.Symbol][]int),
	}
}

// AddTrans adds a transition (from, sym) → to.
func (m *Muller) AddTrans(from int, sym word.Symbol, to int) {
	mm, ok := m.Trans[from]
	if !ok {
		mm = make(map[word.Symbol][]int)
		m.Trans[from] = mm
	}
	mm[sym] = append(mm[sym], to)
}

// AddAccepting adds the state set F to the acceptance family.
func (m *Muller) AddAccepting(states ...int) {
	f := make(map[int]bool, len(states))
	for _, s := range states {
		f[s] = true
	}
	m.Family = append(m.Family, f)
}

func (m *Muller) succ(s int, sym word.Symbol) []int {
	if mm, ok := m.Trans[s]; ok {
		return mm[sym]
	}
	return nil
}

// AcceptsLasso decides — exactly — whether the Muller automaton accepts the
// lasso word: some run must have inf(r) ∈ 𝓕.
//
// The decision uses the product graph of automaton × word positions. A run's
// infinitely-visited node set is a strongly connected subgraph of the cyclic
// part, contained in an SCC; conversely, any reachable SCC of the product
// graph restricted to nodes whose states lie in F, containing at least one
// edge and projecting onto exactly F, yields a run with inf(r) = F (walk the
// SCC forever, covering all its nodes).
func (m *Muller) AcceptsLasso(w LassoWord) bool {
	if len(w.Cycle) == 0 {
		return false
	}
	prefixLen, cycleLen := len(w.Prefix), len(w.Cycle)
	numPos := prefixLen + cycleLen
	id := func(n node) int { return n.state*numPos + n.pos }

	// Forward reachability.
	reached := make(map[int]node)
	var queue []node
	push := func(n node) {
		if _, ok := reached[id(n)]; !ok {
			reached[id(n)] = n
			queue = append(queue, n)
		}
	}
	for _, s := range m.Start {
		push(node{s, 0})
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		sym := symbolAtClass(w, cur.pos)
		np := posAfter(cur.pos, prefixLen, cycleLen)
		for _, t := range m.succ(cur.state, sym) {
			push(node{t, np})
		}
	}

	for _, F := range m.Family {
		if m.familyFeasible(w, F, reached) {
			return true
		}
	}
	return false
}

// familyFeasible checks a single family member F as described on
// AcceptsLasso.
func (m *Muller) familyFeasible(w LassoWord, F map[int]bool, reached map[int]node) bool {
	if len(F) == 0 {
		return false
	}
	prefixLen, cycleLen := len(w.Prefix), len(w.Cycle)
	numPos := prefixLen + cycleLen
	id := func(n node) int { return n.state*numPos + n.pos }

	// Restricted node set: reachable cyclic-part nodes with state ∈ F.
	restricted := make(map[int]node)
	for k, n := range reached {
		if n.pos >= prefixLen && F[n.state] {
			restricted[k] = n
		}
	}
	if len(restricted) == 0 {
		return false
	}
	// Edges within the restriction.
	succs := make(map[int][]int)
	for k, n := range restricted {
		sym := symbolAtClass(w, n.pos)
		np := posAfter(n.pos, prefixLen, cycleLen)
		for _, t := range m.succ(n.state, sym) {
			tk := id(node{t, np})
			if _, ok := restricted[tk]; ok {
				succs[k] = append(succs[k], tk)
			}
		}
	}
	// Tarjan SCC over the restricted graph.
	for _, comp := range tarjan(restricted, succs) {
		// An SCC supports an infinite run iff it has an internal edge
		// (non-trivial SCC, or a self-loop).
		hasEdge := false
		inComp := make(map[int]bool, len(comp))
		for _, k := range comp {
			inComp[k] = true
		}
		proj := make(map[int]bool)
		for _, k := range comp {
			proj[restricted[k].state] = true
			for _, t := range succs[k] {
				if inComp[t] {
					hasEdge = true
				}
			}
		}
		if !hasEdge {
			continue
		}
		if len(proj) != len(F) {
			continue
		}
		match := true
		for s := range F {
			if !proj[s] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// tarjan computes strongly connected components of the graph given by node
// keys and successor lists. Iterative to avoid deep recursion.
func tarjan(nodes map[int]node, succs map[int][]int) [][]int {
	keys := make([]int, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Ints(keys) // determinism

	index := make(map[int]int)
	lowlink := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var comps [][]int
	counter := 0

	type frame struct {
		v  int
		ci int // next child index
	}
	for _, root := range keys {
		if _, ok := index[root]; ok {
			continue
		}
		var callStack []frame
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		callStack = append(callStack, frame{v: root})
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			advanced := false
			for f.ci < len(succs[f.v]) {
				ch := succs[f.v][f.ci]
				f.ci++
				if _, ok := index[ch]; !ok {
					index[ch] = counter
					lowlink[ch] = counter
					counter++
					stack = append(stack, ch)
					onStack[ch] = true
					callStack = append(callStack, frame{v: ch})
					advanced = true
					break
				} else if onStack[ch] {
					if index[ch] < lowlink[f.v] {
						lowlink[f.v] = index[ch]
					}
				}
			}
			if advanced {
				continue
			}
			// Pop f.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp = append(comp, u)
					if u == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// FromBuchi converts a Büchi automaton into an equivalent Muller automaton:
// the family contains every state set that intersects the Büchi accepting
// set and is realizable; by definition inf(r) ∩ F ≠ ∅ ⟺ inf(r) ∈ {S' ⊆ S :
// S' ∩ F ≠ ∅}, so we enumerate those subsets. Exponential in |S| — intended
// for the small automata of tests and demonstrations.
func FromBuchi(b *Buchi) *Muller {
	m := NewMuller(b.Alphabet, b.NumStates, b.Start...)
	m.Trans = b.Trans
	n := b.NumStates
	for mask := 1; mask < 1<<uint(n); mask++ {
		hit := false
		var states []int
		for s := 0; s < n; s++ {
			if mask&(1<<uint(s)) != 0 {
				states = append(states, s)
				if b.Accept[s] {
					hit = true
				}
			}
		}
		if hit {
			m.AddAccepting(states...)
		}
	}
	return m
}
