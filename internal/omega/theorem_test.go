package omega

import (
	"math/rand"
	"testing"
)

func TestInLOmega(t *testing.T) {
	yes := []LassoWord{
		MemberLasso(1),
		MemberLasso(3),
		lasso("abcd$", "aabbccdd$"), // mixed block sizes
		lasso("abcd$abbcdd$", "abbbcccdddbbb$"[:0]+"abcd$"), // prefix blocks + simple cycle
	}
	for _, w := range yes {
		if !InLOmega(w) {
			t.Errorf("InLOmega(%v) = false, want true", w)
		}
	}
	no := []LassoWord{
		lasso("", "abcdd$"),     // unbalanced
		lasso("", "abcd"),       // no $: final block infinite
		lasso("abdc$", "abcd$"), // bad prefix block
		lasso("", "$"),          // empty blocks
		lasso("", "bcd$"),       // u = 0
	}
	for _, w := range no {
		if InLOmega(w) {
			t.Errorf("InLOmega(%v) = true, want false", w)
		}
	}
}

func TestMemberLasso(t *testing.T) {
	m := MemberLasso(2)
	want := "abbcdd$"
	if len(m.Cycle) != len(want) {
		t.Fatalf("cycle = %v", m.Cycle)
	}
	for i := range want {
		if string(m.Cycle[i]) != want[i:i+1] {
			t.Fatalf("cycle = %v, want %s", m.Cycle, want)
		}
	}
}

func checkOmegaCounterexample(t *testing.T, b *Buchi, ce OmegaCounterexample) {
	t.Helper()
	if ce.BuchiAccepts == ce.InLanguage {
		t.Fatalf("not a disagreement: %v buchi=%v inL=%v", ce.Word, ce.BuchiAccepts, ce.InLanguage)
	}
	if _, ok := b.AcceptsLasso(ce.Word); ok != ce.BuchiAccepts {
		t.Fatalf("reported Büchi verdict wrong for %v", ce.Word)
	}
	if got := InLOmega(ce.Word); got != ce.InLanguage {
		t.Fatalf("reported L_ω verdict wrong for %v", ce.Word)
	}
}

// Corollary 3.2, on the over-approximating candidate: it accepts all members
// and must be refuted by a pumped lasso it wrongly accepts.
func TestRefuteLOmegaShapeCandidate(t *testing.T) {
	b := CandidateShapeBuchi()
	// Sanity: it accepts members.
	for x := 1; x <= 4; x++ {
		if _, ok := b.AcceptsLasso(MemberLasso(x)); !ok {
			t.Fatalf("shape candidate rejects member x=%d", x)
		}
	}
	ce := RefuteLOmega(b)
	checkOmegaCounterexample(t, b, ce)
	if !ce.Pumped || !ce.BuchiAccepts || ce.InLanguage {
		t.Errorf("expected a pumped false-accept, got %+v", ce)
	}
}

// Bounded-counting candidates are exact up to their bound and must be
// refuted by a larger member they wrongly reject.
func TestRefuteLOmegaBoundedCandidates(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		b := CandidateBoundedBuchi(k)
		for x := 1; x <= k; x++ {
			if _, ok := b.AcceptsLasso(MemberLasso(x)); !ok {
				t.Fatalf("k=%d: bounded candidate rejects member x=%d", k, x)
			}
		}
		ce := RefuteLOmega(b)
		checkOmegaCounterexample(t, b, ce)
		if ce.BuchiAccepts || !ce.InLanguage {
			t.Errorf("k=%d: expected a false reject, got %+v", k, ce)
		}
	}
}

// Corollary 3.2, sampled over arbitrary machines: RefuteLOmega finds a
// genuine disagreement for every random Büchi automaton.
func TestRefuteLOmegaRandomBuchi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		b := NewBuchi(LOmegaAlphabet, n, rng.Intn(n))
		for s := 0; s < n; s++ {
			for _, a := range LOmegaAlphabet {
				for c := rng.Intn(3); c > 0; c-- {
					b.AddTrans(s, a, rng.Intn(n))
				}
			}
			if rng.Intn(3) == 0 {
				b.SetAccept(s)
			}
		}
		ce := RefuteLOmega(b)
		checkOmegaCounterexample(t, b, ce)
	}
}
