// Package dacc implements the data-accumulating paradigm of §4.2: a
// d-algorithm works on a virtually endless input stream whose arrival rate
// is governed by a data arrival law f(n, t), and the computation terminates
// when all currently arrived data have been processed before another datum
// arrives. The family of laws used throughout the paper (equation (4)) is
//
//	f(n, t) = n + k·n^γ·t^β.
//
// The package provides the laws, arrival-time inversion, a deterministic
// termination simulation with a work-rate model (the number of processors
// enters as a rate multiplier, feeding the rt-PROC experiments of §6/§7),
// an analytic fixed-point predictor, and the §4.2 timed-word construction
// with its two-process acceptor.
package dacc

import (
	"fmt"
	"math"

	"rtc/internal/timeseq"
)

// Law is a data arrival law: Total(n, t) is the cumulative number of data
// items that have arrived by time t, given n items available beforehand.
// Laws must be non-decreasing in t with Total(n, 0) = n.
type Law interface {
	Total(n uint64, t timeseq.Time) uint64
	String() string
}

// PolyLaw is the paper's law family (4): f(n,t) = n + k·n^γ·t^β.
type PolyLaw struct {
	K     float64
	Gamma float64
	Beta  float64
}

// Total implements Law.
func (l PolyLaw) Total(n uint64, t timeseq.Time) uint64 {
	extra := l.K * math.Pow(float64(n), l.Gamma) * math.Pow(float64(t), l.Beta)
	if math.IsInf(extra, 1) || extra > 1e18 {
		return n + uint64(1e18)
	}
	return n + uint64(extra)
}

// String implements Law.
func (l PolyLaw) String() string {
	return fmt.Sprintf("f(n,t)=n+%g·n^%g·t^%g", l.K, l.Gamma, l.Beta)
}

// ConstantLaw delivers no data beyond the initial batch — the degenerate
// case in which a d-algorithm is an ordinary off-line algorithm.
type ConstantLaw struct{}

// Total implements Law.
func (ConstantLaw) Total(n uint64, t timeseq.Time) uint64 { return n }

// String implements Law.
func (ConstantLaw) String() string { return "f(n,t)=n" }

// ArrivalTime returns the arrival time t_j of the j-th datum (1-indexed):
// 0 for j ≤ n, otherwise the smallest t with Total(n, t) ≥ j. The second
// result is false when no such time exists below the cap.
func ArrivalTime(law Law, n uint64, j uint64, cap timeseq.Time) (timeseq.Time, bool) {
	if j <= n {
		return 0, true
	}
	if law.Total(n, cap) < j {
		return 0, false
	}
	lo, hi := timeseq.Time(0), cap
	for lo < hi {
		mid := lo + (hi-lo)/2
		if law.Total(n, mid) >= j {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Workload is the cost model of the d-algorithm: the worker performs Rate
// work units per chronon and each datum requires WorkPerDatum units. A
// p-processor implementation contributes p·Rate (the PRAM-flavoured model
// of §6: perfect work division).
type Workload struct {
	Rate         uint64
	WorkPerDatum uint64
}

// Outcome describes one simulated d-algorithm run.
type Outcome struct {
	// Terminated reports whether the computation caught up with the stream.
	Terminated bool
	// At is the termination time (valid when Terminated).
	At timeseq.Time
	// Processed is the number of data items processed at termination (the
	// problem size the d-algorithm actually solved).
	Processed uint64
}

// Simulate runs the d-algorithm termination dynamics tick by tick: data
// arriving at tick t are available at t; the worker spends Rate units per
// tick; the run terminates at the end of the first tick at which every
// arrived datum is processed and no further datum arrives at the same tick.
// The simulation gives up at maxT (Outcome.Terminated == false), which is
// the finite observer's verdict on divergence.
func Simulate(law Law, n uint64, w Workload, maxT timeseq.Time) Outcome {
	if w.Rate == 0 || w.WorkPerDatum == 0 {
		return Outcome{}
	}
	var workDone uint64
	for t := timeseq.Time(0); t <= maxT; t++ {
		arrived := law.Total(n, t)
		workDone += w.Rate
		processed := workDone / w.WorkPerDatum
		if processed > arrived {
			// Idle capacity does not bank: clamp to the arrived data.
			processed = arrived
			workDone = processed * w.WorkPerDatum
		}
		if processed == arrived {
			// All currently arrived data processed "before another datum
			// arrives": in discrete time the next datum arrives at tick
			// t+1 at the earliest, strictly after the worker went idle at
			// the end of tick t. This is the catch-up fixed point
			// T = c·f(n,T) of the d-algorithm analyses.
			return Outcome{Terminated: true, At: t, Processed: processed}
		}
	}
	return Outcome{Processed: workDone / w.WorkPerDatum}
}

// Predict computes the analytic termination time as the least fixed point of
//
//	T(t) = ⌈ WorkPerDatum · f(n, t) / Rate ⌉
//
// by monotone iteration from t = 0. It agrees with Simulate up to the
// start-up discretization. The second result is false on divergence within
// the cap.
func Predict(law Law, n uint64, w Workload, cap timeseq.Time) (timeseq.Time, bool) {
	if w.Rate == 0 || w.WorkPerDatum == 0 {
		return 0, false
	}
	var t timeseq.Time
	for iter := 0; iter < 1_000_000; iter++ {
		need := law.Total(n, t) * w.WorkPerDatum
		next := timeseq.Time((need + w.Rate - 1) / w.Rate)
		if next > cap {
			return 0, false
		}
		if next <= t {
			return t, true
		}
		t = next
	}
	return 0, false
}

// CriticalBeta reports the asymptotic sustainability regime of a PolyLaw
// for the given workload — whether a worker that has fallen arbitrarily far
// behind can still catch up — following the characterization of the
// d-algorithms papers the section builds on:
//
//   - β < 1: the arrival rate decays relative to linear work — the worker
//     always catches up eventually;
//   - β = 1: catch-up iff the steady arrival work k·n^γ·WorkPerDatum is
//     strictly below Rate;
//   - β > 1: arrivals outgrow any linear-rate worker — once behind, the
//     worker never recovers (an individual run can still terminate early,
//     before the stream ramps up).
func CriticalBeta(l PolyLaw, n uint64, w Workload) (terminates bool) {
	switch {
	case l.Beta < 1:
		return true
	case l.Beta == 1:
		return l.K*math.Pow(float64(n), l.Gamma)*float64(w.WorkPerDatum) < float64(w.Rate)
	default:
		return l.K <= 0
	}
}

// MinProcessors returns the least p ∈ [1, maxP] for which a p-processor
// implementation (Rate scaled by p) terminates within maxT, and false if
// none does. This is the experimental probe into the rt-PROC(p) hierarchy
// question of §3.2/§7: for arrival laws in the β = 1 regime the answer
// grows with k·n^γ, so added processors make the difference between success
// and failure.
func MinProcessors(law Law, n uint64, w Workload, maxP int, maxT timeseq.Time) (int, bool) {
	for p := 1; p <= maxP; p++ {
		scaled := Workload{Rate: w.Rate * uint64(p), WorkPerDatum: w.WorkPerDatum}
		if out := Simulate(law, n, scaled, maxT); out.Terminated {
			return p, true
		}
	}
	return 0, false
}
