package dacc

import (
	"testing"

	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func TestSimulateCTerminates(t *testing.T) {
	law := PolyLaw{K: 0.5, Gamma: 0, Beta: 1} // one correction every 2 chronons
	w := CWorkload{Rate: 2, WorkPerDatum: 1, WorkPerCorrect: 1}
	out := SimulateC(law, 8, w, 100000)
	if !out.Terminated {
		t.Fatalf("c-algorithm diverged: %+v", out)
	}
	if out.Processed < 8 {
		t.Errorf("processed %d < initial batch", out.Processed)
	}
}

func TestSimulateCKnifeEdge(t *testing.T) {
	// Corrections every chronon costing 3 units against rate 2: the rework
	// stream alone outruns the worker.
	law := PolyLaw{K: 1, Gamma: 0, Beta: 1}
	w := CWorkload{Rate: 2, WorkPerDatum: 1, WorkPerCorrect: 3}
	if out := SimulateC(law, 8, w, 20000); out.Terminated {
		t.Errorf("super-rate correction stream terminated: %+v", out)
	}
	// Cheap rework (1 unit) under the same law terminates.
	w.WorkPerCorrect = 1
	if out := SimulateC(law, 8, w, 20000); !out.Terminated {
		t.Error("sub-rate correction stream diverged")
	}
}

func TestSimulateCDegenerate(t *testing.T) {
	if out := SimulateC(ConstantLaw{}, 5, CWorkload{}, 100); out.Terminated {
		t.Error("zero workload terminated")
	}
	// No corrections at all: a plain off-line run.
	w := CWorkload{Rate: 1, WorkPerDatum: 2, WorkPerCorrect: 1}
	out := SimulateC(ConstantLaw{}, 5, w, 1000)
	if !out.Terminated || out.Processed != 5 {
		t.Fatalf("offline c-run = %+v", out)
	}
	// 10 units of work at rate 1, tick 0 counts: t = 9.
	if out.At != 9 {
		t.Errorf("At = %d, want 9", out.At)
	}
}

func TestCorrectionSymRoundTrip(t *testing.T) {
	syms := CorrectionSym(Correction{Index: 3, Value: 42})
	rec, ok := encoding.ParseRecord(syms)
	if !ok || rec[0] != "corr" || rec[1] != "3" || rec[2] != "42" {
		t.Fatalf("record = %v", rec)
	}
}

func TestCInstanceWordShape(t *testing.T) {
	inst := CInstance{
		Law:        PolyLaw{K: 0.5, Gamma: 0, Beta: 1},
		N:          3,
		Datum:      func(j uint64) uint64 { return j },
		Correct:    func(k uint64) Correction { return Correction{Index: 1, Value: 9} },
		Proposed:   []word.Symbol{encoding.Num(6)},
		ArrivalCap: 1000,
	}
	w := inst.Word()
	p := word.Prefix(w, 30)
	// Header: #6 | #1 #2 #3 |
	if p[0].Sym != encoding.Num(6) || p[1].Sym != Sep || p[5].Sym != Sep {
		t.Fatalf("header = %v", p[:6])
	}
	// Corrections arrive as records at law times (first at t=2), each
	// announced by a c one chronon earlier.
	sawCorr := false
	cAt := map[timeseq.Time]int{}
	for i := 0; i < len(p); i++ {
		if p[i].Sym == C {
			cAt[p[i].At]++
		}
		if p[i].Sym == encoding.Dollar && i+1 < len(p) && p[i+1].Sym == "c" {
			// record start followed by payload char 'c' (of "corr")
			sawCorr = true
			if cAt[p[i].At-1] == 0 {
				t.Fatalf("correction at %d without marker at %d", p[i].At, p[i].At-1)
			}
		}
	}
	if !sawCorr {
		t.Fatal("no correction record in prefix")
	}
	if !word.MonotoneWithin(w, 64) {
		t.Error("c-instance word not monotone")
	}
}

func TestCAcceptorEndToEnd(t *testing.T) {
	law := PolyLaw{K: 1, Gamma: 0.5, Beta: 0.5}
	wl := CWorkload{Rate: 2, WorkPerDatum: 1, WorkPerCorrect: 1}
	inst, sim := BuildCInstance(law, 8, wl, 997, 100000, false)
	if !sim.Terminated {
		t.Fatal("expected termination")
	}
	a := &CAcceptor{Work: wl, Mod: 997}
	m := core.NewMachine(a, inst.Word())
	res := core.RunForVerdict(m, uint64(sim.At)*4+100)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("member verdict = %v (sim %+v)", res.Verdict, sim)
	}
	if res.DecidedAt != sim.At {
		t.Errorf("acceptor decided at %d, simulation at %d", res.DecidedAt, sim.At)
	}

	bad, _ := BuildCInstance(law, 8, wl, 997, 100000, true)
	a2 := &CAcceptor{Work: wl, Mod: 997}
	m2 := core.NewMachine(a2, bad.Word())
	if res := core.RunForVerdict(m2, uint64(sim.At)*4+100); res.Verdict != core.RejectProven {
		t.Fatalf("sabotaged verdict = %v", res.Verdict)
	}
}

// The defining difference from d-algorithms: corrections rework existing
// data, so the final solution reflects overwrites, not appends.
func TestCAcceptorAppliesCorrections(t *testing.T) {
	// One datum (value 5), one correction (datum 1 → 7) arriving at t=4.
	law := stepLaw{at: 4}
	inst := CInstance{
		Law:        law,
		N:          1,
		Datum:      func(j uint64) uint64 { return 5 },
		Correct:    func(k uint64) Correction { return Correction{Index: 1, Value: 7} },
		Proposed:   []word.Symbol{encoding.Num(7)},
		ArrivalCap: 100,
	}
	wl := CWorkload{Rate: 1, WorkPerDatum: 1, WorkPerCorrect: 1}
	a := &CAcceptor{Work: wl, Mod: 997}
	m := core.NewMachine(a, inst.Word())
	res := core.RunForVerdict(m, 200)
	// The worker catches up at t=0 with sum 5 — but the proposed output is
	// the corrected 7, so the first comparison rejects. (A c-algorithm
	// member word must propose the solution at the *termination* point; a
	// termination point before the correction has the uncorrected sum.)
	if res.Verdict != core.RejectProven {
		t.Fatalf("verdict = %v; catch-up precedes the correction", res.Verdict)
	}
	// With the uncorrected sum proposed, it accepts at the first catch-up.
	inst.Proposed = []word.Symbol{encoding.Num(5)}
	a2 := &CAcceptor{Work: wl, Mod: 997}
	res = core.RunForVerdict(core.NewMachine(a2, inst.Word()), 200)
	if res.Verdict != core.AcceptProven || res.DecidedAt != 0 {
		t.Fatalf("verdict = %v at %d", res.Verdict, res.DecidedAt)
	}
}

// stepLaw delivers exactly one extra datum, at time `at`.
type stepLaw struct{ at timeseq.Time }

func (l stepLaw) Total(n uint64, t timeseq.Time) uint64 {
	if t >= l.at {
		return n + 1
	}
	return n
}
func (l stepLaw) String() string { return "step" }
