package dacc

import (
	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// C is the special symbol of the §4.2 construction announcing, one chronon
// ahead, that another datum is about to arrive; P_m uses it to know whether
// P_w caught up with the stream "before another datum arrives".
const C = word.Symbol("c")

// Sep delimits the proposed output and the initial batch at time 0 (the
// paper omits delimiters for clarity; we add them so the acceptor can
// parse).
const Sep = word.Symbol("|")

// Instance is a data-accumulating problem instance: an unbounded stream of
// data whose j-th item (1-indexed) is Datum(j), arriving under Law with an
// initial batch of N items, plus the proposed output the acceptor compares
// against.
type Instance struct {
	Law      Law
	N        uint64
	Datum    func(j uint64) word.Symbol
	Proposed []word.Symbol
	// ArrivalCap bounds the arrival-time inversion (a construction-side
	// horizon; divergent laws stop producing elements beyond it).
	ArrivalCap timeseq.Time
}

// Word builds the timed ω-word of the §4.2 construction: the proposed
// output and the initial batch at time 0, then each later datum preceded by
// the marker c one chronon earlier.
//
// Deviation from the paper's letter: with bursty laws the paper's exact
// interleaving σ…(c, ι_j)… can break monotonicity (the c of a datum at
// t could precede data at t−1 in index order but follow them in time). We
// emit, at every tick t, first the data arriving at t and then one c for
// each datum arriving at t+1, preserving both monotonicity and the marker's
// semantics (c at t ⇔ a datum arrives at t+1).
func (inst Instance) Word() word.Word {
	var header word.Finite
	for _, s := range inst.Proposed {
		header = append(header, word.TimedSym{Sym: s, At: 0})
	}
	header = append(header, word.TimedSym{Sym: Sep, At: 0})
	for j := uint64(1); j <= inst.N; j++ {
		header = append(header, word.TimedSym{Sym: inst.Datum(j), At: 0})
	}
	header = append(header, word.TimedSym{Sym: Sep, At: 0})

	nextJ := inst.N + 1 // next datum index to emit
	emittedHeader := 0
	t := timeseq.Time(0)
	var queue word.Finite // elements pending for the current tick

	// cCountAt returns how many data arrive exactly at time x.
	cCountAt := func(x timeseq.Time, firstJ uint64) uint64 {
		if x > inst.ArrivalCap {
			return 0
		}
		var cnt uint64
		for j := firstJ; ; j++ {
			at, ok := ArrivalTime(inst.Law, inst.N, j, inst.ArrivalCap)
			if !ok || at != x {
				break
			}
			cnt++
		}
		return cnt
	}

	return word.Sequential(func() word.TimedSym {
		if emittedHeader < len(header) {
			e := header[emittedHeader]
			emittedHeader++
			if emittedHeader == len(header) {
				// Seed the time-0 trailer: markers for data at time 1.
				for c := cCountAt(1, nextJ); c > 0; c-- {
					queue = append(queue, word.TimedSym{Sym: C, At: 0})
				}
			}
			return e
		}
		for {
			if len(queue) > 0 {
				e := queue[0]
				queue = queue[1:]
				return e
			}
			// Advance to the next tick: data arriving at t+1, then markers
			// for t+2.
			t++
			for j := nextJ; ; j++ {
				at, ok := ArrivalTime(inst.Law, inst.N, j, inst.ArrivalCap)
				if !ok || at != t {
					break
				}
				queue = append(queue, word.TimedSym{Sym: inst.Datum(j), At: t})
				nextJ = j + 1
			}
			for c := cCountAt(t+1, nextJ); c > 0; c-- {
				queue = append(queue, word.TimedSym{Sym: C, At: t})
			}
			if len(queue) == 0 && t >= inst.ArrivalCap {
				// Beyond the construction horizon: keep the word total (and
				// well behaved) with an explicit idle marker.
				return word.TimedSym{Sym: "w", At: t}
			}
		}
	})
}

// OnlineSolver abstracts the on-line algorithm P_w wraps in §4.2: it absorbs
// data items one by one and always has a partial solution for the prefix
// processed so far ("once such a signal is emitted the p-th time, P_w has a
// partial solution immediately available for ι_1…ι_p").
type OnlineSolver interface {
	// Absorb integrates one datum into the running solution.
	Absorb(s word.Symbol)
	// Solution returns the solution for the data absorbed so far.
	Solution() []word.Symbol
}

// ChecksumSolver is a tiny on-line solver: the solution is the running sum
// of numeric data modulo Mod, encoded as one number symbol.
type ChecksumSolver struct {
	Mod uint64
	sum uint64
}

// Absorb implements OnlineSolver.
func (c *ChecksumSolver) Absorb(s word.Symbol) {
	v, _ := encoding.AsNum(s)
	c.sum = (c.sum + v) % c.Mod
}

// Solution implements OnlineSolver.
func (c *ChecksumSolver) Solution() []word.Symbol {
	return []word.Symbol{encoding.Num(c.sum)}
}

// Acceptor is the §4.2 two-process acceptor as a core.Program: P_w consumes
// buffered data at Rate work units per chronon (WorkPerDatum units each),
// emitting a completion signal per datum; P_m accepts when P_w has caught up
// with the arrived data, no further datum is due the next chronon (no c
// marker this tick), and the partial solution matches the proposed one.
type Acceptor struct {
	core.Control
	Solver   OnlineSolver
	Work     Workload
	parsed   bool
	proposed []word.Symbol
	buffer   []word.Symbol // arrived but unprocessed data
	workAcc  uint64
	absorbed uint64
	sawC     bool // a datum arrives next chronon
}

// Tick implements core.Program.
func (a *Acceptor) Tick(t *core.Tick) {
	defer a.Drive(t)
	if !a.parsed {
		if t.Now != 0 || len(t.New) == 0 {
			a.RejectForever()
			return
		}
		section := 0
		for _, e := range t.New {
			switch {
			case e.Sym == Sep:
				section++
			case section == 0:
				a.proposed = append(a.proposed, e.Sym)
			case section == 1:
				a.buffer = append(a.buffer, e.Sym)
			case e.Sym == C:
				a.sawC = true
			}
		}
		if section < 2 {
			a.RejectForever()
			return
		}
		a.parsed = true
	} else {
		a.sawC = false
		for _, e := range t.New {
			switch e.Sym {
			case C:
				a.sawC = true
			case "w", Sep:
				// idle marker / stray separator: ignore
			default:
				a.buffer = append(a.buffer, e.Sym)
			}
		}
	}
	if a.Decided() {
		return
	}
	// P_w: one chronon of work.
	a.workAcc += a.Work.Rate
	for len(a.buffer) > 0 && a.workAcc >= a.Work.WorkPerDatum {
		a.workAcc -= a.Work.WorkPerDatum
		a.Solver.Absorb(a.buffer[0])
		a.buffer = a.buffer[1:]
		a.absorbed++
	}
	if len(a.buffer) == 0 {
		a.workAcc = 0 // idle cycles are lost; partial progress on a pending
		// datum is kept
	}
	// P_m: termination check — P_w caught up with every arrived datum; the
	// next datum (announced by c for tick t+1) arrives strictly later, so
	// "all currently arrived data have been processed before another datum
	// arrives" holds at the end of this tick.
	if len(a.buffer) == 0 && a.absorbed > 0 {
		if symsEqual(a.Solver.Solution(), a.proposed) {
			a.AcceptForever()
		} else {
			a.RejectForever()
		}
	}
}

func symsEqual(a, b []word.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BuildInstance assembles a checksum instance whose proposed output is the
// true solution at the predicted termination point (or a corrupted one when
// sabotage is true), so tests and benchmarks can construct members and
// non-members of L(Π) at will.
func BuildInstance(law Law, n uint64, w Workload, mod uint64, cap timeseq.Time, sabotage bool) (Instance, Outcome) {
	out := Simulate(law, n, w, cap)
	datum := func(j uint64) word.Symbol { return encoding.Num((j*7 + 3) % mod) }
	sum := uint64(0)
	for j := uint64(1); j <= out.Processed; j++ {
		v, _ := encoding.AsNum(datum(j))
		sum = (sum + v) % mod
	}
	if sabotage {
		sum = (sum + 1) % mod
	}
	return Instance{
		Law:        law,
		N:          n,
		Datum:      datum,
		Proposed:   []word.Symbol{encoding.Num(sum)},
		ArrivalCap: cap,
	}, out
}
