package dacc

import (
	"testing"

	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func TestPolyLawTotal(t *testing.T) {
	l := PolyLaw{K: 2, Gamma: 1, Beta: 1} // n + 2nt
	if got := l.Total(3, 0); got != 3 {
		t.Errorf("Total(3,0) = %d", got)
	}
	if got := l.Total(3, 5); got != 33 {
		t.Errorf("Total(3,5) = %d, want 33", got)
	}
	sub := PolyLaw{K: 4, Gamma: 0.5, Beta: 0.5} // n + 4√n·√t
	if got := sub.Total(16, 4); got != 16+32 {
		t.Errorf("sublinear Total = %d, want 48", got)
	}
}

func TestLawMonotone(t *testing.T) {
	l := PolyLaw{K: 1.5, Gamma: 0.7, Beta: 0.9}
	prev := uint64(0)
	for tt := timeseq.Time(0); tt < 100; tt++ {
		cur := l.Total(10, tt)
		if cur < prev {
			t.Fatalf("law decreasing at %d", tt)
		}
		prev = cur
	}
}

func TestArrivalTime(t *testing.T) {
	l := PolyLaw{K: 1, Gamma: 0, Beta: 1} // n + t: one datum per tick
	for j := uint64(1); j <= 5; j++ {
		at, ok := ArrivalTime(l, 5, j, 1000)
		if !ok || at != 0 {
			t.Errorf("initial datum %d at %d", j, at)
		}
	}
	for j := uint64(6); j <= 10; j++ {
		at, ok := ArrivalTime(l, 5, j, 1000)
		if !ok || at != timeseq.Time(j-5) {
			t.Errorf("datum %d at %d, want %d", j, at, j-5)
		}
	}
	// Beyond the cap.
	if _, ok := ArrivalTime(l, 5, 5000, 100); ok {
		t.Error("arrival beyond cap reported")
	}
	// Constant law never delivers beyond n.
	if _, ok := ArrivalTime(ConstantLaw{}, 5, 6, 1<<40); ok {
		t.Error("constant law delivered datum 6")
	}
}

// β < 1: arrival gaps grow, so a linear worker always terminates.
func TestSimulateSublinearTerminates(t *testing.T) {
	l := PolyLaw{K: 2, Gamma: 0.5, Beta: 0.5}
	w := Workload{Rate: 1, WorkPerDatum: 1}
	out := Simulate(l, 16, w, 1_000_000)
	if !out.Terminated {
		t.Fatalf("sublinear law did not terminate: %+v", out)
	}
	if out.Processed < 16 {
		t.Errorf("processed %d < initial batch", out.Processed)
	}
	if !CriticalBeta(l, 16, w) {
		t.Error("CriticalBeta disagrees")
	}
}

// β = 1: the knife edge — terminates iff k·n^γ·work < rate.
func TestSimulateLinearKnifeEdge(t *testing.T) {
	w := Workload{Rate: 2, WorkPerDatum: 1}
	slowStream := PolyLaw{K: 0.4, Gamma: 0, Beta: 1}
	if out := Simulate(slowStream, 10, w, 100000); !out.Terminated {
		t.Errorf("sub-rate linear stream did not terminate: %+v", out)
	}
	fastStream := PolyLaw{K: 3, Gamma: 0, Beta: 1}
	if out := Simulate(fastStream, 10, w, 10000); out.Terminated {
		t.Errorf("super-rate linear stream terminated: %+v", out)
	}
	if !CriticalBeta(slowStream, 10, w) || CriticalBeta(fastStream, 10, w) {
		t.Error("CriticalBeta disagrees on the knife edge")
	}
}

// β > 1: once the worker is behind when the stream ramps up, it never
// recovers.
func TestSimulateSuperlinearDiverges(t *testing.T) {
	l := PolyLaw{K: 0.1, Gamma: 0, Beta: 1.5}
	w := Workload{Rate: 1, WorkPerDatum: 5} // initial batch alone takes 20 ticks
	if out := Simulate(l, 4, w, 20000); out.Terminated {
		t.Errorf("β>1 law terminated: %+v", out)
	}
	if CriticalBeta(l, 4, w) {
		t.Error("CriticalBeta disagrees for β>1")
	}
	// …but a fast worker finishes the initial batch before the superlinear
	// stream produces its first datum, and that early termination is legal.
	fast := Workload{Rate: 5, WorkPerDatum: 1}
	if out := Simulate(l, 4, fast, 20000); !out.Terminated || out.At != 0 {
		t.Errorf("early termination missed: %+v", out)
	}
}

// Zero workload parameters are rejected gracefully.
func TestSimulateDegenerate(t *testing.T) {
	if out := Simulate(ConstantLaw{}, 5, Workload{}, 100); out.Terminated {
		t.Error("zero workload terminated")
	}
	if _, ok := Predict(ConstantLaw{}, 5, Workload{}, 100); ok {
		t.Error("zero workload predicted")
	}
}

// Predict is the catch-up fixed point: it lower-bounds the simulated
// termination time and matches its order of magnitude in the terminating
// regimes.
func TestPredictAgainstSimulate(t *testing.T) {
	cases := []struct {
		law Law
		n   uint64
		w   Workload
	}{
		{PolyLaw{K: 2, Gamma: 0.5, Beta: 0.5}, 16, Workload{Rate: 1, WorkPerDatum: 1}},
		{PolyLaw{K: 0.4, Gamma: 0, Beta: 1}, 10, Workload{Rate: 2, WorkPerDatum: 1}},
		{ConstantLaw{}, 50, Workload{Rate: 5, WorkPerDatum: 2}},
	}
	for _, c := range cases {
		pred, okP := Predict(c.law, c.n, c.w, 1_000_000)
		sim := Simulate(c.law, c.n, c.w, 1_000_000)
		if !okP || !sim.Terminated {
			t.Fatalf("%v: pred ok=%v, sim=%+v", c.law, okP, sim)
		}
		// Simulate counts tick 0 as a working tick (work = rate·(t+1)),
		// Predict as rate·t, so the prediction may sit a couple of
		// chronons above the simulation.
		if pred > sim.At+2 {
			t.Errorf("%v: Predict %d exceeds simulation %d", c.law, pred, sim.At)
		}
		// Within 4x: the gap between catch-up and the first arrival gap.
		if sim.At > 4*(pred+10) {
			t.Errorf("%v: Predict %d far below simulation %d", c.law, pred, sim.At)
		}
	}
}

// Predict diverges exactly when the simulation does, on the β = 1 knife
// edge.
func TestPredictDivergence(t *testing.T) {
	w := Workload{Rate: 2, WorkPerDatum: 1}
	if _, ok := Predict(PolyLaw{K: 3, Gamma: 0, Beta: 1}, 10, w, 1_000_000); ok {
		t.Error("Predict terminated on a super-rate stream")
	}
}

// Termination time grows with k and n in the terminating regime — the shape
// of the d-algorithm analyses the paper builds on.
func TestTerminationTimeMonotoneInLoad(t *testing.T) {
	w := Workload{Rate: 4, WorkPerDatum: 1}
	prev := timeseq.Time(0)
	for _, k := range []float64{0.5, 1, 2, 3} {
		out := Simulate(PolyLaw{K: k, Gamma: 0, Beta: 1}, 100, w, 1_000_000)
		if !out.Terminated {
			t.Fatalf("k=%g did not terminate", k)
		}
		if out.At < prev {
			t.Errorf("termination time decreased at k=%g", k)
		}
		prev = out.At
	}
}

// The rt-PROC probe: the minimum processor count to terminate grows with
// the arrival coefficient, and for each load there is a p succeeding where
// p−1 fails.
func TestMinProcessors(t *testing.T) {
	w := Workload{Rate: 1, WorkPerDatum: 1}
	prev := 0
	for _, k := range []float64{0.5, 1.5, 2.5, 3.5} {
		law := PolyLaw{K: k, Gamma: 0, Beta: 1}
		p, ok := MinProcessors(law, 20, w, 8, 100000)
		if !ok {
			t.Fatalf("k=%g: no processor count up to 8 terminates", k)
		}
		if p < prev {
			t.Errorf("k=%g: MinProcessors %d < previous %d", k, p, prev)
		}
		prev = p
		if p > 1 {
			scaled := Workload{Rate: w.Rate * uint64(p-1), WorkPerDatum: w.WorkPerDatum}
			if out := Simulate(law, 20, scaled, 100000); out.Terminated {
				t.Errorf("k=%g: p-1=%d also terminates, not minimal", k, p-1)
			}
		}
	}
	if prev < 2 {
		t.Error("sweep never needed more than one processor — probe too weak")
	}
}

func TestWordConstructionShape(t *testing.T) {
	inst := Instance{
		Law:        PolyLaw{K: 1, Gamma: 0, Beta: 0.5}, // arrivals at √t pace
		N:          2,
		Datum:      func(j uint64) word.Symbol { return encoding.Num(j) },
		Proposed:   []word.Symbol{encoding.Num(99)},
		ArrivalCap: 1000,
	}
	w := inst.Word()
	p := word.Prefix(w, 12)
	// Header: #99 | #1 #2 | at time 0.
	if p[0].Sym != encoding.Num(99) || p[1].Sym != Sep ||
		p[2].Sym != encoding.Num(1) || p[3].Sym != encoding.Num(2) || p[4].Sym != Sep {
		t.Fatalf("header = %v", p[:5])
	}
	// Every later datum must be announced by a c exactly one chronon
	// earlier.
	cAt := map[timeseq.Time]int{}
	dataAt := map[timeseq.Time]int{}
	long := word.Prefix(w, 64)
	for _, e := range long {
		if e.Sym == C {
			cAt[e.At]++
		} else if _, ok := encoding.AsNum(e.Sym); ok && e.At > 0 {
			dataAt[e.At]++
		}
	}
	for at, n := range dataAt {
		if cAt[at-1] != n {
			t.Errorf("data at %d: %d items, %d markers at %d", at, n, cAt[at-1], at-1)
		}
	}
	if len(dataAt) == 0 {
		t.Fatal("no post-initial data in the word")
	}
	if !word.MonotoneWithin(w, 64) {
		t.Error("constructed word not monotone")
	}
}

// The full §4.2 pipeline: member words are accepted (proven), sabotaged
// words rejected, divergent streams never decided.
func TestAcceptorEndToEnd(t *testing.T) {
	law := PolyLaw{K: 2, Gamma: 0.5, Beta: 0.5}
	wl := Workload{Rate: 1, WorkPerDatum: 1}

	inst, sim := BuildInstance(law, 16, wl, 997, 100000, false)
	if !sim.Terminated {
		t.Fatal("expected terminating configuration")
	}
	a := &Acceptor{Solver: &ChecksumSolver{Mod: 997}, Work: wl}
	m := core.NewMachine(a, inst.Word())
	res := core.RunForVerdict(m, uint64(sim.At)*4+100)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("member verdict = %v (sim %+v)", res.Verdict, sim)
	}

	bad, _ := BuildInstance(law, 16, wl, 997, 100000, true)
	a2 := &Acceptor{Solver: &ChecksumSolver{Mod: 997}, Work: wl}
	m2 := core.NewMachine(a2, bad.Word())
	res2 := core.RunForVerdict(m2, uint64(sim.At)*4+100)
	if res2.Verdict != core.RejectProven {
		t.Fatalf("sabotaged verdict = %v", res2.Verdict)
	}
}

func TestAcceptorDivergentStreamUndecided(t *testing.T) {
	law := PolyLaw{K: 3, Gamma: 0, Beta: 1} // faster than the worker
	wl := Workload{Rate: 1, WorkPerDatum: 1}
	inst, sim := BuildInstance(law, 4, wl, 997, 2000, false)
	if sim.Terminated {
		t.Fatal("expected divergence")
	}
	a := &Acceptor{Solver: &ChecksumSolver{Mod: 997}, Work: wl}
	m := core.NewMachine(a, inst.Word())
	res := core.RunForVerdict(m, 500)
	if res.Verdict != core.RejectAtHorizon {
		t.Fatalf("divergent verdict = %v, want reject at horizon", res.Verdict)
	}
}

// Acceptor and Simulate agree on the termination instant.
func TestAcceptorMatchesSimulation(t *testing.T) {
	law := PolyLaw{K: 1, Gamma: 0.5, Beta: 0.5}
	wl := Workload{Rate: 2, WorkPerDatum: 3}
	inst, sim := BuildInstance(law, 9, wl, 997, 100000, false)
	if !sim.Terminated {
		t.Fatal("expected termination")
	}
	a := &Acceptor{Solver: &ChecksumSolver{Mod: 997}, Work: wl}
	m := core.NewMachine(a, inst.Word())
	res := core.RunForVerdict(m, uint64(sim.At)*4+100)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.DecidedAt != sim.At {
		t.Errorf("acceptor decided at %d, simulation at %d", res.DecidedAt, sim.At)
	}
}

func TestChecksumSolver(t *testing.T) {
	s := &ChecksumSolver{Mod: 10}
	s.Absorb(encoding.Num(7))
	s.Absorb(encoding.Num(8))
	sol := s.Solution()
	if len(sol) != 1 || sol[0] != encoding.Num(5) {
		t.Errorf("Solution = %v", sol)
	}
}
