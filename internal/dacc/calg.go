package dacc

import (
	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// This file implements c-algorithms, the sibling paradigm §4.2 points to:
// "data that arrive during the computation consist in corrections to the
// initial input rather than new input". A correction (i, v) overwrites the
// i-th input datum with value v; the algorithm must fold it into the
// solution, paying a rework cost. Termination is as for d-algorithms: all
// arrived corrections are folded in before the next one arrives.

// Correction replaces datum Index (1-based) with Value.
type Correction struct {
	Index uint64
	Value uint64
}

// CWorkload extends the d-algorithm cost model with the rework cost of one
// correction. For many problems reworking one datum is cheaper than initial
// processing (incremental update), for others it is more expensive
// (recompute a suffix); the cost is a free parameter.
type CWorkload struct {
	Rate           uint64
	WorkPerDatum   uint64
	WorkPerCorrect uint64
}

// SimulateC runs the c-algorithm termination dynamics: the initial n data
// are processed first; corrections arrive under the law (each arrival is
// one correction, targeting data cyclically) and each costs WorkPerCorrect.
// Termination mirrors the d-algorithm condition.
func SimulateC(law Law, n uint64, w CWorkload, maxT timeseq.Time) Outcome {
	if w.Rate == 0 || w.WorkPerDatum == 0 || w.WorkPerCorrect == 0 {
		return Outcome{}
	}
	var workDone uint64
	initialWork := n * w.WorkPerDatum
	for t := timeseq.Time(0); t <= maxT; t++ {
		arrivedCorrections := law.Total(n, t) - n
		need := initialWork + arrivedCorrections*w.WorkPerCorrect
		workDone += w.Rate
		if workDone > need {
			workDone = need
		}
		if workDone == need {
			return Outcome{Terminated: true, At: t, Processed: n + arrivedCorrections}
		}
	}
	return Outcome{}
}

// CInstance is a c-algorithm problem instance: n initial data plus a stream
// of corrections under the arrival law.
type CInstance struct {
	Law        Law
	N          uint64
	Datum      func(j uint64) uint64     // initial value of datum j (1-based)
	Correct    func(k uint64) Correction // k-th correction (1-based)
	Proposed   []word.Symbol
	ArrivalCap timeseq.Time
}

// CorrectionSym encodes a correction as one record-valued symbol stream.
func CorrectionSym(c Correction) []word.Symbol {
	return encoding.Record("corr", encoding.FieldUint(c.Index), encoding.FieldUint(c.Value))
}

// Word builds the timed ω-word: proposed output and initial data at time 0,
// then each correction (announced by the same c marker as §4.2) at its law
// arrival time.
func (inst CInstance) Word() word.Word {
	var header word.Finite
	for _, s := range inst.Proposed {
		header = append(header, word.TimedSym{Sym: s, At: 0})
	}
	header = append(header, word.TimedSym{Sym: Sep, At: 0})
	for j := uint64(1); j <= inst.N; j++ {
		header = append(header, word.TimedSym{Sym: encoding.Num(inst.Datum(j)), At: 0})
	}
	header = append(header, word.TimedSym{Sym: Sep, At: 0})

	nextK := uint64(1) // next correction index; correction k is datum n+k in law terms
	emitted := 0
	t := timeseq.Time(0)
	var queue word.Finite
	arrivalOf := func(k uint64) (timeseq.Time, bool) {
		return ArrivalTime(inst.Law, inst.N, inst.N+k, inst.ArrivalCap)
	}
	countAt := func(x timeseq.Time, firstK uint64) uint64 {
		var cnt uint64
		for k := firstK; ; k++ {
			at, ok := arrivalOf(k)
			if !ok || at != x {
				break
			}
			cnt++
		}
		return cnt
	}
	return word.Sequential(func() word.TimedSym {
		if emitted < len(header) {
			e := header[emitted]
			emitted++
			if emitted == len(header) {
				for c := countAt(1, nextK); c > 0; c-- {
					queue = append(queue, word.TimedSym{Sym: C, At: 0})
				}
			}
			return e
		}
		for {
			if len(queue) > 0 {
				e := queue[0]
				queue = queue[1:]
				return e
			}
			t++
			for k := nextK; ; k++ {
				at, ok := arrivalOf(k)
				if !ok || at != t {
					break
				}
				for _, s := range CorrectionSym(inst.Correct(k)) {
					queue = append(queue, word.TimedSym{Sym: s, At: t})
				}
				nextK = k + 1
			}
			for c := countAt(t+1, nextK); c > 0; c-- {
				queue = append(queue, word.TimedSym{Sym: C, At: t})
			}
			if len(queue) == 0 && t >= inst.ArrivalCap {
				return word.TimedSym{Sym: "w", At: t}
			}
		}
	})
}

// CAcceptor is the two-process acceptor for c-algorithm instances: P_w
// maintains the running solution (here: the sum of the data modulo Mod,
// updated incrementally under corrections), P_m applies the §4.2
// termination test.
type CAcceptor struct {
	core.Control
	Work CWorkload
	Mod  uint64

	parsed   bool
	proposed []word.Symbol
	data     []uint64
	sum      uint64

	// Work backlog: initial items then corrections, both queued as work
	// units.
	initQueue []int        // indices into data still unprocessed
	corrQueue []Correction // corrections not yet folded in
	workAcc   uint64
	processed uint64
	recBuf    []word.Symbol
	inRec     bool
}

// Tick implements core.Program.
func (a *CAcceptor) Tick(t *core.Tick) {
	defer a.Drive(t)
	if !a.parsed {
		if t.Now != 0 || len(t.New) == 0 {
			a.RejectForever()
			return
		}
		section := 0
		for _, e := range t.New {
			switch {
			case e.Sym == Sep:
				section++
			case section == 0:
				a.proposed = append(a.proposed, e.Sym)
			case section == 1:
				v, _ := encoding.AsNum(e.Sym)
				a.data = append(a.data, v)
			}
		}
		if section < 2 {
			a.RejectForever()
			return
		}
		for i := range a.data {
			a.initQueue = append(a.initQueue, i)
		}
		a.parsed = true
	} else {
		for _, e := range t.New {
			switch {
			case a.inRec:
				a.recBuf = append(a.recBuf, e.Sym)
				if e.Sym == encoding.Dollar {
					a.inRec = false
					if rec, ok := encoding.ParseRecord(a.recBuf); ok && len(rec) == 3 && rec[0] == "corr" {
						a.corrQueue = append(a.corrQueue, Correction{
							Index: encoding.MustParseUint(rec[1]),
							Value: encoding.MustParseUint(rec[2]),
						})
					}
					a.recBuf = nil
				}
			case e.Sym == encoding.Dollar:
				a.inRec = true
				a.recBuf = append(a.recBuf[:0], e.Sym)
			}
		}
	}
	if a.Decided() {
		return
	}
	// P_w: spend this chronon's work.
	a.workAcc += a.Work.Rate
	for {
		if len(a.initQueue) > 0 && a.workAcc >= a.Work.WorkPerDatum {
			a.workAcc -= a.Work.WorkPerDatum
			i := a.initQueue[0]
			a.initQueue = a.initQueue[1:]
			a.sum = (a.sum + a.data[i]) % a.Mod
			a.processed++
			continue
		}
		// Corrections fold in only after the initial pass (a c-algorithm
		// must have something to correct).
		if len(a.initQueue) == 0 && len(a.corrQueue) > 0 && a.workAcc >= a.Work.WorkPerCorrect {
			a.workAcc -= a.Work.WorkPerCorrect
			c := a.corrQueue[0]
			a.corrQueue = a.corrQueue[1:]
			if c.Index >= 1 && c.Index <= uint64(len(a.data)) {
				old := a.data[c.Index-1]
				a.data[c.Index-1] = c.Value
				// Incremental update of the running sum.
				a.sum = (a.sum + a.Mod + c.Value%a.Mod - old%a.Mod) % a.Mod
			}
			a.processed++
			continue
		}
		break
	}
	if len(a.initQueue) == 0 && len(a.corrQueue) == 0 {
		a.workAcc = 0
		if a.processed > 0 {
			// P_m: caught up before the next correction arrives.
			if symsEqual([]word.Symbol{encoding.Num(a.sum)}, a.proposed) {
				a.AcceptForever()
			} else {
				a.RejectForever()
			}
		}
	}
}

// BuildCInstance assembles a checksum c-instance whose proposed output is
// the corrected sum at the simulated termination point.
func BuildCInstance(law Law, n uint64, w CWorkload, mod uint64, cap timeseq.Time, sabotage bool) (CInstance, Outcome) {
	out := SimulateC(law, n, w, cap)
	datum := func(j uint64) uint64 { return (j*3 + 1) % mod }
	correct := func(k uint64) Correction {
		return Correction{Index: (k-1)%n + 1, Value: (k*11 + 5) % mod}
	}
	// Ground truth: apply the corrections folded in by termination.
	vals := make([]uint64, n)
	for j := uint64(1); j <= n; j++ {
		vals[j-1] = datum(j)
	}
	if out.Processed > n {
		for k := uint64(1); k <= out.Processed-n; k++ {
			c := correct(k)
			vals[c.Index-1] = c.Value
		}
	}
	var sum uint64
	for _, v := range vals {
		sum = (sum + v) % mod
	}
	if sabotage {
		sum = (sum + 1) % mod
	}
	return CInstance{
		Law: law, N: n, Datum: datum, Correct: correct,
		Proposed:   []word.Symbol{encoding.Num(sum)},
		ArrivalCap: cap,
	}, out
}
