package stats

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %g", got)
	}
	if !almost(Median(xs), 4.5) {
		t.Errorf("Median = %g", Median(xs))
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Errorf("odd Median = %g", Median([]float64{3, 1, 2}))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || Median(nil) != 0 {
		t.Error("degenerate cases not zero")
	}
}

func TestMinMaxAndSummary(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) || s.Lo != 1 || s.Hi != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Error("Summary.String broken")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("proto", "delivery", "overhead")
	tbl.Row("flooding", 0.98, 412)
	tbl.Row("dv", 0.761, 96)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "proto") || !strings.Contains(lines[2], "0.980") {
		t.Fatalf("table:\n%s", out)
	}
	// Columns align: every row at least as wide as the header's first col.
	if !strings.Contains(lines[3], "dv ") {
		t.Fatalf("padding broken:\n%s", out)
	}
}
