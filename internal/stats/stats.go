// Package stats provides the small numeric and table-rendering helpers the
// benchmark harness and the CLIs share: aggregate statistics over repeated
// simulation runs and fixed-width tables in the style of the experiment
// reports in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the middle value (mean of the middle two for even sizes).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64{}, xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MinMax returns the extremes.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by the
// nearest-rank method on a sorted copy (0 for an empty sample).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Summary aggregates one metric across runs.
type Summary struct {
	N              int
	Mean, Std      float64
	Median, Lo, Hi float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	return Summary{
		N: len(xs), Mean: Mean(xs), Std: StdDev(xs),
		Median: Median(xs), Lo: lo, Hi: hi,
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f med=%.3f [%.3f, %.3f]",
		s.N, s.Mean, s.Std, s.Median, s.Lo, s.Hi)
}

// Table renders fixed-width rows, in the spirit of the paper-vs-measured
// tables of EXPERIMENTS.md.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row; cells are stringified with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
