// Package faultfs is the injectable filesystem layer under the rtdbd
// write-ahead log (internal/rtdb/log). The log talks to the small FS
// interface below instead of the os package directly; production uses the
// zero-cost OS passthrough, while tests and the crash-torture harness
// (internal/rtdb/torture) inject Mem — an in-memory disk model with seeded,
// deterministic fault injection: transient EIO, torn (short) writes, fsync
// and rename failures, and an op-count "power-cut" trigger that freezes the
// filesystem and lets the harness materialize a crash image in which
// unsynced data is partially or wholly lost.
//
// The fault model (documented in DESIGN.md §8) is conservative: data writes
// since the last Sync may be dropped from the tail or torn mid-write at a
// crash, but they persist in issue order (no reordering), and metadata
// operations (create, rename, remove, truncate) are atomic and durable when
// they return. Every crash image Mem can produce is one a POSIX filesystem
// with ordered data journaling can produce, so a recovery procedure that
// survives the sweep survives the corresponding real crashes.
package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Errors injected by Mem. The log treats ErrInjected like any transient
// I/O error; ErrPowerCut marks the filesystem dead until Crash() is called.
var (
	ErrInjected = errors.New("faultfs: injected I/O error")
	ErrPowerCut = errors.New("faultfs: power cut")
)

// File is the per-file surface the WAL needs: sequential reads for replay,
// positioned writes for appending, fsync for durability, and the size for
// bounding replay.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync makes everything written so far durable.
	Sync() error
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// FS is the filesystem surface the WAL needs. All paths are plain strings;
// implementations may interpret them relative to any root.
type FS interface {
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenWrite opens name for writing, creating it when absent and
	// preserving existing content (the caller seeks to its append point).
	OpenWrite(name string) (File, error)
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
}

// OS is the production passthrough: every call forwards to the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenWrite implements FS.
func (OS) OpenWrite(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// osFile adapts *os.File to File.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// clean normalizes a path so "dir/x" and "dir//x" address the same Mem
// entry regardless of how the caller joined them.
func clean(p string) string { return filepath.Clean(p) }
