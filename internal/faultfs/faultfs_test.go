package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMemBasicRoundTrip(t *testing.T) {
	m := NewMem(1)
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello "))
	writeAll(t, f, []byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/a"); string(got) != "hello world" {
		t.Fatalf("read %q", got)
	}
	names, err := m.ReadDir("d")
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("ReadDir: %v %v", names, err)
	}
	// OpenWrite preserves content; a seek positions the append point.
	w, err := m.OpenWrite("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	writeAll(t, w, []byte("again"))
	if got := readAll(t, m, "d/a"); string(got) != "hello again" {
		t.Fatalf("read %q", got)
	}
	if err := m.Truncate("d/a", 5); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/a"); string(got) != "hello" {
		t.Fatalf("after truncate %q", got)
	}
	if err := m.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("d/a"); err == nil {
		t.Fatal("old name survives rename")
	}
	if got := readAll(t, m, "d/b"); string(got) != "hello" {
		t.Fatalf("renamed content %q", got)
	}
}

// TestMemCrashDropsUnsyncedSuffix: after a crash, durable content survives
// intact and unsynced writes survive only as an in-order prefix, the first
// lost write possibly torn.
func TestMemCrashDropsUnsyncedSuffix(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		m := NewMem(seed)
		f, _ := m.Create("a")
		writeAll(t, f, []byte("durable."))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		writeAll(t, f, []byte("one."))
		writeAll(t, f, []byte("two."))
		writeAll(t, f, []byte("three."))
		m.CrashAt(m.Ops() + 1)
		if _, err := f.Write([]byte("never")); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("seed %d: write after power cut: %v", seed, err)
		}
		if _, err := m.Open("a"); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("seed %d: dead fs must refuse opens", seed)
		}
		m.Crash()
		got := readAll(t, m, "a")
		if !bytes.HasPrefix(got, []byte("durable.")) {
			t.Fatalf("seed %d: durable prefix lost: %q", seed, got)
		}
		// The image must be a prefix of the full unsynced content ("never"
		// was rejected before entering the cache).
		full := []byte("durable.one.two.three.")
		if !bytes.HasPrefix(full, got) {
			t.Fatalf("seed %d: crash image %q is not a prefix of %q", seed, got, full)
		}
		// Stale pre-crash handles must not resurrect.
		if _, err := f.Write([]byte("x")); err == nil {
			t.Fatalf("seed %d: stale handle wrote after crash", seed)
		}
	}
}

// TestMemCrashImageIsSeeded: the same seed and workload produce the same
// crash image; different seeds explore different images.
func TestMemCrashImageIsSeeded(t *testing.T) {
	image := func(seed uint64) []byte {
		m := NewMem(seed)
		f, _ := m.Create("a")
		for i := 0; i < 8; i++ {
			writeAll(t, f, []byte("0123456789"))
		}
		m.CrashAt(m.Ops() + 1)
		f.Write([]byte("x"))
		m.Crash()
		b, _ := m.Open("a")
		out, _ := io.ReadAll(b)
		return out
	}
	if !bytes.Equal(image(7), image(7)) {
		t.Fatal("same seed produced different crash images")
	}
	distinct := map[int]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		distinct[len(image(seed))] = true
	}
	if len(distinct) < 2 {
		t.Fatal("crash images never vary across seeds")
	}
}

func TestMemTransientFaults(t *testing.T) {
	m := NewMem(3)
	f, _ := m.Create("a")
	m.FailWrite(2)
	writeAll(t, f, []byte("ok1."))
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write error: %v", err)
	}
	writeAll(t, f, []byte("ok2."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "a"); string(got) != "ok1.ok2." {
		t.Fatalf("EIO write landed bytes: %q", got)
	}

	// A torn write lands a strict prefix and reports the error.
	m.TearWrite(m.Writes() + 1)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || n >= 10 {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if got := readAll(t, m, "a"); string(got) != "ok1.ok2."+"0123456789"[:n] {
		t.Fatalf("torn write image: %q (n=%d)", got, n)
	}

	m.FailSync(m.syncs + 1)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected sync error: %v", err)
	}

	m.FailRename(1)
	if err := m.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected rename error: %v", err)
	}
	if _, err := m.Open("a"); err != nil {
		t.Fatal("failed rename must leave the source intact")
	}
	if m.Injected() != 4 {
		t.Fatalf("Injected = %d, want 4", m.Injected())
	}
}

// TestOSPassthrough: the production FS behaves like the os package on a
// real temp dir — the same surface the Mem model implements.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	if err := fs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(dir + "/sub/x")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("abc"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 3 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(dir+"/sub/x", 2); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(dir+"/sub/x", dir+"/sub/y"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("ReadDir: %v %v", names, err)
	}
	if got := readAll(t, fs, dir+"/sub/y"); string(got) != "ab" {
		t.Fatalf("read %q", got)
	}
	if err := fs.Remove(dir + "/sub/y"); err != nil {
		t.Fatal(err)
	}
}
