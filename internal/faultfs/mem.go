package faultfs

import (
	"fmt"
	"io"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// pwrite is one unsynced data write: it reached the page cache but not the
// platter, so a crash may drop or tear it.
type pwrite struct {
	off  int64
	data []byte
}

// memFile models one file as two layers: durable is what the platter holds,
// cache is what readers of the live filesystem see (durable plus every
// pending write), pending the unsynced writes in issue order.
type memFile struct {
	durable []byte
	cache   []byte
	pending []pwrite
}

func (f *memFile) sync() {
	f.durable = append(f.durable[:0:0], f.cache...)
	f.pending = nil
}

// applyAt writes data into buf at off, zero-filling any gap.
func applyAt(buf []byte, off int64, data []byte) []byte {
	for int64(len(buf)) < off {
		buf = append(buf, 0)
	}
	n := copy(buf[off:], data)
	return append(buf, data[n:]...)
}

// Mem is an in-memory FS with seeded fault injection. It is safe for
// concurrent use (the chaos harness shares one Mem between the apply loop
// and recovery). All faults are scheduled against deterministic per-kind
// operation counters, so the same seed and workload hit the same ops.
type Mem struct {
	mu    sync.Mutex
	rng   *rand.Rand
	files map[string]*memFile
	dirs  map[string]bool

	ops     uint64 // mutating ops issued (write, sync, rename, remove, truncate, create)
	writes  uint64 // data writes issued
	syncs   uint64
	renames uint64

	crashAt uint64 // power cut when ops reaches this count (0 = disarmed)
	dead    bool
	gen     uint64 // bumped by Crash(); stale handles fail

	failWrites  map[uint64]bool // transient EIO on the nth write: nothing lands
	tornWrites  map[uint64]bool // the nth write lands a seeded strict prefix, then EIO
	failSyncs   map[uint64]bool
	failRenames map[uint64]bool

	injected uint64 // faults actually delivered
}

// NewMem returns an empty filesystem whose crash materialization and torn
// lengths are driven by a PCG stream seeded with seed — same seed, same
// workload, same crash image.
func NewMem(seed uint64) *Mem {
	return &Mem{
		rng:         rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		files:       map[string]*memFile{},
		dirs:        map[string]bool{},
		failWrites:  map[uint64]bool{},
		tornWrites:  map[uint64]bool{},
		failSyncs:   map[uint64]bool{},
		failRenames: map[uint64]bool{},
	}
}

// CrashAt arms the power-cut trigger: the opth mutating operation (1-based)
// and everything after it fails with ErrPowerCut until Crash is called.
func (m *Mem) CrashAt(op uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = op
}

// FailWrite makes the nth data write (1-based) fail with ErrInjected
// without landing any bytes — a transient EIO.
func (m *Mem) FailWrite(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWrites[n] = true
}

// TearWrite makes the nth data write land only a seeded strict prefix and
// then fail with ErrInjected — a short write.
func (m *Mem) TearWrite(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tornWrites[n] = true
}

// FailSync makes the nth Sync call fail with ErrInjected; nothing becomes
// durable from it (the page cache state is exactly as unknown as after a
// real fsync failure).
func (m *Mem) FailSync(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncs[n] = true
}

// FailRename makes the nth Rename call fail with ErrInjected.
func (m *Mem) FailRename(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failRenames[n] = true
}

// Ops returns the number of mutating operations issued so far.
func (m *Mem) Ops() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Writes returns the number of data writes issued so far.
func (m *Mem) Writes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Syncs returns the number of Sync calls issued so far.
func (m *Mem) Syncs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Renames returns the number of renames issued so far.
func (m *Mem) Renames() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.renames
}

// Injected returns how many faults were actually delivered.
func (m *Mem) Injected() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.injected
}

// Dead reports whether the power-cut trigger fired.
func (m *Mem) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// Crash materializes the post-crash disk image and revives the filesystem:
// for every file, durable content survives, then a seeded number of pending
// (unsynced) writes land in issue order, the next one possibly torn to a
// strict prefix, and the rest are lost. Open handles from before the crash
// are invalidated; counters and fault schedules reset so recovery runs
// clean.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic rng consumption order
	for _, name := range names {
		f := m.files[name]
		img := append([]byte(nil), f.durable...)
		keep := m.rng.IntN(len(f.pending) + 1)
		for _, w := range f.pending[:keep] {
			img = applyAt(img, w.off, w.data)
		}
		if keep < len(f.pending) && m.rng.IntN(2) == 0 {
			w := f.pending[keep]
			if n := m.rng.IntN(len(w.data) + 1); n > 0 {
				img = applyAt(img, w.off, w.data[:n])
			}
		}
		f.durable = img
		f.cache = append([]byte(nil), img...)
		f.pending = nil
	}
	m.dead = false
	m.crashAt = 0
	m.gen++
	m.ops, m.writes, m.syncs, m.renames = 0, 0, 0, 0
	m.failWrites = map[uint64]bool{}
	m.tornWrites = map[uint64]bool{}
	m.failSyncs = map[uint64]bool{}
	m.failRenames = map[uint64]bool{}
}

// DumpFile returns the current bytes of name (what a reader would see), or
// nil when absent. The torture harness uses it to export failing segment
// images as fuzz corpus seeds.
func (m *Mem) DumpFile(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.cache...)
}

// mutate charges one mutating op against the power-cut trigger. Callers
// hold m.mu.
func (m *Mem) mutate() error {
	if m.dead {
		return ErrPowerCut
	}
	m.ops++
	if m.crashAt > 0 && m.ops >= m.crashAt {
		m.dead = true
		m.injected++
		return ErrPowerCut
	}
	return nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return ErrPowerCut
	}
	m.dirs[clean(dir)] = true
	return nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, ErrPowerCut
	}
	dir = clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	if names == nil && !m.dirs[dir] {
		return nil, fmt.Errorf("faultfs: readdir %s: %w", dir, errNotExist)
	}
	sort.Strings(names)
	return names, nil
}

var errNotExist = fmt.Errorf("file does not exist")

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, ErrPowerCut
	}
	name = clean(name)
	if _, ok := m.files[name]; !ok {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, errNotExist)
	}
	return &memHandle{m: m, name: name, gen: m.gen}, nil
}

// OpenWrite implements FS.
func (m *Mem) OpenWrite(name string) (File, error) {
	return m.openWritable(name, false)
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	return m.openWritable(name, true)
}

func (m *Mem) openWritable(name string, trunc bool) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	f, exists := m.files[name]
	if !exists || trunc {
		// Creation/truncation is a metadata op: atomic, durable, and
		// charged against the power-cut trigger.
		if err := m.mutate(); err != nil {
			return nil, err
		}
		if !exists {
			f = &memFile{}
			m.files[name] = f
		} else {
			f.durable = nil
			f.cache = nil
			f.pending = nil
		}
	} else if m.dead {
		return nil, ErrPowerCut
	}
	return &memHandle{m: m, name: name, gen: m.gen}, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.mutate(); err != nil {
		return err
	}
	m.renames++
	if m.failRenames[m.renames] {
		m.injected++
		return fmt.Errorf("faultfs: rename %s: %w", oldname, ErrInjected)
	}
	oldname, newname = clean(oldname), clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, errNotExist)
	}
	// Atomic durable replace: the renamed file carries its cache content
	// (the WAL syncs before renaming, so in practice cache == durable).
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.mutate(); err != nil {
		return err
	}
	name = clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("faultfs: remove %s: %w", name, errNotExist)
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS. It is modeled as a synchronizing metadata op:
// the surviving prefix is durable afterwards (the WAL only truncates while
// healing or recovering, where that is the conservative choice).
func (m *Mem) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.mutate(); err != nil {
		return err
	}
	name = clean(name)
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: %w", name, errNotExist)
	}
	for int64(len(f.cache)) < size {
		f.cache = append(f.cache, 0)
	}
	f.cache = f.cache[:size]
	f.durable = append(f.durable[:0:0], f.cache...)
	f.pending = nil
	return nil
}

// memHandle is one open descriptor: a position over a shared memFile.
type memHandle struct {
	m    *Mem
	name string
	gen  uint64
	pos  int64
}

// file resolves the handle, failing if the filesystem crashed or died
// since it was opened. Callers hold m.mu.
func (h *memHandle) file() (*memFile, error) {
	if h.m.dead {
		return nil, ErrPowerCut
	}
	if h.gen != h.m.gen {
		return nil, fmt.Errorf("faultfs: %s: stale handle across crash", h.name)
	}
	f, ok := h.m.files[h.name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %s: %w", h.name, errNotExist)
	}
	return f, nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if h.pos >= int64(len(f.cache)) {
		return 0, io.EOF
	}
	n := copy(p, f.cache[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	m := h.m
	if err := m.mutate(); err != nil {
		return 0, err
	}
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	m.writes++
	switch {
	case m.failWrites[m.writes]:
		m.injected++
		return 0, fmt.Errorf("faultfs: write %s: %w", h.name, ErrInjected)
	case m.tornWrites[m.writes] && len(p) > 0:
		m.injected++
		n := m.rng.IntN(len(p)) // strict prefix, possibly empty
		f.cache = applyAt(f.cache, h.pos, p[:n])
		f.pending = append(f.pending, pwrite{off: h.pos, data: append([]byte(nil), p[:n]...)})
		h.pos += int64(n)
		return n, fmt.Errorf("faultfs: short write %s: %w", h.name, ErrInjected)
	}
	f.cache = applyAt(f.cache, h.pos, p)
	f.pending = append(f.pending, pwrite{off: h.pos, data: append([]byte(nil), p...)})
	h.pos += int64(len(p))
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(f.cache)) + offset
	default:
		return 0, fmt.Errorf("faultfs: seek %s: bad whence %d", h.name, whence)
	}
	if h.pos < 0 {
		return 0, fmt.Errorf("faultfs: seek %s: negative position", h.name)
	}
	return h.pos, nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	m := h.m
	if err := m.mutate(); err != nil {
		return err
	}
	f, err := h.file()
	if err != nil {
		return err
	}
	m.syncs++
	if m.failSyncs[m.syncs] {
		m.injected++
		return fmt.Errorf("faultfs: sync %s: %w", h.name, ErrInjected)
	}
	f.sync()
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.cache)), nil
}

func (h *memHandle) Close() error {
	// Closing is not a durability point and never fails in the model; a
	// dead filesystem tolerates closes so recovery paths can unwind.
	return nil
}

// String summarizes the injector for failure messages.
func (m *Mem) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "faultfs.Mem{files=%d ops=%d writes=%d syncs=%d renames=%d injected=%d dead=%v}",
		len(m.files), m.ops, m.writes, m.syncs, m.renames, m.injected, m.dead)
	return b.String()
}
