// Package parallel implements the explicitly parallel and distributed model
// of §6: a real-time algorithm made of p independent processes that
// communicate only by messages. Each process k is described by three timed
// words — its computation c_k, the messages it sends l_k, and the messages
// it receives r_k — and the behaviour of the whole algorithm is the tuple
// (c_1·l_1·r_1, …, c_p·l_p·r_p).
//
// Processes execute as real goroutines in lockstep rounds (one round per
// chronon): within a round all processes step concurrently against a
// consistent snapshot, messages sent in round t are delivered in round t+1
// (the network has the one-chronon hop of §5.2.1), and inbox ordering is
// canonicalized so runs are deterministic despite true parallelism.
//
// The PRAM appears as the degenerate case (§6: communication through shared
// memory means "there is no communication — both l_k and r_k are null
// words"): SharedSystem gives processes a synchronous shared memory with
// reads against the previous round's snapshot and priority-resolved
// concurrent writes, and its trace words l_k, r_k stay empty.
package parallel

import (
	"fmt"
	"sort"
	"sync"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Msg is one inter-process message.
type Msg struct {
	From, To int
	Payload  string
	SentAt   timeseq.Time
}

// Ctx is the per-round capability surface of one process.
type Ctx struct {
	ID    int
	Now   timeseq.Time
	Inbox []Msg // messages delivered this round, canonical order

	sends []Msg
	emits []string
}

// Send queues a message for delivery next round.
func (c *Ctx) Send(to int, payload string) {
	c.sends = append(c.sends, Msg{From: c.ID, To: to, Payload: payload, SentAt: c.Now})
}

// Emit records one computation symbol of c_k for this round.
func (c *Ctx) Emit(sym string) {
	c.emits = append(c.emits, sym)
}

// Process is one of the p processes.
type Process interface {
	Step(ctx *Ctx)
}

// ProcessFunc adapts a function to Process.
type ProcessFunc func(ctx *Ctx)

// Step implements Process.
func (f ProcessFunc) Step(ctx *Ctx) { f(ctx) }

// System runs p message-passing processes in lockstep.
type System struct {
	procs []Process
	now   timeseq.Time

	inTransit []Msg // sent last round, delivered next round
	injected  []Msg

	comp [][]word.TimedSym // c_k traces
	sent [][]word.TimedSym // l_k traces
	recv [][]word.TimedSym // r_k traces
}

// NewSystem builds a system over the given processes (ids 0..p-1).
func NewSystem(procs ...Process) *System {
	p := len(procs)
	return &System{
		procs: procs,
		comp:  make([][]word.TimedSym, p),
		sent:  make([][]word.TimedSym, p),
		recv:  make([][]word.TimedSym, p),
	}
}

// P returns the number of processes.
func (s *System) P() int { return len(s.procs) }

// Now returns the current round (chronon).
func (s *System) Now() timeseq.Time { return s.now }

// Inject delivers an external message to a process in the next round; the
// environment plays the role of a virtual extra sender (From = -1).
func (s *System) Inject(to int, payload string) {
	s.injected = append(s.injected, Msg{From: -1, To: to, Payload: payload, SentAt: s.now})
}

// Step runs one chronon: deliver, then step every process concurrently.
func (s *System) Step() {
	p := len(s.procs)
	inboxes := make([][]Msg, p)
	pending := append(s.inTransit, s.injected...)
	s.inTransit = nil
	s.injected = nil
	// Canonical inbox order: by (From, queue order).
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].From < pending[j].From })
	for _, m := range pending {
		if m.To >= 0 && m.To < p {
			inboxes[m.To] = append(inboxes[m.To], m)
		}
	}

	ctxs := make([]*Ctx, p)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		ctxs[k] = &Ctx{ID: k, Now: s.now, Inbox: inboxes[k]}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.procs[k].Step(ctxs[k])
		}(k)
	}
	wg.Wait()

	// Collect effects deterministically, in process order.
	for k := 0; k < p; k++ {
		for _, m := range inboxes[k] {
			s.recv[k] = append(s.recv[k], recvSym(m, s.now))
		}
		for _, sym := range ctxs[k].emits {
			s.comp[k] = append(s.comp[k], word.TimedSym{Sym: word.Symbol(sym), At: s.now})
		}
		for _, m := range ctxs[k].sends {
			s.inTransit = append(s.inTransit, m)
			s.sent[k] = append(s.sent[k], sentSym(m))
		}
	}
	s.now++
}

// Run advances n rounds.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

func sentSym(m Msg) word.TimedSym {
	return word.TimedSym{
		Sym: word.Symbol(encoding.String(encoding.Record("l",
			encoding.FieldInt(int64(m.From)), encoding.FieldInt(int64(m.To)), m.Payload))),
		At: m.SentAt,
	}
}

func recvSym(m Msg, at timeseq.Time) word.TimedSym {
	return word.TimedSym{
		Sym: word.Symbol(encoding.String(encoding.Record("r",
			encoding.FieldInt(int64(m.From)), encoding.FieldInt(int64(m.To)), m.Payload))),
		At: at,
	}
}

// CompWord returns c_k.
func (s *System) CompWord(k int) word.Finite { return word.Finite(s.comp[k]) }

// SentWord returns l_k.
func (s *System) SentWord(k int) word.Finite { return word.Finite(s.sent[k]) }

// RecvWord returns r_k.
func (s *System) RecvWord(k int) word.Finite { return word.Finite(s.recv[k]) }

// BehaviorWord returns c_k·l_k·r_k, the per-process behaviour word of §6.
func (s *System) BehaviorWord(k int) word.Word {
	return word.ConcatAll(s.CompWord(k), s.SentWord(k), s.RecvWord(k))
}

// BehaviorTuple returns the tuple (c_1 l_1 r_1, …, c_p l_p r_p).
func (s *System) BehaviorTuple() []word.Word {
	out := make([]word.Word, len(s.procs))
	for k := range s.procs {
		out[k] = s.BehaviorWord(k)
	}
	return out
}

// ---------------------------------------------------------------------------
// PRAM variant

// SharedCtx extends the per-round context with synchronous shared memory:
// Read sees the previous round's snapshot; writes land after the round,
// with concurrent writes to one cell resolved by lowest process id
// (priority CRCW).
type SharedCtx struct {
	Ctx
	snapshot []int64
	writes   map[int]int64
}

// Read returns cell i as of the previous round.
func (c *SharedCtx) Read(i int) int64 { return c.snapshot[i] }

// Write stores v into cell i at the end of the round.
func (c *SharedCtx) Write(i int, v int64) {
	if c.writes == nil {
		c.writes = make(map[int]int64)
	}
	c.writes[i] = v
}

// SharedProcess is a PRAM processor.
type SharedProcess interface {
	Step(ctx *SharedCtx)
}

// SharedProcessFunc adapts a function.
type SharedProcessFunc func(ctx *SharedCtx)

// Step implements SharedProcess.
func (f SharedProcessFunc) Step(ctx *SharedCtx) { f(ctx) }

// SharedSystem is the PRAM case of the §6 model.
type SharedSystem struct {
	procs []SharedProcess
	mem   []int64
	now   timeseq.Time
	comp  [][]word.TimedSym
}

// NewSharedSystem builds a PRAM with the given memory size.
func NewSharedSystem(memSize int, procs ...SharedProcess) *SharedSystem {
	return &SharedSystem{
		procs: procs,
		mem:   make([]int64, memSize),
		comp:  make([][]word.TimedSym, len(procs)),
	}
}

// Mem returns the current memory image (for inspection).
func (s *SharedSystem) Mem() []int64 { return append([]int64{}, s.mem...) }

// Now returns the current round.
func (s *SharedSystem) Now() timeseq.Time { return s.now }

// Step runs one synchronous PRAM round on real goroutines.
func (s *SharedSystem) Step() {
	p := len(s.procs)
	snapshot := append([]int64{}, s.mem...)
	ctxs := make([]*SharedCtx, p)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		ctxs[k] = &SharedCtx{Ctx: Ctx{ID: k, Now: s.now}, snapshot: snapshot}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.procs[k].Step(ctxs[k])
		}(k)
	}
	wg.Wait()
	// Priority CRCW: higher-id writes first, lowest id wins by overwriting.
	for k := p - 1; k >= 0; k-- {
		for i, v := range ctxs[k].writes {
			s.mem[i] = v
		}
		for _, sym := range ctxs[k].emits {
			s.comp[k] = append(s.comp[k], word.TimedSym{Sym: word.Symbol(sym), At: s.now})
		}
		if len(ctxs[k].sends) > 0 {
			panic(fmt.Sprintf("parallel: PRAM process %d attempted message sends; on the PRAM l_k and r_k are null words", k))
		}
	}
	s.now++
}

// Run advances n rounds.
func (s *SharedSystem) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// CompWord returns c_k; on the PRAM the behaviour word is c_k alone since
// l_k and r_k are null.
func (s *SharedSystem) CompWord(k int) word.Finite { return word.Finite(s.comp[k]) }
