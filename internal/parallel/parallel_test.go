package parallel

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"rtc/internal/dacc"
	"rtc/internal/encoding"
	"rtc/internal/word"
)

// echo is a process that forwards every payload to the next process and
// emits what it sees.
func echo(next int) ProcessFunc {
	return func(ctx *Ctx) {
		for _, m := range ctx.Inbox {
			ctx.Emit("saw " + m.Payload)
			if next >= 0 {
				ctx.Send(next, m.Payload)
			}
		}
	}
}

func TestMessageDelayOneChronon(t *testing.T) {
	sys := NewSystem(echo(1), echo(-1))
	sys.Inject(0, "x")
	sys.Step() // round 0: process 0 receives, forwards
	if len(sys.CompWord(0)) != 1 || sys.CompWord(0)[0].At != 0 {
		t.Fatalf("c_0 = %v", sys.CompWord(0))
	}
	if len(sys.CompWord(1)) != 0 {
		t.Fatal("process 1 saw the message in the same round")
	}
	sys.Step() // round 1: process 1 receives
	c1 := sys.CompWord(1)
	if len(c1) != 1 || c1[0].At != 1 {
		t.Fatalf("c_1 = %v", c1)
	}
}

// Determinism under true concurrency: two identical runs produce identical
// traces.
func TestLockstepDeterminism(t *testing.T) {
	build := func() *System {
		// A ring of 5 processes, each forwarding and spawning extra
		// messages.
		procs := make([]Process, 5)
		for k := 0; k < 5; k++ {
			k := k
			procs[k] = ProcessFunc(func(ctx *Ctx) {
				for _, m := range ctx.Inbox {
					ctx.Emit(fmt.Sprintf("%d<-%s", k, m.Payload))
					ctx.Send((k+1)%5, m.Payload+"!")
					if len(m.Payload)%2 == 0 {
						ctx.Send((k+2)%5, m.Payload+"?")
					}
				}
			})
		}
		s := NewSystem(procs...)
		s.Inject(0, "a")
		s.Inject(3, "bb")
		return s
	}
	a, b := build(), build()
	a.Run(8)
	b.Run(8)
	for k := 0; k < 5; k++ {
		wa := word.Prefix(a.BehaviorWord(k), 1000)
		wb := word.Prefix(b.BehaviorWord(k), 1000)
		if !word.Equal(wa, wb) {
			t.Fatalf("process %d traces differ:\n%v\n%v", k, wa, wb)
		}
	}
}

// The behaviour words c_k, l_k, r_k record exactly the §6 decomposition.
func TestTraceWords(t *testing.T) {
	sys := NewSystem(echo(1), echo(-1))
	sys.Inject(0, "m")
	sys.Run(3)
	// l_0 has one send; r_0 one receive (the injection); c_0 one emit.
	if len(sys.SentWord(0)) != 1 {
		t.Errorf("l_0 = %v", sys.SentWord(0))
	}
	if len(sys.RecvWord(0)) != 1 {
		t.Errorf("r_0 = %v", sys.RecvWord(0))
	}
	// Process 1 sends nothing.
	if len(sys.SentWord(1)) != 0 {
		t.Errorf("l_1 = %v", sys.SentWord(1))
	}
	if len(sys.RecvWord(1)) != 1 {
		t.Errorf("r_1 = %v", sys.RecvWord(1))
	}
	// The behaviour word is a valid timed word.
	bw := word.Prefix(sys.BehaviorWord(0), 100)
	if !word.MonotoneWithin(bw, uint64(len(bw))) {
		t.Error("behaviour word not monotone")
	}
	if len(sys.BehaviorTuple()) != 2 {
		t.Error("tuple size")
	}
}

// PRAM: parallel tree-style sum, with null l_k/r_k words by construction.
func TestSharedSystemParallelSum(t *testing.T) {
	const p = 4
	// mem[0..p-1]: inputs; each processor k adds mem[k] into mem[p+k]; then
	// processor 0 sums the partials (round 2).
	procs := make([]SharedProcess, p)
	for k := 0; k < p; k++ {
		k := k
		procs[k] = SharedProcessFunc(func(ctx *SharedCtx) {
			switch ctx.Now {
			case 0:
				ctx.Write(p+k, ctx.Read(k)*2)
				ctx.Emit("doubled")
			case 1:
				if ctx.ID == 0 {
					var sum int64
					for i := 0; i < p; i++ {
						sum += ctx.Read(p + i)
					}
					ctx.Write(2*p, sum)
					ctx.Emit("summed")
				}
			}
		})
	}
	sys := NewSharedSystem(2*p+1, procs...)
	mem := sys.Mem()
	_ = mem
	// Seed inputs via a dedicated round: write directly.
	seed := NewSharedSystem(2*p+1, procs...)
	_ = seed
	sys2 := NewSharedSystem(2*p+1, procs...)
	for i := 0; i < p; i++ {
		sys2.mem[i] = int64(i + 1)
	}
	sys2.Run(2)
	if got := sys2.Mem()[2*p]; got != 2*(1+2+3+4) {
		t.Fatalf("sum = %d, want 20", got)
	}
	// Each processor's computation word is non-trivial; there are no
	// message words at all (the PRAM degenerate case of §6).
	if len(sys2.CompWord(0)) != 2 {
		t.Errorf("c_0 = %v", sys2.CompWord(0))
	}
	if len(sys2.CompWord(1)) != 1 {
		t.Errorf("c_1 = %v", sys2.CompWord(1))
	}
}

// Priority CRCW: concurrent writes resolve to the lowest process id.
func TestSharedPriorityWrite(t *testing.T) {
	procs := make([]SharedProcess, 3)
	for k := 0; k < 3; k++ {
		k := k
		procs[k] = SharedProcessFunc(func(ctx *SharedCtx) {
			ctx.Write(0, int64(100+k))
		})
	}
	sys := NewSharedSystem(1, procs...)
	sys.Step()
	if got := sys.Mem()[0]; got != 100 {
		t.Fatalf("concurrent write resolved to %d, want 100 (lowest id)", got)
	}
}

// PRAM processes must not send messages.
func TestSharedSendPanics(t *testing.T) {
	p := SharedProcessFunc(func(ctx *SharedCtx) { ctx.Send(0, "no") })
	sys := NewSharedSystem(1, p)
	defer func() {
		if recover() == nil {
			t.Fatal("PRAM send did not panic")
		}
	}()
	sys.Step()
}

// The parallel d-algorithm terminates when its sequential model does, pays
// a bounded coordination overhead, and exhibits the rt-PROC staircase: more
// load needs more processors.
func TestRunDAccAgainstModel(t *testing.T) {
	law := dacc.PolyLaw{K: 0.4, Gamma: 0, Beta: 1}
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 1}
	seq := dacc.Simulate(law, 10, wl, 100000)
	if !seq.Terminated {
		t.Fatal("sequential model diverged")
	}
	par := RunDAcc(law, 10, wl, 1, 100000)
	if !par.Terminated {
		t.Fatal("parallel run diverged where the model terminates")
	}
	if par.Processed < seq.Processed {
		t.Errorf("parallel processed %d < model %d", par.Processed, seq.Processed)
	}
	// Coordination latency: within a constant factor plus message rounds.
	if par.At > 4*seq.At+50 {
		t.Errorf("parallel took %d, model %d — overhead too large", par.At, seq.At)
	}
}

// The rt-PROC staircase, operationally: with a fixed deadline, heavier
// initial batches need more processors, and for each batch some p succeeds
// where p−1 fails. (Message acks cost two chronons, so unlike the idealized
// sequential model the parallel system can only observe termination during
// an arrival gap — the sweep therefore uses a sub-linear stream, where gaps
// grow, and a deadline that the catch-up time dominates.)
func TestMinProcessorsParallelStaircase(t *testing.T) {
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	const deadline = 450
	prev := 0
	for _, n := range []uint64{100, 400, 1200} {
		p, ok := MinProcessorsParallel(law, n, wl, 8, deadline)
		if !ok {
			t.Fatalf("n=%d: no p ≤ 8 meets the deadline", n)
		}
		if p < prev {
			t.Errorf("n=%d: staircase decreased: %d after %d", n, p, prev)
		}
		if p > 1 {
			if out := RunDAcc(law, n, wl, p-1, deadline); out.Terminated {
				t.Errorf("n=%d: p-1=%d also meets the deadline; not minimal", n, p-1)
			}
		}
		prev = p
	}
	if prev < 3 {
		t.Errorf("staircase topped out at %d processors; sweep too weak", prev)
	}
}

func TestDAccOutcomeString(t *testing.T) {
	if !strings.Contains(DAccOutcome{Terminated: true, At: 5, Processed: 9}.String(), "t=5") {
		t.Error("String broken")
	}
	if !strings.Contains(DAccOutcome{}.String(), "diverged") {
		t.Error("String broken for divergence")
	}
	_ = strconv.Itoa(0)
}

// §6 consistency invariant: every receive event r_k corresponds to a send
// event in some l_j one round earlier, with matching endpoints and payload
// (the trace tuple really is a communication-closed decomposition).
func TestTraceSendReceiveConsistency(t *testing.T) {
	procs := make([]Process, 4)
	for k := 0; k < 4; k++ {
		k := k
		procs[k] = ProcessFunc(func(ctx *Ctx) {
			for _, m := range ctx.Inbox {
				if len(m.Payload) < 6 {
					ctx.Send((k+1)%4, m.Payload+"x")
				}
				ctx.Send((k+2)%4, m.Payload+"y")
			}
		})
	}
	sys := NewSystem(procs...)
	sys.Inject(0, "p")
	sys.Run(6)

	type sendKey struct {
		from, to int
		payload  string
	}
	sent := map[sendKey]int{}
	for k := 0; k < 4; k++ {
		for _, e := range sys.SentWord(k) {
			rec, ok := encodingParse(e.Sym)
			if !ok || rec[0] != "l" {
				t.Fatalf("bad l record %v", e)
			}
			sent[sendKey{atoi(rec[1]), atoi(rec[2]), rec[3]}]++
		}
	}
	for k := 0; k < 4; k++ {
		for _, e := range sys.RecvWord(k) {
			rec, ok := encodingParse(e.Sym)
			if !ok || rec[0] != "r" {
				t.Fatalf("bad r record %v", e)
			}
			key := sendKey{atoi(rec[1]), atoi(rec[2]), rec[3]}
			if key.from == -1 {
				continue // environment injection has no l record
			}
			if sent[key] == 0 {
				t.Fatalf("receive %v without a matching send", rec)
			}
			sent[key]--
		}
	}
}

// encodingParse decodes one record-valued trace symbol.
func encodingParse(s word.Symbol) ([]string, bool) {
	var syms []word.Symbol
	str := string(s)
	i := 0
	for i < len(str) {
		if str[i] == '%' && i+1 < len(str) {
			syms = append(syms, word.Symbol(str[i:i+2]))
			i += 2
			continue
		}
		syms = append(syms, word.Symbol(str[i:i+1]))
		i++
	}
	return encoding.ParseRecord(syms)
}

func atoi(s string) int {
	neg := false
	v := 0
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		v = v*10 + int(c-'0')
	}
	if neg {
		return -v
	}
	return v
}
