package parallel

import (
	"fmt"
	"strconv"
	"strings"

	"rtc/internal/dacc"
	"rtc/internal/timeseq"
)

// This file is the operational probe into the rt-PROC(p) hierarchy question
// of §3.2/§7 ("is there a well-behaved timed ω-language that can be accepted
// by a k-processor real-time algorithm but cannot be accepted by a
// (k−1)-processor one?"): a data-accumulating workload is executed by an
// actual p-process message-passing system — one distributor plus p workers —
// and success (termination before a horizon) depends on p exactly as the
// analytic model of internal/dacc predicts.

// distributor is process 0: it receives externally injected data items and
// deals them round-robin to the workers; workers report completions back.
type distributor struct {
	workers   int
	nextWork  int
	assigned  uint64
	completed uint64
	idleSince timeseq.Time
	done      bool
	doneAt    timeseq.Time
}

func (d *distributor) Step(ctx *Ctx) {
	for _, m := range ctx.Inbox {
		switch {
		case strings.HasPrefix(m.Payload, "item:"):
			d.assigned++
			ctx.Send(1+d.nextWork, m.Payload)
			d.nextWork = (d.nextWork + 1) % d.workers
		case m.Payload == "done":
			d.completed++
		}
	}
	if !d.done && d.assigned > 0 && d.completed == d.assigned {
		// All dealt work completed; the environment decides whether new
		// data arrived meanwhile (the §4.2 termination condition is checked
		// by the harness, which knows the arrival law).
		d.done = true
		d.doneAt = ctx.Now
		ctx.Emit("caught-up")
	}
	if d.done && d.completed < d.assigned {
		d.done = false // more work arrived; keep going
	}
}

// worker processes items at rate work units per chronon, workPerDatum units
// per item.
type worker struct {
	rate    uint64
	perItem uint64
	queue   []string
	acc     uint64
}

func (w *worker) Step(ctx *Ctx) {
	for _, m := range ctx.Inbox {
		if strings.HasPrefix(m.Payload, "item:") {
			w.queue = append(w.queue, m.Payload)
		}
	}
	w.acc += w.rate
	for len(w.queue) > 0 && w.acc >= w.perItem {
		w.acc -= w.perItem
		item := w.queue[0]
		w.queue = w.queue[1:]
		ctx.Emit("done " + item)
		ctx.Send(0, "done")
	}
	if len(w.queue) == 0 {
		w.acc = 0
	}
}

// DAccOutcome reports one parallel run.
type DAccOutcome struct {
	Terminated bool
	At         timeseq.Time
	Processed  uint64
}

// RunDAcc executes the data-accumulating workload on a real 1+p-process
// system: items arrive per the law and are injected into the distributor;
// the run terminates when every arrived item has been processed and
// acknowledged. Message hops cost one chronon each, so the parallel system
// pays a small coordination latency over dacc.Simulate — the price of
// distribution, visible in the measurements.
func RunDAcc(law dacc.Law, n uint64, wl dacc.Workload, p int, maxT timeseq.Time) DAccOutcome {
	procs := make([]Process, 1+p)
	dist := &distributor{workers: p}
	procs[0] = dist
	for k := 0; k < p; k++ {
		procs[1+k] = &worker{rate: wl.Rate, perItem: wl.WorkPerDatum}
	}
	sys := NewSystem(procs...)

	injected := uint64(0)
	for t := timeseq.Time(0); t <= maxT; t++ {
		arrived := law.Total(n, t)
		for injected < arrived {
			injected++
			sys.Inject(0, "item:"+strconv.FormatUint(injected, 10))
		}
		sys.Step()
		// Termination: the distributor caught up with everything injected
		// so far, and the environment has nothing in flight for this tick.
		if dist.done && dist.assigned == injected && law.Total(n, t) == injected {
			return DAccOutcome{Terminated: true, At: t, Processed: dist.completed}
		}
	}
	return DAccOutcome{Processed: dist.completed}
}

// MinProcessorsParallel is the message-passing counterpart of
// dacc.MinProcessors: the least p whose parallel run terminates within
// maxT.
func MinProcessorsParallel(law dacc.Law, n uint64, wl dacc.Workload, maxP int, maxT timeseq.Time) (int, bool) {
	for p := 1; p <= maxP; p++ {
		if out := RunDAcc(law, n, wl, p, maxT); out.Terminated {
			return p, true
		}
	}
	return 0, false
}

// Describe renders the outcome.
func (o DAccOutcome) String() string {
	if !o.Terminated {
		return fmt.Sprintf("diverged after processing %d items", o.Processed)
	}
	return fmt.Sprintf("terminated at t=%d having processed %d items", o.At, o.Processed)
}
