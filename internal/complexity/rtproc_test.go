package complexity

import (
	"testing"

	"rtc/internal/dacc"
)

func TestStaircaseMonotone(t *testing.T) {
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	w := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	ex := Staircase(law, []uint64{100, 400, 1200}, w, 450, 8)
	prev := 0
	for _, e := range ex {
		if !e.OK {
			t.Fatalf("n=%d: no p ≤ 8 meets the deadline", e.N)
		}
		if e.MinP < prev {
			t.Fatalf("staircase decreased: %+v", ex)
		}
		prev = e.MinP
	}
	if ex[0].MinP != 1 {
		t.Errorf("smallest batch needs %d processors", ex[0].MinP)
	}
	if prev < 3 {
		t.Errorf("staircase topped out at %d", prev)
	}
}

func TestExhibitBeyondBound(t *testing.T) {
	// An impossible deadline: nothing up to maxP succeeds.
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	w := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	e := ExhibitRTProc(law, 5000, w, 100, 4)
	if e.OK {
		t.Fatalf("exhibit claims success: %+v", e)
	}
}
