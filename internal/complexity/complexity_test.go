package complexity

import (
	"testing"

	"rtc/internal/core"
	"rtc/internal/omega"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// The unbounded-memory real-time algorithm decides L_ω correctly — the
// second half of experiment E1 (the first half refutes every finite-state
// candidate).
func TestLOmegaAcceptorCorrect(t *testing.T) {
	for _, x := range []int{1, 2, 5, 9} {
		m := core.NewMachine(&LOmegaAcceptor{}, MemberWord(x, 1))
		res := core.RunForVerdict(m, 200)
		if res.Verdict != core.AcceptAtHorizon {
			t.Errorf("member x=%d verdict = %v", x, res.Verdict)
		}
		if res.FCount < 100 {
			t.Errorf("member x=%d produced only %d f's", x, res.FCount)
		}
		m2 := core.NewMachine(&LOmegaAcceptor{}, NonMemberWord(x, 1))
		if res := core.RunForVerdict(m2, 200); res.Verdict != core.RejectProven {
			t.Errorf("non-member x=%d verdict = %v", x, res.Verdict)
		}
	}
}

// The acceptor also agrees with the exact lasso decision procedure on the
// member/non-member families and on malformed blocks.
func TestLOmegaAcceptorAgreesWithInLOmega(t *testing.T) {
	cases := []*word.Lasso{
		MemberWord(3, 1),
		NonMemberWord(3, 1),
		word.MustLasso(nil, word.FromClassical("bcd$", 0), 1),  // u = 0
		word.MustLasso(nil, word.FromClassical("abcd$", 0), 1), // member
		word.MustLasso(nil, word.FromClassical("abdc$", 0), 1), // order violation
	}
	for _, l := range cases {
		want := omega.InLOmega(omega.FromTimedLasso(l))
		m := core.NewMachine(&LOmegaAcceptor{}, l)
		res := core.RunForVerdict(m, 200)
		if res.Verdict.Accepted() != want {
			t.Errorf("%v: acceptor %v, InLOmega %v", l, res.Verdict, want)
		}
	}
}

// rt-SPACE separation, measured: the L_ω acceptor's footprint grows
// linearly with the block size, while the constant-space watcher stays
// flat. (The matching impossibility half — no constant-space device accepts
// L_ω — is omega.RefuteLOmega.)
func TestSpaceSeparation(t *testing.T) {
	xs := []int{2, 4, 8, 16, 32}
	prof := SpaceProfile(xs, 128)
	for i := 1; i < len(prof); i++ {
		if prof[i] <= prof[i-1] {
			t.Fatalf("space profile not increasing: %v", prof)
		}
	}
	// Linear in x: footprint ≈ 2x + O(1).
	for i, x := range xs {
		if prof[i] < uint64(2*x) || prof[i] > uint64(2*x)+8 {
			t.Errorf("x=%d: footprint %d outside 2x..2x+8", x, prof[i])
		}
	}
	// The constant-space watcher's footprint is independent of the input.
	var peaks []uint64
	for _, x := range xs {
		m := core.NewMachine(&ConstWatcher{Sym: "$"}, MemberWord(x, 1))
		_, used, ok := core.RunWithSpaceBound(m, 128, core.ConstSpace(2))
		if !ok {
			t.Fatalf("watcher exceeded constant bound on x=%d", x)
		}
		peaks = append(peaks, used)
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i] != peaks[0] {
			t.Fatalf("watcher footprint varies: %v", peaks)
		}
	}
}

func TestExhibit(t *testing.T) {
	samples := []Sample{
		{Name: "member x=2", Input: MemberWord(2, 1), Member: true},
		{Name: "member x=6", Input: MemberWord(6, 1), Member: true},
		{Name: "non-member x=2", Input: NonMemberWord(2, 1), Member: false},
		{Name: "garbage", Input: word.RepeatClassical("zz", 1), Member: false},
	}
	// On this sample set the largest block has x = 6, so 2x+4 cells
	// suffice — the footprint is a function of the data, not of time.
	correct, within, peak := Exhibit(
		func() core.Program { return &LOmegaAcceptor{} },
		samples, 128, core.ConstSpace(16),
	)
	if !correct {
		t.Error("acceptor verdicts wrong on samples")
	}
	if !within {
		t.Errorf("2x+4 bound violated (peak %d)", peak)
	}
	// …but no bound below 2x works: the b-counter must survive to the
	// d-run.
	_, withinConst, _ := Exhibit(
		func() core.Program { return &LOmegaAcceptor{} },
		samples, 128, core.ConstSpace(6),
	)
	if withinConst {
		t.Error("the L_ω acceptor claimed 6 cells on an x=6 block")
	}
}

func TestRunWithSpaceBoundVerdicts(t *testing.T) {
	m := core.NewMachine(&LOmegaAcceptor{}, NonMemberWord(2, 1))
	res, used, within := core.RunWithSpaceBound(m, 100, core.ConstSpace(100))
	if res.Verdict != core.RejectProven {
		t.Errorf("verdict = %v", res.Verdict)
	}
	if used == 0 || !within {
		t.Errorf("used=%d within=%v", used, within)
	}
	if m.MaxSpace() != used {
		t.Errorf("MaxSpace=%d, used=%d", m.MaxSpace(), used)
	}
}

func TestSpaceBoundHelpers(t *testing.T) {
	c := core.ConstSpace(5)
	if c(0) != 5 || c(1000) != 5 {
		t.Error("ConstSpace broken")
	}
	l := core.LinearSpace(2, 3)
	if l(timeseq.Time(10)) != 23 {
		t.Error("LinearSpace broken")
	}
}
