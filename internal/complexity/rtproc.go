package complexity

import (
	"rtc/internal/dacc"
	"rtc/internal/parallel"
	"rtc/internal/timeseq"
)

// The rt-PROC classes of §3.2: parallel real-time computations using a
// bounded number of processors. As with rt-SPACE, lower bounds are not
// executable, but class membership exhibits are: a problem instance sits in
// rt-PROC(p) for a deadline when some p-processor real-time algorithm meets
// it, and the hierarchy question ("is rt-PROC(p) ⊋ rt-PROC(p−1)?") becomes
// the measured staircase of instance families whose minimum processor count
// grows without bound.

// RTProcExhibit is one class-membership exhibit: the instance (an arrival
// law, batch and workload, with a deadline) together with the least p whose
// run meets it.
type RTProcExhibit struct {
	Law      dacc.Law
	N        uint64
	Work     dacc.Workload
	Deadline timeseq.Time
	// MinP is the least processor count meeting the deadline (0 if none up
	// to the probe bound did).
	MinP int
	OK   bool
}

// ExhibitRTProc probes the least p ∈ [1, maxP] meeting the deadline on the
// real goroutine system of §6.
func ExhibitRTProc(law dacc.Law, n uint64, w dacc.Workload, deadlineT timeseq.Time, maxP int) RTProcExhibit {
	p, ok := parallel.MinProcessorsParallel(law, n, w, maxP, deadlineT)
	return RTProcExhibit{Law: law, N: n, Work: w, Deadline: deadlineT, MinP: p, OK: ok}
}

// Staircase probes a family of instances and returns their exhibits — the
// empirical face of the hierarchy question. A strictly unbounded, monotone
// MinP sequence over the family is the behaviour the conjectured strict
// hierarchy predicts.
func Staircase(law dacc.Law, batches []uint64, w dacc.Workload, deadlineT timeseq.Time, maxP int) []RTProcExhibit {
	out := make([]RTProcExhibit, len(batches))
	for i, n := range batches {
		out[i] = ExhibitRTProc(law, n, w, deadlineT, maxP)
	}
	return out
}
