// Package complexity is the seed of the real-time complexity theory §3.2
// and §7 call for: complexity classes of well-behaved timed ω-languages
// parameterized by the measurable resources of the real-time algorithm —
// working storage (rt-SPACE) and processors (rt-PROC).
//
// Lower bounds cannot be "run", but the class definitions can: a language
// exhibits membership in rt-SPACE(f) through an accepting program whose
// metered footprint respects f on every tested input, and the separation
// the paper's Theorem 3.1 sets up — L_ω needs memory; finite-state devices
// (constant space) cannot accept it — becomes measurable: the unbounded
// acceptor below decides L_ω correctly with footprint Θ(x) on block size x,
// while every constant-space candidate is refuted by omega.RefuteLOmega.
package complexity

import (
	"rtc/internal/core"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// LOmegaAcceptor is the real-time algorithm (Definition 3.3) for
// L_ω = { l_1 $ l_2 $ … | l_i ∈ a^u b^x c^v d^x }, the language Theorem 3.1
// proves beyond every finite-state acceptor. It checks each $-terminated
// block with unary counters (working storage grows with the block's b-run,
// the resource a finite automaton lacks), writes f after every valid block,
// and enters the rejecting absorbing state on the first invalid one.
//
// Acceptance under Definition 3.4: members keep producing f forever (one
// per block); non-members stop after the offending block — with a proven
// reject, since the control absorbs.
type LOmegaAcceptor struct {
	core.Control
	phase   int // 0:a's 1:b's 2:c's 3:d's
	u, x, v uint64
	d       uint64
	pendF   uint64 // valid blocks not yet acknowledged with f
	hwm     uint64 // high-water mark of the counter cells
}

// note updates the footprint high-water mark; several symbols can be
// consumed within one chronon, so the peak must be tracked inside the tick.
func (p *LOmegaAcceptor) note() {
	if s := p.u + p.x + p.v + p.d + p.pendF; s > p.hwm {
		p.hwm = s
	}
}

// Tick implements core.Program.
func (p *LOmegaAcceptor) Tick(t *core.Tick) {
	for _, e := range t.New {
		if p.Decided() {
			break
		}
		switch e.Sym {
		case "a":
			if p.phase != 0 {
				p.RejectForever()
				continue
			}
			p.u++
		case "b":
			if p.phase > 1 || p.u == 0 {
				p.RejectForever()
				continue
			}
			p.phase = 1
			p.x++
		case "c":
			if p.phase != 1 && p.phase != 2 || p.x == 0 {
				p.RejectForever()
				continue
			}
			p.phase = 2
			p.v++
		case "d":
			if p.phase != 2 && p.phase != 3 || p.v == 0 {
				p.RejectForever()
				continue
			}
			p.phase = 3
			p.d++
			if p.d > p.x {
				p.RejectForever()
			}
		case "$":
			if p.phase != 3 || p.d != p.x {
				p.RejectForever()
				continue
			}
			p.pendF++
			p.phase, p.u, p.x, p.v, p.d = 0, 0, 0, 0, 0
		default:
			p.RejectForever()
		}
		p.note()
	}
	if p.Decided() {
		p.Drive(t)
		return
	}
	if p.pendF > 0 {
		if err := t.Emit(core.F); err == nil {
			p.pendF--
		}
	}
}

// SpaceUsed implements core.SpaceMetered: the high-water mark of the unary
// counter cells. The dominant term is the b-counter that must survive until
// the d-run — the memory Theorem 3.1 shows no finite automaton has.
func (p *LOmegaAcceptor) SpaceUsed() uint64 { return p.hwm }

// ConstWatcher is a constant-space real-time algorithm: it accepts words
// containing the designated symbol infinitely often by echoing f on each
// occurrence. A representative inhabitant of rt-CONSTSPACE.
type ConstWatcher struct {
	Sym  word.Symbol
	pend uint64
}

// Tick implements core.Program.
func (c *ConstWatcher) Tick(t *core.Tick) {
	for _, e := range t.New {
		if e.Sym == c.Sym {
			c.pend = 1 // saturating: constant storage
		}
	}
	if c.pend > 0 {
		if err := t.Emit(core.F); err == nil {
			c.pend = 0
		}
	}
}

// SpaceUsed implements core.SpaceMetered.
func (c *ConstWatcher) SpaceUsed() uint64 { return c.pend + 1 }

// Sample is one input with its expected verdict, for exhibiting class
// membership on a test set.
type Sample struct {
	Name   string
	Input  word.Word
	Member bool
}

// Exhibit runs a fresh program from mk on every sample and reports whether
// (a) all verdicts match and (b) the space bound held on all runs; it also
// returns the peak footprint observed.
func Exhibit(mk func() core.Program, samples []Sample, horizon uint64, bound core.SpaceBound) (allCorrect, withinBound bool, peak uint64) {
	allCorrect, withinBound = true, true
	for _, s := range samples {
		m := core.NewMachine(mk(), s.Input)
		res, used, ok := core.RunWithSpaceBound(m, horizon, bound)
		if res.Verdict.Accepted() != s.Member {
			allCorrect = false
		}
		if !ok {
			withinBound = false
		}
		if used > peak {
			peak = used
		}
	}
	return allCorrect, withinBound, peak
}

// MemberWord builds the timed lasso ((a b^x c d^x $) per chronon-advancing
// block) for the L_ω space measurements.
func MemberWord(x int, period timeseq.Time) *word.Lasso {
	var cyc word.Finite
	add := func(sym string, n int) {
		for i := 0; i < n; i++ {
			cyc = append(cyc, word.TimedSym{Sym: word.Symbol(sym), At: 0})
		}
	}
	add("a", 1)
	add("b", x)
	add("c", 1)
	add("d", x)
	add("$", 1)
	return word.MustLasso(nil, cyc, period)
}

// NonMemberWord is MemberWord with one unbalanced block in every cycle.
func NonMemberWord(x int, period timeseq.Time) *word.Lasso {
	var cyc word.Finite
	add := func(sym string, n int) {
		for i := 0; i < n; i++ {
			cyc = append(cyc, word.TimedSym{Sym: word.Symbol(sym), At: 0})
		}
	}
	add("a", 1)
	add("b", x)
	add("c", 1)
	add("d", x+1)
	add("$", 1)
	return word.MustLasso(nil, cyc, period)
}

// SpaceProfile measures the acceptor's peak footprint as a function of the
// block size x — the measurable face of "L_ω ∉ constant space".
func SpaceProfile(xs []int, horizon uint64) []uint64 {
	unbounded := core.SpaceBound(func(timeseq.Time) uint64 { return ^uint64(0) })
	out := make([]uint64, len(xs))
	for i, x := range xs {
		m := core.NewMachine(&LOmegaAcceptor{}, MemberWord(x, 1))
		_, used, _ := core.RunWithSpaceBound(m, horizon, unbounded)
		out[i] = used
	}
	return out
}
