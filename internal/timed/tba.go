package timed

import (
	"fmt"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Transition is an element of δ ⊆ S × S × Σ × 2^C × Φ(C): read Sym in state
// From with the guard satisfied by the current valuation (after adding the
// elapsed time), reset the clocks in Reset, and move to To.
type Transition struct {
	From  int
	To    int
	Sym   word.Symbol
	Reset []int // clock ids reset to 0 by the transition
	Guard Constraint
}

// TBA is a timed Büchi automaton A = (Σ, S, s0, δ, C, F). Acceptance is
// Büchi-style (inf(r) ∩ F ≠ ∅), matching the tuple's F ⊆ S.
type TBA struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     int
	Clocks    *ClockSet
	Trans     []Transition
	Accept    map[int]bool
}

// NewTBA allocates an empty TBA. With an empty clock set a TBA degenerates
// to an ordinary Büchi automaton — the observation Corollary 3.2's proof
// uses ("a TBA … for which C = ∅").
func NewTBA(alphabet []word.Symbol, numStates, start int, clocks *ClockSet) *TBA {
	if clocks == nil {
		clocks = NewClockSet()
	}
	return &TBA{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Clocks:    clocks,
		Accept:    make(map[int]bool),
	}
}

// AddTrans appends a transition. A nil guard means True.
func (a *TBA) AddTrans(from, to int, sym word.Symbol, guard Constraint, resets ...string) {
	ids := make([]int, 0, len(resets))
	for _, r := range resets {
		id, ok := a.Clocks.ID(r)
		if !ok {
			panic(fmt.Sprintf("timed: unknown clock %q in reset", r))
		}
		ids = append(ids, id)
	}
	if guard == nil {
		guard = True()
	}
	a.Trans = append(a.Trans, Transition{From: from, To: to, Sym: sym, Reset: ids, Guard: guard})
}

// SetAccept marks states as accepting.
func (a *TBA) SetAccept(states ...int) {
	for _, s := range states {
		a.Accept[s] = true
	}
}

// maxConst returns the largest constant in any guard; valuations are clamped
// to maxConst+1, above which all guards are insensitive.
func (a *TBA) maxConst() timeseq.Time {
	var m timeseq.Time
	for _, t := range a.Trans {
		if c := t.Guard.MaxConst(); c > m {
			m = c
		}
	}
	return m
}

// Config is one configuration (s_i, ν_i) of a run.
type Config struct {
	State int
	Val   Valuation
}

// clamp bounds v at ceiling (all guards agree above maxConst).
func clamp(v timeseq.Time, ceiling timeseq.Time) timeseq.Time {
	if v > ceiling {
		return ceiling
	}
	return v
}

// encode packs a clamped valuation into a uint64 key (8 bits per clock;
// ceiling must stay below 255, which discrete-time guards in practice do —
// the encoder panics otherwise).
func encodeVal(v Valuation) uint64 {
	if len(v) > 7 {
		panic("timed: more than 7 clocks not supported by the dense encoding")
	}
	var k uint64
	for i, x := range v {
		if x > 254 {
			panic("timed: clamped clock value exceeds encoding range")
		}
		k |= uint64(x) << (8 * uint(i))
	}
	return k
}

// step advances one configuration by one input element: elapsed is added to
// every clock (clamped), then each enabled transition yields a successor.
func (a *TBA) step(c Config, sym word.Symbol, elapsed, ceiling timeseq.Time) []Config {
	aged := make(Valuation, len(c.Val))
	for i, x := range c.Val {
		aged[i] = clamp(x+elapsed, ceiling)
	}
	var out []Config
	for _, t := range a.Trans {
		if t.From != c.State || t.Sym != sym {
			continue
		}
		if !t.Guard.Eval(aged) {
			continue
		}
		nv := make(Valuation, len(aged))
		copy(nv, aged)
		for _, r := range t.Reset {
			nv[r] = 0
		}
		out = append(out, Config{State: t.To, Val: nv})
	}
	return out
}

// ReachableConfigs returns every configuration reachable after consuming the
// finite timed word w, starting from (Start, 0̄) at time 0. Duplicate
// (state, clamped valuation) pairs are collapsed.
func (a *TBA) ReachableConfigs(w word.Finite) []Config {
	ceiling := a.maxConst() + 1
	cur := map[uint64]Config{}
	init := Config{State: a.Start, Val: make(Valuation, a.Clocks.Len())}
	key := func(c Config) uint64 {
		return uint64(c.State)<<56 | encodeVal(c.Val)
	}
	cur[key(init)] = init
	prev := timeseq.Time(0)
	for _, e := range w {
		elapsed := e.At - prev
		prev = e.At
		next := map[uint64]Config{}
		for _, c := range cur {
			for _, n := range a.step(c, e.Sym, elapsed, ceiling) {
				next[key(n)] = n
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	out := make([]Config, 0, len(cur))
	for _, c := range cur {
		out = append(out, c)
	}
	return out
}

// AcceptsFinitePrefixInto reports whether some run over the finite word ends
// in one of the given states — a helper for tests that probe run structure.
func (a *TBA) AcceptsFinitePrefixInto(w word.Finite, states ...int) bool {
	want := make(map[int]bool, len(states))
	for _, s := range states {
		want[s] = true
	}
	for _, c := range a.ReachableConfigs(w) {
		if want[c.State] {
			return true
		}
	}
	return false
}

// AcceptsLasso decides — exactly — whether the TBA accepts the timed lasso
// word. Discrete time plus clamping makes the configuration space finite:
// nodes are (state, clamped valuation, position class), where the position
// classes cover the prefix, the first cycle traversal (whose entry delta may
// differ), and the steady-state cycle with its wrap-around delta.
func (a *TBA) AcceptsLasso(l *word.Lasso) bool {
	ceiling := a.maxConst() + 1
	if ceiling > 254 {
		panic("timed: guard constants too large for the dense valuation encoding")
	}
	prefixLen := len(l.Prefix)
	cycleLen := len(l.Cycle)
	// Extended prefix: original prefix + first cycle traversal. Steady
	// classes: positions prefixLen+cycleLen … prefixLen+2·cycleLen−1.
	extLen := prefixLen + cycleLen
	numPos := extLen + cycleLen

	// symAt and deltaAt for each position class.
	symAt := make([]word.Symbol, numPos)
	deltaAt := make([]timeseq.Time, numPos)
	at := func(i int) word.TimedSym { return l.At(uint64(i)) }
	for p := 0; p < extLen; p++ {
		symAt[p] = at(p).Sym
		if p == 0 {
			deltaAt[p] = at(0).At // ν starts at time 0
		} else {
			deltaAt[p] = at(p).At - at(p-1).At
		}
	}
	for j := 0; j < cycleLen; j++ {
		p := extLen + j
		symAt[p] = l.Cycle[j].Sym
		if j == 0 {
			// Wrap delta: from the last cycle element to the next
			// traversal's first element.
			deltaAt[p] = l.Cycle[0].At + l.Period - l.Cycle[cycleLen-1].At
		} else {
			deltaAt[p] = l.Cycle[j].At - l.Cycle[j-1].At
		}
	}
	nextPos := func(p int) int {
		p++
		if p >= numPos {
			p = extLen
		}
		return p
	}

	type tnode struct {
		state int
		val   uint64
		pos   int
	}
	decode := func(val uint64) Valuation {
		v := make(Valuation, a.Clocks.Len())
		for i := range v {
			v[i] = timeseq.Time((val >> (8 * uint(i))) & 0xff)
		}
		return v
	}
	succs := func(n tnode) []tnode {
		confs := a.step(Config{State: n.state, Val: decode(n.val)}, symAt[n.pos], deltaAt[n.pos], ceiling)
		out := make([]tnode, 0, len(confs))
		np := nextPos(n.pos)
		for _, c := range confs {
			out = append(out, tnode{state: c.State, val: encodeVal(c.Val), pos: np})
		}
		return out
	}

	start := tnode{state: a.Start, val: 0, pos: 0}
	seen := map[tnode]bool{start: true}
	queue := []tnode{start}
	for qi := 0; qi < len(queue); qi++ {
		for _, m := range succs(queue[qi]) {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	// Accepting loop through a reachable accepting node in the steady part.
	for _, n := range queue {
		if n.pos < extLen || !a.Accept[n.state] {
			continue
		}
		// BFS from n's successors back to n.
		inner := map[tnode]bool{}
		var q2 []tnode
		for _, m := range succs(n) {
			if m == n {
				return true
			}
			if !inner[m] {
				inner[m] = true
				q2 = append(q2, m)
			}
		}
		for qi := 0; qi < len(q2); qi++ {
			for _, m := range succs(q2[qi]) {
				if m == n {
					return true
				}
				if !inner[m] {
					inner[m] = true
					q2 = append(q2, m)
				}
			}
		}
	}
	return false
}

// Witness is a non-emptiness witness: a well-behaved timed lasso accepted by
// the automaton.
type Witness struct {
	Word *word.Lasso
}

// Empty reports whether the TBA accepts no well-behaved timed ω-word, and
// when non-empty returns a witnessing timed lasso. The search explores
// (state, clamped valuation) configurations with per-step elapsed times in
// 0..maxConst+1 (larger delays are guard-equivalent to maxConst+1), and
// demands an accepting cycle with at least one strictly positive delay —
// the progress condition of Definition 3.1, which rules out Zeno witnesses.
func (a *TBA) Empty() (Witness, bool) {
	ceiling := a.maxConst() + 1
	maxDelta := ceiling // deltas beyond ceiling are equivalent to ceiling
	type cnode struct {
		state int
		val   uint64
	}
	type edge struct {
		sym   word.Symbol
		delta timeseq.Time
		to    cnode
	}
	decode := func(val uint64) Valuation {
		v := make(Valuation, a.Clocks.Len())
		for i := range v {
			v[i] = timeseq.Time((val >> (8 * uint(i))) & 0xff)
		}
		return v
	}
	succs := func(n cnode) []edge {
		var out []edge
		for d := timeseq.Time(0); d <= maxDelta; d++ {
			for _, sym := range a.Alphabet {
				for _, c := range a.step(Config{State: n.state, Val: decode(n.val)}, sym, d, ceiling) {
					out = append(out, edge{sym: sym, delta: d, to: cnode{c.State, encodeVal(c.Val)}})
				}
			}
		}
		return out
	}

	// Forward reachability with path reconstruction.
	start := cnode{state: a.Start, val: 0}
	type visit struct {
		n    cnode
		via  edge
		prev int
	}
	seen := map[cnode]bool{start: true}
	order := []visit{{n: start, prev: -1}}
	for qi := 0; qi < len(order); qi++ {
		for _, e := range succs(order[qi].n) {
			if !seen[e.to] {
				seen[e.to] = true
				order = append(order, visit{n: e.to, via: e, prev: qi})
			}
		}
	}
	buildPrefix := func(qi int) (word.Finite, timeseq.Time) {
		var rev []edge
		for i := qi; order[i].prev != -1; i = order[i].prev {
			rev = append(rev, order[i].via)
		}
		var w word.Finite
		var now timeseq.Time
		for i := len(rev) - 1; i >= 0; i-- {
			now += rev[i].delta
			w = append(w, word.TimedSym{Sym: rev[i].sym, At: now})
		}
		return w, now
	}

	for qi := range order {
		n := order[qi].n
		if !a.Accept[n.state] {
			continue
		}
		// Search a cycle n → … → n with total delay ≥ 1: BFS over
		// (node, progressed?) pairs.
		type pn struct {
			n    cnode
			prog bool
		}
		type pvisit struct {
			p    pn
			via  edge
			prev int
		}
		pseen := map[pn]bool{}
		var porder []pvisit
		pushP := func(p pn, via edge, prev int) {
			if !pseen[p] {
				pseen[p] = true
				porder = append(porder, pvisit{p: p, via: via, prev: prev})
			}
		}
		for _, e := range succs(n) {
			pushP(pn{e.to, e.delta > 0}, e, -1)
		}
		found := -1
		for pi := 0; pi < len(porder) && found < 0; pi++ {
			cur := porder[pi]
			for _, e := range succs(cur.p.n) {
				prog := cur.p.prog || e.delta > 0
				if e.to == n && prog {
					porder = append(porder, pvisit{p: pn{e.to, prog}, via: e, prev: pi})
					found = len(porder) - 1
					break
				}
				pushP(pn{e.to, prog}, e, pi)
			}
		}
		// Handle the one-step cycle n → n with delta > 0.
		if found < 0 {
			for i, pv := range porder {
				if pv.prev == -1 && pv.p.n == n && pv.p.prog {
					found = i
					break
				}
			}
		}
		if found < 0 {
			continue
		}
		// Reconstruct cycle edges.
		var rev []edge
		for i := found; i != -1; i = porder[i].prev {
			rev = append(rev, porder[i].via)
		}
		prefix, now := buildPrefix(qi)
		var cycle word.Finite
		t := now
		var period timeseq.Time
		for i := len(rev) - 1; i >= 0; i-- {
			t += rev[i].delta
			period += rev[i].delta
			cycle = append(cycle, word.TimedSym{Sym: rev[i].sym, At: t})
		}
		// The lasso invariant wants cycle spans within one period; the
		// first cycle element sits at now+delta0, and the last at
		// now+period, so shift: cycle times lie in (now, now+period] and
		// cycle[0].At+period ≥ cycle[last].At requires delta0 ≥ 0 — adjust
		// by using period as measured.
		l, err := word.NewLasso(prefix, cycle, period)
		if err != nil {
			// Degenerate alignment (delta0 = 0 with span = period): nudge
			// by absorbing one traversal into the prefix.
			ext := append(append(word.Finite{}, prefix...), cycle...)
			shifted := make(word.Finite, len(cycle))
			for i, e := range cycle {
				e.At += period
				shifted[i] = e
			}
			l, err = word.NewLasso(ext, shifted, period)
			if err != nil {
				continue
			}
		}
		return Witness{Word: l}, false
	}
	return Witness{}, true
}
