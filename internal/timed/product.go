package timed

import (
	"fmt"
)

// Alur–Dill timed automata are closed under intersection; this file
// implements the product construction. The clocks of the two operands are
// kept disjoint (the right operand's clock ids are shifted past the left's),
// transitions synchronize on input symbols, guards conjoin, resets union,
// and Büchi acceptance uses the standard two-phase flag (see
// omega.Intersect): phase 0 waits for an accepting left state, phase 1 for
// an accepting right state, flipping on the current state; accepting
// product states are phase-0 states with an accepting left component.

// shiftConstraint re-indexes a constraint's clocks by offset. All
// constraint implementations live in this package, so the type switch is
// exhaustive.
func shiftConstraint(c Constraint, offset int) Constraint {
	switch x := c.(type) {
	case le:
		x.clock += offset
		return x
	case ge:
		x.clock += offset
		return x
	case not:
		return not{shiftConstraint(x.d, offset)}
	case and:
		return and{shiftConstraint(x.d1, offset), shiftConstraint(x.d2, offset)}
	case tt:
		return x
	default:
		panic(fmt.Sprintf("timed: unknown constraint type %T", c))
	}
}

// Intersect builds a TBA accepting L(a) ∩ L(b). Both operands must share
// the alphabet.
func Intersect(a, b *TBA) *TBA {
	names := make([]string, 0, a.Clocks.Len()+b.Clocks.Len())
	for _, n := range a.Clocks.Names() {
		names = append(names, "l_"+n)
	}
	for _, n := range b.Clocks.Names() {
		names = append(names, "r_"+n)
	}
	clocks := NewClockSet(names...)
	offset := a.Clocks.Len()

	id := func(sa, sb, phase int) int { return (sa*b.NumStates+sb)*2 + phase }
	out := NewTBA(a.Alphabet, a.NumStates*b.NumStates*2, id(a.Start, b.Start, 0), clocks)

	for _, ta := range a.Trans {
		for _, tb := range b.Trans {
			if ta.Sym != tb.Sym {
				continue
			}
			guard := And(ta.Guard, shiftConstraint(tb.Guard, offset))
			resets := make([]int, 0, len(ta.Reset)+len(tb.Reset))
			resets = append(resets, ta.Reset...)
			for _, r := range tb.Reset {
				resets = append(resets, r+offset)
			}
			for phase := 0; phase < 2; phase++ {
				np := phase
				if phase == 0 && a.Accept[ta.From] {
					np = 1
				} else if phase == 1 && b.Accept[tb.From] {
					np = 0
				}
				out.Trans = append(out.Trans, Transition{
					From:  id(ta.From, tb.From, phase),
					To:    id(ta.To, tb.To, np),
					Sym:   ta.Sym,
					Reset: resets,
					Guard: guard,
				})
			}
		}
	}
	for sa := 0; sa < a.NumStates; sa++ {
		if !a.Accept[sa] {
			continue
		}
		for sb := 0; sb < b.NumStates; sb++ {
			out.Accept[id(sa, sb, 0)] = true
		}
	}
	return out
}
