package timed

import (
	"rtc/internal/language"
	"rtc/internal/word"
)

// Language wraps the TBA as a timed ω-language in the sense of §3: "a
// timed ω-language accepted by some TBA is a timed regular language".
// Lasso-presented words are decided exactly; other representations yield
// Unknown (finite words are definite non-members — the language contains
// only ω-words).
func (a *TBA) Language(name string) *language.Language {
	return &language.Language{
		Name: name,
		Member: func(w word.Word, h uint64) language.Verdict {
			if l, ok := w.(*word.Lasso); ok {
				if a.AcceptsLasso(l) {
					return language.Yes
				}
				return language.No
			}
			if !w.Length().Omega {
				return language.No
			}
			return language.Unknown
		},
	}
}
