package timed

import (
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// §3.1.1 notes that "the definition of timed push-down automata can be
// obtained by naturally restricting definition 3.3, but one will have to
// add clocks to the model, given the limited (stack-like) nature of the
// storage space access of such a device. We believe that such models can be
// easily derived." This file derives it: a TPDA is a finite control with a
// stack, clocks, and guarded transitions that combine one input symbol, a
// stack action and clock resets. Acceptance is by final state on finite
// timed words (the natural finite restriction of Definition 3.3).

// StackAction describes the stack effect of one transition.
type StackAction struct {
	// Pop, when non-empty, requires (and removes) this top-of-stack symbol.
	Pop word.Symbol
	// Push, when non-empty, is pushed after the pop (last element ends up
	// on top).
	Push []word.Symbol
}

// TPDATransition is one guarded transition.
type TPDATransition struct {
	From, To int
	Sym      word.Symbol
	Guard    Constraint
	Reset    []int
	Stack    StackAction
}

// TPDA is a timed push-down automaton.
type TPDA struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     int
	Clocks    *ClockSet
	Trans     []TPDATransition
	Accept    map[int]bool
	// AcceptEmptyStackOnly additionally requires an empty stack.
	AcceptEmptyStackOnly bool
}

// NewTPDA allocates an empty TPDA.
func NewTPDA(alphabet []word.Symbol, numStates, start int, clocks *ClockSet) *TPDA {
	if clocks == nil {
		clocks = NewClockSet()
	}
	return &TPDA{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Clocks:    clocks,
		Accept:    make(map[int]bool),
	}
}

// AddTrans appends a transition; nil guard means True.
func (a *TPDA) AddTrans(tr TPDATransition) {
	if tr.Guard == nil {
		tr.Guard = True()
	}
	a.Trans = append(a.Trans, tr)
}

// SetAccept marks accepting states.
func (a *TPDA) SetAccept(states ...int) {
	for _, s := range states {
		a.Accept[s] = true
	}
}

// tpdaConfig is one configuration: control state, stack, clock valuation.
type tpdaConfig struct {
	state int
	stack string // stack symbols joined by 0x1f, top last
	val   uint64
}

const stackSep = "\x1f"

func pushAll(stack string, syms []word.Symbol) string {
	for _, s := range syms {
		if stack == "" {
			stack = string(s)
		} else {
			stack += stackSep + string(s)
		}
	}
	return stack
}

func top(stack string) (word.Symbol, string, bool) {
	if stack == "" {
		return "", "", false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == 0x1f {
			return word.Symbol(stack[i+1:]), stack[:i], true
		}
	}
	return word.Symbol(stack), "", true
}

// Accepts decides acceptance of a finite timed word by breadth-first
// exploration of the configuration space (clock valuations are clamped as
// for the TBA; the stack is bounded by the input length times the largest
// push, so the search is finite).
func (a *TPDA) Accepts(w word.Finite) bool {
	ceiling := a.maxConst() + 1
	if ceiling > 254 {
		panic("timed: guard constants too large for the dense valuation encoding")
	}
	cur := map[tpdaConfig]bool{{state: a.Start, val: 0}: true}
	prev := timeseq.Time(0)
	decode := func(val uint64) Valuation {
		v := make(Valuation, a.Clocks.Len())
		for i := range v {
			v[i] = timeseq.Time((val >> (8 * uint(i))) & 0xff)
		}
		return v
	}
	for _, e := range w {
		elapsed := e.At - prev
		prev = e.At
		next := map[tpdaConfig]bool{}
		for c := range cur {
			aged := decode(c.val)
			for i := range aged {
				aged[i] = clamp(aged[i]+elapsed, ceiling)
			}
			for _, tr := range a.Trans {
				if tr.From != c.state || tr.Sym != e.Sym {
					continue
				}
				if !tr.Guard.Eval(aged) {
					continue
				}
				stack := c.stack
				if tr.Stack.Pop != "" {
					t, rest, ok := top(stack)
					if !ok || t != tr.Stack.Pop {
						continue
					}
					stack = rest
				}
				stack = pushAll(stack, tr.Stack.Push)
				nv := make(Valuation, len(aged))
				copy(nv, aged)
				for _, r := range tr.Reset {
					nv[r] = 0
				}
				next[tpdaConfig{state: tr.To, stack: stack, val: encodeVal(nv)}] = true
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for c := range cur {
		if a.Accept[c.state] && (!a.AcceptEmptyStackOnly || c.stack == "") {
			return true
		}
	}
	return false
}

// maxConst mirrors TBA.maxConst for TPDA guards.
func (a *TPDA) maxConst() timeseq.Time {
	var m timeseq.Time
	for _, t := range a.Trans {
		if c := t.Guard.MaxConst(); c > m {
			m = c
		}
	}
	return m
}
