// Package timed implements timed Büchi automata as summarized in §2.1 of the
// paper (after Alur & Dill): finite automata equipped with a set C of clocks,
// transition guards drawn from the constraint language Φ(C), and clock
// resets. Time is discrete (Definition 3.1), so clock valuations are natural
// numbers and acceptance over ultimately periodic timed words is decided
// exactly by clamping valuations above the largest constant.
package timed

import (
	"fmt"
	"strconv"
	"strings"

	"rtc/internal/timeseq"
)

// Valuation assigns a value to each clock, indexed by clock id.
type Valuation []timeseq.Time

// Constraint is an element of Φ(X) (§2.1): x ≤ c, c ≤ x, ¬d, or d1 ∧ d2.
type Constraint interface {
	// Eval reports whether the constraint holds under v.
	Eval(v Valuation) bool
	// MaxConst returns the largest constant mentioned, for clamping.
	MaxConst() timeseq.Time
	// String renders the constraint in the parser's syntax.
	String() string
}

// le is the atom x ≤ c.
type le struct {
	clock int
	name  string
	c     timeseq.Time
}

func (a le) Eval(v Valuation) bool  { return v[a.clock] <= a.c }
func (a le) MaxConst() timeseq.Time { return a.c }
func (a le) String() string         { return fmt.Sprintf("%s<=%d", a.name, a.c) }

// ge is the atom c ≤ x.
type ge struct {
	clock int
	name  string
	c     timeseq.Time
}

func (a ge) Eval(v Valuation) bool  { return v[a.clock] >= a.c }
func (a ge) MaxConst() timeseq.Time { return a.c }
func (a ge) String() string         { return fmt.Sprintf("%s>=%d", a.name, a.c) }

// not is ¬d.
type not struct{ d Constraint }

func (a not) Eval(v Valuation) bool  { return !a.d.Eval(v) }
func (a not) MaxConst() timeseq.Time { return a.d.MaxConst() }
func (a not) String() string         { return "!(" + a.d.String() + ")" }

// and is d1 ∧ d2.
type and struct{ d1, d2 Constraint }

func (a and) Eval(v Valuation) bool { return a.d1.Eval(v) && a.d2.Eval(v) }
func (a and) MaxConst() timeseq.Time {
	m := a.d1.MaxConst()
	if n := a.d2.MaxConst(); n > m {
		m = n
	}
	return m
}
func (a and) String() string { return "(" + a.d1.String() + " && " + a.d2.String() + ")" }

// tt is the trivially true constraint (the empty conjunction).
type tt struct{}

func (tt) Eval(Valuation) bool    { return true }
func (tt) MaxConst() timeseq.Time { return 0 }
func (tt) String() string         { return "true" }

// True is the guard that always holds.
func True() Constraint { return tt{} }

// ClockSet names the clocks of an automaton; constraints are built against
// it so clock ids resolve consistently.
type ClockSet struct {
	names []string
	index map[string]int
}

// NewClockSet declares clocks with the given names.
func NewClockSet(names ...string) *ClockSet {
	cs := &ClockSet{names: names, index: make(map[string]int, len(names))}
	for i, n := range names {
		cs.index[n] = i
	}
	return cs
}

// Len returns the number of clocks.
func (cs *ClockSet) Len() int { return len(cs.names) }

// Names returns the clock names.
func (cs *ClockSet) Names() []string { return cs.names }

// ID resolves a clock name.
func (cs *ClockSet) ID(name string) (int, bool) {
	i, ok := cs.index[name]
	return i, ok
}

// Le builds x ≤ c.
func (cs *ClockSet) Le(name string, c timeseq.Time) Constraint {
	return le{clock: cs.mustID(name), name: name, c: c}
}

// Ge builds c ≤ x.
func (cs *ClockSet) Ge(name string, c timeseq.Time) Constraint {
	return ge{clock: cs.mustID(name), name: name, c: c}
}

// Lt builds x < c as ¬(c ≤ x), per the paper's grammar.
func (cs *ClockSet) Lt(name string, c timeseq.Time) Constraint {
	return not{cs.Ge(name, c)}
}

// Gt builds c < x as ¬(x ≤ c).
func (cs *ClockSet) Gt(name string, c timeseq.Time) Constraint {
	return not{cs.Le(name, c)}
}

// Eq builds x = c as (x ≤ c) ∧ (c ≤ x).
func (cs *ClockSet) Eq(name string, c timeseq.Time) Constraint {
	return and{cs.Le(name, c), cs.Ge(name, c)}
}

// Not negates a constraint.
func Not(d Constraint) Constraint { return not{d} }

// And conjoins constraints (True for the empty conjunction).
func And(ds ...Constraint) Constraint {
	if len(ds) == 0 {
		return tt{}
	}
	out := ds[0]
	for _, d := range ds[1:] {
		out = and{out, d}
	}
	return out
}

// Or is sugar: d1 ∨ d2 = ¬(¬d1 ∧ ¬d2).
func Or(d1, d2 Constraint) Constraint { return not{and{not{d1}, not{d2}}} }

func (cs *ClockSet) mustID(name string) int {
	i, ok := cs.index[name]
	if !ok {
		panic(fmt.Sprintf("timed: unknown clock %q", name))
	}
	return i
}

// Parse parses a constraint in a small syntax over the clock set:
//
//	expr := term { "&&" term }
//	term := "!" term | "(" expr ")" | atom | "true"
//	atom := clock op const
//	op   := "<=" | ">=" | "<" | ">" | "=="
//
// Everything desugars into the paper's Φ(X) grammar.
func (cs *ClockSet) Parse(s string) (Constraint, error) {
	p := &parser{cs: cs, toks: tokenize(s)}
	c, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("timed: trailing input at token %d in %q", p.pos, s)
	}
	return c, nil
}

// MustParse is Parse that panics on error, for statically known constraints.
func (cs *ClockSet) MustParse(s string) Constraint {
	c, err := cs.Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

type parser struct {
	cs   *ClockSet
	toks []string
	pos  int
}

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t':
			i++
		case strings.HasPrefix(s[i:], "&&"):
			toks = append(toks, "&&")
			i += 2
		case strings.HasPrefix(s[i:], "<="), strings.HasPrefix(s[i:], ">="), strings.HasPrefix(s[i:], "=="):
			toks = append(toks, s[i:i+2])
			i += 2
		case s[i] == '<' || s[i] == '>' || s[i] == '!' || s[i] == '(' || s[i] == ')':
			toks = append(toks, string(s[i]))
			i++
		default:
			j := i
			for j < len(s) && (isAlnum(s[j])) {
				j++
			}
			if j == i {
				toks = append(toks, string(s[i]))
				i++
			} else {
				toks = append(toks, s[i:j])
				i = j
			}
		}
	}
	return toks
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expr() (Constraint, error) {
	c, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&&" {
		p.next()
		d, err := p.term()
		if err != nil {
			return nil, err
		}
		c = and{c, d}
	}
	return c, nil
}

func (p *parser) term() (Constraint, error) {
	switch t := p.peek(); t {
	case "!":
		p.next()
		d, err := p.term()
		if err != nil {
			return nil, err
		}
		return not{d}, nil
	case "(":
		p.next()
		d, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("timed: missing )")
		}
		return d, nil
	case "true":
		p.next()
		return tt{}, nil
	case "":
		return nil, fmt.Errorf("timed: unexpected end of constraint")
	default:
		return p.atom()
	}
}

func (p *parser) atom() (Constraint, error) {
	name := p.next()
	if _, ok := p.cs.ID(name); !ok {
		return nil, fmt.Errorf("timed: unknown clock %q", name)
	}
	op := p.next()
	num := p.next()
	c, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("timed: bad constant %q: %v", num, err)
	}
	ct := timeseq.Time(c)
	switch op {
	case "<=":
		return p.cs.Le(name, ct), nil
	case ">=":
		return p.cs.Ge(name, ct), nil
	case "<":
		return p.cs.Lt(name, ct), nil
	case ">":
		return p.cs.Gt(name, ct), nil
	case "==":
		return p.cs.Eq(name, ct), nil
	default:
		return nil, fmt.Errorf("timed: bad operator %q", op)
	}
}
