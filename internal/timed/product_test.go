package timed

import (
	"math/rand"
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// maxGapTBA accepts words of a's whose consecutive gaps are ≤ g.
func maxGapTBA(g timeseq.Time) *TBA {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	a.AddTrans(0, 0, "a", cs.Le("x", g), "x")
	a.SetAccept(0)
	return a
}

// minGapTBA accepts words of a's whose consecutive gaps are ≥ g (the first
// symbol is unconstrained: its "gap" is from time 0).
func minGapTBA(g timeseq.Time) *TBA {
	cs := NewClockSet("y")
	a := NewTBA([]word.Symbol{"a"}, 2, 0, cs)
	a.AddTrans(0, 1, "a", nil, "y") // first symbol free
	a.AddTrans(1, 1, "a", cs.Ge("y", g), "y")
	a.SetAccept(1)
	return a
}

func TestIntersectBand(t *testing.T) {
	// Gaps in [2, 3]: intersection of ≤3 and ≥2.
	band := Intersect(maxGapTBA(3), minGapTBA(2))
	cases := []struct {
		period timeseq.Time
		want   bool
	}{
		{1, false}, {2, true}, {3, true}, {4, false},
	}
	for _, c := range cases {
		w := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, c.period)
		if got := band.AcceptsLasso(w); got != c.want {
			t.Errorf("period %d: band accepts = %v, want %v", c.period, got, c.want)
		}
	}
}

// Property: the product accepts exactly the words both operands accept, on
// random gap words.
func TestIntersectAgreesPointwise(t *testing.T) {
	a := maxGapTBA(4)
	b := minGapTBA(2)
	prod := Intersect(a, b)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		// Random lasso of a's: cycle of 1-3 symbols with random offsets.
		n := 1 + rng.Intn(3)
		var cyc word.Finite
		at := timeseq.Time(rng.Intn(3))
		for i := 0; i < n; i++ {
			cyc = append(cyc, word.TimedSym{Sym: "a", At: at})
			at += timeseq.Time(rng.Intn(4))
		}
		period := at - cyc[0].At + timeseq.Time(rng.Intn(4))
		if cyc[len(cyc)-1].At > cyc[0].At+period {
			period = cyc[len(cyc)-1].At - cyc[0].At
		}
		if period == 0 {
			period = 1
		}
		l, err := word.NewLasso(nil, cyc, period)
		if err != nil {
			continue
		}
		want := a.AcceptsLasso(l) && b.AcceptsLasso(l)
		if got := prod.AcceptsLasso(l); got != want {
			t.Fatalf("trial %d on %v: product=%v, a∧b=%v", trial, l, got, want)
		}
	}
}

// The product's emptiness machinery still works: a contradictory band is
// empty, a satisfiable one yields a well-behaved witness accepted by both
// operands.
func TestIntersectEmptiness(t *testing.T) {
	impossible := Intersect(maxGapTBA(1), minGapTBA(3))
	if _, empty := impossible.Empty(); !empty {
		t.Error("gap ≤1 ∧ gap ≥3 declared non-empty")
	}
	possible := Intersect(maxGapTBA(3), minGapTBA(2))
	wit, empty := possible.Empty()
	if empty {
		t.Fatal("satisfiable band declared empty")
	}
	if !wit.Word.WellBehaved() {
		t.Fatalf("witness %v not well behaved", wit.Word)
	}
	if !maxGapTBA(3).AcceptsLasso(wit.Word) || !minGapTBA(2).AcceptsLasso(wit.Word) {
		t.Fatalf("witness %v not accepted by both operands", wit.Word)
	}
}

func TestShiftConstraint(t *testing.T) {
	cs := NewClockSet("x", "y")
	c := And(cs.Le("x", 3), Not(cs.Ge("y", 2)))
	shifted := shiftConstraint(c, 2)
	// Under a 4-clock valuation, the shifted constraint reads clocks 2,3.
	v := Valuation{99, 99, 3, 1}
	if !shifted.Eval(v) {
		t.Error("shifted constraint misreads clocks")
	}
	v = Valuation{0, 0, 4, 1}
	if shifted.Eval(v) {
		t.Error("shifted constraint ignored its own clock")
	}
	if shifted.MaxConst() != 3 {
		t.Errorf("MaxConst = %d", shifted.MaxConst())
	}
}
