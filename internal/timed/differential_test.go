package timed

import (
	"math/rand"
	"testing"

	"rtc/internal/omega"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Differential test for the clamped-configuration decision procedure: a TBA
// with C = ∅ is exactly a Büchi automaton (the Corollary 3.2 observation),
// so on random automata and random timed lassos the two decision procedures
// must agree — timestamps must not influence the clock-free verdict.
func TestClockFreeTBAMatchesBuchi(t *testing.T) {
	alpha := []word.Symbol{"a", "b"}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		tba := NewTBA(alpha, n, 0, nil)
		buchi := omega.NewBuchi(alpha, n, 0)
		for s := 0; s < n; s++ {
			for _, sym := range alpha {
				for c := rng.Intn(3); c > 0; c-- {
					to := rng.Intn(n)
					tba.AddTrans(s, to, sym, nil)
					buchi.AddTrans(s, sym, to)
				}
			}
			if rng.Intn(3) == 0 {
				tba.SetAccept(s)
				buchi.SetAccept(s)
			}
		}
		for w := 0; w < 8; w++ {
			l := randomTimedLasso(rng, alpha)
			got := tba.AcceptsLasso(l)
			_, want := buchi.AcceptsLasso(omega.FromTimedLasso(l))
			if got != want {
				t.Fatalf("trial %d: clock-free TBA %v, Büchi %v on %v", trial, got, want, l)
			}
		}
	}
}

// randomTimedLasso builds a small valid timed lasso with random symbols and
// timestamps.
func randomTimedLasso(rng *rand.Rand, alpha []word.Symbol) *word.Lasso {
	n := 1 + rng.Intn(4)
	var cyc word.Finite
	at := timeseq.Time(rng.Intn(3))
	for i := 0; i < n; i++ {
		cyc = append(cyc, word.TimedSym{Sym: alpha[rng.Intn(len(alpha))], At: at})
		at += timeseq.Time(rng.Intn(3))
	}
	span := cyc[len(cyc)-1].At - cyc[0].At
	period := span + timeseq.Time(1+rng.Intn(3))
	return word.MustLasso(nil, cyc, period)
}

// Clamping soundness: raising every guard constant far beyond the word's
// timing must not change the verdict when the original guards were already
// insensitive at the clamp ceiling (here: guards that the word satisfies
// with room to spare vs. the identical automaton with slack constants).
func TestClampingInsensitiveToSlack(t *testing.T) {
	build := func(bound timeseq.Time) *TBA {
		cs := NewClockSet("x")
		a := NewTBA([]word.Symbol{"a"}, 1, 0, cs)
		a.AddTrans(0, 0, "a", cs.Le("x", bound), "x")
		a.SetAccept(0)
		return a
	}
	w := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 2) // gaps ≤ 2
	for _, bound := range []timeseq.Time{2, 3, 10, 100, 200} {
		if !build(bound).AcceptsLasso(w) {
			t.Errorf("bound %d rejected a gap-2 word", bound)
		}
	}
	tight := build(1)
	if tight.AcceptsLasso(w) {
		t.Error("bound 1 accepted a gap-2 word")
	}
}
