package timed

import (
	"testing"
)

// FuzzParse: the constraint parser never panics and accepted inputs
// re-parse from their own rendering to an equivalent constraint.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x<=3", "x>=0 && y<5", "!(x==2)", "((x>1))", "true",
		"x<=3 &&", "z<=1", "x ? 2", "", "x<=99999999999999999999",
	} {
		f.Add(seed)
	}
	cs := NewClockSet("x", "y")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := cs.Parse(s)
		if err != nil {
			return // rejected input: fine
		}
		// Accepted input: the rendering must re-parse and agree on a few
		// probe valuations.
		c2, err := cs.Parse(c.String())
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", c.String(), s, err)
		}
		for _, v := range []Valuation{{0, 0}, {1, 3}, {7, 2}, {255, 255}} {
			if c.Eval(v) != c2.Eval(v) {
				t.Fatalf("%q and its rendering disagree under %v", s, v)
			}
		}
	})
}
