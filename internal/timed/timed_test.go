package timed

import (
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func TestConstraintEval(t *testing.T) {
	cs := NewClockSet("x", "y")
	v := Valuation{3, 7}
	cases := []struct {
		c    Constraint
		want bool
	}{
		{cs.Le("x", 3), true},
		{cs.Le("x", 2), false},
		{cs.Ge("y", 7), true},
		{cs.Ge("y", 8), false},
		{Not(cs.Le("x", 3)), false},
		{And(cs.Le("x", 5), cs.Ge("y", 5)), true},
		{And(cs.Le("x", 5), cs.Ge("y", 9)), false},
		{Or(cs.Le("x", 0), cs.Ge("y", 7)), true},
		{cs.Lt("x", 3), false},
		{cs.Lt("x", 4), true},
		{cs.Gt("y", 6), true},
		{cs.Eq("x", 3), true},
		{cs.Eq("x", 4), false},
		{True(), true},
	}
	for _, c := range cases {
		if got := c.c.Eval(v); got != c.want {
			t.Errorf("%s under %v = %v, want %v", c.c, v, got, c.want)
		}
	}
}

func TestConstraintMaxConst(t *testing.T) {
	cs := NewClockSet("x", "y")
	c := And(cs.Le("x", 3), Not(cs.Ge("y", 11)))
	if got := c.MaxConst(); got != 11 {
		t.Errorf("MaxConst = %d, want 11", got)
	}
}

func TestParse(t *testing.T) {
	cs := NewClockSet("x", "y")
	cases := []struct {
		in   string
		v    Valuation
		want bool
	}{
		{"x<=5", Valuation{5, 0}, true},
		{"x<5", Valuation{5, 0}, false},
		{"x>=2 && y<=0", Valuation{3, 0}, true},
		{"!(x==3)", Valuation{3, 0}, false},
		{"(x>1 && y<1) && x<=9", Valuation{2, 0}, true},
		{"true", Valuation{0, 0}, true},
	}
	for _, c := range cases {
		con, err := cs.Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := con.Eval(c.v); got != c.want {
			t.Errorf("%q under %v = %v, want %v", c.in, c.v, got, c.want)
		}
	}
	for _, bad := range []string{"", "z<=3", "x<=", "x<=3 &&", "(x<=3", "x ? 3"} {
		if _, err := cs.Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func ts(sym string, at timeseq.Time) word.TimedSym {
	return word.TimedSym{Sym: word.Symbol(sym), At: at}
}

// gapTBA accepts timed words over {a} where consecutive a's are at most 2
// chronons apart: clock x is reset on every a and guards x<=2.
func gapTBA() *TBA {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	a.AddTrans(0, 0, "a", cs.Le("x", 2), "x")
	a.SetAccept(0)
	return a
}

func TestReachableConfigs(t *testing.T) {
	a := gapTBA()
	// a at 1, 3, 5: all gaps ≤ 2 — reachable.
	w := word.MustFinite(ts("a", 1), ts("a", 3), ts("a", 5))
	confs := a.ReachableConfigs(w)
	if len(confs) != 1 || confs[0].State != 0 || confs[0].Val[0] != 0 {
		t.Fatalf("ReachableConfigs = %+v", confs)
	}
	// a at 1, 4: gap 3 > 2 — no run survives.
	w = word.MustFinite(ts("a", 1), ts("a", 4))
	if confs := a.ReachableConfigs(w); confs != nil {
		t.Fatalf("run should die, got %+v", confs)
	}
}

func TestTBAAcceptsLasso(t *testing.T) {
	a := gapTBA()
	good := word.MustLasso(nil, word.Finite{ts("a", 1)}, 2) // a every 2 chronons
	if !a.AcceptsLasso(good) {
		t.Error("period-2 word rejected")
	}
	bad := word.MustLasso(nil, word.Finite{ts("a", 1)}, 3) // gap 3
	if a.AcceptsLasso(bad) {
		t.Error("period-3 word accepted")
	}
	// Uneven cycle: a at 1 and 2 within a period of 4 → wrap gap 3.
	uneven := word.MustLasso(nil, word.Finite{ts("a", 1), ts("a", 2)}, 4)
	if a.AcceptsLasso(uneven) {
		t.Error("uneven word with wrap gap 3 accepted")
	}
	// Same cycle with period 3 → wrap gap 2: fine.
	ok3 := word.MustLasso(nil, word.Finite{ts("a", 1), ts("a", 2)}, 3)
	if !a.AcceptsLasso(ok3) {
		t.Error("wrap gap 2 rejected")
	}
}

// A TBA with C = ∅ is an ordinary Büchi automaton — the observation used in
// Corollary 3.2's proof.
func TestTBAWithoutClocksIsBuchi(t *testing.T) {
	a := NewTBA([]word.Symbol{"a", "b"}, 2, 0, nil)
	// Accepts words with infinitely many a's, any timing.
	a.AddTrans(0, 1, "a", nil)
	a.AddTrans(0, 0, "b", nil)
	a.AddTrans(1, 1, "a", nil)
	a.AddTrans(1, 0, "b", nil)
	a.SetAccept(1)
	yes := word.RepeatClassical("ab", 5)
	if !a.AcceptsLasso(yes) {
		t.Error("(ab)^ω rejected regardless of timing")
	}
	no := word.MustLasso(word.FromClassical("aaa", 0), word.Finite{ts("b", 1)}, 1)
	if a.AcceptsLasso(no) {
		t.Error("aaab^ω accepted")
	}
}

// Timing sensitivity: the same symbol sequence is accepted or rejected
// purely on timestamps — the defining feature of timed languages.
func TestTimedLanguageSeparatesOnTimeOnly(t *testing.T) {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a", "b"}, 2, 0, cs)
	// b must come exactly 1 chronon after the preceding a.
	a.AddTrans(0, 1, "a", nil, "x")
	a.AddTrans(1, 0, "b", cs.Eq("x", 1))
	a.SetAccept(0)
	tight := word.MustLasso(nil, word.Finite{ts("a", 0), ts("b", 1)}, 2)
	loose := word.MustLasso(nil, word.Finite{ts("a", 0), ts("b", 2)}, 3)
	if !a.AcceptsLasso(tight) {
		t.Error("exact-gap word rejected")
	}
	if a.AcceptsLasso(loose) {
		t.Error("wrong-gap word accepted despite identical symbols")
	}
}

func TestTBAEmptyNonEmpty(t *testing.T) {
	a := gapTBA()
	w, empty := a.Empty()
	if empty {
		t.Fatal("gapTBA declared empty")
	}
	if !w.Word.WellBehaved() {
		t.Fatalf("witness %v is not well behaved", w.Word)
	}
	if !a.AcceptsLasso(w.Word) {
		t.Fatalf("witness %v not accepted", w.Word)
	}
}

func TestTBAEmptyDetectsEmptiness(t *testing.T) {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	// Guard is unsatisfiable: x<=1 && x>=2.
	a.AddTrans(0, 0, "a", And(cs.Le("x", 1), cs.Ge("x", 2)), "x")
	a.SetAccept(0)
	if _, empty := a.Empty(); !empty {
		t.Error("unsatisfiable TBA declared non-empty")
	}
}

// A TBA whose only accepting cycles are Zeno (zero elapsed time) accepts no
// well-behaved word: the progress condition of Definition 3.1 excludes them.
func TestTBAEmptyRejectsZenoOnlyCycles(t *testing.T) {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a"}, 1, 0, cs)
	// Every a must arrive at global time 0: guard x<=0 and no reset…
	// actually x is never reset, so x <= 0 forces all arrivals at time 0.
	a.AddTrans(0, 0, "a", cs.Le("x", 0))
	a.SetAccept(0)
	if _, empty := a.Empty(); !empty {
		t.Error("Zeno-only TBA declared non-empty (progress violated)")
	}
}

func TestAcceptsFinitePrefixInto(t *testing.T) {
	cs := NewClockSet("x")
	a := NewTBA([]word.Symbol{"a", "b"}, 2, 0, cs)
	a.AddTrans(0, 1, "a", nil, "x")
	a.AddTrans(1, 0, "b", cs.Le("x", 2))
	w := word.MustFinite(ts("a", 0), ts("b", 2))
	if !a.AcceptsFinitePrefixInto(w, 0) {
		t.Error("prefix should end in state 0")
	}
	if a.AcceptsFinitePrefixInto(w, 1) {
		t.Error("prefix cannot end in state 1")
	}
}
