package timed

import (
	"testing"

	"rtc/internal/language"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func TestTBAAsLanguage(t *testing.T) {
	lang := gapTBA().Language("gap≤2")
	good := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 2)
	bad := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, 3)
	if got := lang.Contains(good, 64); got != language.Yes {
		t.Errorf("member verdict = %v", got)
	}
	if got := lang.Contains(bad, 64); got != language.No {
		t.Errorf("non-member verdict = %v", got)
	}
	// Finite words are definite non-members of an ω-language.
	fin := word.MustFinite(word.TimedSym{Sym: "a", At: 1})
	if got := lang.Contains(fin, 64); got != language.No {
		t.Errorf("finite word verdict = %v", got)
	}
	// Generator words cannot be decided exactly.
	gen := word.Gen{F: func(i uint64) word.TimedSym {
		return word.TimedSym{Sym: "a", At: 1 + 2*timeseq.Time(i)}
	}}
	if got := lang.Contains(gen, 64); got != language.Unknown {
		t.Errorf("generator verdict = %v", got)
	}
}

// The timed-regular language operations compose with the language layer:
// intersection of two TBA languages agrees with the product TBA.
func TestTBALanguageIntersection(t *testing.T) {
	la := maxGapTBA(3).Language("≤3")
	lb := minGapTBA(2).Language("≥2")
	both := language.Intersection(la, lb)
	prodLang := Intersect(maxGapTBA(3), minGapTBA(2)).Language("band")
	for period := timeseq.Time(1); period <= 5; period++ {
		w := word.MustLasso(nil, word.Finite{{Sym: "a", At: 1}}, period)
		if got, want := both.Contains(w, 64), prodLang.Contains(w, 64); got != want {
			t.Errorf("period %d: ∩ combinator %v, product %v", period, got, want)
		}
	}
}
