package timed

import (
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// balancedTPDA accepts timed words a^n b^n where every b arrives within
// `window` chronons of the LAST a — counting needs the stack, timing needs
// the clock: neither a TBA nor an untimed PDA can do both.
func balancedTPDA(window timeseq.Time) *TPDA {
	cs := NewClockSet("x")
	p := NewTPDA([]word.Symbol{"a", "b"}, 2, 0, cs)
	p.AddTrans(TPDATransition{
		From: 0, To: 0, Sym: "a",
		Reset: []int{0}, // x measures time since the last a
		Stack: StackAction{Push: []word.Symbol{"A"}},
	})
	p.AddTrans(TPDATransition{
		From: 0, To: 1, Sym: "b",
		Guard: cs.Le("x", window),
		Stack: StackAction{Pop: "A"},
	})
	p.AddTrans(TPDATransition{
		From: 1, To: 1, Sym: "b",
		Guard: cs.Le("x", window),
		Stack: StackAction{Pop: "A"},
	})
	p.SetAccept(1)
	p.AcceptEmptyStackOnly = true
	return p
}

func tw(s string, times ...timeseq.Time) word.Finite {
	w := make(word.Finite, len(s))
	for i, r := range s {
		w[i] = word.TimedSym{Sym: word.Symbol(string(r)), At: times[i]}
	}
	return w
}

func TestTPDABalancedAndTimed(t *testing.T) {
	p := balancedTPDA(3)
	cases := []struct {
		w    word.Finite
		want bool
		name string
	}{
		{tw("aabb", 0, 1, 2, 3), true, "balanced, in time"},
		{tw("ab", 0, 3), true, "boundary gap"},
		{tw("ab", 0, 4), false, "late b"},
		{tw("aab", 0, 1, 2), false, "unbalanced: leftover a"},
		{tw("abb", 0, 1, 2), false, "unbalanced: extra b"},
		{tw("aabb", 0, 1, 2, 9), false, "second b too late"},
		{tw("ba", 0, 1), false, "wrong order"},
		{tw(""), false, "empty word"},
	}
	for _, c := range cases {
		if got := p.Accepts(c.w); got != c.want {
			t.Errorf("%s (%v): %v, want %v", c.name, c.w, got, c.want)
		}
	}
}

// The timing constraint alone separates words with identical symbols — the
// defining timed property, now with a stack.
func TestTPDATimingSeparation(t *testing.T) {
	p := balancedTPDA(2)
	fast := tw("aabb", 0, 1, 2, 3)
	slow := tw("aabb", 0, 1, 2, 5)
	if !p.Accepts(fast) {
		t.Error("fast word rejected")
	}
	if p.Accepts(slow) {
		t.Error("slow word accepted despite identical symbols")
	}
}

// Counting alone separates words with identical timing.
func TestTPDACountingSeparation(t *testing.T) {
	p := balancedTPDA(10)
	if !p.Accepts(tw("aaabbb", 0, 0, 0, 1, 1, 1)) {
		t.Error("balanced rejected")
	}
	if p.Accepts(tw("aaabb", 0, 0, 0, 1, 1)) {
		t.Error("unbalanced accepted")
	}
}

// Final-state-only acceptance (without the empty-stack requirement).
func TestTPDAFinalStateOnly(t *testing.T) {
	p := balancedTPDA(5)
	p.AcceptEmptyStackOnly = false
	// A prefix of the b-run now suffices to sit in state 1.
	if !p.Accepts(tw("aab", 0, 1, 2)) {
		t.Error("final-state acceptance rejected a partial pop")
	}
}
