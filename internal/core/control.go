package core

// Control is the absorbing-state skeleton shared by every acceptor the
// paper constructs (§4.1, §4.2, §5.1.3): the control is undecided until it
// commits to the accepting state s_f — in which it writes f on the output
// tape at every tick, forever — or the rejecting state s_r, in which the
// output tape is never touched again. "Once in one of the states s_f or
// s_r, the acceptor keeps cycling in the same state."
//
// Embed Control in a Program and call Drive at the end of each Tick; the
// embedding program automatically satisfies Absorbing, so Machine can report
// proven verdicts.
type Control struct {
	state controlState
}

type controlState int

const (
	undecided controlState = iota
	sf
	sr
)

// AcceptForever moves the control to s_f. Further calls to AcceptForever or
// RejectForever are ignored: absorbing states are absorbing.
func (c *Control) AcceptForever() {
	if c.state == undecided {
		c.state = sf
	}
}

// RejectForever moves the control to s_r.
func (c *Control) RejectForever() {
	if c.state == undecided {
		c.state = sr
	}
}

// Absorbed implements Absorbing.
func (c *Control) Absorbed() (accepting, absorbed bool) {
	switch c.state {
	case sf:
		return true, true
	case sr:
		return false, true
	default:
		return false, false
	}
}

// Decided reports whether the control has committed.
func (c *Control) Decided() bool { return c.state != undecided }

// Drive performs the per-tick output duty of the absorbing states: in s_f
// it writes f (at most one symbol per tick, per Definition 3.3); in s_r and
// while undecided it writes nothing.
func (c *Control) Drive(t *Tick) {
	if c.state == sf {
		// Emit can only fail if the program already used its quota this
		// tick, which a well-formed acceptor in s_f never does.
		_ = t.Emit(F)
	}
}
