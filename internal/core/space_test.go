package core

import (
	"strings"
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// meteredEcho buffers every arrived symbol forever — linear footprint.
type meteredEcho struct {
	buf []word.Symbol
}

func (m *meteredEcho) Tick(t *Tick) {
	for _, e := range t.New {
		m.buf = append(m.buf, e.Sym)
	}
	_ = t.Emit(F)
}

func (m *meteredEcho) SpaceUsed() uint64 { return uint64(len(m.buf)) }

func TestSpaceMetering(t *testing.T) {
	m := NewMachine(&meteredEcho{}, word.RepeatClassical("x", 1))
	res, used, within := RunWithSpaceBound(m, 20, LinearSpace(1, 2))
	if !within {
		t.Errorf("linear bound violated at %d", used)
	}
	if used != 20 {
		t.Errorf("peak = %d, want 20", used)
	}
	if m.MaxSpace() != used {
		t.Errorf("MaxSpace = %d", m.MaxSpace())
	}
	if res.Verdict != AcceptAtHorizon {
		t.Errorf("verdict = %v", res.Verdict)
	}

	m2 := NewMachine(&meteredEcho{}, word.RepeatClassical("x", 1))
	_, _, within = RunWithSpaceBound(m2, 20, ConstSpace(5))
	if within {
		t.Error("constant bound not violated by a linear program")
	}
}

func TestSpaceBoundEarlyAbsorption(t *testing.T) {
	// A program that absorbs immediately stops the bounded run with a
	// proven verdict.
	g := &gWatcher{}
	m := NewMachine(g, word.MustLasso(word.Finite{ts("g", 1)}, word.Finite{ts("w", 2)}, 1))
	res, _, _ := RunWithSpaceBound(m, 100, ConstSpace(1))
	if res.Verdict != AcceptProven || res.DecidedAt != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBoundHelpers(t *testing.T) {
	if ConstSpace(7)(timeseq.Time(99)) != 7 {
		t.Error("ConstSpace broken")
	}
	if LinearSpace(3, 4)(timeseq.Time(5)) != 19 {
		t.Error("LinearSpace broken")
	}
}

func TestStringRenderings(t *testing.T) {
	for v, want := range map[Verdict]string{
		AcceptProven:    "accept (proven)",
		RejectProven:    "reject (proven)",
		AcceptAtHorizon: "accept (at horizon)",
		RejectAtHorizon: "reject (at horizon)",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q", v, v.String())
		}
	}
	r := Result{Verdict: AcceptProven, Horizon: 9, FCount: 3}
	if s := r.String(); !strings.Contains(s, "accept (proven)") || !strings.Contains(s, "9") {
		t.Errorf("Result.String() = %q", s)
	}
}
