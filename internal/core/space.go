package core

import "rtc/internal/timeseq"

// Definition 3.3 gives a real-time algorithm access to an infinite amount
// of working storage of which any single computation uses a finite amount,
// "with the same meaning as in classical complexity theory": the space used
// during the computation, not counting the input and output tapes. The
// machinery below meters that usage, the prerequisite for the rt-SPACE
// classes sketched in §3.2.

// SpaceMetered is an optional Program extension: SpaceUsed reports the
// current working-storage footprint in cells (the program's own accounting
// unit — e.g. buffered symbols, unary counter cells).
type SpaceMetered interface {
	SpaceUsed() uint64
}

// MaxSpace returns the peak working storage observed so far (0 when the
// program is not metered).
func (m *Machine) MaxSpace() uint64 { return m.maxSpace }

// noteSpace records the footprint after a tick.
func (m *Machine) noteSpace() {
	if sm, ok := m.prog.(SpaceMetered); ok {
		if s := sm.SpaceUsed(); s > m.maxSpace {
			m.maxSpace = s
		}
	}
}

// SpaceBound is a bound f(t) on working storage as a function of elapsed
// time — the natural parameterization for ω-computations, where input
// length is unbounded.
type SpaceBound func(t timeseq.Time) uint64

// ConstSpace is the O(1) bound of rt-CONSTSPACE.
func ConstSpace(c uint64) SpaceBound {
	return func(timeseq.Time) uint64 { return c }
}

// LinearSpace is the O(t) bound.
func LinearSpace(a, b uint64) SpaceBound {
	return func(t timeseq.Time) uint64 { return a*uint64(t) + b }
}

// RunWithSpaceBound runs the machine for horizon ticks, failing fast when
// the program's metered footprint exceeds bound at any tick. It returns the
// verdict result, the peak space, and whether the bound held throughout.
func RunWithSpaceBound(m *Machine, horizon uint64, bound SpaceBound) (Result, uint64, bool) {
	abs, _ := m.prog.(Absorbing)
	within := true
	for i := uint64(0); i < horizon; i++ {
		m.StepTick()
		m.noteSpace()
		if sm, ok := m.prog.(SpaceMetered); ok {
			if sm.SpaceUsed() > bound(m.now) {
				within = false
			}
		}
		if abs != nil {
			if acc, done := abs.Absorbed(); done {
				v := RejectProven
				if acc {
					v = AcceptProven
				}
				return Result{Verdict: v, Horizon: m.now, FCount: m.fCount, DecidedAt: m.now}, m.maxSpace, within
			}
		}
	}
	window := timeseq.Time(horizon / 4)
	v := RejectAtHorizon
	if m.fCount > 0 && m.lastF+window >= m.now {
		v = AcceptAtHorizon
	}
	return Result{Verdict: v, Horizon: m.now, FCount: m.fCount}, m.maxSpace, within
}
