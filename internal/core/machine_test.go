package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func ts(sym string, at timeseq.Time) word.TimedSym {
	return word.TimedSym{Sym: word.Symbol(sym), At: at}
}

// recorder keeps everything delivered to it, with arrival ticks.
type recorder struct {
	got  []word.TimedSym
	tick []timeseq.Time
}

func (r *recorder) Tick(t *Tick) {
	for _, e := range t.New {
		r.got = append(r.got, e)
		r.tick = append(r.tick, t.Now)
	}
}

// Definition 3.3: a symbol with timestamp τ is not available before τ.
func TestInputAvailability(t *testing.T) {
	in := word.MustFinite(ts("a", 0), ts("b", 0), ts("c", 2), ts("d", 5))
	r := &recorder{}
	m := NewMachine(r, in)
	m.RunTicks(7)
	if len(r.got) != 4 {
		t.Fatalf("delivered %d symbols", len(r.got))
	}
	for i, e := range r.got {
		if r.tick[i] != e.At {
			t.Errorf("symbol %s delivered at tick %d, timestamped %d", e.Sym, r.tick[i], e.At)
		}
	}
	// Same-timestamp symbols arrive in input order within one tick.
	if r.got[0].Sym != "a" || r.got[1].Sym != "b" {
		t.Errorf("order broken: %v", r.got)
	}
}

// emitter tries to write n symbols every tick.
type emitter struct {
	n    int
	errs []error
}

func (e *emitter) Tick(t *Tick) {
	for i := 0; i < e.n; i++ {
		e.errs = append(e.errs, t.Emit("x"))
	}
}

// Definition 3.3: at most one output symbol per time unit.
func TestOutputQuota(t *testing.T) {
	e := &emitter{n: 3}
	m := NewMachine(e, word.Finite{})
	m.RunTicks(2)
	if got := len(m.Output()); got != 2 {
		t.Fatalf("output length = %d, want 2 (one per tick)", got)
	}
	wantErr := []bool{false, true, true, false, true, true}
	for i, err := range e.errs {
		if (err != nil) != wantErr[i] {
			t.Errorf("emit %d: err=%v", i, err)
		}
		if err != nil && !errors.Is(err, ErrOutputQuota) {
			t.Errorf("emit %d: wrong error %v", i, err)
		}
	}
	// Output timestamps follow the clock.
	out := m.Output()
	if out[0].At != 0 || out[1].At != 1 {
		t.Errorf("output times = %v", out)
	}
}

// gWatcher accepts iff the input contains the symbol g: on seeing it the
// control enters s_f (writes f forever); it never rejects on its own.
type gWatcher struct {
	Control
}

func (g *gWatcher) Tick(t *Tick) {
	for _, e := range t.New {
		if e.Sym == "g" {
			g.AcceptForever()
		}
	}
	g.Drive(t)
}

func TestAcceptProvenViaControl(t *testing.T) {
	in := word.MustLasso(word.Finite{ts("g", 3)}, word.Finite{ts("w", 4)}, 1)
	g := &gWatcher{}
	m := NewMachine(g, in)
	res := RunForVerdict(m, 100)
	if res.Verdict != AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.DecidedAt != 3 {
		t.Errorf("DecidedAt = %d, want 3", res.DecidedAt)
	}
	if !res.Verdict.Accepted() || !res.Verdict.Proven() {
		t.Error("verdict predicates broken")
	}
}

func TestRejectAtHorizonWithoutG(t *testing.T) {
	in := word.RepeatClassical("w", 1)
	g := &gWatcher{}
	m := NewMachine(g, in)
	res := RunForVerdict(m, 50)
	if res.Verdict != RejectAtHorizon {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.FCount != 0 {
		t.Errorf("FCount = %d", res.FCount)
	}
}

// rejector enters s_r on symbol r.
type rejector struct{ Control }

func (r *rejector) Tick(t *Tick) {
	for _, e := range t.New {
		if e.Sym == "r" {
			r.RejectForever()
		}
	}
	r.Drive(t)
}

func TestRejectProven(t *testing.T) {
	in := word.MustLasso(word.Finite{ts("r", 2)}, word.Finite{ts("w", 3)}, 1)
	m := NewMachine(&rejector{}, in)
	res := RunForVerdict(m, 100)
	if res.Verdict != RejectProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Verdict.Accepted() || !res.Verdict.Proven() {
		t.Error("verdict predicates broken")
	}
}

// periodicF writes f every period ticks without ever absorbing — the
// periodic-computation shape discussed under Definition 3.4, where each f
// signals one successfully served instance.
type periodicF struct {
	period timeseq.Time
}

func (p *periodicF) Tick(t *Tick) {
	if t.Now%p.period == 0 {
		_ = t.Emit(F)
	}
}

func TestAcceptAtHorizonForPeriodicF(t *testing.T) {
	m := NewMachine(&periodicF{period: 5}, word.RepeatClassical("w", 1))
	res := RunForVerdict(m, 200)
	if res.Verdict != AcceptAtHorizon {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.FCount != 40 {
		t.Errorf("FCount = %d, want 40", res.FCount)
	}
}

// A program that writes f only early looks rejecting at a long horizon: the
// recurrence died out.
type earlyF struct{}

func (earlyF) Tick(t *Tick) {
	if t.Now < 3 {
		_ = t.Emit(F)
	}
}

func TestFinitelyManyFsRejectAtHorizon(t *testing.T) {
	m := NewMachine(earlyF{}, word.RepeatClassical("w", 1))
	res := RunForVerdict(m, 400)
	if res.Verdict != RejectAtHorizon {
		t.Fatalf("verdict = %v (f stopped recurring)", res.Verdict)
	}
	if res.FCount != 3 {
		t.Errorf("FCount = %d", res.FCount)
	}
}

func TestControlAbsorbingIsSticky(t *testing.T) {
	var c Control
	if c.Decided() {
		t.Fatal("fresh control decided")
	}
	c.AcceptForever()
	c.RejectForever() // must be ignored
	acc, done := c.Absorbed()
	if !done || !acc {
		t.Fatalf("Absorbed = (%v,%v)", acc, done)
	}
}

func TestMachineClockAndFCount(t *testing.T) {
	m := NewMachine(&periodicF{period: 2}, word.RepeatClassical("w", 1))
	m.RunTicks(5) // ticks at t = 0,1,2,3,4; f at 0, 2, 4
	if m.Now() != 4 {
		t.Errorf("Now = %d, want 4", m.Now())
	}
	if m.FCount() != 3 {
		t.Errorf("FCount = %d, want 3", m.FCount())
	}
	if m.LastF() != 4 {
		t.Errorf("LastF = %d, want 4", m.LastF())
	}
}

// Property (Definition 3.3): no input element is ever delivered before its
// timestamp, none is lost, and same-instant elements preserve input order —
// over random monotone words.
func TestInputAvailabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		w := make(word.Finite, 0, n)
		at := timeseq.Time(0)
		for i := 0; i < n; i++ {
			at += timeseq.Time(rng.Intn(3))
			w = append(w, word.TimedSym{Sym: word.Symbol(fmt.Sprintf("s%d", i)), At: at})
		}
		r := &recorder{}
		m := NewMachine(r, w)
		m.RunTicks(uint64(at) + 2)
		if len(r.got) != n {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(r.got), n)
		}
		for i, e := range r.got {
			if r.tick[i] != e.At {
				t.Fatalf("trial %d: %v delivered at %d", trial, e, r.tick[i])
			}
			if e != w[i] {
				t.Fatalf("trial %d: order broken at %d: %v vs %v", trial, i, e, w[i])
			}
		}
	}
}
