// Package core implements the paper's central contribution: the real-time
// algorithm of Definition 3.3 and its acceptance condition (Definition 3.4).
//
// A real-time algorithm consists of a finite control (a program), an input
// tape holding a timed ω-word, and a write-only output tape. The semantics
// enforced by Machine are exactly the definition's:
//
//   - an input element (σ_i, τ_i) is not available to the program at any
//     time t < τ_i;
//   - during any time unit the program may add at most one symbol to the
//     output tape;
//   - the output tape is write-only — the program never reads it back;
//   - the program has unbounded working storage (its own Go state), of
//     which any single computation uses a finite amount.
//
// Acceptance (Definition 3.4): the input is accepted iff the designated
// symbol F appears infinitely often on the output tape. Machine reports
// proven verdicts when the program declares it has entered one of the
// absorbing states s_f / s_r of the paper's acceptor constructions, and
// horizon-bounded verdicts otherwise — the strongest statement a finite
// observer of an ω-computation can make.
package core

import (
	"errors"
	"fmt"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// F is the designated output symbol of Definition 3.4.
const F = word.Symbol("f")

// Tick is the per-chronon context handed to a program. It exposes the
// current time, the input elements that became available at this instant,
// and the (write-only) output port.
type Tick struct {
	// Now is the current time.
	Now timeseq.Time
	// New holds the input elements whose timestamp equals Now, in input
	// order. Elements with earlier timestamps were delivered on earlier
	// ticks; the program is responsible for buffering what it has not yet
	// processed (that buffer is part of its working storage).
	New word.Finite

	emitted bool
	machine *Machine
}

// ErrOutputQuota reports a second Emit within one time unit, which
// Definition 3.3 forbids.
var ErrOutputQuota = errors.New("core: at most one output symbol per time unit")

// Emit appends one symbol to the output tape at the current time. A second
// call within the same tick returns ErrOutputQuota and writes nothing.
func (t *Tick) Emit(s word.Symbol) error {
	if t.emitted {
		return ErrOutputQuota
	}
	t.emitted = true
	t.machine.output = append(t.machine.output, word.TimedSym{Sym: s, At: t.Now})
	if s == F {
		t.machine.fCount++
		t.machine.lastF = t.Now
	}
	return nil
}

// Program is the finite control of a real-time algorithm. Tick is called
// once per chronon, in increasing time order.
type Program interface {
	Tick(t *Tick)
}

// Absorbing is an optional Program extension matching the acceptor shape
// used throughout §4 and §5: once the control reaches one of the designated
// absorbing states (s_f, in which it writes f at every tick forever, or s_r,
// in which it never writes f again), the ω-behaviour is decided and the
// machine can report a proven verdict.
type Absorbing interface {
	// Absorbed returns (accepting, true) once the control sits in s_f or
	// s_r forever; (false, false) while still undecided.
	Absorbed() (accepting bool, absorbed bool)
}

// Verdict classifies the outcome of observing a run.
type Verdict int

const (
	// RejectAtHorizon: no evidence of recurrence of F within the horizon.
	RejectAtHorizon Verdict = iota
	// AcceptAtHorizon: F kept recurring up to the horizon, but the program
	// did not prove absorption.
	AcceptAtHorizon
	// RejectProven: the program entered the rejecting absorbing state.
	RejectProven
	// AcceptProven: the program entered the accepting absorbing state, in
	// which F recurs forever.
	AcceptProven
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case AcceptProven:
		return "accept (proven)"
	case RejectProven:
		return "reject (proven)"
	case AcceptAtHorizon:
		return "accept (at horizon)"
	default:
		return "reject (at horizon)"
	}
}

// Accepted reports whether the verdict is an accept.
func (v Verdict) Accepted() bool { return v == AcceptProven || v == AcceptAtHorizon }

// Proven reports whether the verdict is exact rather than horizon-bounded.
func (v Verdict) Proven() bool { return v == AcceptProven || v == RejectProven }

// Machine executes a Program over a timed input word under discrete time.
type Machine struct {
	prog  Program
	input word.Word

	now      timeseq.Time
	started  bool
	inputIdx uint64
	inputLen word.Length

	output   word.Finite
	fCount   uint64
	lastF    timeseq.Time
	maxSpace uint64
}

// NewMachine pairs a program with its input tape.
func NewMachine(prog Program, input word.Word) *Machine {
	return &Machine{prog: prog, input: input, inputLen: input.Length()}
}

// Now returns the machine's clock (the time of the last executed tick).
func (m *Machine) Now() timeseq.Time { return m.now }

// Output returns the output tape written so far. The returned slice is the
// live tape; callers must not modify it (the tape is write-only even for
// them).
func (m *Machine) Output() word.Finite { return m.output }

// FCount returns the number of F symbols written so far.
func (m *Machine) FCount() uint64 { return m.fCount }

// LastF returns the time of the most recent F output (zero if none).
func (m *Machine) LastF() timeseq.Time { return m.lastF }

// StepTick advances virtual time by one chronon and runs the program once.
func (m *Machine) StepTick() {
	if m.started {
		m.now++
	} else {
		m.started = true // first tick runs at time 0
	}
	tick := Tick{Now: m.now, machine: m}
	// Deliver the input elements arriving exactly now. The input's time
	// projection is monotone, so a single cursor suffices.
	for {
		if !m.inputLen.Omega && m.inputIdx >= m.inputLen.N {
			break
		}
		e := m.input.At(m.inputIdx)
		if e.At > m.now {
			break
		}
		if e.At == m.now {
			tick.New = append(tick.New, e)
		}
		// Elements with e.At < now on the first tick(s) cannot occur for
		// valid inputs starting at time 0; consume them defensively so the
		// machine never stalls.
		m.inputIdx++
	}
	m.prog.Tick(&tick)
	m.noteSpace()
}

// RunTicks executes n ticks (chronons).
func (m *Machine) RunTicks(n uint64) {
	for i := uint64(0); i < n; i++ {
		m.StepTick()
	}
}

// Result summarizes an observed run.
type Result struct {
	Verdict Verdict
	// Horizon is the last tick executed.
	Horizon timeseq.Time
	// FCount is the number of F outputs within the horizon.
	FCount uint64
	// DecidedAt is the tick at which absorption was proven (valid only for
	// proven verdicts).
	DecidedAt timeseq.Time
}

// RunForVerdict runs the machine for up to horizon ticks and classifies the
// outcome. If the program proves absorption (Absorbing), the verdict is
// exact and the run stops early. Otherwise the verdict is horizon-bounded:
// accept if an F was written within the trailing window (defaulting to the
// last quarter of the horizon), i.e. F still looked recurrent when
// observation stopped.
func RunForVerdict(m *Machine, horizon uint64) Result {
	abs, _ := m.prog.(Absorbing)
	for i := uint64(0); i < horizon; i++ {
		m.StepTick()
		if abs != nil {
			if acc, done := abs.Absorbed(); done {
				v := RejectProven
				if acc {
					v = AcceptProven
				}
				return Result{Verdict: v, Horizon: m.now, FCount: m.fCount, DecidedAt: m.now}
			}
		}
	}
	window := timeseq.Time(horizon / 4)
	v := RejectAtHorizon
	if m.fCount > 0 && m.lastF+window >= m.now {
		v = AcceptAtHorizon
	}
	return Result{Verdict: v, Horizon: m.now, FCount: m.fCount}
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s after %d ticks (%d f's)", r.Verdict, r.Horizon, r.FCount)
}
