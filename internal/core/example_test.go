package core_test

import (
	"fmt"

	"rtc/internal/core"
	"rtc/internal/word"
)

// sawStart is a minimal acceptor: it commits to the accepting absorbing
// state s_f when the symbol "start" arrives, after which it writes f on the
// output tape forever (Definition 3.4's acceptance).
type sawStart struct{ core.Control }

func (p *sawStart) Tick(t *core.Tick) {
	for _, e := range t.New {
		if e.Sym == "start" {
			p.AcceptForever()
		}
	}
	p.Drive(t)
}

func ExampleRunForVerdict() {
	input := word.Concat(
		word.MustFinite(word.TimedSym{Sym: "start", At: 2}),
		word.RepeatClassical("idle", 1),
	)
	m := core.NewMachine(&sawStart{}, input)
	res := core.RunForVerdict(m, 50)
	fmt.Println(res.Verdict, "at tick", res.DecidedAt)
	// Output: accept (proven) at tick 2
}
