package rtwire

import (
	"bytes"
	"reflect"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// FuzzFrameDecode throws hostile byte images at the frame decoder:
// malformed length prefixes, truncated frames, flipped bits, kind swaps.
// The decoder must classify, never panic, never over-allocate, and a
// successful decode must re-encode to exactly the consumed bytes.
func FuzzFrameDecode(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(m.(encoder).Encode())
	}
	// Malformed length prefixes and truncations.
	valid := Sample{ID: 1, Image: "temp", Value: "21"}.Encode()
	huge := append([]byte{}, valid...)
	huge[3], huge[4], huge[5], huge[6] = 0xFF, 0xFF, 0xFF, 0x7F
	f.Add(huge)
	f.Add(valid[:HeaderSize])
	f.Add(valid[:HeaderSize-2])
	f.Add([]byte{Magic, Version})
	f.Add(append(append([]byte{}, valid...), valid[:9]...)) // frame + torn frame

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		re := AppendFrame(nil, fr.Kind, fr.Payload)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
		}
		// Message-level decode on a CRC-valid frame must classify, not
		// panic, and a successful decode must re-encode byte-identically.
		msg, err := Decode(fr)
		if err != nil {
			return
		}
		if enc, ok := msg.(encoder); ok {
			if !bytes.Equal(enc.Encode(), b[:n]) {
				t.Fatalf("message re-encode mismatch for %T", msg)
			}
		}
	})
}

// FuzzRequestRoundTrip drives the request messages (sample, query, as-of)
// through encode → frame decode → message decode and requires exact
// structural equality — the protocol must be injective on its domain.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), "status_q", "ok", uint8(1), uint64(40), uint64(0), uint64(1), uint8(1), uint64(10), uint64(0))
	f.Add(uint64(2), "temp_q", "", uint8(2), uint64(0), uint64(5), uint64(2), uint8(2), uint64(8), uint64(4))
	f.Add(uint64(3), "q$@#%", "v%@$#", uint8(0), ^uint64(0), ^uint64(0), uint64(0), uint8(0), uint64(0), uint64(0))

	f.Fuzz(func(t *testing.T, id uint64, name, candidate string, kind uint8,
		dead, elapsed, minUseful uint64, decayID uint8, decayMax, span uint64) {
		if kind > uint8(deadline.Soft) {
			kind %= 3
		}
		if decayID > uint8(DecayLinear) {
			decayID %= 3
		}
		q := Query{
			ID: id, Query: name, Candidate: candidate,
			Kind:     deadline.Kind(kind),
			Deadline: timeseq.Time(dead), Elapsed: timeseq.Time(elapsed),
			MinUseful: minUseful,
			Decay:     Decay{ID: DecayID(decayID), Max: decayMax, Span: timeseq.Time(span)},
		}
		roundTrip(t, q)
		roundTrip(t, Sample{ID: id, Image: name, Value: candidate})
		roundTrip(t, AsOf{ID: id, Image: name, At: timeseq.Time(dead)})
		// The v3 subscription request surface rides the same envelope.
		so := SubOpen{
			ID: id, Query: name, Period: timeseq.Time(span) + 1,
			Kind:     deadline.Kind(kind),
			Deadline: timeseq.Time(dead), Elapsed: timeseq.Time(elapsed),
			MinUseful: minUseful,
			Decay:     Decay{ID: DecayID(decayID), Max: decayMax, Span: timeseq.Time(span)},
			Depth:     minUseful,
		}
		roundTrip(t, so)
		roundTrip(t, SubResume{
			ID: so.ID, Query: so.Query, Period: so.Period,
			Kind: so.Kind, Deadline: so.Deadline, Elapsed: so.Elapsed,
			MinUseful: so.MinUseful, Decay: so.Decay, Depth: so.Depth,
			AfterCursor: dead,
		})
		roundTrip(t, Push{
			ID: id, Cursor: dead, Dropped: elapsed, Expired: minUseful,
			Useful: decayMax, Missed: kind == 1, Evaluated: kind != 0,
			Degraded: decayID == 1,
			Issue:    timeseq.Time(elapsed), Served: timeseq.Time(dead),
			Answers: answersFor(name, candidate),
		})
	})
}

// answersFor keeps the fuzzed Push answers structurally canonical: Decode
// returns nil (not an empty slice) when no answer fields follow, so the
// round trip only includes Answers when there is at least one.
func answersFor(a, b string) []string {
	if b == "" {
		return nil
	}
	return []string{a, b}
}

func roundTrip(t *testing.T, msg any) {
	t.Helper()
	frame := msg.(encoder).Encode()
	fr, n, err := DecodeFrame(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("%T: decode: n=%d err=%v", msg, n, err)
	}
	got, err := Decode(fr)
	if err != nil {
		t.Fatalf("%T: %v", msg, err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("%T round trip:\n got %+v\nwant %+v", msg, got, msg)
	}
}
