// Package rtwire is the wire protocol of the rtdbd serving subsystem: a
// length-prefixed, CRC32C-framed binary protocol carrying timed samples,
// aperiodic queries under the §4.1 deadline discipline, temporal as-of
// reads, and metrics snapshots between a client and an rtdbd server.
//
// Each connection is one timed word: the client's frames are its timed
// input events, arriving in FIFO order at the server's acceptor, exactly
// like the merged words the paper's machine consumes. Frame payloads reuse
// the enc(·) record idiom of internal/encoding — the byte rendering of the
// $f1@f2@…@fk$ symbol encoding, delimiters outside every payload (§5.1.1) —
// so the escaping discipline that keeps recognition words parseable keeps
// wire frames parseable. Framing adds what a network needs and a tape does
// not: a magic byte, an explicit protocol version, a frame kind, a payload
// length, and a Castagnoli CRC.
//
// Deadlines travel with the query and are client-relative: the wire carries
// the relative deadline plus the chronons the client has already consumed
// (queueing, retries); the server anchors the remainder at the arrival
// chronon. Keeping client-relative and server-absolute time straight this
// way follows the time-modeling survey's advice (PAPERS.md) and makes
// "expired on arrival" a property the server can decide without any clock
// agreement.
package rtwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rtc/internal/encoding"
	"rtc/internal/word"
)

const (
	// Magic is the first byte of every frame; a misdialed port fails fast.
	Magic byte = 'R'
	// Version is the protocol version carried in every frame header. The
	// golden wire-format tests pin the byte layout of every frame kind to
	// this number: changing an encoding without bumping Version fails the
	// suite, so protocol breaks are deliberate.
	//
	// Version 2 added the replication frames (Subscribe, WalBatch, WalAck,
	// Heartbeat, PromoteInfo) and the fencing epoch + role in Welcome.
	Version byte = 2
	// HeaderSize is the fixed frame overhead:
	// | magic 1 | version 1 | kind 1 | len u32 LE | crc32c u32 LE |.
	HeaderSize = 11
	// MaxPayload bounds one frame; longer lengths indicate a corrupt or
	// hostile length prefix and are rejected before any allocation.
	MaxPayload = 1 << 20
)

// Kind tags one frame.
type Kind uint8

const (
	// KindHello opens a connection (client → server).
	KindHello Kind = iota + 1
	// KindWelcome acknowledges a Hello with the session id and the server
	// chronon at accept (server → client).
	KindWelcome
	// KindSample injects one timed sensor sample (client → server). It is
	// fire-and-forget; a full session queue comes back as a KindErr frame
	// with CodeBackpressure.
	KindSample
	// KindQuery issues one aperiodic query with its deadline envelope
	// (client → server).
	KindQuery
	// KindResult answers a KindQuery (server → client).
	KindResult
	// KindAsOf issues a temporal read against the published history
	// (client → server).
	KindAsOf
	// KindAsOfResult answers a KindAsOf (server → client).
	KindAsOfResult
	// KindMetricsReq requests a metrics snapshot (client → server).
	KindMetricsReq
	// KindMetrics answers a KindMetricsReq with name/value pairs
	// (server → client).
	KindMetrics
	// KindFlush asks the server to apply everything this connection
	// submitted before it (client → server).
	KindFlush
	// KindFlushed answers a KindFlush (server → client).
	KindFlushed
	// KindErr reports a per-request error (server → client).
	KindErr
	// KindBye announces an orderly close (either direction).
	KindBye
	// KindSubscribe switches a connection into WAL-follower mode: the
	// server streams every log event after AfterSeq (follower → primary).
	KindSubscribe
	// KindWalBatch carries a contiguous run of WAL events (primary →
	// follower), or one chunk of a full-state resync when the requested
	// sequence has been compacted away.
	KindWalBatch
	// KindWalAck acknowledges application of events through Seq
	// (follower → primary); it opens the primary's send window.
	KindWalAck
	// KindHeartbeat is the liveness beacon: sent on idle replication links
	// and idle client connections, echoed by the server, so a silently dead
	// peer is detected within HeartbeatInterval×3 instead of a call timeout.
	KindHeartbeat
	// KindPromoteInfo announces a promotion (standby → its read clients):
	// the sender is now primary at Epoch, with its log at Seq.
	KindPromoteInfo
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindWelcome: "welcome",
	KindSample: "sample", KindQuery: "query", KindResult: "result",
	KindAsOf: "asof", KindAsOfResult: "asof_result",
	KindMetricsReq: "metrics_req", KindMetrics: "metrics",
	KindFlush: "flush", KindFlushed: "flushed",
	KindErr: "err", KindBye: "bye",
	KindSubscribe: "subscribe", KindWalBatch: "wal_batch", KindWalAck: "wal_ack",
	KindHeartbeat: "heartbeat", KindPromoteInfo: "promote_info",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Decode errors. ReadFrame and DecodeFrame never panic on hostile input;
// they classify the damage instead.
var (
	ErrBadMagic  = errors.New("rtwire: bad magic byte")
	ErrVersion   = errors.New("rtwire: protocol version mismatch")
	ErrBadKind   = errors.New("rtwire: unknown frame kind")
	ErrTooLong   = errors.New("rtwire: frame length exceeds MaxPayload")
	ErrChecksum  = errors.New("rtwire: frame checksum mismatch")
	ErrTruncated = errors.New("rtwire: truncated frame")
	// ErrBadPayload reports a CRC-valid frame whose payload does not parse
	// as the record encoding its kind requires.
	ErrBadPayload = errors.New("rtwire: malformed frame payload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers the version and kind bytes as well as the payload, so a
// frame cannot be replayed as a different kind or protocol version.
func checksum(kind Kind, payload []byte) uint32 {
	sum := crc32.Checksum([]byte{Version, byte(kind)}, crcTable)
	return crc32.Update(sum, crcTable, payload)
}

// Frame is one decoded frame.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// AppendFrame appends the framed payload to dst.
func AppendFrame(dst []byte, kind Kind, payload []byte) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[7:11], checksum(kind, payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeFields frames a record of fields: payload = bytes of $f1@f2@…$.
func EncodeFields(kind Kind, fields ...string) []byte {
	return AppendFrame(nil, kind, []byte(encoding.String(encoding.Record(fields...))))
}

// ReadFrame reads one frame from r. io.EOF signals a clean end between
// frames; mid-frame truncation comes back as ErrTruncated. An I/O error
// with no frame bytes consumed (a read timeout between frames, a closed
// socket) is returned as-is so transports can tell liveness failures from
// protocol damage.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n == 0 {
			return Frame{}, err
		}
		return Frame{}, ErrTruncated
	}
	f, err := decodeHeader(hdr)
	if err != nil {
		return Frame{}, err
	}
	length := binary.LittleEndian.Uint32(hdr[3:7])
	f.Payload = make([]byte, length)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, ErrTruncated
	}
	if checksum(f.Kind, f.Payload) != binary.LittleEndian.Uint32(hdr[7:11]) {
		return Frame{}, ErrChecksum
	}
	return f, nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The fuzzers drive it with hostile
// images: malformed length prefixes and truncated frames must classify,
// never panic or over-allocate.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], b)
	f, err := decodeHeader(hdr)
	if err != nil {
		return Frame{}, 0, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[3:7]))
	if len(b) < HeaderSize+length {
		return Frame{}, 0, ErrTruncated
	}
	f.Payload = b[HeaderSize : HeaderSize+length]
	if checksum(f.Kind, f.Payload) != binary.LittleEndian.Uint32(hdr[7:11]) {
		return Frame{}, 0, ErrChecksum
	}
	return f, HeaderSize + length, nil
}

// decodeHeader validates everything the header alone can prove wrong.
func decodeHeader(hdr [HeaderSize]byte) (Frame, error) {
	if hdr[0] != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[1] != Version {
		return Frame{}, ErrVersion
	}
	kind := Kind(hdr[2])
	if _, ok := kindNames[kind]; !ok {
		return Frame{}, ErrBadKind
	}
	if binary.LittleEndian.Uint32(hdr[3:7]) > MaxPayload {
		return Frame{}, ErrTooLong
	}
	return Frame{Kind: kind}, nil
}

// Fields parses the frame payload back into its record fields. It
// re-tokenizes the byte stream into the symbol alphabet (escape pairs %x
// are one symbol, everything else one byte) and hands the result to the
// shared record parser — the same inversion the WAL codec uses.
func (f Frame) Fields() ([]string, error) {
	syms := make([]word.Symbol, 0, len(f.Payload))
	for i := 0; i < len(f.Payload); i++ {
		if f.Payload[i] == '%' {
			if i+1 >= len(f.Payload) {
				return nil, ErrBadPayload
			}
			syms = append(syms, word.Symbol(f.Payload[i:i+2]))
			i++
			continue
		}
		syms = append(syms, word.Symbol(f.Payload[i:i+1]))
	}
	fields, ok := encoding.ParseRecord(syms)
	if !ok {
		return nil, ErrBadPayload
	}
	return fields, nil
}
