// Package rtwire is the wire protocol of the rtdbd serving subsystem: a
// length-prefixed, CRC32C-framed binary protocol carrying timed samples,
// aperiodic queries under the §4.1 deadline discipline, temporal as-of
// reads, and metrics snapshots between a client and an rtdbd server.
//
// Each connection is one timed word: the client's frames are its timed
// input events, arriving in FIFO order at the server's acceptor, exactly
// like the merged words the paper's machine consumes. Frame payloads reuse
// the enc(·) record idiom of internal/encoding — the byte rendering of the
// $f1@f2@…@fk$ symbol encoding, delimiters outside every payload (§5.1.1) —
// so the escaping discipline that keeps recognition words parseable keeps
// wire frames parseable. Framing adds what a network needs and a tape does
// not: a magic byte, an explicit protocol version, a frame kind, a payload
// length, and a Castagnoli CRC.
//
// Deadlines travel with the query and are client-relative: the wire carries
// the relative deadline plus the chronons the client has already consumed
// (queueing, retries); the server anchors the remainder at the arrival
// chronon. Keeping client-relative and server-absolute time straight this
// way follows the time-modeling survey's advice (PAPERS.md) and makes
// "expired on arrival" a property the server can decide without any clock
// agreement.
package rtwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"

	"rtc/internal/timeseq"
)

const (
	// Magic is the first byte of every frame; a misdialed port fails fast.
	Magic byte = 'R'
	// Version is the protocol version carried in every frame header. The
	// golden wire-format tests pin the byte layout of every frame kind to
	// this number: changing an encoding without bumping Version fails the
	// suite, so protocol breaks are deliberate.
	//
	// Version 2 added the replication frames (Subscribe, WalBatch, WalAck,
	// Heartbeat, PromoteInfo) and the fencing epoch + role in Welcome.
	//
	// Version 3 added the standing-query subscription frames (SubOpen,
	// SubAck, Push, SubCancel, SubResume). A v2 decoder rejects every v3
	// frame with ErrVersion before looking at the kind byte, and the CRC
	// covers the version byte, so no frame can be replayed across versions.
	//
	// Version 4 added keyspace sharding placement to Welcome: Shards (the
	// deployment's shard count) and Shard (the answering listener's shard
	// index), so a client computes object placement locally with ShardOf
	// and routes each frame straight to the owning shard. A v3 decoder
	// rejects every v4 frame with ErrVersion, and vice versa.
	Version byte = 4
	// HeaderSize is the fixed frame overhead:
	// | magic 1 | version 1 | kind 1 | len u32 LE | crc32c u32 LE |.
	HeaderSize = 11
	// MaxPayload bounds one frame; longer lengths indicate a corrupt or
	// hostile length prefix and are rejected before any allocation.
	MaxPayload = 1 << 20
)

// Kind tags one frame.
type Kind uint8

const (
	// KindHello opens a connection (client → server).
	KindHello Kind = iota + 1
	// KindWelcome acknowledges a Hello with the session id and the server
	// chronon at accept (server → client).
	KindWelcome
	// KindSample injects one timed sensor sample (client → server). It is
	// fire-and-forget; a full session queue comes back as a KindErr frame
	// with CodeBackpressure.
	KindSample
	// KindQuery issues one aperiodic query with its deadline envelope
	// (client → server).
	KindQuery
	// KindResult answers a KindQuery (server → client).
	KindResult
	// KindAsOf issues a temporal read against the published history
	// (client → server).
	KindAsOf
	// KindAsOfResult answers a KindAsOf (server → client).
	KindAsOfResult
	// KindMetricsReq requests a metrics snapshot (client → server).
	KindMetricsReq
	// KindMetrics answers a KindMetricsReq with name/value pairs
	// (server → client).
	KindMetrics
	// KindFlush asks the server to apply everything this connection
	// submitted before it (client → server).
	KindFlush
	// KindFlushed answers a KindFlush (server → client).
	KindFlushed
	// KindErr reports a per-request error (server → client).
	KindErr
	// KindBye announces an orderly close (either direction).
	KindBye
	// KindSubscribe switches a connection into WAL-follower mode: the
	// server streams every log event after AfterSeq (follower → primary).
	KindSubscribe
	// KindWalBatch carries a contiguous run of WAL events (primary →
	// follower), or one chunk of a full-state resync when the requested
	// sequence has been compacted away.
	KindWalBatch
	// KindWalAck acknowledges application of events through Seq
	// (follower → primary); it opens the primary's send window.
	KindWalAck
	// KindHeartbeat is the liveness beacon: sent on idle replication links
	// and idle client connections, echoed by the server, so a silently dead
	// peer is detected within HeartbeatInterval×3 instead of a call timeout.
	KindHeartbeat
	// KindPromoteInfo announces a promotion (standby → its read clients):
	// the sender is now primary at Epoch, with its log at Seq.
	KindPromoteInfo
	// KindSubOpen registers a standing periodic query: the server evaluates
	// it every Period chronons and pushes stamped results (client → server).
	KindSubOpen
	// KindSubAck answers a KindSubOpen/KindSubResume/KindSubCancel with the
	// subscription's admission state and cursor base (server → client).
	KindSubAck
	// KindPush carries one stamped tick result of a standing query, with the
	// monotone per-subscription cursor and the cumulative drop/expiry
	// counters that let the client audit delivery (server → client).
	KindPush
	// KindSubCancel closes a standing query (client → server).
	KindSubCancel
	// KindSubResume re-registers a standing query after a reconnect or
	// failover, continuing the cursor after AfterCursor (client → server).
	KindSubResume
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindWelcome: "welcome",
	KindSample: "sample", KindQuery: "query", KindResult: "result",
	KindAsOf: "asof", KindAsOfResult: "asof_result",
	KindMetricsReq: "metrics_req", KindMetrics: "metrics",
	KindFlush: "flush", KindFlushed: "flushed",
	KindErr: "err", KindBye: "bye",
	KindSubscribe: "subscribe", KindWalBatch: "wal_batch", KindWalAck: "wal_ack",
	KindHeartbeat: "heartbeat", KindPromoteInfo: "promote_info",
	KindSubOpen: "sub_open", KindSubAck: "sub_ack", KindPush: "push",
	KindSubCancel: "sub_cancel", KindSubResume: "sub_resume",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Decode errors. ReadFrame and DecodeFrame never panic on hostile input;
// they classify the damage instead.
var (
	ErrBadMagic  = errors.New("rtwire: bad magic byte")
	ErrVersion   = errors.New("rtwire: protocol version mismatch")
	ErrBadKind   = errors.New("rtwire: unknown frame kind")
	ErrTooLong   = errors.New("rtwire: frame length exceeds MaxPayload")
	ErrChecksum  = errors.New("rtwire: frame checksum mismatch")
	ErrTruncated = errors.New("rtwire: truncated frame")
	// ErrBadPayload reports a CRC-valid frame whose payload does not parse
	// as the record encoding its kind requires.
	ErrBadPayload = errors.New("rtwire: malformed frame payload")
)

// IsProtocolError reports damage to the frame stream itself — a reader
// that sees one must reset the connection, because frame boundaries are
// lost. I/O errors (timeouts, resets, EOF) are not protocol errors.
func IsProtocolError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrBadKind) || errors.Is(err, ErrTooLong) ||
		errors.Is(err, ErrChecksum) || errors.Is(err, ErrTruncated)
}

// IsCorruptFrame reports byte damage inside a delivered frame — flipped
// or desynced bytes that CRC/structure checks caught — as opposed to
// ErrTruncated, which is a connection cut mid-frame, not damage.
func IsCorruptFrame(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrBadKind) || errors.Is(err, ErrTooLong) ||
		errors.Is(err, ErrChecksum)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum covers the version and kind bytes as well as the payload, so a
// frame cannot be replayed as a different kind or protocol version.
func checksum(kind Kind, payload []byte) uint32 {
	sum := crc32.Checksum([]byte{Version, byte(kind)}, crcTable)
	return crc32.Update(sum, crcTable, payload)
}

// Frame is one decoded frame.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// AppendFrame appends the framed payload to dst.
func AppendFrame(dst []byte, kind Kind, payload []byte) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[7:11], checksum(kind, payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendEscaped appends s with the record escaping discipline of
// internal/encoding.Str: the delimiter bytes '$', '@', '#', '%' become
// %-pairs, everything else passes through. Byte-for-byte identical to
// rendering encoding.Str(s), without the per-byte symbol allocations.
func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '$', '@', '#', '%':
			dst = append(dst, '%', b)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}

// frameBuilder assembles one record-payload frame in place: the header is
// reserved up front, fields append directly into the destination buffer
// (numbers via strconv, never through intermediate strings), and finish
// patches the length and CRC. The byte output is identical to
// AppendFrame(dst, kind, render(encoding.Record(fields...))) — the golden
// wire-format fixtures hold across the two encoders.
type frameBuilder struct {
	buf   []byte
	start int
	kind  Kind
	n     int
}

// beginFrame starts a frame of the given kind appended to dst.
func beginFrame(dst []byte, kind Kind) frameBuilder {
	start := len(dst)
	var hdr [HeaderSize]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, '$')
	return frameBuilder{buf: dst, start: start, kind: kind}
}

func (b *frameBuilder) sep() {
	if b.n > 0 {
		b.buf = append(b.buf, '@')
	}
	b.n++
}

// str appends one string field, escaped.
func (b *frameBuilder) str(f string) {
	b.sep()
	b.buf = appendEscaped(b.buf, f)
}

// uint appends one numeric field. Decimal digits never need escaping.
func (b *frameBuilder) uint(v uint64) {
	b.sep()
	b.buf = strconv.AppendUint(b.buf, v, 10)
}

// time appends one chronon field.
func (b *frameBuilder) time(v timeseq.Time) { b.uint(uint64(v)) }

// boolf appends one boolean field as "0"/"1".
func (b *frameBuilder) boolf(v bool) {
	b.sep()
	if v {
		b.buf = append(b.buf, '1')
	} else {
		b.buf = append(b.buf, '0')
	}
}

// finish closes the record and fills in the reserved header.
func (b *frameBuilder) finish() []byte {
	b.buf = append(b.buf, '$')
	hdr := b.buf[b.start:]
	payload := b.buf[b.start+HeaderSize:]
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = byte(b.kind)
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[7:11], checksum(b.kind, payload))
	return b.buf
}

// EncodeFields frames a record of fields: payload = bytes of $f1@f2@…$.
func EncodeFields(kind Kind, fields ...string) []byte {
	b := beginFrame(nil, kind)
	for _, f := range fields {
		b.str(f)
	}
	return b.finish()
}

// ReadFrame reads one frame from r. io.EOF signals a clean end between
// frames; mid-frame truncation comes back as ErrTruncated. An I/O error
// with no frame bytes consumed (a read timeout between frames, a closed
// socket) is returned as-is so transports can tell liveness failures from
// protocol damage.
func ReadFrame(r io.Reader) (Frame, error) {
	var buf []byte
	return ReadFrameBuf(r, &buf)
}

// ReadFrameBuf is ReadFrame with a caller-owned payload buffer: *buf is
// grown as needed and the returned Frame's Payload aliases it, valid only
// until the next call. Decoded field strings are copies, so a transport
// can safely reuse one buffer for every frame on a connection — the read
// loop's steady state allocates nothing.
func ReadFrameBuf(r io.Reader, buf *[]byte) (Frame, error) {
	var hdr [HeaderSize]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n == 0 {
			return Frame{}, err
		}
		return Frame{}, ErrTruncated
	}
	f, err := decodeHeader(hdr)
	if err != nil {
		return Frame{}, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[3:7]))
	if cap(*buf) < length {
		*buf = make([]byte, length)
	}
	f.Payload = (*buf)[:length]
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, ErrTruncated
	}
	if checksum(f.Kind, f.Payload) != binary.LittleEndian.Uint32(hdr[7:11]) {
		return Frame{}, ErrChecksum
	}
	return f, nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The fuzzers drive it with hostile
// images: malformed length prefixes and truncated frames must classify,
// never panic or over-allocate.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], b)
	f, err := decodeHeader(hdr)
	if err != nil {
		return Frame{}, 0, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[3:7]))
	if len(b) < HeaderSize+length {
		return Frame{}, 0, ErrTruncated
	}
	f.Payload = b[HeaderSize : HeaderSize+length]
	if checksum(f.Kind, f.Payload) != binary.LittleEndian.Uint32(hdr[7:11]) {
		return Frame{}, 0, ErrChecksum
	}
	return f, HeaderSize + length, nil
}

// decodeHeader validates everything the header alone can prove wrong.
func decodeHeader(hdr [HeaderSize]byte) (Frame, error) {
	if hdr[0] != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[1] != Version {
		return Frame{}, ErrVersion
	}
	kind := Kind(hdr[2])
	if _, ok := kindNames[kind]; !ok {
		return Frame{}, ErrBadKind
	}
	if binary.LittleEndian.Uint32(hdr[3:7]) > MaxPayload {
		return Frame{}, ErrTooLong
	}
	return Frame{Kind: kind}, nil
}

// Fields parses the frame payload back into its record fields: the byte
// rendering of $f1@f2@…$, escape pairs %x decoding to x. It accepts and
// rejects exactly what tokenizing into the symbol alphabet and running the
// shared record parser accepts and rejects — an unescaped delimiter or a
// dangling escape inside the record is ErrBadPayload — but works directly
// on the bytes: one validation pass, then one string per field.
func (f Frame) Fields() ([]string, error) {
	p := f.Payload
	if len(p) < 2 || p[0] != '$' || p[len(p)-1] != '$' {
		return nil, ErrBadPayload
	}
	inner := p[1 : len(p)-1]
	// Validation pass; counts fields so the result is sized exactly.
	nf := 1
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '%':
			if i+1 >= len(inner) {
				return nil, ErrBadPayload
			}
			i++
		case '@':
			nf++
		case '$', '#':
			// An unescaped delimiter or number prefix never appears in a
			// well-formed field (encoding.UnStr rejects both).
			return nil, ErrBadPayload
		}
	}
	fields := make([]string, 0, nf)
	var scratch []byte
	start := 0
	flush := func(end int) {
		seg := inner[start:end]
		start = end + 1
		esc := -1
		for k := 0; k < len(seg); k++ {
			if seg[k] == '%' {
				esc = k
				break
			}
		}
		if esc < 0 {
			fields = append(fields, string(seg))
			return
		}
		scratch = append(scratch[:0], seg[:esc]...)
		for k := esc; k < len(seg); k++ {
			if seg[k] == '%' {
				k++
			}
			scratch = append(scratch, seg[k])
		}
		fields = append(fields, string(scratch))
	}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '%':
			i++
		case '@':
			flush(i)
		}
	}
	flush(len(inner))
	return fields, nil
}
