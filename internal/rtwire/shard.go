package rtwire

// Object→shard routing. The keyspace of a sharded rtdbd deployment is
// partitioned by object name: every image object lives on exactly one
// shard, that shard's WAL is the only durable home of its samples, and a
// client that knows the shard count can compute placement locally and send
// each frame straight to the owning shard — no routing tier, no lookup
// round-trip. The paper's parallel model (Hui & Chikkagoudar, PAPERS.md)
// motivates the shape: the real-time guarantees of §4.1 are preserved per
// parallel lane, so the lanes must be deterministic and stable.
//
// The hash lives in rtwire — the protocol package — because it IS protocol:
// the server's per-shard WAL directories bake placement into disk layout,
// and every client computes the same function. Changing shardMix or the
// reduction is therefore a data-format break on par with re-encoding the
// WAL: it would strand every object's history on the wrong shard. The
// TestShardRouteGolden fixtures pin it byte-for-byte.

// shardSeed is the FNV-1a 64-bit offset basis; shardPrime its prime.
const (
	shardSeed  = 0xcbf29ce484222325
	shardPrime = 0x100000001b3
)

// shardMix is the splitmix64 finalizer: FNV-1a alone clusters short ASCII
// names in the low bits, and ShardOf reduces modulo small n, so the
// avalanche pass is what makes per-shard load uniform (FuzzShardRoute pins
// a uniformity bound as well as determinism).
func shardMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardHash is the stable 64-bit routing hash of an object name. Exposed
// separately from ShardOf so deployments that resize can re-reduce the same
// hash (e.g. consistent-hash layers) without rehashing history.
func ShardHash(name string) uint64 {
	h := uint64(shardSeed)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= shardPrime
	}
	return shardMix(h)
}

// ShardOf maps an object name to its owning shard in [0, shards). It is
// total: shards < 2 always routes to 0, so unsharded deployments need no
// special-casing. Deterministic across processes, platforms, and releases —
// placement is baked into per-shard WAL directories, so this function is
// part of the on-disk format.
func ShardOf(name string, shards int) int {
	if shards < 2 {
		return 0
	}
	return int(ShardHash(name) % uint64(shards))
}
