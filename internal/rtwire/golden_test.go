package rtwire

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-format fixtures")

const goldenFile = "testdata/golden_frames.txt"

// goldenMessages maps a stable fixture name to one deterministic instance
// of each frame type. Every Kind must appear — the test enforces it.
func goldenMessages() []struct {
	name string
	msg  encoder
} {
	return []struct {
		name string
		msg  encoder
	}{
		{"hello", Hello{Client: "client-a"}},
		{"welcome", Welcome{Session: 3, Chronon: 1021, Epoch: 2, Role: RoleStandby, Shards: 1, Shard: 0}},
		{"welcome_sharded", Welcome{Session: 3, Chronon: 1021, Epoch: 2, Role: RolePrimary, Shards: 8, Shard: 5}},
		{"sample", Sample{ID: 7, Image: "temp", Value: "21"}},
		{"sample_escaped", Sample{ID: 7, Image: "te$mp", Value: "2@1%#"}},
		{"query_firm", Query{ID: 8, Query: "status_q", Candidate: "ok", Kind: 1, Deadline: 40, Elapsed: 3, MinUseful: 1}},
		{"query_soft_decay", Query{ID: 9, Query: "temp_q", Kind: 2, Deadline: 40, Elapsed: 0, MinUseful: 2, Decay: Decay{ID: DecayHyperbolic, Max: 10}}},
		{"result", Result{ID: 8, Answers: []string{"ok", "high"}, Match: true, Useful: 2, Evaluated: true, Issue: 11, Served: 13}},
		{"result_expired", Result{ID: 8, Missed: true, Issue: 11, Served: 11, ExpiredOnArrival: true}},
		{"asof", AsOf{ID: 9, Image: "pressure", At: 512}},
		{"asof_result", AsOfResult{ID: 9, OK: true, Value: "99", Horizon: 600}},
		{"metrics_req", MetricsReq{ID: 10}},
		{"metrics", Metrics{ID: 10, Pairs: []MetricPair{{"queries_in", 42}, {"deadline_hit", 40}}}},
		{"flush", Flush{ID: 11}},
		{"flushed", Flushed{ID: 11, Chronon: 700}},
		{"err_backpressure", Err{ID: 12, Code: CodeBackpressure, Msg: "session queue full"}},
		{"bye", Bye{Reason: "drain"}},
		{"subscribe", Subscribe{AfterSeq: 41, Follower: "replica-1"}},
		{"wal_batch_live", WalBatch{Epoch: 2, FirstSeq: 42, Events: []string{"s@9@temp@21", "q$esc@%#val"}}},
		{"wal_batch_snap_final", WalBatch{Epoch: 2, Snap: SnapFinal, SnapSeq: 40, SnapLastAt: 900}},
		{"wal_ack", WalAck{Seq: 43}},
		{"heartbeat", Heartbeat{Epoch: 2, Chronon: 1022, Seq: 43}},
		{"promote_info", PromoteInfo{Epoch: 3, Seq: 44}},
		{"sub_open", SubOpen{ID: 5, Query: "status_q", Period: 8, Kind: 1, Deadline: 6, Elapsed: 1, MinUseful: 1, Depth: 16}},
		{"sub_open_soft_decay", SubOpen{ID: 6, Query: "temp_q", Period: 4, Kind: 2, Deadline: 10, MinUseful: 2, Decay: Decay{ID: DecayHyperbolic, Max: 10}}},
		{"sub_ack_admitted", SubAck{ID: 5, State: SubAdmitted, Cursor: 0, Chronon: 1023}},
		{"sub_ack_closed", SubAck{ID: 5, State: SubClosed, Cursor: 9, Chronon: 1100}},
		{"push", Push{ID: 5, Cursor: 3, Dropped: 1, Expired: 1, Useful: 9, Evaluated: true, Issue: 1024, Served: 1026, Answers: []string{"ok", "high"}}},
		{"push_degraded_miss", Push{ID: 5, Cursor: 4, Missed: true, Degraded: true, Issue: 1032, Served: 1032}},
		{"sub_cancel", SubCancel{ID: 5}},
		{"sub_resume", SubResume{ID: 5, Query: "status_q", Period: 8, Kind: 2, Deadline: 6, Elapsed: 2, MinUseful: 2, Decay: Decay{ID: DecayLinear, Max: 9, Span: 4}, Depth: 16, AfterCursor: 3}},
	}
}

// TestGoldenFrames pins the byte-exact wire encoding of every frame type
// to checked-in hex fixtures. If an encoding changes, this test fails
// until the protocol Version is bumped and the fixtures are regenerated
// (go test ./internal/rtwire -run TestGolden -update) — wire breaks are a
// deliberate, reviewed act, never a silent drift.
func TestGoldenFrames(t *testing.T) {
	msgs := goldenMessages()

	// Completeness: every frame kind has at least one fixture.
	seen := map[Kind]bool{}
	for _, g := range msgs {
		f, _, err := DecodeFrame(g.msg.Encode())
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		seen[f.Kind] = true
	}
	for k := range kindNames {
		if !seen[k] {
			t.Errorf("no golden fixture covers frame kind %s", k)
		}
	}

	if *updateGolden {
		var b strings.Builder
		fmt.Fprintf(&b, "version %d\n", Version)
		for _, g := range msgs {
			fmt.Fprintf(&b, "%s %s\n", g.name, hex.EncodeToString(g.msg.Encode()))
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s for protocol version %d", goldenFile, Version)
		return
	}

	fh, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to generate): %v", err)
	}
	defer fh.Close()

	want := map[string]string{}
	var fixtureVersion int
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if v, ok := strings.CutPrefix(line, "version "); ok {
			if _, err := fmt.Sscanf(v, "%d", &fixtureVersion); err != nil {
				t.Fatalf("bad version line %q", line)
			}
			continue
		}
		name, hexs, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad fixture line %q", line)
		}
		want[name] = hexs
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if fixtureVersion != int(Version) {
		t.Fatalf("golden fixtures are for protocol version %d but Version = %d; regenerate with -update",
			fixtureVersion, Version)
	}

	for _, g := range msgs {
		got := hex.EncodeToString(g.msg.Encode())
		fixture, ok := want[g.name]
		if !ok {
			t.Errorf("fixture %q missing from %s (regenerate with -update)", g.name, goldenFile)
			continue
		}
		if got != fixture {
			t.Errorf("wire encoding of %q changed without a Version bump:\n got  %s\nwant %s\n"+
				"If this break is intentional, bump rtwire.Version and regenerate with -update.",
				g.name, got, fixture)
		}
		delete(want, g.name)
	}
	for name := range want {
		t.Errorf("stale fixture %q has no message (regenerate with -update)", name)
	}
}
