package rtwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"rtc/internal/deadline"
)

// allMessages is one deterministic instance of every frame type; the
// round-trip, golden, and fuzz suites all build on it. Payload strings
// deliberately exercise the escaping discipline ($, @, #, %).
func allMessages() []any {
	return []any{
		Hello{Client: "client-a"},
		Welcome{Session: 3, Chronon: 1021, Epoch: 2, Role: RoleStandby, Shards: 8, Shard: 5},
		Sample{ID: 7, Image: "temp", Value: "21"},
		Query{
			ID: 8, Query: "status_q", Candidate: "ok$high@40%",
			Kind: deadline.Soft, Deadline: 40, Elapsed: 3, MinUseful: 2,
			Decay: Decay{ID: DecayHyperbolic, Max: 10},
		},
		Result{
			ID: 8, Answers: []string{"ok", "hi@there"}, Match: true,
			Useful: 2, Missed: false, Evaluated: true, Issue: 11, Served: 13,
		},
		AsOf{ID: 9, Image: "pressure", At: 512},
		AsOfResult{ID: 9, OK: true, Value: "99", Horizon: 600},
		MetricsReq{ID: 10},
		Metrics{ID: 10, Pairs: []MetricPair{{"queries_in", 42}, {"deadline_hit", 40}}},
		Flush{ID: 11},
		Flushed{ID: 11, Chronon: 700},
		Err{ID: 12, Code: CodeBackpressure, Msg: "session queue full"},
		Bye{Reason: "drain"},
		Subscribe{AfterSeq: 41, Follower: "replica-1"},
		WalBatch{
			Epoch: 2, FirstSeq: 42,
			Events: []string{"s@9@temp@21", "q$esc@%#val"},
		},
		WalBatch{Epoch: 2, Snap: SnapFinal, SnapSeq: 40, SnapLastAt: 900},
		WalAck{Seq: 43},
		Heartbeat{Epoch: 2, Chronon: 1022, Seq: 43},
		PromoteInfo{Epoch: 3, Seq: 44},
		SubOpen{
			ID: 5, Query: "status_q", Period: 8,
			Kind: deadline.Firm, Deadline: 6, Elapsed: 1, MinUseful: 1,
			Decay: Decay{ID: DecayLinear, Max: 9, Span: 4}, Depth: 16,
		},
		SubAck{ID: 5, State: SubAdmitted, Cursor: 0, Chronon: 1023},
		Push{
			ID: 5, Cursor: 3, Dropped: 1, Expired: 1, Useful: 9,
			Missed: false, Evaluated: true, Degraded: true,
			Issue: 1024, Served: 1026, Answers: []string{"ok", "hi@there"},
		},
		SubCancel{ID: 5},
		SubResume{
			ID: 5, Query: "status_q", Period: 8,
			Kind: deadline.Soft, Deadline: 6, Elapsed: 2, MinUseful: 2,
			Decay: Decay{ID: DecayHyperbolic, Max: 10}, Depth: 16,
			AfterCursor: 3,
		},
	}
}

type encoder interface{ Encode() []byte }

func TestMessageRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		frame := msg.(encoder).Encode()
		f, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if n != len(frame) {
			t.Fatalf("%T: consumed %d of %d bytes", msg, n, len(frame))
		}
		got, err := Decode(f)
		if err != nil {
			t.Fatalf("%T: message decode: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round trip:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for _, m := range msgs {
		buf.Write(m.(encoder).Encode())
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := Decode(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := Hello{Client: "x"}.Encode()
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte{}, valid...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:HeaderSize-1], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", corrupt(func(b []byte) { b[1] = Version + 1 }), ErrVersion},
		{"bad kind", corrupt(func(b []byte) { b[2] = 0xEE }), ErrBadKind},
		{"huge length prefix", corrupt(func(b []byte) { b[3], b[4], b[5], b[6] = 0xFF, 0xFF, 0xFF, 0xFF }), ErrTooLong},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"flipped payload bit", corrupt(func(b []byte) { b[len(b)-1] ^= 1 }), ErrChecksum},
		{"flipped crc", corrupt(func(b []byte) { b[7] ^= 1 }), ErrChecksum},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeFrame err = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := ReadFrame(bytes.NewReader(tc.in)); tc.in != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: ReadFrame err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestVersionGuard: the Version=4 bump must be airtight in both directions.
// decodeHeader rejects any version byte other than its own before looking
// at the kind, so a v3 decoder (identical code, Version=3) refuses every v4
// frame — the shard-bearing Welcome as well as the older kinds, since the
// version byte is in every header — with ErrVersion, and symmetrically this
// v4 decoder refuses a v3-stamped frame. Re-stamping a v4 frame's version
// byte to 3 without recomputing the CRC fails the checksum, because the CRC
// covers the version byte: even a decoder that ignored the version field
// could not be tricked into parsing a shard-routed frame as v3.
func TestVersionGuard(t *testing.T) {
	v4Frames := []encoder{
		Welcome{Session: 1, Chronon: 9, Epoch: 2, Role: RolePrimary, Shards: 8, Shard: 3},
		SubOpen{ID: 1, Query: "status_q", Period: 4, Kind: deadline.Firm, Deadline: 3},
		SubAck{ID: 1, State: SubAdmitted},
		Push{ID: 1, Cursor: 1, Evaluated: true},
		SubCancel{ID: 1},
		SubResume{ID: 1, Query: "status_q", Period: 4, AfterCursor: 7},
	}
	for _, m := range v4Frames {
		b := m.Encode()
		if b[1] != 4 {
			t.Fatalf("%T: version byte = %d, want 4", m, b[1])
		}
		// What a v3 decoder does with this frame: its decodeHeader compares
		// the version byte against its own Version first, so the 4 comes
		// back as a clean ErrVersion. The same comparison here proves it:
		// any frame whose version byte differs from ours is refused the
		// identical way.
		downgraded := append([]byte{}, b...)
		downgraded[1] = 3
		if _, _, err := DecodeFrame(downgraded); !errors.Is(err, ErrVersion) {
			t.Fatalf("%T with version byte 3: err = %v, want ErrVersion", m, err)
		}
		// Even a v3 decoder that skipped the header version check could not
		// accept the re-stamped frame: its checksum function sums {3, kind}
		// where ours summed {4, kind}, so the stored CRC never matches.
		// Simulate that v3-side verification exactly.
		v3sum := crc32.Checksum([]byte{3, downgraded[2]}, crcTable)
		v3sum = crc32.Update(v3sum, crcTable, downgraded[HeaderSize:])
		if v3sum == binary.LittleEndian.Uint32(downgraded[7:11]) {
			t.Fatalf("%T: a v3 checksum accepted a re-stamped v4 frame", m)
		}
	}
}

// TestKindConfusion: a frame replayed under a different kind byte must fail
// the checksum — the CRC covers version and kind, not just the payload.
func TestKindConfusion(t *testing.T) {
	b := Flush{ID: 1}.Encode()
	b[2] = byte(KindFlushed)
	if _, _, err := DecodeFrame(b); !errors.Is(err, ErrChecksum) {
		t.Fatalf("kind-swapped frame: err = %v, want ErrChecksum", err)
	}
}

func TestDecayFunc(t *testing.T) {
	if (Decay{}).Func(10) != nil {
		t.Fatal("DecayNone must reconstruct as nil")
	}
	h := Decay{ID: DecayHyperbolic, Max: 8}.Func(10)
	if got := h(5); got != 8 {
		t.Fatalf("hyperbolic before deadline: %d", got)
	}
	if got := h(12); got != 4 {
		t.Fatalf("hyperbolic after deadline: %d", got)
	}
	l := Decay{ID: DecayLinear, Max: 8, Span: 4}.Func(10)
	if got := l(12); got != 4 {
		t.Fatalf("linear decay: %d", got)
	}
	if got := l(20); got != 0 {
		t.Fatalf("linear tail: %d", got)
	}
}
