package rtwire

import (
	"fmt"
	"strconv"

	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// DecayID names a usefulness-decay shape on the wire. Closures cannot
// travel; the id plus parameters reconstruct the §4.1 decay server-side.
type DecayID uint8

const (
	// DecayNone: no decay function (firm queries, or soft with implicit 0).
	DecayNone DecayID = iota
	// DecayHyperbolic: the paper's example u(t) = Max before the deadline,
	// Max/(t−t_d) after it.
	DecayHyperbolic
	// DecayLinear: Max at the deadline, reaching 0 after Span chronons.
	DecayLinear
)

// Decay is the wire form of a usefulness-decay function.
type Decay struct {
	ID   DecayID
	Max  uint64
	Span timeseq.Time // DecayLinear only
}

// Func reconstructs the decay as a deadline.Usefulness anchored at the
// client-relative deadline td. It returns nil for DecayNone.
func (d Decay) Func(td timeseq.Time) deadline.Usefulness {
	switch d.ID {
	case DecayHyperbolic:
		return deadline.Hyperbolic(d.Max, td)
	case DecayLinear:
		return deadline.Linear(d.Max, td, d.Span)
	default:
		return nil
	}
}

// ErrCode classifies a KindErr frame.
type ErrCode uint8

const (
	// CodeBackpressure: the session queue was full; a deadline-carrying
	// query is accounted as a miss server-side, never silently dropped.
	CodeBackpressure ErrCode = iota + 1
	// CodeClosed: the server is draining or stopped.
	CodeClosed
	// CodeServerFull: no free session for this connection.
	CodeServerFull
	// CodeBadRequest: the frame did not parse or referenced nothing.
	CodeBadRequest
	// CodeReadOnly: the node is a standby; it refuses writes and firm
	// queries (their freshness cannot be guaranteed behind the primary).
	CodeReadOnly
	// CodeStale: the peer's fencing epoch is behind — a deposed primary or
	// an outdated follower; its frames are rejected.
	CodeStale
)

// String implements fmt.Stringer.
func (c ErrCode) String() string {
	switch c {
	case CodeBackpressure:
		return "backpressure"
	case CodeClosed:
		return "closed"
	case CodeServerFull:
		return "server_full"
	case CodeBadRequest:
		return "bad_request"
	case CodeReadOnly:
		return "read_only"
	case CodeStale:
		return "stale_epoch"
	default:
		return fmt.Sprintf("ErrCode(%d)", uint8(c))
	}
}

// Hello opens a connection.
type Hello struct{ Client string }

// Role names what a node is at handshake time.
type Role uint8

const (
	// RolePrimary accepts writes; its WAL is the replication source.
	RolePrimary Role = iota
	// RoleStandby tails a primary's WAL and serves reads only.
	RoleStandby
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Welcome acknowledges a Hello. Epoch is the node's fencing epoch: it
// increases on every promotion, so a client that has seen a newer epoch
// rejects a Welcome from a deposed primary. Shards and Shard carry the
// keyspace placement (v4): the deployment's shard count and the answering
// listener's shard index, so the client can verify it dialed the shard
// ShardOf says owns each object. An unsharded server reports Shards=1,
// Shard=0.
type Welcome struct {
	Session uint64
	Chronon timeseq.Time // server chronon at accept
	Epoch   uint64
	Role    Role
	Shards  uint64 // total shards in the deployment (1 = unsharded)
	Shard   uint64 // this listener's shard index in [0, Shards)
}

// Sample is one timed sensor sample.
type Sample struct {
	ID           uint64
	Image, Value string
}

// Query is one aperiodic query with its client-relative deadline envelope.
type Query struct {
	ID               uint64
	Query, Candidate string
	Kind             deadline.Kind
	// Deadline is relative to the client's issue instant.
	Deadline timeseq.Time
	// Elapsed is the chronons the client already consumed between issue
	// and this transmission (queueing, earlier attempts). The server
	// anchors Deadline−Elapsed at the arrival chronon; Elapsed ≥ Deadline
	// on a firm query is "expired on arrival".
	Elapsed   timeseq.Time
	MinUseful uint64
	Decay     Decay
}

// Result answers one Query.
type Result struct {
	ID               uint64
	Answers          []string
	Match            bool
	Useful           uint64
	Missed           bool
	Evaluated        bool
	Issue, Served    timeseq.Time // server chronons
	ExpiredOnArrival bool
}

// AsOf is one temporal read against the published history.
type AsOf struct {
	ID    uint64
	Image string
	At    timeseq.Time
}

// AsOfResult answers one AsOf.
type AsOfResult struct {
	ID      uint64
	OK      bool
	Value   string
	Horizon timeseq.Time
}

// MetricsReq requests a metrics snapshot.
type MetricsReq struct{ ID uint64 }

// MetricPair is one metrics counter.
type MetricPair struct {
	Name  string
	Value uint64
}

// Metrics answers one MetricsReq. Pairs are self-describing name/value
// rows in the server's table order, so new counters never break old
// clients.
type Metrics struct {
	ID    uint64
	Pairs []MetricPair
}

// Map indexes the pairs by name.
func (m Metrics) Map() map[string]uint64 {
	out := make(map[string]uint64, len(m.Pairs))
	for _, p := range m.Pairs {
		out[p.Name] = p.Value
	}
	return out
}

// Flush asks the server to apply everything submitted before it.
type Flush struct{ ID uint64 }

// Flushed answers one Flush.
type Flushed struct {
	ID      uint64
	Chronon timeseq.Time
}

// Err reports a per-request error. ID echoes the failing request (0 for
// connection-level errors).
type Err struct {
	ID   uint64
	Code ErrCode
	Msg  string
}

// Error implements the error interface so Err frames can flow through
// client call sites.
func (e Err) Error() string { return fmt.Sprintf("rtwire: %s: %s", e.Code, e.Msg) }

// Bye announces an orderly close.
type Bye struct{ Reason string }

// Subscribe switches the connection into WAL-follower mode: the primary
// streams every log event with sequence number > AfterSeq.
type Subscribe struct {
	AfterSeq uint64
	Follower string // follower name, for the primary's logs
}

// Snap classifies a WalBatch: live events, one chunk of a full-state
// resync, or the resync's terminating frame.
const (
	// SnapNone: Events are live WAL events, FirstSeq the first one's seq.
	SnapNone uint8 = iota
	// SnapPart: Events are one chunk of a state-dump resync; sequence
	// numbers do not apply until the final chunk arrives.
	SnapPart
	// SnapFinal: the resync is complete. SnapSeq/SnapLastAt are the WAL
	// sequence and last timestamp the dumped state corresponds to; the
	// follower bootstraps its log from the accumulated dump.
	SnapFinal
)

// WalBatch carries a contiguous run of WAL events from the primary's log.
// Each entry of Events is the raw record payload of one log event (the
// bytes of its $f1@f2@…$ encoding) — opaque to the wire layer, decoded by
// the follower's log package. Epoch fences the stream: a follower rejects
// batches from an epoch older than the newest it has seen.
type WalBatch struct {
	Epoch      uint64
	FirstSeq   uint64
	Snap       uint8
	SnapSeq    uint64
	SnapLastAt timeseq.Time
	Events     []string
}

// WalAck acknowledges that the follower durably applied events through
// Seq; it opens the primary's bounded send window.
type WalAck struct{ Seq uint64 }

// Heartbeat is the liveness beacon. On replication links the primary sends
// it when idle (Seq = newest log sequence, so the follower can detect lag
// without traffic); on plain client connections the client sends it when
// idle and the server echoes it.
type Heartbeat struct {
	Epoch   uint64
	Chronon timeseq.Time
	Seq     uint64
}

// PromoteInfo announces a promotion: the sender is now primary at Epoch
// with its log at Seq. A standby broadcasts it to its read clients before
// re-opening as primary.
type PromoteInfo struct {
	Epoch uint64
	Seq   uint64
}

// SubState classifies a SubAck.
type SubState uint8

const (
	// SubAdmitted: the standing query passed §4.1 admission and is live.
	SubAdmitted SubState = iota + 1
	// SubRefused: admission failed (unknown query, impossible deadline,
	// zero period, or a duplicate id on this connection).
	SubRefused
	// SubClosed: the subscription is closed; Cursor is the last assigned.
	SubClosed
)

// String implements fmt.Stringer.
func (s SubState) String() string {
	switch s {
	case SubAdmitted:
		return "admitted"
	case SubRefused:
		return "refused"
	case SubClosed:
		return "closed"
	default:
		return fmt.Sprintf("SubState(%d)", uint8(s))
	}
}

// SubOpen registers a standing periodic query: the server evaluates Query
// every Period chronons and pushes each tick's stamped result. The deadline
// envelope (Kind, Deadline, Elapsed, MinUseful, Decay) is the same
// client-relative contract a Query carries, applied per tick: Deadline is
// relative to each tick's issue instant, and Elapsed shifts it exactly as
// netserve's translation shifts an aperiodic query's.
type SubOpen struct {
	ID        uint64 // client-chosen subscription id, unique per connection
	Query     string
	Period    timeseq.Time
	Kind      deadline.Kind
	Deadline  timeseq.Time
	Elapsed   timeseq.Time
	MinUseful uint64
	Decay     Decay
	// Depth bounds the server-side delivery queue for this subscriber
	// (0: server default). When the queue is full the oldest queued push is
	// dropped and counted, never the newest.
	Depth uint64
}

// SubAck answers a SubOpen, SubResume, or SubCancel. Cursor is the cursor
// base the subscription continues from (0 for a fresh subscription, the
// resumed-after cursor on a SubResume, the last assigned cursor on close).
type SubAck struct {
	ID      uint64
	State   SubState
	Cursor  uint64
	Chronon timeseq.Time
}

// Push carries one tick result of a standing query. Cursor is monotone per
// subscription: every scheduled tick consumes exactly one cursor value,
// whether it was delivered, dropped, or expired. Dropped and Expired are
// cumulative for the current attachment — Dropped counts queued pushes
// discarded by the bounded queue (stamped at send time), Expired counts
// ticks skipped by per-tick admission (stamped at schedule time) — so a
// client can audit delivery: received == Cursor − base − Dropped − Expired.
type Push struct {
	ID        uint64
	Cursor    uint64
	Dropped   uint64
	Expired   uint64
	Useful    uint64
	Missed    bool
	Evaluated bool
	// Degraded marks a push served by a hot standby from replicated state.
	Degraded      bool
	Issue, Served timeseq.Time // server chronons
	Answers       []string
}

// SubCancel closes a standing query.
type SubCancel struct{ ID uint64 }

// SubResume re-registers a standing query after a reconnect or failover on
// whichever node the client landed on. It carries the full SubOpen spec —
// any node can recreate the subscription from the frame alone — plus
// AfterCursor, the newest cursor the client holds: delivery continues at
// AfterCursor+1 with fresh drop/expiry tallies, so cursors stay strictly
// increasing across attachments and no acknowledged tick is replayed.
type SubResume struct {
	ID          uint64
	Query       string
	Period      timeseq.Time
	Kind        deadline.Kind
	Deadline    timeseq.Time
	Elapsed     timeseq.Time
	MinUseful   uint64
	Decay       Decay
	Depth       uint64
	AfterCursor uint64
}

func parseBool(s string) (bool, bool) {
	switch s {
	case "0":
		return false, true
	case "1":
		return true, true
	}
	return false, false
}

func parseU(s string) (uint64, bool) {
	v, err := strconv.ParseUint(s, 10, 64)
	return v, err == nil
}

// subEnvelope is the field layout SubOpen and SubResume share: id, query,
// period, then the per-tick deadline envelope, then the queue depth.
type subEnvelope struct {
	id                uint64
	query             string
	period            timeseq.Time
	kind              deadline.Kind
	deadline, elapsed timeseq.Time
	minUseful         uint64
	decay             Decay
	depth             uint64
}

func parseSubEnvelope(fields []string) (subEnvelope, bool) {
	id, ok0 := parseU(fields[0])
	period, ok1 := parseU(fields[2])
	kind, ok2 := parseU(fields[3])
	dead, ok3 := parseU(fields[4])
	elapsed, ok4 := parseU(fields[5])
	minUseful, ok5 := parseU(fields[6])
	decayID, ok6 := parseU(fields[7])
	decayMax, ok7 := parseU(fields[8])
	span, ok8 := parseU(fields[9])
	depth, ok9 := parseU(fields[10])
	if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8 && ok9) {
		return subEnvelope{}, false
	}
	if kind > uint64(deadline.Soft) || decayID > uint64(DecayLinear) {
		return subEnvelope{}, false
	}
	return subEnvelope{
		id: id, query: fields[1], period: timeseq.Time(period),
		kind:     deadline.Kind(kind),
		deadline: timeseq.Time(dead), elapsed: timeseq.Time(elapsed),
		minUseful: minUseful,
		decay: Decay{
			ID: DecayID(decayID), Max: decayMax, Span: timeseq.Time(span),
		},
		depth: depth,
	}, true
}

// Every message encodes through an AppendTo method that assembles the
// frame directly into the destination buffer — numeric fields via strconv,
// no intermediate field strings — plus an Encode() convenience that
// allocates a fresh one. The byte output is pinned by the golden
// wire-format fixtures: AppendTo(nil) equals the old field-slice encoding
// for every message.

// AppendTo appends the encoded frame to dst.
func (m Hello) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindHello)
	b.str(m.Client)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Hello) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Welcome) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindWelcome)
	b.uint(m.Session)
	b.time(m.Chronon)
	b.uint(m.Epoch)
	b.uint(uint64(m.Role))
	b.uint(m.Shards)
	b.uint(m.Shard)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Welcome) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Sample) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSample)
	b.uint(m.ID)
	b.str(m.Image)
	b.str(m.Value)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Sample) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Query) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindQuery)
	b.uint(m.ID)
	b.str(m.Query)
	b.str(m.Candidate)
	b.uint(uint64(m.Kind))
	b.time(m.Deadline)
	b.time(m.Elapsed)
	b.uint(m.MinUseful)
	b.uint(uint64(m.Decay.ID))
	b.uint(m.Decay.Max)
	b.time(m.Decay.Span)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Query) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Result) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindResult)
	b.uint(m.ID)
	b.boolf(m.Match)
	b.uint(m.Useful)
	b.boolf(m.Missed)
	b.boolf(m.Evaluated)
	b.time(m.Issue)
	b.time(m.Served)
	b.boolf(m.ExpiredOnArrival)
	for _, a := range m.Answers {
		b.str(a)
	}
	return b.finish()
}

// Encode renders the message as one frame.
func (m Result) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m AsOf) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindAsOf)
	b.uint(m.ID)
	b.str(m.Image)
	b.time(m.At)
	return b.finish()
}

// Encode renders the message as one frame.
func (m AsOf) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m AsOfResult) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindAsOfResult)
	b.uint(m.ID)
	b.boolf(m.OK)
	b.str(m.Value)
	b.time(m.Horizon)
	return b.finish()
}

// Encode renders the message as one frame.
func (m AsOfResult) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m MetricsReq) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindMetricsReq)
	b.uint(m.ID)
	return b.finish()
}

// Encode renders the message as one frame.
func (m MetricsReq) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Metrics) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindMetrics)
	b.uint(m.ID)
	for _, p := range m.Pairs {
		b.str(p.Name)
		b.uint(p.Value)
	}
	return b.finish()
}

// Encode renders the message as one frame.
func (m Metrics) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Flush) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindFlush)
	b.uint(m.ID)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Flush) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Flushed) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindFlushed)
	b.uint(m.ID)
	b.time(m.Chronon)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Flushed) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Err) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindErr)
	b.uint(m.ID)
	b.uint(uint64(m.Code))
	b.str(m.Msg)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Err) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Bye) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindBye)
	b.str(m.Reason)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Bye) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Subscribe) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSubscribe)
	b.uint(m.AfterSeq)
	b.str(m.Follower)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Subscribe) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m WalBatch) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindWalBatch)
	b.uint(m.Epoch)
	b.uint(m.FirstSeq)
	b.uint(uint64(m.Snap))
	b.uint(m.SnapSeq)
	b.time(m.SnapLastAt)
	for _, e := range m.Events {
		b.str(e)
	}
	return b.finish()
}

// Encode renders the message as one frame.
func (m WalBatch) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m WalAck) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindWalAck)
	b.uint(m.Seq)
	return b.finish()
}

// Encode renders the message as one frame.
func (m WalAck) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Heartbeat) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindHeartbeat)
	b.uint(m.Epoch)
	b.time(m.Chronon)
	b.uint(m.Seq)
	return b.finish()
}

// Encode renders the message as one frame.
func (m Heartbeat) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m PromoteInfo) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindPromoteInfo)
	b.uint(m.Epoch)
	b.uint(m.Seq)
	return b.finish()
}

// Encode renders the message as one frame.
func (m PromoteInfo) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m SubOpen) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSubOpen)
	b.uint(m.ID)
	b.str(m.Query)
	b.time(m.Period)
	b.uint(uint64(m.Kind))
	b.time(m.Deadline)
	b.time(m.Elapsed)
	b.uint(m.MinUseful)
	b.uint(uint64(m.Decay.ID))
	b.uint(m.Decay.Max)
	b.time(m.Decay.Span)
	b.uint(m.Depth)
	return b.finish()
}

// Encode renders the message as one frame.
func (m SubOpen) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m SubAck) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSubAck)
	b.uint(m.ID)
	b.uint(uint64(m.State))
	b.uint(m.Cursor)
	b.time(m.Chronon)
	return b.finish()
}

// Encode renders the message as one frame.
func (m SubAck) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m Push) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindPush)
	b.uint(m.ID)
	b.uint(m.Cursor)
	b.uint(m.Dropped)
	b.uint(m.Expired)
	b.uint(m.Useful)
	b.boolf(m.Missed)
	b.boolf(m.Evaluated)
	b.boolf(m.Degraded)
	b.time(m.Issue)
	b.time(m.Served)
	for _, a := range m.Answers {
		b.str(a)
	}
	return b.finish()
}

// Encode renders the message as one frame.
func (m Push) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m SubCancel) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSubCancel)
	b.uint(m.ID)
	return b.finish()
}

// Encode renders the message as one frame.
func (m SubCancel) Encode() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded frame to dst.
func (m SubResume) AppendTo(dst []byte) []byte {
	b := beginFrame(dst, KindSubResume)
	b.uint(m.ID)
	b.str(m.Query)
	b.time(m.Period)
	b.uint(uint64(m.Kind))
	b.time(m.Deadline)
	b.time(m.Elapsed)
	b.uint(m.MinUseful)
	b.uint(uint64(m.Decay.ID))
	b.uint(m.Decay.Max)
	b.time(m.Decay.Span)
	b.uint(m.Depth)
	b.uint(m.AfterCursor)
	return b.finish()
}

// Encode renders the message as one frame.
func (m SubResume) Encode() []byte { return m.AppendTo(nil) }

// Decode parses a frame into its typed message.
func Decode(f Frame) (any, error) {
	fields, err := f.Fields()
	if err != nil {
		return nil, err
	}
	bad := func() (any, error) {
		return nil, fmt.Errorf("%w: %s frame with %d fields", ErrBadPayload, f.Kind, len(fields))
	}
	need := func(n int) bool { return len(fields) >= n }
	switch f.Kind {
	case KindHello:
		if !need(1) {
			return bad()
		}
		return Hello{Client: fields[0]}, nil
	case KindWelcome:
		if !need(6) {
			return bad()
		}
		sess, ok1 := parseU(fields[0])
		chr, ok2 := parseU(fields[1])
		epoch, ok3 := parseU(fields[2])
		role, ok4 := parseU(fields[3])
		shards, ok5 := parseU(fields[4])
		shard, ok6 := parseU(fields[5])
		if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) || role > uint64(RoleStandby) {
			return bad()
		}
		if shards > 0 && shard >= shards {
			return bad()
		}
		return Welcome{
			Session: sess, Chronon: timeseq.Time(chr),
			Epoch: epoch, Role: Role(role),
			Shards: shards, Shard: shard,
		}, nil
	case KindSample:
		if !need(3) {
			return bad()
		}
		id, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return Sample{ID: id, Image: fields[1], Value: fields[2]}, nil
	case KindQuery:
		if !need(10) {
			return bad()
		}
		id, ok0 := parseU(fields[0])
		kind, ok1 := parseU(fields[3])
		dead, ok2 := parseU(fields[4])
		elapsed, ok3 := parseU(fields[5])
		minUseful, ok4 := parseU(fields[6])
		decayID, ok5 := parseU(fields[7])
		decayMax, ok6 := parseU(fields[8])
		span, ok7 := parseU(fields[9])
		if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
			return bad()
		}
		if kind > uint64(deadline.Soft) || decayID > uint64(DecayLinear) {
			return bad()
		}
		return Query{
			ID: id, Query: fields[1], Candidate: fields[2],
			Kind:     deadline.Kind(kind),
			Deadline: timeseq.Time(dead), Elapsed: timeseq.Time(elapsed),
			MinUseful: minUseful,
			Decay: Decay{
				ID: DecayID(decayID), Max: decayMax, Span: timeseq.Time(span),
			},
		}, nil
	case KindResult:
		if !need(8) {
			return bad()
		}
		id, ok0 := parseU(fields[0])
		match, ok1 := parseBool(fields[1])
		useful, ok2 := parseU(fields[2])
		missed, ok3 := parseBool(fields[3])
		eval, ok4 := parseBool(fields[4])
		issue, ok5 := parseU(fields[5])
		served, ok6 := parseU(fields[6])
		expired, ok7 := parseBool(fields[7])
		if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
			return bad()
		}
		var answers []string
		if len(fields) > 8 {
			answers = append(answers, fields[8:]...)
		}
		return Result{
			ID: id, Answers: answers, Match: match, Useful: useful,
			Missed: missed, Evaluated: eval,
			Issue: timeseq.Time(issue), Served: timeseq.Time(served),
			ExpiredOnArrival: expired,
		}, nil
	case KindAsOf:
		if !need(3) {
			return bad()
		}
		id, ok1 := parseU(fields[0])
		at, ok2 := parseU(fields[2])
		if !ok1 || !ok2 {
			return bad()
		}
		return AsOf{ID: id, Image: fields[1], At: timeseq.Time(at)}, nil
	case KindAsOfResult:
		if !need(4) {
			return bad()
		}
		id, ok1 := parseU(fields[0])
		okv, ok2 := parseBool(fields[1])
		hor, ok3 := parseU(fields[3])
		if !(ok1 && ok2 && ok3) {
			return bad()
		}
		return AsOfResult{ID: id, OK: okv, Value: fields[2], Horizon: timeseq.Time(hor)}, nil
	case KindMetricsReq:
		if !need(1) {
			return bad()
		}
		id, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return MetricsReq{ID: id}, nil
	case KindMetrics:
		if !need(1) || len(fields)%2 == 0 {
			return bad()
		}
		id, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		m := Metrics{ID: id}
		for i := 1; i < len(fields); i += 2 {
			v, ok := parseU(fields[i+1])
			if !ok {
				return bad()
			}
			m.Pairs = append(m.Pairs, MetricPair{Name: fields[i], Value: v})
		}
		return m, nil
	case KindFlush:
		if !need(1) {
			return bad()
		}
		id, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return Flush{ID: id}, nil
	case KindFlushed:
		if !need(2) {
			return bad()
		}
		id, ok1 := parseU(fields[0])
		chr, ok2 := parseU(fields[1])
		if !ok1 || !ok2 {
			return bad()
		}
		return Flushed{ID: id, Chronon: timeseq.Time(chr)}, nil
	case KindErr:
		if !need(3) {
			return bad()
		}
		id, ok1 := parseU(fields[0])
		code, ok2 := parseU(fields[1])
		if !ok1 || !ok2 {
			return bad()
		}
		return Err{ID: id, Code: ErrCode(code), Msg: fields[2]}, nil
	case KindBye:
		if !need(1) {
			return bad()
		}
		return Bye{Reason: fields[0]}, nil
	case KindSubscribe:
		if !need(2) {
			return bad()
		}
		after, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return Subscribe{AfterSeq: after, Follower: fields[1]}, nil
	case KindWalBatch:
		if !need(5) {
			return bad()
		}
		epoch, ok0 := parseU(fields[0])
		first, ok1 := parseU(fields[1])
		snap, ok2 := parseU(fields[2])
		snapSeq, ok3 := parseU(fields[3])
		snapAt, ok4 := parseU(fields[4])
		if !(ok0 && ok1 && ok2 && ok3 && ok4) || snap > uint64(SnapFinal) {
			return bad()
		}
		var events []string
		if len(fields) > 5 {
			events = append(events, fields[5:]...)
		}
		return WalBatch{
			Epoch: epoch, FirstSeq: first,
			Snap: uint8(snap), SnapSeq: snapSeq, SnapLastAt: timeseq.Time(snapAt),
			Events: events,
		}, nil
	case KindWalAck:
		if !need(1) {
			return bad()
		}
		seq, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return WalAck{Seq: seq}, nil
	case KindHeartbeat:
		if !need(3) {
			return bad()
		}
		epoch, ok1 := parseU(fields[0])
		chr, ok2 := parseU(fields[1])
		seq, ok3 := parseU(fields[2])
		if !(ok1 && ok2 && ok3) {
			return bad()
		}
		return Heartbeat{Epoch: epoch, Chronon: timeseq.Time(chr), Seq: seq}, nil
	case KindPromoteInfo:
		if !need(2) {
			return bad()
		}
		epoch, ok1 := parseU(fields[0])
		seq, ok2 := parseU(fields[1])
		if !ok1 || !ok2 {
			return bad()
		}
		return PromoteInfo{Epoch: epoch, Seq: seq}, nil
	case KindSubOpen:
		if !need(11) {
			return bad()
		}
		env, ok := parseSubEnvelope(fields)
		if !ok {
			return bad()
		}
		return SubOpen{
			ID: env.id, Query: env.query, Period: env.period,
			Kind: env.kind, Deadline: env.deadline, Elapsed: env.elapsed,
			MinUseful: env.minUseful, Decay: env.decay, Depth: env.depth,
		}, nil
	case KindSubAck:
		if !need(4) {
			return bad()
		}
		id, ok0 := parseU(fields[0])
		state, ok1 := parseU(fields[1])
		cursor, ok2 := parseU(fields[2])
		chr, ok3 := parseU(fields[3])
		if !(ok0 && ok1 && ok2 && ok3) || state == 0 || state > uint64(SubClosed) {
			return bad()
		}
		return SubAck{
			ID: id, State: SubState(state), Cursor: cursor,
			Chronon: timeseq.Time(chr),
		}, nil
	case KindPush:
		if !need(10) {
			return bad()
		}
		id, ok0 := parseU(fields[0])
		cursor, ok1 := parseU(fields[1])
		dropped, ok2 := parseU(fields[2])
		expired, ok3 := parseU(fields[3])
		useful, ok4 := parseU(fields[4])
		missed, ok5 := parseBool(fields[5])
		eval, ok6 := parseBool(fields[6])
		degraded, ok7 := parseBool(fields[7])
		issue, ok8 := parseU(fields[8])
		served, ok9 := parseU(fields[9])
		if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8 && ok9) {
			return bad()
		}
		var answers []string
		if len(fields) > 10 {
			answers = append(answers, fields[10:]...)
		}
		return Push{
			ID: id, Cursor: cursor, Dropped: dropped, Expired: expired,
			Useful: useful, Missed: missed, Evaluated: eval, Degraded: degraded,
			Issue: timeseq.Time(issue), Served: timeseq.Time(served),
			Answers: answers,
		}, nil
	case KindSubCancel:
		if !need(1) {
			return bad()
		}
		id, ok := parseU(fields[0])
		if !ok {
			return bad()
		}
		return SubCancel{ID: id}, nil
	case KindSubResume:
		if !need(12) {
			return bad()
		}
		env, ok0 := parseSubEnvelope(fields)
		after, ok1 := parseU(fields[11])
		if !ok0 || !ok1 {
			return bad()
		}
		return SubResume{
			ID: env.id, Query: env.query, Period: env.period,
			Kind: env.kind, Deadline: env.deadline, Elapsed: env.elapsed,
			MinUseful: env.minUseful, Decay: env.decay, Depth: env.depth,
			AfterCursor: after,
		}, nil
	}
	return nil, ErrBadKind
}
