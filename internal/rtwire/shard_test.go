package rtwire

import (
	"fmt"
	"testing"
)

// TestShardRouteGolden pins ShardHash and ShardOf byte-for-byte: routing is
// part of the on-disk format (per-shard WAL directories bake placement into
// the filesystem), so a changed hash output is a data break, exactly like a
// changed WAL encoding. These values were computed by the initial
// implementation and must never drift.
func TestShardRouteGolden(t *testing.T) {
	hashes := map[string]uint64{
		"":         0xf52a15e9a9b5e89b,
		"temp":     0x7fb6dc5e336070b8,
		"pressure": 0xe81374f13395cc7c,
		"flow":     0x772be492041403e8,
		"status_q": 0x797cbf317f2375ac,
		"obj-000":  0x25a138990ad257c0,
	}
	for name, want := range hashes {
		if got := ShardHash(name); got != want {
			t.Errorf("ShardHash(%q) = %#x, want %#x (routing hash drifted: data break)", name, got, want)
		}
	}
	routes := []struct {
		name   string
		shards int
		want   int
	}{
		{"temp", 1, 0},
		{"temp", 8, 0},
		{"pressure", 8, 4},
		{"status_q", 8, 4},
		{"temp", 4, 0},
		{"temp", 0, 0}, // degenerate counts are total, never panic
		{"temp", -3, 0},
	}
	for _, r := range routes {
		if got := ShardOf(r.name, r.shards); got != r.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d", r.name, r.shards, got, r.want)
		}
	}
}

// TestShardRouteUniformity: the avalanche pass must spread realistic object
// names (short ASCII with shared prefixes and numeric suffixes — the worst
// case for raw FNV reduced mod small n) within 2× of the ideal per-shard
// load. This is the property the sharded-append throughput gate leans on: a
// skewed router re-serializes the keyspace behind one apply loop.
func TestShardRouteUniformity(t *testing.T) {
	for _, shards := range []int{2, 4, 8, 16} {
		const objects = 4096
		counts := make([]int, shards)
		for i := 0; i < objects; i++ {
			counts[ShardOf(fmt.Sprintf("sensor-%d", i), shards)]++
		}
		ideal := objects / shards
		for s, c := range counts {
			if c > 2*ideal || c < ideal/2 {
				t.Errorf("shards=%d: shard %d owns %d of %d objects (ideal %d)", shards, s, c, objects, ideal)
			}
		}
	}
}

// FuzzShardRoute pins the routing contract on arbitrary names: total (never
// panics, result always in range), deterministic (two calls agree), and
// consistent between ShardHash and ShardOf (the reduction is exactly
// hash mod shards, so external placement layers can reproduce it).
func FuzzShardRoute(f *testing.F) {
	f.Add("temp", 8)
	f.Add("", 1)
	f.Add("pressure", 3)
	f.Add("a$b@c%d#e", 16)
	f.Add("\x00\xff\xfe", 7)
	f.Fuzz(func(t *testing.T, name string, shards int) {
		got := ShardOf(name, shards)
		if shards < 2 {
			if got != 0 {
				t.Fatalf("ShardOf(%q, %d) = %d, want 0 for degenerate counts", name, shards, got)
			}
			return
		}
		if got < 0 || got >= shards {
			t.Fatalf("ShardOf(%q, %d) = %d out of range", name, shards, got)
		}
		if again := ShardOf(name, shards); again != got {
			t.Fatalf("ShardOf(%q, %d) nondeterministic: %d then %d", name, shards, got, again)
		}
		if want := int(ShardHash(name) % uint64(shards)); got != want {
			t.Fatalf("ShardOf(%q, %d) = %d, but ShardHash mod shards = %d", name, shards, got, want)
		}
	})
}
