package encoding

import (
	"testing"
)

// FuzzStrRoundTrip: any string survives Str/UnStr.
func FuzzStrRoundTrip(f *testing.F) {
	for _, seed := range []string{"", "abc", "a$b@c#d%e", "Terre Sauvage", "%%%", "#42", "$@"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, ok := UnStr(Str(s))
		if !ok {
			t.Fatalf("UnStr failed on Str(%q)", s)
		}
		if got != s {
			t.Fatalf("round trip %q → %q", s, got)
		}
	})
}

// FuzzRecordRoundTrip: any pair of fields survives Record/ParseRecord.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("a", "b")
	f.Add("", "")
	f.Add("x$y", "#1@%")
	f.Fuzz(func(t *testing.T, a, b string) {
		rec, ok := ParseRecord(Record(a, b))
		if !ok || len(rec) != 2 || rec[0] != a || rec[1] != b {
			t.Fatalf("round trip (%q,%q) → %v (%v)", a, b, rec, ok)
		}
	})
}
