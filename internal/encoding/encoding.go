// Package encoding provides the shared enc(·) machinery the paper assumes
// throughout §4 and §5: injective encodings of numbers, strings, and tagged
// records over symbol alphabets, with the designated delimiters $ and @ kept
// out of every payload (§5.1.1 and §5.2.2 require the delimiters to be
// outside the codomain of enc).
package encoding

import (
	"fmt"
	"strconv"
	"strings"

	"rtc/internal/word"
)

// Dollar is the $ delimiter of §5.1.1 (recognition problem) and §5.2.2
// (node encodings).
const Dollar = word.Symbol("$")

// At is the @ separator of §5.2.2/§5.2.3 (node and message encodings).
const At = word.Symbol("@")

// Num encodes a natural number as a single symbol outside every string
// payload ("#" prefix keeps the codomains disjoint, the paper's standing
// assumption that Σ, Ω and ℕ do not overlap).
func Num(v uint64) word.Symbol {
	return word.Symbol("#" + strconv.FormatUint(v, 10))
}

// AsNum decodes a Num symbol.
func AsNum(s word.Symbol) (uint64, bool) {
	str := string(s)
	if !strings.HasPrefix(str, "#") {
		return 0, false
	}
	v, err := strconv.ParseUint(str[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Str encodes a string one byte per symbol (so arbitrary byte strings —
// including invalid UTF-8 — round-trip). The bytes '$', '@', '#' and '%'
// are escaped so payloads never collide with delimiters or numbers.
func Str(s string) []word.Symbol {
	out := make([]word.Symbol, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '$', '@', '#', '%':
			out = append(out, word.Symbol([]byte{'%', b}))
		default:
			out = append(out, word.Symbol(s[i:i+1]))
		}
	}
	return out
}

// UnStr inverts Str. Symbols produced by other encoders make it fail.
func UnStr(syms []word.Symbol) (string, bool) {
	var b strings.Builder
	for _, s := range syms {
		str := string(s)
		switch {
		case len(str) == 2 && str[0] == '%':
			b.WriteByte(str[1])
		case len(str) >= 1 && (str == "$" || str == "@" || strings.HasPrefix(str, "#") || strings.HasPrefix(str, "%")):
			return "", false
		default:
			b.WriteString(str)
		}
	}
	return b.String(), true
}

// Record encodes a $-delimited record of fields separated by @:
// $f1@f2@…@fk$ — the shape enc(i,π) = $e(i)@e(π)$ of §5.2.2 generalizes to
// any arity.
func Record(fields ...string) []word.Symbol {
	out := []word.Symbol{Dollar}
	for i, f := range fields {
		if i > 0 {
			out = append(out, At)
		}
		out = append(out, Str(f)...)
	}
	return append(out, Dollar)
}

// ParseRecord splits one Record back into fields. It expects the symbols to
// be exactly one record.
func ParseRecord(syms []word.Symbol) ([]string, bool) {
	if len(syms) < 2 || syms[0] != Dollar || syms[len(syms)-1] != Dollar {
		return nil, false
	}
	inner := syms[1 : len(syms)-1]
	var fields []string
	var cur []word.Symbol
	flush := func() bool {
		s, ok := UnStr(cur)
		if !ok {
			return false
		}
		fields = append(fields, s)
		cur = nil
		return true
	}
	for _, s := range inner {
		if s == At {
			if !flush() {
				return nil, false
			}
			continue
		}
		if s == Dollar {
			return nil, false
		}
		cur = append(cur, s)
	}
	if !flush() {
		return nil, false
	}
	return fields, true
}

// Records scans a symbol stream for consecutive Record encodings, returning
// the parsed field lists. Non-record trailing symbols fail the parse.
func Records(syms []word.Symbol) ([][]string, bool) {
	var out [][]string
	i := 0
	for i < len(syms) {
		if syms[i] != Dollar {
			return nil, false
		}
		j := i + 1
		for j < len(syms) && syms[j] != Dollar {
			j++
		}
		if j == len(syms) {
			return nil, false
		}
		rec, ok := ParseRecord(syms[i : j+1])
		if !ok {
			return nil, false
		}
		out = append(out, rec)
		i = j + 1
	}
	return out, true
}

// FieldUint formats an integer field for Record.
func FieldUint(v uint64) string { return strconv.FormatUint(v, 10) }

// FieldInt formats a signed integer field for Record.
func FieldInt(v int64) string { return strconv.FormatInt(v, 10) }

// Tagged encodes enc(i, π) exactly as §5.2.2 defines it:
//
//	enc(i, i) = $e(i)$            (the label itself)
//	enc(i, π) = $e(i)@e(π)$       (any other property, prefixed by the label)
func Tagged(label uint64, property string) []word.Symbol {
	if property == "" {
		return Record(FieldUint(label))
	}
	return Record(FieldUint(label), property)
}

// String renders a symbol slice for diagnostics.
func String(syms []word.Symbol) string {
	var b strings.Builder
	for _, s := range syms {
		b.WriteString(string(s))
	}
	return b.String()
}

// MustParseUint parses a record field that must be a number (programming
// error otherwise).
func MustParseUint(f string) uint64 {
	v, err := strconv.ParseUint(f, 10, 64)
	if err != nil {
		panic(fmt.Sprintf("encoding: field %q is not a number", f))
	}
	return v
}
