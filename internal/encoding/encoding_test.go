package encoding

import (
	"testing"
	"testing/quick"

	"rtc/internal/word"
)

func TestNumRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 40} {
		s := Num(v)
		got, ok := AsNum(s)
		if !ok || got != v {
			t.Errorf("AsNum(Num(%d)) = (%d,%v)", v, got, ok)
		}
	}
	if _, ok := AsNum(word.Symbol("a")); ok {
		t.Error("AsNum accepted a non-number")
	}
	if _, ok := AsNum(word.Symbol("#x")); ok {
		t.Error("AsNum accepted #x")
	}
}

func TestStrRoundTrip(t *testing.T) {
	for _, s := range []string{"", "abc", "Terre Sauvage", "a$b@c#d%e", "ünïcødé"} {
		syms := Str(s)
		got, ok := UnStr(syms)
		if !ok || got != s {
			t.Errorf("UnStr(Str(%q)) = (%q,%v)", s, got, ok)
		}
		// Delimiters must not appear raw in the payload.
		for _, sym := range syms {
			if sym == Dollar || sym == At {
				t.Errorf("Str(%q) leaks delimiter %q", s, sym)
			}
		}
	}
}

func TestStrRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, ok := UnStr(Str(s))
		return ok && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := [][]string{
		{"1"},
		{"1", "pos=3,4"},
		{"msg", "5", "2", "7", "payload with spaces"},
		{"weird$@#", "fields%"},
	}
	for _, fields := range cases {
		syms := Record(fields...)
		got, ok := ParseRecord(syms)
		if !ok {
			t.Fatalf("ParseRecord(Record(%v)) failed", fields)
		}
		if len(got) != len(fields) {
			t.Fatalf("fields = %v, want %v", got, fields)
		}
		for i := range fields {
			if got[i] != fields[i] {
				t.Fatalf("fields = %v, want %v", got, fields)
			}
		}
	}
}

func TestParseRecordRejectsGarbage(t *testing.T) {
	bad := [][]word.Symbol{
		{},
		{Dollar},
		{word.Symbol("a"), Dollar},
		{Dollar, word.Symbol("a")},
		{Dollar, Dollar, Dollar},
	}
	for _, syms := range bad {
		if _, ok := ParseRecord(syms); ok {
			t.Errorf("ParseRecord(%v) succeeded", syms)
		}
	}
}

func TestRecords(t *testing.T) {
	var syms []word.Symbol
	syms = append(syms, Record("a", "1")...)
	syms = append(syms, Record("b")...)
	recs, ok := Records(syms)
	if !ok || len(recs) != 2 {
		t.Fatalf("Records = %v, %v", recs, ok)
	}
	if recs[0][0] != "a" || recs[0][1] != "1" || recs[1][0] != "b" {
		t.Fatalf("Records = %v", recs)
	}
	// Trailing garbage fails.
	syms = append(syms, word.Symbol("x"))
	if _, ok := Records(syms); ok {
		t.Error("Records accepted trailing garbage")
	}
}

func TestTagged(t *testing.T) {
	// enc(i, i) = $e(i)$.
	rec, ok := ParseRecord(Tagged(7, ""))
	if !ok || len(rec) != 1 || rec[0] != "7" {
		t.Fatalf("Tagged(7, ) = %v", rec)
	}
	// enc(i, π) = $e(i)@e(π)$.
	rec, ok = ParseRecord(Tagged(7, "range=50"))
	if !ok || len(rec) != 2 || rec[0] != "7" || rec[1] != "range=50" {
		t.Fatalf("Tagged(7, range) = %v", rec)
	}
}

func TestInjectivity(t *testing.T) {
	// Distinct field lists must encode distinctly.
	a := String(Record("ab", "c"))
	b := String(Record("a", "bc"))
	if a == b {
		t.Error("Record not injective")
	}
}
