// Package language implements timed ω-languages (Definition 3.2) and the
// operations of §3.1.2: union, intersection, complement, concatenation
// (lifted from Definition 3.5) and Kleene closure (Definition 3.6), whose
// closure properties Theorem 3.3 asserts.
//
// A language is represented by its membership predicate. Because membership
// of a genuinely infinite word can only be observed through finite prefixes,
// predicates are three-valued: Yes and No are definite answers (for many of
// the paper's languages, such as lasso-presented ones, membership is exactly
// decidable), while Unknown reports that the horizon was insufficient.
package language

import (
	"fmt"

	"rtc/internal/word"
)

// Verdict is the outcome of a bounded membership test.
type Verdict int

const (
	// Unknown means the horizon did not suffice to decide membership.
	Unknown Verdict = iota
	// Yes means the word is definitely in the language.
	Yes
	// No means the word is definitely not in the language.
	No
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// Not negates a definite verdict and preserves Unknown.
func (v Verdict) Not() Verdict {
	switch v {
	case Yes:
		return No
	case No:
		return Yes
	default:
		return Unknown
	}
}

// Language is a timed ω-language given by a (bounded-horizon) membership
// predicate.
type Language struct {
	// Name identifies the language in diagnostics.
	Name string
	// Member decides membership of w, examining at most the first horizon
	// elements of w.
	Member func(w word.Word, horizon uint64) Verdict
}

// Contains is a convenience wrapper around Member.
func (l *Language) Contains(w word.Word, horizon uint64) Verdict {
	return l.Member(w, horizon)
}

// Union returns the language L1 ∪ L2 (§3.1.2: "straightforwardly defined").
// The three-valued semantics is the Kleene disjunction.
func Union(a, b *Language) *Language {
	return &Language{
		Name: fmt.Sprintf("(%s ∪ %s)", a.Name, b.Name),
		Member: func(w word.Word, h uint64) Verdict {
			va, vb := a.Member(w, h), b.Member(w, h)
			switch {
			case va == Yes || vb == Yes:
				return Yes
			case va == No && vb == No:
				return No
			default:
				return Unknown
			}
		},
	}
}

// Intersection returns the language L1 ∩ L2 with Kleene conjunction.
func Intersection(a, b *Language) *Language {
	return &Language{
		Name: fmt.Sprintf("(%s ∩ %s)", a.Name, b.Name),
		Member: func(w word.Word, h uint64) Verdict {
			va, vb := a.Member(w, h), b.Member(w, h)
			switch {
			case va == No || vb == No:
				return No
			case va == Yes && vb == Yes:
				return Yes
			default:
				return Unknown
			}
		},
	}
}

// Complement returns the complement language (with respect to the universe
// of all timed ω-words over the implicit alphabet).
func Complement(a *Language) *Language {
	return &Language{
		Name: fmt.Sprintf("¬%s", a.Name),
		Member: func(w word.Word, h uint64) Verdict {
			return a.Member(w, h).Not()
		},
	}
}

// Concat returns the concatenation L1·L2 = {w1w2 | w1 ∈ L1, w2 ∈ L2} of
// Definition 3.5. Membership is decided by split search over the first
// maxSplit elements: a finite word w is in L1·L2 iff some two-colouring of
// its elements projects to members of L1 and L2 whose stable merge is
// exactly w. The search is exponential in the word length, which is
// intrinsic (the operands may interleave arbitrarily); maxSplit caps it.
// Words longer than maxSplit (and infinite words) yield Unknown unless
// a definite Yes is found on colourings of a prefix — concatenation of
// general ω-languages is only semi-decidable from predicates alone.
func Concat(a, b *Language, maxSplit uint64) *Language {
	return &Language{
		Name: fmt.Sprintf("(%s·%s)", a.Name, b.Name),
		Member: func(w word.Word, h uint64) Verdict {
			l := w.Length()
			if l.Omega || l.N > maxSplit || l.N > 62 {
				return Unknown
			}
			n := l.N
			f := word.Prefix(w, n)
			sawUnknown := false
			for mask := uint64(0); mask < 1<<n; mask++ {
				w1 := make(word.Finite, 0, n)
				w2 := make(word.Finite, 0, n)
				for i := uint64(0); i < n; i++ {
					if mask&(1<<i) != 0 {
						w1 = append(w1, f[i])
					} else {
						w2 = append(w2, f[i])
					}
				}
				// The colouring must reproduce w under the deterministic
				// merge of Definition 3.5.
				if !word.IsConcatenationOf(f, w1, w2, n+1) {
					continue
				}
				va, vb := a.Member(w1, h), b.Member(w2, h)
				if va == Yes && vb == Yes {
					return Yes
				}
				if va != No && vb != No {
					sawUnknown = true
				}
			}
			if sawUnknown {
				return Unknown
			}
			return No
		},
	}
}

// Power returns L^k per Definition 3.6: L^0 = ∅, L^1 = L, L^k = L·L^{k-1}.
// (The paper defines L^0 as the empty language, not the singleton of the
// empty word; we follow the paper.)
func Power(a *Language, k int, maxSplit uint64) *Language {
	switch {
	case k <= 0:
		return Empty(fmt.Sprintf("%s^0", a.Name))
	case k == 1:
		return a
	default:
		p := a
		for i := 2; i <= k; i++ {
			p = Concat(a, p, maxSplit)
		}
		p.Name = fmt.Sprintf("%s^%d", a.Name, k)
		return p
	}
}

// Kleene returns L* = ∪_{0≤k<ω} L^k (Definition 3.6), tested up to maxK
// factors. Because L^0 = ∅ in the paper's definition, the empty word is in
// L* only if it is in L itself.
func Kleene(a *Language, maxK int, maxSplit uint64) *Language {
	return &Language{
		Name: fmt.Sprintf("%s*", a.Name),
		Member: func(w word.Word, h uint64) Verdict {
			sawUnknown := false
			for k := 1; k <= maxK; k++ {
				switch Power(a, k, maxSplit).Member(w, h) {
				case Yes:
					return Yes
				case Unknown:
					sawUnknown = true
				}
			}
			if sawUnknown {
				return Unknown
			}
			return No
		},
	}
}

// Empty is the empty language.
func Empty(name string) *Language {
	return &Language{
		Name:   name,
		Member: func(word.Word, uint64) Verdict { return No },
	}
}

// Universe is the language of all timed ω-words (over any alphabet).
func Universe(name string) *Language {
	return &Language{
		Name:   name,
		Member: func(word.Word, uint64) Verdict { return Yes },
	}
}

// FromPredicate builds a language from an exact predicate over finite words;
// infinite words are Unknown. Handy for lifting classical languages.
func FromPredicate(name string, pred func(word.Finite) bool) *Language {
	return &Language{
		Name: name,
		Member: func(w word.Word, h uint64) Verdict {
			l := w.Length()
			if l.Omega {
				return Unknown
			}
			if pred(word.Prefix(w, l.N)) {
				return Yes
			}
			return No
		},
	}
}

// WellBehavedOnly restricts a language to its well-behaved words
// (Definition 3.2): the intersection of L with the set of well-behaved
// timed ω-words, checked over the horizon. Lassos are decided exactly.
func WellBehavedOnly(a *Language) *Language {
	return &Language{
		Name: fmt.Sprintf("wb(%s)", a.Name),
		Member: func(w word.Word, h uint64) Verdict {
			if lasso, ok := w.(*word.Lasso); ok {
				if !lasso.WellBehaved() {
					return No
				}
				return a.Member(w, h)
			}
			if !w.Length().Omega {
				return No // finite words are never well behaved
			}
			if !word.WellBehavedWithin(w, h) {
				return No
			}
			v := a.Member(w, h)
			if v == Yes {
				// Membership is definite but well-behavedness of a general
				// infinite word is only evidenced, not proven.
				return Yes
			}
			return v
		},
	}
}
