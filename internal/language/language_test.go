package language

import (
	"strings"
	"testing"
	"testing/quick"

	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func ts(sym string, at timeseq.Time) word.TimedSym {
	return word.TimedSym{Sym: word.Symbol(sym), At: at}
}

// allA is the finite-word language of non-empty words of a's (any times).
var allA = FromPredicate("a+", func(w word.Finite) bool {
	if len(w) == 0 {
		return false
	}
	for _, e := range w {
		if e.Sym != "a" {
			return false
		}
	}
	return true
})

// allB is the analogous language of b's.
var allB = FromPredicate("b+", func(w word.Finite) bool {
	if len(w) == 0 {
		return false
	}
	for _, e := range w {
		if e.Sym != "b" {
			return false
		}
	}
	return true
})

func wordOf(s string, times ...timeseq.Time) word.Finite {
	w := make(word.Finite, len(s))
	for i, r := range s {
		w[i] = word.TimedSym{Sym: word.Symbol(string(r)), At: times[i]}
	}
	return w
}

func TestVerdictNot(t *testing.T) {
	if Yes.Not() != No || No.Not() != Yes || Unknown.Not() != Unknown {
		t.Error("Verdict.Not broken")
	}
}

func TestUnionIntersectionComplement(t *testing.T) {
	wa := wordOf("aa", 0, 1)
	wb := wordOf("bb", 0, 1)
	wab := wordOf("ab", 0, 1)

	u := Union(allA, allB)
	if u.Contains(wa, 10) != Yes || u.Contains(wb, 10) != Yes {
		t.Error("union misses members")
	}
	if u.Contains(wab, 10) != No {
		t.Error("union accepts non-member")
	}

	i := Intersection(allA, allB)
	if i.Contains(wa, 10) != No || i.Contains(wab, 10) != No {
		t.Error("intersection of disjoint languages should be empty")
	}

	c := Complement(allA)
	if c.Contains(wa, 10) != No || c.Contains(wb, 10) != Yes {
		t.Error("complement broken")
	}
	// Double complement is identity on definite verdicts.
	cc := Complement(c)
	if cc.Contains(wa, 10) != Yes {
		t.Error("double complement broken")
	}
}

func TestKleeneThreeValuedLogic(t *testing.T) {
	unknown := &Language{Name: "?", Member: func(word.Word, uint64) Verdict { return Unknown }}
	wa := wordOf("a", 0)
	if got := Union(unknown, allA).Contains(wa, 10); got != Yes {
		t.Errorf("Unknown ∪ Yes = %v, want yes", got)
	}
	if got := Union(unknown, allB).Contains(wa, 10); got != Unknown {
		t.Errorf("Unknown ∪ No = %v, want unknown", got)
	}
	if got := Intersection(unknown, allB).Contains(wa, 10); got != No {
		t.Errorf("Unknown ∩ No = %v, want no", got)
	}
	if got := Intersection(unknown, allA).Contains(wa, 10); got != Unknown {
		t.Errorf("Unknown ∩ Yes = %v, want unknown", got)
	}
}

func TestConcatLanguages(t *testing.T) {
	ab := Concat(allA, allB, 16)
	// a's at 0, b's at 1: a member (split by symbol).
	if got := ab.Contains(wordOf("aabb", 0, 0, 1, 1), 10); got != Yes {
		t.Errorf("aabb ∈ a+·b+ = %v", got)
	}
	// Interleaved times: b before a — still a member under Definition 3.5's
	// merge (order by time, operands interleave).
	if got := ab.Contains(wordOf("ba", 0, 1), 10); got != Yes {
		t.Errorf("(b,0)(a,1) ∈ a+·b+ = %v; Def 3.5 merges by time", got)
	}
	// A tie (a,0)(b,0) must put the a first (item 3), so (b,0)(a,0) is NOT
	// a valid merge of a word of a's with a word of b's.
	if got := ab.Contains(word.Finite{ts("b", 0), ts("a", 0)}, 10); got != No {
		t.Errorf("(b,0)(a,0) ∈ a+·b+ = %v, want no (tie-break violation)", got)
	}
	// Pure a's: not in the concatenation (b+ part must be non-empty).
	if got := ab.Contains(wordOf("aa", 0, 1), 10); got != No {
		t.Errorf("aa ∈ a+·b+ = %v", got)
	}
}

func TestPowerAndKleene(t *testing.T) {
	// L = {single a at any time}.
	single := FromPredicate("a", func(w word.Finite) bool {
		return len(w) == 1 && w[0].Sym == "a"
	})
	if got := Power(single, 0, 16).Contains(word.Finite{}, 10); got != No {
		t.Errorf("L^0 should be empty per Definition 3.6, got %v", got)
	}
	p2 := Power(single, 2, 16)
	if got := p2.Contains(wordOf("aa", 0, 1), 10); got != Yes {
		t.Errorf("aa ∈ L^2 = %v", got)
	}
	if got := p2.Contains(wordOf("a", 0), 10); got != No {
		t.Errorf("a ∈ L^2 = %v", got)
	}
	star := Kleene(single, 4, 16)
	for n := 1; n <= 4; n++ {
		w := wordOf(strings.Repeat("a", n), make([]timeseq.Time, n)...)
		if got := star.Contains(w, 10); got != Yes {
			t.Errorf("a^%d ∈ L* = %v", n, got)
		}
	}
	if got := star.Contains(word.Finite{}, 10); got != No {
		t.Errorf("ε ∈ L* = %v; paper's L^0 = ∅ excludes ε", got)
	}
	if got := star.Contains(wordOf("ab", 0, 0), 10); got != No {
		t.Errorf("ab ∈ L* = %v", got)
	}
}

// Theorem 3.3, executable half: the operation combinators agree with set
// semantics on sampled words. De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
func TestDeMorgan(t *testing.T) {
	f := func(syms []bool, rawTimes []uint8) bool {
		n := len(syms)
		if len(rawTimes) < n {
			n = len(rawTimes)
		}
		w := make(word.Finite, n)
		var at timeseq.Time
		for i := 0; i < n; i++ {
			at += timeseq.Time(rawTimes[i] % 3)
			s := "a"
			if !syms[i] {
				s = "b"
			}
			w[i] = word.TimedSym{Sym: word.Symbol(s), At: at}
		}
		lhs := Complement(Union(allA, allB)).Contains(w, 10)
		rhs := Intersection(Complement(allA), Complement(allB)).Contains(w, 10)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Theorem 3.3's closure under concatenation, executable half: for members
// w1 ∈ L1 and w2 ∈ L2, Concat(w1,w2) ∈ L1·L2.
func TestConcatSoundOnConstructedMembers(t *testing.T) {
	ab := Concat(allA, allB, 16)
	cases := []struct{ a, b word.Finite }{
		{wordOf("a", 0), wordOf("b", 0)},
		{wordOf("aa", 1, 2), wordOf("bbb", 0, 1, 3)},
		{wordOf("aaa", 5, 5, 5), wordOf("b", 5)},
	}
	for _, c := range cases {
		m := word.Concat(c.a, c.b).(word.Finite)
		if got := ab.Contains(m, 10); got != Yes {
			t.Errorf("Concat(%v,%v)=%v ∉ L1·L2 (got %v)", c.a, c.b, m, got)
		}
	}
}

func TestWellBehavedOnly(t *testing.T) {
	anyLasso := Universe("U")
	wb := WellBehavedOnly(anyLasso)

	good := word.RepeatClassical("a", 1)
	if got := wb.Contains(good, 50); got != Yes {
		t.Errorf("well-behaved lasso rejected: %v", got)
	}
	frozen := word.MustLasso(nil, word.FromClassical("a", 0), 0)
	if got := wb.Contains(frozen, 50); got != No {
		t.Errorf("frozen lasso accepted: %v", got)
	}
	fin := wordOf("a", 0)
	if got := wb.Contains(fin, 50); got != No {
		t.Errorf("finite word accepted as well behaved: %v", got)
	}
	// §3.2: the classical embedding (period-0) is the crisp delimitation
	// between classical and real-time algorithms.
	classical := word.MustLasso(nil, word.FromClassical("ab", 0), 0)
	if got := wb.Contains(classical, 50); got != No {
		t.Errorf("classical embedding accepted: %v", got)
	}
}

func TestEmptyAndUniverse(t *testing.T) {
	w := wordOf("a", 0)
	if Empty("∅").Contains(w, 1) != No {
		t.Error("empty language accepted a word")
	}
	if Universe("U").Contains(w, 1) != Yes {
		t.Error("universe rejected a word")
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" || Unknown.String() != "unknown" {
		t.Error("Verdict.String broken")
	}
}

// WellBehavedOnly on generator words: definite members need the horizon
// evidence; frozen generators are refuted.
func TestWellBehavedOnlyGenerators(t *testing.T) {
	wb := WellBehavedOnly(Universe("U"))
	advancing := word.Gen{F: func(i uint64) word.TimedSym {
		return word.TimedSym{Sym: "a", At: timeseq.Time(i)}
	}}
	if got := wb.Contains(advancing, 64); got != Yes {
		t.Errorf("advancing generator = %v", got)
	}
	frozen := word.Gen{F: func(uint64) word.TimedSym {
		return word.TimedSym{Sym: "a", At: 5}
	}}
	if got := wb.Contains(frozen, 64); got != No {
		t.Errorf("frozen generator = %v", got)
	}
	// Unknown inner verdicts stay unknown for well-behaved-looking words.
	unk := WellBehavedOnly(&Language{Name: "?", Member: func(word.Word, uint64) Verdict { return Unknown }})
	if got := unk.Contains(advancing, 64); got != Unknown {
		t.Errorf("unknown inner = %v", got)
	}
	// Lasso members of the inner language still need well-behavedness.
	if got := wb.Contains(word.RepeatClassical("a", 2), 64); got != Yes {
		t.Errorf("well-behaved lasso = %v", got)
	}
}
