// Package word implements timed ω-words (Definition 3.2 of Bruda & Akl,
// IPPS 2001): pairs (σ, τ) of a symbol sequence and a time sequence, where
// τ_i is the instant at which σ_i becomes available as input.
//
// Three representations cover the uses in the paper:
//
//   - Finite: an explicit finite timed word (time sequences may be finite by
//     Definition 3.1).
//   - Lasso: an ultimately periodic infinite word u·v^ω with a fixed time
//     advance per period. Lassos make acceptance by ω-automata and the
//     "f infinitely often" condition of Definition 3.4 exactly decidable,
//     and are the standard finite presentation of ω-words.
//   - Gen: a lazily evaluated infinite word given by random access, used for
//     the constructions of §4 and §5 (deadline words, data-accumulating
//     words, database words, network traces).
//
// The concatenation of Definition 3.5 — a stable merge by arrival time — is
// implemented by Concat and works across all representations.
package word

import (
	"fmt"
	"strings"

	"rtc/internal/timeseq"
)

// Symbol is one input or output symbol. The paper's alphabets mix plain
// letters with encoded values (usefulness figures, encodings of tuples,
// positions, …), so symbols are small strings rather than runes.
type Symbol string

// TimedSym is one element (σ_i, τ_i) of a timed word.
type TimedSym struct {
	Sym Symbol
	At  timeseq.Time
}

// Length describes the length of a word: either a finite count or ω.
type Length struct {
	N     uint64 // valid when !Omega
	Omega bool
}

// Finite constructs the length of a finite word.
func FiniteLen(n uint64) Length { return Length{N: n} }

// OmegaLen is the length ω.
var OmegaLen = Length{Omega: true}

// Word is a timed word of finite or infinite length. At(i) must be defined
// for every i < Length().N (finite case) or every i (infinite case), and the
// projected time sequence must be monotone.
type Word interface {
	// At returns the i-th element, 0-indexed.
	At(i uint64) TimedSym
	// Length reports the word's length (possibly ω).
	Length() Length
}

// Finite is an explicit finite timed word. The zero value is the empty word.
type Finite []TimedSym

// At implements Word.
func (f Finite) At(i uint64) TimedSym { return f[i] }

// Length implements Word.
func (f Finite) Length() Length { return FiniteLen(uint64(len(f))) }

// NewFinite validates monotonicity of the time projection and returns the
// word.
func NewFinite(elems ...TimedSym) (Finite, error) {
	for i := 1; i < len(elems); i++ {
		if elems[i].At < elems[i-1].At {
			return nil, fmt.Errorf("word: element %d at time %d precedes element %d at time %d: %w",
				i, elems[i].At, i-1, elems[i-1].At, timeseq.ErrNotMonotone)
		}
	}
	return Finite(elems), nil
}

// MustFinite is NewFinite for statically known words; it panics on invalid
// input.
func MustFinite(elems ...TimedSym) Finite {
	w, err := NewFinite(elems...)
	if err != nil {
		panic(err)
	}
	return w
}

// FromClassical embeds a classical (untimed) word as a timed word by
// attaching the constant time sequence t,t,...,t. With t = 0 this is the
// embedding of §3.2: "one can add the time sequence 00…0 to a classical word
// and obtain the corresponding timed ω-word", which is never well behaved.
func FromClassical(syms string, t timeseq.Time) Finite {
	w := make(Finite, 0, len(syms))
	for _, r := range syms {
		w = append(w, TimedSym{Sym: Symbol(string(r)), At: t})
	}
	return w
}

// Times returns the time projection τ of a finite word.
func (f Finite) Times() timeseq.Seq {
	s := make(timeseq.Seq, len(f))
	for i, e := range f {
		s[i] = e.At
	}
	return s
}

// Syms returns the symbol projection σ of a finite word.
func (f Finite) Syms() []Symbol {
	s := make([]Symbol, len(f))
	for i, e := range f {
		s[i] = e.Sym
	}
	return s
}

// String renders the word as (σ1,τ1)(σ2,τ2)… for debugging and test output.
func (f Finite) String() string {
	var b strings.Builder
	for _, e := range f {
		fmt.Fprintf(&b, "(%s,%d)", e.Sym, e.At)
	}
	return b.String()
}

// Prefix returns the first n elements of w as a Finite word. For finite w it
// truncates at the word's end.
func Prefix(w Word, n uint64) Finite {
	if l := w.Length(); !l.Omega && l.N < n {
		n = l.N
	}
	out := make(Finite, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, w.At(i))
	}
	return out
}

// PrefixUntil returns every element of w with timestamp ≤ t, scanning at
// most maxLen elements. Because time projections are monotone, the scan
// stops at the first element beyond t.
func PrefixUntil(w Word, t timeseq.Time, maxLen uint64) Finite {
	var out Finite
	l := w.Length()
	for i := uint64(0); i < maxLen; i++ {
		if !l.Omega && i >= l.N {
			break
		}
		e := w.At(i)
		if e.At > t {
			break
		}
		out = append(out, e)
	}
	return out
}

// Equal reports whether two finite words are identical element-wise.
func Equal(a, b Finite) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsSubsequence reports whether sub is a subsequence of w (restricted to the
// first maxLen elements of w), in the sense of §2: an order-preserving
// embedding of (symbol, time) pairs. The greedy match is sound and complete
// for the subsequence relation.
func IsSubsequence(sub Finite, w Word, maxLen uint64) bool {
	l := w.Length()
	j := uint64(0)
	for _, e := range sub {
		for {
			if j >= maxLen || (!l.Omega && j >= l.N) {
				return false
			}
			cur := w.At(j)
			j++
			if cur == e {
				break
			}
			// Monotone times let us abandon early: once w's clock passes
			// e.At, the pair can no longer occur.
			if cur.At > e.At {
				return false
			}
		}
	}
	return true
}

// MonotoneWithin verifies the time projection of w is monotone over the
// first n elements.
func MonotoneWithin(w Word, n uint64) bool {
	if l := w.Length(); !l.Omega && l.N < n {
		n = l.N
	}
	if n == 0 {
		return true
	}
	prev := w.At(0).At
	for i := uint64(1); i < n; i++ {
		cur := w.At(i).At
		if cur < prev {
			return false
		}
		prev = cur
	}
	return true
}

// WellBehavedWithin reports whether w looks well behaved (Definition 3.2 via
// Definition 3.1) when observed over its first horizon elements: the word is
// infinite, monotone, and its clock advances within the window. For lassos,
// prefer Lasso.WellBehaved, which is exact.
func WellBehavedWithin(w Word, horizon uint64) bool {
	if !w.Length().Omega {
		return false // finite words are never well behaved
	}
	if !MonotoneWithin(w, horizon) {
		return false
	}
	if horizon < 2 {
		return true
	}
	return w.At(horizon-1).At > w.At(0).At
}
