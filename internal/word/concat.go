package word

import "rtc/internal/timeseq"

// Concat implements the concatenation of timed ω-words from Definition 3.5:
// the elements of a and b are merged in non-decreasing order of arrival
// time, where
//
//   - item 1: both operands are subsequences of the result and every result
//     element comes from one operand;
//   - item 2: blocks of equal-timestamp elements inside one operand stay
//     contiguous and in order (guaranteed here because each operand is
//     consumed strictly left to right);
//   - item 3: when an element of a and an element of b carry the same
//     timestamp, the element of a precedes.
//
// Items 1–3 make the result unique, so concatenation is exactly the stable
// merge computed here. If both operands are finite the result is Finite;
// otherwise it is a lazily merged infinite word.
func Concat(a, b Word) Word {
	la, lb := a.Length(), b.Length()
	if !la.Omega && !lb.Omega {
		return concatFinite(a, la.N, b, lb.N)
	}
	var ai, bi uint64
	return Sequential(func() TimedSym {
		aOK := la.Omega || ai < la.N
		bOK := lb.Omega || bi < lb.N
		switch {
		case aOK && bOK:
			ea, eb := a.At(ai), b.At(bi)
			if ea.At <= eb.At {
				ai++
				return ea
			}
			bi++
			return eb
		case aOK:
			e := a.At(ai)
			ai++
			return e
		case bOK:
			e := b.At(bi)
			bi++
			return e
		default:
			// Unreachable: at least one operand is infinite.
			panic("word: merged word exhausted both finite operands")
		}
	})
}

func concatFinite(a Word, na uint64, b Word, nb uint64) Finite {
	out := make(Finite, 0, na+nb)
	var ai, bi uint64
	for ai < na && bi < nb {
		ea, eb := a.At(ai), b.At(bi)
		if ea.At <= eb.At {
			out = append(out, ea)
			ai++
		} else {
			out = append(out, eb)
			bi++
		}
	}
	for ; ai < na; ai++ {
		out = append(out, a.At(ai))
	}
	for ; bi < nb; bi++ {
		out = append(out, b.At(bi))
	}
	return out
}

// ConcatAll folds Concat over ws left to right. Definition 3.5's merge is
// associative, so the grouping does not matter; left folding keeps the
// intermediate words cheap when early operands are finite.
func ConcatAll(ws ...Word) Word {
	if len(ws) == 0 {
		return Finite(nil)
	}
	acc := ws[0]
	for _, w := range ws[1:] {
		acc = Concat(acc, w)
	}
	return acc
}

// IsConcatenationOf checks, over the first horizon elements, that w equals
// the (unique) concatenation of a and b under Definition 3.5. For finite
// operands a horizon covering both operands makes the check exact.
func IsConcatenationOf(w, a, b Word, horizon uint64) bool {
	want := Concat(a, b)
	for i := uint64(0); i < horizon; i++ {
		lw, lwant := w.Length(), want.Length()
		wDone := !lw.Omega && i >= lw.N
		wantDone := !lwant.Omega && i >= lwant.N
		if wDone != wantDone {
			return false
		}
		if wDone {
			return true
		}
		if w.At(i) != want.At(i) {
			return false
		}
	}
	return true
}

// MergeMany concatenates a countably infinite family of timed words
// stream(0), stream(1), … under Definition 3.5, generalising the binary
// merge: elements are ordered by arrival time, with lower stream index
// winning ties (the generalisation of item 3), and each stream consumed left
// to right (item 2).
//
// The family must satisfy the condition Lemma 5.1 isolates for the periodic
// query construction: the first timestamp of stream(k) is non-decreasing in
// k and unbounded. Then only finitely many streams contribute below any
// time bound, every output position is determined after opening finitely
// many streams, and — when each stream is itself monotone — the result is a
// timed ω-word. This is exactly how the paper assembles the periodic-query
// word pq = aq_{[q,s1,t]}·aq_{[q,s2,t+tp]}·… (§5.1.3) and the network trace
// w_{n,ω} = h_1…h_n·m_{u1}·r_{u1}·… (§5.2.4).
func MergeMany(stream func(k uint64) Word) Word {
	type cursor struct {
		k   uint64
		w   Word
		len Length
		idx uint64
		cur TimedSym
	}
	var open []*cursor
	nextK := uint64(0)
	var nextFirst TimedSym
	nextAvail := false // whether stream(nextK) has been probed

	probeNext := func() {
		for {
			w := stream(nextK)
			l := w.Length()
			if !l.Omega && l.N == 0 {
				// Empty stream: skip it entirely.
				nextK++
				continue
			}
			nextFirst = w.At(0)
			nextAvail = true
			return
		}
	}
	openStream := func() {
		w := stream(nextK)
		open = append(open, &cursor{k: nextK, w: w, len: w.Length(), cur: nextFirst})
		nextK++
		nextAvail = false
	}

	return Sequential(func() TimedSym {
		for {
			if !nextAvail {
				probeNext()
			}
			// Current best among open cursors: minimal (time, k).
			var best *cursor
			for _, c := range open {
				if best == nil || c.cur.At < best.cur.At || (c.cur.At == best.cur.At && c.k < best.k) {
					best = c
				}
			}
			// Open further streams whose first element would arrive no
			// later than the current best (or if nothing is open yet).
			if best == nil || nextFirst.At <= best.cur.At {
				openStream()
				continue
			}
			out := best.cur
			best.idx++
			if best.len.Omega || best.idx < best.len.N {
				best.cur = best.w.At(best.idx)
			} else {
				// Stream exhausted: drop the cursor.
				for i, c := range open {
					if c == best {
						open = append(open[:i], open[i+1:]...)
						break
					}
				}
			}
			return out
		}
	})
}

// Repeat returns the ω-word obtained by repeating the finite word w with its
// timestamps shifted by period per repetition — the k-fold self-
// concatenation of Definition 3.6 carried to infinity. The result is a
// Lasso, so acceptance on it stays decidable. Repeat requires a non-empty w
// whose span fits within period (so repetitions do not interleave); for the
// general interleaving case use MergeMany with shifted copies.
func Repeat(w Finite, period timeseq.Time) (*Lasso, error) {
	return NewLasso(nil, w, period)
}

// Shift returns a copy of the finite word w with all timestamps moved
// forward by dt.
func Shift(w Finite, dt timeseq.Time) Finite {
	out := make(Finite, len(w))
	for i, e := range w {
		e.At += dt
		out[i] = e
	}
	return out
}
