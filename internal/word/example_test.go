package word_test

import (
	"fmt"

	"rtc/internal/word"
)

// Concatenation under Definition 3.5 merges by arrival time; on ties, the
// left operand's symbols come first.
func ExampleConcat() {
	a := word.MustFinite(
		word.TimedSym{Sym: "a1", At: 0},
		word.TimedSym{Sym: "a2", At: 2},
	)
	b := word.MustFinite(
		word.TimedSym{Sym: "b1", At: 1},
		word.TimedSym{Sym: "b2", At: 2},
	)
	fmt.Println(word.Concat(a, b))
	// Output: (a1,0)(b1,1)(a2,2)(b2,2)
}

// A lasso presents an ultimately periodic timed ω-word; period 0 yields the
// classical-word embedding of §3.2, which is never well behaved.
func ExampleLasso_WellBehaved() {
	ticking := word.RepeatClassical("ab", 1)
	frozen := word.MustLasso(nil, word.FromClassical("ab", 0), 0)
	fmt.Println(ticking.WellBehaved(), frozen.WellBehaved())
	// Output: true false
}

func ExamplePrefix() {
	w := word.RepeatClassical("x", 2)
	fmt.Println(word.Prefix(w, 3))
	// Output: (x,0)(x,2)(x,4)
}
