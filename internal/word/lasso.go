package word

import (
	"errors"
	"fmt"

	"rtc/internal/timeseq"
)

// Lasso is an ultimately periodic timed ω-word u·v^ω. The k-th traversal of
// the cycle v shifts every cycle timestamp by k·Period chronons. Lassos are
// the finite presentation of ω-words on which acceptance questions (Büchi,
// Muller, and the "f infinitely often" condition of Definition 3.4) are
// exactly decidable.
type Lasso struct {
	Prefix Finite
	Cycle  Finite // must be non-empty
	// Period is the time advance per full traversal of Cycle. A Lasso is a
	// well-behaved timed word iff Period ≥ 1 (the progress condition of
	// Definition 3.1); Period 0 yields a valid but frozen — hence not well
	// behaved — timed word, such as the classical-word embedding of §3.2.
	Period timeseq.Time
}

var errEmptyCycle = errors.New("word: lasso cycle must be non-empty")

// NewLasso validates the lasso invariants:
//
//   - Cycle is non-empty;
//   - Prefix and Cycle time projections are monotone;
//   - the last prefix timestamp does not exceed the first cycle timestamp;
//   - the last cycle timestamp does not exceed first cycle timestamp+Period,
//     so consecutive traversals remain monotone.
func NewLasso(prefix, cycle Finite, period timeseq.Time) (*Lasso, error) {
	if len(cycle) == 0 {
		return nil, errEmptyCycle
	}
	if _, err := NewFinite(prefix...); err != nil {
		return nil, fmt.Errorf("word: lasso prefix: %w", err)
	}
	if _, err := NewFinite(cycle...); err != nil {
		return nil, fmt.Errorf("word: lasso cycle: %w", err)
	}
	if len(prefix) > 0 && prefix[len(prefix)-1].At > cycle[0].At {
		return nil, fmt.Errorf("word: lasso prefix ends at %d after cycle starts at %d: %w",
			prefix[len(prefix)-1].At, cycle[0].At, timeseq.ErrNotMonotone)
	}
	if cycle[len(cycle)-1].At > cycle[0].At+period {
		return nil, fmt.Errorf("word: lasso cycle spans %d..%d but period is %d: %w",
			cycle[0].At, cycle[len(cycle)-1].At, period, timeseq.ErrNotMonotone)
	}
	return &Lasso{Prefix: prefix, Cycle: cycle, Period: period}, nil
}

// MustLasso is NewLasso for statically known lassos; it panics on invalid
// input.
func MustLasso(prefix, cycle Finite, period timeseq.Time) *Lasso {
	l, err := NewLasso(prefix, cycle, period)
	if err != nil {
		panic(err)
	}
	return l
}

// At implements Word.
func (l *Lasso) At(i uint64) TimedSym {
	if i < uint64(len(l.Prefix)) {
		return l.Prefix[i]
	}
	i -= uint64(len(l.Prefix))
	k := i / uint64(len(l.Cycle))
	j := i % uint64(len(l.Cycle))
	e := l.Cycle[j]
	e.At += timeseq.Time(k) * l.Period
	return e
}

// Length implements Word; a lasso always has length ω.
func (l *Lasso) Length() Length { return OmegaLen }

// WellBehaved reports — exactly — whether l is a well-behaved timed ω-word:
// the progress condition holds iff the clock advances by at least one
// chronon per cycle traversal.
func (l *Lasso) WellBehaved() bool { return l.Period >= 1 }

// CycleStart returns the index of the first element of the first cycle
// traversal.
func (l *Lasso) CycleStart() uint64 { return uint64(len(l.Prefix)) }

// CycleLen returns the number of elements per cycle traversal.
func (l *Lasso) CycleLen() uint64 { return uint64(len(l.Cycle)) }

// CountInCycle returns how many elements of one cycle traversal carry the
// given symbol. Under Definition 3.4 a lasso input is accepted by an
// acceptor that eventually echoes the cycle iff the designated symbol recurs
// in the cycle, so this count decides "infinitely many occurrences".
func (l *Lasso) CountInCycle(s Symbol) int {
	n := 0
	for _, e := range l.Cycle {
		if e.Sym == s {
			n++
		}
	}
	return n
}

// String renders the lasso as prefix(cycle)^ω[+period].
func (l *Lasso) String() string {
	return fmt.Sprintf("%s(%s)^ω+%d", l.Prefix, l.Cycle, l.Period)
}

// RepeatClassical builds the lasso embedding of the ω-word (syms)^ω where
// every symbol of the i-th repetition arrives at time i·period (one
// traversal per period chronons). With period ≥ 1 the result is well
// behaved.
func RepeatClassical(syms string, period timeseq.Time) *Lasso {
	cyc := FromClassical(syms, 0)
	return MustLasso(nil, cyc, period)
}
