package word

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rtc/internal/timeseq"
)

func TestConcatFiniteBasic(t *testing.T) {
	a := MustFinite(ts("a1", 0), ts("a2", 2), ts("a3", 4))
	b := MustFinite(ts("b1", 1), ts("b2", 2), ts("b3", 5))
	got := Concat(a, b).(Finite)
	want := Finite{
		ts("a1", 0), ts("b1", 1),
		ts("a2", 2), // item 3: a wins the tie at time 2
		ts("b2", 2),
		ts("a3", 4), ts("b3", 5),
	}
	if !Equal(got, want) {
		t.Fatalf("Concat = %v, want %v", got, want)
	}
}

// Item 3 of Definition 3.5: on equal arrival times, the left operand's
// symbol precedes.
func TestConcatTieBreak(t *testing.T) {
	a := MustFinite(ts("x", 5))
	b := MustFinite(ts("y", 5))
	got := Concat(a, b).(Finite)
	if got[0].Sym != "x" || got[1].Sym != "y" {
		t.Fatalf("tie broken wrong: %v", got)
	}
	// And reversed operands reverse the order.
	got = Concat(b, a).(Finite)
	if got[0].Sym != "y" || got[1].Sym != "x" {
		t.Fatalf("reverse tie broken wrong: %v", got)
	}
}

// Item 2 of Definition 3.5: equal-timestamp blocks within one operand stay
// contiguous and ordered.
func TestConcatPreservesBlocks(t *testing.T) {
	a := MustFinite(ts("a1", 3), ts("a2", 3), ts("a3", 3))
	b := MustFinite(ts("b1", 3), ts("b2", 3))
	got := Concat(a, b).(Finite)
	want := Finite{ts("a1", 3), ts("a2", 3), ts("a3", 3), ts("b1", 3), ts("b2", 3)}
	if !Equal(got, want) {
		t.Fatalf("Concat = %v, want %v", got, want)
	}
}

// Item 1 of Definition 3.5, as a property over random operands: the result
// is a monotone word of combined length of which both operands are
// subsequences.
func TestConcatProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := randomWord(xs, "a")
		b := randomWord(ys, "b")
		m := Concat(a, b).(Finite)
		if len(m) != len(a)+len(b) {
			return false
		}
		if !MonotoneWithin(m, uint64(len(m))) {
			return false
		}
		return IsSubsequence(a, m, uint64(len(m))) && IsSubsequence(b, m, uint64(len(m)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Concatenation under Definition 3.5 is associative; verify on random
// triples.
func TestConcatAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		a := randomWordN(rng, 6, "a")
		b := randomWordN(rng, 6, "b")
		c := randomWordN(rng, 6, "c")
		left := Concat(Concat(a, b), c).(Finite)
		right := Concat(a, Concat(b, c)).(Finite)
		if !Equal(left, right) {
			t.Fatalf("associativity broken:\n a=%v\n b=%v\n c=%v\n (ab)c=%v\n a(bc)=%v",
				a, b, c, left, right)
		}
	}
}

func TestConcatInfinite(t *testing.T) {
	a := RepeatClassical("a", 2)              // a at 0, 2, 4, ...
	b := MustFinite(ts("b1", 1), ts("b2", 3)) // interleaves
	m := Concat(a, b)                         // infinite
	got := Prefix(m, 6)
	want := Finite{ts("a", 0), ts("b1", 1), ts("a", 2), ts("b2", 3), ts("a", 4), ts("a", 6)}
	if !Equal(got, want) {
		t.Fatalf("Concat(inf, fin) prefix = %v, want %v", got, want)
	}
	if !m.Length().Omega {
		t.Error("infinite concat not infinite")
	}
}

func TestIsConcatenationOf(t *testing.T) {
	a := MustFinite(ts("a", 0), ts("a", 2))
	b := MustFinite(ts("b", 1))
	good := Finite{ts("a", 0), ts("b", 1), ts("a", 2)}
	if !IsConcatenationOf(good, a, b, 10) {
		t.Error("true concatenation rejected")
	}
	bad := Finite{ts("b", 1), ts("a", 0), ts("a", 2)}
	if IsConcatenationOf(bad, a, b, 10) {
		t.Error("false concatenation accepted")
	}
}

func TestConcatAll(t *testing.T) {
	if got := ConcatAll(); got.Length().Omega || got.Length().N != 0 {
		t.Error("empty ConcatAll not the empty word")
	}
	a := MustFinite(ts("a", 0))
	b := MustFinite(ts("b", 1))
	c := MustFinite(ts("c", 0))
	got := ConcatAll(a, b, c).(Finite)
	want := Finite{ts("a", 0), ts("c", 0), ts("b", 1)}
	if !Equal(got, want) {
		t.Fatalf("ConcatAll = %v, want %v", got, want)
	}
}

// MergeMany with shifted copies reproduces the periodic-query construction
// pattern of §5.1.3 and preserves Lemma 5.1's finiteness: every prefix is
// produced after opening finitely many streams.
func TestMergeMany(t *testing.T) {
	base := MustFinite(ts("q", 0), ts("s", 1))
	m := MergeMany(func(k uint64) Word {
		return Shift(base, timeseq.Time(3*k))
	})
	got := Prefix(m, 8)
	want := Finite{
		ts("q", 0), ts("s", 1),
		ts("q", 3), ts("s", 4),
		ts("q", 6), ts("s", 7),
		ts("q", 9), ts("s", 10),
	}
	if !Equal(got, want) {
		t.Fatalf("MergeMany prefix = %v, want %v", got, want)
	}
}

// MergeMany must interleave overlapping streams by time with lower stream
// index winning ties.
func TestMergeManyInterleaving(t *testing.T) {
	// stream k: two symbols at times k and k+2, labelled by stream.
	m := MergeMany(func(k uint64) Word {
		lbl := Symbol(string(rune('A' + k)))
		return MustFinite(TimedSym{lbl, timeseq.Time(k)}, TimedSym{lbl, timeseq.Time(k + 2)})
	})
	got := Prefix(m, 6)
	want := Finite{
		{"A", 0}, {"B", 1},
		{"A", 2}, {"C", 2}, // tie at 2: stream 0 before stream 2
		{"B", 3}, {"D", 3}, // tie at 3: stream 1 before stream 3
	}
	if !Equal(got, want) {
		t.Fatalf("MergeMany = %v, want %v", got, want)
	}
}

// MergeMany with infinite streams: each stream is itself an ω-word.
func TestMergeManyInfiniteStreams(t *testing.T) {
	m := MergeMany(func(k uint64) Word {
		lbl := Symbol(string(rune('a' + k)))
		return &Lasso{Cycle: Finite{{lbl, timeseq.Time(10 * k)}}, Period: 100}
	})
	got := Prefix(m, 5)
	want := Finite{{"a", 0}, {"b", 10}, {"c", 20}, {"d", 30}, {"e", 40}}
	if !Equal(got, want) {
		t.Fatalf("MergeMany infinite = %v, want %v", got, want)
	}
	// Deep index: the streams keep cycling with period 100.
	if e := m.At(10); e.At > 110 {
		t.Fatalf("At(10) = %v, clock ran away", e)
	}
}

func TestRepeatAndShift(t *testing.T) {
	w := MustFinite(ts("a", 0), ts("b", 1))
	l, err := Repeat(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := Prefix(l, 4)
	want := Finite{ts("a", 0), ts("b", 1), ts("a", 2), ts("b", 3)}
	if !Equal(got, want) {
		t.Fatalf("Repeat = %v, want %v", got, want)
	}
	if _, err := Repeat(MustFinite(ts("a", 0), ts("b", 5)), 2); err == nil {
		t.Error("Repeat accepted a word wider than its period")
	}
	s := Shift(w, 10)
	if s[0].At != 10 || s[1].At != 11 {
		t.Errorf("Shift = %v", s)
	}
	if w[0].At != 0 {
		t.Error("Shift mutated its input")
	}
}

// randomWord builds a monotone finite word from fuzz input by sorting the
// timestamps.
func randomWord(xs []uint8, label string) Finite {
	times := make([]timeseq.Time, len(xs))
	for i, x := range xs {
		times[i] = timeseq.Time(x % 32)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	w := make(Finite, len(times))
	for i, at := range times {
		w[i] = TimedSym{Sym: Symbol(label), At: at}
	}
	return w
}

func randomWordN(rng *rand.Rand, n int, label string) Finite {
	xs := make([]uint8, rng.Intn(n+1))
	for i := range xs {
		xs[i] = uint8(rng.Intn(256))
	}
	return randomWord(xs, label)
}
