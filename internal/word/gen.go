package word

import "sync"

// Gen is an infinite timed word defined by random access. The function must
// be pure (same i ⇒ same element) and its time projection monotone; the
// constructions of §4 and §5 of the paper (deadline words, data-accumulating
// words, database words) are all of this shape.
type Gen struct {
	F func(i uint64) TimedSym
}

// At implements Word.
func (g Gen) At(i uint64) TimedSym { return g.F(i) }

// Length implements Word; a Gen word always has length ω.
func (g Gen) Length() Length { return OmegaLen }

// memoWord caches the elements of an underlying sequential producer so that
// At supports random access. It is safe for concurrent use.
type memoWord struct {
	mu   sync.Mutex
	next func() TimedSym // produces element len(buf)
	buf  []TimedSym
}

func (m *memoWord) At(i uint64) TimedSym {
	m.mu.Lock()
	defer m.mu.Unlock()
	for uint64(len(m.buf)) <= i {
		m.buf = append(m.buf, m.next())
	}
	return m.buf[i]
}

func (m *memoWord) Length() Length { return OmegaLen }

// Sequential wraps a stateful producer (called exactly once per index, in
// order) as a random-access infinite Word.
func Sequential(next func() TimedSym) Word {
	return &memoWord{next: next}
}
