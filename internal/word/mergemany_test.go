package word

import (
	"math/rand"
	"testing"

	"rtc/internal/timeseq"
)

// Property: MergeMany's output contains every stream as a subsequence
// (item 1 of Definition 3.5, generalized), is monotone, and — below the
// padding horizon — has exactly the combined length of the finite streams.
//
// MergeMany consumes an infinite family; the trial's finite streams are
// padded with far-future infinite lassos, whose first elements mark where
// the interesting prefix ends.
func TestMergeManyProperties(t *testing.T) {
	const padAt = 100000
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nStreams := 2 + rng.Intn(4)
		streams := make([]Finite, nStreams)
		total := 0
		for k := range streams {
			n := 1 + rng.Intn(5)
			at := timeseq.Time(k * 3) // non-decreasing first times
			w := make(Finite, 0, n)
			for i := 0; i < n; i++ {
				at += timeseq.Time(rng.Intn(4))
				w = append(w, TimedSym{Sym: Symbol(rune('A' + k)), At: at})
			}
			streams[k] = w
			total += n
		}
		m := MergeMany(func(k uint64) Word {
			if int(k) < nStreams {
				return streams[k]
			}
			return MustLasso(nil, Finite{{Sym: "pad", At: padAt + timeseq.Time(k)}}, 1)
		})
		p := Prefix(m, uint64(total)+1)
		if len(p) != total+1 {
			t.Fatalf("trial %d: prefix length %d", trial, len(p))
		}
		if p[total].At < padAt {
			t.Fatalf("trial %d: element %d should be padding, got %v", trial, total, p[total])
		}
		body := p[:total]
		if !MonotoneWithin(body, uint64(total)) {
			t.Fatalf("trial %d: merged body not monotone: %v", trial, body)
		}
		for k, s := range streams {
			if !IsSubsequence(s, body, uint64(total)) {
				t.Fatalf("trial %d: stream %d (%v) not a subsequence of %v", trial, k, s, body)
			}
		}
	}
}

// Ties across streams resolve to the lower stream index, and elements of
// one stream never reorder.
func TestMergeManyStability(t *testing.T) {
	streams := []Finite{
		{{Sym: "a1", At: 5}, {Sym: "a2", At: 5}},
		{{Sym: "b1", At: 5}},
	}
	m := MergeMany(func(k uint64) Word {
		if int(k) < len(streams) {
			return streams[k]
		}
		return MustLasso(nil, Finite{{Sym: "pad", At: 1000 + timeseq.Time(k)}}, 1)
	})
	p := Prefix(m, 3)
	want := []Symbol{"a1", "a2", "b1"}
	for i, s := range want {
		if p[i].Sym != s {
			t.Fatalf("merged = %v, want order %v", p, want)
		}
	}
}
