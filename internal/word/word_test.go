package word

import (
	"errors"
	"testing"

	"rtc/internal/timeseq"
)

func ts(sym string, at timeseq.Time) TimedSym {
	return TimedSym{Sym: Symbol(sym), At: at}
}

func TestNewFiniteValidation(t *testing.T) {
	if _, err := NewFinite(ts("a", 0), ts("b", 1), ts("c", 1)); err != nil {
		t.Fatalf("monotone word rejected: %v", err)
	}
	_, err := NewFinite(ts("a", 2), ts("b", 1))
	if !errors.Is(err, timeseq.ErrNotMonotone) {
		t.Fatalf("non-monotone word accepted: %v", err)
	}
}

func TestFromClassicalEmbedding(t *testing.T) {
	w := FromClassical("abc", 0)
	if len(w) != 3 {
		t.Fatalf("length = %d", len(w))
	}
	for i, want := range []Symbol{"a", "b", "c"} {
		if w[i].Sym != want || w[i].At != 0 {
			t.Fatalf("element %d = %v", i, w[i])
		}
	}
	// §3.2: the classical embedding is never well behaved.
	if WellBehavedWithin(w, 10) {
		t.Error("finite classical embedding claimed well behaved")
	}
}

func TestPrefixAndPrefixUntil(t *testing.T) {
	w := MustFinite(ts("a", 0), ts("b", 1), ts("c", 3), ts("d", 3), ts("e", 7))
	p := Prefix(w, 3)
	if !Equal(p, MustFinite(ts("a", 0), ts("b", 1), ts("c", 3))) {
		t.Errorf("Prefix = %v", p)
	}
	if got := Prefix(w, 100); len(got) != 5 {
		t.Errorf("over-long prefix length = %d", len(got))
	}
	u := PrefixUntil(w, 3, 100)
	if !Equal(u, MustFinite(ts("a", 0), ts("b", 1), ts("c", 3), ts("d", 3))) {
		t.Errorf("PrefixUntil(3) = %v", u)
	}
	if got := PrefixUntil(w, 0, 100); len(got) != 1 {
		t.Errorf("PrefixUntil(0) length = %d", len(got))
	}
}

func TestIsSubsequence(t *testing.T) {
	w := MustFinite(ts("a", 0), ts("b", 1), ts("a", 1), ts("c", 3))
	for _, sub := range []Finite{
		nil,
		{ts("a", 0)},
		{ts("b", 1), ts("c", 3)},
		{ts("a", 0), ts("a", 1)},
	} {
		if !IsSubsequence(sub, w, 100) {
			t.Errorf("%v should embed into %v", sub, w)
		}
	}
	for _, sub := range []Finite{
		{ts("a", 2)},
		{ts("c", 3), ts("a", 0)},
		{ts("b", 1), ts("b", 1)},
	} {
		if IsSubsequence(sub, w, 100) {
			t.Errorf("%v should NOT embed into %v", sub, w)
		}
	}
}

func TestLassoIndexing(t *testing.T) {
	// prefix: (p,0); cycle: (x,1)(y,2) with period 2.
	l := MustLasso(Finite{ts("p", 0)}, Finite{ts("x", 1), ts("y", 2)}, 2)
	want := Finite{
		ts("p", 0),
		ts("x", 1), ts("y", 2),
		ts("x", 3), ts("y", 4),
		ts("x", 5), ts("y", 6),
	}
	got := Prefix(l, 7)
	if !Equal(got, want) {
		t.Fatalf("lasso prefix = %v, want %v", got, want)
	}
	if !l.Length().Omega {
		t.Error("lasso not infinite")
	}
	if !l.WellBehaved() {
		t.Error("period-2 lasso should be well behaved")
	}
}

func TestLassoValidation(t *testing.T) {
	if _, err := NewLasso(nil, nil, 1); err == nil {
		t.Error("empty cycle accepted")
	}
	// Prefix ends after cycle starts.
	if _, err := NewLasso(Finite{ts("p", 5)}, Finite{ts("x", 1)}, 1); err == nil {
		t.Error("prefix/cycle overlap accepted")
	}
	// Cycle spans more than one period.
	if _, err := NewLasso(nil, Finite{ts("x", 0), ts("y", 5)}, 2); err == nil {
		t.Error("over-wide cycle accepted")
	}
}

func TestLassoFrozenNotWellBehaved(t *testing.T) {
	l := MustLasso(nil, Finite{ts("a", 0)}, 0)
	if l.WellBehaved() {
		t.Error("period-0 lasso claimed well behaved")
	}
	if WellBehavedWithin(l, 64) {
		t.Error("frozen lasso passes the horizon check")
	}
}

func TestCountInCycle(t *testing.T) {
	l := MustLasso(nil, Finite{ts("f", 0), ts("w", 0), ts("f", 1)}, 1)
	if got := l.CountInCycle("f"); got != 2 {
		t.Errorf("CountInCycle(f) = %d", got)
	}
	if got := l.CountInCycle("z"); got != 0 {
		t.Errorf("CountInCycle(z) = %d", got)
	}
}

func TestRepeatClassical(t *testing.T) {
	l := RepeatClassical("ab", 1)
	got := Prefix(l, 5)
	want := Finite{ts("a", 0), ts("b", 0), ts("a", 1), ts("b", 1), ts("a", 2)}
	if !Equal(got, want) {
		t.Fatalf("RepeatClassical prefix = %v, want %v", got, want)
	}
}

func TestSequentialMemoization(t *testing.T) {
	calls := 0
	w := Sequential(func() TimedSym {
		e := ts("x", timeseq.Time(calls))
		calls++
		return e
	})
	if w.At(3).At != 3 {
		t.Fatalf("At(3) = %v", w.At(3))
	}
	if w.At(1).At != 1 { // must come from the memo, not a fresh call
		t.Fatalf("At(1) = %v", w.At(1))
	}
	if calls != 4 {
		t.Fatalf("producer called %d times, want 4", calls)
	}
}

func TestGenWord(t *testing.T) {
	g := Gen{F: func(i uint64) TimedSym { return ts("g", timeseq.Time(2*i)) }}
	if !g.Length().Omega {
		t.Error("Gen not infinite")
	}
	if !WellBehavedWithin(g, 50) {
		t.Error("advancing Gen fails the horizon check")
	}
	if g.At(5) != ts("g", 10) {
		t.Errorf("At(5) = %v", g.At(5))
	}
}

func TestMonotoneWithin(t *testing.T) {
	good := Gen{F: func(i uint64) TimedSym { return ts("x", timeseq.Time(i)) }}
	if !MonotoneWithin(good, 100) {
		t.Error("monotone Gen rejected")
	}
	bad := Gen{F: func(i uint64) TimedSym {
		if i == 7 {
			return ts("x", 0)
		}
		return ts("x", timeseq.Time(i))
	}}
	if MonotoneWithin(bad, 100) {
		t.Error("non-monotone Gen accepted")
	}
}
