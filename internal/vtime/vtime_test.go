package vtime

import (
	"testing"

	"rtc/internal/timeseq"
)

func TestOrderingByTime(t *testing.T) {
	s := New()
	var got []int
	s.At(5, 0, func() { got = append(got, 5) })
	s.At(1, 0, func() { got = append(got, 1) })
	s.At(3, 0, func() { got = append(got, 3) })
	s.Drain()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != 5 {
		t.Errorf("Now = %d", s.Now())
	}
}

func TestOrderingByPriorityThenSeq(t *testing.T) {
	s := New()
	var got []string
	s.At(2, 1, func() { got = append(got, "p1-first") })
	s.At(2, 0, func() { got = append(got, "p0") })
	s.At(2, 1, func() { got = append(got, "p1-second") })
	s.Drain()
	want := []string{"p0", "p1-first", "p1-second"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSchedulingFromHandler(t *testing.T) {
	s := New()
	var got []timeseq.Time
	s.At(1, 0, func() {
		got = append(got, s.Now())
		s.After(2, 0, func() { got = append(got, s.Now()) })
	})
	s.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, 0, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on past scheduling")
		}
	}()
	s.At(1, 0, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, 0, func() { fired++ })
	s.At(10, 0, func() { fired++ })
	s.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %d, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.RunUntil(10)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var at []timeseq.Time
	cancel := s.Every(2, 3, 0, func() { at = append(at, s.Now()) })
	s.RunUntil(11)
	cancel()
	s.RunUntil(100)
	want := []timeseq.Time{2, 5, 8, 11}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

func TestStepEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty scheduler returned true")
	}
}
