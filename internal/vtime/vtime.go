// Package vtime is a deterministic discrete virtual-time kernel shared by
// the simulators in this repository (the real-time algorithm runtime, the
// real-time database, the ad hoc network). Time is the discrete chronon
// scale of Definition 3.1; events fire in (time, priority, insertion order)
// order, so every simulation is reproducible.
package vtime

import (
	"container/heap"

	"rtc/internal/timeseq"
)

// Scheduler is a virtual-time event queue. The zero value is not usable;
// call New.
type Scheduler struct {
	now   timeseq.Time
	queue eventHeap
	seq   uint64
}

// New returns a scheduler at time 0.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() timeseq.Time { return s.now }

// At schedules fn at absolute time t with the given priority (lower fires
// first among same-time events). Scheduling in the past panics: virtual time
// never rewinds.
func (s *Scheduler) At(t timeseq.Time, priority int, fn func()) {
	if t < s.now {
		panic("vtime: scheduling into the past")
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, priority: priority, seq: s.seq, fn: fn})
}

// After schedules fn d chronons from now.
func (s *Scheduler) After(d timeseq.Time, priority int, fn func()) {
	s.At(s.now+d, priority, fn)
}

// Every schedules fn at start, start+period, start+2·period, … until the
// scheduler is drained or the returned cancel function is called.
func (s *Scheduler) Every(start, period timeseq.Time, priority int, fn func()) (cancel func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		s.After(period, priority, tick)
	}
	s.At(start, priority, tick)
	return func() { stopped = true }
}

// Step fires the next event, advancing time to it. It reports false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil fires every event scheduled strictly before or at limit, then
// sets the clock to limit. Events scheduled by handlers are honoured if they
// fall within the limit.
func (s *Scheduler) RunUntil(limit timeseq.Time) {
	for s.queue.Len() > 0 && s.queue[0].at <= limit {
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// Drain fires events until the queue is empty. Callers must ensure the event
// set is finite (e.g. cancel recurring events), or bound execution with
// RunUntil instead.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

type event struct {
	at       timeseq.Time
	priority int
	seq      uint64
	fn       func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
