// Package runner executes protocol × scenario matrices of §5.2 ad hoc
// network simulations concurrently. Each scenario builds its own isolated
// Network (no shared state between cells), a fixed worker pool sized to the
// host's CPUs drains the matrix, and results come back in the scenarios'
// input order regardless of completion order — so a parallel sweep is a
// drop-in replacement for the sequential loop it speeds up. A panicking
// protocol fails only its own scenario: the panic is recovered in the
// worker and reported in the scenario's Result.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"rtc/internal/adhoc"
	"rtc/internal/timeseq"
)

// Scenario is one cell of a simulation matrix. Build must return a fresh
// Network owned exclusively by this scenario — the runner calls it inside a
// worker and never shares the result across goroutines.
type Scenario struct {
	Name    string
	Horizon timeseq.Time
	// Build constructs the isolated network (nodes, protocol instances,
	// workload all injected).
	Build func() *adhoc.Network
	// Post, if non-nil, runs in the worker after the simulation finishes —
	// e.g. R_{n,u} route validation. Its error is reported in the Result.
	Post func(*adhoc.Network) error
}

// Result is the outcome of one scenario.
type Result struct {
	Index   int    // position in the input slice
	Name    string // Scenario.Name
	Net     *adhoc.Network
	Summary adhoc.Summary
	// Err is non-nil when Post failed or the scenario panicked; in the
	// panic case Net and Summary may be zero.
	Err error
}

// PanicError wraps a recovered panic from Build, Run, or Post.
type PanicError struct {
	Scenario string
	Value    any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scenario %q panicked: %v", e.Scenario, e.Value)
}

// Run executes every scenario on a pool of workers (workers <= 0 means
// runtime.NumCPU()) and returns results indexed identically to the input:
// results[i] is scenarios[i]'s outcome, whatever order cells finished in.
func Run(scenarios []Scenario, workers int) []Result {
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers == 1 {
		for i := range scenarios {
			results[i] = runOne(i, scenarios[i])
		}
		return results
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(i, scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne builds, runs, and post-processes a single scenario, converting a
// panic anywhere in that pipeline into the scenario's own error so one bad
// protocol cannot take down the rest of the matrix.
func runOne(i int, s Scenario) (res Result) {
	res = Result{Index: i, Name: s.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Err = &PanicError{Scenario: s.Name, Value: r}
		}
	}()
	net := s.Build()
	net.Run(s.Horizon)
	res.Net = net
	res.Summary = adhoc.Summarize(s.Name, net)
	if s.Post != nil {
		res.Err = s.Post(net)
	}
	return res
}

// Leaderboard collects the summaries of the scenarios that completed
// without error, in input order.
func Leaderboard(results []Result) adhoc.Leaderboard {
	var out adhoc.Leaderboard
	for _, r := range results {
		if r.Err == nil && r.Net != nil {
			out = append(out, r.Summary)
		}
	}
	return out
}
