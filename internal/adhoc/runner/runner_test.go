package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"rtc/internal/adhoc"
	"rtc/internal/timeseq"
)

// buildScenario returns a small flooding scenario with a seed-dependent
// topology and workload, isolated per call.
func buildScenario(name string, seed int64) Scenario {
	return Scenario{
		Name:    name,
		Horizon: 150,
		Build: func() *adhoc.Network {
			nodes := make([]*adhoc.Node, 12)
			for i := range nodes {
				nodes[i] = &adhoc.Node{
					ID:    i + 1,
					Mob:   adhoc.NewWaypoint(seed*100+int64(i), 100, 100, 1.5, 30),
					Range: 45,
					Proto: &adhoc.Flooding{},
				}
			}
			net := adhoc.NewNetwork(nodes)
			for id := uint64(1); id <= 8; id++ {
				net.Inject(adhoc.Message{
					ID: id, Src: int(id)%12 + 1, Dst: int(id*5)%12 + 1,
					At: timeseq.Time(10 + id*10), Payload: "b",
				})
			}
			return net
		},
	}
}

// panicProto panics inside OnTick on its trigger chronon.
type panicProto struct{ at timeseq.Time }

func (p *panicProto) Init(*adhoc.API) {}
func (p *panicProto) OnTick(a *adhoc.API) {
	if a.Now() >= p.at {
		panic("deliberate protocol failure")
	}
}
func (p *panicProto) OnPacket(*adhoc.API, *adhoc.Packet)   {}
func (p *panicProto) Originate(*adhoc.API, adhoc.Message) {}

// TestGridBackedMatrix drives the parallel runner over grid-backed
// networks under -race (the CI race step selects tests by the TestGrid
// prefix): every worker builds, steps, and summarizes its own Network, so
// any accidental sharing of cache or grid state across scenarios would
// trip the detector here.
func TestGridBackedMatrix(t *testing.T) {
	scenarios := make([]Scenario, 8)
	for i := range scenarios {
		scenarios[i] = buildScenario(fmt.Sprintf("cell-%d", i), int64(i+1))
	}
	results := Run(scenarios, runtime.NumCPU())
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %d failed: %v", i, r.Err)
		}
		if r.Index != i || r.Name != scenarios[i].Name {
			t.Fatalf("result %d misplaced: index %d name %q", i, r.Index, r.Name)
		}
		if r.Net == nil || r.Net.Metrics().Sent == 0 {
			t.Fatalf("scenario %d: no traffic simulated", i)
		}
	}
}

// TestRunnerDeterministicOrder demands bit-identical summaries from a
// serial run and two parallel runs: the pool must affect scheduling only,
// never results or their order.
func TestRunnerDeterministicOrder(t *testing.T) {
	mk := func() []Scenario {
		scenarios := make([]Scenario, 6)
		for i := range scenarios {
			scenarios[i] = buildScenario(fmt.Sprintf("cell-%d", i), int64(i+1))
		}
		return scenarios
	}
	summaries := func(results []Result) []adhoc.Summary {
		out := make([]adhoc.Summary, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("scenario %q failed: %v", r.Name, r.Err)
			}
			out[i] = r.Summary
		}
		return out
	}
	serial := summaries(Run(mk(), 1))
	par1 := summaries(Run(mk(), 4))
	par2 := summaries(Run(mk(), 4))
	if !reflect.DeepEqual(serial, par1) || !reflect.DeepEqual(par1, par2) {
		t.Fatalf("runs diverge:\n serial: %v\n par1:   %v\n par2:   %v", serial, par1, par2)
	}
}

// TestRunnerPanicIsolation plants a deliberately panicking protocol in the
// middle of a matrix: its scenario must report a PanicError while every
// other scenario completes normally.
func TestRunnerPanicIsolation(t *testing.T) {
	scenarios := []Scenario{
		buildScenario("ok-0", 1),
		{
			Name:    "boom",
			Horizon: 100,
			Build: func() *adhoc.Network {
				return adhoc.NewNetwork([]*adhoc.Node{
					{ID: 1, Mob: adhoc.Static{X: 0, Y: 0}, Range: 10, Proto: &panicProto{at: 5}},
					{ID: 2, Mob: adhoc.Static{X: 5, Y: 0}, Range: 10, Proto: &adhoc.Flooding{}},
				})
			},
		},
		buildScenario("ok-2", 2),
	}
	results := Run(scenarios, 3)
	if results[1].Err == nil {
		t.Fatal("panicking scenario reported no error")
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("want PanicError, got %T: %v", results[1].Err, results[1].Err)
	}
	if pe.Scenario != "boom" {
		t.Fatalf("PanicError names %q, want \"boom\"", pe.Scenario)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("healthy scenario %q poisoned by neighbor's panic: %v", results[i].Name, results[i].Err)
		}
		if results[i].Net == nil {
			t.Fatalf("healthy scenario %q missing its network", results[i].Name)
		}
	}
	board := Leaderboard(results)
	if len(board) != 2 {
		t.Fatalf("leaderboard has %d entries, want 2 (panicked cell excluded)", len(board))
	}
}

// TestRunnerPostError routes a Post-hook failure into the cell's Result
// without disturbing its Net or Summary.
func TestRunnerPostError(t *testing.T) {
	wantErr := errors.New("route validation failed")
	s := buildScenario("cell", 1)
	s.Post = func(*adhoc.Network) error { return wantErr }
	results := Run([]Scenario{s}, 1)
	if !errors.Is(results[0].Err, wantErr) {
		t.Fatalf("Post error not propagated: %v", results[0].Err)
	}
	if results[0].Net == nil {
		t.Fatal("Post error must not discard the completed network")
	}
}

// TestRunnerEmptyAndOversubscribed covers the edges: an empty matrix and
// more workers than scenarios.
func TestRunnerEmptyAndOversubscribed(t *testing.T) {
	if got := Run(nil, 4); len(got) != 0 {
		t.Fatalf("empty matrix returned %d results", len(got))
	}
	results := Run([]Scenario{buildScenario("only", 1)}, 64)
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("oversubscribed run failed: %+v", results)
	}
}
