package adhoc

import "fmt"

// §5.2.4: "two routing algorithms may be compared by comparing their
// corresponding words from R_{n,u}. Moreover, more than one measure of
// performance may be considered." RouteComparison puts the three adopted
// measures of two runs of the same scenario side by side.
type RouteComparison struct {
	A, B Summary
}

// Summary condenses one run.
type Summary struct {
	Name          string
	DeliveryRatio float64
	Overhead      int
	ExcessHops    float64
}

// Summarize condenses a network run under a label.
func Summarize(name string, net *Network) Summary {
	m := net.Metrics()
	return Summary{
		Name:          name,
		DeliveryRatio: m.DeliveryRatio(),
		Overhead:      m.Overhead(),
		ExcessHops:    m.PathOptimality(),
	}
}

// Compare pairs two run summaries.
func Compare(a, b Summary) RouteComparison { return RouteComparison{A: a, B: b} }

// BetterDelivery names the run with the higher delivery ratio ("" on tie).
func (c RouteComparison) BetterDelivery() string {
	switch {
	case c.A.DeliveryRatio > c.B.DeliveryRatio:
		return c.A.Name
	case c.B.DeliveryRatio > c.A.DeliveryRatio:
		return c.B.Name
	default:
		return ""
	}
}

// CheaperOverhead names the run with the lower routing overhead f+g.
func (c RouteComparison) CheaperOverhead() string {
	switch {
	case c.A.Overhead < c.B.Overhead:
		return c.A.Name
	case c.B.Overhead < c.A.Overhead:
		return c.B.Name
	default:
		return ""
	}
}

// String renders the comparison.
func (c RouteComparison) String() string {
	return fmt.Sprintf("%s: delivery %.2f overhead %d excess %.2f | %s: delivery %.2f overhead %d excess %.2f",
		c.A.Name, c.A.DeliveryRatio, c.A.Overhead, c.A.ExcessHops,
		c.B.Name, c.B.DeliveryRatio, c.B.Overhead, c.B.ExcessHops)
}

// Leaderboard generalizes the pairwise comparison to a whole matrix of
// runs: "more than one measure of performance may be considered" (§5.2.4),
// so each measure gets its own winner.
type Leaderboard []Summary

// BestDelivery names the run with the highest delivery ratio (first wins on
// ties; "" when empty).
func (l Leaderboard) BestDelivery() string {
	best := ""
	var v float64
	for _, s := range l {
		if best == "" || s.DeliveryRatio > v {
			best, v = s.Name, s.DeliveryRatio
		}
	}
	return best
}

// CheapestOverhead names the run with the lowest routing overhead f+g.
func (l Leaderboard) CheapestOverhead() string {
	best := ""
	var v int
	for _, s := range l {
		if best == "" || s.Overhead < v {
			best, v = s.Name, s.Overhead
		}
	}
	return best
}

// String renders one line per run.
func (l Leaderboard) String() string {
	out := ""
	for _, s := range l {
		out += fmt.Sprintf("%-12s delivery %.2f overhead %d excess %.2f\n",
			s.Name, s.DeliveryRatio, s.Overhead, s.ExcessHops)
	}
	return out
}
