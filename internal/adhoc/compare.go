package adhoc

import "fmt"

// §5.2.4: "two routing algorithms may be compared by comparing their
// corresponding words from R_{n,u}. Moreover, more than one measure of
// performance may be considered." RouteComparison puts the three adopted
// measures of two runs of the same scenario side by side.
type RouteComparison struct {
	A, B Summary
}

// Summary condenses one run.
type Summary struct {
	Name          string
	DeliveryRatio float64
	Overhead      int
	ExcessHops    float64
}

// Summarize condenses a network run under a label.
func Summarize(name string, net *Network) Summary {
	m := net.Metrics()
	return Summary{
		Name:          name,
		DeliveryRatio: m.DeliveryRatio(),
		Overhead:      m.Overhead(),
		ExcessHops:    m.PathOptimality(),
	}
}

// Compare pairs two run summaries.
func Compare(a, b Summary) RouteComparison { return RouteComparison{A: a, B: b} }

// BetterDelivery names the run with the higher delivery ratio ("" on tie).
func (c RouteComparison) BetterDelivery() string {
	switch {
	case c.A.DeliveryRatio > c.B.DeliveryRatio:
		return c.A.Name
	case c.B.DeliveryRatio > c.A.DeliveryRatio:
		return c.B.Name
	default:
		return ""
	}
}

// CheaperOverhead names the run with the lower routing overhead f+g.
func (c RouteComparison) CheaperOverhead() string {
	switch {
	case c.A.Overhead < c.B.Overhead:
		return c.A.Name
	case c.B.Overhead < c.A.Overhead:
		return c.B.Name
	default:
		return ""
	}
}

// String renders the comparison.
func (c RouteComparison) String() string {
	return fmt.Sprintf("%s: delivery %.2f overhead %d excess %.2f | %s: delivery %.2f overhead %d excess %.2f",
		c.A.Name, c.A.DeliveryRatio, c.A.Overhead, c.A.ExcessHops,
		c.B.Name, c.B.DeliveryRatio, c.B.Overhead, c.B.ExcessHops)
}
