package adhoc

import (
	"fmt"
	"sort"

	"rtc/internal/timeseq"
)

// Broadcast is the link-layer address reaching every node in range.
const Broadcast = -1

// TraceMode selects which link-layer events a run's Trace records. Metrics
// counters are unaffected: they are maintained in either mode.
type TraceMode uint8

const (
	// TraceAll records every one-hop send and receive — the full event set
	// the §5.2 word constructions (EventsWord, RoutingWord, H_i) need.
	TraceAll TraceMode = iota
	// TraceData records only data packets (plus all originations and
	// deliveries). That is exactly what R_{n,u} route validation
	// (CheckRoute) and the R′ delivery-ratio measures consume; dropping
	// control-packet events takes the trace out of the simulator's hot
	// path for beacon-heavy protocols.
	TraceData
)

// Packet is one one-hop transmission. Data packets carry the end-to-end
// message identity; control packets (beacons, route requests/replies) are
// the rt_1 … rt_g messages of §5.2.4 ("exchanged between nodes in the
// routing process, for example when the routing tables are built/updated").
type Packet struct {
	Kind string // "data", or a protocol control kind

	From, To int // link layer: sender and receiver (To may be Broadcast)
	Src, Dst int // network layer: originator and final destination

	MsgID      uint64 // end-to-end message id (data packets)
	OriginTime timeseq.Time
	Hops       int
	TTL        int

	Route    []int // DSR: accumulated / source route
	RouteIdx int
	Table    []RouteAd // DSDV: advertised routes
	Pos      Pos       // DREAM: advertised position
	Seq      uint64    // beacon / request sequence number
	Payload  string    // message body b_u (opaque, per §5.2.3)
}

// RouteAd is one advertised route of a distance-vector beacon.
type RouteAd struct {
	Dst  int
	Hops int
	Seq  uint64
}

// cloneRoute copies a route slice (packets are value-copied on send but
// slices would alias).
func cloneRoute(r []int) []int {
	if r == nil {
		return nil
	}
	return append([]int{}, r...)
}

// Message is one end-to-end workload message u: generated at At by Src for
// Dst, with body Payload (§5.2.3).
type Message struct {
	ID      uint64
	Src     int
	Dst     int
	At      timeseq.Time
	Payload string
}

// API is the capability surface a protocol instance sees: its identity,
// clock, own position (a node knows its current position, after [11]), and
// the one-hop send primitive. A node is otherwise unaware of the rest of
// the network — the locality §5.2.5 insists on.
type API struct {
	net  *Network
	id   int
	sent int // sends this tick, to enforce the bounded-rate assumption
}

// ID returns the node label.
func (a *API) ID() int { return a.id }

// Now returns the current time.
func (a *API) Now() timeseq.Time { return a.net.now }

// NumNodes returns n (node labels are 1..n, as in §5.2.2).
func (a *API) NumNodes() int { return len(a.net.nodes) }

// Pos returns the node's own current position.
func (a *API) Pos() Pos { return a.net.pos(a.id, a.net.now) }

// Send queues a one-hop transmission; it is delivered one chronon later to
// the nodes in range at send time. Each node may send at most SendCap
// packets per chronon (the bounded-rate assumption that keeps w_{n,ω} well
// behaved, §5.2.4).
func (a *API) Send(p Packet) bool {
	if a.sent >= a.net.SendCap {
		a.net.metrics.SendCapHits++
		return false
	}
	a.sent++
	p.From = a.id
	p.Route = cloneRoute(p.Route)
	a.net.transmit(p)
	return true
}

// Deliver reports end-to-end arrival of a data message at its destination.
func (a *API) Deliver(p *Packet) {
	a.net.deliver(a.id, p)
}

// Protocol is one node's routing algorithm. The network calls Init once,
// then per chronon OnTick (timers/beacons), OnPacket for every delivered
// packet, and Originate when the workload makes this node the source of a
// new message.
type Protocol interface {
	Init(api *API)
	OnTick(api *API)
	OnPacket(api *API, p *Packet)
	Originate(api *API, m Message)
}

// Node couples identity, mobility, radio range (part of the invariant
// characteristics q_i of §5.2.2) and the protocol instance.
type Node struct {
	ID    int // 1..n
	Mob   Mobility
	Range float64
	Proto Protocol
}

// Network is the discrete-time simulator.
type Network struct {
	nodes    map[int]*Node
	order    []int       // node ids, sorted, for deterministic iteration
	idx      map[int]int // id → dense index into order and the caches
	nodeList []*Node     // dense, parallel to order (hot loops skip the map)
	apiList  []*API      // dense, parallel to order
	now      timeseq.Time
	inflight []Packet // sent at now, delivered at now+1
	spare    []Packet // last chronon's inflight backing array, recycled
	apis     map[int]*API
	trace    *Trace
	metrics  Metrics
	workload []Message
	wlHead   int // index of the first pending workload message
	downAt   map[int]timeseq.Time
	// SendCap bounds per-node transmissions per chronon.
	SendCap int
	// TraceMode selects the trace granularity (TraceAll by default).
	TraceMode TraceMode
	// BruteForce disables the per-chronon kinematics cache and the spatial
	// grid: every range query recomputes positions through Mobility.Pos and
	// Neighbors/broadcast fan-out scan all n nodes. The slow path is kept
	// for differential testing against the grid-backed fast path.
	BruteForce bool

	// Per-chronon kinematics cache: each node's position is computed at
	// most once per tick. curPos covers cacheTime, prevPos covers
	// cacheTime−1 (delivery evaluates range at send time). Filling is lazy
	// — an idle chronon (no packets, no workload, no position queries)
	// costs nothing — and each slice is indexed by the dense node index
	// (idx) and backed by a spatial grid with cell side maxRange.
	curPos     []Pos
	prevPos    []Pos
	cacheTime  timeseq.Time
	curFilled  bool
	prevFilled bool
	curGrid    *grid
	prevGrid   *grid
	maxRange   float64
	scratch    []int32 // reusable grid-query buffer
	nbScratch  []int   // reusable candidate-id buffer for broadcast fan-out

	// Reusable BFS state for shortestHops (dense-index space, generation
	// stamps instead of a fresh visited map per call).
	bfsSeen  []uint32
	bfsDist  []int32
	bfsQueue []int32
	bfsGen   uint32
}

// NewNetwork builds a simulator over the given nodes.
func NewNetwork(nodes []*Node) *Network {
	net := &Network{
		nodes:   make(map[int]*Node, len(nodes)),
		apis:    make(map[int]*API, len(nodes)),
		idx:     make(map[int]int, len(nodes)),
		trace:   NewTrace(),
		SendCap: 64,
	}
	net.metrics.deliveredAt = map[uint64]timeseq.Time{}
	net.metrics.deliveredHops = map[uint64]int{}
	net.metrics.originHops = map[uint64]int{}
	for _, n := range nodes {
		net.nodes[n.ID] = n
		net.order = append(net.order, n.ID)
		if n.Range > net.maxRange {
			net.maxRange = n.Range
		}
	}
	sort.Ints(net.order)
	for i, id := range net.order {
		net.idx[id] = i
	}
	net.curPos = make([]Pos, len(net.order))
	net.prevPos = make([]Pos, len(net.order))
	if net.maxRange > 0 {
		net.curGrid = newGrid(net.maxRange)
		net.prevGrid = newGrid(net.maxRange)
	}
	net.nodeList = make([]*Node, len(net.order))
	net.apiList = make([]*API, len(net.order))
	for i, id := range net.order {
		net.nodeList[i] = net.nodes[id]
		net.apiList[i] = &API{net: net, id: id}
		net.apis[id] = net.apiList[i]
	}
	for i := range net.order {
		net.nodeList[i].Proto.Init(net.apiList[i])
	}
	return net
}

// ensureCur fills the current-chronon cache (positions at cacheTime and
// the grid over them) if this tick hasn't needed it yet.
func (n *Network) ensureCur() {
	if n.curFilled {
		return
	}
	for i, id := range n.order {
		n.curPos[i] = n.nodes[id].Mob.Pos(n.cacheTime)
	}
	if n.curGrid != nil {
		n.curGrid.rebuild(n.curPos)
	}
	n.curFilled = true
}

// ensurePrev fills the previous-chronon cache (positions at cacheTime−1).
// Usually the slot already holds last tick's curPos via the swap in
// advanceCache; it is recomputed only when last tick was idle.
func (n *Network) ensurePrev() {
	if n.prevFilled {
		return
	}
	for i, id := range n.order {
		n.prevPos[i] = n.nodes[id].Mob.Pos(n.cacheTime - 1)
	}
	if n.prevGrid != nil {
		n.prevGrid.rebuild(n.prevPos)
	}
	n.prevFilled = true
}

// advanceCache rotates the current tick's cache into the previous slot and
// retargets the current slot at time t. Slices and grids swap rather than
// reallocate; nothing is computed until a query arrives. When the cache is
// not exactly one chronon behind (e.g. BruteForce was toggled off mid-run)
// the stale previous slot is marked unfilled so delivery recomputes
// send-time positions.
func (n *Network) advanceCache(t timeseq.Time) {
	contiguous := n.cacheTime+1 == t
	n.curPos, n.prevPos = n.prevPos, n.curPos
	n.curGrid, n.prevGrid = n.prevGrid, n.curGrid
	n.prevFilled = contiguous && n.curFilled
	n.curFilled = false
	n.cacheTime = t
}

// Trace exposes the recorded events.
func (n *Network) Trace() *Trace { return n.trace }

// Metrics exposes the aggregate counters.
func (n *Network) Metrics() *Metrics { return &n.metrics }

// Nodes returns the node ids in order.
func (n *Network) Nodes() []int { return n.order }

// Node returns a node by id.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Now returns the current simulation time.
func (n *Network) Now() timeseq.Time { return n.now }

// pos returns node id's position at time t: from the kinematics cache when
// t is the current or previous chronon, through the mobility model
// otherwise (mobility is a deterministic function of t, so both paths
// agree).
func (n *Network) pos(id int, t timeseq.Time) Pos {
	if !n.BruteForce {
		if t == n.cacheTime {
			n.ensureCur()
			return n.curPos[n.idx[id]]
		}
		if t+1 == n.cacheTime {
			n.ensurePrev()
			return n.prevPos[n.idx[id]]
		}
	}
	return n.nodes[id].Mob.Pos(t)
}

// fastPath returns the spatial grid and cached position slice covering
// time t, or (nil, nil) when none does (brute-force mode, zero radio
// ranges, or a time outside the cached window).
func (n *Network) fastPath(t timeseq.Time) (*grid, []Pos) {
	if n.BruteForce || n.curGrid == nil {
		return nil, nil
	}
	if t == n.cacheTime {
		n.ensureCur()
		return n.curGrid, n.curPos
	}
	if t+1 == n.cacheTime {
		n.ensurePrev()
		return n.prevGrid, n.prevPos
	}
	return nil, nil
}

// InRange is the predicate range(n1, n2, t) of §5.2.1: n2 hears n1 at time
// t iff their distance does not exceed n1's transmission range.
func (n *Network) InRange(n1, n2 int, t timeseq.Time) bool {
	if n1 == n2 {
		return false
	}
	if !n.Alive(n1, t) || !n.Alive(n2, t) {
		return false
	}
	return Dist(n.pos(n1, t), n.pos(n2, t)) <= n.nodes[n1].Range
}

// Neighbors returns the nodes within range of id at time t, in ascending
// id order. When a spatial grid covers t only the 3×3 cell neighbourhood is
// scanned; otherwise all nodes are.
func (n *Network) Neighbors(id int, t timeseq.Time) []int {
	g, ps := n.fastPath(t)
	if g == nil {
		var out []int
		for _, j := range n.order {
			if j != id && n.InRange(id, j, t) {
				out = append(out, j)
			}
		}
		return out
	}
	if !n.Alive(id, t) {
		return nil
	}
	ci := n.idx[id]
	self, reach := ps[ci], n.nodes[id].Range
	n.scratch = g.nearby(self, n.scratch[:0])
	var out []int
	for _, cj := range n.scratch {
		if int(cj) == ci {
			continue
		}
		if j := n.order[cj]; Dist(self, ps[cj]) <= reach && n.Alive(j, t) {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// Inject schedules workload messages, keeping the pending workload sorted
// by origination time. Each message is placed by binary search (upper
// bound, so equal-time messages keep their injection order — the same
// stable order the previous sort produced); appending already-ordered
// messages costs O(log n) with no element moves.
func (n *Network) Inject(ms ...Message) {
	for _, m := range ms {
		lo, hi := n.wlHead, len(n.workload)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if n.workload[mid].At <= m.At {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		n.workload = append(n.workload, Message{})
		copy(n.workload[lo+1:], n.workload[lo:])
		n.workload[lo] = m
	}
}

// transmit queues a packet for next-chronon delivery and records the send
// event m_u.
func (n *Network) transmit(p Packet) {
	n.inflight = append(n.inflight, p)
	if p.Kind == "data" {
		n.metrics.DataTransmissions++
	} else {
		n.metrics.ControlPackets++
	}
	if n.TraceMode == TraceAll || p.Kind == "data" {
		n.trace.sent(n.now, p)
	}
}

// deliver records end-to-end delivery.
func (n *Network) deliver(at int, p *Packet) {
	if p.Kind != "data" {
		return
	}
	if _, dup := n.metrics.deliveredAt[p.MsgID]; dup {
		return // duplicate arrivals (flooding) count once
	}
	n.metrics.deliveredAt[p.MsgID] = n.now
	n.metrics.deliveredHops[p.MsgID] = p.Hops
	n.metrics.Delivered++
	n.metrics.HopsTotal += p.Hops
	n.trace.delivered(n.now, at, p)
}

// Step advances one chronon: deliver last tick's packets to the nodes that
// were in range of the sender at send time, drive per-tick protocol logic,
// and originate due workload messages.
func (n *Network) Step() {
	sendTime := n.now
	n.now++
	if !n.BruteForce {
		n.advanceCache(n.now)
	}
	for _, a := range n.apiList {
		a.sent = 0
	}
	// 1. Deliver packets sent during the previous chronon. Range is
	// evaluated at send time (the radio decided reachability when it
	// transmitted). The inflight buffer is recycled: new sends this chronon
	// go into last chronon's backing array instead of a fresh allocation.
	pending := n.inflight
	n.inflight = n.spare[:0]
	for _, p := range pending {
		if p.To == Broadcast {
			n.deliverBroadcast(p, sendTime)
		} else if n.InRange(p.From, p.To, sendTime) && n.Alive(p.To, n.now) {
			n.handlePacket(n.idx[p.To], p)
		} else {
			n.metrics.LinkDrops++
		}
	}
	for i := range pending {
		pending[i] = Packet{} // drop Route/Table references before recycling
	}
	n.spare = pending[:0]
	// 2. Per-tick protocol duties (failed nodes are silent).
	for i, id := range n.order {
		if n.Alive(id, n.now) {
			n.nodeList[i].Proto.OnTick(n.apiList[i])
		}
	}
	// 3. Workload origination. A cursor drains the sorted workload in place
	// (re-slicing would pin the consumed prefix's backing array for the
	// whole run); the slice is reset once fully drained.
	for n.wlHead < len(n.workload) && n.workload[n.wlHead].At <= n.now {
		m := n.workload[n.wlHead]
		n.workload[n.wlHead] = Message{}
		n.wlHead++
		n.metrics.Sent++
		n.metrics.originHops[mKey(m.ID)] = n.shortestHops(m.Src, m.Dst, n.now)
		n.trace.originated(n.now, m)
		if n.Alive(m.Src, n.now) {
			n.nodes[m.Src].Proto.Originate(n.apis[m.Src], m)
		}
	}
	if n.wlHead == len(n.workload) && n.wlHead > 0 {
		n.workload = n.workload[:0]
		n.wlHead = 0
	}
}

// deliverBroadcast fans one broadcast packet out to every node in range of
// the sender at send time, in ascending id order. With a grid covering the
// send time only the sender's 3×3 cell neighbourhood is scanned.
func (n *Network) deliverBroadcast(p Packet, sendTime timeseq.Time) {
	g, ps := n.fastPath(sendTime)
	if g == nil {
		for tj, j := range n.order {
			if n.InRange(p.From, j, sendTime) && n.Alive(j, n.now) {
				n.handlePacket(tj, p)
			}
		}
		return
	}
	if !n.Alive(p.From, sendTime) {
		return
	}
	ci := n.idx[p.From]
	self, reach := ps[ci], n.nodes[p.From].Range
	n.scratch = g.nearby(self, n.scratch[:0])
	// Dense indices sort into the same order as ids (order is sorted), so
	// receivers are handled in the same deterministic sequence the
	// brute-force scan produces.
	targets := n.nbScratch[:0]
	for _, cj := range n.scratch {
		if int(cj) == ci {
			continue
		}
		j := n.order[cj]
		if Dist(self, ps[cj]) <= reach && n.Alive(j, sendTime) && n.Alive(j, n.now) {
			targets = append(targets, int(cj))
		}
	}
	sort.Ints(targets)
	n.nbScratch = targets
	for _, tj := range targets {
		n.handlePacket(tj, p)
	}
}

func mKey(id uint64) uint64 { return id }

// handlePacket dispatches one delivered packet and records the receive
// event r_u.
func (n *Network) handlePacket(ti int, p Packet) {
	to := n.order[ti]
	if n.TraceMode == TraceAll || p.Kind == "data" {
		n.trace.received(n.now, to, p)
	}
	cp := p
	cp.Route = cloneRoute(p.Route)
	n.nodeList[ti].Proto.OnPacket(n.apiList[ti], &cp)
}

// Run advances the simulation until the given time.
func (n *Network) Run(until timeseq.Time) {
	for n.now < until {
		n.Step()
	}
}

// shortestHops computes the hop count of a shortest path from src to dst on
// the connectivity graph frozen at time t (BFS) — the reference for the
// path-optimality measure. It returns -1 when no path exists. The BFS runs
// in dense-index space over reusable generation-stamped state; visitation
// order varies with the grid layout but the hop distance it returns does
// not.
func (n *Network) shortestHops(src, dst int, t timeseq.Time) int {
	if src == dst {
		return 0
	}
	if len(n.bfsSeen) != len(n.order) {
		n.bfsSeen = make([]uint32, len(n.order))
		n.bfsDist = make([]int32, len(n.order))
	}
	n.bfsGen++
	if n.bfsGen == 0 { // generation counter wrapped: stale stamps could collide
		clear(n.bfsSeen)
		n.bfsGen = 1
	}
	gen := n.bfsGen
	si, di := n.idx[src], n.idx[dst]
	n.bfsSeen[si] = gen
	n.bfsDist[si] = 0
	queue := append(n.bfsQueue[:0], int32(si))
	g, ps := n.fastPath(t)
	for qi := 0; qi < len(queue); qi++ {
		ci := int(queue[qi])
		cur := n.order[ci]
		d := n.bfsDist[ci]
		if g != nil {
			if !n.Alive(cur, t) {
				continue
			}
			self, reach := ps[ci], n.nodes[cur].Range
			n.scratch = g.nearby(self, n.scratch[:0])
			for _, cj := range n.scratch {
				if int(cj) == ci || n.bfsSeen[cj] == gen {
					continue
				}
				if Dist(self, ps[cj]) > reach || !n.Alive(n.order[cj], t) {
					continue
				}
				n.bfsSeen[cj] = gen
				n.bfsDist[cj] = d + 1
				if int(cj) == di {
					n.bfsQueue = queue
					return int(d + 1)
				}
				queue = append(queue, cj)
			}
			continue
		}
		for cj, j := range n.order {
			if cj == ci || n.bfsSeen[cj] == gen || !n.InRange(cur, j, t) {
				continue
			}
			n.bfsSeen[cj] = gen
			n.bfsDist[cj] = d + 1
			if cj == di {
				n.bfsQueue = queue
				return int(d + 1)
			}
			queue = append(queue, int32(cj))
		}
	}
	n.bfsQueue = queue
	return -1
}

// Metrics are the three measures of performance of [Broch et al.] as §5.2.4
// maps them into the model: routing overhead (total transmissions f+g),
// path optimality (hops taken vs. shortest possible), and delivery ratio.
type Metrics struct {
	Sent              int
	Delivered         int
	DataTransmissions int // the f one-hop data messages
	ControlPackets    int // the g routing-process messages
	HopsTotal         int
	LinkDrops         int
	SendCapHits       int

	deliveredAt   map[uint64]timeseq.Time
	deliveredHops map[uint64]int
	originHops    map[uint64]int
}

// DeliveryRatio returns delivered/sent.
func (m *Metrics) DeliveryRatio() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Sent)
}

// Overhead returns the §5.2.4 routing overhead f+g: every transmission
// involved in routing.
func (m *Metrics) Overhead() int {
	return m.DataTransmissions + m.ControlPackets
}

// PathOptimality returns the mean excess hops over the shortest path
// available at origination time, across delivered messages that had a path
// ("the difference between the number of hops a message took to reach its
// destination versus the length of the shortest possible path").
func (m *Metrics) PathOptimality() float64 {
	total, count := 0, 0
	for id, hops := range m.deliveredHops {
		opt := m.originHops[id]
		if opt <= 0 {
			continue
		}
		count++
		total += hops - opt
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// String summarizes the metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("sent=%d delivered=%d (%.2f) overhead=%d (data=%d control=%d) excess-hops=%.2f",
		m.Sent, m.Delivered, m.DeliveryRatio(), m.Overhead(), m.DataTransmissions, m.ControlPackets, m.PathOptimality())
}
