package adhoc

import (
	"fmt"
	"sort"

	"rtc/internal/timeseq"
)

// Broadcast is the link-layer address reaching every node in range.
const Broadcast = -1

// Packet is one one-hop transmission. Data packets carry the end-to-end
// message identity; control packets (beacons, route requests/replies) are
// the rt_1 … rt_g messages of §5.2.4 ("exchanged between nodes in the
// routing process, for example when the routing tables are built/updated").
type Packet struct {
	Kind string // "data", or a protocol control kind

	From, To int // link layer: sender and receiver (To may be Broadcast)
	Src, Dst int // network layer: originator and final destination

	MsgID      uint64 // end-to-end message id (data packets)
	OriginTime timeseq.Time
	Hops       int
	TTL        int

	Route    []int // DSR: accumulated / source route
	RouteIdx int
	Table    []RouteAd // DSDV: advertised routes
	Pos      Pos       // DREAM: advertised position
	Seq      uint64    // beacon / request sequence number
	Payload  string    // message body b_u (opaque, per §5.2.3)
}

// RouteAd is one advertised route of a distance-vector beacon.
type RouteAd struct {
	Dst  int
	Hops int
	Seq  uint64
}

// cloneRoute copies a route slice (packets are value-copied on send but
// slices would alias).
func cloneRoute(r []int) []int {
	if r == nil {
		return nil
	}
	return append([]int{}, r...)
}

// Message is one end-to-end workload message u: generated at At by Src for
// Dst, with body Payload (§5.2.3).
type Message struct {
	ID      uint64
	Src     int
	Dst     int
	At      timeseq.Time
	Payload string
}

// API is the capability surface a protocol instance sees: its identity,
// clock, own position (a node knows its current position, after [11]), and
// the one-hop send primitive. A node is otherwise unaware of the rest of
// the network — the locality §5.2.5 insists on.
type API struct {
	net  *Network
	id   int
	sent int // sends this tick, to enforce the bounded-rate assumption
}

// ID returns the node label.
func (a *API) ID() int { return a.id }

// Now returns the current time.
func (a *API) Now() timeseq.Time { return a.net.now }

// NumNodes returns n (node labels are 1..n, as in §5.2.2).
func (a *API) NumNodes() int { return len(a.net.nodes) }

// Pos returns the node's own current position.
func (a *API) Pos() Pos { return a.net.pos(a.id, a.net.now) }

// Send queues a one-hop transmission; it is delivered one chronon later to
// the nodes in range at send time. Each node may send at most SendCap
// packets per chronon (the bounded-rate assumption that keeps w_{n,ω} well
// behaved, §5.2.4).
func (a *API) Send(p Packet) bool {
	if a.sent >= a.net.SendCap {
		a.net.metrics.SendCapHits++
		return false
	}
	a.sent++
	p.From = a.id
	p.Route = cloneRoute(p.Route)
	a.net.transmit(p)
	return true
}

// Deliver reports end-to-end arrival of a data message at its destination.
func (a *API) Deliver(p *Packet) {
	a.net.deliver(a.id, p)
}

// Protocol is one node's routing algorithm. The network calls Init once,
// then per chronon OnTick (timers/beacons), OnPacket for every delivered
// packet, and Originate when the workload makes this node the source of a
// new message.
type Protocol interface {
	Init(api *API)
	OnTick(api *API)
	OnPacket(api *API, p *Packet)
	Originate(api *API, m Message)
}

// Node couples identity, mobility, radio range (part of the invariant
// characteristics q_i of §5.2.2) and the protocol instance.
type Node struct {
	ID    int // 1..n
	Mob   Mobility
	Range float64
	Proto Protocol
}

// Network is the discrete-time simulator.
type Network struct {
	nodes    map[int]*Node
	order    []int // node ids, sorted, for deterministic iteration
	now      timeseq.Time
	inflight []Packet // sent at now, delivered at now+1
	apis     map[int]*API
	trace    *Trace
	metrics  Metrics
	workload []Message
	downAt   map[int]timeseq.Time
	// SendCap bounds per-node transmissions per chronon.
	SendCap int
}

// NewNetwork builds a simulator over the given nodes.
func NewNetwork(nodes []*Node) *Network {
	net := &Network{
		nodes:   make(map[int]*Node, len(nodes)),
		apis:    make(map[int]*API, len(nodes)),
		trace:   NewTrace(),
		SendCap: 64,
	}
	net.metrics.deliveredAt = map[uint64]timeseq.Time{}
	net.metrics.deliveredHops = map[uint64]int{}
	net.metrics.originHops = map[uint64]int{}
	for _, n := range nodes {
		net.nodes[n.ID] = n
		net.order = append(net.order, n.ID)
	}
	sort.Ints(net.order)
	for _, id := range net.order {
		net.apis[id] = &API{net: net, id: id}
	}
	for _, id := range net.order {
		net.nodes[id].Proto.Init(net.apis[id])
	}
	return net
}

// Trace exposes the recorded events.
func (n *Network) Trace() *Trace { return n.trace }

// Metrics exposes the aggregate counters.
func (n *Network) Metrics() *Metrics { return &n.metrics }

// Nodes returns the node ids in order.
func (n *Network) Nodes() []int { return n.order }

// Node returns a node by id.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Now returns the current simulation time.
func (n *Network) Now() timeseq.Time { return n.now }

// pos returns node id's position at time t.
func (n *Network) pos(id int, t timeseq.Time) Pos {
	return n.nodes[id].Mob.Pos(t)
}

// InRange is the predicate range(n1, n2, t) of §5.2.1: n2 hears n1 at time
// t iff their distance does not exceed n1's transmission range.
func (n *Network) InRange(n1, n2 int, t timeseq.Time) bool {
	if n1 == n2 {
		return false
	}
	if !n.Alive(n1, t) || !n.Alive(n2, t) {
		return false
	}
	return Dist(n.pos(n1, t), n.pos(n2, t)) <= n.nodes[n1].Range
}

// Neighbors returns the nodes within range of id at time t, in order.
func (n *Network) Neighbors(id int, t timeseq.Time) []int {
	var out []int
	for _, j := range n.order {
		if j != id && n.InRange(id, j, t) {
			out = append(out, j)
		}
	}
	return out
}

// Inject schedules workload messages (sorted by time internally).
func (n *Network) Inject(ms ...Message) {
	n.workload = append(n.workload, ms...)
	sort.SliceStable(n.workload, func(i, j int) bool { return n.workload[i].At < n.workload[j].At })
}

// transmit queues a packet for next-chronon delivery and records the send
// event m_u.
func (n *Network) transmit(p Packet) {
	n.inflight = append(n.inflight, p)
	if p.Kind == "data" {
		n.metrics.DataTransmissions++
	} else {
		n.metrics.ControlPackets++
	}
	n.trace.sent(n.now, p)
}

// deliver records end-to-end delivery.
func (n *Network) deliver(at int, p *Packet) {
	if p.Kind != "data" {
		return
	}
	if _, dup := n.metrics.deliveredAt[p.MsgID]; dup {
		return // duplicate arrivals (flooding) count once
	}
	n.metrics.deliveredAt[p.MsgID] = n.now
	n.metrics.deliveredHops[p.MsgID] = p.Hops
	n.metrics.Delivered++
	n.metrics.HopsTotal += p.Hops
	n.trace.delivered(n.now, at, p)
}

// Step advances one chronon: deliver last tick's packets to the nodes that
// were in range of the sender at send time, drive per-tick protocol logic,
// and originate due workload messages.
func (n *Network) Step() {
	sendTime := n.now
	n.now++
	for _, id := range n.order {
		n.apis[id].sent = 0
	}
	// 1. Deliver packets sent during the previous chronon. Range is
	// evaluated at send time (the radio decided reachability when it
	// transmitted).
	pending := n.inflight
	n.inflight = nil
	for _, p := range pending {
		if p.To == Broadcast {
			for _, j := range n.order {
				if n.InRange(p.From, j, sendTime) && n.Alive(j, n.now) {
					n.handlePacket(j, p)
				}
			}
		} else if n.InRange(p.From, p.To, sendTime) && n.Alive(p.To, n.now) {
			n.handlePacket(p.To, p)
		} else {
			n.metrics.LinkDrops++
		}
	}
	// 2. Per-tick protocol duties (failed nodes are silent).
	for _, id := range n.order {
		if n.Alive(id, n.now) {
			n.nodes[id].Proto.OnTick(n.apis[id])
		}
	}
	// 3. Workload origination.
	for len(n.workload) > 0 && n.workload[0].At <= n.now {
		m := n.workload[0]
		n.workload = n.workload[1:]
		n.metrics.Sent++
		n.metrics.originHops[mKey(m.ID)] = n.shortestHops(m.Src, m.Dst, n.now)
		n.trace.originated(n.now, m)
		if n.Alive(m.Src, n.now) {
			n.nodes[m.Src].Proto.Originate(n.apis[m.Src], m)
		}
	}
}

func mKey(id uint64) uint64 { return id }

// handlePacket dispatches one delivered packet and records the receive
// event r_u.
func (n *Network) handlePacket(to int, p Packet) {
	n.trace.received(n.now, to, p)
	cp := p
	cp.Route = cloneRoute(p.Route)
	n.nodes[to].Proto.OnPacket(n.apis[to], &cp)
}

// Run advances the simulation until the given time.
func (n *Network) Run(until timeseq.Time) {
	for n.now < until {
		n.Step()
	}
}

// shortestHops computes the hop count of a shortest path from src to dst on
// the connectivity graph frozen at time t (BFS) — the reference for the
// path-optimality measure. It returns -1 when no path exists.
func (n *Network) shortestHops(src, dst int, t timeseq.Time) int {
	if src == dst {
		return 0
	}
	dist := map[int]int{src: 0}
	queue := []int{src}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, j := range n.order {
			if j == cur || !n.InRange(cur, j, t) {
				continue
			}
			if _, ok := dist[j]; ok {
				continue
			}
			dist[j] = dist[cur] + 1
			if j == dst {
				return dist[j]
			}
			queue = append(queue, j)
		}
	}
	return -1
}

// Metrics are the three measures of performance of [Broch et al.] as §5.2.4
// maps them into the model: routing overhead (total transmissions f+g),
// path optimality (hops taken vs. shortest possible), and delivery ratio.
type Metrics struct {
	Sent              int
	Delivered         int
	DataTransmissions int // the f one-hop data messages
	ControlPackets    int // the g routing-process messages
	HopsTotal         int
	LinkDrops         int
	SendCapHits       int

	deliveredAt   map[uint64]timeseq.Time
	deliveredHops map[uint64]int
	originHops    map[uint64]int
}

// DeliveryRatio returns delivered/sent.
func (m *Metrics) DeliveryRatio() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Sent)
}

// Overhead returns the §5.2.4 routing overhead f+g: every transmission
// involved in routing.
func (m *Metrics) Overhead() int {
	return m.DataTransmissions + m.ControlPackets
}

// PathOptimality returns the mean excess hops over the shortest path
// available at origination time, across delivered messages that had a path
// ("the difference between the number of hops a message took to reach its
// destination versus the length of the shortest possible path").
func (m *Metrics) PathOptimality() float64 {
	total, count := 0, 0
	for id, hops := range m.deliveredHops {
		opt := m.originHops[id]
		if opt <= 0 {
			continue
		}
		count++
		total += hops - opt
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// String summarizes the metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("sent=%d delivered=%d (%.2f) overhead=%d (data=%d control=%d) excess-hops=%.2f",
		m.Sent, m.Delivered, m.DeliveryRatio(), m.Overhead(), m.DataTransmissions, m.ControlPackets, m.PathOptimality())
}
