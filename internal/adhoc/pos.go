// Package adhoc implements §5.2 of the paper: ad hoc networks as a
// real-time system. It provides a discrete-event network simulator built on
// the paper's own abstraction — mobile nodes with positions p_i(t), a
// transmission-range predicate range(n1, n2, t), and one-chronon message
// hops ("transmitting a message takes one time unit", §5.2.1) — four
// routing protocols in the spirit of the baselines of Broch et al. (the
// comparison the paper cites as the only existing evaluation), the three
// performance measures the paper adopts (routing overhead, path optimality,
// delivery ratio), and the timed-word model of nodes, messages, receive
// events, the routing language R_{n,u} (§5.2.2–5.2.4) and the per-node
// distributed decomposition H_i = 𝓛_i·𝓡_i (§5.2.5).
package adhoc

import (
	"math"
	"math/rand/v2"
	"sync"

	"rtc/internal/timeseq"
)

// Pos is a planar position.
type Pos struct {
	X, Y float64
}

// Dist is the Euclidean distance.
func Dist(a, b Pos) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Mobility yields a node's position over time. Implementations must be
// deterministic functions of t so traces and words are reproducible.
type Mobility interface {
	Pos(t timeseq.Time) Pos
}

// Static is a motionless node.
type Static Pos

// Pos implements Mobility.
func (s Static) Pos(timeseq.Time) Pos { return Pos(s) }

// ConstVel moves with constant velocity, reflecting off the arena walls —
// the constant-velocity assumption §5.2.2 mentions as common in simulation.
type ConstVel struct {
	Start  Pos
	VX, VY float64
	W, H   float64
}

// Pos implements Mobility.
func (c ConstVel) Pos(t timeseq.Time) Pos {
	return Pos{
		X: reflect1D(c.Start.X+c.VX*float64(t), c.W),
		Y: reflect1D(c.Start.Y+c.VY*float64(t), c.H),
	}
}

// reflect1D folds an unbounded coordinate into [0, w] with mirror
// reflection.
func reflect1D(x, w float64) float64 {
	if w <= 0 {
		return 0
	}
	period := 2 * w
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	if x > w {
		x = period - x
	}
	return x
}

// Waypoint is the random-waypoint model with pause time — the mobility
// model of the Broch et al. comparison, whose pause-time parameter sweeps
// the mobility axis of experiment E7. Legs are generated lazily and cached;
// Pos is safe for concurrent use.
type Waypoint struct {
	Seed  int64
	W, H  float64
	Speed float64 // distance per chronon while moving
	Pause timeseq.Time

	mu   sync.Mutex
	rng  *rand.Rand
	legs []leg
	// Memo of the last query: simulation code asks for the same chronon
	// repeatedly (brute-force range scans, route validation), so a single
	// (t, pos) pair absorbs most of the leg walk.
	memoOK  bool
	memoT   timeseq.Time
	memoPos Pos
}

type leg struct {
	from, to     Pos
	start, cover timeseq.Time // moving during [start, start+cover); paused until next leg
	pauseEnd     timeseq.Time
}

// NewWaypoint constructs the model; speed must be positive.
func NewWaypoint(seed int64, w, h, speed float64, pause timeseq.Time) *Waypoint {
	return &Waypoint{Seed: seed, W: w, H: h, Speed: speed, Pause: pause}
}

// Pos implements Mobility.
func (wp *Waypoint) Pos(t timeseq.Time) Pos {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.memoOK && t == wp.memoT {
		return wp.memoPos
	}
	p := wp.posLocked(t)
	wp.memoOK, wp.memoT, wp.memoPos = true, t, p
	return p
}

// posLocked computes the position with wp.mu held.
func (wp *Waypoint) posLocked(t timeseq.Time) Pos {
	if wp.rng == nil {
		// PCG seeds in O(1); the legacy math/rand source pays a ~600-word
		// state fill per node, which dominated scenario construction.
		wp.rng = rand.New(rand.NewPCG(uint64(wp.Seed), 0x9e3779b97f4a7c15))
		start := Pos{wp.rng.Float64() * wp.W, wp.rng.Float64() * wp.H}
		wp.legs = append(wp.legs, wp.makeLeg(start, 0))
	}
	for {
		last := wp.legs[len(wp.legs)-1]
		if t < last.pauseEnd {
			break
		}
		wp.legs = append(wp.legs, wp.makeLeg(last.to, last.pauseEnd))
	}
	// Binary scan not needed: queries are near the tail in practice; walk
	// back from the end.
	for i := len(wp.legs) - 1; i >= 0; i-- {
		l := wp.legs[i]
		if t < l.start {
			continue
		}
		if t >= l.start+l.cover {
			return l.to // pausing
		}
		frac := float64(t-l.start) / float64(l.cover)
		return Pos{
			X: l.from.X + (l.to.X-l.from.X)*frac,
			Y: l.from.Y + (l.to.Y-l.from.Y)*frac,
		}
	}
	return wp.legs[0].from
}

// makeLeg draws the next waypoint and travel timing.
func (wp *Waypoint) makeLeg(from Pos, start timeseq.Time) leg {
	to := Pos{wp.rng.Float64() * wp.W, wp.rng.Float64() * wp.H}
	d := Dist(from, to)
	cover := timeseq.Time(math.Ceil(d / wp.Speed))
	if cover == 0 {
		cover = 1
	}
	return leg{
		from:     from,
		to:       to,
		start:    start,
		cover:    cover,
		pauseEnd: start + cover + wp.Pause,
	}
}
