package adhoc

import (
	"strings"
	"testing"

	"rtc/internal/encoding"
	"rtc/internal/word"
)

func smallRun(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork(lineNodes(3, func() Protocol { return &Flooding{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 3, At: 1, Payload: "b"})
	net.Run(10)
	if net.Metrics().Delivered != 1 {
		t.Fatal("setup: message not delivered")
	}
	return net
}

func TestNodeWordShape(t *testing.T) {
	n := &Node{ID: 2, Mob: ConstVel{Start: Pos{1, 2}, VX: 1, VY: 0, W: 100, H: 100}, Range: 10}
	w := NodeWord(n)
	p := word.Prefix(w, 60)
	recs, ok := encoding.Records(word.Finite(p[:len(p)-len(p)%1]).Syms())
	// The prefix may cut a record; parse only the complete leading records.
	for !ok && len(p) > 0 {
		p = p[:len(p)-1]
		recs, ok = encoding.Records(word.Finite(p).Syms())
	}
	if len(recs) < 3 {
		t.Fatalf("records = %v", recs)
	}
	// First record: the invariant characteristics q_2.
	if recs[0][0] != "2" || !strings.HasPrefix(recs[0][1], "range=") {
		t.Fatalf("q_i record = %v", recs[0])
	}
	// Then positions, each prefixed by the node label (the enc(i,π)
	// convention of §5.2.2).
	if recs[1][0] != "2" || !strings.HasPrefix(recs[1][1], "pos=") {
		t.Fatalf("position record = %v", recs[1])
	}
	if !word.MonotoneWithin(w, 200) || !word.WellBehavedWithin(w, 200) {
		t.Error("node word must be monotone and progressing")
	}
}

func TestMessageAndReceiveWords(t *testing.T) {
	net := smallRun(t)
	tr := net.Trace()
	if len(tr.Sends) == 0 || len(tr.Recvs) == 0 {
		t.Fatal("no events recorded")
	}
	mw := MessageWord(tr.Sends[0])
	rec, ok := encoding.ParseRecord(mw.Syms())
	if !ok || rec[0] != "m" || len(rec) != 5 {
		t.Fatalf("message record = %v", rec)
	}
	// All symbols carry the generation time.
	for _, e := range mw {
		if e.At != tr.Sends[0].At {
			t.Fatal("message word time drift")
		}
	}
	rw := ReceiveWord(tr.Recvs[0])
	rrec, ok := encoding.ParseRecord(rw.Syms())
	if !ok || rrec[0] != "r" || len(rrec) != 4 {
		t.Fatalf("receive record = %v", rrec)
	}
	// The receive happens one chronon after the send it echoes.
	if rw[0].At != tr.Recvs[0].At || tr.Recvs[0].At != tr.Sends[0].At+1 {
		t.Fatalf("receive at %d, send at %d", tr.Recvs[0].At, tr.Sends[0].At)
	}
}

func TestEventsWordOrdered(t *testing.T) {
	net := smallRun(t)
	ew := net.Trace().EventsWord()
	if len(ew) == 0 {
		t.Fatal("empty events word")
	}
	if !word.MonotoneWithin(ew, uint64(len(ew))) {
		t.Fatal("events word not monotone")
	}
}

func TestRoutingWordWellFormed(t *testing.T) {
	net := smallRun(t)
	w := RoutingWord(net)
	if !w.Length().Omega {
		t.Fatal("routing word must be infinite (node words continue forever)")
	}
	if !word.MonotoneWithin(w, 500) {
		t.Fatal("routing word not monotone")
	}
	if !word.WellBehavedWithin(w, 500) {
		t.Fatal("routing word should look well behaved (bounded messages per chronon)")
	}
}

// §5.2.5: component words contain exactly the node's own sends and its
// receipts.
func TestComponentWords(t *testing.T) {
	net := smallRun(t)
	// Node 2 is the relay on the line 1–2–3.
	local := word.Prefix(LocalWord(net, 2), 200)
	countKind := func(w word.Finite, kind string) int {
		recs, _ := encoding.Records(w.Syms())
		n := 0
		for _, r := range recs {
			if len(r) > 0 && r[0] == kind {
				n++
			}
		}
		return n
	}
	_ = local
	remote := RemoteWord(net, 2)
	// Node 2 received the flood from node 1 exactly once.
	if got := countKind(remote, "r"); got != 1 {
		t.Errorf("node 2 receive events = %d, want 1", got)
	}
	// Node 3 (destination) also receives once and sends nothing.
	if got := countKind(RemoteWord(net, 3), "r"); got != 1 {
		t.Errorf("node 3 receive events = %d, want 1", got)
	}
	var sent3 int
	for _, s := range net.Trace().Sends {
		if s.P.From == 3 {
			sent3++
		}
	}
	if sent3 != 0 {
		t.Errorf("destination sent %d packets under flooding", sent3)
	}
	// H_i is a valid timed word.
	h2 := ComponentWord(net, 2)
	if !word.MonotoneWithin(h2, 300) {
		t.Error("H_2 not monotone")
	}
}

func TestChainOnFlooding(t *testing.T) {
	net := smallRun(t)
	hops, ok := net.Trace().Chain(1, net)
	if !ok || len(hops) != 2 {
		t.Fatalf("chain = %v, %v", hops, ok)
	}
	if hops[0].From != 1 || hops[0].To != 2 || hops[1].From != 2 || hops[1].To != 3 {
		t.Fatalf("chain = %v", hops)
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK || ck.Latency != 2 || ck.F != 2 {
		t.Fatalf("check = %+v", ck)
	}
}

func TestCheckRouteUndelivered(t *testing.T) {
	// Partitioned network: no delivery, t'_f not finite.
	nodes := []*Node{
		{ID: 1, Mob: Static(Pos{0, 0}), Range: 5, Proto: &Flooding{}},
		{ID: 2, Mob: Static(Pos{100, 100}), Range: 5, Proto: &Flooding{}},
	}
	net := NewNetwork(nodes)
	net.Inject(Message{ID: 7, Src: 1, Dst: 2, At: 1})
	net.Run(20)
	ck := net.Trace().CheckRoute(7, net)
	if ck.OK || ck.Delivered {
		t.Fatalf("partitioned route validated: %+v", ck)
	}
	if len(ck.Violations) == 0 {
		t.Fatal("no violation recorded")
	}
}
