package adhoc

import (
	"fmt"
	"sort"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Trace records every network event so that runs can be rendered as the
// timed ω-words of §5.2.2–§5.2.5 and validated against the routing language
// R_{n,u} of §5.2.4.
type Trace struct {
	Sends    []SendEvent
	Recvs    []RecvEvent
	Origs    []OrigEvent
	Delivers []DeliverEvent
}

// SendEvent is the generation of a one-hop message u_i (the word m_u).
type SendEvent struct {
	At timeseq.Time
	P  Packet
}

// RecvEvent is the receipt of a one-hop message (the word r_u).
type RecvEvent struct {
	At timeseq.Time
	By int
	P  Packet
}

// OrigEvent is a workload message entering the network.
type OrigEvent struct {
	At timeseq.Time
	M  Message
}

// DeliverEvent is end-to-end arrival at the intended destination.
type DeliverEvent struct {
	At timeseq.Time
	By int
	P  Packet
}

// NewTrace allocates an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (tr *Trace) sent(at timeseq.Time, p Packet) { tr.Sends = append(tr.Sends, SendEvent{at, p}) }
func (tr *Trace) received(at timeseq.Time, by int, p Packet) {
	tr.Recvs = append(tr.Recvs, RecvEvent{at, by, p})
}
func (tr *Trace) originated(at timeseq.Time, m Message) {
	tr.Origs = append(tr.Origs, OrigEvent{at, m})
}
func (tr *Trace) delivered(at timeseq.Time, by int, p *Packet) {
	tr.Delivers = append(tr.Delivers, DeliverEvent{at, by, *p})
}

// ---------------------------------------------------------------------------
// Words (§5.2.2–5.2.3)

// NodeWord builds h_i: the invariant characteristics q_i (the label and
// transmission range) with time value 0, then the successive positions
// p_i(t) labelled with their time values.
func NodeWord(n *Node) word.Word {
	t := timeseq.Time(0)
	var pending word.Finite
	first := true
	return word.Sequential(func() word.TimedSym {
		for len(pending) == 0 {
			if first {
				first = false
				for _, s := range encoding.Tagged(uint64(n.ID), fmt.Sprintf("range=%g", n.Range)) {
					pending = append(pending, word.TimedSym{Sym: s, At: 0})
				}
			}
			p := n.Mob.Pos(t)
			for _, s := range encoding.Tagged(uint64(n.ID), fmt.Sprintf("pos=%.2f,%.2f", p.X, p.Y)) {
				pending = append(pending, word.TimedSym{Sym: s, At: t})
			}
			t++
		}
		e := pending[0]
		pending = pending[1:]
		return e
	})
}

// MessageWord builds m_u for one send event: the encoding
// e(t)@e(s)@e(d)@e(b) with every symbol carrying the generation time t
// (§5.2.3). The link-layer receiver stands in for the one-hop destination d.
func MessageWord(e SendEvent) word.Finite {
	to := e.P.To
	syms := encoding.Record("m",
		encoding.FieldUint(uint64(e.At)),
		encoding.FieldInt(int64(e.P.From)),
		encoding.FieldInt(int64(to)),
		e.P.Kind+":"+e.P.Payload,
	)
	out := make(word.Finite, len(syms))
	for i, s := range syms {
		out[i] = word.TimedSym{Sym: s, At: e.At}
	}
	return out
}

// ReceiveWord builds r_u for one receive event: e(t)@e(s)@e(d) with every
// symbol carrying the receive time t′. The t field identifies the one-hop
// message by its generation time, which under the one-chronon hop is t′−1.
func ReceiveWord(e RecvEvent) word.Finite {
	gen := e.At
	if gen > 0 {
		gen--
	}
	syms := encoding.Record("r",
		encoding.FieldUint(uint64(gen)),
		encoding.FieldInt(int64(e.P.From)),
		encoding.FieldInt(int64(e.By)),
	)
	out := make(word.Finite, len(syms))
	for i, s := range syms {
		out[i] = word.TimedSym{Sym: s, At: e.At}
	}
	return out
}

// EventsWord merges every m_u and r_u of the trace into one finite timed
// word (ordered by time; sends of one instant precede receives, mirroring
// the one-chronon hop).
func (tr *Trace) EventsWord() word.Finite {
	type ev struct {
		at   timeseq.Time
		kind int // 0 = send, 1 = recv
		idx  int
	}
	var evs []ev
	for i, e := range tr.Sends {
		evs = append(evs, ev{e.At, 0, i})
	}
	for i, e := range tr.Recvs {
		evs = append(evs, ev{e.At, 1, i})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].kind < evs[j].kind
	})
	var out word.Finite
	for _, e := range evs {
		if e.kind == 0 {
			out = append(out, MessageWord(tr.Sends[e.idx])...)
		} else {
			out = append(out, ReceiveWord(tr.Recvs[e.idx])...)
		}
	}
	return out
}

// RoutingWord assembles the network word
// w = h_1 h_2 … h_n · m_{u1} r_{u1} m_{u2} r_{u2} … of §5.2.4 from a run:
// the (infinite) node words concatenated with the recorded events under
// Definition 3.5.
func RoutingWord(net *Network) word.Word {
	ws := make([]word.Word, 0, len(net.order)+1)
	for _, id := range net.order {
		ws = append(ws, NodeWord(net.nodes[id]))
	}
	ws = append(ws, net.trace.EventsWord())
	return word.ConcatAll(ws...)
}

// ---------------------------------------------------------------------------
// The routing language R_{n,u} (§5.2.4)

// Hop is one element u_i of a route: a one-hop data transmission together
// with its receive event.
type Hop struct {
	SentAt timeseq.Time // t_i
	RecvAt timeseq.Time // t'_i
	From   int          // s_i
	To     int          // d_i
}

// RouteCheck is the verdict of validating one message's route against the
// conditions of §5.2.4.
type RouteCheck struct {
	OK         bool
	Violations []string
	Hops       []Hop
	Delivered  bool
	Latency    timeseq.Time // t'_f − t_1
	F          int          // data transmissions for this message
	G          int          // control transmissions during the run (global)
}

// Chain reconstructs the successful delivery path of a message by backward
// induction from its delivery event: the hop that delivered at time T was
// sent at T−1 by a node that had received (or originated) the message by
// then. Works for unicast and broadcast (flooding) traces alike.
func (tr *Trace) Chain(msgID uint64, net *Network) ([]Hop, bool) {
	var del *DeliverEvent
	for i := range tr.Delivers {
		if tr.Delivers[i].P.MsgID == msgID {
			del = &tr.Delivers[i]
			break
		}
	}
	if del == nil {
		return nil, false
	}
	var orig *OrigEvent
	for i := range tr.Origs {
		if tr.Origs[i].M.ID == msgID {
			orig = &tr.Origs[i]
			break
		}
	}
	if orig == nil {
		return nil, false
	}
	// recvAt[node] = earliest receive time of the message at node, with the
	// sender of that packet.
	type arrival struct {
		at   timeseq.Time
		from int
	}
	firstRecv := map[int]arrival{}
	for _, r := range tr.Recvs {
		if r.P.MsgID != msgID || r.P.Kind != "data" {
			continue
		}
		if a, ok := firstRecv[r.By]; !ok || r.At < a.at {
			firstRecv[r.By] = arrival{r.At, r.P.From}
		}
	}
	var hops []Hop
	cur := del.By
	guard := 0
	for cur != orig.M.Src {
		a, ok := firstRecv[cur]
		if !ok {
			return nil, false
		}
		hops = append(hops, Hop{SentAt: a.at - 1, RecvAt: a.at, From: a.from, To: cur})
		cur = a.from
		if guard++; guard > len(net.order)+4 {
			return nil, false // cycle in reconstruction
		}
	}
	// Reverse into source→destination order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops, true
}

// CheckRoute validates the conditions of §5.2.4 for one message:
//
//  1. the hop sources/destinations chain from u's source to its
//     destination (b_1 = … = b_f = b is structural here: hops carry the
//     message id);
//  2. consecutive hops connect in space and time: d_i = s_{i+1},
//     t'_i = t_{i+1}, and range(s_i, d_i, t_i) holds;
//  3. t'_f is finite (the message was delivered).
func (tr *Trace) CheckRoute(msgID uint64, net *Network) RouteCheck {
	var out RouteCheck
	out.G = net.metrics.ControlPackets
	var orig *OrigEvent
	for i := range tr.Origs {
		if tr.Origs[i].M.ID == msgID {
			orig = &tr.Origs[i]
			break
		}
	}
	if orig == nil {
		out.Violations = append(out.Violations, "message never originated")
		return out
	}
	for _, s := range tr.Sends {
		if s.P.Kind == "data" && s.P.MsgID == msgID {
			out.F++
		}
	}
	hops, ok := tr.Chain(msgID, net)
	if !ok {
		out.Violations = append(out.Violations, "t'_f not finite: message not delivered")
		return out
	}
	out.Hops = hops
	out.Delivered = true
	if len(hops) == 0 {
		out.Violations = append(out.Violations, "empty route")
		return out
	}
	if hops[0].From != orig.M.Src {
		out.Violations = append(out.Violations, fmt.Sprintf("s_1 = %d, want source %d", hops[0].From, orig.M.Src))
	}
	if hops[len(hops)-1].To != orig.M.Dst {
		out.Violations = append(out.Violations, fmt.Sprintf("d_f = %d, want destination %d", hops[len(hops)-1].To, orig.M.Dst))
	}
	for i, h := range hops {
		if !net.InRange(h.From, h.To, h.SentAt) {
			out.Violations = append(out.Violations,
				fmt.Sprintf("hop %d: range(%d,%d,%d) is false", i, h.From, h.To, h.SentAt))
		}
		if h.RecvAt != h.SentAt+1 {
			out.Violations = append(out.Violations,
				fmt.Sprintf("hop %d: transmission took %d chronons, want 1", i, h.RecvAt-h.SentAt))
		}
		if i+1 < len(hops) {
			if h.To != hops[i+1].From {
				out.Violations = append(out.Violations,
					fmt.Sprintf("hop %d: d_i=%d but s_{i+1}=%d", i, h.To, hops[i+1].From))
			}
			if hops[i+1].SentAt < h.RecvAt {
				out.Violations = append(out.Violations,
					fmt.Sprintf("hop %d: forwarded at %d before received at %d", i, hops[i+1].SentAt, h.RecvAt))
			}
		}
	}
	out.Latency = hops[len(hops)-1].RecvAt - hops[0].SentAt
	out.OK = len(out.Violations) == 0
	return out
}

// ---------------------------------------------------------------------------
// Distributed decomposition (§5.2.5)

// LocalWord builds 𝓛_i: the node's own word h_i concatenated with the
// m_u of every message the node sent.
func LocalWord(net *Network, id int) word.Word {
	var sent word.Finite
	for _, s := range net.trace.Sends {
		if s.P.From == id {
			sent = append(sent, MessageWord(s)...)
		}
	}
	return word.Concat(NodeWord(net.nodes[id]), sent)
}

// RemoteWord builds 𝓡_i: the receive events of every message delivered to
// node i (the union of the M_{l,i} of equation (12)).
func RemoteWord(net *Network, id int) word.Finite {
	var out word.Finite
	for _, r := range net.trace.Recvs {
		if r.By == id {
			out = append(out, ReceiveWord(r)...)
		}
	}
	return out
}

// ComponentWord builds H_i = 𝓛_i·𝓡_i: everything node i knows — "only
// those messages that are sent by the corresponding node, and those
// messages that are received by the node. Besides this information, no
// knowledge about the external world exists."
func ComponentWord(net *Network, id int) word.Word {
	return word.Concat(LocalWord(net, id), RemoteWord(net, id))
}
