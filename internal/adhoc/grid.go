package adhoc

// Uniform spatial grid over node positions, rebuilt once per chronon from
// the kinematics cache. The cell side equals the maximum radio range in the
// network, so every node a sender can reach lies in the 3×3 cell
// neighbourhood of the sender's cell: Neighbors and broadcast fan-out scan
// O(cell occupancy) candidates instead of all n nodes. The grid stores
// dense node indices (positions in Network.order), never ids, so candidate
// slices sort into the same deterministic id order the brute-force path
// iterates in.
type grid struct {
	cell  float64
	cells map[uint64][]int32
}

// newGrid builds an empty grid with the given cell side (> 0).
func newGrid(cell float64) *grid {
	return &grid{cell: cell, cells: make(map[uint64][]int32)}
}

// cellKey packs signed cell coordinates into one map key (keeps the map on
// the fast uint64 hashing path).
func cellKey(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// coords maps a position to its cell coordinates.
func (g *grid) coords(p Pos) (int32, int32) {
	return int32(floorDiv(p.X, g.cell)), int32(floorDiv(p.Y, g.cell))
}

// floorDiv is floor(x/c) without the generality (and cost) of math.Floor;
// c > 0.
func floorDiv(x, c float64) int {
	q := x / c
	i := int(q)
	if q < 0 && float64(i) != q {
		i--
	}
	return i
}

// rebuild reindexes the grid from the per-chronon position slice. Cell
// slices are truncated, not freed, so a steady-state run stops allocating
// after the first few chronons.
func (g *grid) rebuild(pos []Pos) {
	for k, v := range g.cells {
		g.cells[k] = v[:0]
	}
	for i, p := range pos {
		cx, cy := g.coords(p)
		k := cellKey(cx, cy)
		g.cells[k] = append(g.cells[k], int32(i))
	}
}

// nearby appends to out the dense indices of every node in the 3×3 cell
// neighbourhood of p — a superset of the nodes within one cell side
// (= max radio range) of p. Callers filter with the range predicate and
// sort when they need deterministic iteration.
func (g *grid) nearby(p Pos, out []int32) []int32 {
	cx, cy := g.coords(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			out = append(out, g.cells[cellKey(cx+dx, cy+dy)]...)
		}
	}
	return out
}
