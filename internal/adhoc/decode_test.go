package adhoc

import (
	"testing"

	"rtc/internal/word"
)

// The events word round-trips: every send and receive of a run can be read
// back with its times and endpoints.
func TestDecodeEventsWordRoundTrip(t *testing.T) {
	net := smallRun(t)
	tr := net.Trace()
	evs, ok := DecodeEventsWord(tr.EventsWord())
	if !ok {
		t.Fatal("decode failed")
	}
	var sends, recvs int
	for _, e := range evs {
		switch e.Kind {
		case 'm':
			sends++
		case 'r':
			recvs++
			// One-chronon hop: receive time = generation time + 1.
			if e.At != e.Gen+1 {
				t.Errorf("receive at %d for generation %d", e.At, e.Gen)
			}
		}
	}
	if sends != len(tr.Sends) || recvs != len(tr.Recvs) {
		t.Fatalf("decoded %d sends %d recvs, trace has %d/%d",
			sends, recvs, len(tr.Sends), len(tr.Recvs))
	}
	// Cross-check one send against the trace.
	first := evs[0]
	if first.Kind != 'm' || first.From != tr.Sends[0].P.From || first.At != tr.Sends[0].At {
		t.Errorf("first decoded event %+v vs trace %+v", first, tr.Sends[0])
	}
}

func TestDecodeEventsWordRejectsGarbage(t *testing.T) {
	bad := []word.Finite{
		{{Sym: "x", At: 0}},
		{{Sym: "$", At: 0}},
		word.FromClassical("$z$", 0),
	}
	for _, w := range bad {
		if _, ok := DecodeEventsWord(w); ok {
			t.Errorf("decoded garbage %v", w)
		}
	}
	if evs, ok := DecodeEventsWord(nil); !ok || len(evs) != 0 {
		t.Error("empty word should decode to no events")
	}
}
