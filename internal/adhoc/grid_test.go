package adhoc

import (
	"math/rand/v2"
	"testing"

	"rtc/internal/timeseq"
)

// twinNets builds two identical networks over the same node parameters:
// one on the default grid-backed fast path, one forced onto the
// brute-force reference path. Mobility models are constructed separately
// per network (same seeds) so the twins share no state.
func twinNets(t *testing.T, seed int64, n int, mkProto func() Protocol) (fast, brute *Network) {
	t.Helper()
	build := func() *Network {
		rng := rand.New(rand.NewPCG(uint64(seed), 99))
		nodes := make([]*Node, n)
		for i := range nodes {
			var mob Mobility
			switch i % 3 {
			case 0:
				mob = NewWaypoint(seed*100+int64(i), 120, 120, 1+rng.Float64()*2, timeseq.Time(rng.IntN(40)))
			case 1:
				mob = ConstVel{Start: Pos{rng.Float64() * 120, rng.Float64() * 120}, VX: rng.Float64()*3 - 1.5, VY: rng.Float64()*3 - 1.5, W: 120, H: 120}
			default:
				mob = Static{rng.Float64() * 120, rng.Float64() * 120}
			}
			nodes[i] = &Node{
				ID:    i + 1,
				Mob:   mob,
				Range: 20 + rng.Float64()*40, // heterogeneous radio ranges
				Proto: mkProto(),
			}
		}
		net := NewNetwork(nodes)
		// Crash-stop failures at staggered times exercise Alive filtering
		// on both paths.
		net.FailAt(3, 25)
		net.FailAt(7, 60)
		return net
	}
	fast = build()
	brute = build()
	brute.BruteForce = true
	return fast, brute
}

// TestGridMatchesBruteForce is the differential property test: across
// random mobility traces, node failures, and heterogeneous ranges, the
// grid-backed Neighbors/InRange must agree exactly with the brute-force
// path at the cached chronon, the previous chronon (delivery's send-time
// queries), and an arbitrary historical time (slow-path fallback).
func TestGridMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		fast, brute := twinNets(t, seed, 24, func() Protocol { return &Flooding{} })
		for step := 0; step < 120; step++ {
			fast.Step()
			brute.Step()
			now := fast.Now()
			times := []timeseq.Time{now}
			if now >= 1 {
				times = append(times, now-1)
			}
			if now >= 7 {
				times = append(times, now-7) // outside the cache window
			}
			for _, tm := range times {
				for _, i := range fast.Nodes() {
					wantNb := brute.Neighbors(i, tm)
					gotNb := fast.Neighbors(i, tm)
					if len(wantNb) != len(gotNb) {
						t.Fatalf("seed %d t=%d node %d: neighbors %v (grid) != %v (brute)", seed, tm, i, gotNb, wantNb)
					}
					for k := range wantNb {
						if wantNb[k] != gotNb[k] {
							t.Fatalf("seed %d t=%d node %d: neighbors %v (grid) != %v (brute)", seed, tm, i, gotNb, wantNb)
						}
					}
					for _, j := range fast.Nodes() {
						if fast.InRange(i, j, tm) != brute.InRange(i, j, tm) {
							t.Fatalf("seed %d t=%d: InRange(%d,%d) disagrees", seed, tm, i, j)
						}
					}
				}
			}
		}
	}
}

// TestGridFloodingRunEquivalence runs the same flooded workload on the
// grid-backed and brute-force twins and demands identical end-to-end
// metrics — the fan-out order and reachability sets must match event for
// event, not just pairwise.
func TestGridFloodingRunEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		fast, brute := twinNets(t, seed, 24, func() Protocol { return &Flooding{} })
		for _, net := range []*Network{fast, brute} {
			for id := uint64(1); id <= 15; id++ {
				net.Inject(Message{ID: id, Src: int(id)%24 + 1, Dst: int(id*5)%24 + 1, At: timeseq.Time(10 + id*6), Payload: "b"})
			}
			net.Run(200)
		}
		fm, bm := fast.Metrics(), brute.Metrics()
		if fm.Sent != bm.Sent || fm.Delivered != bm.Delivered ||
			fm.DataTransmissions != bm.DataTransmissions ||
			fm.ControlPackets != bm.ControlPackets ||
			fm.HopsTotal != bm.HopsTotal || fm.LinkDrops != bm.LinkDrops {
			t.Fatalf("seed %d: metrics diverge:\n grid:  %v\n brute: %v", seed, fm, bm)
		}
		if len(fast.Trace().Recvs) != len(brute.Trace().Recvs) {
			t.Fatalf("seed %d: receive event counts diverge: %d vs %d", seed, len(fast.Trace().Recvs), len(brute.Trace().Recvs))
		}
	}
}

// TestGridBoundaryDistance pins the boundary semantics of range(n1,n2,t):
// distance exactly equal to the radio range is in range (§5.2.1 "does not
// exceed"), epsilon beyond is not — on both paths, including positions
// that straddle a grid cell border.
func TestGridBoundaryDistance(t *testing.T) {
	mk := func() *Network {
		return NewNetwork([]*Node{
			{ID: 1, Mob: Static{0, 0}, Range: 50, Proto: &Flooding{}},
			{ID: 2, Mob: Static{50, 0}, Range: 50, Proto: &Flooding{}}, // exactly at range, on a cell border
			{ID: 3, Mob: Static{50.0000001, 0}, Range: 50, Proto: &Flooding{}},
			{ID: 4, Mob: Static{30, 40}, Range: 50, Proto: &Flooding{}}, // 3-4-5 triangle: dist 50 exactly
			{ID: 5, Mob: Static{0, 50.5}, Range: 50, Proto: &Flooding{}},
		})
	}
	fast, brute := mk(), mk()
	brute.BruteForce = true
	for _, net := range []*Network{fast, brute} {
		if !net.InRange(1, 2, 0) {
			t.Errorf("distance == range must be in range (BruteForce=%v)", net.BruteForce)
		}
		if net.InRange(1, 3, 0) {
			t.Errorf("distance just beyond range must be out of range (BruteForce=%v)", net.BruteForce)
		}
		if !net.InRange(1, 4, 0) {
			t.Errorf("3-4-5 diagonal at exactly range must be in range (BruteForce=%v)", net.BruteForce)
		}
		if net.InRange(1, 5, 0) {
			t.Errorf("50.5 must be out of range 50 (BruteForce=%v)", net.BruteForce)
		}
		nb := net.Neighbors(1, 0)
		if len(nb) != 2 || nb[0] != 2 || nb[1] != 4 {
			t.Errorf("Neighbors(1) = %v, want [2 4] (BruteForce=%v)", nb, net.BruteForce)
		}
	}
}

// TestGridZeroRange covers the degenerate network where every radio range
// is zero: no grid can be built (cell side would be 0), so the fast path
// must fall back to the full scan and still agree with brute force —
// co-located nodes are in range (distance 0 does not exceed range 0),
// separated ones are not.
func TestGridZeroRange(t *testing.T) {
	mk := func() *Network {
		return NewNetwork([]*Node{
			{ID: 1, Mob: Static{0, 0}, Range: 0, Proto: &Flooding{}},
			{ID: 2, Mob: Static{0, 0}, Range: 0, Proto: &Flooding{}},
			{ID: 3, Mob: Static{1, 0}, Range: 0, Proto: &Flooding{}},
		})
	}
	fast, brute := mk(), mk()
	brute.BruteForce = true
	fast.Step()
	brute.Step()
	for _, net := range []*Network{fast, brute} {
		if !net.InRange(1, 2, 1) {
			t.Errorf("co-located zero-range nodes: distance 0 does not exceed range 0 (BruteForce=%v)", net.BruteForce)
		}
		if net.InRange(1, 3, 1) {
			t.Errorf("separated zero-range nodes must be out of range (BruteForce=%v)", net.BruteForce)
		}
		nb := net.Neighbors(1, 1)
		if len(nb) != 1 || nb[0] != 2 {
			t.Errorf("Neighbors(1) = %v, want [2] (BruteForce=%v)", nb, net.BruteForce)
		}
	}
}
