package adhoc

import (
	"strconv"

	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// §5.2.5 opens with "the immediate variant for such a model takes the form
// of [a] real-time algorithm that accepts the language R_{n,u}". This file
// implements that acceptor: a core.Program that consumes the network word
// w = h_1 … h_n · m r m r … online — node characteristics and positions as
// they arrive, message and receive events as they happen — and decides
// whether the trace contains a valid route for a designated message (the u
// of R_{n,u}), checking the conditions of §5.2.4 incrementally:
//
//  1. hops chain from u's source toward its destination carrying u's body;
//  2. d_i = s_{i+1}, t′_i = t_{i+1}, and range(s_i, d_i, t_i) holds — the
//     range predicate evaluated against the positions the word itself
//     carries;
//  3. t′_f is finite: on the hop that reaches u's destination the control
//     commits to s_f (f forever).
type RoutingAcceptor struct {
	core.Control
	// Source, Dest, Body identify the message u to be routed.
	Source, Dest int
	Body         string

	ranges    map[int]float64
	positions map[int]map[timeseq.Time]Pos

	// frontier maps node → earliest time the body reached it (the source
	// holds it from the start).
	frontier map[int]timeseq.Time

	rec   []word.Symbol
	inRec bool
}

// NewRoutingAcceptor builds the acceptor for one routing instance.
func NewRoutingAcceptor(src, dst int, body string) *RoutingAcceptor {
	return &RoutingAcceptor{
		Source:    src,
		Dest:      dst,
		Body:      body,
		ranges:    map[int]float64{},
		positions: map[int]map[timeseq.Time]Pos{},
		frontier:  map[int]timeseq.Time{src: 0},
	}
}

// Tick implements core.Program.
func (a *RoutingAcceptor) Tick(t *core.Tick) {
	for _, e := range t.New {
		switch {
		case a.inRec:
			a.rec = append(a.rec, e.Sym)
			if e.Sym == encoding.Dollar {
				a.inRec = false
				if fields, ok := encoding.ParseRecord(a.rec); ok {
					a.handleRecord(fields, e.At)
				}
				a.rec = nil
			}
		case e.Sym == encoding.Dollar:
			a.inRec = true
			a.rec = append(a.rec[:0], e.Sym)
		}
	}
	a.Drive(t)
}

func (a *RoutingAcceptor) handleRecord(fields []string, at timeseq.Time) {
	if len(fields) < 2 {
		return
	}
	// Node words: $id$ header or $id@prop$ (range=… / pos=…).
	if id, err := strconv.Atoi(fields[0]); err == nil {
		prop := fields[1]
		switch {
		case len(prop) > 6 && prop[:6] == "range=":
			if r, err := strconv.ParseFloat(prop[6:], 64); err == nil {
				a.ranges[id] = r
			}
		case len(prop) > 4 && prop[:4] == "pos=":
			var x, y float64
			if n, err := sscanPos(prop[4:], &x, &y); err == nil && n == 2 {
				if a.positions[id] == nil {
					a.positions[id] = map[timeseq.Time]Pos{}
				}
				a.positions[id][at] = Pos{X: x, Y: y}
			}
		}
		return
	}
	// Message words: $m@t@from@to@kind:body$ — a one-hop data transmission
	// of u's body extends the frontier, provided the §5.2.4 conditions
	// hold at its generation time.
	if fields[0] == "m" && len(fields) == 5 {
		gen, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return
		}
		from, err1 := strconv.Atoi(fields[2])
		to, err2 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil {
			return
		}
		if fields[4] != "data:"+a.Body {
			return
		}
		t0 := timeseq.Time(gen)
		held, ok := a.frontier[from]
		if !ok || held > t0 {
			return // the sender did not hold the body yet: not a chain hop
		}
		recvAt := t0 + 1 // the one-chronon hop of §5.2.1
		if to == Broadcast {
			// A broadcast reaches every node in range of the sender.
			for id := range a.ranges {
				if id != from && a.inRangeAt(from, id, t0) {
					a.extend(id, recvAt)
				}
			}
			return
		}
		if a.inRangeAt(from, to, t0) {
			a.extend(to, recvAt)
		}
	}
}

// extend advances the frontier and decides on reaching the destination.
func (a *RoutingAcceptor) extend(node int, at timeseq.Time) {
	if cur, ok := a.frontier[node]; !ok || at < cur {
		a.frontier[node] = at
	}
	if node == a.Dest {
		a.AcceptForever() // t′_f is finite: conditions 1–3 witnessed
	}
}

// inRangeAt evaluates range(from, to, t) from the word's own position
// stream (the latest position at or before t).
func (a *RoutingAcceptor) inRangeAt(from, to int, t timeseq.Time) bool {
	r, ok := a.ranges[from]
	if !ok {
		return false
	}
	pf, okF := a.posAt(from, t)
	pt, okT := a.posAt(to, t)
	return okF && okT && Dist(pf, pt) <= r
}

func (a *RoutingAcceptor) posAt(id int, t timeseq.Time) (Pos, bool) {
	m := a.positions[id]
	var best Pos
	var bestAt timeseq.Time
	found := false
	for at, p := range m {
		if at <= t && (!found || at > bestAt) {
			best, bestAt, found = p, at, true
		}
	}
	return best, found
}

// sscanPos parses "x,y".
func sscanPos(s string, x, y *float64) (int, error) {
	comma := -1
	for i := range s {
		if s[i] == ',' {
			comma = i
			break
		}
	}
	if comma < 0 {
		return 0, strconv.ErrSyntax
	}
	var err error
	*x, err = strconv.ParseFloat(s[:comma], 64)
	if err != nil {
		return 0, err
	}
	*y, err = strconv.ParseFloat(s[comma+1:], 64)
	if err != nil {
		return 1, err
	}
	return 2, nil
}

// AcceptRoutingWord runs the online acceptor over a network run's word and
// classifies the outcome for message u = (src, dst, body).
func AcceptRoutingWord(net *Network, src, dst int, body string, horizon uint64) core.Result {
	acc := NewRoutingAcceptor(src, dst, body)
	m := core.NewMachine(acc, RoutingWord(net))
	return core.RunForVerdict(m, horizon)
}
