package adhoc

import (
	"testing"

	"rtc/internal/timeseq"
)

func TestAODVDiscoveryAndDelivery(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &AODV{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 1, Payload: "x"})
	net.Run(40)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("AODV did not deliver: %v", m)
	}
	if m.ControlPackets == 0 {
		t.Error("AODV should spend control packets on discovery")
	}
	// Hop-by-hop unicast: exactly 4 data transmissions on the line.
	if m.DataTransmissions != 4 {
		t.Errorf("data transmissions = %d, want 4", m.DataTransmissions)
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK || len(ck.Hops) != 4 {
		t.Fatalf("route check: %+v", ck)
	}

	// Cached routes serve later traffic with no new discovery.
	ctrl := m.ControlPackets
	net.Inject(Message{ID: 2, Src: 1, Dst: 5, At: net.Now() + 1, Payload: "y"})
	net.Run(net.Now() + 20)
	if net.Metrics().Delivered != 2 {
		t.Fatal("second message lost")
	}
	if net.Metrics().ControlPackets != ctrl {
		t.Errorf("cached route cost control packets: %d → %d", ctrl, net.Metrics().ControlPackets)
	}
	// The reverse route installed by the RREQ also serves reverse traffic
	// without a fresh discovery.
	net.Inject(Message{ID: 3, Src: 5, Dst: 1, At: net.Now() + 1, Payload: "z"})
	net.Run(net.Now() + 20)
	if net.Metrics().Delivered != 3 {
		t.Fatal("reverse message lost")
	}
	if net.Metrics().ControlPackets != ctrl {
		t.Errorf("reverse route cost control packets: %d → %d", ctrl, net.Metrics().ControlPackets)
	}
}

func TestAODVMobileScenario(t *testing.T) {
	nodes := make([]*Node, 12)
	for i := range nodes {
		nodes[i] = &Node{
			ID:    i + 1,
			Mob:   NewWaypoint(int64(300+i), 120, 120, 1.5, 30),
			Range: 45,
			Proto: &AODV{},
		}
	}
	net := NewNetwork(nodes)
	id := uint64(1)
	for at := int64(30); at <= 150; at += 20 {
		src := int(id%12) + 1
		dst := int((id*5)%12) + 1
		if dst == src {
			dst = dst%12 + 1
		}
		net.Inject(Message{ID: id, Src: src, Dst: dst, At: timeseq.Time(at), Payload: "p"})
		id++
	}
	net.Run(300)
	m := net.Metrics()
	if m.Delivered == 0 {
		t.Fatal("AODV delivered nothing under mobility")
	}
	for mid := uint64(1); mid < id; mid++ {
		ck := net.Trace().CheckRoute(mid, net)
		if ck.Delivered && !ck.OK {
			t.Errorf("message %d: invalid route: %v", mid, ck.Violations)
		}
	}
}
