package adhoc

import (
	"math"

	"rtc/internal/timeseq"
)

// This file implements four routing algorithms in the spirit of the
// baselines of the Broch et al. comparison the paper cites: flooding (the
// protocol-free reference), a proactive distance-vector protocol
// (DSDV-like), a reactive source-routing protocol (DSR-like), and a
// position-based protocol (DREAM-like, after Basagni et al. [11], where
// "the only thing known by any node is its current position"). They are
// reimplementations from scratch that preserve each family's mechanism, not
// ports of the original code.

// ---------------------------------------------------------------------------
// Flooding

// Flooding rebroadcasts every data packet once. Maximal delivery, maximal
// overhead — the upper baseline.
type Flooding struct {
	api  *API
	seen map[uint64]bool
}

// Init implements Protocol.
func (f *Flooding) Init(api *API) {
	f.api = api
	f.seen = make(map[uint64]bool)
}

// OnTick implements Protocol.
func (f *Flooding) OnTick(*API) {}

// Originate implements Protocol.
func (f *Flooding) Originate(api *API, m Message) {
	f.seen[m.ID] = true
	api.Send(Packet{
		Kind: "data", To: Broadcast, Src: m.Src, Dst: m.Dst,
		MsgID: m.ID, OriginTime: m.At, Hops: 1, Payload: m.Payload,
	})
}

// OnPacket implements Protocol.
func (f *Flooding) OnPacket(api *API, p *Packet) {
	if p.Kind != "data" || f.seen[p.MsgID] {
		return
	}
	f.seen[p.MsgID] = true
	if p.Dst == api.ID() {
		api.Deliver(p)
		return
	}
	fwd := *p
	fwd.To = Broadcast
	fwd.Hops++
	api.Send(fwd)
}

// ---------------------------------------------------------------------------
// Distance vector (DSDV-like)

// DV is a proactive distance-vector protocol: every node periodically
// broadcasts its routing table with per-destination sequence numbers;
// routes with newer sequence numbers (or equal sequence and fewer hops)
// win. Data packets follow the next-hop chain and wait briefly in a buffer
// when no route is known yet.
type DV struct {
	BeaconEvery timeseq.Time
	BufferCap   int

	api    *API
	table  []dvRoute // dense, indexed by destination id (labels are 1..n, §5.2.2)
	seq    uint64
	buffer []Message
}

type dvRoute struct {
	next  int
	hops  int
	seq   uint64
	known bool
}

// Init implements Protocol.
func (d *DV) Init(api *API) {
	d.api = api
	d.table = make([]dvRoute, api.NumNodes()+1)
	if d.BeaconEvery == 0 {
		d.BeaconEvery = 5
	}
	if d.BufferCap == 0 {
		d.BufferCap = 16
	}
}

// route returns the table entry for dst, growing the table if an
// advertisement names a label outside 1..n.
func (d *DV) route(dst int) *dvRoute {
	for dst >= len(d.table) {
		d.table = append(d.table, dvRoute{})
	}
	return &d.table[dst]
}

// OnTick implements Protocol.
func (d *DV) OnTick(api *API) {
	if api.Now()%d.BeaconEvery == timeseq.Time(api.ID())%d.BeaconEvery {
		d.seq++
		ads := []RouteAd{{Dst: api.ID(), Hops: 0, Seq: d.seq}}
		for dst := range d.table {
			if r := &d.table[dst]; r.known {
				ads = append(ads, RouteAd{Dst: dst, Hops: r.hops, Seq: r.seq})
			}
		}
		api.Send(Packet{Kind: "dv", To: Broadcast, Table: ads})
	}
	// Retry buffered messages for which a route appeared.
	var still []Message
	for _, m := range d.buffer {
		if !d.forward(api, m) {
			still = append(still, m)
		}
	}
	d.buffer = still
}

// forward sends a data message toward its next hop; false when no route.
func (d *DV) forward(api *API, m Message) bool {
	if m.Dst >= len(d.table) || !d.table[m.Dst].known {
		return false
	}
	return api.Send(Packet{
		Kind: "data", To: d.table[m.Dst].next, Src: m.Src, Dst: m.Dst,
		MsgID: m.ID, OriginTime: m.At, Hops: 1, Payload: m.Payload,
	})
}

// Originate implements Protocol.
func (d *DV) Originate(api *API, m Message) {
	if d.forward(api, m) {
		return
	}
	if len(d.buffer) < d.BufferCap {
		d.buffer = append(d.buffer, m)
	}
}

// OnPacket implements Protocol.
func (d *DV) OnPacket(api *API, p *Packet) {
	switch p.Kind {
	case "dv":
		for _, ad := range p.Table {
			if ad.Dst == api.ID() {
				continue
			}
			cur := d.route(ad.Dst)
			if !cur.known || ad.Seq > cur.seq || (ad.Seq == cur.seq && ad.Hops+1 < cur.hops) {
				*cur = dvRoute{next: p.From, hops: ad.Hops + 1, seq: ad.Seq, known: true}
			}
		}
	case "data":
		if p.Dst == api.ID() {
			api.Deliver(p)
			return
		}
		if p.Dst < len(d.table) && d.table[p.Dst].known {
			fwd := *p
			fwd.To = d.table[p.Dst].next
			fwd.Hops++
			api.Send(fwd)
		}
	}
}

// ---------------------------------------------------------------------------
// Source routing (DSR-like)

// SR is a reactive source-routing protocol: sources flood a route request
// that accumulates the traversed path; the destination returns a route
// reply along the reversed path; data packets then carry the full source
// route. Routes are cached; buffered messages flush when a route arrives.
type SR struct {
	BufferCap int

	api    *API
	cache  map[int][]int // dst → full path (self … dst)
	seenRq map[uint64]bool
	buffer []Message
	reqSeq uint64
}

// Init implements Protocol.
func (s *SR) Init(api *API) {
	s.api = api
	s.cache = make(map[int][]int)
	s.seenRq = make(map[uint64]bool)
	if s.BufferCap == 0 {
		s.BufferCap = 16
	}
}

// OnTick implements Protocol.
func (s *SR) OnTick(api *API) {}

// Originate implements Protocol.
func (s *SR) Originate(api *API, m Message) {
	if route, ok := s.cache[m.Dst]; ok {
		s.sendAlong(api, m, route)
		return
	}
	if len(s.buffer) < s.BufferCap {
		s.buffer = append(s.buffer, m)
	}
	s.reqSeq++
	rq := uint64(api.ID())<<32 | s.reqSeq
	s.seenRq[rq] = true
	api.Send(Packet{
		Kind: "rreq", To: Broadcast, Src: api.ID(), Dst: m.Dst,
		Seq: rq, Route: []int{api.ID()},
	})
}

func (s *SR) sendAlong(api *API, m Message, route []int) {
	if len(route) < 2 {
		return
	}
	api.Send(Packet{
		Kind: "data", To: route[1], Src: m.Src, Dst: m.Dst,
		MsgID: m.ID, OriginTime: m.At, Hops: 1, Payload: m.Payload,
		Route: route, RouteIdx: 1,
	})
}

// OnPacket implements Protocol.
func (s *SR) OnPacket(api *API, p *Packet) {
	me := api.ID()
	switch p.Kind {
	case "rreq":
		if s.seenRq[p.Seq] {
			return
		}
		s.seenRq[p.Seq] = true
		route := append(cloneRoute(p.Route), me)
		if p.Dst == me {
			// Reply along the reversed accumulated route.
			rev := make([]int, len(route))
			for i, x := range route {
				rev[len(route)-1-i] = x
			}
			api.Send(Packet{
				Kind: "rrep", To: rev[1], Src: me, Dst: p.Src,
				Route: route, RouteIdx: len(rev) - 2, Seq: p.Seq,
			})
			return
		}
		fwd := *p
		fwd.To = Broadcast
		fwd.Route = route
		api.Send(fwd)
	case "rrep":
		// Route runs source→…→destination of the original request; the
		// reply walks it backwards using RouteIdx.
		if p.Dst == me {
			// The original requester: cache the route to its end.
			dst := p.Route[len(p.Route)-1]
			s.cache[dst] = cloneRoute(p.Route)
			var still []Message
			for _, m := range s.buffer {
				if m.Dst == dst {
					s.sendAlong(api, m, p.Route)
				} else {
					still = append(still, m)
				}
			}
			s.buffer = still
			return
		}
		// RouteIdx is this node's index in Route; pass the reply one step
		// closer to the requester at Route[0].
		if p.RouteIdx > 0 {
			fwd := *p
			fwd.RouteIdx--
			fwd.To = p.Route[fwd.RouteIdx]
			api.Send(fwd)
		}
	case "data":
		if p.Dst == me {
			api.Deliver(p)
			return
		}
		if p.RouteIdx+1 < len(p.Route) {
			fwd := *p
			fwd.RouteIdx++
			fwd.To = p.Route[fwd.RouteIdx]
			fwd.Hops++
			api.Send(fwd)
		}
	}
}

// ---------------------------------------------------------------------------
// Position-based (DREAM-like)

// Geo is a position-based protocol: nodes beacon their position and data
// packets are forwarded greedily to the neighbour closest to the
// destination's last known position — the general situation of §5.2.2
// where "the only thing known about some node at some moment in time is
// its position at that moment".
//
// Beacons run at two rates, echoing DREAM's distance effect (nearby nodes
// need fresh positions, distant ones tolerate stale ones): cheap 1-hop
// beacons every BeaconEvery chronons keep the neighbour table fresh, and
// TTL-limited floods every FloodEvery chronons (default 4×BeaconEvery)
// spread positions further out.
type Geo struct {
	BeaconEvery timeseq.Time
	FloodEvery  timeseq.Time
	BeaconTTL   int

	api       *API
	positions map[int]geoEntry
	seenB     map[uint64]bool
	seenData  map[uint64]bool
	neighbors map[int]Pos // refreshed by 1-hop beacon receipt
	nbAt      map[int]timeseq.Time
}

type geoEntry struct {
	pos Pos
	at  timeseq.Time
}

// Init implements Protocol.
func (g *Geo) Init(api *API) {
	g.api = api
	g.positions = make(map[int]geoEntry)
	g.seenB = make(map[uint64]bool)
	g.seenData = make(map[uint64]bool)
	g.neighbors = make(map[int]Pos)
	g.nbAt = make(map[int]timeseq.Time)
	if g.BeaconEvery == 0 {
		g.BeaconEvery = 5
	}
	if g.FloodEvery == 0 {
		g.FloodEvery = 4 * g.BeaconEvery
	}
	if g.BeaconTTL == 0 {
		g.BeaconTTL = 3
	}
}

// OnTick implements Protocol.
func (g *Geo) OnTick(api *API) {
	if api.Now()%g.BeaconEvery == timeseq.Time(api.ID())%g.BeaconEvery {
		ttl := 1
		if api.Now()%g.FloodEvery < g.BeaconEvery {
			ttl = g.BeaconTTL // the periodic long-range flood
		}
		seq := uint64(api.ID())<<32 | uint64(api.Now())
		g.seenB[seq] = true
		api.Send(Packet{
			Kind: "pos", To: Broadcast, Src: api.ID(),
			Pos: api.Pos(), Seq: seq, TTL: ttl, OriginTime: api.Now(),
		})
	}
}

// Originate implements Protocol.
func (g *Geo) Originate(api *API, m Message) {
	g.seenData[m.ID] = true
	g.routeData(api, Packet{
		Kind: "data", Src: m.Src, Dst: m.Dst,
		MsgID: m.ID, OriginTime: m.At, Hops: 1, Payload: m.Payload,
	})
}

// OnPacket implements Protocol.
func (g *Geo) OnPacket(api *API, p *Packet) {
	me := api.ID()
	switch p.Kind {
	case "pos":
		if p.Hops == 0 {
			// Direct receipt: the sender is a current neighbour.
			g.neighbors[p.From] = p.Pos
			g.nbAt[p.From] = api.Now()
		}
		if g.seenB[p.Seq] {
			return
		}
		g.seenB[p.Seq] = true
		if old, ok := g.positions[p.Src]; !ok || p.OriginTime >= old.at {
			g.positions[p.Src] = geoEntry{pos: p.Pos, at: p.OriginTime}
		}
		if p.TTL > 1 {
			fwd := *p
			fwd.TTL--
			fwd.Hops++
			fwd.To = Broadcast
			api.Send(fwd)
		}
	case "data":
		if p.Dst == me {
			api.Deliver(p)
			return
		}
		if g.seenData[p.MsgID] {
			return
		}
		g.seenData[p.MsgID] = true
		fwd := *p
		fwd.Hops++
		g.routeData(api, fwd)
	}
}

// routeData forwards greedily toward the destination's last known
// position; when the destination is unknown or no neighbour improves on our
// own distance, it falls back to a local broadcast (each node forwards a
// given message at most once, so the fallback stays bounded).
func (g *Geo) routeData(api *API, p Packet) {
	target, known := g.positions[p.Dst]
	if known {
		my := Dist(api.Pos(), target.pos)
		best, bestID := math.Inf(1), -1
		for id, pos := range g.neighbors {
			// Forget stale neighbours.
			if api.Now() > g.nbAt[id]+4*g.BeaconEvery {
				continue
			}
			if d := Dist(pos, target.pos); d < best {
				best, bestID = d, id
			}
		}
		if bestID >= 0 && best < my {
			p.To = bestID
			api.Send(p)
			return
		}
	}
	p.To = Broadcast
	api.Send(p)
}
