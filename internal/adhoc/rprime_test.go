package adhoc

import (
	"testing"

	"rtc/internal/timeseq"
)

func TestLatencyAndThreshold(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &Flooding{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 1, Payload: "x"}) // 4 hops
	net.Inject(Message{ID: 2, Src: 2, Dst: 3, At: 1, Payload: "y"}) // 1 hop
	net.Run(30)
	tr := net.Trace()

	lat, ok := tr.Latency(1)
	if !ok || lat != 4 {
		t.Fatalf("Latency(1) = (%d,%v), want 4", lat, ok)
	}
	lat, ok = tr.Latency(2)
	if !ok || lat != 1 {
		t.Fatalf("Latency(2) = (%d,%v), want 1", lat, ok)
	}
	if _, ok := tr.Latency(99); ok {
		t.Error("latency reported for unknown message")
	}

	// Threshold semantics: T = 2 loses the 4-hop message, keeps the 1-hop.
	if !tr.LostBeyond(1, 2) || tr.LostBeyond(1, 4) {
		t.Error("LostBeyond boundary wrong for message 1")
	}
	if tr.LostBeyond(2, 2) {
		t.Error("fast message lost under T=2")
	}
	if got := tr.DeliveryRatioWithin(2); got != 0.5 {
		t.Errorf("DeliveryRatioWithin(2) = %g", got)
	}
	if got := tr.DeliveryRatioWithin(10); got != 1.0 {
		t.Errorf("DeliveryRatioWithin(10) = %g", got)
	}

	prof := tr.LatencyProfile()
	if len(prof) != 2 || prof[0] != 4 || prof[1] != 1 {
		t.Errorf("LatencyProfile = %v", prof)
	}
}

func TestUndeliveredAlwaysLost(t *testing.T) {
	nodes := []*Node{
		{ID: 1, Mob: Static(Pos{0, 0}), Range: 5, Proto: &Flooding{}},
		{ID: 2, Mob: Static(Pos{500, 500}), Range: 5, Proto: &Flooding{}},
	}
	net := NewNetwork(nodes)
	net.Inject(Message{ID: 1, Src: 1, Dst: 2, At: 1})
	net.Run(40)
	if !net.Trace().LostBeyond(1, timeseq.Time(1_000_000)) {
		t.Error("undelivered message (t'_f = ω) not lost under any threshold")
	}
	if got := net.Trace().DeliveryRatioWithin(1000); got != 0 {
		t.Errorf("ratio = %g", got)
	}
}
