package adhoc

import (
	"strings"
	"testing"
)

func TestCompareRuns(t *testing.T) {
	run := func(mk func() Protocol) *Network {
		net := NewNetwork(lineNodes(5, func() Protocol { return mk() }))
		net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 20, Payload: "x"})
		net.Inject(Message{ID: 2, Src: 5, Dst: 1, At: 30, Payload: "y"})
		net.Run(80)
		return net
	}
	flood := Summarize("flooding", run(func() Protocol { return &Flooding{} }))
	dv := Summarize("dv", run(func() Protocol { return &DV{BeaconEvery: 3} }))
	c := Compare(flood, dv)

	// On a static line both deliver everything…
	if flood.DeliveryRatio != 1 || dv.DeliveryRatio != 1 {
		t.Fatalf("delivery: flood %.2f dv %.2f", flood.DeliveryRatio, dv.DeliveryRatio)
	}
	if c.BetterDelivery() != "" {
		t.Errorf("BetterDelivery = %q on a tie", c.BetterDelivery())
	}
	// …but the beacons make DV's total overhead the larger one here.
	if c.CheaperOverhead() != "flooding" {
		t.Errorf("CheaperOverhead = %q (flood %d vs dv %d)",
			c.CheaperOverhead(), flood.Overhead, dv.Overhead)
	}
	if !strings.Contains(c.String(), "flooding") || !strings.Contains(c.String(), "dv") {
		t.Error("String missing names")
	}
}

func TestCompareAsymmetric(t *testing.T) {
	a := Summary{Name: "a", DeliveryRatio: 0.9, Overhead: 100}
	b := Summary{Name: "b", DeliveryRatio: 0.7, Overhead: 60}
	c := Compare(a, b)
	if c.BetterDelivery() != "a" {
		t.Errorf("BetterDelivery = %q", c.BetterDelivery())
	}
	if c.CheaperOverhead() != "b" {
		t.Errorf("CheaperOverhead = %q", c.CheaperOverhead())
	}
}
