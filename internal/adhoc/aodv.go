package adhoc

// AODV-like protocol: reactive route discovery like SR, but hop-by-hop
// forwarding like DV — route requests flood and install *reverse* routes
// toward the origin; the destination's route reply walks those reverse
// routes back, installing *forward* routes toward the destination; data
// packets then follow next-hop pointers with no source route in the packet.
// This is the fourth baseline family of the Broch et al. comparison.
type AODV struct {
	BufferCap int

	api    *API
	routes map[int]aodvRoute
	seenRq map[uint64]bool
	buffer []Message
	reqSeq uint64
}

type aodvRoute struct {
	next int
	hops int
}

// Init implements Protocol.
func (a *AODV) Init(api *API) {
	a.api = api
	a.routes = make(map[int]aodvRoute)
	a.seenRq = make(map[uint64]bool)
	if a.BufferCap == 0 {
		a.BufferCap = 16
	}
}

// OnTick implements Protocol.
func (a *AODV) OnTick(*API) {}

// Originate implements Protocol.
func (a *AODV) Originate(api *API, m Message) {
	if a.forward(api, m) {
		return
	}
	if len(a.buffer) < a.BufferCap {
		a.buffer = append(a.buffer, m)
	}
	a.reqSeq++
	rq := uint64(api.ID())<<32 | a.reqSeq
	a.seenRq[rq] = true
	api.Send(Packet{Kind: "arreq", To: Broadcast, Src: api.ID(), Dst: m.Dst, Seq: rq, Hops: 1})
}

func (a *AODV) forward(api *API, m Message) bool {
	r, ok := a.routes[m.Dst]
	if !ok {
		return false
	}
	return api.Send(Packet{
		Kind: "data", To: r.next, Src: m.Src, Dst: m.Dst,
		MsgID: m.ID, OriginTime: m.At, Hops: 1, Payload: m.Payload,
	})
}

// install keeps the better (fresher-or-shorter) route.
func (a *AODV) install(dst, next, hops int) {
	if cur, ok := a.routes[dst]; !ok || hops < cur.hops {
		a.routes[dst] = aodvRoute{next: next, hops: hops}
	}
}

// OnPacket implements Protocol.
func (a *AODV) OnPacket(api *API, p *Packet) {
	me := api.ID()
	switch p.Kind {
	case "arreq":
		if a.seenRq[p.Seq] {
			return
		}
		a.seenRq[p.Seq] = true
		// Reverse route toward the origin.
		a.install(p.Src, p.From, p.Hops)
		if p.Dst == me {
			// Answer along the reverse route.
			api.Send(Packet{Kind: "arrep", To: p.From, Src: me, Dst: p.Src, Hops: 1, Seq: p.Seq})
			return
		}
		fwd := *p
		fwd.To = Broadcast
		fwd.Hops++
		api.Send(fwd)
	case "arrep":
		// Forward route toward the replying destination.
		a.install(p.Src, p.From, p.Hops)
		if p.Dst == me {
			var still []Message
			for _, m := range a.buffer {
				if m.Dst != p.Src || !a.forward(api, m) {
					still = append(still, m)
				}
			}
			a.buffer = still
			return
		}
		if r, ok := a.routes[p.Dst]; ok {
			fwd := *p
			fwd.To = r.next
			fwd.Hops++
			api.Send(fwd)
		}
	case "data":
		if p.Dst == me {
			api.Deliver(p)
			return
		}
		if r, ok := a.routes[p.Dst]; ok {
			fwd := *p
			fwd.To = r.next
			fwd.Hops++
			api.Send(fwd)
		}
	}
}
