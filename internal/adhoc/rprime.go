package adhoc

import (
	"rtc/internal/timeseq"
)

// §5.2.4 closes with the variant R′_{n,u}: the routing problem where a
// message may be lost — modelled by t′_f = ω — and notes that "in practice
// an infinite delivery time usually means that the delivery time exceeds
// some finite threshold T. This situation is modeled by our initial
// construction, where a lost message is a message for which t′_f − t_1 > T."
// The helpers below implement that threshold semantics over recorded runs.

// Latency returns t′_f − t_1 for one message: the time from origination to
// end-to-end delivery. ok is false when the message was never delivered
// (t′_f = ω).
func (tr *Trace) Latency(msgID uint64) (timeseq.Time, bool) {
	var orig *OrigEvent
	for i := range tr.Origs {
		if tr.Origs[i].M.ID == msgID {
			orig = &tr.Origs[i]
			break
		}
	}
	if orig == nil {
		return 0, false
	}
	for i := range tr.Delivers {
		if tr.Delivers[i].P.MsgID == msgID {
			return tr.Delivers[i].At - orig.At, true
		}
	}
	return 0, false
}

// LostBeyond reports whether the message counts as lost under threshold T:
// never delivered, or delivered with t′_f − t_1 > T.
func (tr *Trace) LostBeyond(msgID uint64, T timeseq.Time) bool {
	lat, ok := tr.Latency(msgID)
	return !ok || lat > T
}

// DeliveryRatioWithin is the R′-style delivery ratio: the fraction of
// originated messages delivered within the threshold.
func (tr *Trace) DeliveryRatioWithin(T timeseq.Time) float64 {
	if len(tr.Origs) == 0 {
		return 0
	}
	ok := 0
	for _, o := range tr.Origs {
		if !tr.LostBeyond(o.M.ID, T) {
			ok++
		}
	}
	return float64(ok) / float64(len(tr.Origs))
}

// LatencyProfile returns the delivery latencies of all delivered messages,
// in origination order, for distribution summaries.
func (tr *Trace) LatencyProfile() []timeseq.Time {
	var out []timeseq.Time
	for _, o := range tr.Origs {
		if lat, ok := tr.Latency(o.M.ID); ok {
			out = append(out, lat)
		}
	}
	return out
}
