package adhoc

import "rtc/internal/timeseq"

// Crash-stop failure injection: a failed node neither transmits nor
// receives from its failure instant on. §5.2's model absorbs this without
// change — a dead node is simply one whose range predicate goes false
// forever — and the routing language's t′_f = ω case covers the messages
// it strands.

// FailAt schedules a crash-stop failure of the node at time t. The node
// stops participating from t on (inclusive).
func (n *Network) FailAt(id int, t timeseq.Time) {
	if n.downAt == nil {
		n.downAt = map[int]timeseq.Time{}
	}
	n.downAt[id] = t
}

// Alive reports whether the node participates at time t.
func (n *Network) Alive(id int, t timeseq.Time) bool {
	if n.downAt == nil {
		return true
	}
	at, ok := n.downAt[id]
	return !ok || t < at
}
