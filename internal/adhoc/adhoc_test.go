package adhoc

import (
	"math"
	"testing"

	"rtc/internal/timeseq"
)

func TestDistAndReflect(t *testing.T) {
	if d := Dist(Pos{0, 0}, Pos{3, 4}); d != 5 {
		t.Errorf("Dist = %g", d)
	}
	if got := reflect1D(12, 10); got != 8 {
		t.Errorf("reflect1D(12,10) = %g", got)
	}
	if got := reflect1D(-3, 10); got != 3 {
		t.Errorf("reflect1D(-3,10) = %g", got)
	}
	if got := reflect1D(23, 10); got != 3 {
		t.Errorf("reflect1D(23,10) = %g", got)
	}
}

func TestConstVelStaysInArena(t *testing.T) {
	m := ConstVel{Start: Pos{5, 5}, VX: 1.7, VY: -2.3, W: 20, H: 15}
	for tt := timeseq.Time(0); tt < 200; tt++ {
		p := m.Pos(tt)
		if p.X < 0 || p.X > 20 || p.Y < 0 || p.Y > 15 {
			t.Fatalf("escaped arena at %d: %+v", tt, p)
		}
	}
}

func TestWaypointDeterministicAndBounded(t *testing.T) {
	a := NewWaypoint(42, 100, 100, 2, 5)
	b := NewWaypoint(42, 100, 100, 2, 5)
	for tt := timeseq.Time(0); tt < 300; tt++ {
		pa, pb := a.Pos(tt), b.Pos(tt)
		if pa != pb {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", tt, pa, pb)
		}
		if pa.X < 0 || pa.X > 100 || pa.Y < 0 || pa.Y > 100 {
			t.Fatalf("escaped arena at %d: %+v", tt, pa)
		}
	}
	// Speed bound: per-chronon displacement ≤ speed (with slack for the
	// ceil in leg timing).
	prev := a.Pos(0)
	for tt := timeseq.Time(1); tt < 300; tt++ {
		cur := a.Pos(tt)
		if d := Dist(prev, cur); d > 2.0+1e-9 {
			t.Fatalf("moved %g > speed at %d", d, tt)
		}
		prev = cur
	}
	// Random access equals sequential access (purity).
	if a.Pos(50) != b.Pos(50) {
		t.Fatal("random access diverged")
	}
}

// lineNodes builds a static chain 1-2-3-…-n spaced just within range.
func lineNodes(n int, proto func() Protocol) []*Node {
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &Node{
			ID:    i + 1,
			Mob:   Static(Pos{X: float64(i) * 9, Y: 0}),
			Range: 10,
			Proto: proto(),
		}
	}
	return nodes
}

func TestInRangeAndNeighbors(t *testing.T) {
	net := NewNetwork(lineNodes(4, func() Protocol { return &Flooding{} }))
	if !net.InRange(1, 2, 0) || net.InRange(1, 3, 0) {
		t.Error("range predicate broken")
	}
	if net.InRange(2, 2, 0) {
		t.Error("node in range of itself")
	}
	nb := net.Neighbors(2, 0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(2) = %v", nb)
	}
}

func TestShortestHops(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &Flooding{} }))
	if got := net.shortestHops(1, 5, 0); got != 4 {
		t.Errorf("shortestHops = %d, want 4", got)
	}
	if got := net.shortestHops(3, 3, 0); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	// Partitioned: a far-away node.
	nodes := lineNodes(2, func() Protocol { return &Flooding{} })
	nodes = append(nodes, &Node{ID: 3, Mob: Static(Pos{1000, 1000}), Range: 10, Proto: &Flooding{}})
	net = NewNetwork(nodes)
	if got := net.shortestHops(1, 3, 0); got != -1 {
		t.Errorf("unreachable distance = %d", got)
	}
}

func TestFloodingDeliversAlongLine(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &Flooding{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 1, Payload: "hello"})
	net.Run(20)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("metrics = %v", m)
	}
	// One-chronon hops: 4 hops from origination.
	if at := m.deliveredAt[1]; at != 1+4 {
		t.Errorf("delivered at %d, want 5", at)
	}
	// Flooding transmits once per node except the destination.
	if m.DataTransmissions != 4 {
		t.Errorf("data transmissions = %d, want 4", m.DataTransmissions)
	}
	if m.ControlPackets != 0 {
		t.Errorf("flooding has control packets: %d", m.ControlPackets)
	}
}

func TestDVDeliversAfterConvergence(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &DV{BeaconEvery: 2} }))
	// Let routing tables converge, then send.
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 30, Payload: "x"})
	net.Run(60)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("DV did not deliver: %v", m)
	}
	// Unicast chain: exactly 4 data transmissions.
	if m.DataTransmissions != 4 {
		t.Errorf("data transmissions = %d, want 4", m.DataTransmissions)
	}
	if m.ControlPackets == 0 {
		t.Error("DV should spend control packets on beacons")
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK {
		t.Fatalf("route check failed: %v", ck.Violations)
	}
	if len(ck.Hops) != 4 {
		t.Errorf("hops = %d, want 4", len(ck.Hops))
	}
	if ck.Latency != 4 {
		t.Errorf("latency = %d, want 4 (one chronon per hop)", ck.Latency)
	}
}

func TestSRRouteDiscoveryAndDelivery(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &SR{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 1, Payload: "x"})
	net.Run(40)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("SR did not deliver: %v", m)
	}
	if m.ControlPackets == 0 {
		t.Error("SR should spend control packets on discovery")
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK {
		t.Fatalf("route check failed: %v", ck.Violations)
	}
	// A second message to the same destination reuses the cached route:
	// control packets must not grow.
	ctrlBefore := m.ControlPackets
	net.Inject(Message{ID: 2, Src: 1, Dst: 5, At: net.Now() + 1, Payload: "y"})
	net.Run(net.Now() + 20)
	if net.Metrics().Delivered != 2 {
		t.Fatal("second message lost")
	}
	if net.Metrics().ControlPackets != ctrlBefore {
		t.Errorf("cached route still cost control packets: %d → %d",
			ctrlBefore, net.Metrics().ControlPackets)
	}
}

func TestGeoGreedyForwarding(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &Geo{BeaconEvery: 2, BeaconTTL: 5} }))
	// Give beacons time to spread positions.
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 25, Payload: "x"})
	net.Run(60)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("Geo did not deliver: %v", m)
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK {
		t.Fatalf("route check failed: %v", ck.Violations)
	}
}

// All four protocols against the same mobile scenario: flooding must
// deliver at least as much as anything else, and spend the most data
// transmissions; every delivered route must validate.
func TestProtocolComparisonInvariants(t *testing.T) {
	protos := map[string]func() Protocol{
		"flooding": func() Protocol { return &Flooding{} },
		"dv":       func() Protocol { return &DV{BeaconEvery: 4} },
		"sr":       func() Protocol { return &SR{} },
		"geo":      func() Protocol { return &Geo{BeaconEvery: 4, BeaconTTL: 4} },
	}
	results := map[string]*Metrics{}
	for name, mk := range protos {
		nodes := make([]*Node, 12)
		for i := range nodes {
			nodes[i] = &Node{
				ID:    i + 1,
				Mob:   NewWaypoint(int64(100+i), 120, 120, 1.5, 20),
				Range: 45,
				Proto: mk(),
			}
		}
		net := NewNetwork(nodes)
		id := uint64(1)
		for at := timeseq.Time(30); at <= 120; at += 15 {
			src := int(id%12) + 1
			dst := int((id*5)%12) + 1
			if dst == src {
				dst = dst%12 + 1
			}
			net.Inject(Message{ID: id, Src: src, Dst: dst, At: at, Payload: "p"})
			id++
		}
		net.Run(220)
		results[name] = net.Metrics()
		// Every delivered message's route must satisfy §5.2.4.
		for mid := range net.Metrics().deliveredAt {
			ck := net.Trace().CheckRoute(mid, net)
			if !ck.OK {
				t.Errorf("%s: message %d route invalid: %v", name, mid, ck.Violations)
			}
		}
	}
	if results["flooding"].Delivered < results["dv"].Delivered-1 {
		t.Errorf("flooding delivered %d < dv %d", results["flooding"].Delivered, results["dv"].Delivered)
	}
	for name, m := range results {
		if name == "flooding" {
			continue
		}
		if m.DataTransmissions > results["flooding"].DataTransmissions {
			t.Errorf("%s used more data transmissions (%d) than flooding (%d)",
				name, m.DataTransmissions, results["flooding"].DataTransmissions)
		}
	}
}

func TestMetricsAccessors(t *testing.T) {
	m := &Metrics{
		Sent: 4, Delivered: 3, DataTransmissions: 9, ControlPackets: 11,
		deliveredHops: map[uint64]int{1: 2, 2: 3, 3: 5},
		originHops:    map[uint64]int{1: 2, 2: 2, 3: 4},
	}
	if r := m.DeliveryRatio(); math.Abs(r-0.75) > 1e-9 {
		t.Errorf("DeliveryRatio = %g", r)
	}
	if m.Overhead() != 20 {
		t.Errorf("Overhead = %d", m.Overhead())
	}
	// Excess hops: (2-2)+(3-2)+(5-4) = 2 over 3 messages.
	if po := m.PathOptimality(); math.Abs(po-2.0/3.0) > 1e-9 {
		t.Errorf("PathOptimality = %g", po)
	}
	var empty Metrics
	if empty.DeliveryRatio() != 0 || empty.PathOptimality() != 0 {
		t.Error("empty metrics not zero")
	}
}

func TestSendCap(t *testing.T) {
	nodes := lineNodes(2, func() Protocol { return &Flooding{} })
	net := NewNetwork(nodes)
	net.SendCap = 1
	api := net.apis[1]
	net.Step() // reset counters
	if !api.Send(Packet{Kind: "data", To: Broadcast}) {
		t.Fatal("first send blocked")
	}
	if api.Send(Packet{Kind: "data", To: Broadcast}) {
		t.Fatal("second send allowed beyond cap")
	}
	if net.Metrics().SendCapHits != 1 {
		t.Errorf("SendCapHits = %d", net.Metrics().SendCapHits)
	}
}
