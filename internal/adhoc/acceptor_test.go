package adhoc

import (
	"testing"

	"rtc/internal/core"
)

// The online R_{n,u} acceptor consumes the network word itself and commits
// to s_f exactly when a valid route is witnessed.
func TestRoutingAcceptorAcceptsDeliveredRoute(t *testing.T) {
	net := NewNetwork(lineNodes(4, func() Protocol { return &Flooding{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 4, At: 3, Payload: "b"})
	net.Run(30)
	res := AcceptRoutingWord(net, 1, 4, "b", 30)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// The word carries the timing: origination at 3, hops transmitted at
	// 3, 4 and 5. The final m record arrives at its generation time 5 and
	// already witnesses the (one-chronon) delivery at 6, so the acceptor
	// commits at tick 5.
	if res.DecidedAt != 5 {
		t.Errorf("decided at %d, want 5", res.DecidedAt)
	}
}

func TestRoutingAcceptorRejectsUndelivered(t *testing.T) {
	nodes := []*Node{
		{ID: 1, Mob: Static(Pos{0, 0}), Range: 5, Proto: &Flooding{}},
		{ID: 2, Mob: Static(Pos{100, 0}), Range: 5, Proto: &Flooding{}},
	}
	net := NewNetwork(nodes)
	net.Inject(Message{ID: 1, Src: 1, Dst: 2, At: 2, Payload: "b"})
	net.Run(25)
	res := AcceptRoutingWord(net, 1, 2, "b", 25)
	if res.Verdict != core.RejectAtHorizon {
		t.Fatalf("verdict = %v (t'_f = ω cannot be proven, only observed)", res.Verdict)
	}
}

func TestRoutingAcceptorBodyMismatch(t *testing.T) {
	net := NewNetwork(lineNodes(3, func() Protocol { return &Flooding{} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 3, At: 2, Payload: "real"})
	net.Run(20)
	// Watching for a different body: the trace contains no route for it.
	res := AcceptRoutingWord(net, 1, 3, "other", 20)
	if res.Verdict.Accepted() {
		t.Fatalf("accepted a route for a body the network never carried")
	}
}

// The acceptor validates the range predicate from the word's own position
// stream: a unicast protocol's route is accepted end to end.
func TestRoutingAcceptorOnUnicastProtocol(t *testing.T) {
	net := NewNetwork(lineNodes(5, func() Protocol { return &DV{BeaconEvery: 2} }))
	net.Inject(Message{ID: 1, Src: 1, Dst: 5, At: 25, Payload: "b"})
	net.Run(60)
	if net.Metrics().Delivered != 1 {
		t.Fatal("setup: not delivered")
	}
	res := AcceptRoutingWord(net, 1, 5, "b", 60)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}
