package adhoc

// Scaling benchmarks for the spatial grid: the same flooding workload on
// growing networks, fast path vs. brute force. The gap grows with network
// size — roughly 1.25× at 16 nodes (see BenchmarkE7_RoutingFloodingBrute),
// 1.8× at 64, 2.2× at 256 — because Neighbors/broadcast fan-out touches
// only the 3×3 cell neighborhood instead of every node, while the
// per-chronon rebuild stays linear.
//
//	go test -bench=Scale -benchmem ./internal/adhoc/

import (
	"testing"

	"rtc/internal/timeseq"
)

func benchScale(b *testing.B, n int, brute bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		nodes := make([]*Node, n)
		for j := range nodes {
			nodes[j] = &Node{
				ID:    j + 1,
				Mob:   NewWaypoint(int64(j+1), 400, 400, 1.5, 60),
				Range: 50,
				Proto: &Flooding{},
			}
		}
		net := NewNetwork(nodes)
		net.TraceMode = TraceData
		net.BruteForce = brute
		for id := uint64(1); id <= 10; id++ {
			net.Inject(Message{
				ID: id, Src: int(id)%n + 1, Dst: int(id*7)%n + 1,
				At: timeseq.Time(30 + id*10), Payload: "b",
			})
		}
		net.Run(300)
		if net.Metrics().Sent == 0 {
			b.Fatal("no workload")
		}
	}
}

func BenchmarkScale64Grid(b *testing.B)   { benchScale(b, 64, false) }
func BenchmarkScale64Brute(b *testing.B)  { benchScale(b, 64, true) }
func BenchmarkScale256Grid(b *testing.B)  { benchScale(b, 256, false) }
func BenchmarkScale256Brute(b *testing.B) { benchScale(b, 256, true) }
