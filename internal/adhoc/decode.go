package adhoc

import (
	"strconv"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// The message and receive-event encodings of §5.2.3 are invertible: a
// network trace can be reconstructed from its events word. This closes the
// loop on the paper's claim that the word w ∈ R_{n,u} "models all the
// relevant characteristics of a routing problem" — the characteristics can
// be read back out.

// DecodedEvent is one m_u or r_u read back from a word.
type DecodedEvent struct {
	Kind byte // 'm' (send) or 'r' (receive)
	At   timeseq.Time
	Gen  timeseq.Time // the encoded generation time t
	From int          // s
	To   int          // d (link layer)
	Body string       // the message body (sends only)
}

// DecodeEventsWord parses a finite word consisting of m/r records (as built
// by Trace.EventsWord) back into events. It fails on malformed input.
func DecodeEventsWord(w word.Finite) ([]DecodedEvent, bool) {
	var out []DecodedEvent
	i := 0
	for i < len(w) {
		if w[i].Sym != encoding.Dollar {
			return nil, false
		}
		at := w[i].At
		j := i + 1
		for j < len(w) && w[j].Sym != encoding.Dollar {
			j++
		}
		if j == len(w) {
			return nil, false
		}
		syms := make([]word.Symbol, 0, j-i+1)
		for k := i; k <= j; k++ {
			syms = append(syms, w[k].Sym)
		}
		rec, ok := encoding.ParseRecord(syms)
		if !ok || len(rec) < 4 {
			return nil, false
		}
		gen, err1 := strconv.ParseUint(rec[1], 10, 64)
		from, err2 := strconv.ParseInt(rec[2], 10, 64)
		to, err3 := strconv.ParseInt(rec[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, false
		}
		ev := DecodedEvent{
			At:   at,
			Gen:  timeseq.Time(gen),
			From: int(from),
			To:   int(to),
		}
		switch rec[0] {
		case "m":
			if len(rec) != 5 {
				return nil, false
			}
			ev.Kind = 'm'
			ev.Body = rec[4]
		case "r":
			if len(rec) != 4 {
				return nil, false
			}
			ev.Kind = 'r'
		default:
			return nil, false
		}
		out = append(out, ev)
		i = j + 1
	}
	return out, true
}
