package adhoc

import (
	"testing"
)

func TestFailedRelayStrandsMessages(t *testing.T) {
	// Line 1–2–3: node 2 is the only relay.
	net := NewNetwork(lineNodes(3, func() Protocol { return &Flooding{} }))
	net.FailAt(2, 10)
	// Before the failure: delivered.
	net.Inject(Message{ID: 1, Src: 1, Dst: 3, At: 2, Payload: "x"})
	// After the failure: stranded, t′_f = ω.
	net.Inject(Message{ID: 2, Src: 1, Dst: 3, At: 20, Payload: "y"})
	net.Run(60)
	m := net.Metrics()
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", m.Delivered)
	}
	if !net.Trace().LostBeyond(2, 1_000_000) {
		t.Error("post-failure message not lost")
	}
	if ck := net.Trace().CheckRoute(1, net); !ck.OK {
		t.Errorf("pre-failure route invalid: %v", ck.Violations)
	}
	if ck := net.Trace().CheckRoute(2, net); ck.Delivered {
		t.Error("post-failure message claims delivery")
	}
}

func TestRedundantPathSurvivesFailure(t *testing.T) {
	// Diamond: 1 reaches 4 via 2 or 3.
	nodes := []*Node{
		{ID: 1, Mob: Static(Pos{0, 5}), Range: 8, Proto: &Flooding{}},
		{ID: 2, Mob: Static(Pos{6, 0}), Range: 8, Proto: &Flooding{}},
		{ID: 3, Mob: Static(Pos{6, 10}), Range: 8, Proto: &Flooding{}},
		{ID: 4, Mob: Static(Pos{12, 5}), Range: 8, Proto: &Flooding{}},
	}
	net := NewNetwork(nodes)
	net.FailAt(2, 0) // one arm down from the start
	net.Inject(Message{ID: 1, Src: 1, Dst: 4, At: 5, Payload: "x"})
	net.Run(40)
	if net.Metrics().Delivered != 1 {
		t.Fatal("flooding failed to route around the dead arm")
	}
	ck := net.Trace().CheckRoute(1, net)
	if !ck.OK {
		t.Fatalf("route check: %v", ck.Violations)
	}
	// The surviving path goes through node 3.
	for _, h := range ck.Hops {
		if h.From == 2 || h.To == 2 {
			t.Fatalf("route used the dead node: %v", ck.Hops)
		}
	}
}

func TestDeadNodesSendNothing(t *testing.T) {
	net := NewNetwork(lineNodes(3, func() Protocol { return &DV{BeaconEvery: 2} }))
	net.FailAt(3, 0)
	net.Run(30)
	for _, s := range net.Trace().Sends {
		if s.P.From == 3 {
			t.Fatalf("dead node transmitted at %d", s.At)
		}
	}
	for _, r := range net.Trace().Recvs {
		if r.By == 3 {
			t.Fatalf("dead node received at %d", r.At)
		}
	}
	if net.Alive(3, 0) || !net.Alive(1, 1000) {
		t.Error("Alive bookkeeping wrong")
	}
}

func TestFailedSourceOriginatesNothing(t *testing.T) {
	net := NewNetwork(lineNodes(3, func() Protocol { return &Flooding{} }))
	net.FailAt(1, 0)
	net.Inject(Message{ID: 1, Src: 1, Dst: 3, At: 5, Payload: "x"})
	net.Run(30)
	m := net.Metrics()
	if m.Sent != 1 {
		t.Errorf("workload count = %d (the environment still generated it)", m.Sent)
	}
	if m.Delivered != 0 || m.DataTransmissions != 0 {
		t.Errorf("dead source produced traffic: %+v", m)
	}
}
