package adhoc

import (
	"math/rand/v2"
	"testing"

	"rtc/internal/timeseq"
)

// countProto counts originations per node without sending anything.
type countProto struct {
	origs []Message
}

func (c *countProto) Init(*API)              {}
func (c *countProto) OnTick(*API)            {}
func (c *countProto) OnPacket(*API, *Packet) {}
func (c *countProto) Originate(_ *API, m Message) {
	c.origs = append(c.origs, m)
}

// TestInjectIncremental10k is the regression test for Inject's quadratic
// behavior: the old implementation re-ran sort.SliceStable over the whole
// workload on every call, so 10k one-message calls cost ~10k full sorts.
// Sorted insertion makes the same pattern cheap; this test pins the
// semantics — messages originate in nondecreasing time order, with
// injection order preserved among equal times — and doubles as a
// don't-hang canary for the quadratic path.
func TestInjectIncremental10k(t *testing.T) {
	const N = 10000
	nodes := []*Node{
		{ID: 1, Mob: Static{0, 0}, Range: 10, Proto: &countProto{}},
		{ID: 2, Mob: Static{5, 0}, Range: 10, Proto: &countProto{}},
	}
	net := NewNetwork(nodes)
	net.SendCap = 1 << 30
	rng := rand.New(rand.NewPCG(42, 7))
	for id := uint64(1); id <= N; id++ {
		// Random times in [1, 500] guarantee heavy ties: the stable-order
		// property is exercised, not just the sort order.
		at := timeseq.Time(1 + rng.IntN(500))
		net.Inject(Message{ID: id, Src: 1, Dst: 2, At: at, Payload: "b"})
	}
	net.Run(501)
	origs := net.Trace().Origs
	if len(origs) != N {
		t.Fatalf("originated %d messages, want %d", len(origs), N)
	}
	seen := make(map[uint64]bool, N)
	for i := 1; i < len(origs); i++ {
		a, b := origs[i-1], origs[i]
		if b.M.At < a.M.At {
			t.Fatalf("origination order regressed at %d: t=%d after t=%d", i, b.M.At, a.M.At)
		}
		if b.M.At == a.M.At && b.M.ID < a.M.ID {
			// IDs were injected in increasing order, so among equal times
			// stable insertion must preserve increasing IDs.
			t.Fatalf("stability violated at %d: id %d after id %d at t=%d", i, b.M.ID, a.M.ID, b.M.At)
		}
	}
	for _, o := range origs {
		if seen[o.M.ID] {
			t.Fatalf("message %d originated twice", o.M.ID)
		}
		seen[o.M.ID] = true
	}
}

// TestInjectAfterDrain verifies the workload cursor resets cleanly: a
// second wave injected after the first fully drains must originate, and
// late (past-due) messages fire on the next chronon.
func TestInjectAfterDrain(t *testing.T) {
	nodes := []*Node{
		{ID: 1, Mob: Static{0, 0}, Range: 10, Proto: &countProto{}},
		{ID: 2, Mob: Static{5, 0}, Range: 10, Proto: &countProto{}},
	}
	net := NewNetwork(nodes)
	net.Inject(Message{ID: 1, Src: 1, Dst: 2, At: 2, Payload: "a"})
	net.Run(10)
	if net.Metrics().Sent != 1 {
		t.Fatalf("first wave: sent %d, want 1", net.Metrics().Sent)
	}
	// Second wave: one future message, one already past due.
	net.Inject(Message{ID: 2, Src: 1, Dst: 2, At: 15, Payload: "b"})
	net.Inject(Message{ID: 3, Src: 1, Dst: 2, At: 3, Payload: "c"})
	net.Run(20)
	if net.Metrics().Sent != 3 {
		t.Fatalf("after second wave: sent %d, want 3", net.Metrics().Sent)
	}
	origs := net.Trace().Origs
	if origs[1].M.ID != 3 || origs[2].M.ID != 2 {
		t.Fatalf("second wave order: got %d then %d, want 3 then 2", origs[1].M.ID, origs[2].M.ID)
	}
}

// TestInjectInterleavedWithRun injects mid-run between steps, before and
// after the cursor has consumed part of the workload.
func TestInjectInterleavedWithRun(t *testing.T) {
	nodes := []*Node{
		{ID: 1, Mob: Static{0, 0}, Range: 10, Proto: &countProto{}},
		{ID: 2, Mob: Static{5, 0}, Range: 10, Proto: &countProto{}},
	}
	net := NewNetwork(nodes)
	net.Inject(Message{ID: 1, Src: 1, Dst: 2, At: 1, Payload: "a"})
	net.Inject(Message{ID: 2, Src: 1, Dst: 2, At: 8, Payload: "b"})
	net.Run(4) // consumes ID 1, leaves ID 2 pending behind the cursor
	net.Inject(Message{ID: 3, Src: 1, Dst: 2, At: 6, Payload: "c"})
	net.Run(10)
	origs := net.Trace().Origs
	if len(origs) != 3 {
		t.Fatalf("originated %d, want 3", len(origs))
	}
	want := []uint64{1, 3, 2}
	for i, w := range want {
		if origs[i].M.ID != w {
			t.Fatalf("origination order: got %v, want %v", []uint64{origs[0].M.ID, origs[1].M.ID, origs[2].M.ID}, want)
		}
	}
}
