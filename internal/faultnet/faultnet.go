// Package faultnet is deterministic fault injection for the wire, the
// network twin of internal/faultfs: production code dials through the
// zero-cost OS passthrough, tests dial and listen through a Fabric — an
// in-memory switched network whose connections implement net.Conn with
// full deadline support — and arm seeded faults at exact write-operation
// counts:
//
//   - mid-frame connection cuts (a seeded strict prefix of the write is
//     delivered, then both directions reset),
//   - silent drops of one write (the writer sees success; the reader's
//     frame stream desyncs and must surface it as a checksum failure),
//   - payload corruption (one seeded byte of one write is flipped),
//   - slow-loris stalls (writes block until Heal — the socket is open,
//     nothing moves),
//   - one-way and two-way partitions (writes "succeed" but the bytes are
//     held, exactly the half-open case heartbeats must catch; Heal
//     delivers them, modeling TCP retransmission after the blackhole
//     lifts),
//   - seeded write splitting and latency jitter for chaos hammers.
//
// Everything is driven by the fabric's seed and a single armed fault
// point, so a torture sweep can walk every write op of a workload and any
// failing point reproduces from (seed, at). After a byte-damaging fault
// the fabric captures the reader-visible malformed stream, exportable as
// rtwire fuzz corpus seeds.
package faultnet

import (
	"net"
	"time"
)

// Dialer is the connection factory the client and replica thread through
// their dial paths. Production uses OS; tests pass Fabric.Dialer(label).
type Dialer interface {
	DialTimeout(network, address string, timeout time.Duration) (net.Conn, error)
}

// OS is the production passthrough: a real TCP dial, nothing injected.
type OS struct{}

// DialTimeout implements Dialer via net.DialTimeout.
func (OS) DialTimeout(network, address string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, address, timeout)
}
