package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pair dials one connection through a fresh fabric, returning both ends.
func pair(t *testing.T, f *Fabric, clientLabel, serverAddr string) (client, server net.Conn) {
	t.Helper()
	ln, err := f.Listen(serverAddr)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := f.Dialer(clientLabel).DialTimeout("tcp", serverAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-accepted:
		return c, s
	case <-time.After(2 * time.Second):
		t.Fatal("accept never completed")
		return nil, nil
	}
}

func TestRoundTripAndClose(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")

	msg := []byte("hello over the fabric")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, wrote %q", got, msg)
	}
	// Reverse direction works too.
	if _, err := s.Write([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, 3)
	if _, err := io.ReadFull(c, ack); err != nil {
		t.Fatal(err)
	}

	// Graceful close: the peer drains to EOF; our own reads fail ErrClosed;
	// peer writes see a reset.
	c.Close()
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after close: %v, want EOF", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("own read after close: %v, want ErrClosed", err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write to a closed peer succeeded")
	}
}

func TestReadDeadlineAndInterrupt(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	c, _ := pair(t, f, "client", "srv:1")

	// A past deadline interrupts a blocked read — the netserve
	// interruptRead idiom (SetReadDeadline(now)) must work.
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.SetReadDeadline(time.Now())
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("interrupted read: %v, want deadline exceeded", err)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("deadline error is not a net.Error timeout: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read not interrupted by SetReadDeadline(now)")
	}
}

func TestCutDeliversPrefixThenReset(t *testing.T) {
	run := func(seed uint64) (prefix []byte, werr error) {
		f := NewFabric(seed)
		defer f.Close()
		c, s := pair(t, f, "client", "srv:1")
		f.ArmAt(2, Fault{Kind: FaultCut})

		if _, err := c.Write([]byte("frame-one")); err != nil { // op 1
			t.Fatal(err)
		}
		_, werr = c.Write([]byte("frame-two-cut-here")) // op 2: fires
		got := make([]byte, 64)
		n, _ := io.ReadFull(s, got[:9]) // frame-one arrives whole
		total := n
		for {
			m, err := s.Read(got[total:])
			total += m
			if err != nil {
				if !errors.Is(err, ErrInjectedReset) {
					t.Fatalf("reader got %v, want ErrInjectedReset", err)
				}
				break
			}
		}
		return got[9:total], werr
	}
	p1, werr := run(7)
	if werr == nil {
		t.Fatal("cut write reported success")
	}
	if len(p1) >= len("frame-two-cut-here") {
		t.Fatalf("cut delivered the whole write (%d bytes)", len(p1))
	}
	// Determinism: the same seed cuts at the same prefix length.
	p2, _ := run(7)
	if !bytes.Equal(p1, p2) {
		t.Fatalf("cut prefix not deterministic: %q vs %q", p1, p2)
	}
}

func TestDropDesyncsStream(t *testing.T) {
	f := NewFabric(3)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")
	f.ArmAt(2, Fault{Kind: FaultDrop})

	for _, m := range []string{"aaaa", "bbbb", "cccc"} {
		if _, err := c.Write([]byte(m)); err != nil {
			t.Fatalf("write %q: %v (drops must look like success)", m, err)
		}
	}
	// A strict prefix of "bbbb" vanished but its suffix flowed on: the
	// reader sees fewer bytes than were written, never cleanly realigned
	// on a write boundary.
	if err := s.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	n, _ := io.ReadFull(s, got)
	got = got[:n]
	if n <= 8 || n >= 12 {
		t.Fatalf("reader saw %d bytes %q, want a strict-prefix drop of one write (9..11 bytes)", n, got)
	}
	if string(got[:4]) != "aaaa" || string(got[n-4:]) != "cccc" {
		t.Fatalf("reader saw %q, want intact neighbors around the damaged write", got)
	}
	if tapped := f.MalformedStream(); !bytes.Equal(tapped, got[4:]) {
		t.Fatalf("malformed-stream tap = %q, want the reader-visible post-drop bytes %q", tapped, got[4:])
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	f := NewFabric(11)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")
	f.ArmAt(1, Fault{Kind: FaultCorrupt})

	msg := []byte("payload-to-corrupt")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if msg[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (sent %q, got %q)", diff, msg, got)
	}
}

func TestStallBlocksUntilHeal(t *testing.T) {
	f := NewFabric(5)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")
	f.ArmAt(1, Fault{Kind: FaultStall})

	// The stalled write must respect the write deadline.
	_ = c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := c.Write([]byte("stuck")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write: %v, want deadline exceeded", err)
	}
	// After Heal the connection moves again.
	f.Heal()
	_ = c.SetWriteDeadline(time.Time{})
	if _, err := c.Write([]byte("flow")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(s, got); err != nil || string(got) != "flow" {
		t.Fatalf("post-heal read: %q, %v", got, err)
	}
}

func TestOneWayPartitionHoldsAndHeals(t *testing.T) {
	f := NewFabric(9)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")
	f.PartitionNow(Direction{From: "client", To: "srv:1"})

	// Blackholed writes look like success — the half-open socket.
	if _, err := c.Write([]byte("held")); err != nil {
		t.Fatal(err)
	}
	_ = s.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := s.Read(make([]byte, 4)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned read: %v, want silence until deadline", err)
	}
	// The reverse direction still flows: one-way.
	if _, err := s.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil || string(got) != "back" {
		t.Fatalf("reverse read under one-way partition: %q, %v", got, err)
	}
	// Heal retransmits the held bytes.
	f.Heal()
	_ = s.SetReadDeadline(time.Time{})
	if _, err := io.ReadFull(s, got); err != nil || string(got) != "held" {
		t.Fatalf("post-heal read: %q, %v", got, err)
	}
}

func TestDialUnderPartitionTimesOut(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	if _, err := f.Listen("srv:1"); err != nil {
		t.Fatal(err)
	}
	f.PartitionNow(Direction{From: "client", To: "srv:1"})
	start := time.Now()
	_, err := f.Dialer("client").DialTimeout("tcp", "srv:1", 50*time.Millisecond)
	if err == nil {
		t.Fatal("dial through a partition succeeded")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("partitioned dial failed in %v; must hang to its timeout", d)
	}
}

func TestCutAllResetsLiveConns(t *testing.T) {
	f := NewFabric(4)
	defer f.Close()
	c, s := pair(t, f, "client", "srv:1")
	f.CutAll("client", "srv:1")
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("client read after CutAll: %v", err)
	}
	if _, err := s.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("server write after CutAll: %v", err)
	}
}

func TestChaosShapingPreservesBytes(t *testing.T) {
	f := NewFabric(6)
	defer f.Close()
	f.Chaos(3, 0)
	c, s := pair(t, f, "client", "srv:1")
	msg := bytes.Repeat([]byte("0123456789"), 20)
	go func() { _, _ = c.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chaos shaping altered the byte stream")
	}
}
