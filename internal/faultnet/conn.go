package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Errors surfaced by injected faults. ErrInjectedReset is what both ends
// of a cut connection see once the delivered prefix is drained.
var (
	ErrInjectedReset = errors.New("faultnet: connection reset by injected fault")
	errPeerClosed    = errors.New("faultnet: connection reset by peer")
)

// fabricAddr is the net.Addr of a fabric endpoint: just its label.
type fabricAddr string

func (a fabricAddr) Network() string { return "faultnet" }
func (a fabricAddr) String() string  { return string(a) }

// stream is one direction of a connection: a bounded in-memory pipe with
// net.Conn deadline semantics, plus the fault hooks — a stall flag that
// blocks writers, a held buffer for blackholed bytes, a terminal error
// delivered after the buffered bytes drain (so a cut mid-frame hands the
// reader a truncated frame, then the reset), and an optional tap that
// records what the reader actually sees after a byte-damaging fault.
type stream struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf  []byte
	held []byte // blackholed bytes; Heal moves them into buf
	max  int    // buffer bound; writers block when full

	stalled bool  // slow-loris: writes make no progress until Heal
	wclosed bool  // writer closed cleanly: EOF once buf drains
	rclosed bool  // reader side closed: writes fail like EPIPE
	rerr    error // terminal reset, delivered to the reader after drain

	rdeadline, wdeadline time.Time

	tap *tap
}

func newStream(max int) *stream {
	s := &stream{max: max}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// waitLocked blocks on the condition, waking at the deadline if one is
// set. Callers re-check state (and the re-read deadline) after it returns.
func (s *stream) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		s.cond.Wait()
		return
	}
	t := time.AfterFunc(time.Until(deadline), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.cond.Wait()
	t.Stop()
}

func (s *stream) read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.rclosed {
			return 0, net.ErrClosed
		}
		if len(s.buf) > 0 {
			n := copy(p, s.buf)
			s.buf = s.buf[n:]
			if len(s.buf) == 0 {
				s.buf = nil
			}
			s.cond.Broadcast() // space freed; wake writers
			return n, nil
		}
		if s.rerr != nil {
			return 0, s.rerr
		}
		if s.wclosed {
			return 0, io.EOF
		}
		dl := s.rdeadline
		if !dl.IsZero() && !time.Now().Before(dl) {
			return 0, os.ErrDeadlineExceeded
		}
		s.waitLocked(dl)
	}
}

func (s *stream) write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	written := 0
	for len(p) > 0 {
		switch {
		case s.rerr != nil:
			return written, s.rerr
		case s.wclosed:
			return written, net.ErrClosed
		case s.rclosed:
			return written, errPeerClosed
		}
		if !s.stalled {
			if room := s.max - len(s.buf); room > 0 {
				n := min(room, len(p))
				s.buf = append(s.buf, p[:n]...)
				s.tapLocked(p[:n])
				p = p[n:]
				written += n
				s.cond.Broadcast()
				continue
			}
		}
		dl := s.wdeadline
		if !dl.IsZero() && !time.Now().Before(dl) {
			return written, os.ErrDeadlineExceeded
		}
		s.waitLocked(dl)
	}
	return written, nil
}

// hold buffers blackholed bytes outside the pipe: the writer sees success,
// the reader sees silence — the half-open socket. Unbounded, like the
// kernel buffers and retransmit queues the blackhole would fill.
func (s *stream) hold(p []byte) {
	s.mu.Lock()
	s.held = append(s.held, p...)
	s.mu.Unlock()
}

// stall arms the slow-loris: the socket stays open but writes block.
func (s *stream) stall() {
	s.mu.Lock()
	s.stalled = true
	s.mu.Unlock()
}

// heal lifts a stall and delivers held bytes — TCP retransmission once the
// partition lifts.
func (s *stream) heal() {
	s.mu.Lock()
	s.stalled = false
	if len(s.held) > 0 {
		s.tapLocked(s.held)
		s.buf = append(s.buf, s.held...)
		s.held = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail makes the stream terminal: the reader drains what is buffered and
// then gets err; writers fail immediately; held bytes are discarded (a
// reset, unlike a heal, retransmits nothing).
func (s *stream) fail(err error) {
	s.mu.Lock()
	if s.rerr == nil {
		s.rerr = err
	}
	s.held = nil
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) closeWrite() {
	s.mu.Lock()
	s.wclosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) closeRead() {
	s.mu.Lock()
	s.rclosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) setReadDeadline(t time.Time) {
	s.mu.Lock()
	s.rdeadline = t
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) setWriteDeadline(t time.Time) {
	s.mu.Lock()
	s.wdeadline = t
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stream) setTap(t *tap) {
	s.mu.Lock()
	s.tap = t
	s.mu.Unlock()
}

func (s *stream) tapLocked(p []byte) {
	if s.tap != nil {
		s.tap.record(p)
	}
}

// tap captures the reader-visible byte stream after a byte-damaging fault
// — corpus material for the rtwire frame fuzzer.
type tap struct {
	mu     sync.Mutex
	buf    []byte
	budget int
}

func (t *tap) record(p []byte) {
	t.mu.Lock()
	if n := min(t.budget, len(p)); n > 0 {
		t.buf = append(t.buf, p[:n]...)
		t.budget -= n
	}
	t.mu.Unlock()
}

func (t *tap) bytes() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buf...)
}

// Conn is one endpoint of a fabric connection.
type Conn struct {
	fab       *Fabric
	label     string // this endpoint (dialer label or listener address)
	peerLabel string
	rd, wr    *stream
	peer      *Conn
	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write charges one fabric write op, fires the armed fault if this op
// reaches it, and routes the bytes per the live conditions (stall,
// partition, chaos shaping). See Fabric.connWrite.
func (c *Conn) Write(p []byte) (int, error) { return c.fab.connWrite(c, p) }

func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.closeRead()  // our reads: ErrClosed; peer writes: reset
		c.wr.closeWrite() // peer reads drain then EOF
		c.fab.forget(c)
	})
	return nil
}

// hardCut resets both directions abruptly: readers drain what was already
// delivered, then see ErrInjectedReset; all further writes fail.
func (c *Conn) hardCut() {
	c.rd.fail(ErrInjectedReset)
	c.wr.fail(ErrInjectedReset)
}

func (c *Conn) LocalAddr() net.Addr  { return fabricAddr(c.label) }
func (c *Conn) RemoteAddr() net.Addr { return fabricAddr(c.peerLabel) }

func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}
