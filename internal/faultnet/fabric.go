package faultnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"time"
)

// FaultKind names one injected network fault.
type FaultKind uint8

const (
	FaultNone      FaultKind = iota
	FaultCut                 // seeded strict prefix delivered, then both directions reset
	FaultDrop                // seeded strict prefix of one write vanishes; the suffix still flows
	FaultCorrupt             // one seeded byte of one write flipped
	FaultStall               // the firing endpoint's writes block until Heal
	FaultPartition           // matching directions blackholed until Heal (socket held open)
)

var faultNames = map[FaultKind]string{
	FaultNone: "none", FaultCut: "cut", FaultDrop: "drop",
	FaultCorrupt: "corrupt", FaultStall: "stall", FaultPartition: "partition",
}

func (k FaultKind) String() string {
	if n, ok := faultNames[k]; ok {
		return n
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Direction is one blackholed flow, matched against endpoint labels; "*"
// matches any label. {From: "client", To: "primary:1"} blackholes only
// client→server bytes — the one-way partition heartbeats must catch.
type Direction struct{ From, To string }

// Fault is what ArmAt fires when the write-op counter reaches the armed
// point. Dirs applies to FaultPartition only.
type Fault struct {
	Kind FaultKind
	Dirs []Direction
}

// streamBuf bounds one direction's in-flight bytes (the "kernel buffer");
// writers block when it is full, which is what lets write deadlines and
// stall eviction be exercised.
const streamBuf = 256 << 10

// tapBudget bounds the malformed-stream capture after a damaging fault.
const tapBudget = 2048

// Fabric is an in-memory switched network: endpoints are labeled, dials
// route to listeners by address string, and every connection is a pair of
// deterministic streams the fabric can cut, stall, corrupt, or blackhole.
// One fault is armed at a time (per the sweep discipline: one fault point
// per run); ongoing conditions (partitions, stalls) persist until Heal.
type Fabric struct {
	mu        sync.Mutex
	rng       *rand.Rand
	listeners map[string]*listener
	conns     map[*Conn]struct{}

	ops   uint64 // fabric-wide write-op counter
	dials uint64

	armAt   uint64
	armed   Fault
	fired   bool
	firedOp uint64

	parts []Direction
	tap   *tap

	// chaos shaping: seeded write splitting and latency jitter.
	chaosChunk int
	chaosDelay time.Duration

	quit   chan struct{}
	closed bool
}

// NewFabric builds an empty fabric. The seed drives every fault
// materialization (cut prefixes, corrupted byte positions, chaos shaping):
// same seed + same armed point → same fault.
func NewFabric(seed uint64) *Fabric {
	return &Fabric{
		rng:       rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		listeners: make(map[string]*listener),
		conns:     make(map[*Conn]struct{}),
		tap:       &tap{budget: tapBudget},
		quit:      make(chan struct{}),
	}
}

// ArmAt arms one fault to fire on the at-th fabric write op (1-based).
// Re-arming replaces the previous fault and clears the fired latch.
func (f *Fabric) ArmAt(at uint64, fault Fault) {
	f.mu.Lock()
	f.armAt, f.armed, f.fired, f.firedOp = at, fault, false, 0
	f.mu.Unlock()
}

// Chaos enables seeded write shaping on every connection: writes split
// into chunks of at most maxChunk bytes with up to maxDelay of jitter
// before each write — short reads and split frames for race hammers.
func (f *Fabric) Chaos(maxChunk int, maxDelay time.Duration) {
	f.mu.Lock()
	f.chaosChunk, f.chaosDelay = maxChunk, maxDelay
	f.mu.Unlock()
}

// Ops returns the fabric-wide write-op count — the probe run's total is
// the sweep range.
func (f *Fabric) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Fired reports whether the armed fault has fired, and on which op.
func (f *Fabric) Fired() (bool, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired, f.firedOp
}

// MalformedStream returns the reader-visible bytes captured after a
// byte-damaging fault (cut prefix, post-drop desync, corrupted frame) —
// seed material for the rtwire frame fuzzer. Empty when no damaging fault
// fired.
func (f *Fabric) MalformedStream() []byte { return f.tap.bytes() }

// PartitionNow blackholes the given directions immediately (the explicit
// counterpart of an armed FaultPartition).
func (f *Fabric) PartitionNow(dirs ...Direction) {
	f.mu.Lock()
	f.parts = append(f.parts, dirs...)
	f.mu.Unlock()
}

// StallAll stalls writes on every live connection matching from→to.
func (f *Fabric) StallAll(from, to string) {
	for _, c := range f.matching(from, to) {
		c.wr.stall()
	}
}

// CutAll hard-resets every live connection matching from→to (either
// endpoint may be given first; both directions die, as a RST would).
func (f *Fabric) CutAll(from, to string) {
	for _, c := range f.matching(from, to) {
		c.hardCut()
	}
}

// Heal lifts every partition and stall: held bytes are delivered (TCP
// retransmission once the blackhole lifts) and stalled writers resume.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.parts = nil
	conns := make([]*Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.wr.heal()
	}
}

// Close tears the fabric down: listeners stop accepting and pending dials
// abort. Existing connections keep working (teardown order mirrors
// production: sockets outlive the listener).
func (f *Fabric) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.quit)
	}
	f.mu.Unlock()
}

func match(pattern, label string) bool { return pattern == "*" || pattern == label }

func (f *Fabric) partitionedLocked(from, to string) bool {
	for _, d := range f.parts {
		if match(d.From, from) && match(d.To, to) {
			return true
		}
	}
	return false
}

// matching snapshots live conns whose (label, peer) matches from→to in
// either orientation.
func (f *Fabric) matching(from, to string) []*Conn {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*Conn
	for c := range f.conns {
		if (match(from, c.label) && match(to, c.peerLabel)) ||
			(match(from, c.peerLabel) && match(to, c.label)) {
			out = append(out, c)
		}
	}
	return out
}

func (f *Fabric) forget(c *Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

// connWrite is the fault-injection write path shared by every fabric
// connection: charge one op, fire the armed fault if reached, then route
// the bytes under the live conditions.
func (f *Fabric) connWrite(c *Conn, p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	f.mu.Lock()
	f.ops++
	op := f.ops
	kind := FaultNone
	if !f.fired && f.armAt > 0 && op >= f.armAt {
		f.fired, f.firedOp = true, op
		kind = f.armed.Kind
		if kind == FaultPartition {
			f.parts = append(f.parts, f.armed.Dirs...)
		}
	}
	var cutPrefix, dropPrefix, flipAt int
	var flipBits byte
	switch kind {
	case FaultCut:
		cutPrefix = f.rng.IntN(len(p)) // strict prefix: mid-frame truncation
	case FaultDrop:
		dropPrefix = len(p)
		if len(p) >= 2 {
			dropPrefix = 1 + f.rng.IntN(len(p)-1)
		}
	case FaultCorrupt:
		flipAt, flipBits = f.rng.IntN(len(p)), byte(1+f.rng.IntN(255))
	}
	var chunk int
	var delay time.Duration
	if f.chaosChunk > 0 {
		chunk = 1 + f.rng.IntN(f.chaosChunk)
		if f.chaosDelay > 0 {
			delay = time.Duration(f.rng.Int64N(int64(f.chaosDelay) + 1))
		}
	}
	blackhole := f.partitionedLocked(c.label, c.peerLabel)
	f.mu.Unlock()

	switch kind {
	case FaultStall:
		c.wr.stall()
	case FaultDrop:
		// The writer believes every byte is on the wire, but a strict
		// prefix vanishes and the suffix keeps flowing: the reader's next
		// frame boundary lands mid-frame, a desync its framing checks must
		// catch. (A clean whole-frame elision would model a transport no
		// real network has — TCP never acks-and-omits while the connection
		// keeps delivering.)
		c.wr.setTap(f.tap)
		if dropPrefix < len(p) {
			_, _ = c.wr.write(p[dropPrefix:])
		}
		return len(p), nil
	case FaultCut:
		c.wr.setTap(f.tap)
		if cutPrefix > 0 {
			_, _ = c.wr.write(p[:cutPrefix])
		}
		c.hardCut()
		return 0, ErrInjectedReset
	case FaultCorrupt:
		q := make([]byte, len(p))
		copy(q, p)
		q[flipAt] ^= flipBits
		p = q
		c.wr.setTap(f.tap)
	}

	if blackhole {
		c.wr.hold(p)
		return len(p), nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if chunk > 0 {
		total := 0
		for len(p) > 0 {
			n := min(chunk, len(p))
			w, err := c.wr.write(p[:n])
			total += w
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		return total, nil
	}
	return c.wr.write(p)
}

// Dialer returns the labeled dial surface for one fabric endpoint —
// drop-in for client.Options.Dialer / replica.Config.Dialer.
func (f *Fabric) Dialer(label string) Dialer { return fabricDialer{f: f, label: label} }

type fabricDialer struct {
	f     *Fabric
	label string
}

func (d fabricDialer) DialTimeout(network, address string, timeout time.Duration) (net.Conn, error) {
	return d.f.dial(d.label, address, timeout)
}

func (f *Fabric) dial(label, address string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, net.ErrClosed
	}
	f.dials++
	ln := f.listeners[address]
	// A partition in either direction kills the handshake (SYN or SYN-ACK
	// blackholed): the dial hangs until its timeout, like real TCP.
	blocked := f.partitionedLocked(label, address) || f.partitionedLocked(address, label)
	f.mu.Unlock()
	if ln == nil {
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: fabricAddr(address),
			Err: errors.New("connection refused: no listener")}
	}
	if blocked {
		select {
		case <-time.After(timeout):
		case <-f.quit:
			return nil, net.ErrClosed
		}
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: fabricAddr(address),
			Err: os.ErrDeadlineExceeded}
	}

	d2l := newStream(streamBuf) // dialer → listener
	l2d := newStream(streamBuf)
	dc := &Conn{fab: f, label: label, peerLabel: address, rd: l2d, wr: d2l}
	ac := &Conn{fab: f, label: address, peerLabel: label, rd: d2l, wr: l2d}
	dc.peer, ac.peer = ac, dc
	f.mu.Lock()
	f.conns[dc] = struct{}{}
	f.conns[ac] = struct{}{}
	f.mu.Unlock()
	select {
	case ln.ch <- ac:
		return dc, nil
	case <-ln.done:
	case <-f.quit:
	case <-time.After(timeout):
	}
	f.forget(dc)
	f.forget(ac)
	return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: fabricAddr(address),
		Err: errors.New("connection refused: listener gone")}
}

// Listen binds a fabric listener at the given address label (e.g.
// "primary:1") — drop-in for net.Listen, served by netserve.Serve or the
// replica's standby surface.
func (f *Fabric) Listen(address string) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, net.ErrClosed
	}
	if _, dup := f.listeners[address]; dup {
		return nil, fmt.Errorf("faultnet: address %s already bound", address)
	}
	ln := &listener{f: f, name: address, ch: make(chan *Conn, 64), done: make(chan struct{})}
	f.listeners[address] = ln
	return ln, nil
}

type listener struct {
	f    *Fabric
	name string
	ch   chan *Conn
	done chan struct{}
	once sync.Once
}

var _ net.Listener = (*listener)(nil)

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
	case <-l.f.quit:
	}
	return nil, net.ErrClosed
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.f.mu.Lock()
		delete(l.f.listeners, l.name)
		l.f.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return fabricAddr(l.name) }
