package pcgs

import (
	"strings"
	"testing"
)

// abcSystem is a two-component returning PCGS whose master language is
//
//	{ a^n b^{n+1} c^{n+1} : n ≥ 0 },
//
// a non-context-free 3-way correlation: the master pumps a's while the
// second component pumps matched b/c pairs in lockstep, and one query
// splices the counts together. This is the §6 intuition made concrete —
// synchronized independent workers plus communication exceed what either
// can do alone.
func abcSystem(mode Mode) *System {
	master := Grammar{
		Nonterminals: map[Symbol]bool{"S1": true, "S2": true},
		Rules: []Rule{
			{Left: "S1", Right: []Symbol{"a", "S1"}},
			{Left: "S1", Right: []Symbol{QuerySymbol(2)}},
			{Left: "S2", Right: nil}, // erase the received nonterminal
		},
		Axiom: "S1",
	}
	worker := Grammar{
		Nonterminals: map[Symbol]bool{"S2": true},
		Rules: []Rule{
			{Left: "S2", Right: []Symbol{"b", "S2", "c"}},
		},
		Axiom: "S2",
	}
	return &System{Components: []Grammar{master, worker}, Mode: mode, MaxForm: 40}
}

func inABC(w string) bool {
	n := strings.Count(w, "a")
	i := 0
	for i < len(w) && w[i] == 'a' {
		i++
	}
	j := i
	for j < len(w) && w[j] == 'b' {
		j++
	}
	k := j
	for k < len(w) && w[k] == 'c' {
		k++
	}
	if k != len(w) {
		return false
	}
	b, c := j-i, k-j
	return i == n && b == n+1 && c == n+1
}

func TestABCGeneration(t *testing.T) {
	sys := abcSystem(Returning)
	words := sys.Generate(16, 14)
	if len(words) == 0 {
		t.Fatal("no words generated")
	}
	for _, w := range words {
		if !inABC(w) {
			t.Errorf("generated %q outside {a^n b^{n+1} c^{n+1}}", w)
		}
	}
	// Completeness on the small window: bcc…, abbcc, aabbbccc, …
	for _, want := range []string{"bc", "abbcc", "aabbbccc"} {
		found := false
		for _, w := range words {
			if w == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing member %q (got %v)", want, words)
		}
	}
}

func TestQuerySymbolParsing(t *testing.T) {
	if QuerySymbol(3) != "Q3" {
		t.Errorf("QuerySymbol = %q", QuerySymbol(3))
	}
	for s, want := range map[Symbol]int{"Q1": 1, "Q12": 12} {
		got, ok := queryIndex(s)
		if !ok || got != want {
			t.Errorf("queryIndex(%q) = (%d,%v)", s, got, ok)
		}
	}
	for _, s := range []Symbol{"Q", "Qx", "R3", "a", "Q0"} {
		if _, ok := queryIndex(s); ok {
			t.Errorf("queryIndex(%q) parsed", s)
		}
	}
}

// Returning vs non-returning: a master that queries twice sees a reset
// worker in returning mode (second copy restarts short) and a continuing
// worker otherwise (second copy strictly longer).
func doubleQuerySystem(mode Mode) *System {
	master := Grammar{
		Nonterminals: map[Symbol]bool{"S1": true, "X": true, "S2": true},
		Rules: []Rule{
			// Round 1: take the first copy and keep a marker to query again.
			{Left: "S1", Right: []Symbol{QuerySymbol(2), "X"}},
			// Later: take the second copy.
			{Left: "X", Right: []Symbol{QuerySymbol(2)}},
			{Left: "S2", Right: []Symbol{"e"}}, // finish received forms
		},
		Axiom: "S1",
	}
	worker := Grammar{
		Nonterminals: map[Symbol]bool{"S2": true},
		Rules: []Rule{
			{Left: "S2", Right: []Symbol{"d", "S2"}},
		},
		Axiom: "S2",
	}
	return &System{Components: []Grammar{master, worker}, Mode: mode, MaxForm: 32}
}

func TestReturningVersusNonReturning(t *testing.T) {
	ret := doubleQuerySystem(Returning).Generate(14, 20)
	non := doubleQuerySystem(NonReturning).Generate(14, 20)
	if len(ret) == 0 || len(non) == 0 {
		t.Fatalf("generation empty: ret=%v non=%v", ret, non)
	}
	counts := func(w string) (first, second int) {
		// Words look like d^i e d^j e: split on the e's.
		parts := strings.SplitN(w, "e", 3)
		return len(parts[0]), len(parts[1])
	}
	// In both modes the second segment is produced after more rounds; in
	// returning mode the worker restarted, so a second segment SHORTER
	// than or equal to the first is reachable; in non-returning mode the
	// second segment is always strictly longer than the first.
	sawShortSecond := false
	for _, w := range ret {
		if strings.Count(w, "e") != 2 {
			continue
		}
		f, s := counts(w)
		if s <= f {
			sawShortSecond = true
		}
	}
	if !sawShortSecond {
		t.Errorf("returning mode never produced a reset-length second copy: %v", ret)
	}
	for _, w := range non {
		if strings.Count(w, "e") != 2 {
			continue
		}
		f, s := counts(w)
		if s <= f {
			t.Errorf("non-returning word %q has second copy ≤ first", w)
		}
	}
}

// Blocked communication (mutual queries) kills the derivation rather than
// hanging.
func TestCircularQueriesBlock(t *testing.T) {
	g1 := Grammar{
		Nonterminals: map[Symbol]bool{"S1": true},
		Rules:        []Rule{{Left: "S1", Right: []Symbol{QuerySymbol(2)}}},
		Axiom:        "S1",
	}
	g2 := Grammar{
		Nonterminals: map[Symbol]bool{"S2": true},
		Rules:        []Rule{{Left: "S2", Right: []Symbol{QuerySymbol(1)}}},
		Axiom:        "S2",
	}
	sys := &System{Components: []Grammar{g1, g2}, Mode: Returning, MaxForm: 16}
	if words := sys.Generate(10, 10); len(words) != 0 {
		t.Errorf("circular system generated %v", words)
	}
}

// A single-component PCGS degenerates to its grammar.
func TestSingleComponent(t *testing.T) {
	g := Grammar{
		Nonterminals: map[Symbol]bool{"S": true},
		Rules: []Rule{
			{Left: "S", Right: []Symbol{"a", "S", "b"}},
			{Left: "S", Right: []Symbol{"a", "b"}},
		},
		Axiom: "S",
	}
	sys := &System{Components: []Grammar{g}, Mode: Returning, MaxForm: 20}
	words := sys.Generate(10, 8)
	want := map[string]bool{"ab": true, "aabb": true, "aaabbb": true, "aaaabbbb": true}
	if len(words) != len(want) {
		t.Fatalf("words = %v", words)
	}
	for _, w := range words {
		if !want[w] {
			t.Fatalf("unexpected word %q", w)
		}
	}
}
