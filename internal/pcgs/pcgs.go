// Package pcgs implements parallel communicating grammar systems, the
// formal device §6 cites as the intuition behind the distributed real-time
// model ("a PCGS consists in a number of grammars, with their own work
// space, that communicate with each other by means of special symbols.
// Except for this communication, the grammars work independently. The case
// of parallel grammar systems closely resembles a real world ad hoc
// network"). The paper treats PCGS as intuitional support; this package
// makes the intuition executable — component grammars rewrite in lockstep
// rounds, query symbols Q_i pull another component's sentential form, and
// the master's derivations generate the system's language.
//
// The implementation follows the standard returning/non-returning PCGS
// semantics (Păun & Sântean; Csuhaj-Varjú et al.): in a communication step
// every occurrence of a query symbol Q_j is replaced by component j's
// current sentential form (provided it contains no query symbols itself),
// and in returning mode the queried component resets to its axiom.
package pcgs

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is a terminal or nonterminal. Nonterminals are recognized by an
// explicit set; query symbols have the reserved shape "Q<i>".
type Symbol = string

// Rule is a context-free production A → α.
type Rule struct {
	Left  Symbol
	Right []Symbol
}

// Grammar is one component: its nonterminals, rules and axiom. Terminals
// are whatever appears in right-hand sides without being declared a
// nonterminal or a query symbol.
type Grammar struct {
	Nonterminals map[Symbol]bool
	Rules        []Rule
	Axiom        Symbol
}

// QuerySymbol returns Q_i, the symbol that requests component i's
// sentential form (components are 1-indexed, the master is component 1).
func QuerySymbol(i int) Symbol { return fmt.Sprintf("Q%d", i) }

// queryIndex parses a query symbol.
func queryIndex(s Symbol) (int, bool) {
	if len(s) < 2 || s[0] != 'Q' {
		return 0, false
	}
	n := 0
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, n > 0
}

// Mode selects the communication semantics.
type Mode int

const (
	// Returning: after being queried, a component resumes from its axiom.
	Returning Mode = iota
	// NonReturning: the queried component keeps its sentential form.
	NonReturning
)

// System is a PCGS: component 1 is the master; the generated language is
// the set of terminal strings the master can derive.
type System struct {
	Components []Grammar
	Mode       Mode
	// MaxForm bounds sentential-form length during search (derivations
	// that outgrow it are pruned).
	MaxForm int
}

// form is one configuration: the tuple of sentential forms.
type form []string

func (f form) key() string { return strings.Join(f, "\x00") }

// isNonterminal reports whether s is a nonterminal of g (query symbols are
// handled separately).
func (g Grammar) isNonterminal(s Symbol) bool { return g.Nonterminals[s] }

// words as space-joined symbol strings keep the search state compact.
func join(syms []Symbol) string { return strings.Join(syms, " ") }
func split(w string) []Symbol {
	if w == "" {
		return nil
	}
	return strings.Split(w, " ")
}

// hasQuery reports whether the form contains a query symbol.
func hasQuery(syms []Symbol) bool {
	for _, s := range syms {
		if _, ok := queryIndex(s); ok {
			return true
		}
	}
	return false
}

// Generate searches the derivation space breadth-first and returns every
// terminal string (over the master) of length ≤ maxLen derivable within
// maxSteps lockstep rounds. The result is sorted and duplicate-free —
// a finite window onto L(Γ).
func (sys *System) Generate(maxSteps, maxLen int) []string {
	if sys.MaxForm == 0 {
		sys.MaxForm = 24
	}
	start := make(form, len(sys.Components))
	for i, g := range sys.Components {
		start[i] = g.Axiom
	}
	seen := map[string]bool{start.key(): true}
	frontier := []form{start}
	results := map[string]bool{}

	for step := 0; step < maxSteps && len(frontier) > 0; step++ {
		var next []form
		for _, f := range frontier {
			for _, nf := range sys.step(f) {
				k := nf.key()
				if seen[k] {
					continue
				}
				seen[k] = true
				next = append(next, nf)
				// Harvest: master form all-terminal?
				master := split(nf[0])
				if len(master) <= maxLen && sys.allTerminal(master) {
					results[strings.Join(master, "")] = true
				}
			}
		}
		frontier = next
	}
	out := make([]string, 0, len(results))
	for w := range results {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// allTerminal reports whether the master's form contains neither
// nonterminals (of any component) nor query symbols.
func (sys *System) allTerminal(syms []Symbol) bool {
	for _, s := range syms {
		if _, ok := queryIndex(s); ok {
			return false
		}
		for _, g := range sys.Components {
			if g.isNonterminal(s) {
				return false
			}
		}
	}
	return true
}

// step yields all successor configurations of one lockstep round: if any
// component's form holds query symbols, a communication step fires;
// otherwise every component rewrites one nonterminal (components whose form
// is terminal idle).
func (sys *System) step(f form) []form {
	for _, w := range f {
		if hasQuery(split(w)) {
			if nf, ok := sys.communicate(f); ok {
				return []form{nf}
			}
			return nil // blocked communication (circular queries)
		}
	}
	// Rewriting step: the per-component choices multiply.
	options := make([][]string, len(sys.Components))
	for i, g := range sys.Components {
		syms := split(f[i])
		var opts []string
		for pos, s := range syms {
			if !g.isNonterminal(s) {
				continue
			}
			for _, r := range g.Rules {
				if r.Left != s {
					continue
				}
				nw := make([]Symbol, 0, len(syms)+len(r.Right))
				nw = append(nw, syms[:pos]...)
				nw = append(nw, r.Right...)
				nw = append(nw, syms[pos+1:]...)
				if len(nw) <= sys.MaxForm {
					opts = append(opts, join(nw))
				}
			}
		}
		if len(opts) == 0 {
			// Terminal (or stuck) components idle. A component stuck on a
			// nonterminal with no rule blocks the whole system in strict
			// PCGS semantics; idling is the common relaxed convention and
			// keeps master-only derivations alive.
			opts = []string{f[i]}
		}
		options[i] = opts
	}
	var out []form
	var build func(i int, acc form)
	build = func(i int, acc form) {
		if i == len(options) {
			cp := make(form, len(acc))
			copy(cp, acc)
			out = append(out, cp)
			return
		}
		for _, o := range options[i] {
			acc[i] = o
			build(i+1, acc)
		}
	}
	build(0, make(form, len(options)))
	return out
}

// communicate performs one communication step: every query symbol whose
// target holds a query-free form is substituted; in returning mode the
// queried components reset to their axioms afterwards.
func (sys *System) communicate(f form) (form, bool) {
	queried := map[int]bool{}
	nf := make(form, len(f))
	progress := false
	for i, w := range f {
		syms := split(w)
		var nw []Symbol
		for _, s := range syms {
			j, ok := queryIndex(s)
			if !ok {
				nw = append(nw, s)
				continue
			}
			if j < 1 || j > len(f) {
				return nil, false
			}
			target := split(f[j-1])
			if hasQuery(target) {
				// Not satisfiable this round; keep the query.
				nw = append(nw, s)
				continue
			}
			nw = append(nw, target...)
			queried[j-1] = true
			progress = true
		}
		if len(nw) > sys.MaxForm {
			return nil, false
		}
		nf[i] = join(nw)
	}
	if !progress {
		return nil, false
	}
	if sys.Mode == Returning {
		for j := range queried {
			nf[j] = sys.Components[j].Axiom
		}
	}
	return nf, true
}
