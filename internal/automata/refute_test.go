package automata

import (
	"math/rand"
	"testing"
)

func TestInL(t *testing.T) {
	cases := map[string]bool{
		"abcd":       true,
		"aabccd":     true,
		"abbcddd":    false, // x=2, y=3
		"abbbcccddd": true,
		"bcd":        false, // u=0
		"acd":        false, // x=0
		"abd":        false, // v=0
		"abc":        false, // y=0
		"abcda":      false, // trailing garbage
		"":           false,
	}
	for in, want := range cases {
		if got := InL(Syms(in)); got != want {
			t.Errorf("InL(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLWord(t *testing.T) {
	if got := String(LWord(2, 3, 1)); got != "aabbbcddd" {
		t.Errorf("LWord = %q", got)
	}
	if !InL(LWord(1, 5, 2)) {
		t.Error("LWord not in L")
	}
}

// checkCounterexample asserts a genuine disagreement.
func checkCounterexample(t *testing.T, d *DFA, ce Counterexample) {
	t.Helper()
	if ce.DFAAccepts == ce.InLanguage {
		t.Fatalf("not a disagreement: word %q, dfa=%v inL=%v",
			String(ce.Word), ce.DFAAccepts, ce.InLanguage)
	}
	if got := d.Accepts(ce.Word); got != ce.DFAAccepts {
		t.Fatalf("reported DFA verdict wrong for %q: got %v", String(ce.Word), got)
	}
	if got := InL(ce.Word); got != ce.InLanguage {
		t.Fatalf("reported L verdict wrong for %q: got %v", String(ce.Word), got)
	}
}

// The over-approximating candidate (a⁺b⁺c⁺d⁺) must be refuted by a pumped
// word it wrongly accepts.
func TestRefuteLOverApproximation(t *testing.T) {
	d := CandidateOverDFA()
	ce := RefuteL(d)
	checkCounterexample(t, d, ce)
	if !ce.DFAAccepts || ce.InLanguage {
		t.Errorf("over-approximation should be refuted by a false accept, got %+v", ce)
	}
	if !ce.Pumped {
		t.Error("expected the pumping step to produce the witness")
	}
}

// Bounded counters (exact up to k) must be refuted by a member beyond their
// bound that they wrongly reject.
func TestRefuteLBoundedCandidates(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		d := CandidateBoundedDFA(k)
		if err := d.Validate(); err != nil {
			t.Fatalf("k=%d: invalid candidate: %v", k, err)
		}
		// Sanity: exact within the bound.
		for x := 1; x <= k; x++ {
			if !d.Accepts(LWord(1, x, 1)) {
				t.Fatalf("k=%d: candidate rejects member x=%d", k, x)
			}
		}
		ce := RefuteL(d)
		checkCounterexample(t, d, ce)
		if ce.DFAAccepts || !ce.InLanguage {
			t.Errorf("k=%d: bounded candidate should be refuted by a false reject, got %+v", k, ce)
		}
	}
}

// Theorem 3.1, sampled over arbitrary machines: RefuteL finds a genuine
// disagreement for every random DFA.
func TestRefuteLRandomDFAs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		d := NewDFA(LAlphabet, n, rng.Intn(n))
		for s := 0; s < n; s++ {
			for _, a := range LAlphabet {
				if rng.Intn(4) > 0 { // leave some transitions dead
					d.SetTrans(s, a, rng.Intn(n))
				}
			}
			if rng.Intn(3) == 0 {
				d.SetAccept(s)
			}
		}
		ce := RefuteL(d)
		checkCounterexample(t, d, ce)
	}
}

// Even a large minimized candidate cannot escape: minimize the bounded
// candidate and refute it again.
func TestRefuteLMinimizedCandidate(t *testing.T) {
	d := CandidateBoundedDFA(4).Minimize()
	ce := RefuteL(d)
	checkCounterexample(t, d, ce)
}
