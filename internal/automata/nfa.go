package automata

import (
	"sort"

	"rtc/internal/word"
)

// NFA is a nondeterministic finite automaton with λ-transitions, as used by
// the A′ construction in the proof of Theorem 3.1 ("the transition function
// of A′ is δ, augmented with λ-transitions from s′ to each state in S1").
type NFA struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     []int
	Trans     map[int]map[word.Symbol][]int
	Eps       map[int][]int
	Accept    map[int]bool
}

// NewNFA allocates an empty NFA.
func NewNFA(alphabet []word.Symbol, numStates int, start ...int) *NFA {
	return &NFA{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Trans:     make(map[int]map[word.Symbol][]int),
		Eps:       make(map[int][]int),
		Accept:    make(map[int]bool),
	}
}

// AddTrans adds a transition (from, sym) → to.
func (n *NFA) AddTrans(from int, sym word.Symbol, to int) {
	m, ok := n.Trans[from]
	if !ok {
		m = make(map[word.Symbol][]int)
		n.Trans[from] = m
	}
	m[sym] = append(m[sym], to)
}

// AddEps adds a λ-transition from → to.
func (n *NFA) AddEps(from, to int) {
	n.Eps[from] = append(n.Eps[from], to)
}

// SetAccept marks states as accepting.
func (n *NFA) SetAccept(states ...int) {
	for _, s := range states {
		n.Accept[s] = true
	}
}

// closure expands a state set with λ-transitions.
func (n *NFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
	return set
}

// step computes the successor state set under one symbol (with closure).
func (n *NFA) step(set map[int]bool, sym word.Symbol) map[int]bool {
	out := make(map[int]bool)
	for s := range set {
		if m, ok := n.Trans[s]; ok {
			for _, t := range m[sym] {
				out[t] = true
			}
		}
	}
	return n.closure(out)
}

// Accepts reports whether the NFA accepts ws.
func (n *NFA) Accepts(ws []word.Symbol) bool {
	set := make(map[int]bool, len(n.Start))
	for _, s := range n.Start {
		set[s] = true
	}
	set = n.closure(set)
	for _, a := range ws {
		set = n.step(set, a)
		if len(set) == 0 {
			return false
		}
	}
	for s := range set {
		if n.Accept[s] {
			return true
		}
	}
	return false
}

// Determinize performs the subset construction and returns an equivalent
// DFA.
func (n *NFA) Determinize() *DFA {
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		b := make([]byte, 0, 4*len(ids))
		for _, s := range ids {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	start := make(map[int]bool, len(n.Start))
	for _, s := range n.Start {
		start[s] = true
	}
	start = n.closure(start)

	states := []map[int]bool{start}
	index := map[string]int{key(start): 0}
	type edge struct {
		from int
		sym  word.Symbol
		to   int
	}
	var edges []edge
	for qi := 0; qi < len(states); qi++ {
		for _, a := range n.Alphabet {
			succ := n.step(states[qi], a)
			if len(succ) == 0 {
				continue // implicit dead state in the DFA
			}
			k := key(succ)
			id, ok := index[k]
			if !ok {
				id = len(states)
				index[k] = id
				states = append(states, succ)
			}
			edges = append(edges, edge{qi, a, id})
		}
	}
	d := NewDFA(n.Alphabet, len(states), 0)
	for _, e := range edges {
		d.SetTrans(e.from, e.sym, e.to)
	}
	for i, set := range states {
		for s := range set {
			if n.Accept[s] {
				d.Accept[i] = true
				break
			}
		}
	}
	return d
}

// FromDFA embeds a DFA as an NFA.
func FromDFA(d *DFA) *NFA {
	n := NewNFA(d.Alphabet, d.NumStates, d.Start)
	for s, m := range d.Trans {
		for a, t := range m {
			n.AddTrans(s, a, t)
		}
	}
	for s := range d.Accept {
		n.Accept[s] = true
	}
	return n
}
