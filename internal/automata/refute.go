package automata

import (
	"strings"

	"rtc/internal/word"
)

// This file is the executable content of Theorem 3.1. The theorem exhibits
// the language
//
//	L = { a^u b^x c^v d^x | u, x, v > 0 }
//
// (a database a^u b^x c^v searched with key d^x, per the remark after
// Corollary 3.2) and argues it is not regular; hence L_ω = (L·$)^ω is not
// ω-regular, and its timed version not timed ω-regular. Since "no DFA
// recognizes L" quantifies over all automata, the executable form is a
// refuter: given ANY concrete DFA claimed to recognize L, RefuteL constructs
// a word on which the DFA and L disagree. Its existence for every input DFA
// is exactly the theorem.

// InL reports whether the classical word ws belongs to
// L = {a^u b^x c^v d^x | u,x,v > 0}.
func InL(ws []word.Symbol) bool {
	u, x, v, y := 0, 0, 0, 0
	i := 0
	for i < len(ws) && ws[i] == "a" {
		u++
		i++
	}
	for i < len(ws) && ws[i] == "b" {
		x++
		i++
	}
	for i < len(ws) && ws[i] == "c" {
		v++
		i++
	}
	for i < len(ws) && ws[i] == "d" {
		y++
		i++
	}
	return i == len(ws) && u > 0 && x > 0 && v > 0 && y == x
}

// LWord builds the member a^u b^x c^v d^x of L.
func LWord(u, x, v int) []word.Symbol {
	return Syms(strings.Repeat("a", u) + strings.Repeat("b", x) +
		strings.Repeat("c", v) + strings.Repeat("d", x))
}

// Counterexample records a disagreement between a candidate DFA and L.
type Counterexample struct {
	// Word is the witness.
	Word []word.Symbol
	// DFAAccepts is the candidate's verdict on Word.
	DFAAccepts bool
	// InLanguage is L's verdict on Word (always != DFAAccepts).
	InLanguage bool
	// Pumped reports whether the witness came from the pumping step (the
	// DFA accepted all small members, so a repeated state in the b-block
	// was pumped to break the b/d balance).
	Pumped bool
}

// RefuteL produces, for an arbitrary candidate DFA, a word on which the
// candidate disagrees with L. It always succeeds — which is Theorem 3.1.
//
// The search mirrors the classical pumping argument: first every member
// a·b^x·c·d^x for x up to n+1 (n = candidate state count) must be accepted;
// if all are, the state trajectory along the b-block of the largest member
// repeats a state by pigeonhole, and pumping the loop yields an accepted
// word with unbalanced b's and d's.
func RefuteL(d *DFA) Counterexample {
	n := d.NumStates
	if n < 1 {
		n = 1
	}
	// Step 1: small members must be accepted.
	for x := 1; x <= n+1; x++ {
		w := LWord(1, x, 1)
		if !d.Accepts(w) {
			return Counterexample{Word: w, DFAAccepts: false, InLanguage: true}
		}
	}
	// Step 2: pump the b-block of a·b^{n+1}·c·d^{n+1}.
	x := n + 1
	w := LWord(1, x, 1)
	traj := d.Run(w)
	// traj[1+i] is the state after 'a' and i b's, for i = 0..x: x+1 > n
	// states, so two coincide.
	seen := make(map[int]int) // state → number of b's consumed
	var i, j int
	found := false
	for bs := 0; bs <= x; bs++ {
		s := traj[1+bs]
		if prev, ok := seen[s]; ok {
			i, j = prev, bs
			found = true
			break
		}
		seen[s] = bs
	}
	if !found {
		// Only possible if the run died (Dead repeats too, handled above) —
		// unreachable, but keep the refuter total: the dead run means the
		// member itself is rejected.
		return Counterexample{Word: w, DFAAccepts: d.Accepts(w), InLanguage: true}
	}
	// Pump the loop once: a b^{x+(j-i)} c d^x has unbalanced counts. (Step 1
	// already accepted a b^x c d^x, so the run cannot have died and the
	// pumped word is accepted too.)
	pumped := Syms("a" + strings.Repeat("b", x+(j-i)) + "c" + strings.Repeat("d", x))
	return Counterexample{
		Word:       pumped,
		DFAAccepts: d.Accepts(pumped),
		InLanguage: false,
		Pumped:     true,
	}
}

// LAlphabet is the alphabet of L.
var LAlphabet = []word.Symbol{"a", "b", "c", "d"}

// CandidateOverDFA returns a DFA accepting a⁺b⁺c⁺d⁺ — the "shape only"
// over-approximation of L that a finite-state device can manage. RefuteL
// must catch it with a pumped word.
func CandidateOverDFA() *DFA {
	d := NewDFA(LAlphabet, 5, 0)
	d.SetTrans(0, "a", 1)
	d.SetTrans(1, "a", 1)
	d.SetTrans(1, "b", 2)
	d.SetTrans(2, "b", 2)
	d.SetTrans(2, "c", 3)
	d.SetTrans(3, "c", 3)
	d.SetTrans(3, "d", 4)
	d.SetTrans(4, "d", 4)
	d.SetAccept(4)
	return d
}

// CandidateBoundedDFA returns a DFA that counts b's and d's exactly up to
// the bound k — the best under-approximation with ~k² states. RefuteL must
// catch it with the member a·b^{x}·c·d^{x} for some x > k.
func CandidateBoundedDFA(k int) *DFA {
	// States: 0 = init; then "reading a's" (1); "read i b's" (2..k+1);
	// "reading c's with x=i" ; "read j d's with x=i". Encode:
	//   sA = 1
	//   sB(i) = 1 + i                 (1 ≤ i ≤ k)
	//   sC(i) = 1 + k + i             (1 ≤ i ≤ k)
	//   sD(i,j) = 1 + 2k + (i-1)*k + j (1 ≤ j ≤ i ≤ k); accept j == i
	sA := 1
	sB := func(i int) int { return 1 + i }
	sC := func(i int) int { return 1 + k + i }
	sD := func(i, j int) int { return 1 + 2*k + (i-1)*k + j }
	n := 2 + 2*k + k*k
	d := NewDFA(LAlphabet, n, 0)
	d.SetTrans(0, "a", sA)
	d.SetTrans(sA, "a", sA)
	d.SetTrans(sA, "b", sB(1))
	for i := 1; i < k; i++ {
		d.SetTrans(sB(i), "b", sB(i+1))
	}
	for i := 1; i <= k; i++ {
		d.SetTrans(sB(i), "c", sC(i))
		d.SetTrans(sC(i), "c", sC(i))
		d.SetTrans(sC(i), "d", sD(i, 1))
		for j := 1; j < i; j++ {
			d.SetTrans(sD(i, j), "d", sD(i, j+1))
		}
		d.SetAccept(sD(i, i))
	}
	return d
}
