// Package automata implements the classical finite-automata substrate of §2:
// deterministic and nondeterministic finite automata (with λ-transitions, as
// used in the A′ construction of Theorem 3.1's proof), the usual product /
// determinization / minimization constructions, and an executable form of
// the pumping argument behind Theorem 3.1.
package automata

import (
	"fmt"
	"sort"

	"rtc/internal/word"
)

// Dead is the implicit reject state: a missing transition leads to Dead and
// the run is rejecting.
const Dead = -1

// DFA is a deterministic finite automaton over word.Symbol. Missing
// transitions are implicit transitions to a dead (rejecting, absorbing)
// state.
type DFA struct {
	Alphabet  []word.Symbol
	NumStates int
	Start     int
	// Trans maps (state, symbol) to the successor state.
	Trans map[int]map[word.Symbol]int
	// Accept holds the accepting states.
	Accept map[int]bool
}

// NewDFA allocates an empty DFA with the given alphabet and state count.
func NewDFA(alphabet []word.Symbol, numStates, start int) *DFA {
	return &DFA{
		Alphabet:  alphabet,
		NumStates: numStates,
		Start:     start,
		Trans:     make(map[int]map[word.Symbol]int),
		Accept:    make(map[int]bool),
	}
}

// SetTrans adds the transition (from, sym) → to.
func (d *DFA) SetTrans(from int, sym word.Symbol, to int) {
	m, ok := d.Trans[from]
	if !ok {
		m = make(map[word.Symbol]int)
		d.Trans[from] = m
	}
	m[sym] = to
}

// SetAccept marks states as accepting.
func (d *DFA) SetAccept(states ...int) {
	for _, s := range states {
		d.Accept[s] = true
	}
}

// Step returns the successor of s under sym, or Dead.
func (d *DFA) Step(s int, sym word.Symbol) int {
	if s == Dead {
		return Dead
	}
	if m, ok := d.Trans[s]; ok {
		if t, ok := m[sym]; ok {
			return t
		}
	}
	return Dead
}

// Accepts reports whether the DFA accepts the (classical) word ws.
func (d *DFA) Accepts(ws []word.Symbol) bool {
	s := d.Start
	for _, a := range ws {
		s = d.Step(s, a)
		if s == Dead {
			return false
		}
	}
	return d.Accept[s]
}

// Run returns the full state trajectory over ws: Run(ws)[i] is the state
// after consuming i symbols (so len(result) == len(ws)+1). Once Dead, the
// trajectory stays Dead.
func (d *DFA) Run(ws []word.Symbol) []int {
	out := make([]int, len(ws)+1)
	out[0] = d.Start
	for i, a := range ws {
		out[i+1] = d.Step(out[i], a)
	}
	return out
}

// Complete returns an equivalent DFA in which every (state, symbol) pair has
// an explicit transition; the dead state, if needed, becomes a real state.
func (d *DFA) Complete() *DFA {
	needSink := false
	for s := 0; s < d.NumStates; s++ {
		for _, a := range d.Alphabet {
			if d.Step(s, a) == Dead {
				needSink = true
			}
		}
	}
	n := d.NumStates
	out := NewDFA(d.Alphabet, n, d.Start)
	for s, m := range d.Trans {
		for a, t := range m {
			out.SetTrans(s, a, t)
		}
	}
	for s := range d.Accept {
		out.Accept[s] = true
	}
	if needSink {
		sink := n
		out.NumStates = n + 1
		for s := 0; s <= n; s++ {
			for _, a := range d.Alphabet {
				if out.Step(s, a) == Dead {
					out.SetTrans(s, a, sink)
				}
			}
		}
	}
	return out
}

// Complement returns a DFA for the complement language (with respect to
// Alphabet*).
func (d *DFA) Complement() *DFA {
	c := d.Complete()
	acc := make(map[int]bool)
	for s := 0; s < c.NumStates; s++ {
		if !c.Accept[s] {
			acc[s] = true
		}
	}
	c.Accept = acc
	return c
}

// Product returns the product DFA whose acceptance combines the operand
// acceptances with the given boolean operator (∧ for intersection, ∨ for
// union, XOR for symmetric difference). Both operands are completed first;
// the alphabets must be equal.
func Product(a, b *DFA, combine func(bool, bool) bool) *DFA {
	ca, cb := a.Complete(), b.Complete()
	id := func(sa, sb int) int { return sa*cb.NumStates + sb }
	out := NewDFA(a.Alphabet, ca.NumStates*cb.NumStates, id(ca.Start, cb.Start))
	for sa := 0; sa < ca.NumStates; sa++ {
		for sb := 0; sb < cb.NumStates; sb++ {
			s := id(sa, sb)
			for _, sym := range a.Alphabet {
				out.SetTrans(s, sym, id(ca.Step(sa, sym), cb.Step(sb, sym)))
			}
			if combine(ca.Accept[sa], cb.Accept[sb]) {
				out.Accept[s] = true
			}
		}
	}
	return out
}

// ShortestAccepted returns a shortest accepted word, or (nil, false) when
// the language is empty. BFS from the start state.
func (d *DFA) ShortestAccepted() ([]word.Symbol, bool) {
	type node struct {
		state int
		via   word.Symbol
		prev  int // index into visit order; -1 for start
	}
	if d.Accept[d.Start] {
		return []word.Symbol{}, true
	}
	seen := map[int]bool{d.Start: true}
	queue := []node{{state: d.Start, prev: -1}}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, a := range d.Alphabet {
			t := d.Step(cur.state, a)
			if t == Dead || seen[t] {
				continue
			}
			seen[t] = true
			queue = append(queue, node{state: t, via: a, prev: qi})
			if d.Accept[t] {
				// Reconstruct.
				var rev []word.Symbol
				for i := len(queue) - 1; i != -1; i = queue[i].prev {
					if queue[i].prev == -1 {
						break
					}
					rev = append(rev, queue[i].via)
				}
				ws := make([]word.Symbol, len(rev))
				for i := range rev {
					ws[i] = rev[len(rev)-1-i]
				}
				return ws, true
			}
		}
	}
	return nil, false
}

// Empty reports whether the DFA's language is empty.
func (d *DFA) Empty() bool {
	_, ok := d.ShortestAccepted()
	return !ok
}

// Equivalent reports whether a and b accept the same language; when they do
// not, it returns a word in the symmetric difference.
func Equivalent(a, b *DFA) (bool, []word.Symbol) {
	xor := Product(a, b, func(x, y bool) bool { return x != y })
	if w, ok := xor.ShortestAccepted(); ok {
		return false, w
	}
	return true, nil
}

// Minimize returns the minimal DFA for d's language, via Moore's partition
// refinement on the completed, reachable part.
func (d *DFA) Minimize() *DFA {
	c := d.Complete()
	// Restrict to reachable states.
	reach := []int{c.Start}
	seen := map[int]bool{c.Start: true}
	for qi := 0; qi < len(reach); qi++ {
		for _, a := range c.Alphabet {
			t := c.Step(reach[qi], a)
			if !seen[t] {
				seen[t] = true
				reach = append(reach, t)
			}
		}
	}
	sort.Ints(reach)
	idx := make(map[int]int, len(reach))
	for i, s := range reach {
		idx[s] = i
	}
	n := len(reach)
	// Initial partition: accepting vs not.
	class := make([]int, n)
	for i, s := range reach {
		if c.Accept[s] {
			class[i] = 1
		}
	}
	for {
		// Signature of each state: (class, classes of successors).
		type sig struct {
			cls  int
			succ string
		}
		sigs := make([]sig, n)
		for i, s := range reach {
			key := make([]byte, 0, 4*len(c.Alphabet))
			for _, a := range c.Alphabet {
				t := idx[c.Step(s, a)]
				key = append(key, byte(class[t]), byte(class[t]>>8), byte(class[t]>>16), byte(class[t]>>24))
			}
			sigs[i] = sig{cls: class[i], succ: string(key)}
		}
		next := make(map[sig]int)
		newClass := make([]int, n)
		for i := range reach {
			id, ok := next[sigs[i]]
			if !ok {
				id = len(next)
				next[sigs[i]] = id
			}
			newClass[i] = id
		}
		changed := false
		for i := range class {
			if class[i] != newClass[i] {
				changed = true
			}
		}
		class = newClass
		if !changed {
			break
		}
	}
	numClasses := 0
	for _, cl := range class {
		if cl+1 > numClasses {
			numClasses = cl + 1
		}
	}
	out := NewDFA(c.Alphabet, numClasses, class[idx[c.Start]])
	for i, s := range reach {
		for _, a := range c.Alphabet {
			out.SetTrans(class[i], a, class[idx[c.Step(s, a)]])
		}
		if c.Accept[s] {
			out.Accept[class[i]] = true
		}
	}
	return out
}

// Syms converts a plain string of single-rune symbols into a symbol slice —
// a convenience for tests and the pumping machinery.
func Syms(s string) []word.Symbol {
	out := make([]word.Symbol, 0, len(s))
	for _, r := range s {
		out = append(out, word.Symbol(string(r)))
	}
	return out
}

// String renders a symbol slice back to a plain string.
func String(ws []word.Symbol) string {
	out := ""
	for _, a := range ws {
		out += string(a)
	}
	return out
}

// Validate checks internal consistency: states in range, transitions over
// the declared alphabet.
func (d *DFA) Validate() error {
	inRange := func(s int) bool { return s >= 0 && s < d.NumStates }
	if !inRange(d.Start) {
		return fmt.Errorf("automata: start state %d out of range", d.Start)
	}
	alpha := make(map[word.Symbol]bool, len(d.Alphabet))
	for _, a := range d.Alphabet {
		alpha[a] = true
	}
	for s, m := range d.Trans {
		if !inRange(s) {
			return fmt.Errorf("automata: source state %d out of range", s)
		}
		for a, t := range m {
			if !alpha[a] {
				return fmt.Errorf("automata: transition on undeclared symbol %q", a)
			}
			if !inRange(t) {
				return fmt.Errorf("automata: target state %d out of range", t)
			}
		}
	}
	for s := range d.Accept {
		if !inRange(s) {
			return fmt.Errorf("automata: accepting state %d out of range", s)
		}
	}
	return nil
}
