package automata

import (
	"testing"

	"rtc/internal/word"
)

// evenA accepts words over {a,b} with an even number of a's.
func evenA() *DFA {
	d := NewDFA([]word.Symbol{"a", "b"}, 2, 0)
	d.SetTrans(0, "a", 1)
	d.SetTrans(1, "a", 0)
	d.SetTrans(0, "b", 0)
	d.SetTrans(1, "b", 1)
	d.SetAccept(0)
	return d
}

// endsB accepts words over {a,b} ending in b.
func endsB() *DFA {
	d := NewDFA([]word.Symbol{"a", "b"}, 2, 0)
	d.SetTrans(0, "a", 0)
	d.SetTrans(0, "b", 1)
	d.SetTrans(1, "a", 0)
	d.SetTrans(1, "b", 1)
	d.SetAccept(1)
	return d
}

func TestDFAAccepts(t *testing.T) {
	d := evenA()
	cases := map[string]bool{
		"":     true,
		"a":    false,
		"aa":   true,
		"ab":   false,
		"bab":  false,
		"baab": true,
	}
	for in, want := range cases {
		if got := d.Accepts(Syms(in)); got != want {
			t.Errorf("evenA(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestDFARunAndDead(t *testing.T) {
	d := NewDFA([]word.Symbol{"a"}, 2, 0)
	d.SetTrans(0, "a", 1)
	d.SetAccept(1)
	traj := d.Run(Syms("aaa"))
	want := []int{0, 1, Dead, Dead}
	for i := range want {
		if traj[i] != want[i] {
			t.Fatalf("Run = %v, want %v", traj, want)
		}
	}
	if d.Accepts(Syms("aa")) {
		t.Error("dead run accepted")
	}
}

func TestComplete(t *testing.T) {
	d := NewDFA([]word.Symbol{"a", "b"}, 1, 0)
	d.SetTrans(0, "a", 0)
	d.SetAccept(0)
	c := d.Complete()
	if c.NumStates != 2 {
		t.Fatalf("Complete added %d states, want sink only", c.NumStates-1)
	}
	for s := 0; s < c.NumStates; s++ {
		for _, a := range c.Alphabet {
			if c.Step(s, a) == Dead {
				t.Fatalf("Complete left (%d,%s) undefined", s, a)
			}
		}
	}
	// Language unchanged.
	for _, in := range []string{"", "a", "aa", "b", "ab"} {
		if c.Accepts(Syms(in)) != d.Accepts(Syms(in)) {
			t.Errorf("Complete changed verdict on %q", in)
		}
	}
}

func TestComplement(t *testing.T) {
	d := evenA()
	c := d.Complement()
	for _, in := range []string{"", "a", "ab", "aab", "bb"} {
		if c.Accepts(Syms(in)) == d.Accepts(Syms(in)) {
			t.Errorf("complement agrees with original on %q", in)
		}
	}
}

func TestProduct(t *testing.T) {
	and := Product(evenA(), endsB(), func(x, y bool) bool { return x && y })
	cases := map[string]bool{
		"b":    true,  // zero a's (even), ends b
		"ab":   false, // odd a's
		"aab":  true,
		"aaba": false, // ends a
		"":     false, // doesn't end in b
	}
	for in, want := range cases {
		if got := and.Accepts(Syms(in)); got != want {
			t.Errorf("(evenA ∧ endsB)(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestShortestAcceptedAndEmpty(t *testing.T) {
	d := endsB()
	w, ok := d.ShortestAccepted()
	if !ok || String(w) != "b" {
		t.Errorf("ShortestAccepted = %q, %v", String(w), ok)
	}
	empty := NewDFA([]word.Symbol{"a"}, 1, 0)
	empty.SetTrans(0, "a", 0)
	if !empty.Empty() {
		t.Error("DFA without accepting states not empty")
	}
	eps := NewDFA([]word.Symbol{"a"}, 1, 0)
	eps.SetAccept(0)
	w, ok = eps.ShortestAccepted()
	if !ok || len(w) != 0 {
		t.Errorf("ShortestAccepted on ε-accepting DFA = %v, %v", w, ok)
	}
}

func TestEquivalent(t *testing.T) {
	a := evenA()
	b := evenA()
	if ok, ce := Equivalent(a, b); !ok {
		t.Errorf("identical DFAs inequivalent, witness %q", String(ce))
	}
	c := endsB()
	ok, ce := Equivalent(a, c)
	if ok {
		t.Fatal("different DFAs declared equivalent")
	}
	if a.Accepts(ce) == c.Accepts(ce) {
		t.Errorf("counterexample %q does not separate", String(ce))
	}
}

func TestMinimize(t *testing.T) {
	// Build an inflated evenA with duplicate states.
	d := NewDFA([]word.Symbol{"a", "b"}, 4, 0)
	d.SetTrans(0, "a", 1)
	d.SetTrans(0, "b", 2) // 2 duplicates 0
	d.SetTrans(1, "a", 2)
	d.SetTrans(1, "b", 3) // 3 duplicates 1
	d.SetTrans(2, "a", 3)
	d.SetTrans(2, "b", 0)
	d.SetTrans(3, "a", 0)
	d.SetTrans(3, "b", 1)
	d.SetAccept(0, 2)
	m := d.Minimize()
	if m.NumStates != 2 {
		t.Fatalf("Minimize: %d states, want 2", m.NumStates)
	}
	if ok, ce := Equivalent(d, m); !ok {
		t.Fatalf("minimized DFA differs, witness %q", String(ce))
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	d := evenA()
	d.NumStates = 5 // three unreachable states
	d.SetAccept(4)
	m := d.Minimize()
	if m.NumStates != 2 {
		t.Fatalf("Minimize kept unreachable states: %d", m.NumStates)
	}
}

func TestValidate(t *testing.T) {
	d := evenA()
	if err := d.Validate(); err != nil {
		t.Errorf("valid DFA rejected: %v", err)
	}
	d.SetTrans(0, "z", 1)
	if err := d.Validate(); err == nil {
		t.Error("undeclared symbol accepted")
	}
}

func TestNFADeterminize(t *testing.T) {
	// NFA for words over {a,b} containing "ab".
	n := NewNFA([]word.Symbol{"a", "b"}, 3, 0)
	n.AddTrans(0, "a", 0)
	n.AddTrans(0, "b", 0)
	n.AddTrans(0, "a", 1)
	n.AddTrans(1, "b", 2)
	n.AddTrans(2, "a", 2)
	n.AddTrans(2, "b", 2)
	n.SetAccept(2)
	cases := map[string]bool{
		"":      false,
		"ab":    true,
		"ba":    false,
		"aab":   true,
		"babab": true,
		"bbaa":  false,
	}
	for in, want := range cases {
		if got := n.Accepts(Syms(in)); got != want {
			t.Errorf("NFA(%q) = %v, want %v", in, got, want)
		}
	}
	d := n.Determinize()
	for in, want := range cases {
		if got := d.Accepts(Syms(in)); got != want {
			t.Errorf("DFA(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNFAEpsilon(t *testing.T) {
	// λ-transitions: start can jump to either branch, as in the A′
	// construction of Theorem 3.1.
	n := NewNFA([]word.Symbol{"a", "b"}, 3, 0)
	n.AddEps(0, 1)
	n.AddEps(0, 2)
	n.AddTrans(1, "a", 1)
	n.AddTrans(2, "b", 2)
	n.SetAccept(1, 2)
	for in, want := range map[string]bool{
		"":    true,
		"aa":  true,
		"bb":  true,
		"ab":  false,
		"aab": false,
	} {
		if got := n.Accepts(Syms(in)); got != want {
			t.Errorf("εNFA(%q) = %v, want %v", in, got, want)
		}
		if got := n.Determinize().Accepts(Syms(in)); got != want {
			t.Errorf("det(εNFA)(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestFromDFA(t *testing.T) {
	d := evenA()
	n := FromDFA(d)
	for _, in := range []string{"", "a", "aa", "ba", "bab"} {
		if n.Accepts(Syms(in)) != d.Accepts(Syms(in)) {
			t.Errorf("FromDFA changed verdict on %q", in)
		}
	}
}
