package relational

import (
	"strings"

	"rtc/internal/encoding"
	"rtc/internal/language"
	"rtc/internal/word"
)

// This file implements the recognition problem (5) of §5.1.1, which defines
// the data complexity of a query q:
//
//	{ enc(I) $ enc(u) | u ∈ q(I) }.
//
// The instance/tuple separator must lie outside the codomain of enc; since
// our record encoding already uses '$' internally, the top-level separator
// is the distinct symbol '§' (the paper only requires *some* special
// symbol).

// RecognitionSep separates enc(I) from enc(u).
const RecognitionSep = word.Symbol("§")

// EncodeInstance encodes a database instance deterministically: for each
// relation (sorted by name) a header record $R@name@attrs$ followed by one
// record $t@v1@…@vk$ per tuple in canonical order.
func EncodeInstance(db *Database) []word.Symbol {
	var out []word.Symbol
	for _, name := range db.Names() {
		r, _ := db.Relation(name)
		attrs := make([]string, len(r.Schema.Attrs))
		for i, a := range r.Schema.Attrs {
			attrs[i] = string(a)
		}
		out = append(out, encoding.Record("R", name, strings.Join(attrs, "\x1f"))...)
		for _, t := range r.Tuples() {
			fields := append([]string{"t"}, t...)
			out = append(out, encoding.Record(fields...)...)
		}
	}
	return out
}

// DecodeInstance inverts EncodeInstance.
func DecodeInstance(syms []word.Symbol) (*Database, bool) {
	recs, ok := encoding.Records(syms)
	if !ok {
		return nil, false
	}
	db := NewDatabase()
	var cur *Relation
	for _, rec := range recs {
		if len(rec) == 0 {
			return nil, false
		}
		switch rec[0] {
		case "R":
			if len(rec) != 3 {
				return nil, false
			}
			var attrs []Attribute
			if rec[2] != "" {
				for _, a := range strings.Split(rec[2], "\x1f") {
					attrs = append(attrs, Attribute(a))
				}
			}
			cur = NewRelation(Schema{Name: rec[1], Attrs: attrs})
			db.Add(cur)
		case "t":
			if cur == nil {
				return nil, false
			}
			if err := cur.Insert(Tuple(rec[1:])); err != nil {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return db, true
}

// EncodeTuple encodes a candidate tuple u.
func EncodeTuple(u Tuple) []word.Symbol {
	fields := append([]string{"u"}, u...)
	return encoding.Record(fields...)
}

// DecodeTuple inverts EncodeTuple.
func DecodeTuple(syms []word.Symbol) (Tuple, bool) {
	rec, ok := encoding.ParseRecord(syms)
	if !ok || len(rec) == 0 || rec[0] != "u" {
		return nil, false
	}
	return Tuple(rec[1:]), true
}

// RecognitionWord builds the classical word enc(I)§enc(u) as a timed word
// with the all-zero time sequence (the classical embedding of §3.2).
func RecognitionWord(db *Database, u Tuple) word.Finite {
	var syms []word.Symbol
	syms = append(syms, EncodeInstance(db)...)
	syms = append(syms, RecognitionSep)
	syms = append(syms, EncodeTuple(u)...)
	out := make(word.Finite, len(syms))
	for i, s := range syms {
		out[i] = word.TimedSym{Sym: s, At: 0}
	}
	return out
}

// RecognitionLanguage is the language (5) for a fixed query q: the word
// enc(I)§enc(u) is a member iff u ∈ q(I). Data complexity of q is the
// complexity of deciding this language for growing I.
func RecognitionLanguage(q Query) *language.Language {
	return language.FromPredicate("recognition", func(w word.Finite) bool {
		syms := w.Syms()
		sep := -1
		for i, s := range syms {
			if s == RecognitionSep {
				sep = i
				break
			}
		}
		if sep < 0 {
			return false
		}
		db, ok := DecodeInstance(syms[:sep])
		if !ok {
			return false
		}
		u, ok := DecodeTuple(syms[sep+1:])
		if !ok {
			return false
		}
		res, err := q.Eval(db)
		if err != nil {
			return false
		}
		return res.Contains(u)
	})
}
