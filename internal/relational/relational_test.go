package relational

import (
	"testing"

	"rtc/internal/language"
)

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(Schema{Name: "R", Attrs: []Attribute{"A", "B"}})
	r.MustInsert("1", "2")
	r.MustInsert("1", "2") // duplicate collapses
	r.MustInsert("3", "4")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(Tuple{"1", "2"}) || r.Contains(Tuple{"2", "1"}) {
		t.Error("Contains broken")
	}
	r.Delete(Tuple{"1", "2"})
	if r.Len() != 1 || r.Contains(Tuple{"1", "2"}) {
		t.Error("Delete broken")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := NewRelation(Schema{Name: "R", Attrs: []Attribute{"A"}})
	if err := r.Insert(Tuple{"1", "2"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	r := NewRelation(Schema{Name: "R", Attrs: []Attribute{"A"}})
	r.MustInsert("b")
	r.MustInsert("a")
	r.MustInsert("c")
	ts := r.Tuples()
	if ts[0][0] != "a" || ts[1][0] != "b" || ts[2][0] != "c" {
		t.Errorf("order = %v", ts)
	}
}

func TestCloneIsolation(t *testing.T) {
	r := NewRelation(Schema{Name: "R", Attrs: []Attribute{"A"}})
	r.MustInsert("x")
	c := r.Clone()
	c.MustInsert("y")
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone not isolated")
	}
	db := NewDatabase()
	db.Add(r)
	dc := db.Clone()
	cr, _ := dc.Relation("R")
	cr.MustInsert("z")
	if r.Len() != 1 {
		t.Error("Database clone not isolated")
	}
}

// The headline check: Figure 1's database under Figure 2's query yields
// exactly Figure 2's three tuples.
func TestNGCFigure2(t *testing.T) {
	db := NGCDatabase()
	got, err := NovemberQuery().Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := Figure2Result()
	if !got.Equal(want) {
		t.Fatalf("query result:\n%v\nwant:\n%v", got, want)
	}
}

func TestNGCShape(t *testing.T) {
	db := NGCDatabase()
	ex, ok := db.Relation("Exhibitions")
	if !ok || ex.Len() != 6 {
		t.Fatalf("Exhibitions has %d tuples, want 6", ex.Len())
	}
	if ex.Schema.Arity() != 3 {
		t.Errorf("arity(Exhibitions) = %d, want 3 (as in the paper)", ex.Schema.Arity())
	}
	sch, ok := db.Relation("Schedules")
	if !ok || sch.Len() != 3 {
		t.Fatalf("Schedules has %d tuples, want 3", sch.Len())
	}
}

func TestSelectProject(t *testing.T) {
	db := NGCDatabase()
	nov := Eq(From{Name: "Schedules", Schema: SchedulesSchema}, "Date", "November 1999")
	r, err := nov.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("November schedules = %d, want 2", r.Len())
	}
	cities, err := Project{Input: nov, Attrs: []Attribute{"City"}}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if cities.Len() != 2 || !cities.Contains(Tuple{"Hamilton"}) || !cities.Contains(Tuple{"St. Catharines"}) {
		t.Errorf("cities = %v", cities)
	}
}

func TestProjectUnknownAttribute(t *testing.T) {
	db := NGCDatabase()
	_, err := Project{Input: From{Name: "Schedules", Schema: SchedulesSchema}, Attrs: []Attribute{"Nope"}}.Eval(db)
	if err == nil {
		t.Error("projection on unknown attribute succeeded")
	}
}

func TestJoinSharesAttributes(t *testing.T) {
	db := NGCDatabase()
	j := Join{
		Left:  From{Name: "Exhibitions", Schema: ExhibitionsSchema},
		Right: From{Name: "Schedules", Schema: SchedulesSchema},
	}
	r, err := j.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// Every exhibition title appears in exactly one schedule, so the join
	// has as many tuples as Exhibitions.
	if r.Len() != 6 {
		t.Fatalf("join size = %d, want 6", r.Len())
	}
	want := []Attribute{"Title", "Description", "Artist", "City", "Date"}
	if len(r.Schema.Attrs) != len(want) {
		t.Fatalf("join sort = %v", r.Schema.Attrs)
	}
	for i := range want {
		if r.Schema.Attrs[i] != want[i] {
			t.Fatalf("join sort = %v, want %v", r.Schema.Attrs, want)
		}
	}
}

func TestUnionDiff(t *testing.T) {
	s := Schema{Name: "R", Attrs: []Attribute{"A"}}
	a := NewRelation(s)
	a.MustInsert("1")
	a.MustInsert("2")
	b := NewRelation(s)
	b.MustInsert("2")
	b.MustInsert("3")
	db := NewDatabase()
	ra := a.Clone()
	ra.Schema.Name = "A"
	rb := b.Clone()
	rb.Schema.Name = "B"
	db.Add(ra)
	db.Add(rb)
	qa := From{Name: "A", Schema: Schema{Name: "A", Attrs: s.Attrs}}
	qb := From{Name: "B", Schema: Schema{Name: "B", Attrs: s.Attrs}}
	u, err := Union{Left: qa, Right: qb}.Eval(db)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union = %v (%v)", u, err)
	}
	d, err := Diff{Left: qa, Right: qb}.Eval(db)
	if err != nil || d.Len() != 1 || !d.Contains(Tuple{"1"}) {
		t.Fatalf("diff = %v (%v)", d, err)
	}
}

func TestRename(t *testing.T) {
	db := NGCDatabase()
	q := Rename{Input: From{Name: "Schedules", Schema: SchedulesSchema}, OldAttr: "City", NewAttr: "Town"}
	r, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Schema.Index("Town"); !ok {
		t.Errorf("renamed sort = %v", r.Schema.Attrs)
	}
	if _, ok := r.Schema.Index("City"); ok {
		t.Errorf("old attribute survived: %v", r.Schema.Attrs)
	}
}

func TestEncodeDecodeInstance(t *testing.T) {
	db := NGCDatabase()
	syms := EncodeInstance(db)
	back, ok := DecodeInstance(syms)
	if !ok {
		t.Fatal("DecodeInstance failed")
	}
	for _, name := range db.Names() {
		orig, _ := db.Relation(name)
		got, ok := back.Relation(name)
		if !ok || !got.Equal(orig) {
			t.Fatalf("relation %q not preserved", name)
		}
	}
	// Determinism.
	again := EncodeInstance(db)
	if len(again) != len(syms) {
		t.Fatal("encoding not deterministic")
	}
	for i := range syms {
		if syms[i] != again[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestRecognitionLanguage(t *testing.T) {
	db := NGCDatabase()
	lang := RecognitionLanguage(NovemberQuery())
	member := RecognitionWord(db, Tuple{"Schaefer", "St. Catharines"})
	if got := lang.Contains(member, 1<<20); got != language.Yes {
		t.Fatalf("member verdict = %v", got)
	}
	non := RecognitionWord(db, Tuple{"Thompson", "Mexico City"})
	if got := lang.Contains(non, 1<<20); got != language.No {
		t.Fatalf("non-member verdict = %v", got)
	}
	garbage := RecognitionWord(NewDatabase(), Tuple{"x"})
	if got := lang.Contains(garbage, 1<<20); got != language.No {
		t.Fatalf("empty instance verdict = %v", got)
	}
}
