package relational

import (
	"fmt"
)

// Query is a partial mapping from database instances to relation instances
// (§5.1.1). Evaluation may fail on schema mismatches, which is the partial
// part.
type Query interface {
	// Eval computes q(I).
	Eval(db *Database) (*Relation, error)
	// Sort returns the output schema.
	Sort() Schema
}

// From is the query returning a stored relation instance.
type From struct {
	Name   string
	Schema Schema
}

// Eval implements Query.
func (q From) Eval(db *Database) (*Relation, error) {
	r, ok := db.Relation(q.Name)
	if !ok {
		return nil, fmt.Errorf("relational: unknown relation %q", q.Name)
	}
	if !r.Schema.SameSort(q.Schema) {
		return nil, fmt.Errorf("relational: relation %q has sort %v, query expects %v",
			q.Name, r.Schema.Attrs, q.Schema.Attrs)
	}
	return r.Clone(), nil
}

// Sort implements Query.
func (q From) Sort() Schema { return q.Schema }

// Select filters tuples by a predicate on attribute values.
type Select struct {
	Input Query
	// Pred receives the tuple's value for each attribute of the input sort.
	Pred func(get func(Attribute) Value) bool
	// Label names the selection in the output schema.
	Label string
}

// Eval implements Query.
func (q Select) Eval(db *Database) (*Relation, error) {
	in, err := q.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	out := NewRelation(q.Sort())
	for _, t := range in.Tuples() {
		tt := t
		get := func(a Attribute) Value {
			if i, ok := in.Schema.Index(a); ok {
				return tt[i]
			}
			return ""
		}
		if q.Pred(get) {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Sort implements Query.
func (q Select) Sort() Schema {
	s := q.Input.Sort()
	return Schema{Name: "σ(" + s.Name + ")", Attrs: s.Attrs}
}

// Eq builds the common equality selection σ_{attr = value}.
func Eq(input Query, attr Attribute, value Value) Select {
	return Select{
		Input: input,
		Pred:  func(get func(Attribute) Value) bool { return get(attr) == value },
		Label: fmt.Sprintf("%s=%s", attr, value),
	}
}

// Project keeps only the listed attributes.
type Project struct {
	Input Query
	Attrs []Attribute
}

// Eval implements Query.
func (q Project) Eval(db *Database) (*Relation, error) {
	in, err := q.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(q.Attrs))
	for i, a := range q.Attrs {
		j, ok := in.Schema.Index(a)
		if !ok {
			return nil, fmt.Errorf("relational: projection attribute %q not in sort %v", a, in.Schema.Attrs)
		}
		idx[i] = j
	}
	out := NewRelation(q.Sort())
	for _, t := range in.Tuples() {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Sort implements Query.
func (q Project) Sort() Schema {
	return Schema{Name: "π(" + q.Input.Sort().Name + ")", Attrs: q.Attrs}
}

// Join is the natural join on shared attribute names.
type Join struct {
	Left, Right Query
}

// Eval implements Query.
func (q Join) Eval(db *Database) (*Relation, error) {
	l, err := q.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := q.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	// Shared attributes join; right-only attributes are appended.
	var shared [][2]int // (left idx, right idx)
	var rightOnly []int
	for j, a := range r.Schema.Attrs {
		if i, ok := l.Schema.Index(a); ok {
			shared = append(shared, [2]int{i, j})
		} else {
			rightOnly = append(rightOnly, j)
		}
	}
	out := NewRelation(q.Sort())
	// Hash join on the shared attributes.
	index := make(map[string][]Tuple)
	keyOf := func(t Tuple, side int) string {
		k := ""
		for _, p := range shared {
			k += "\x00" + t[p[side]]
		}
		return k
	}
	for _, rt := range r.Tuples() {
		index[keyOf(rt, 1)] = append(index[keyOf(rt, 1)], rt)
	}
	for _, lt := range l.Tuples() {
		for _, rt := range index[keyOf(lt, 0)] {
			nt := make(Tuple, 0, len(lt)+len(rightOnly))
			nt = append(nt, lt...)
			for _, j := range rightOnly {
				nt = append(nt, rt[j])
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Sort implements Query.
func (q Join) Sort() Schema {
	l, r := q.Left.Sort(), q.Right.Sort()
	attrs := append([]Attribute{}, l.Attrs...)
	for _, a := range r.Attrs {
		if _, ok := l.Index(a); !ok {
			attrs = append(attrs, a)
		}
	}
	return Schema{Name: l.Name + "⋈" + r.Name, Attrs: attrs}
}

// Union is set union of two same-sort queries.
type Union struct{ Left, Right Query }

// Eval implements Query.
func (q Union) Eval(db *Database) (*Relation, error) {
	l, err := q.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := q.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	if !l.Schema.SameSort(r.Schema) {
		return nil, fmt.Errorf("relational: union of different sorts %v, %v", l.Schema.Attrs, r.Schema.Attrs)
	}
	out := NewRelation(q.Sort())
	for _, t := range l.Tuples() {
		_ = out.Insert(t)
	}
	for _, t := range r.Tuples() {
		_ = out.Insert(t)
	}
	return out, nil
}

// Sort implements Query.
func (q Union) Sort() Schema {
	s := q.Left.Sort()
	return Schema{Name: s.Name + "∪", Attrs: s.Attrs}
}

// Diff is set difference of two same-sort queries.
type Diff struct{ Left, Right Query }

// Eval implements Query.
func (q Diff) Eval(db *Database) (*Relation, error) {
	l, err := q.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := q.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	if !l.Schema.SameSort(r.Schema) {
		return nil, fmt.Errorf("relational: difference of different sorts %v, %v", l.Schema.Attrs, r.Schema.Attrs)
	}
	out := NewRelation(q.Sort())
	for _, t := range l.Tuples() {
		if !r.Contains(t) {
			_ = out.Insert(t)
		}
	}
	return out, nil
}

// Sort implements Query.
func (q Diff) Sort() Schema {
	s := q.Left.Sort()
	return Schema{Name: s.Name + "−", Attrs: s.Attrs}
}

// Rename renames one attribute.
type Rename struct {
	Input   Query
	OldAttr Attribute
	NewAttr Attribute
}

// Eval implements Query.
func (q Rename) Eval(db *Database) (*Relation, error) {
	in, err := q.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	out := NewRelation(q.Sort())
	for _, t := range in.Tuples() {
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Sort implements Query.
func (q Rename) Sort() Schema {
	s := q.Input.Sort()
	attrs := make([]Attribute, len(s.Attrs))
	for i, a := range s.Attrs {
		if a == q.OldAttr {
			attrs[i] = q.NewAttr
		} else {
			attrs[i] = a
		}
	}
	return Schema{Name: "ρ(" + s.Name + ")", Attrs: attrs}
}
