// Package relational implements the relational database substrate of
// §5.1.1, following the notation of Abiteboul–Hull–Vianu as the paper does:
// attributes (att), an underlying domain (dom), relation schemas with their
// sorts, relation and database instances, a relational algebra for queries,
// and the recognition problem (5) that defines query data complexity:
//
//	{ enc(I) $ enc(u) | u ∈ q(I) }.
//
// The worked example of Figures 1–2 (the NGC travelling-exhibitions
// database and the query "which artist is exhibited in which city in
// November") lives in ngc.go.
package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Value is an element of the underlying domain dom. The paper takes dom as
// the set of finite strings of characters.
type Value = string

// Attribute is an element of att.
type Attribute string

// Schema is a relation schema: a relation name together with its ordered
// set of attributes (its sort).
type Schema struct {
	Name  string
	Attrs []Attribute
}

// Arity returns |sort(R)|.
func (s Schema) Arity() int { return len(s.Attrs) }

// Index returns the position of an attribute in the sort.
func (s Schema) Index(a Attribute) (int, bool) {
	for i, x := range s.Attrs {
		if x == a {
			return i, true
		}
	}
	return -1, false
}

// SameSort reports whether two schemas have identical sorts (attribute
// names and order), as required for union and difference.
func (s Schema) SameSort(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

// Tuple is a tuple over a relation schema, positional on the sort.
type Tuple []Value

// Equal compares tuples component-wise.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// key builds a canonical map key for set semantics.
func (t Tuple) key() string {
	return strings.Join(t, "\x00")
}

// Relation is a relation instance: a finite set of tuples over a schema.
type Relation struct {
	Schema Schema
	tuples map[string]Tuple
}

// NewRelation creates an empty instance over the schema.
func NewRelation(s Schema) *Relation {
	return &Relation{Schema: s, tuples: make(map[string]Tuple)}
}

// Insert adds a tuple (set semantics: duplicates collapse). It returns an
// error on arity mismatch.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.Schema.Arity() {
		return fmt.Errorf("relational: tuple arity %d does not match sort %v", len(t), r.Schema.Attrs)
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[cp.key()] = cp
	return nil
}

// MustInsert is Insert for statically known tuples.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Delete removes a tuple; missing tuples are a no-op.
func (r *Relation) Delete(t Tuple) {
	delete(r.tuples, t.key())
}

// Contains reports tuple membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.key()]
	return ok
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in canonical (sorted) order, so iteration and
// encodings are deterministic.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	for k, t := range r.tuples {
		out.tuples[k] = t
	}
	return out
}

// Equal reports set equality of two instances with the same sort.
func (r *Relation) Equal(o *Relation) bool {
	if !r.Schema.SameSort(o.Schema) || r.Len() != o.Len() {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// String renders the instance as a small table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.Schema.Name)
	for i, a := range r.Schema.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(a))
	}
	b.WriteString(")\n")
	for _, t := range r.Tuples() {
		b.WriteString("  " + strings.Join(t, " | ") + "\n")
	}
	return b.String()
}

// Database is a database instance I over a database schema R: a relation
// instance per relation name.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase creates an empty instance.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add registers a relation instance (replacing any previous instance of the
// same name).
func (db *Database) Add(r *Relation) {
	db.rels[r.Schema.Name] = r
}

// Relation looks up an instance by relation name.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the instance.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for _, r := range db.rels {
		out.Add(r.Clone())
	}
	return out
}
