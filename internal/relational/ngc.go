package relational

// This file reproduces the worked example of §5.1.1: the National Gallery
// of Canada travelling-exhibitions database of Figure 1 and the query of
// Figure 2 ("which artist is exhibited in which city in November").

// NGC schema names and attributes, as in the paper.
var (
	ExhibitionsSchema = Schema{
		Name:  "Exhibitions",
		Attrs: []Attribute{"Title", "Description", "Artist"},
	}
	SchedulesSchema = Schema{
		Name:  "Schedules",
		Attrs: []Attribute{"City", "Title", "Date"},
	}
)

// NGCDatabase builds the exact database instance of Figure 1.
func NGCDatabase() *Database {
	ex := NewRelation(ExhibitionsSchema)
	ex.MustInsert("Terre Sauvage", "Canadian Landscape Paintings", "Thompson")
	ex.MustInsert("Terre Sauvage", "Canadian Landscape Paintings", "Harris")
	ex.MustInsert("Terre Sauvage", "Canadian Landscape Paintings", "MacDonald")
	ex.MustInsert("Painter of the Soil", "Works on Paper", "Schaefer")
	ex.MustInsert("Sorrowful Images", "Early Nederlandish Devotional Diptychs", "Aelbrecht")
	ex.MustInsert("Sorrowful Images", "Early Nederlandish Devotional Diptychs", "Dieric")

	sch := NewRelation(SchedulesSchema)
	sch.MustInsert("Mexico City", "Terre Sauvage", "October 1999")
	sch.MustInsert("St. Catharines", "Painter of the Soil", "November 1999")
	sch.MustInsert("Hamilton", "Sorrowful Images", "November 1999")

	db := NewDatabase()
	db.Add(ex)
	db.Add(sch)
	return db
}

// NovemberQuery is the Figure 2 query: join Exhibitions and Schedules on
// Title, keep the November 1999 schedules, and project (Artist, City).
func NovemberQuery() Query {
	return Project{
		Input: Eq(
			Join{
				Left:  From{Name: "Exhibitions", Schema: ExhibitionsSchema},
				Right: From{Name: "Schedules", Schema: SchedulesSchema},
			},
			"Date", "November 1999",
		),
		Attrs: []Attribute{"Artist", "City"},
	}
}

// Figure2Result is the expected answer S of Figure 2.
func Figure2Result() *Relation {
	s := NewRelation(Schema{Name: "S", Attrs: []Attribute{"Artist", "City"}})
	s.MustInsert("Schaefer", "St. Catharines")
	s.MustInsert("Aelbrecht", "Hamilton")
	s.MustInsert("Dieric", "Hamilton")
	return s
}
