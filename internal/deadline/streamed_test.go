package deadline

import (
	"testing"

	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// sumSolver folds numeric symbols into a running sum (order-insensitive, so
// streaming arrival order does not matter).
func sumSolver(cost uint64) *IncrementalSolver {
	return &IncrementalSolver{
		Cost: cost,
		Fold: func(acc []word.Symbol, sym word.Symbol) []word.Symbol {
			var cur uint64
			if len(acc) == 1 {
				cur, _ = encoding.AsNum(acc[0])
			}
			v, _ := encoding.AsNum(sym)
			return []word.Symbol{encoding.Num(cur + v)}
		},
	}
}

func nums(vs ...uint64) []word.Symbol {
	out := make([]word.Symbol, len(vs))
	for i, v := range vs {
		out[i] = encoding.Num(v)
	}
	return out
}

func TestStreamedWordShape(t *testing.T) {
	inst := StreamedInstance{
		Input:      nums(1, 2, 3),
		InputTimes: []timeseq.Time{0, 4, 9},
		Proposed:   nums(6),
	}
	w := inst.Word()
	p := word.Prefix(w, 24)
	// Input symbols sit at their own timestamps, tagged by "i".
	at := map[timeseq.Time]bool{}
	for i := 0; i+1 < len(p); i++ {
		if p[i].Sym == "i" {
			at[p[i+1].At] = true
			if p[i+1].At != p[i].At {
				t.Fatalf("tag and payload at different times: %v %v", p[i], p[i+1])
			}
		}
	}
	for _, want := range []timeseq.Time{0, 4, 9} {
		if !at[want] {
			t.Errorf("no input arrival at %d (prefix %v)", want, p)
		}
	}
	if !word.MonotoneWithin(w, 64) {
		t.Error("streamed word not monotone")
	}
}

func TestStreamedNoDeadline(t *testing.T) {
	inst := StreamedInstance{
		Input:      nums(1, 2, 3),
		InputTimes: []timeseq.Time{0, 4, 9},
		Proposed:   nums(6),
	}
	res := AcceptsStreamed(inst, sumSolver(1), 200)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// The decision cannot precede the last arrival.
	if res.DecidedAt < 9 {
		t.Errorf("decided at %d, before the last arrival", res.DecidedAt)
	}
	wrong := inst
	wrong.Proposed = nums(7)
	if res := AcceptsStreamed(wrong, sumSolver(1), 200); res.Verdict != core.RejectProven {
		t.Fatalf("wrong output verdict = %v", res.Verdict)
	}
}

// A firm deadline earlier than the last arrival dooms the computation no
// matter how fast the solver is — the real-time character comes from the
// input, exactly as §3.1.1 argues ("time restrictions are imposed by the
// input itself").
func TestStreamedFirmDeadlineVsArrival(t *testing.T) {
	inst := StreamedInstance{
		Input:      nums(1, 2),
		InputTimes: []timeseq.Time{0, 12},
		Proposed:   nums(3),
		Kind:       Firm,
		Deadline:   6,
		MinUseful:  1,
	}
	if res := AcceptsStreamed(inst, sumSolver(1), 300); res.Verdict != core.RejectProven {
		t.Fatalf("verdict = %v; input at 12 cannot beat deadline 6", res.Verdict)
	}
	// Moving the deadline past the arrival (plus processing) flips it.
	inst.Deadline = 16
	if res := AcceptsStreamed(inst, sumSolver(1), 300); res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v with deadline 16", res.Verdict)
	}
}

func TestStreamedSoftDeadline(t *testing.T) {
	u := Hyperbolic(10, 5)
	inst := StreamedInstance{
		Input:      nums(4, 5),
		InputTimes: []timeseq.Time{0, 8}, // decision at t = 8, after t_d = 5
		Proposed:   nums(9),
		Kind:       Soft,
		Deadline:   5,
		MinUseful:  3,
		U:          u,
	}
	// u(8) = 10/3 = 3 ≥ 3: accepted late.
	if res := AcceptsStreamed(inst, sumSolver(1), 300); res.Verdict != core.AcceptProven {
		t.Fatalf("soft verdict = %v", res.Verdict)
	}
	inst.MinUseful = 5
	if res := AcceptsStreamed(inst, sumSolver(1), 300); res.Verdict != core.RejectProven {
		t.Fatalf("strict soft verdict = %v", res.Verdict)
	}
}

// Slow incremental processing delays the decision past the arrival times.
func TestStreamedProcessingBacklog(t *testing.T) {
	inst := StreamedInstance{
		Input:      nums(1, 1, 1, 1),
		InputTimes: []timeseq.Time{0, 0, 0, 0},
		Proposed:   nums(4),
	}
	res := AcceptsStreamed(inst, sumSolver(5), 300)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	// 4 symbols × 5 chronons each: idle no earlier than tick 19.
	if res.DecidedAt < 19 {
		t.Errorf("decided at %d, backlog cost ignored", res.DecidedAt)
	}
}

func TestStreamedMalformed(t *testing.T) {
	w := word.RepeatClassical("w", 1) // nothing at time 0
	acc := &StreamedAcceptor{Solver: sumSolver(1), ExpectInput: 1}
	m := core.NewMachine(acc, w)
	if res := core.RunForVerdict(m, 50); res.Verdict != core.RejectProven {
		t.Fatalf("malformed verdict = %v", res.Verdict)
	}
}
