package deadline

import (
	"testing"

	"rtc/internal/automata"
	"rtc/internal/core"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// sortSolver solves the toy problem Π = "sort the input symbols" with a
// configurable per-symbol cost.
func sortSolver(costPerSym uint64) *FuncSolver {
	return &FuncSolver{
		Cost: func(n int) uint64 {
			c := costPerSym * uint64(n)
			if c == 0 {
				c = 1
			}
			return c
		},
		Solve: func(in []word.Symbol) []word.Symbol {
			out := append([]word.Symbol{}, in...)
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		},
	}
}

func inst(kind Kind, input, proposed string, td timeseq.Time, min uint64, u Usefulness) Instance {
	return Instance{
		Input:     automata.Syms(input),
		Proposed:  automata.Syms(proposed),
		Kind:      kind,
		Deadline:  td,
		MinUseful: min,
		U:         u,
	}
}

func TestWordShapeNoDeadline(t *testing.T) {
	i := inst(None, "ba", "ab", 0, 0, nil)
	w := i.Word()
	p := word.Prefix(w, 10)
	// Header at time 0: a b | b a |, then w's at 1,2,3,...
	if p[0].Sym != "a" || p[0].At != 0 {
		t.Fatalf("prefix = %v", p)
	}
	seps := 0
	for _, e := range p {
		if e.Sym == Sep {
			seps++
		}
	}
	if seps != 2 {
		t.Fatalf("separators = %d, prefix %v", seps, p)
	}
	if p[6].Sym != W || p[6].At != 1 || p[7].At != 2 {
		t.Fatalf("w region wrong: %v", p)
	}
	if !word.WellBehavedWithin(w, 64) {
		t.Error("instance word should look well behaved")
	}
}

func TestWordShapeFirm(t *testing.T) {
	i := inst(Firm, "x", "x", 3, 2, nil)
	w := i.Word()
	p := word.Prefix(w, 12)
	// Header: #2 x | x |  (5 symbols at time 0), then w at 1, w at 2,
	// then pairs (d,#0) at 3, 4, …
	if v, ok := encAsNum(p[0].Sym); !ok || v != 2 {
		t.Fatalf("first symbol = %v", p[0])
	}
	if p[5].Sym != W || p[5].At != 1 || p[6].Sym != W || p[6].At != 2 {
		t.Fatalf("w region: %v", p)
	}
	if p[7].Sym != D || p[7].At != 3 {
		t.Fatalf("first d: %v", p)
	}
	if v, ok := encAsNum(p[8].Sym); !ok || v != 0 || p[8].At != 3 {
		t.Fatalf("usefulness after firm deadline: %v", p[8])
	}
	if p[9].Sym != D || p[9].At != 4 {
		t.Fatalf("pair cadence: %v", p)
	}
}

func TestWordShapeSoft(t *testing.T) {
	u := Hyperbolic(10, 4)
	i := inst(Soft, "x", "x", 4, 3, u)
	p := word.Prefix(i.Word(), 14)
	// Pairs start at t_d = 4; usefulness floor(10/(t-4)) for t > 4, and
	// u(4) = 10 at the boundary.
	var uAt = map[timeseq.Time]uint64{}
	for k := 0; k+1 < len(p); k++ {
		if p[k].Sym == D {
			if v, ok := encAsNum(p[k+1].Sym); ok {
				uAt[p[k].At] = v
			}
		}
	}
	if uAt[4] != 10 {
		t.Errorf("u(4) = %d, want 10", uAt[4])
	}
	if uAt[5] != 10 {
		t.Errorf("u(5) = %d, want 10 (10/(5-4))", uAt[5])
	}
	if uAt[6] != 5 {
		t.Errorf("u(6) = %d, want 5", uAt[6])
	}
}

func encAsNum(s word.Symbol) (uint64, bool) {
	if len(s) > 1 && s[0] == '#' {
		var v uint64
		for _, c := range s[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + uint64(c-'0')
		}
		return v, true
	}
	return 0, false
}

func TestNoDeadlineAcceptsCorrectOutput(t *testing.T) {
	i := inst(None, "cba", "abc", 0, 0, nil)
	res := Accepts(i, sortSolver(5), 200)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestNoDeadlineRejectsWrongOutput(t *testing.T) {
	i := inst(None, "cba", "acb", 0, 0, nil)
	res := Accepts(i, sortSolver(5), 200)
	if res.Verdict != core.RejectProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

// Firm deadline: accept iff P_w completes strictly before t_d (at t_d the
// current symbol is already d and usefulness is 0).
func TestFirmDeadlineBoundary(t *testing.T) {
	// Cost 2·3 = 6 ticks: finishes at tick 5 (started at tick 0).
	solve := func() Solver { return sortSolver(2) }
	late := inst(Firm, "cba", "abc", 5, 1, nil)
	if res := Accepts(late, solve(), 300); res.Verdict != core.RejectProven {
		t.Fatalf("deadline 5 (finish at 5): verdict = %v, want reject", res.Verdict)
	}
	tight := inst(Firm, "cba", "abc", 6, 1, nil)
	if res := Accepts(tight, solve(), 300); res.Verdict != core.AcceptProven {
		t.Fatalf("deadline 6 (finish at 5): verdict = %v, want accept", res.Verdict)
	}
}

// Sweep: for a fixed workload the verdict flips from reject to accept
// exactly once as the deadline grows — the defining monotonicity of firm
// deadlines.
func TestFirmDeadlineMonotone(t *testing.T) {
	finish := timeseq.Time(2 * 4) // cost 2 per symbol, 4 symbols → tick 7... computed below
	_ = finish
	var verdicts []bool
	for td := timeseq.Time(1); td <= 16; td++ {
		i := inst(Firm, "dcba", "abcd", td, 1, nil)
		res := Accepts(i, sortSolver(2), 300)
		verdicts = append(verdicts, res.Verdict.Accepted())
	}
	flips := 0
	for k := 1; k < len(verdicts); k++ {
		if verdicts[k] != verdicts[k-1] {
			flips++
		}
	}
	if flips != 1 || verdicts[0] || !verdicts[len(verdicts)-1] {
		t.Fatalf("verdict sweep = %v, want single reject→accept flip", verdicts)
	}
}

// Soft deadline: finishing after t_d is fine while u(t) ≥ MinUseful.
func TestSoftDeadlineUsefulness(t *testing.T) {
	u := Hyperbolic(10, 4)
	// Cost 8 ticks on 4 symbols (cost 2/sym): finishes at tick 7; u(7) =
	// 10/3 = 3.
	ok := inst(Soft, "dcba", "abcd", 4, 3, u)
	if res := Accepts(ok, sortSolver(2), 300); res.Verdict != core.AcceptProven {
		t.Fatalf("min 3, u(finish)=3: verdict = %v, want accept", res.Verdict)
	}
	strict := inst(Soft, "dcba", "abcd", 4, 4, u)
	if res := Accepts(strict, sortSolver(2), 300); res.Verdict != core.RejectProven {
		t.Fatalf("min 4, u(finish)=3: verdict = %v, want reject", res.Verdict)
	}
	wrong := inst(Soft, "dcba", "abdc", 4, 3, u)
	if res := Accepts(wrong, sortSolver(2), 300); res.Verdict != core.RejectProven {
		t.Fatalf("wrong output: verdict = %v, want reject", res.Verdict)
	}
}

func TestLinearUsefulness(t *testing.T) {
	u := Linear(100, 10, 50)
	cases := []struct {
		t    timeseq.Time
		want uint64
	}{
		{0, 100}, {10, 100}, {35, 50}, {60, 0}, {1000, 0},
	}
	for _, c := range cases {
		if got := u(c.t); got != c.want {
			t.Errorf("Linear(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := inst(None, "a", "a", 0, 0, nil).Validate(); err != nil {
		t.Errorf("no-deadline instance invalid: %v", err)
	}
	if err := inst(Firm, "a", "a", 0, 1, nil).Validate(); err == nil {
		t.Error("zero deadline accepted")
	}
	if err := inst(Firm, "a", "a", 5, 0, nil).Validate(); err == nil {
		t.Error("zero MinUseful accepted")
	}
	if err := inst(Soft, "a", "a", 5, 1, nil).Validate(); err == nil {
		t.Error("soft instance without U accepted")
	}
	if err := inst(Soft, "a", "a", 5, 1, Hyperbolic(5, 5)).Validate(); err != nil {
		t.Errorf("valid soft instance rejected: %v", err)
	}
}

func TestFinishedAt(t *testing.T) {
	a := NewAcceptor(sortSolver(1))
	i := inst(None, "ba", "ab", 0, 0, nil)
	m := core.NewMachine(a, i.Word())
	core.RunForVerdict(m, 100)
	at, ok := a.FinishedAt()
	if !ok || at != 1 {
		t.Errorf("FinishedAt = (%d,%v), want (1,true): cost 2 from tick 0", at, ok)
	}
}

func TestMalformedWordRejected(t *testing.T) {
	// Nothing arrives at time 0.
	w := word.MustLasso(nil, word.Finite{{Sym: W, At: 1}}, 1)
	m := core.NewMachine(NewAcceptor(sortSolver(1)), w)
	if res := core.RunForVerdict(m, 50); res.Verdict != core.RejectProven {
		t.Fatalf("malformed word verdict = %v", res.Verdict)
	}
}

// §4.1's footnote: when Π has several valid solutions, "P_w
// nondeterministically chooses that solution that matches the proposed
// solution, if such a solution exists". Π here is "output any one input
// symbol": every input symbol is a valid answer, and the solver picks the
// proposed one when it is valid.
func TestNondeterministicSolutionChoice(t *testing.T) {
	anySymbol := func() Solver {
		return &FuncSolverWithProposed{
			Cost: func(n int) uint64 { return uint64(n) },
			Choose: func(input, proposed []word.Symbol) []word.Symbol {
				if len(proposed) == 1 {
					for _, s := range input {
						if s == proposed[0] {
							return proposed // the matching valid solution exists
						}
					}
				}
				return input[:1] // arbitrary valid solution otherwise
			},
		}
	}
	// "y" is a valid answer: the acceptor must accept.
	ok := Instance{Input: automata.Syms("xyz"), Proposed: automata.Syms("y")}
	if res := Accepts(ok, anySymbol(), 100); res.Verdict != core.AcceptProven {
		t.Fatalf("valid proposed solution rejected: %v", res.Verdict)
	}
	// "q" is not among the valid answers: reject.
	bad := Instance{Input: automata.Syms("xyz"), Proposed: automata.Syms("q")}
	if res := Accepts(bad, anySymbol(), 100); res.Verdict != core.RejectProven {
		t.Fatalf("invalid proposed solution accepted: %v", res.Verdict)
	}
}
