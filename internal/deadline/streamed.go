package deadline

import (
	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// §4.1 closes with: "we assumed here that all the input data are available
// at the beginning of computation. However, the case when data arrive while
// the computation is in progress is easily modeled by modifying the
// timestamps that correspond with each input data." This file implements
// that variant: a deadline instance whose input symbols carry individual
// arrival times.

// StreamedInstance is a deadline instance whose i-th input symbol arrives
// at InputTimes[i] (non-decreasing). The proposed output and the deadline
// envelope still arrive at time 0.
type StreamedInstance struct {
	Input      []word.Symbol
	InputTimes []timeseq.Time
	Proposed   []word.Symbol
	Kind       Kind
	Deadline   timeseq.Time
	MinUseful  uint64
	U          Usefulness
}

// Word builds the timed ω-word: the header (minimum usefulness, proposed
// output) at time 0, each input symbol at its own timestamp, and the
// w/d/usefulness envelope of the base construction merged in by
// Definition 3.5.
func (inst StreamedInstance) Word() word.Word {
	var header word.Finite
	add := func(s word.Symbol, at timeseq.Time) {
		header = append(header, word.TimedSym{Sym: s, At: at})
	}
	if inst.Kind != None {
		// The minimum usefulness is tagged so a numeric proposed output
		// cannot be mistaken for it.
		add(MinTag, 0)
		add(encoding.Num(inst.MinUseful), 0)
	}
	for _, s := range inst.Proposed {
		add(s, 0)
	}
	add(Sep, 0)
	var input word.Finite
	for i, s := range inst.Input {
		at := timeseq.Time(0)
		if i < len(inst.InputTimes) {
			at = inst.InputTimes[i]
		}
		input = append(input, word.TimedSym{Sym: "i", At: at}, word.TimedSym{Sym: s, At: at})
	}
	envelope := envelopeWord(inst.Kind, inst.Deadline, inst.U)
	return word.ConcatAll(header, input, envelope)
}

// envelopeWord produces the w/(d, usefulness) marker stream of the §4.1
// construction, starting at time 1.
func envelopeWord(kind Kind, td timeseq.Time, u Usefulness) word.Word {
	useAfter := func(t timeseq.Time) uint64 {
		if kind == Soft && u != nil {
			return u(t)
		}
		return 0
	}
	return word.Gen{F: func(k uint64) word.TimedSym {
		t := timeseq.Time(k + 1)
		if kind == None || t < td {
			return word.TimedSym{Sym: W, At: t}
		}
		j := k - uint64(td-1)
		at := td + timeseq.Time(j/2)
		if j%2 == 0 {
			return word.TimedSym{Sym: D, At: at}
		}
		return word.TimedSym{Sym: encoding.Num(useAfter(at)), At: at}
	}}
}

// StreamSolver extends Solver for incremental input: Feed is called as each
// input symbol arrives; Tick still performs one chronon of work and reports
// completion of the work received so far. Finished reports whether the
// solver considers the whole instance done (it cannot know how much input
// remains, so the acceptor tells it via Feed and the caller's protocol).
type StreamSolver interface {
	// StartStream announces the proposed solution at time 0.
	StartStream(proposed []word.Symbol)
	// Feed delivers one input symbol at its arrival instant.
	Feed(sym word.Symbol)
	// Tick performs one chronon of work; it returns the current solution
	// and whether all fed input has been fully processed.
	Tick() (solution []word.Symbol, idle bool)
}

// IncrementalSolver is a StreamSolver with a per-symbol cost: each fed
// symbol requires Cost chronons of processing before it is folded into the
// running solution via Fold.
type IncrementalSolver struct {
	Cost uint64
	Fold func(acc []word.Symbol, sym word.Symbol) []word.Symbol

	acc     []word.Symbol
	backlog []word.Symbol
	workAcc uint64
}

// StartStream implements StreamSolver.
func (s *IncrementalSolver) StartStream([]word.Symbol) {
	s.acc = nil
	s.backlog = nil
	s.workAcc = 0
}

// Feed implements StreamSolver.
func (s *IncrementalSolver) Feed(sym word.Symbol) {
	s.backlog = append(s.backlog, sym)
}

// Tick implements StreamSolver.
func (s *IncrementalSolver) Tick() ([]word.Symbol, bool) {
	s.workAcc++
	for len(s.backlog) > 0 && s.workAcc >= s.Cost {
		s.workAcc -= s.Cost
		s.acc = s.Fold(s.acc, s.backlog[0])
		s.backlog = s.backlog[1:]
	}
	if len(s.backlog) == 0 {
		s.workAcc = 0
	}
	return s.acc, len(s.backlog) == 0
}

// StreamedAcceptor runs a StreamSolver against a StreamedInstance word: the
// acceptor forwards each arriving input symbol (prefixed by the "i" tag) to
// P_w, watches the deadline envelope, and decides the moment the solver
// goes idle with no input pending in the same chronon — subject to the
// usual deadline discipline.
type StreamedAcceptor struct {
	core.Control
	Solver StreamSolver
	// ExpectInput is the number of input symbols the instance carries (the
	// problem size; known to the acceptor as part of the problem, like the
	// arrival law in §4.2).
	ExpectInput int

	parsed    bool
	proposed  []word.Symbol
	fed       int
	minUseful uint64
	hasMin    bool
	pastDead  bool
	curUseful uint64
	expectSym bool
}

// MinTag announces the minimum-usefulness value in the header.
const MinTag = word.Symbol("min")

// Tick implements core.Program.
func (a *StreamedAcceptor) Tick(t *core.Tick) {
	defer a.Drive(t)
	if !a.parsed {
		if t.Now != 0 || len(t.New) == 0 {
			a.RejectForever()
			return
		}
		// Header: [min #v] proposed… Sep, then time-0 input follows. The
		// solver must be started before any input is fed to it.
		i := 0
		expectMin := false
		sawSep := false
		for ; i < len(t.New); i++ {
			e := t.New[i]
			if e.Sym == Sep {
				sawSep = true
				i++
				break
			}
			if e.Sym == MinTag {
				expectMin = true
				continue
			}
			if expectMin {
				expectMin = false
				if v, ok := encoding.AsNum(e.Sym); ok {
					a.minUseful = v
					a.hasMin = true
				}
				continue
			}
			a.proposed = append(a.proposed, e.Sym)
		}
		if !sawSep {
			a.RejectForever()
			return
		}
		a.parsed = true
		a.Solver.StartStream(a.proposed)
		for ; i < len(t.New); i++ {
			a.consume(t.New[i])
		}
		a.afterWork(t)
		return
	}
	for _, e := range t.New {
		a.consume(e)
	}
	a.afterWork(t)
}

// consume routes one input element.
func (a *StreamedAcceptor) consume(e word.TimedSym) {
	switch {
	case e.Sym == "i":
		a.expectSym = true
	case a.expectSym:
		a.expectSym = false
		a.fed++
		a.Solver.Feed(e.Sym)
	case e.Sym == D:
		a.pastDead = true
	case e.Sym == W:
	default:
		if v, ok := encoding.AsNum(e.Sym); ok && a.pastDead {
			a.curUseful = v
		}
	}
}

func (a *StreamedAcceptor) afterWork(t *core.Tick) {
	if a.Decided() {
		return
	}
	sol, idle := a.Solver.Tick()
	if !idle || a.fed < a.ExpectInput {
		return
	}
	// All input arrived and processed: P_m compares under the deadline
	// discipline of §4.1.
	match := symsEqual(sol, a.proposed)
	if !a.pastDead {
		if match {
			a.AcceptForever()
		} else {
			a.RejectForever()
		}
		return
	}
	if !a.hasMin || a.minUseful == 0 || a.curUseful < a.minUseful {
		a.RejectForever()
		return
	}
	if match {
		a.AcceptForever()
	} else {
		a.RejectForever()
	}
}

// AcceptsStreamed runs the full streamed pipeline.
func AcceptsStreamed(inst StreamedInstance, solver StreamSolver, horizon uint64) core.Result {
	acc := &StreamedAcceptor{Solver: solver, ExpectInput: len(inst.Input)}
	m := core.NewMachine(acc, inst.Word())
	return core.RunForVerdict(m, horizon)
}
