// Package deadline implements §4.1 of the paper: computing with deadlines.
//
// An instance of a problem Π falls into one of three classes — (i) no
// deadline, (ii) a firm deadline at t_d, (iii) a soft deadline at t_d with a
// usefulness function u — and each instance is encoded as a timed ω-word
// whose structure makes the deadline observable on the input tape: a
// proposed output and the input arrive at time 0, the symbol w arrives every
// chronon until the deadline, and after the deadline each chronon brings the
// pair (d, current usefulness). The acceptor is the two-process P_w / P_m
// machine of the paper, realized on the core.Machine runtime.
package deadline

import (
	"fmt"

	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Kind classifies the deadline of an instance.
type Kind int

const (
	// None: class (i) — no deadline is imposed.
	None Kind = iota
	// Firm: class (ii) — results after t_d are useless (usefulness 0).
	Firm
	// Soft: class (iii) — usefulness decays according to U after t_d.
	Soft
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Firm:
		return "firm"
	default:
		return "soft"
	}
}

// Usefulness is the decay function u : [t_d, ∞) → ℕ ∩ [0, Max] of a soft
// deadline; it must be non-increasing.
type Usefulness func(t timeseq.Time) uint64

// Hyperbolic returns the paper's example usefulness: max before the
// deadline, then max/(t−t_d) after it ("u(t) = max × 1/(t−20)").
func Hyperbolic(max uint64, td timeseq.Time) Usefulness {
	return func(t timeseq.Time) uint64 {
		if t <= td {
			return max
		}
		return max / uint64(t-td)
	}
}

// Linear returns a linear decay: max at the deadline, reaching 0 after span
// chronons.
func Linear(max uint64, td timeseq.Time, span timeseq.Time) Usefulness {
	return func(t timeseq.Time) uint64 {
		if t <= td {
			return max
		}
		el := uint64(t - td)
		if el >= uint64(span) {
			return 0
		}
		return max - max*el/uint64(span)
	}
}

// Special input symbols of the §4.1 word construction.
const (
	// W arrives every chronon while the deadline has not passed.
	W = word.Symbol("w")
	// D arrives (paired with the current usefulness) once the deadline has
	// passed.
	D = word.Symbol("d")
	// Sep separates the proposed output from the instance input at time 0.
	// (The paper omits delimiters for clarity and notes they are easily
	// added; we add them so the acceptor can parse the word.)
	Sep = word.Symbol("|")
)

// Instance is one instance of Π together with its deadline class.
type Instance struct {
	// Input is the instance input ι.
	Input []word.Symbol
	// Proposed is the output o carried by the word; the word is in L(Π)
	// iff an algorithm for Π can produce exactly this output under the
	// instance's timing constraints.
	Proposed []word.Symbol
	// Kind selects the construction case.
	Kind Kind
	// Deadline is t_d (cases Firm and Soft).
	Deadline timeseq.Time
	// MinUseful is the minimum acceptable usefulness announced at the
	// start of the word (σ_1 ∈ ℕ ∩ (0, max], cases Firm and Soft).
	MinUseful uint64
	// U is the usefulness decay (case Soft). Firm instances implicitly use
	// the constant 0 after the deadline, per equation (2).
	U Usefulness
}

// Word builds the timed ω-word of §4.1 for the instance.
//
// Deviation from the paper's letter: the index arithmetic below equation (2)
// contains a typo (τ_i = i_0 + ⌊(i−i_0)/2⌋ would make time jump from t_d to
// i_0); we implement the evident intent τ_i = t_d + ⌊(i−i_0)/2⌋, i.e. after
// the deadline each chronon delivers the pair (d, usefulness).
func (inst Instance) Word() word.Word {
	m := uint64(len(inst.Proposed))
	n := uint64(len(inst.Input))
	header := make(word.Finite, 0, m+n+3)
	add := func(s word.Symbol) {
		header = append(header, word.TimedSym{Sym: s, At: 0})
	}
	if inst.Kind != None {
		add(encoding.Num(inst.MinUseful))
	}
	for _, s := range inst.Proposed {
		add(s)
	}
	add(Sep)
	for _, s := range inst.Input {
		add(s)
	}
	add(Sep)
	h := uint64(len(header))

	useAfter := func(t timeseq.Time) uint64 {
		if inst.Kind == Soft && inst.U != nil {
			return inst.U(t)
		}
		return 0 // firm: equation (2), usefulness 0 forever
	}

	return word.Gen{F: func(i uint64) word.TimedSym {
		if i < h {
			return header[i]
		}
		k := i - h // 0-based index past the header
		switch inst.Kind {
		case None:
			return word.TimedSym{Sym: W, At: timeseq.Time(k + 1)}
		default:
			t := timeseq.Time(k + 1)
			if t < inst.Deadline {
				return word.TimedSym{Sym: W, At: t}
			}
			// Past (or at) the deadline: pairs (d, usefulness), one pair
			// per chronon starting at t_d.
			j := k - (uint64(inst.Deadline) - 1) // 0-based index into the pair region
			at := inst.Deadline + timeseq.Time(j/2)
			if j%2 == 0 {
				return word.TimedSym{Sym: D, At: at}
			}
			return word.TimedSym{Sym: encoding.Num(useAfter(at)), At: at}
		}
	}}
}

// Solver abstracts an algorithm for Π with an explicit cost model, playing
// the role of P_w. Implementations may inspect the proposed solution to
// model the paper's nondeterministic choice among multiple valid solutions
// ("P_w nondeterministically chooses that solution that matches the
// proposed solution, if such a solution exists").
type Solver interface {
	// Start receives the instance input and the proposed solution at time 0.
	Start(input, proposed []word.Symbol)
	// Tick performs one chronon of work. Once the computation is complete
	// it returns (solution, true); further calls keep returning the same.
	Tick() (solution []word.Symbol, done bool)
}

// FuncSolver is a Solver computing Solve(input) after Cost chronons.
type FuncSolver struct {
	// Cost maps input length to the number of chronons P_w needs.
	Cost func(n int) uint64
	// Solve computes the solution (called once, on completion).
	Solve func(input []word.Symbol) []word.Symbol

	input    []word.Symbol
	remain   uint64
	solution []word.Symbol
	done     bool
}

// Start implements Solver.
func (s *FuncSolver) Start(input, proposed []word.Symbol) {
	s.input = input
	s.remain = s.Cost(len(input))
	s.done = false
	s.solution = nil
}

// Tick implements Solver.
func (s *FuncSolver) Tick() ([]word.Symbol, bool) {
	if s.done {
		return s.solution, true
	}
	if s.remain > 0 {
		s.remain--
	}
	if s.remain == 0 {
		s.solution = s.Solve(s.input)
		s.done = true
	}
	return s.solution, s.done
}

// Acceptor is the two-process acceptor of §4.1 as a core.Program: P_w is the
// Solver, P_m the monitor comparing the computed solution against the
// proposed one under the word's timing discipline.
type Acceptor struct {
	core.Control
	Solver Solver

	parsed    bool
	minUseful uint64
	hasMin    bool
	proposed  []word.Symbol
	curUseful uint64 // latest usefulness received (valid when pastDeadline)
	pastDead  bool
	finishAt  timeseq.Time
	finished  bool
	solution  []word.Symbol
}

// NewAcceptor wraps a solver for Π.
func NewAcceptor(s Solver) *Acceptor { return &Acceptor{Solver: s} }

// Tick implements core.Program.
func (a *Acceptor) Tick(t *core.Tick) {
	defer a.Drive(t)
	// Time 0: parse header (minUseful? proposed | input |) and start P_w.
	if !a.parsed {
		if t.Now != 0 || len(t.New) == 0 {
			// Malformed instance word: nothing arrived at time 0.
			a.RejectForever()
			return
		}
		syms := t.New.Syms()
		idx := 0
		if v, ok := encoding.AsNum(syms[0]); ok {
			a.minUseful = v
			a.hasMin = true
			idx = 1
		}
		var input []word.Symbol
		section := 0
		for _, s := range syms[idx:] {
			if s == Sep {
				section++
				continue
			}
			switch section {
			case 0:
				a.proposed = append(a.proposed, s)
			case 1:
				input = append(input, s)
			}
		}
		if section != 2 {
			a.RejectForever()
			return
		}
		a.Solver.Start(input, a.proposed)
		a.parsed = true
	}
	// Monitor the deadline markers. Markers appear from time 1 on; the
	// time-0 arrivals are the header, whose payload alphabet may reuse the
	// letters w and d.
	markers := t.New
	if t.Now == 0 {
		markers = nil
	}
	for _, e := range markers {
		switch {
		case e.Sym == D:
			a.pastDead = true
		case e.Sym == W:
			// still before the deadline
		default:
			if v, ok := encoding.AsNum(e.Sym); ok && a.pastDead {
				a.curUseful = v
			}
		}
	}
	if a.Decided() {
		return
	}
	// One chronon of P_w work.
	sol, done := a.Solver.Tick()
	if done && !a.finished {
		a.finished = true
		a.finishAt = t.Now
		a.solution = sol
		a.decide()
	}
}

// decide implements P_m's comparison at the moment P_w terminates.
func (a *Acceptor) decide() {
	match := symsEqual(a.solution, a.proposed)
	if !a.pastDead {
		// Current symbol is w (or we are still at time 0): within the
		// deadline — accept iff the solutions match.
		if match {
			a.AcceptForever()
		} else {
			a.RejectForever()
		}
		return
	}
	// Deadline passed: usefulness must still be acceptable.
	if !a.hasMin || a.curUseful < a.minUseful || a.minUseful == 0 {
		a.RejectForever()
		return
	}
	if match {
		a.AcceptForever()
	} else {
		a.RejectForever()
	}
}

// FinishedAt returns when P_w completed (valid once finished).
func (a *Acceptor) FinishedAt() (timeseq.Time, bool) { return a.finishAt, a.finished }

func symsEqual(a, b []word.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Accepts runs the full pipeline: build the instance word, run the acceptor
// on a fresh machine, and classify. horizon bounds the observation.
func Accepts(inst Instance, solver Solver, horizon uint64) core.Result {
	m := core.NewMachine(NewAcceptor(solver), inst.Word())
	return core.RunForVerdict(m, horizon)
}

// Validate performs basic sanity checks on an instance.
func (inst Instance) Validate() error {
	if inst.Kind != None {
		if inst.Deadline == 0 {
			return fmt.Errorf("deadline: %s instance needs a positive deadline", inst.Kind)
		}
		if inst.MinUseful == 0 {
			return fmt.Errorf("deadline: %s instance needs MinUseful ≥ 1 (σ_1 ∈ (0, max])", inst.Kind)
		}
	}
	if inst.Kind == Soft && inst.U == nil {
		return fmt.Errorf("deadline: soft instance needs a usefulness function")
	}
	return nil
}

// FuncSolverWithProposed is a Solver whose Choose hook sees both the input
// and the proposed solution — the shape needed for problems with several
// valid solutions, where the paper's P_w "nondeterministically chooses that
// solution that matches the proposed solution, if such a solution exists".
type FuncSolverWithProposed struct {
	// Cost maps input length to chronons of work.
	Cost func(n int) uint64
	// Choose computes the solution, preferring the proposed one when it is
	// valid for the instance.
	Choose func(input, proposed []word.Symbol) []word.Symbol

	input    []word.Symbol
	proposed []word.Symbol
	remain   uint64
	solution []word.Symbol
	done     bool
}

// Start implements Solver.
func (s *FuncSolverWithProposed) Start(input, proposed []word.Symbol) {
	s.input = input
	s.proposed = proposed
	s.remain = s.Cost(len(input))
	s.done = false
	s.solution = nil
}

// Tick implements Solver.
func (s *FuncSolverWithProposed) Tick() ([]word.Symbol, bool) {
	if s.done {
		return s.solution, true
	}
	if s.remain > 0 {
		s.remain--
	}
	if s.remain == 0 {
		s.solution = s.Choose(s.input, s.proposed)
		s.done = true
	}
	return s.solution, s.done
}
