package deadline_test

import (
	"fmt"

	"rtc/internal/automata"
	"rtc/internal/deadline"
	"rtc/internal/word"
)

// A firm deadline at t_d = 4 against a computation that needs 6 chronons:
// the two-process acceptor of §4.1 provably rejects; at t_d = 8 it provably
// accepts.
func ExampleAccepts() {
	solver := func() deadline.Solver {
		return &deadline.FuncSolver{
			Cost:  func(n int) uint64 { return 2 * uint64(n) },
			Solve: func(in []word.Symbol) []word.Symbol { return in },
		}
	}
	inst := deadline.Instance{
		Input:     automata.Syms("xyz"),
		Proposed:  automata.Syms("xyz"),
		Kind:      deadline.Firm,
		Deadline:  4,
		MinUseful: 1,
	}
	fmt.Println(deadline.Accepts(inst, solver(), 100).Verdict)
	inst.Deadline = 8
	fmt.Println(deadline.Accepts(inst, solver(), 100).Verdict)
	// Output:
	// reject (proven)
	// accept (proven)
}
