package timeseq

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAcceptsMonotone(t *testing.T) {
	cases := [][]Time{
		{},
		{0},
		{0, 0, 0},
		{1, 2, 3},
		{5, 5, 7, 7, 9},
	}
	for _, c := range cases {
		if _, err := New(c...); err != nil {
			t.Errorf("New(%v) unexpectedly failed: %v", c, err)
		}
	}
}

func TestNewRejectsNonMonotone(t *testing.T) {
	cases := [][]Time{
		{1, 0},
		{0, 5, 4},
		{3, 3, 2, 9},
	}
	for _, c := range cases {
		if _, err := New(c...); !errors.Is(err, ErrNotMonotone) {
			t.Errorf("New(%v) = %v, want ErrNotMonotone", c, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(2,1) did not panic")
		}
	}()
	MustNew(2, 1)
}

func TestIsMonotone(t *testing.T) {
	if !IsMonotone([]Time{0, 1, 1, 4}) {
		t.Error("monotone sequence rejected")
	}
	if IsMonotone([]Time{0, 1, 0}) {
		t.Error("non-monotone sequence accepted")
	}
}

func TestProgressBeyond(t *testing.T) {
	s := MustNew(0, 2, 4)
	if !s.ProgressBeyond(3) {
		t.Error("ProgressBeyond(3) = false on sequence ending at 4")
	}
	if s.ProgressBeyond(4) {
		t.Error("ProgressBeyond(4) = true on sequence ending at 4")
	}
	var empty Seq
	if empty.ProgressBeyond(0) {
		t.Error("empty sequence claims progress")
	}
}

func TestIsSubsequenceOf(t *testing.T) {
	full := MustNew(0, 1, 1, 2, 5, 5, 9)
	for _, sub := range []Seq{
		{},
		{0},
		{1, 1, 5},
		{0, 2, 9},
		full,
	} {
		if !sub.IsSubsequenceOf(full) {
			t.Errorf("%v should be a subsequence of %v", sub, full)
		}
	}
	for _, sub := range []Seq{
		{1, 1, 1},
		{9, 9},
		{3},
	} {
		if sub.IsSubsequenceOf(full) {
			t.Errorf("%v should NOT be a subsequence of %v", sub, full)
		}
	}
}

func TestMergeBasic(t *testing.T) {
	a := MustNew(0, 2, 4)
	b := MustNew(1, 2, 3)
	got := Merge(a, b)
	want := Seq{0, 1, 2, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Merge length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", got, want)
		}
	}
}

// Property: Merge output is monotone, has the combined length, and both
// inputs are subsequences of it (items 1 of Definition 3.5 at the
// time-sequence level).
func TestMergeProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := randomMonotone(xs)
		b := randomMonotone(ys)
		m := Merge(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		if !IsMonotone([]Time(m)) {
			return false
		}
		return a.IsSubsequenceOf(m) && b.IsSubsequenceOf(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomMonotone converts arbitrary fuzz input into a valid time sequence by
// sorting.
func randomMonotone(xs []uint16) Seq {
	s := make(Seq, len(xs))
	for i, x := range xs {
		s[i] = Time(x)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestUniformAndRamp(t *testing.T) {
	u := Uniform(7, 4)
	if len(u) != 4 {
		t.Fatalf("Uniform length = %d", len(u))
	}
	for _, v := range u {
		if v != 7 {
			t.Fatalf("Uniform = %v", u)
		}
	}
	r := Ramp(3, 2, 4)
	want := Seq{3, 5, 7, 9}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ramp = %v, want %v", r, want)
		}
	}
}

func TestCountAtOrBefore(t *testing.T) {
	s := MustNew(0, 1, 1, 3, 7)
	cases := []struct {
		t    Time
		want int
	}{
		{0, 1}, {1, 3}, {2, 3}, {3, 4}, {6, 4}, {7, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := s.CountAtOrBefore(c.t); got != c.want {
			t.Errorf("CountAtOrBefore(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCheckMonotoneGenerator(t *testing.T) {
	inc := GeneratorFunc(func(i uint64) Time { return Time(i) })
	if idx, ok := CheckMonotone(inc, 1000); !ok {
		t.Errorf("increasing generator flagged at %d", idx)
	}
	bad := GeneratorFunc(func(i uint64) Time {
		if i == 5 {
			return 0
		}
		return Time(i)
	})
	if idx, ok := CheckMonotone(bad, 1000); ok || idx != 5 {
		t.Errorf("CheckMonotone(bad) = (%d,%v), want (5,false)", idx, ok)
	}
}

func TestCheckProgress(t *testing.T) {
	inc := GeneratorFunc(func(i uint64) Time { return Time(i / 3) })
	idx, ok := CheckProgress(inc, 10, 1<<20)
	if !ok {
		t.Fatal("progress not found for unbounded generator")
	}
	if inc.Tau(idx) <= 10 {
		t.Fatalf("witness Tau(%d)=%d is not > 10", idx, inc.Tau(idx))
	}
	if idx > 0 && inc.Tau(idx-1) > 10 {
		t.Fatalf("witness %d is not the first index beyond 10", idx)
	}

	frozen := GeneratorFunc(func(i uint64) Time { return 4 })
	if _, ok := CheckProgress(frozen, 4, 1<<16); ok {
		t.Error("frozen generator claimed progress beyond its constant")
	}
	if _, ok := CheckProgress(frozen, 3, 1<<16); !ok {
		t.Error("constant-4 generator should progress beyond 3")
	}
}

// Property: for strictly increasing generators, CheckProgress returns the
// minimal witness.
func TestCheckProgressMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		step := Time(rng.Intn(5) + 1)
		g := GeneratorFunc(func(i uint64) Time { return Time(i) * step })
		target := Time(rng.Intn(1000))
		idx, ok := CheckProgress(g, target, 1<<20)
		if !ok {
			t.Fatalf("no progress found for step=%d target=%d", step, target)
		}
		if g.Tau(idx) <= target {
			t.Fatalf("Tau(%d)=%d ≤ %d", idx, g.Tau(idx), target)
		}
		if idx > 0 && g.Tau(idx-1) > target {
			t.Fatalf("witness %d not minimal for step=%d target=%d", idx, step, target)
		}
	}
}

func TestWellBehavedWithin(t *testing.T) {
	inc := GeneratorFunc(func(i uint64) Time { return Time(i) })
	if !WellBehavedWithin(inc, 1000) {
		t.Error("identity generator should look well behaved")
	}
	frozen := GeneratorFunc(func(i uint64) Time { return 9 })
	if WellBehavedWithin(frozen, 1000) {
		t.Error("frozen generator should not look well behaved")
	}
	bad := GeneratorFunc(func(i uint64) Time { return Time(1000 - i) })
	if WellBehavedWithin(bad, 100) {
		t.Error("decreasing generator should not look well behaved")
	}
}
