// Package timeseq implements time sequences as defined in Definition 3.1 of
// Bruda & Akl, "Real-Time Computation: A Formal Definition and its
// Applications" (IPPS 2001).
//
// A time sequence is a (finite or infinite) monotonically non-decreasing
// sequence of natural timestamps. A sequence is well behaved when it also
// satisfies the progress condition: for every t there is some finite index i
// with τ_i > t. Per the paper, time is discrete: each natural number is one
// nondecomposable unit of time (a "chronon").
//
// Finite sequences are represented explicitly by Seq. Infinite sequences
// appear at the word level (package word), where they are backed by lassos or
// generators; this package supplies the validation primitives those
// representations share.
package timeseq

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a discrete timestamp measured in chronons. Definition 3.1 uses
// natural numbers; arithmetic on Time never goes negative in valid sequences
// because monotonicity is enforced at construction time.
type Time uint64

// Infinity is a sentinel timestamp strictly larger than every timestamp a
// valid computation can produce. It is used for "never" (e.g. a lost message
// whose receive time is ω in the routing model of §5.2.4).
const Infinity Time = ^Time(0)

// ErrNotMonotone reports a violation of the monotonicity constraint of
// Definition 3.1 (τ_i ≤ τ_{i+1}).
var ErrNotMonotone = errors.New("timeseq: sequence is not monotonically non-decreasing")

// Seq is a finite time sequence. The zero value is the empty sequence, which
// is vacuously a time sequence (Definition 3.1 admits finite subsequences).
type Seq []Time

// New validates ts against the monotonicity constraint and returns it as a
// Seq. The slice is not copied; callers that keep mutating the input should
// pass a copy.
func New(ts ...Time) (Seq, error) {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return nil, fmt.Errorf("%w: τ_%d=%d < τ_%d=%d", ErrNotMonotone, i+1, ts[i], i, ts[i-1])
		}
	}
	return Seq(ts), nil
}

// MustNew is New for statically known sequences; it panics on invalid input.
func MustNew(ts ...Time) Seq {
	s, err := New(ts...)
	if err != nil {
		panic(err)
	}
	return s
}

// IsMonotone reports whether s satisfies the monotonicity constraint.
// Constructed Seq values always do; this exists for sequences assembled by
// hand or decoded from external input.
func IsMonotone(ts []Time) bool {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return false
		}
	}
	return true
}

// Len returns the number of timestamps in s.
func (s Seq) Len() int { return len(s) }

// At returns the i-th timestamp (0-indexed).
func (s Seq) At(i int) Time { return s[i] }

// Last returns the final timestamp. It panics on an empty sequence.
func (s Seq) Last() Time { return s[len(s)-1] }

// ProgressBeyond reports whether some element of s exceeds t. For finite
// sequences this is the strongest progress statement available: a finite
// sequence can never be well behaved (Definition 3.1 notes that a
// well-behaved time sequence is always infinite), but a finite prefix can
// witness progress up to its last element.
func (s Seq) ProgressBeyond(t Time) bool {
	return len(s) > 0 && s[len(s)-1] > t
}

// IsSubsequenceOf reports whether s is a subsequence of t in the sense of §2:
// every element of s occurs in t, in the same relative order. Because time
// sequences are monotone, this reduces to a greedy match.
func (s Seq) IsSubsequenceOf(t Seq) bool {
	j := 0
	for _, v := range s {
		for j < len(t) && t[j] != v {
			j++
		}
		if j == len(t) {
			return false
		}
		j++
	}
	return true
}

// Merge interleaves two monotone sequences into one monotone sequence
// containing every element of both. On equal timestamps, elements of a
// precede elements of b, matching item 3 of Definition 3.5 (the first operand
// wins ties in a timed-word concatenation).
func Merge(a, b Seq) Seq {
	out := make(Seq, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Uniform returns the constant sequence t, t, ..., t of length n. With t = 0
// it is the sequence 00...0 that embeds a classical word as a (non
// well-behaved) timed word, per the closing remark of §3.2.
func Uniform(t Time, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = t
	}
	return s
}

// Ramp returns the sequence start, start+step, ..., of length n.
func Ramp(start, step Time, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = start + Time(i)*step
	}
	return s
}

// CountAtOrBefore returns the number of elements of s that are ≤ t,
// exploiting monotonicity via binary search.
func (s Seq) CountAtOrBefore(t Time) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > t })
}

// Generator describes an infinite time sequence by random access: Tau(i) is
// the i-th timestamp (0-indexed). Implementations must be monotone.
type Generator interface {
	Tau(i uint64) Time
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(i uint64) Time

// Tau implements Generator.
func (f GeneratorFunc) Tau(i uint64) Time { return f(i) }

// CheckMonotone verifies the monotonicity constraint on the first n elements
// of g. It returns the first violating index (i such that Tau(i) < Tau(i-1))
// and false, or (0, true) if no violation is found within the horizon.
func CheckMonotone(g Generator, n uint64) (uint64, bool) {
	if n == 0 {
		return 0, true
	}
	prev := g.Tau(0)
	for i := uint64(1); i < n; i++ {
		cur := g.Tau(i)
		if cur < prev {
			return i, false
		}
		prev = cur
	}
	return 0, true
}

// CheckProgress verifies the progress condition of Definition 3.1 up to the
// bound t: it searches for a finite index i ≤ maxIdx with Tau(i) > t. It
// returns the witnessing index and true, or (0, false) when no witness exists
// within the search budget — which for a lazily described sequence is the
// strongest refutation a finite observer can produce.
func CheckProgress(g Generator, t Time, maxIdx uint64) (uint64, bool) {
	// Exponential probing followed by binary search keeps this O(log maxIdx)
	// for monotone generators while remaining correct (if slow) for buggy
	// non-monotone ones, since we only ever test the > t predicate.
	for i := uint64(1); ; i *= 2 {
		if i > maxIdx {
			break
		}
		if g.Tau(i-1) > t {
			// Refine to the first witness in (i/2-1, i-1].
			lo, hi := i/2, i-1 // Tau(lo-1) ≤ t (or lo==0), Tau(hi) > t
			for lo < hi {
				mid := lo + (hi-lo)/2
				if g.Tau(mid) > t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return hi, true
		}
		if i > maxIdx/2 {
			break
		}
	}
	if maxIdx > 0 && g.Tau(maxIdx-1) > t {
		return maxIdx - 1, true
	}
	return 0, false
}

// WellBehavedWithin reports whether g looks well behaved when observed up to
// horizon: monotone on [0, horizon) and making progress beyond every t that
// is itself witnessed within the horizon. A true result is evidence, not
// proof (well-behavedness is a property of the whole infinite sequence); a
// false result is a genuine refutation of monotonicity or of progress within
// the horizon.
func WellBehavedWithin(g Generator, horizon uint64) bool {
	if _, ok := CheckMonotone(g, horizon); !ok {
		return false
	}
	if horizon == 0 {
		return true
	}
	// Progress within the horizon: the sequence must not be eventually
	// constant over the observed window. We test that the last observed
	// timestamp exceeds the first by at least one chronon per full window,
	// i.e. the sequence is not frozen.
	first, last := g.Tau(0), g.Tau(horizon-1)
	return last > first || horizon < 2
}
