package rtdb

import (
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/vtime"
	"rtc/internal/word"
)

// ramp is the well-behaved word with τ_i = i (one symbol per chronon).
func ramp() word.Word {
	return word.Gen{F: func(i uint64) word.TimedSym {
		return word.TimedSym{Sym: "a", At: timeseq.Time(i)}
	}}
}

func TestLemma51BoundKZero(t *testing.T) {
	// k = 0: every timestamp satisfies τ ≥ 0, so the witness is index 0.
	idx, ok := Lemma51Bound(ramp(), 0, 10)
	if !ok || idx != 0 {
		t.Fatalf("k=0: got (%d,%v), want (0,true)", idx, ok)
	}
	// … but only if the word has an element at all.
	if _, ok := Lemma51Bound(word.Finite{}, 0, 10); ok {
		t.Fatal("k=0 on the empty word: want no witness")
	}
}

func TestLemma51BoundEmptyWord(t *testing.T) {
	// A finite word shorter than the budget must not be scanned past its
	// end (the empty word is the extreme case).
	if _, ok := Lemma51Bound(word.Finite{}, 7, 100); ok {
		t.Fatal("empty word: want no witness")
	}
	short := word.MustFinite(
		word.TimedSym{Sym: "a", At: 0},
		word.TimedSym{Sym: "b", At: 3},
	)
	if _, ok := Lemma51Bound(short, 10, 100); ok {
		t.Fatal("finite word ending before k: want no witness")
	}
	if idx, ok := Lemma51Bound(short, 2, 100); !ok || idx != 1 {
		t.Fatalf("finite word reaching k: got (%d,%v), want (1,true)", idx, ok)
	}
}

func TestLemma51BoundBudgetExactlyExhausted(t *testing.T) {
	// On τ_i = i the first index with τ ≥ 5 is i = 5. A budget of exactly 5
	// scans indices 0…4 and must give up; a budget of 6 finds the witness.
	if _, ok := Lemma51Bound(ramp(), 5, 5); ok {
		t.Fatal("budget 5: scan must stop one short of the witness")
	}
	idx, ok := Lemma51Bound(ramp(), 5, 6)
	if !ok || idx != 5 {
		t.Fatalf("budget 6: got (%d,%v), want (5,true)", idx, ok)
	}
	if _, ok := Lemma51Bound(ramp(), 5, 0); ok {
		t.Fatal("budget 0: nothing scanned, no witness")
	}
}

func TestInjectSampleRaisesRules(t *testing.T) {
	// A served-mode image (nil Read) never schedules sampling; injected
	// samples drive the same event path as scheduled ones.
	db := New(vtime.New())
	db.AddImage(&ImageObject{Name: "temp", Period: 5})
	var seen []Value
	db.AddRule(Rule{
		Name: "watch", On: "sample:temp", Mode: Immediate,
		Then: func(db *DB, e Event) { seen = append(seen, e.Attr["value"]) },
	})
	if err := db.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := db.InjectSample("nope", "1"); err == nil {
		t.Fatal("unknown image: want error")
	}
	if len(seen) != 1 || seen[0] != "21" {
		t.Fatalf("rule saw %v, want [21]", seen)
	}
	img, _ := db.Image("temp")
	if s, ok := img.Latest(); !ok || s.Value != "21" || s.At != 0 {
		t.Fatalf("history = %v, %v", s, ok)
	}
	if db.Scheduler().Pending() != 0 {
		t.Fatalf("served-mode image scheduled %d events, want 0", db.Scheduler().Pending())
	}
}
