package rtdb

import (
	"rtc/internal/core"
	"rtc/internal/deadline"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// §5.1.2 lists three query patterns: periodic, sporadic, and aperiodic.
// PeriodicSpec and QuerySpec cover the first and last; SporadicSpec models
// the middle one — recurring invocations with a bounded but irregular
// inter-arrival time (at least MinGap, at most MaxGap chronons apart),
// drawn deterministically from a seed so runs are reproducible.

// SporadicSpec describes a sporadic query.
type SporadicSpec struct {
	Query string
	First timeseq.Time
	// MinGap/MaxGap bound the inter-arrival time; MinGap ≥ 1.
	MinGap, MaxGap timeseq.Time
	Seed           uint64
	// Candidates yields the tuple tested at the i-th invocation (0-based),
	// given its issue time.
	Candidates func(i uint64, issue timeseq.Time) Value
	Kind       deadline.Kind
	Deadline   timeseq.Time
	MinUseful  uint64
	U          deadline.Usefulness
}

// splitmix64 is a small deterministic generator for the gap sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IssueTime returns the issue time of the i-th invocation.
func (ss SporadicSpec) IssueTime(i uint64) timeseq.Time {
	minGap := ss.MinGap
	if minGap == 0 {
		minGap = 1
	}
	span := uint64(1)
	if ss.MaxGap > minGap {
		span = uint64(ss.MaxGap-minGap) + 1
	}
	at := ss.First
	for k := uint64(0); k < i; k++ {
		gap := minGap + timeseq.Time(splitmix64(ss.Seed^(k+1))%span)
		at += gap
	}
	return at
}

// Invocation returns the aperiodic spec of the i-th invocation.
func (ss SporadicSpec) Invocation(i uint64) QuerySpec {
	issue := ss.IssueTime(i)
	return QuerySpec{
		Query:     ss.Query,
		Issue:     issue,
		Candidate: ss.Candidates(i, issue),
		Kind:      ss.Kind,
		Deadline:  ss.Deadline,
		MinUseful: ss.MinUseful,
		U:         ss.U,
	}
}

// Word builds the sporadic-query ω-word as the infinite concatenation of
// the invocation words — well behaved by the Lemma 5.1 argument, since the
// issue times are strictly increasing (MinGap ≥ 1) and unbounded.
func (ss SporadicSpec) Word() word.Word {
	return word.MergeMany(func(k uint64) word.Word {
		return ss.Invocation(k).AqWord()
	})
}

// MemberN is the ground truth over the first n invocations, mirroring
// Spec.MemberPq.
func (sp Spec) MemberN(cat Catalog, ss SporadicSpec, n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !sp.MemberAq(cat, ss.Invocation(i)) {
			return false
		}
	}
	return true
}

// RunSporadic runs the recognition pipeline for a sporadic query; the
// acceptor is the same periodic-mode machine (one f per served invocation,
// failure kills all further f's).
func RunSporadic(sp Spec, ss SporadicSpec, cat Catalog, reg DeriveRegistry, evalCost, horizon uint64) (core.Result, *RTAcceptor) {
	acc := NewRTAcceptor(cat, reg, Periodic, evalCost)
	prog := &PeriodicProgress{RTAcceptor: acc}
	w := word.Concat(sp.DBWord(), ss.Word())
	m := core.NewMachine(prog, w)
	res := core.RunForVerdict(m, horizon)
	return res, acc
}
