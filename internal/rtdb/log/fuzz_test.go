package log

import (
	"bytes"
	"reflect"
	"testing"

	"rtc/internal/timeseq"
)

// FuzzFieldsRoundTrip: any field tuple survives EncodeFields/DecodeFields
// (the byte-level counterpart of encoding.FuzzRecordRoundTrip).
func FuzzFieldsRoundTrip(f *testing.F) {
	f.Add("S", "12", "temp")
	f.Add("", "", "")
	f.Add("x$y", "#1@%", "a\x00b")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		got, ok := DecodeFields(EncodeFields(a, b, c))
		if !ok || len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
			t.Fatalf("round trip (%q,%q,%q) → %v (%v)", a, b, c, got, ok)
		}
	})
}

// FuzzEventRoundTrip: any event survives the frame + record codec, and the
// framed bytes read back as exactly one record.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint8(KindSample), uint64(7), "temp", "21", "x")
	f.Add(uint8(KindQuery), uint64(0), "", "", "")
	f.Add(uint8(KindFiring), uint64(1<<40), "a$@#%rule", "", "s1")
	f.Fuzz(func(t *testing.T, kind uint8, at uint64, name, value, arg string) {
		e := Event{Kind: Kind(kind % 6), At: timeseq.Time(at), Name: name, Value: value}
		if arg != "" {
			e.Args = []string{arg}
		}
		frame := EncodeEvent(e)
		payload, n, err := ReadFrame(bytes.NewReader(frame))
		if err != nil || n != len(frame) {
			t.Fatalf("ReadFrame: n=%d err=%v", n, err)
		}
		got, ok := DecodeEvent(payload)
		if !ok || !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip %+v → %+v (%v)", e, got, ok)
		}
	})
}

// FuzzDecodeFrame: arbitrary bytes never panic the frame reader or the
// decoder — they either parse or are reported torn/invalid.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEvent(Sample(3, "temp", "20")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, _, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		DecodeEvent(payload)
	})
}
