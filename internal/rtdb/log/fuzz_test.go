package log

import (
	"bytes"
	"reflect"
	"testing"

	"rtc/internal/faultfs"
	"rtc/internal/timeseq"
)

// FuzzFieldsRoundTrip: any field tuple survives EncodeFields/DecodeFields
// (the byte-level counterpart of encoding.FuzzRecordRoundTrip).
func FuzzFieldsRoundTrip(f *testing.F) {
	f.Add("S", "12", "temp")
	f.Add("", "", "")
	f.Add("x$y", "#1@%", "a\x00b")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		got, ok := DecodeFields(EncodeFields(a, b, c))
		if !ok || len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
			t.Fatalf("round trip (%q,%q,%q) → %v (%v)", a, b, c, got, ok)
		}
	})
}

// FuzzEventRoundTrip: any event survives the frame + record codec, and the
// framed bytes read back as exactly one record.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint8(KindSample), uint64(7), "temp", "21", "x")
	f.Add(uint8(KindQuery), uint64(0), "", "", "")
	f.Add(uint8(KindFiring), uint64(1<<40), "a$@#%rule", "", "s1")
	f.Fuzz(func(t *testing.T, kind uint8, at uint64, name, value, arg string) {
		e := Event{Kind: Kind(kind % 6), At: timeseq.Time(at), Name: name, Value: value}
		if arg != "" {
			e.Args = []string{arg}
		}
		frame := EncodeEvent(e)
		payload, n, err := ReadFrame(bytes.NewReader(frame))
		if err != nil || n != len(frame) {
			t.Fatalf("ReadFrame: n=%d err=%v", n, err)
		}
		got, ok := DecodeEvent(payload)
		if !ok || !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip %+v → %+v (%v)", e, got, ok)
		}
	})
}

// FuzzSegmentRecovery fuzzes whole multi-frame segments, not single
// frames: an arbitrary byte image of the final WAL segment never panics
// recovery. Open either reports an error (corruption, undecodable or
// inapplicable records) or succeeds — and on success recovery must be
// idempotent: reopening the directory yields a deep-equal state, because
// the first Open already normalized any torn tail. Seeds cover clean
// multi-frame segments, torn tails, and bit flips; the torture harness
// exports the crash images of any failing fault point into this corpus
// (cmd/rttorture -corpus).
func FuzzSegmentRecovery(f *testing.F) {
	segment := func(events []Event) []byte {
		var b []byte
		for _, e := range events {
			b = append(b, EncodeEvent(e)...)
		}
		return b
	}
	full := segment(workload(12))
	f.Add([]byte{})
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail
	flip := append([]byte(nil), full...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip) // mid-segment damage with intact frames after it
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		mem := faultfs.NewMem(1)
		if err := mem.MkdirAll("wal"); err != nil {
			t.Fatal(err)
		}
		w, err := mem.Create("wal/" + segName(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		w.Close()

		l, err := Open(Options{Dir: "wal", FS: mem})
		if err != nil {
			return // damage surfaced, never panicked
		}
		st := l.State()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Options{Dir: "wal", FS: mem})
		if err != nil {
			t.Fatalf("recovery not idempotent: second Open failed: %v", err)
		}
		defer l2.Close()
		if d := st.Diff(l2.State()); d != "" {
			t.Fatalf("recovery not idempotent: %s", d)
		}
	})
}

// FuzzDecodeFrame: arbitrary bytes never panic the frame reader or the
// decoder — they either parse or are reported torn/invalid.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEvent(Sample(3, "temp", "20")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, _, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		DecodeEvent(payload)
	})
}
