package log

// Group commit: leader-based fsync batching.
//
// With Options.Sync set and Options.GroupWindow > 0, an append writes and
// applies its frame immediately (under the log mutex, preserving the
// validate → write → apply order) but defers the fsync: the append joins
// the open commit batch and receives a Ticket. The first append to open a
// batch is its leader; the leader waits out the commit window (or an early
// close: batch full, a firm append, or CloseWindow), then issues ONE fsync
// and releases every ticket written so far. Because a segment fsync covers
// every frame written before it, any successful fsync — a leader's commit,
// an explicit Sync, a segment rotation, a snapshot's segment-first fsync —
// releases ALL pending batches, in sequence order.
//
// Failure semantics are whole-batch: every path that poisons the log
// (fsync failure, unhealable torn append, failed rotation) releases every
// pending ticket with the poison error. A ticket therefore always
// resolves; it resolves nil only after the fsync that covers its frame
// succeeded.
//
// Tail publication moves with durability: in grouped mode an event is
// fanned out to live replication tails at release time, after its fsync,
// so followers receive whole commit batches and their fsync cadence
// matches the primary's.

import (
	"errors"
	"fmt"
	"time"
)

// errClosed is returned by appends on a closed log.
var errClosed = errors.New("log: closed")

// batch is one commit window's worth of appended-but-not-yet-fsynced
// events. done is closed at release, after err is set; early is closed to
// seal the batch (no more joiners) and wake the leader before the window
// elapses.
type batch struct {
	events   []SeqEvent // for post-fsync tail publication, in seq order
	tickets  uint64
	sealed   bool
	released bool
	early    chan struct{}
	done     chan struct{}
	err      error
}

// Ticket is one append's claim on a group commit. It resolves when the
// fsync covering the append completes (nil) or the log poisons (the poison
// error). A ticket from an ungrouped append (per-append fsync, or Sync
// off) is born resolved.
type Ticket struct {
	b   *batch
	seq uint64
	err error
}

// Seq returns the appended event's WAL sequence number.
func (t *Ticket) Seq() uint64 { return t.seq }

// Wait blocks until the ticket resolves and returns its commit outcome.
func (t *Ticket) Wait() error {
	if t.b == nil {
		return t.err
	}
	<-t.b.done
	return t.b.err
}

// Resolved reports whether the ticket's batch has already been released —
// Wait would return without blocking.
func (t *Ticket) Resolved() bool {
	if t.b == nil {
		return true
	}
	select {
	case <-t.b.done:
		return true
	default:
		return false
	}
}

// grouped reports whether appends batch their fsyncs.
func (l *Log) grouped() bool { return l.opts.Sync && l.opts.GroupWindow > 0 }

// AppendTicket appends one event and returns its commit ticket without
// waiting for durability — the asynchronous form of Append for callers
// (the server's apply loop) that must never block on the commit window.
// firm seals the open batch so the fsync happens as soon as the leader
// wakes, not at the end of the window — the §4.1 escape hatch that keeps
// firm-deadline acks off the window's tail latency. In ungrouped modes the
// returned ticket is born resolved.
func (l *Log) AppendTicket(e Event, firm bool) (*Ticket, error) {
	l.mu.Lock()
	if !l.grouped() {
		defer l.mu.Unlock()
		if err := l.appendUngroupedLocked(e); err != nil {
			return nil, err
		}
		return &Ticket{seq: l.st.Events}, nil
	}
	t, lead, err := l.appendGroupedLocked(e, firm)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if lead {
		go l.lead(t.b)
	}
	return t, nil
}

// appendGroupedLocked writes and applies one event, joins it to the open
// commit batch, and runs the post-append housekeeping (rotation,
// auto-snapshot). lead reports that this append opened the batch and the
// caller must run (or spawn) its leader.
func (l *Log) appendGroupedLocked(e Event, firm bool) (t *Ticket, lead bool, err error) {
	if l.err != nil {
		return nil, false, l.err
	}
	if l.f == nil {
		return nil, false, errClosed
	}
	if err := l.st.check(e); err != nil {
		return nil, false, err
	}
	l.buf = AppendFrame(l.buf[:0], EncodeFields(e.fields()...))
	if _, err := l.f.Write(l.buf); err != nil {
		return nil, false, l.heal(err)
	}
	l.segSize += int64(len(l.buf))
	if err := l.st.Apply(e); err != nil {
		// check passed, so Apply cannot fail; if it somehow does, the
		// frame is already on disk and the state is suspect — poison.
		return nil, false, l.poisonLocked(err)
	}
	l.stats.Appends++
	// Join before housekeeping: if rotation or an auto-snapshot fsyncs the
	// segment below, this event is covered and its ticket releases there.
	t, lead = l.joinBatchLocked(e, l.st.Events, firm)
	if err := l.maintainLocked(); err != nil {
		// The poison released every pending ticket (including this one)
		// with the error; the append itself fails the same way.
		return nil, false, err
	}
	return t, lead, nil
}

// joinBatchLocked adds one applied event to the open commit batch (opening
// a new one if needed) and returns its ticket. firm — or a full batch —
// seals the window.
func (l *Log) joinBatchLocked(e Event, seq uint64, firm bool) (*Ticket, bool) {
	lead := false
	b := l.cur
	if b == nil {
		b = &batch{early: make(chan struct{}), done: make(chan struct{})}
		l.cur = b
		l.pending = append(l.pending, b)
		lead = true
	}
	b.events = append(b.events, SeqEvent{Seq: seq, Event: e})
	b.tickets++
	if firm || b.tickets >= uint64(l.opts.GroupMaxBatch) {
		l.sealLocked(b)
	}
	return &Ticket{b: b, seq: seq}, lead
}

// sealLocked closes a batch's window: no more joiners, and its leader is
// woken to commit immediately.
func (l *Log) sealLocked(b *batch) {
	if b.sealed {
		return
	}
	b.sealed = true
	close(b.early)
	if l.cur == b {
		l.cur = nil
	}
}

// CloseWindow seals the open commit window, if any: the in-flight batch
// stops accepting joiners and its leader fsyncs as soon as it wakes
// instead of waiting out the rest of the window. Callers that need the
// resulting durability wait on their tickets (or call Sync, which commits
// synchronously).
func (l *Log) CloseWindow() {
	l.mu.Lock()
	if l.cur != nil {
		l.sealLocked(l.cur)
	}
	l.mu.Unlock()
}

// lead is the batch leader: it waits for the window to elapse (or the
// batch to seal, or an unrelated fsync to release the batch first), then
// commits. Run by the append that opened the batch — inline when the
// caller blocks on its ticket anyway, as a goroutine from AppendTicket.
func (l *Log) lead(b *batch) {
	timer := time.NewTimer(l.opts.GroupWindow)
	select {
	case <-b.early:
	case <-b.done:
	case <-timer.C:
	}
	timer.Stop()
	l.mu.Lock()
	l.commitLocked(b)
	l.mu.Unlock()
}

// commitLocked fsyncs and releases every pending batch. A batch already
// released by an earlier fsync (rotation, snapshot, Sync, a younger
// sealed batch's leader) makes this a no-op — release order stays FIFO
// and no fsync is ever issued for already-durable frames.
func (l *Log) commitLocked(b *batch) {
	if b.released {
		return
	}
	if l.err != nil {
		l.releaseAllLocked(l.err)
		return
	}
	if l.f == nil {
		l.releaseAllLocked(errClosed)
		return
	}
	if err := l.fsync(); err != nil {
		l.poisonLocked(fmt.Errorf("log: fsync failed, log poisoned: %w", err))
		return
	}
	l.releaseAllLocked(nil)
}

// releaseAllLocked resolves every pending batch, oldest first. err == nil
// means the covering fsync succeeded: the batches' events are published to
// the live tails in sequence order (followers only ever see durable
// events, shipped in whole commit batches) and the group-commit counters
// advance. A non-nil err is the whole-batch failure path: every ticket in
// every pending batch resolves with it.
func (l *Log) releaseAllLocked(err error) {
	for i, b := range l.pending {
		b.released = true
		b.err = err
		if !b.sealed {
			b.sealed = true
			close(b.early)
		}
		if err == nil {
			l.stats.GroupCommits++
			l.stats.GroupedAppends += b.tickets
			if b.tickets > l.stats.GroupBatchMax {
				l.stats.GroupBatchMax = b.tickets
			}
			for _, se := range b.events {
				l.publishSeqLocked(se)
			}
		}
		close(b.done)
		l.pending[i] = nil
	}
	l.pending = l.pending[:0]
	l.cur = nil
}

// poisonLocked marks the log permanently failed and fails every pending
// commit ticket with the same error — fsync-failure poison extends to the
// whole batch.
func (l *Log) poisonLocked(err error) error {
	l.err = err
	l.releaseAllLocked(err)
	return err
}

// DurableSeq returns the sequence number of the newest event known to be
// fsynced. It equals Seq() after any successful Sync; in group-commit mode
// the tail may transiently run ahead of it by at most the open window's
// events.
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableSeq
}

// AppendBatch appends a slice of events paying ONE fsync for the whole
// batch — the follower-side mirror of a primary's group commit, used by
// the replica so its fsync cadence matches the shipped batch cadence
// instead of per-event. Events are validated, written, and applied one by
// one (rotation and auto-snapshots run between them as usual); the single
// fsync at the end releases them — and any batches already pending — in
// sequence order. It returns how many events were written and applied:
// on a mid-batch error the prefix [0,applied) is in the log's state (the
// caller's mirror must absorb exactly that prefix); on an fsync failure
// applied covers the whole slice but the error reports the poison.
func (l *Log) AppendBatch(events []Event) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		return 0, errClosed
	}
	applied := 0
	for _, e := range events {
		if err := l.st.check(e); err != nil {
			return applied, err
		}
		l.buf = AppendFrame(l.buf[:0], EncodeFields(e.fields()...))
		if _, err := l.f.Write(l.buf); err != nil {
			return applied, l.heal(err)
		}
		l.segSize += int64(len(l.buf))
		if err := l.st.Apply(e); err != nil {
			return applied, l.poisonLocked(err)
		}
		l.stats.Appends++
		if l.opts.Sync {
			l.joinBatchLocked(e, l.st.Events, false)
		} else {
			l.publishSeqLocked(SeqEvent{Seq: l.st.Events, Event: e})
		}
		applied++
		if err := l.maintainLocked(); err != nil {
			return applied, err
		}
	}
	if l.opts.Sync && len(l.pending) > 0 {
		if err := l.fsync(); err != nil {
			return applied, l.poisonLocked(fmt.Errorf("log: fsync failed, log poisoned: %w", err))
		}
		l.releaseAllLocked(nil)
	}
	return applied, nil
}
