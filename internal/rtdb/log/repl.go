package log

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
)

// This file is the log's replication surface: sequence-addressed reads over
// the on-disk segments (catch-up), a bounded tail subscription (live
// streaming), state bootstrap (full resync when the requested sequence was
// compacted away), and the persisted fencing epoch.
//
// The sequence number of an event is its 1-based position in the log:
// State.Events after a successful Append IS the appended event's sequence.
// Replication therefore needs no new on-disk format — only an index from
// segment to the sequence of its first frame.

// Replication errors. Both are expected protocol states, not damage: the
// primary answers ErrSeqFuture with a rejection (the follower is ahead —
// a fencing violation) and ErrSeqCompacted with a full-state resync.
var (
	// ErrSeqFuture: the requested sequence is beyond the log's tail.
	ErrSeqFuture = errors.New("log: sequence beyond the log tail")
	// ErrSeqCompacted: the events after the requested sequence are no
	// longer on disk — compaction removed their segments.
	ErrSeqCompacted = errors.New("log: sequence compacted away")
)

// Seq returns the sequence number of the newest appended event — the log's
// tail position.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Events
}

// SeqEvent is one log event tagged with its sequence number.
type SeqEvent struct {
	Seq   uint64
	Event Event
}

// Payload renders the event as its raw record payload — the same bytes the
// WAL frames, minus the frame header. WalBatch carries these verbatim, so
// primary and follower are byte-identical by construction.
func (e Event) Payload() []byte { return EncodeFields(e.fields()...) }

// ReadSince returns up to max events with sequence numbers strictly after
// afterSeq, read back from the segment files. It returns ErrSeqFuture when
// afterSeq is past the tail, ErrSeqCompacted when the events after afterSeq
// are no longer on disk, and an empty slice when the follower is caught up.
func (l *Log) ReadSince(afterSeq uint64, max int) ([]SeqEvent, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, l.err
	}
	if l.f == nil {
		return nil, fmt.Errorf("log: closed")
	}
	// Catch-up never serves past the durable tail: under group commit
	// frames sit written-but-unfsynced inside the open window, and a
	// follower must never apply an event the primary could still lose. The
	// events surface at batch release, through the tail publication.
	tail := l.st.Events
	if l.grouped() && l.durableSeq < tail {
		tail = l.durableSeq
	}
	if afterSeq > tail {
		return nil, ErrSeqFuture
	}
	if afterSeq == tail || max <= 0 {
		return nil, nil
	}
	// The start segment is the one with the largest first-sequence that is
	// still ≤ afterSeq+1; if none qualifies the target predates every
	// indexed segment and only a full resync can serve it.
	var startSeg, startFirst uint64
	found := false
	for seg, first := range l.segFirstSeq {
		if first <= afterSeq+1 && (!found || first > startFirst) {
			startSeg, startFirst, found = seg, first, true
		}
	}
	if !found {
		return nil, ErrSeqCompacted
	}
	out := make([]SeqEvent, 0, max)
	seq := startFirst - 1
	for seg := startSeg; seg <= l.segIndex; seg++ {
		limit := int64(-1)
		if seg == l.segIndex {
			limit = l.segSize
		}
		done, err := l.scanSegment(seg, limit, func(e Event) bool {
			seq++
			if seq > tail {
				return false
			}
			if seq > afterSeq {
				out = append(out, SeqEvent{Seq: seq, Event: e})
			}
			return len(out) < max
		})
		if err != nil {
			return nil, fmt.Errorf("log: catch-up read of %s: %w", segName(seg), err)
		}
		if done {
			break
		}
	}
	return out, nil
}

// scanSegment streams the decoded events of one segment (up to limit bytes,
// or the whole file when limit < 0) into visit; it stops early when visit
// returns false and reports whether it did.
func (l *Log) scanSegment(seg uint64, limit int64, visit func(Event) bool) (stopped bool, err error) {
	if limit == 0 {
		return false, nil
	}
	f, err := l.fs.Open(filepath.Join(l.opts.Dir, segName(seg)))
	if err != nil {
		return false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for limit < 0 || off < limit {
		payload, n, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return false, err
		}
		e, ok := DecodeEvent(payload)
		if !ok {
			return false, fmt.Errorf("undecodable record at offset %d", off)
		}
		off += int64(n)
		if !visit(e) {
			return true, nil
		}
	}
	return false, nil
}

// countFrames counts the frames of one segment up to limit bytes (whole
// file when limit < 0). With a positive limit the count must land exactly
// on a frame boundary — a snapshot position never points mid-frame.
func (l *Log) countFrames(seg uint64, limit int64) (uint64, error) {
	if limit == 0 {
		return 0, nil
	}
	f, err := l.fs.Open(filepath.Join(l.opts.Dir, segName(seg)))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	var n uint64
	for limit < 0 || off < limit {
		_, m, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		n++
		off += int64(m)
	}
	if limit > 0 && off != limit {
		return 0, fmt.Errorf("log: %s frame boundary mismatch at %d (want %d)", segName(seg), off, limit)
	}
	return n, nil
}

// indexSegments fills segFirstSeq for the snapshot's segment and every
// surviving earlier segment. Segments after the snapshot position were
// indexed during replay. An unreadable pre-snapshot region is not fatal:
// those segments simply stay unindexed, and catch-up requests that need
// them fall back to a full resync.
func (l *Log) indexSegments(segs []uint64, pos replayPos, snapEvents uint64) {
	pre, err := l.countFrames(pos.seg, pos.off)
	if err != nil || pre > snapEvents {
		return
	}
	first := snapEvents + 1 - pre
	l.segFirstSeq[pos.seg] = first
	j := -1
	for i, seg := range segs {
		if seg == pos.seg {
			j = i
			break
		}
	}
	prev := pos.seg
	for i := j - 1; i >= 0; i-- {
		if segs[i] != prev-1 {
			return // numbering gap: cannot chain counts further back
		}
		cnt, err := l.countFrames(segs[i], -1)
		if err != nil || cnt >= first {
			return
		}
		first -= cnt
		prev = segs[i]
		l.segFirstSeq[prev] = first
	}
}

// Tail is a live subscription to the log's appends. C delivers each
// successfully appended event tagged with its sequence; when the buffer is
// full the event is dropped (the subscriber sees a sequence gap and falls
// back to ReadSince) — a slow follower never blocks Append.
type Tail struct {
	C      chan SeqEvent
	l      *Log
	closed bool
}

// SubscribeTail registers a live tail with the given channel buffer.
func (l *Log) SubscribeTail(buf int) *Tail {
	l.mu.Lock()
	defer l.mu.Unlock()
	if buf <= 0 {
		buf = 1
	}
	t := &Tail{C: make(chan SeqEvent, buf), l: l}
	if l.tails == nil {
		l.tails = make(map[*Tail]struct{})
	}
	l.tails[t] = struct{}{}
	return t
}

// Close unregisters the tail and closes its channel.
func (t *Tail) Close() {
	t.l.mu.Lock()
	defer t.l.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	delete(t.l.tails, t)
	close(t.C)
}

// publishLocked fans one appended event out to the live tails. Called with
// mu held, immediately after a fully successful ungrouped Append; group
// commit instead publishes at batch release, after the covering fsync
// (publishSeqLocked with the batch's recorded sequences), so followers
// only ever see durable events, in whole commit batches.
func (l *Log) publishLocked(e Event) {
	l.publishSeqLocked(SeqEvent{Seq: l.st.Events, Event: e})
}

// publishSeqLocked is the non-blocking fan-out; the full-buffer drop is
// what keeps the apply loop independent of follower speed (the subscriber
// sees a sequence gap and falls back to ReadSince).
func (l *Log) publishSeqLocked(se SeqEvent) {
	for t := range l.tails {
		select {
		case t.C <- se:
		default: // full buffer: subscriber detects the gap and catches up
		}
	}
}

// DumpState flattens the current state into a replayable event sequence
// plus the sequence number and last timestamp it corresponds to — the
// payload of a full-state resync.
func (l *Log) DumpState() ([]Event, uint64, timeseq.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.dump(), l.st.Events, l.st.LastAt
}

// Bootstrap replaces the log directory's contents with the given state
// dump, aligned so the next append gets sequence seq+1 — the follower-side
// terminal of a full-state resync. The fencing epoch file, if present, is
// preserved: resync changes a node's data, not its identity. The dump is
// persisted as a snapshot before Bootstrap returns, so a crash right after
// recovers to exactly this state.
func Bootstrap(opts Options, events []Event, seq uint64, lastAt timeseq.Time) (*Log, error) {
	opts.defaults()
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		_, isSeg := parseSeq(name, "seg-", ".wal")
		_, isSnap := parseSeq(name, "snap-", ".snap")
		if isSeg || isSnap {
			if err := opts.FS.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, err
			}
		}
	}
	st := NewState()
	for _, e := range events {
		if err := st.Apply(e); err != nil {
			return nil, fmt.Errorf("log: bootstrap dump rejected: %w", err)
		}
	}
	st.Events = seq
	st.LastAt = lastAt
	l := &Log{opts: opts, fs: opts.FS, st: st}
	l.epoch = l.readEpoch()
	l.segFirstSeq = map[uint64]uint64{1: seq + 1}
	if err := l.openSegment(1, 0); err != nil {
		return nil, err
	}
	l.stats.Segments = 1
	if err := l.snapshotLocked(); err != nil {
		l.f.Close()
		return nil, err
	}
	return l, nil
}

// epochName is the fencing-epoch file: one framed record ["EPOCH", n].
const epochName = "epoch"

// Epoch returns the node's fencing epoch (1 when none was ever persisted).
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// BumpEpoch persists and returns epoch+1 — the promotion step. Everything
// stamped with an older epoch is fenced from here on.
func (l *Log) BumpEpoch() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.epoch + 1
	if err := l.writeEpochLocked(next); err != nil {
		return 0, err
	}
	l.epoch = next
	return next, nil
}

// AdoptEpoch persists e if it is newer than the current epoch — a follower
// adopting its primary's epoch so fencing survives the follower's restarts.
func (l *Log) AdoptEpoch(e uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e <= l.epoch {
		return nil
	}
	if err := l.writeEpochLocked(e); err != nil {
		return err
	}
	l.epoch = e
	return nil
}

// readEpoch loads the persisted epoch, defaulting to 1.
func (l *Log) readEpoch() uint64 {
	f, err := l.fs.Open(filepath.Join(l.opts.Dir, epochName))
	if err != nil {
		return 1
	}
	defer f.Close()
	payload, _, err := ReadFrame(bufio.NewReader(f))
	if err != nil {
		return 1
	}
	fields, ok := DecodeFields(payload)
	if !ok || len(fields) != 2 || fields[0] != "EPOCH" {
		return 1
	}
	v, err := parseUint(fields[1])
	if err != nil || v == 0 {
		return 1
	}
	return v
}

// writeEpochLocked persists the epoch with the tmp+rename discipline.
func (l *Log) writeEpochLocked(e uint64) error {
	path := filepath.Join(l.opts.Dir, epochName)
	tmp := path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	frame := AppendFrame(nil, EncodeFields("EPOCH", encoding.FieldUint(e)))
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return l.fs.Rename(tmp, path)
}
