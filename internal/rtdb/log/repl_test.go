package log

import (
	"errors"
	"reflect"
	"testing"

	"rtc/internal/timeseq"
)

// fillLog appends n events (an image definition followed by samples) and
// returns the appended events in order.
func fillLog(t *testing.T, l *Log, n int) []Event {
	t.Helper()
	events := []Event{Image("temp", 5)}
	for i := 1; i < n; i++ {
		events = append(events, Sample(timeseq.Time(i), "temp", "v"))
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	return events
}

// TestReadSinceGaps is the table-driven gap battery for Subscribe handling:
// afterSeq past the tail, inside a compacted-away segment (forces a full
// resync), exactly at a segment boundary, at the tail, and mid-segment.
func TestReadSinceGaps(t *testing.T) {
	// Small segments so the log rotates: each Append is ~20 bytes, so
	// SegmentSize 64 seals a segment every ~3 events.
	mk := func(t *testing.T, compact bool) (*Log, []Event) {
		l, err := Open(Options{Dir: t.TempDir(), SegmentSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		events := fillLog(t, l, 30)
		if compact {
			if err := l.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		return l, events
	}

	t.Run("past_tail", func(t *testing.T) {
		l, _ := mk(t, false)
		defer l.Close()
		if _, err := l.ReadSince(31, 100); !errors.Is(err, ErrSeqFuture) {
			t.Fatalf("afterSeq past tail: err = %v, want ErrSeqFuture", err)
		}
	})

	t.Run("at_tail", func(t *testing.T) {
		l, _ := mk(t, false)
		defer l.Close()
		got, err := l.ReadSince(30, 100)
		if err != nil || len(got) != 0 {
			t.Fatalf("afterSeq at tail: got %d events, err %v; want 0, nil", len(got), err)
		}
	})

	t.Run("compacted_away", func(t *testing.T) {
		l, _ := mk(t, true)
		defer l.Close()
		// After Snapshot+Compact only the active segment survives; a
		// subscriber that is far behind must be told to resync in full.
		if _, err := l.ReadSince(0, 100); !errors.Is(err, ErrSeqCompacted) {
			t.Fatalf("afterSeq in compacted segment: err = %v, want ErrSeqCompacted", err)
		}
	})

	t.Run("segment_boundaries", func(t *testing.T) {
		l, events := mk(t, false)
		defer l.Close()
		// Exercise every boundary: each segment's firstSeq−1 is "exactly at
		// a segment boundary" for the follower.
		l.mu.Lock()
		boundaries := make([]uint64, 0, len(l.segFirstSeq))
		for _, first := range l.segFirstSeq {
			boundaries = append(boundaries, first-1)
		}
		l.mu.Unlock()
		if len(boundaries) < 3 {
			t.Fatalf("want ≥ 3 segments for a boundary test, got %d", len(boundaries))
		}
		for _, after := range boundaries {
			got, err := l.ReadSince(after, len(events))
			if err != nil {
				t.Fatalf("afterSeq %d at boundary: %v", after, err)
			}
			want := events[after:]
			if len(got) != len(want) {
				t.Fatalf("afterSeq %d: got %d events, want %d", after, len(got), len(want))
			}
			for i, se := range got {
				if se.Seq != after+uint64(i)+1 {
					t.Fatalf("afterSeq %d: event %d has seq %d", after, i, se.Seq)
				}
				if !reflect.DeepEqual(se.Event, want[i]) {
					t.Fatalf("afterSeq %d: event %d = %+v, want %+v", after, i, se.Event, want[i])
				}
			}
		}
	})

	t.Run("mid_segment_with_max", func(t *testing.T) {
		l, events := mk(t, false)
		defer l.Close()
		got, err := l.ReadSince(7, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 || got[0].Seq != 8 || got[4].Seq != 12 {
			t.Fatalf("mid-segment page: %+v", got)
		}
		if !reflect.DeepEqual(got[0].Event, events[7]) {
			t.Fatalf("mid-segment event mismatch: %+v vs %+v", got[0].Event, events[7])
		}
	})

	t.Run("survives_reopen", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, SegmentSize: 64, SnapshotEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		events := fillLog(t, l, 30)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen replays from the newest snapshot; the segment index must
		// be rebuilt for the pre-snapshot region too.
		l2, err := Open(Options{Dir: dir, SegmentSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		got, err := l2.ReadSince(0, len(events))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatalf("after reopen: got %d events, want %d", len(got), len(events))
		}
		for i, se := range got {
			if !reflect.DeepEqual(se.Event, events[i]) {
				t.Fatalf("after reopen: event %d = %+v, want %+v", i, se.Event, events[i])
			}
		}
	})
}

func TestSubscribeTail(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tail := l.SubscribeTail(4)
	defer tail.Close()

	if err := l.Append(Image("temp", 5)); err != nil {
		t.Fatal(err)
	}
	se := <-tail.C
	if se.Seq != 1 || se.Event.Name != "temp" {
		t.Fatalf("tail delivered %+v", se)
	}

	// Overflow the buffer: the excess is dropped, never blocking Append,
	// and the subscriber sees a sequence gap.
	for i := 1; i <= 10; i++ {
		if err := l.Append(Sample(timeseq.Time(i), "temp", "v")); err != nil {
			t.Fatal(err)
		}
	}
	first := <-tail.C
	if first.Seq != 2 {
		t.Fatalf("first buffered seq = %d, want 2", first.Seq)
	}
	drained := 1
	for len(tail.C) > 0 {
		<-tail.C
		drained++
	}
	if drained != 4 {
		t.Fatalf("buffered %d events, want buffer size 4", drained)
	}
}

func TestBootstrapAlignsSequence(t *testing.T) {
	// Source log with some history.
	src, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	events := fillLog(t, src, 12)
	dump, seq, lastAt := src.DumpState()
	if seq != 12 {
		t.Fatalf("dump seq = %d, want 12", seq)
	}

	dir := t.TempDir()
	dst, err := Bootstrap(Options{Dir: dir}, dump, seq, lastAt)
	if err != nil {
		t.Fatal(err)
	}
	if diff := src.State().Diff(dst.State()); diff != "" {
		t.Fatalf("bootstrapped state diverges: %s", diff)
	}
	// The next append must get seq+1, as if the follower had replayed the
	// whole prefix.
	if err := dst.Append(Sample(100, "temp", "x")); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadSince(seq, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != seq+1 {
		t.Fatalf("post-bootstrap ReadSince: %+v", got)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	// Bootstrap persists its state as a snapshot: recovery restores it.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.State().Events != seq+1 {
		t.Fatalf("recovered Events = %d, want %d", re.State().Events, seq+1)
	}
	_ = events
}

func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	if e, err := l.BumpEpoch(); err != nil || e != 2 {
		t.Fatalf("BumpEpoch = %d, %v", e, err)
	}
	if err := l.AdoptEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := l.AdoptEpoch(3); err != nil { // older: ignored
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 5 {
		t.Fatalf("epoch = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Epoch(); got != 5 {
		t.Fatalf("epoch after reopen = %d, want 5", got)
	}
}
