package log

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkCodecEncode(b *testing.B) {
	e := Sample(123456, "temp", "21.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeEvent(e)
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	frame := EncodeEvent(Sample(123456, "temp", "21.5"))
	payload := frame[frameHeaderSize:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := DecodeEvent(payload); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), SegmentSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Image("temp", 5)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Sample(0, "temp", "21.5")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), SegmentSize: 64 << 20, Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Image("temp", 5)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Sample(0, "temp", "21.5")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendGroupSync measures group commit under contention: W
// concurrent writers issue durable appends through a 200µs commit window,
// so one fsync is amortized over every writer that joined the batch. The
// per-op number is the amortized durable-append cost; compare against
// BenchmarkAppendSync (one fsync each) for the amortization factor.
func BenchmarkAppendGroupSync(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%dwriters", writers), func(b *testing.B) {
			l, err := Open(Options{
				Dir: b.TempDir(), SegmentSize: 64 << 20, Sync: true,
				GroupWindow: 200 * time.Microsecond, GroupMaxBatch: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			tk, err := l.AppendTicket(Image("temp", 5), true)
			if err != nil {
				b.Fatal(err)
			}
			if err := tk.Wait(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if err := l.Append(Sample(0, "temp", "21.5")); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range workload(5000) {
		if err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		l.Close()
	}
}
