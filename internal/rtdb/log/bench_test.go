package log

import (
	"testing"
)

func BenchmarkCodecEncode(b *testing.B) {
	e := Sample(123456, "temp", "21.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeEvent(e)
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	frame := EncodeEvent(Sample(123456, "temp", "21.5"))
	payload := frame[frameHeaderSize:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := DecodeEvent(payload); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), SegmentSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Image("temp", 5)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Sample(0, "temp", "21.5")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), SegmentSize: 64 << 20, Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Image("temp", 5)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Sample(0, "temp", "21.5")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range workload(5000) {
		if err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		l.Close()
	}
}
