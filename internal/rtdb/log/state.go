package log

import (
	"fmt"
	"reflect"
	"sort"

	"rtc/internal/rtdb"
	"rtc/internal/timeseq"
)

// State is the in-memory image of the log: the database catalog plus the
// timed history replay reconstructs. Two states built from the same event
// sequence — one live, one by crash recovery — compare deep-equal; that is
// the recovery invariant the tests pin down.
type State struct {
	Invariants map[string]string
	Images     map[string]*ImageState
	Derived    map[string]*DerivedState
	Firings    []string     // "time:rule", mirroring rtdb.DB.FiringLog
	Queries    []QueryIssue // every admitted query issue, in log order
	LastAt     timeseq.Time // largest timestamp applied
	Events     uint64       // number of events applied
}

// ImageState is the recovered history of one image object.
type ImageState struct {
	Period  timeseq.Time
	Samples []rtdb.Sample
}

// DerivedState is the recovered definition of one derived object. The
// derivation function itself is code, not data; like the acceptor's
// DeriveRegistry it is re-bound by name after recovery.
type DerivedState struct {
	Sources []string
}

// QueryIssue is one recovered query issue with its deadline envelope.
type QueryIssue struct {
	At        timeseq.Time
	Session   string
	Query     string
	Candidate string
	Kind      uint64
	Deadline  timeseq.Time
	MinUseful uint64
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Invariants: map[string]string{},
		Images:     map[string]*ImageState{},
		Derived:    map[string]*DerivedState{},
	}
}

// check validates an event against the current state without mutating it.
// The log calls it before writing a frame so that everything Apply could
// reject is caught while the disk is still untouched — after check passes,
// Apply cannot fail.
func (st *State) check(e Event) error {
	switch e.Kind {
	case KindInvariant, KindDerived, KindFiring:
		return nil
	case KindImage:
		if len(e.Args) != 1 {
			return fmt.Errorf("log: image record for %q needs a period", e.Name)
		}
		_, err := parseUint(e.Args[0])
		return err
	case KindSample:
		if _, ok := st.Images[e.Name]; !ok {
			return fmt.Errorf("log: sample for unregistered image %q", e.Name)
		}
		return nil
	case KindQuery:
		if len(e.Args) != 4 {
			return fmt.Errorf("log: query record for %q needs 4 args", e.Name)
		}
		for _, a := range e.Args[1:] {
			if _, err := parseUint(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("log: unknown event kind %v", e.Kind)
	}
}

// Apply integrates one event.
func (st *State) Apply(e Event) error {
	switch e.Kind {
	case KindInvariant:
		st.Invariants[e.Name] = e.Value
	case KindImage:
		if len(e.Args) != 1 {
			return fmt.Errorf("log: image record for %q needs a period", e.Name)
		}
		p, err := parseUint(e.Args[0])
		if err != nil {
			return err
		}
		if _, ok := st.Images[e.Name]; !ok {
			st.Images[e.Name] = &ImageState{Period: timeseq.Time(p)}
		}
	case KindDerived:
		st.Derived[e.Name] = &DerivedState{Sources: append([]string{}, e.Args...)}
	case KindSample:
		img, ok := st.Images[e.Name]
		if !ok {
			return fmt.Errorf("log: sample for unregistered image %q", e.Name)
		}
		img.Samples = append(img.Samples, rtdb.Sample{At: e.At, Value: e.Value})
	case KindFiring:
		st.Firings = append(st.Firings, fmt.Sprintf("%d:%s", e.At, e.Name))
	case KindQuery:
		if len(e.Args) != 4 {
			return fmt.Errorf("log: query record for %q needs 4 args", e.Name)
		}
		kind, err := parseUint(e.Args[1])
		if err != nil {
			return err
		}
		dead, err := parseUint(e.Args[2])
		if err != nil {
			return err
		}
		min, err := parseUint(e.Args[3])
		if err != nil {
			return err
		}
		st.Queries = append(st.Queries, QueryIssue{
			At: e.At, Session: e.Args[0], Query: e.Name, Candidate: e.Value,
			Kind: kind, Deadline: timeseq.Time(dead), MinUseful: min,
		})
	default:
		return fmt.Errorf("log: unknown event kind %v", e.Kind)
	}
	if e.At > st.LastAt {
		st.LastAt = e.At
	}
	st.Events++
	return nil
}

// imageNames returns the image names sorted, for deterministic dumps.
func (st *State) imageNames() []string {
	names := make([]string, 0, len(st.Images))
	for n := range st.Images {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// dump flattens the state into a deterministic event sequence; replaying
// the dump into an empty state rebuilds an equal one. This is the snapshot
// payload.
func (st *State) dump() []Event {
	var out []Event
	invs := make([]string, 0, len(st.Invariants))
	for n := range st.Invariants {
		invs = append(invs, n)
	}
	sort.Strings(invs)
	for _, n := range invs {
		out = append(out, Invariant(n, st.Invariants[n]))
	}
	names := st.imageNames()
	for _, n := range names {
		out = append(out, Image(n, st.Images[n].Period))
	}
	ders := make([]string, 0, len(st.Derived))
	for n := range st.Derived {
		ders = append(ders, n)
	}
	sort.Strings(ders)
	for _, n := range ders {
		out = append(out, Derived(n, st.Derived[n].Sources...))
	}
	for _, n := range names {
		for _, s := range st.Images[n].Samples {
			out = append(out, Sample(s.At, n, s.Value))
		}
	}
	for _, f := range st.Firings {
		at, rule, ok := splitFiring(f)
		if !ok {
			continue
		}
		out = append(out, Firing(at, rule))
	}
	for _, q := range st.Queries {
		out = append(out, Query(q.At, q.Session, q.Query, q.Candidate, q.Kind, uint64(q.Deadline), q.MinUseful))
	}
	return out
}

func splitFiring(s string) (timeseq.Time, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			at, err := parseUint(s[:i])
			if err != nil {
				return 0, "", false
			}
			return timeseq.Time(at), s[i+1:], true
		}
	}
	return 0, "", false
}

// Diff returns a description of the first divergence between two states,
// or "" when they are deep-equal. The torture harness uses it to turn a
// failed recovery invariant into an actionable message instead of a bare
// deep-equal failure.
func (st *State) Diff(other *State) string {
	if other == nil {
		return "other state is nil"
	}
	if st.Events != other.Events {
		return fmt.Sprintf("Events %d vs %d", st.Events, other.Events)
	}
	if st.LastAt != other.LastAt {
		return fmt.Sprintf("LastAt %d vs %d", st.LastAt, other.LastAt)
	}
	for n, v := range st.Invariants {
		if ov, ok := other.Invariants[n]; !ok || ov != v {
			return fmt.Sprintf("invariant %q: %q vs %q (present=%v)", n, v, ov, ok)
		}
	}
	if len(st.Invariants) != len(other.Invariants) {
		return fmt.Sprintf("invariant count %d vs %d", len(st.Invariants), len(other.Invariants))
	}
	for _, n := range st.imageNames() {
		a, b := st.Images[n], other.Images[n]
		if b == nil {
			return fmt.Sprintf("image %q missing", n)
		}
		if a.Period != b.Period {
			return fmt.Sprintf("image %q period %d vs %d", n, a.Period, b.Period)
		}
		if len(a.Samples) != len(b.Samples) {
			return fmt.Sprintf("image %q sample count %d vs %d", n, len(a.Samples), len(b.Samples))
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				return fmt.Sprintf("image %q sample %d: %+v vs %+v", n, i, a.Samples[i], b.Samples[i])
			}
		}
	}
	if len(st.Images) != len(other.Images) {
		return fmt.Sprintf("image count %d vs %d", len(st.Images), len(other.Images))
	}
	if len(st.Firings) != len(other.Firings) {
		return fmt.Sprintf("firing count %d vs %d", len(st.Firings), len(other.Firings))
	}
	for i := range st.Firings {
		if st.Firings[i] != other.Firings[i] {
			return fmt.Sprintf("firing %d: %q vs %q", i, st.Firings[i], other.Firings[i])
		}
	}
	if len(st.Queries) != len(other.Queries) {
		return fmt.Sprintf("query count %d vs %d", len(st.Queries), len(other.Queries))
	}
	for i := range st.Queries {
		if st.Queries[i] != other.Queries[i] {
			return fmt.Sprintf("query %d: %+v vs %+v", i, st.Queries[i], other.Queries[i])
		}
	}
	if !reflect.DeepEqual(st, other) {
		return "states differ outside the compared fields"
	}
	return ""
}

// Build instantiates a live rtdb.DB from the recovered catalog: invariants,
// served-mode images (nil Read — samples are injected, not scheduled), and
// derived objects re-bound through the registry, exactly as the acceptor's
// DeriveRegistry re-binds enc(D). Sample histories are re-injected through
// the scheduler so in-DB state matches a reference run.
func (st *State) Build(db *rtdb.DB, reg rtdb.DeriveRegistry) error {
	for _, n := range st.imageNames() {
		db.AddImage(&rtdb.ImageObject{Name: n, Period: st.Images[n].Period})
	}
	invs := make([]string, 0, len(st.Invariants))
	for n := range st.Invariants {
		invs = append(invs, n)
	}
	sort.Strings(invs)
	for _, n := range invs {
		db.AddInvariant(n, st.Invariants[n])
	}
	ders := make([]string, 0, len(st.Derived))
	for n := range st.Derived {
		ders = append(ders, n)
	}
	sort.Strings(ders)
	for _, n := range ders {
		fn, ok := reg[n]
		if !ok {
			return fmt.Errorf("log: no derivation registered for %q", n)
		}
		db.AddDerived(&rtdb.DerivedObject{Name: n, Sources: st.Derived[n].Sources, Derive: fn})
	}
	return nil
}

// Historical converts the recovered sample histories into the §5.1.2
// temporal view: one valid-time relation (Object, Value) per image, each
// sample's lifespan running to the next sample (or now). This is the
// structure as-of reads are served from.
func (st *State) Historical(now timeseq.Time) *rtdb.HistoricalDatabase {
	out := rtdb.NewHistoricalDatabase()
	for _, n := range st.imageNames() {
		// Timeline capture: shares the sample slice, O(1) per image instead
		// of O(n²) row inserts — a standby republishing its query mirror on
		// every applied batch must not slow down as the history grows.
		out.Add(rtdb.NewTimelineRelation(n, st.Images[n].Samples, now))
	}
	out.SetHorizon(now)
	return out
}
