// Package log is the durability layer of the rtdbd serving subsystem: an
// append-only timed event log (write-ahead log) of the §5.1 database's
// observable history — catalog definitions, sensor samples, rule firings and
// query issues — stored as length-prefixed CRC32-checked binary records,
// with segment rotation, periodic catalog snapshots, and replay-based crash
// recovery that truncates a torn tail and reconstructs identical in-memory
// state.
//
// The record payload reuses the enc(·) idiom of internal/encoding: a record
// is the byte rendering of the $f1@f2@…@fk$ symbol encoding (delimiters
// outside every payload, §5.1.1), so the same escaping discipline that keeps
// recognition words parseable keeps log records parseable. Framing adds
// what a disk needs and a tape does not: an explicit length and a checksum.
package log

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Kind tags one log record.
type Kind uint8

const (
	// KindInvariant defines an invariant object (catalog).
	KindInvariant Kind = iota
	// KindImage defines an image object and its sampling period (catalog).
	KindImage
	// KindDerived defines a derived object and its sources (catalog).
	KindDerived
	// KindSample is one sensor sample for an image object.
	KindSample
	// KindFiring is one active-rule firing.
	KindFiring
	// KindQuery is one query issue (aperiodic or one periodic invocation).
	KindQuery
)

var kindTags = [...]string{"V", "I", "D", "S", "F", "Q"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindTags) {
		return kindTags[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one entry of the timed event log. Name is the object, rule, or
// query name; Value is the sample value, invariant value, or query
// candidate; Args carries kind-specific extras (a derived object's sources,
// a query's deadline envelope).
type Event struct {
	Kind  Kind
	At    timeseq.Time
	Name  string
	Value string
	Args  []string
}

// Invariant builds a catalog record for an invariant object.
func Invariant(name, value string) Event {
	return Event{Kind: KindInvariant, Name: name, Value: value}
}

// Image builds a catalog record for an image object.
func Image(name string, period timeseq.Time) Event {
	return Event{Kind: KindImage, Name: name, Args: []string{encoding.FieldUint(uint64(period))}}
}

// Derived builds a catalog record for a derived object.
func Derived(name string, sources ...string) Event {
	return Event{Kind: KindDerived, Name: name, Args: sources}
}

// Sample builds a timed sample record.
func Sample(at timeseq.Time, image, value string) Event {
	return Event{Kind: KindSample, At: at, Name: image, Value: value}
}

// Firing builds a timed rule-firing record.
func Firing(at timeseq.Time, rule string) Event {
	return Event{Kind: KindFiring, At: at, Name: rule}
}

// Query builds a timed query-issue record. The args encode the §4.1
// deadline envelope: session, deadline kind, relative deadline, minimum
// usefulness.
func Query(at timeseq.Time, session, query, candidate string, kind, dead, minUseful uint64) Event {
	return Event{Kind: KindQuery, At: at, Name: query, Value: candidate, Args: []string{
		session,
		encoding.FieldUint(kind),
		encoding.FieldUint(dead),
		encoding.FieldUint(minUseful),
	}}
}

// fields flattens the event into record fields.
func (e Event) fields() []string {
	f := make([]string, 0, 4+len(e.Args))
	f = append(f, e.Kind.String(), encoding.FieldUint(uint64(e.At)), e.Name, e.Value)
	return append(f, e.Args...)
}

// eventFromFields inverts fields.
func eventFromFields(f []string) (Event, bool) {
	if len(f) < 4 {
		return Event{}, false
	}
	var kind Kind
	found := false
	for k, tag := range kindTags {
		if f[0] == tag {
			kind = Kind(k)
			found = true
			break
		}
	}
	if !found {
		return Event{}, false
	}
	at, err := parseUint(f[1])
	if err != nil {
		return Event{}, false
	}
	e := Event{Kind: kind, At: timeseq.Time(at), Name: f[2], Value: f[3]}
	if len(f) > 4 {
		e.Args = append([]string{}, f[4:]...)
	}
	return e, true
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("log: empty numeric field")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("log: numeric field %q", s)
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

// EncodeFields renders record fields as payload bytes: the byte form of the
// $f1@f2@…$ symbol encoding.
func EncodeFields(fields ...string) []byte {
	return []byte(encoding.String(encoding.Record(fields...)))
}

// DecodeFields inverts EncodeFields. It re-tokenizes the byte stream into
// the symbol alphabet (escape pairs %x are one symbol, everything else one
// byte) and hands the result to the shared record parser.
func DecodeFields(payload []byte) ([]string, bool) {
	syms := make([]word.Symbol, 0, len(payload))
	for i := 0; i < len(payload); i++ {
		if payload[i] == '%' {
			if i+1 >= len(payload) {
				return nil, false
			}
			syms = append(syms, word.Symbol(payload[i:i+2]))
			i++
			continue
		}
		syms = append(syms, word.Symbol(payload[i:i+1]))
	}
	return encoding.ParseRecord(syms)
}

// frameHeaderSize is the per-record overhead: payload length and CRC32,
// both little-endian uint32.
const frameHeaderSize = 8

// maxPayload bounds a single record; longer payloads indicate a bug or a
// corrupt length field during replay.
const maxPayload = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the framed record | len | crc | payload | to dst.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeEvent frames one event.
func EncodeEvent(e Event) []byte {
	return AppendFrame(nil, EncodeFields(e.fields()...))
}

// errTorn reports a record that is structurally damaged — short header,
// short payload, impossible length, or checksum mismatch. During replay a
// torn record at the tail of the last segment is the expected signature of
// a crash mid-append and is truncated away; anywhere else it is corruption.
var errTorn = fmt.Errorf("log: torn record")

// ReadFrame reads one framed payload from r. It returns the payload and the
// number of bytes consumed. io.EOF signals a clean end; errTorn a damaged
// record.
func ReadFrame(r io.Reader) (payload []byte, n int, err error) {
	var hdr [frameHeaderSize]byte
	got, err := io.ReadFull(r, hdr[:])
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, got, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxPayload {
		return nil, frameHeaderSize, errTorn
	}
	payload = make([]byte, length)
	got, err = io.ReadFull(r, payload)
	if err != nil {
		return nil, frameHeaderSize + got, errTorn
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, frameHeaderSize + int(length), errTorn
	}
	return payload, frameHeaderSize + int(length), nil
}

// ContainsFrame reports whether any alignment of b parses as a complete
// CRC-valid, non-empty frame. Recovery uses it to tell a torn tail (one
// partial record, nothing intact after it) from mid-segment corruption
// (damage with committed records behind it). The CRC makes a false positive
// on genuinely torn bytes a ~2^-32 event.
func ContainsFrame(b []byte) bool {
	for i := 0; i+frameHeaderSize <= len(b); i++ {
		length := binary.LittleEndian.Uint32(b[i : i+4])
		if length == 0 || length > maxPayload || i+frameHeaderSize+int(length) > len(b) {
			continue
		}
		sum := binary.LittleEndian.Uint32(b[i+4 : i+8])
		if crc32.Checksum(b[i+frameHeaderSize:i+frameHeaderSize+int(length)], crcTable) == sum {
			return true
		}
	}
	return false
}

// DecodeEvent parses one framed payload back into an Event.
func DecodeEvent(payload []byte) (Event, bool) {
	fields, ok := DecodeFields(payload)
	if !ok {
		return Event{}, false
	}
	return eventFromFields(fields)
}
