package log

import (
	"errors"
	"testing"
	"time"

	"rtc/internal/faultfs"
)

// groupOptions is the grouped-WAL configuration the edge tests share: big
// segments and a far snapshot threshold so fsync counts are exactly the
// commit discipline's, nothing else's.
func groupOptions(fs faultfs.FS, window time.Duration) Options {
	return Options{
		Dir: "wal", FS: fs, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
		Sync: true, GroupWindow: window,
	}
}

// TestGroupWindowZeroDegrades: GroupWindow=0 IS the old per-append-fsync
// log. AppendTicket degrades to a born-resolved ticket, every append pays
// its own fsync, and the produced segment bytes are identical to the
// ungrouped writer's — group commit off is not merely equivalent, it is
// byte-for-byte the same log.
func TestGroupWindowZeroDegrades(t *testing.T) {
	events := workload(30)

	memA := faultfs.NewMem(1)
	la, err := Open(groupOptions(memA, 0))
	if err != nil {
		t.Fatal(err)
	}
	base := memA.Syncs()
	for _, e := range events {
		tk, err := la.AppendTicket(e, false)
		if err != nil {
			t.Fatal(err)
		}
		if !tk.Resolved() {
			t.Fatalf("window=0 ticket for seq %d not born resolved", tk.Seq())
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := memA.Syncs()-base, uint64(len(events)); got != want {
		t.Fatalf("window=0 paid %d fsyncs for %d appends, want one each", got, want)
	}
	if st := la.Stats(); st.GroupCommits != 0 {
		t.Fatalf("window=0 recorded %d group commits, want 0", st.GroupCommits)
	}
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}

	memB := faultfs.NewMem(1)
	lb, err := Open(Options{Dir: "wal", FS: memB, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := lb.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := memA.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		a, b := memA.DumpFile("wal/"+name), memB.DumpFile("wal/"+name)
		if string(a) != string(b) {
			t.Fatalf("window=0 wrote different bytes for %s (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

// TestGroupSingleAppendBatch: one blocking append under a short window is a
// batch of one — it waits out the window, pays one fsync, and returns
// durable.
func TestGroupSingleAppendBatch(t *testing.T) {
	mem := faultfs.NewMem(2)
	l, err := Open(groupOptions(mem, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := mem.Syncs()
	if err := l.Append(Image("temp", 5)); err != nil {
		t.Fatal(err)
	}
	if got := mem.Syncs() - base; got != 1 {
		t.Fatalf("batch of one paid %d fsyncs, want 1", got)
	}
	if ds, sq := l.DurableSeq(), l.Seq(); ds != sq {
		t.Fatalf("after a blocking append DurableSeq=%d != Seq=%d", ds, sq)
	}
	st := l.Stats()
	if st.GroupCommits != 1 || st.GroupedAppends != 1 || st.GroupBatchMax != 1 {
		t.Fatalf("stats = commits %d appends %d max %d, want 1/1/1",
			st.GroupCommits, st.GroupedAppends, st.GroupBatchMax)
	}
}

// TestGroupFirmSealsWindow: a firm append seals the open window — the
// batch commits as soon as its leader wakes instead of waiting out an
// arbitrarily long window, and the whole batch (soft joiners included)
// rides the one early fsync.
func TestGroupFirmSealsWindow(t *testing.T) {
	mem := faultfs.NewMem(3)
	l, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := mem.Syncs()
	t1, err := l.AppendTicket(Image("temp", 5), false)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := l.AppendTicket(Sample(1, "temp", "a"), false)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := l.AppendTicket(Sample(2, "temp", "b"), true) // firm: seal
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range []*Ticket{t1, t2, t3} {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if got := mem.Syncs() - base; got != 1 {
		t.Fatalf("sealed batch paid %d fsyncs, want 1", got)
	}
	st := l.Stats()
	if st.GroupCommits != 1 || st.GroupedAppends != 3 || st.GroupBatchMax != 3 {
		t.Fatalf("stats = commits %d appends %d max %d, want 1/3/3",
			st.GroupCommits, st.GroupedAppends, st.GroupBatchMax)
	}
	if ds, sq := l.DurableSeq(), l.Seq(); ds != sq {
		t.Fatalf("after firm commit DurableSeq=%d != Seq=%d", ds, sq)
	}
}

// TestGroupBatchMaxSeals: the GroupMaxBatch-th joiner seals the window —
// a saturated batch never waits for the timer.
func TestGroupBatchMaxSeals(t *testing.T) {
	mem := faultfs.NewMem(4)
	opts := groupOptions(mem, time.Hour)
	opts.GroupMaxBatch = 3
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tickets := make([]*Ticket, 0, 3)
	for _, e := range []Event{Image("temp", 5), Sample(1, "temp", "a"), Sample(2, "temp", "b")} {
		tk, err := l.AppendTicket(e, false)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.GroupCommits != 1 || st.GroupBatchMax != 3 {
		t.Fatalf("stats = commits %d max %d, want 1 commit of 3", st.GroupCommits, st.GroupBatchMax)
	}
}

// TestGroupBatchSpansRotate: a batch whose frames straddle housekeeping is
// released by the rotation's own fsync — every frame the rotate fsync
// covered is durable, so the tickets must not wait for a leader commit.
func TestGroupBatchSpansRotate(t *testing.T) {
	mem := faultfs.NewMem(5)
	opts := groupOptions(mem, time.Hour)
	opts.SegmentSize = 256 // a handful of frames per segment
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var tickets []*Ticket
	for _, e := range workload(20) {
		tk, err := l.AppendTicket(e, false)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("workload never rotated (segments=%d); shrink SegmentSize", st.Segments)
	}
	// Everything written before the last rotation is durable and must have
	// been released by it — without any Sync or window expiry.
	released := 0
	for _, tk := range tickets {
		if tk.Resolved() {
			if err := tk.Wait(); err != nil {
				t.Fatalf("rotation-released ticket seq %d: %v", tk.Seq(), err)
			}
			released++
		}
	}
	if released == 0 {
		t.Fatal("rotation fsync released no tickets")
	}
	ds := l.DurableSeq()
	for _, tk := range tickets {
		if tk.Resolved() != (tk.Seq() <= ds) {
			t.Fatalf("ticket seq %d resolved=%v but DurableSeq=%d", tk.Seq(), tk.Resolved(), ds)
		}
	}
	// The tail batch commits on demand.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket seq %d after sync: %v", tk.Seq(), err)
		}
	}
}

// TestGroupFsyncFailurePoisonsBatch: the covering fsync failing fails the
// whole batch — every ticket resolves with the poison error and the log
// refuses further work.
func TestGroupFsyncFailurePoisonsBatch(t *testing.T) {
	mem := faultfs.NewMem(6)
	l, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var tickets []*Ticket
	for _, e := range []Event{Image("temp", 5), Sample(1, "temp", "a"), Sample(2, "temp", "b")} {
		tk, err := l.AppendTicket(e, false)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	mem.FailSync(mem.Syncs() + 1)
	if err := l.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sync over injected fault: %v", err)
	}
	for i, tk := range tickets {
		if !tk.Resolved() {
			t.Fatalf("ticket %d unresolved after poison", i)
		}
		if err := tk.Wait(); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("ticket %d resolved %v, want the injected fsync error", i, err)
		}
	}
	if l.Err() == nil {
		t.Fatal("failed group fsync must poison the log")
	}
	if _, err := l.AppendTicket(Sample(3, "temp", "c"), false); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
}

// TestGroupCloseResolvesTail: Close commits the open window — no ticket is
// left hanging behind an hour-long timer.
func TestGroupCloseResolvesTail(t *testing.T) {
	mem := faultfs.NewMem(7)
	l, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	tk, err := l.AppendTicket(Image("temp", 5), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("ticket after clean close: %v", err)
	}
	l2, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.State().Events; got != 1 {
		t.Fatalf("recovered %d events, want the closed-over append", got)
	}
}

// TestAppendBatchSingleFsync: a whole slice of events lands with exactly
// one fsync — the follower-side mirror of the primary's group commit — and
// the tail subscription sees the events only after that fsync, in order.
func TestAppendBatchSingleFsync(t *testing.T) {
	mem := faultfs.NewMem(8)
	l, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tail := l.SubscribeTail(64)
	defer tail.Close()

	events := workload(10)
	base := mem.Syncs()
	applied, err := l.AppendBatch(events)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(events) {
		t.Fatalf("applied %d of %d", applied, len(events))
	}
	if got := mem.Syncs() - base; got != 1 {
		t.Fatalf("AppendBatch paid %d fsyncs for %d events, want 1", got, len(events))
	}
	if ds, sq := l.DurableSeq(), l.Seq(); ds != sq {
		t.Fatalf("after AppendBatch DurableSeq=%d != Seq=%d", ds, sq)
	}
	for i := range events {
		select {
		case se := <-tail.C:
			if se.Seq != uint64(i+1) {
				t.Fatalf("tail event %d has seq %d, want %d", i, se.Seq, i+1)
			}
		default:
			t.Fatalf("tail missing event %d: publication must cover the whole batch", i)
		}
	}
}

// TestGroupTailPublishAfterCommit: in grouped mode a tail subscriber must
// not see an event before its covering fsync — publication happens at
// release, so a follower can never apply data the primary might lose.
func TestGroupTailPublishAfterCommit(t *testing.T) {
	mem := faultfs.NewMem(9)
	l, err := Open(groupOptions(mem, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tail := l.SubscribeTail(64)
	defer tail.Close()

	tk, err := l.AppendTicket(Image("temp", 5), false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case se := <-tail.C:
		t.Fatalf("tail saw seq %d before its fsync", se.Seq)
	default:
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case se := <-tail.C:
		if se.Seq != tk.Seq() {
			t.Fatalf("tail seq %d, want %d", se.Seq, tk.Seq())
		}
	default:
		t.Fatal("tail never saw the committed event")
	}
}

// TestGroupAmortizedCostGate is the deterministic CI-safe form of the
// benchmark acceptance gate: on the faultfs.Mem op clock — fsyncs cost
// ~144µs, buffered writes ~2µs, the ratio of a real disk — 64 lockstep
// writers amortizing one fsync per full batch must land under 1/4 of the
// serial per-append-fsync cost. Wall-clock noise cannot move it: only op
// counts enter the model.
func TestGroupAmortizedCostGate(t *testing.T) {
	const (
		syncCost  = 144_000 // ns per fsync on the virtual disk
		writeCost = 2_000   // ns per buffered write
		writers   = 64
		rounds    = 4
	)

	// Serial baseline: one fsync per append.
	memS := faultfs.NewMem(10)
	ls, err := Open(groupOptions(memS, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Append(Image("temp", 5)); err != nil {
		t.Fatal(err)
	}
	baseW, baseS := memS.Writes(), memS.Syncs()
	n := writers * rounds
	for i := 0; i < n; i++ {
		if err := ls.Append(Sample(0, "temp", "21.5")); err != nil {
			t.Fatal(err)
		}
	}
	serialCost := float64((memS.Syncs()-baseS)*syncCost+(memS.Writes()-baseW)*writeCost) / float64(n)
	ls.Close()

	// Grouped: 64 writers in lockstep — each blocking append joins the one
	// open batch, the 64th seals it, one fsync releases all. The hour-long
	// window guarantees every commit is a full batch, so the op counts are
	// exact, not schedule-dependent.
	memG := faultfs.NewMem(10)
	opts := groupOptions(memG, time.Hour)
	opts.GroupMaxBatch = writers
	lg, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue as a firm ticket: a lone blocking append would otherwise sit
	// out the hour-long window waiting for 63 joiners that don't exist yet.
	ptk, err := lg.AppendTicket(Image("temp", 5), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ptk.Wait(); err != nil {
		t.Fatal(err)
	}
	baseW, baseS = memG.Writes(), memG.Syncs()
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			for i := 0; i < rounds; i++ {
				if err := lg.Append(Sample(0, "temp", "21.5")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	syncs, writes := memG.Syncs()-baseS, memG.Writes()-baseW
	if syncs != rounds {
		t.Fatalf("lockstep batching paid %d fsyncs for %d full batches", syncs, rounds)
	}
	groupCost := float64(syncs*syncCost+writes*writeCost) / float64(n)
	lg.Close()

	t.Logf("virtual amortized cost: serial=%.0fns grouped=%.0fns (%.1fx)",
		serialCost, groupCost, serialCost/groupCost)
	if groupCost >= serialCost/4 {
		t.Fatalf("grouped amortized cost %.0fns not < 1/4 of serial %.0fns", groupCost, serialCost)
	}
}
