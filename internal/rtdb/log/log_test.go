package log

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rtc/internal/faultfs"
	"rtc/internal/relational"
	"rtc/internal/rtdb"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

func TestCodecRoundTrip(t *testing.T) {
	events := []Event{
		Invariant("limit", "22"),
		Image("temp", 5),
		Derived("status", "temp", "limit"),
		Sample(7, "temp", "21"),
		Sample(12, "temp", "va$l@ue#%"),
		Firing(12, "alarm"),
		Query(13, "s3", "status_q", "ok", 1, 4, 2),
		{Kind: KindSample, At: 0, Name: "", Value: ""},
	}
	for _, e := range events {
		frame := EncodeEvent(e)
		payload, n, err := ReadFrame(bytes.NewReader(frame))
		if err != nil || n != len(frame) {
			t.Fatalf("ReadFrame(%v): n=%d err=%v", e, n, err)
		}
		got, ok := DecodeEvent(payload)
		if !ok || !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip %+v → %+v (%v)", e, got, ok)
		}
	}
}

func TestReadFrameTorn(t *testing.T) {
	frame := EncodeEvent(Sample(1, "temp", "20"))
	cases := map[string][]byte{
		"short header":  frame[:4],
		"short payload": frame[:len(frame)-2],
		"bad crc": append(append([]byte{}, frame[:len(frame)-1]...),
			frame[len(frame)-1]^0xff),
	}
	for name, b := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(b)); err != errTorn {
			t.Errorf("%s: err = %v, want errTorn", name, err)
		}
	}
}

// workload returns a deterministic event sequence exercising every kind.
func workload(n int) []Event {
	events := []Event{
		Invariant("limit", "22"),
		Image("temp", 5),
		Image("press", 3),
		Derived("status", "temp", "limit"),
	}
	for i := 0; i < n; i++ {
		at := timeseq.Time(i)
		events = append(events, Sample(at, "temp", "v"+itoa(i)))
		if i%3 == 0 {
			events = append(events, Sample(at, "press", "p"+itoa(i)))
		}
		if i%5 == 0 {
			events = append(events, Firing(at, "alarm"))
		}
		if i%7 == 0 {
			events = append(events, Query(at, "s1", "status_q", "ok", 1, 4, 1))
		}
	}
	return events
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// reference applies the events directly — the ground truth a recovered
// state must deep-equal.
func reference(events []Event) *State {
	st := NewState()
	for _, e := range events {
		if err := st.Apply(e); err != nil {
			panic(err)
		}
	}
	return st
}

func TestRecoveryCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	events := workload(100)
	l, err := Open(Options{Dir: dir, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("segment rotation never triggered: %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := reference(events)
	if !reflect.DeepEqual(l2.State(), want) {
		t.Fatalf("recovered state differs from reference:\n got %+v\nwant %+v", l2.State(), want)
	}
}

func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	events := workload(60)
	l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill the log mid-append: a record that made it to disk only
	// partially, exactly as a crash between write and fsync leaves it.
	torn := EncodeEvent(Sample(999, "temp", "never-lands"))
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if tb := l2.Stats().TruncatedBytes; tb != int64(len(torn)-3) {
		t.Fatalf("TruncatedBytes = %d, want %d", tb, len(torn)-3)
	}
	want := reference(events)
	if !reflect.DeepEqual(l2.State(), want) {
		t.Fatal("recovered state differs from reference after torn-tail truncation")
	}

	// The historical databases must agree too — the as-of read path sees
	// exactly the reference history.
	now := want.LastAt
	got, ref := l2.State().Historical(now), want.Historical(now)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("recovered historical database differs from reference")
	}
	h, ok := got.Relation("temp")
	if !ok {
		t.Fatal("no temp relation after recovery")
	}
	if !h.HoldsAt(relational.Tuple{"temp", "v59"}, now) {
		t.Fatal("latest sample not visible in recovered historical relation")
	}

	// Appending after recovery lands cleanly where the tail was cut.
	if err := l2.Append(Sample(now+1, "temp", "post")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if err := reference(events).Apply(Sample(now+1, "temp", "post")); err != nil {
		t.Fatal(err)
	}
	img := l3.State().Images["temp"]
	if img.Samples[len(img.Samples)-1].Value != "post" {
		t.Fatal("append after recovery lost")
	}
}

// TestCorruptMiddleSegmentSurfaced: a bit flip in a non-final segment is
// unrecoverable damage — committed history would be lost — and Open must
// fail with ErrCorrupt rather than skip or truncate anything.
func TestCorruptMiddleSegmentSurfaced(t *testing.T) {
	dir := t.TempDir()
	events := workload(100)
	l, err := Open(Options{Dir: dir, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("need ≥3 segments, got %d", l.Stats().Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the middle of the second segment's payload bytes.
	path := filepath.Join(dir, segName(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(Options{Dir: dir, SegmentSize: 512})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with bit-flipped middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptMidFinalSegmentSurfaced: a damaged frame in the FINAL segment
// with intact records after it is corruption too — truncating at the damage
// would silently drop committed (possibly fsynced) events. Only a tear that
// runs to EOF is the crash signature.
func TestCorruptMidFinalSegmentSurfaced(t *testing.T) {
	dir := t.TempDir()
	events := workload(60)
	l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x01 // damage with plenty of intact frames after it
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-final-segment damage: err = %v, want ErrCorrupt", err)
	}
}

// TestTransientEIOHealed: a failed append write is healed (torn frame
// truncated) — the log stays usable, the failed event is not logged, and
// recovery sees exactly the acknowledged events.
func TestTransientEIOHealed(t *testing.T) {
	mem := faultfs.NewMem(11)
	l, err := Open(Options{Dir: "wal", FS: mem, SegmentSize: 1 << 20, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	events := workload(30)
	var acked []Event
	mem.TearWrite(12) // tear the 12th append's frame write
	failures := 0
	for _, e := range events {
		if err := l.Append(e); err != nil {
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("append: %v", err)
			}
			failures++
			continue
		}
		acked = append(acked, e)
	}
	if failures != 1 {
		t.Fatalf("injected %d failures, want 1", failures)
	}
	if st := l.Stats(); st.Heals != 1 {
		t.Fatalf("Heals = %d, want 1", st.Heals)
	}
	if l.Err() != nil {
		t.Fatalf("transient EIO must not poison the log: %v", l.Err())
	}
	want := reference(acked)
	if d := want.Diff(l.State()); d != "" {
		t.Fatalf("live state after heal: %s", d)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: "wal", FS: mem, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if d := want.Diff(l2.State()); d != "" {
		t.Fatalf("recovered state after heal: %s", d)
	}
}

// TestFsyncFailurePoisons: after a failed fsync the page cache cannot be
// trusted, so the log refuses all further work with a sticky error.
func TestFsyncFailurePoisons(t *testing.T) {
	mem := faultfs.NewMem(5)
	l, err := Open(Options{Dir: "wal", FS: mem, SegmentSize: 1 << 20, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	events := workload(10)
	for _, e := range events[:5] {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	mem.FailSync(mem.Syncs() + 1)
	if err := l.Append(events[5]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append over failed fsync: %v", err)
	}
	if err := l.Append(events[6]); err == nil || l.Err() == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("poisoned log accepted a sync")
	}
}

func TestRecoveryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	events := workload(200)
	l, err := Open(Options{Dir: dir, SegmentSize: 1024, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Snapshots == 0 {
		t.Fatal("no snapshot written")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := reference(events)
	if !reflect.DeepEqual(l2.State(), want) {
		t.Fatal("snapshot + tail replay differs from full replay")
	}
	// The snapshot must actually have shortened the replay.
	if re := l2.Stats().RecoveredEvents; re >= want.Events {
		t.Fatalf("replayed %d events, want fewer than %d (snapshot unused)", re, want.Events)
	}
}

func TestSnapshotTornIsIgnored(t *testing.T) {
	dir := t.TempDir()
	events := workload(80)
	l, err := Open(Options{Dir: dir, SegmentSize: 1 << 20, SnapshotEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot: recovery must fall back to the log.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			path := filepath.Join(dir, e.Name())
			b, _ := os.ReadFile(path)
			os.WriteFile(path, b[:len(b)/2], 0o644)
		}
	}
	l2, err := Open(Options{Dir: dir, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(l2.State(), reference(events)) {
		t.Fatal("recovery with torn snapshots differs from reference")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	events := workload(300)
	l, err := Open(Options{Dir: dir, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "seg-", ".wal"); ok {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segments survive compaction, want 1 (the active one)", segs)
	}
	l2, err := Open(Options{Dir: dir, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(l2.State(), reference(events)) {
		t.Fatal("recovery after compaction differs from reference")
	}
}

func TestBuildRebindsCatalog(t *testing.T) {
	st := reference(workload(20))
	db := rtdb.New(vtime.New())
	reg := rtdb.DeriveRegistry{
		"status": func(src map[string]rtdb.Value) rtdb.Value { return src["temp"] + "/" + src["limit"] },
	}
	if err := st.Build(db, reg); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Image("temp"); !ok {
		t.Fatal("image catalog not rebuilt")
	}
	if v, ok := db.Invariant("limit"); !ok || v != "22" {
		t.Fatalf("invariant = %q, %v", v, ok)
	}
	d, ok := db.Derived("status")
	if !ok {
		t.Fatal("derived catalog not rebuilt")
	}
	if got := d.Derive(map[string]string{"temp": "21", "limit": "22"}); got != "21/22" {
		t.Fatalf("rebound derivation = %q", got)
	}
	// Missing registry entry is an error, not a silent nil function.
	if err := st.Build(rtdb.New(vtime.New()), nil); err == nil {
		t.Fatal("Build with empty registry: want error")
	}
}
