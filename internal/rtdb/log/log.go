package log

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rtc/internal/encoding"
	"rtc/internal/timeseq"
)

// Options configures a log directory.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentSize rotates the active segment once it reaches this many
	// bytes. Default 1 MiB.
	SegmentSize int64
	// SnapshotEvery writes a catalog snapshot after every N appends.
	// 0 disables automatic snapshots.
	SnapshotEvery uint64
	// Sync fsyncs after every append (the durable setting; off by default
	// so tests and benchmarks can measure the code path separately).
	Sync bool
}

func (o *Options) defaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 1 << 20
	}
}

// Stats is the log's observability block.
type Stats struct {
	Appends         uint64
	Segments        uint64 // segments created over the log's lifetime
	Snapshots       uint64
	FsyncCount      uint64
	FsyncNanos      uint64 // total time spent in fsync
	FsyncMaxNanos   uint64
	RecoveredEvents uint64 // events replayed at Open
	TruncatedBytes  int64  // torn tail dropped at Open
}

// replayPos addresses a byte position in the segment sequence.
type replayPos struct {
	seg uint64
	off int64
}

// Log is an append-only timed event log over a directory of CRC-checked
// segments. All methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	opts Options
	st   *State

	f        *os.File
	segIndex uint64
	segSize  int64

	snapSeq       uint64
	lastSnap      replayPos
	sinceSnapshot uint64

	stats Stats
	buf   []byte
}

func segName(i uint64) string  { return fmt.Sprintf("seg-%08d.wal", i) }
func snapName(i uint64) string { return fmt.Sprintf("snap-%08d.snap", i) }

// parseSeq extracts the numeric sequence from names like seg-00000001.wal.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	v, err := parseUint(name[len(prefix) : len(name)-len(suffix)])
	return v, err == nil
}

// Open loads (or creates) a log directory, recovering state by replaying
// the newest loadable snapshot plus every record after it. A torn record at
// the tail of the last segment — the signature of a crash mid-append — is
// truncated away; damage anywhere else is reported as corruption.
func Open(opts Options) (*Log, error) {
	opts.defaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	var snaps []uint64
	for _, e := range entries {
		if v, ok := parseSeq(e.Name(), "seg-", ".wal"); ok {
			segs = append(segs, v)
		}
		if v, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, v)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	l := &Log{opts: opts, st: NewState()}

	// Newest loadable snapshot wins; unreadable ones are skipped (a crash
	// during snapshot write leaves a torn .snap behind — the log is the
	// source of truth, the snapshot only an accelerator).
	pos := replayPos{seg: 1, off: 0}
	for i := len(snaps) - 1; i >= 0; i-- {
		st, p, err := loadSnapshot(filepath.Join(opts.Dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		l.st, pos = st, p
		l.snapSeq = snaps[i]
		l.lastSnap = p
		break
	}

	if len(segs) == 0 {
		if l.snapSeq != 0 {
			return nil, fmt.Errorf("log: snapshot %d refers to segment %d but no segments exist", l.snapSeq, pos.seg)
		}
		if err := l.openSegment(1, 0); err != nil {
			return nil, err
		}
		l.stats.Segments = 1
		return l, nil
	}

	// Replay from pos across all later segments.
	for i, seg := range segs {
		if seg < pos.seg {
			continue // compacted away behind the snapshot
		}
		start := int64(0)
		if seg == pos.seg {
			start = pos.off
		}
		last := i == len(segs)-1
		end, err := l.replaySegment(seg, start, last)
		if err != nil {
			return nil, err
		}
		if last {
			if err := l.openSegment(seg, end); err != nil {
				return nil, err
			}
		}
	}
	if l.f == nil {
		// Every surviving segment predates the snapshot position: the
		// snapshot names a segment that was deleted out from under it.
		return nil, fmt.Errorf("log: segment %d referenced by snapshot is missing", pos.seg)
	}
	l.stats.Segments = uint64(len(segs))
	return l, nil
}

// replaySegment applies every valid record of one segment, returning the
// offset just past the last good record. In the last segment a torn tail is
// truncated; elsewhere it is corruption.
func (l *Log) replaySegment(seg uint64, start int64, last bool) (int64, error) {
	path := filepath.Join(l.opts.Dir, segName(seg))
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if start > fi.Size() {
		return 0, fmt.Errorf("log: snapshot offset %d past end of %s (%d bytes)", start, segName(seg), fi.Size())
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(f)
	off := start
	for {
		payload, n, err := ReadFrame(r)
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			if !last {
				return 0, fmt.Errorf("log: corrupt record in %s at offset %d", segName(seg), off)
			}
			l.stats.TruncatedBytes = fi.Size() - off
			if terr := os.Truncate(path, off); terr != nil {
				return 0, terr
			}
			return off, nil
		}
		e, ok := DecodeEvent(payload)
		if !ok {
			return 0, fmt.Errorf("log: undecodable record in %s at offset %d", segName(seg), off)
		}
		if err := l.st.Apply(e); err != nil {
			return 0, err
		}
		l.stats.RecoveredEvents++
		off += int64(n)
	}
}

// openSegment opens segment seg for appending at offset off (creating it
// when absent).
func (l *Log) openSegment(seg uint64, off int64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(seg)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segIndex = seg
	l.segSize = off
	return nil
}

// State returns the log's live state. It is owned by the log: callers must
// treat it as read-only and must not retain it across Append calls.
func (l *Log) State() *State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Append durably records one event and applies it to the in-memory state.
func (l *Log) Append(e Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("log: closed")
	}
	if err := l.st.Apply(e); err != nil {
		return err
	}
	l.buf = AppendFrame(l.buf[:0], EncodeFields(e.fields()...))
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.segSize += int64(len(l.buf))
	l.stats.Appends++
	if l.opts.Sync {
		if err := l.fsync(); err != nil {
			return err
		}
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.sinceSnapshot++
	if l.opts.SnapshotEvery > 0 && l.sinceSnapshot >= l.opts.SnapshotEvery {
		if err := l.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) fsync() error {
	t0 := time.Now()
	err := l.f.Sync()
	d := uint64(time.Since(t0).Nanoseconds())
	l.stats.FsyncCount++
	l.stats.FsyncNanos += d
	if d > l.stats.FsyncMaxNanos {
		l.stats.FsyncMaxNanos = d
	}
	return err
}

// rotate seals the active segment (always fsynced: a sealed segment is
// immutable from here on) and starts the next one.
func (l *Log) rotate() error {
	if err := l.fsync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.stats.Segments++
	return l.openSegment(l.segIndex+1, 0)
}

// Snapshot writes a catalog snapshot covering everything appended so far.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *Log) snapshotLocked() error {
	l.sinceSnapshot = 0
	pos := replayPos{seg: l.segIndex, off: l.segSize}
	l.snapSeq++
	path := filepath.Join(l.opts.Dir, snapName(l.snapSeq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	write := func(fields ...string) {
		w.Write(AppendFrame(nil, EncodeFields(fields...)))
	}
	write("SNAPSHOT",
		encoding.FieldUint(pos.seg), encoding.FieldUint(uint64(pos.off)),
		encoding.FieldUint(l.st.Events), encoding.FieldUint(uint64(l.st.LastAt)))
	dump := l.st.dump()
	for _, e := range dump {
		write(e.fields()...)
	}
	write("COMMIT", encoding.FieldUint(uint64(len(dump))))
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	l.lastSnap = pos
	l.stats.Snapshots++
	return nil
}

// loadSnapshot reads one snapshot file into a fresh state.
func loadSnapshot(path string) (*State, replayPos, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, replayPos{}, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	head, _, err := ReadFrame(r)
	if err != nil {
		return nil, replayPos{}, fmt.Errorf("log: unreadable snapshot header: %w", err)
	}
	fields, ok := DecodeFields(head)
	if !ok || len(fields) != 5 || fields[0] != "SNAPSHOT" {
		return nil, replayPos{}, fmt.Errorf("log: bad snapshot header")
	}
	seg, err1 := parseUint(fields[1])
	off, err2 := parseUint(fields[2])
	events, err3 := parseUint(fields[3])
	lastAt, err4 := parseUint(fields[4])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return nil, replayPos{}, fmt.Errorf("log: bad snapshot header fields")
	}

	st := NewState()
	n := uint64(0)
	for {
		payload, _, err := ReadFrame(r)
		if err != nil {
			return nil, replayPos{}, fmt.Errorf("log: snapshot truncated before commit")
		}
		fields, ok := DecodeFields(payload)
		if !ok {
			return nil, replayPos{}, fmt.Errorf("log: undecodable snapshot record")
		}
		if fields[0] == "COMMIT" {
			want, err := parseUint(fields[1])
			if err != nil || want != n {
				return nil, replayPos{}, fmt.Errorf("log: snapshot commit count mismatch")
			}
			break
		}
		e, ok := eventFromFields(fields)
		if !ok {
			return nil, replayPos{}, fmt.Errorf("log: bad snapshot event")
		}
		if err := st.Apply(e); err != nil {
			return nil, replayPos{}, err
		}
		n++
	}
	// The dump collapses catalog overwrites, so the replay counters are
	// restored from the header rather than recomputed.
	st.Events = events
	st.LastAt = timeseq.Time(lastAt)
	return st, replayPos{seg: seg, off: int64(off)}, nil
}

// Compact removes segments wholly covered by the newest snapshot and all
// older snapshots. The active segment is never removed.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapSeq == 0 {
		return nil
	}
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if v, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && v < l.lastSnap.seg {
			if err := os.Remove(filepath.Join(l.opts.Dir, e.Name())); err != nil {
				return err
			}
		}
		if v, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && v < l.snapSeq {
			if err := os.Remove(filepath.Join(l.opts.Dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.fsync()
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.fsync(); err != nil {
		l.f.Close()
		l.f = nil
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}
