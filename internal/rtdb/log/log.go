package log

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rtc/internal/encoding"
	"rtc/internal/faultfs"
	"rtc/internal/timeseq"
)

// Options configures a log directory.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentSize rotates the active segment once it reaches this many
	// bytes. Default 1 MiB.
	SegmentSize int64
	// SnapshotEvery writes a catalog snapshot after every N appends.
	// 0 disables automatic snapshots.
	SnapshotEvery uint64
	// Sync fsyncs after every append (the durable setting; off by default
	// so tests and benchmarks can measure the code path separately).
	Sync bool
	// GroupWindow enables leader-based group commit when Sync is set:
	// instead of one fsync per append, concurrent appends share the open
	// commit batch and the batch leader issues a single fsync once the
	// window elapses (or earlier — full batch, firm append, CloseWindow).
	// 0 (the default) keeps the per-append fsync. See group.go.
	GroupWindow time.Duration
	// GroupMaxBatch caps how many appends one commit batch accumulates
	// before its window closes early (default 64). Only meaningful with
	// GroupWindow > 0.
	GroupMaxBatch int
	// FS is the filesystem the log talks to. Nil means the real one
	// (faultfs.OS); the crash-torture harness injects fault-bearing
	// implementations here.
	FS faultfs.FS
}

func (o *Options) defaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 1 << 20
	}
	if o.GroupMaxBatch <= 0 {
		o.GroupMaxBatch = 64
	}
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
}

// Stats is the log's observability block.
type Stats struct {
	Appends         uint64
	Segments        uint64 // segments created over the log's lifetime
	Snapshots       uint64
	SnapshotErrors  uint64 // automatic snapshots that failed (retried later)
	Heals           uint64 // failed appends healed by truncating the torn frame
	FsyncCount      uint64
	FsyncNanos      uint64 // total time spent in fsync
	FsyncMaxNanos   uint64
	GroupCommits    uint64 // commit batches released by a successful fsync
	GroupedAppends  uint64 // appends whose durability rode a group commit
	GroupBatchMax   uint64 // largest single commit batch
	RecoveredEvents uint64 // events replayed at Open
	TruncatedBytes  int64  // torn tail dropped at Open
}

// ErrCorrupt marks unrecoverable log damage: a record that fails its frame
// check anywhere other than the torn tail of the final segment — a
// bit-flipped middle segment, or a damaged frame with intact records after
// it. Recovery surfaces it instead of silently dropping committed data.
var ErrCorrupt = errors.New("log: corrupt record")

// replayPos addresses a byte position in the segment sequence.
type replayPos struct {
	seg uint64
	off int64
}

// Log is an append-only timed event log over a directory of CRC-checked
// segments. All methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	opts Options
	fs   faultfs.FS
	st   *State

	f        faultfs.File
	segIndex uint64
	segSize  int64

	// err poisons the log: set when the on-disk state can no longer be
	// trusted (fsync failure, unhealable torn append). Every later call
	// returns it; recovery happens by reopening the directory.
	err error

	snapSeq       uint64
	lastSnap      replayPos
	sinceSnapshot uint64

	// segFirstSeq maps each on-disk segment to the sequence number of its
	// first frame — the index ReadSince locates catch-up reads with.
	segFirstSeq map[uint64]uint64
	// tails are the live replication subscriptions Append fans out to.
	tails map[*Tail]struct{}
	// epoch is the persisted fencing epoch (see repl.go).
	epoch uint64

	// Group commit (see group.go): cur is the open batch still accepting
	// joiners, pending the FIFO of batches written but not yet covered by
	// an fsync, durableSeq the newest sequence a successful fsync covered.
	cur        *batch
	pending    []*batch
	durableSeq uint64

	stats Stats
	buf   []byte
}

func segName(i uint64) string  { return fmt.Sprintf("seg-%08d.wal", i) }
func snapName(i uint64) string { return fmt.Sprintf("snap-%08d.snap", i) }

// parseSeq extracts the numeric sequence from names like seg-00000001.wal.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	v, err := parseUint(name[len(prefix) : len(name)-len(suffix)])
	return v, err == nil
}

// Open loads (or creates) a log directory, recovering state by replaying
// the newest loadable snapshot plus every record after it. A torn record at
// the tail of the last segment — the signature of a crash mid-append — is
// truncated away; damage anywhere else is reported as ErrCorrupt.
func Open(opts Options) (*Log, error) {
	opts.defaults()
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	var snaps []uint64
	for _, name := range names {
		if v, ok := parseSeq(name, "seg-", ".wal"); ok {
			segs = append(segs, v)
		}
		if v, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, v)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	l := &Log{opts: opts, fs: opts.FS, st: NewState(), segFirstSeq: map[uint64]uint64{}}
	l.epoch = l.readEpoch()

	// Newest loadable snapshot wins; unreadable ones are skipped (a crash
	// during snapshot write leaves a torn .snap behind — the log is the
	// source of truth, the snapshot only an accelerator).
	pos := replayPos{seg: 1, off: 0}
	for i := len(snaps) - 1; i >= 0; i-- {
		st, p, err := loadSnapshot(l.fs, filepath.Join(opts.Dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		l.st, pos = st, p
		l.snapSeq = snaps[i]
		l.lastSnap = p
		break
	}

	snapEvents := l.st.Events

	if len(segs) == 0 {
		if l.snapSeq != 0 {
			return nil, fmt.Errorf("log: snapshot %d refers to segment %d but no segments exist", l.snapSeq, pos.seg)
		}
		if err := l.openSegment(1, 0); err != nil {
			return nil, err
		}
		l.stats.Segments = 1
		l.segFirstSeq[1] = 1
		l.durableSeq = l.st.Events
		return l, nil
	}

	// Replay from pos across all later segments.
	for i, seg := range segs {
		if seg < pos.seg {
			continue // compacted away behind the snapshot
		}
		start := int64(0)
		if seg == pos.seg {
			start = pos.off
		} else {
			// Replay enters this segment at offset 0, so the next event
			// applied is its first frame.
			l.segFirstSeq[seg] = l.st.Events + 1
		}
		last := i == len(segs)-1
		end, err := l.replaySegment(seg, start, last)
		if err != nil {
			return nil, err
		}
		if last {
			if err := l.openSegment(seg, end); err != nil {
				return nil, err
			}
		}
	}
	if l.f == nil {
		// Every surviving segment predates the snapshot position: the
		// snapshot names a segment that was deleted out from under it.
		return nil, fmt.Errorf("log: segment %d referenced by snapshot is missing", pos.seg)
	}
	l.stats.Segments = uint64(len(segs))
	l.indexSegments(segs, pos, snapEvents)
	// Everything replayed came off disk: the recovered tail is durable.
	l.durableSeq = l.st.Events
	return l, nil
}

// replaySegment applies every valid record of one segment, returning the
// offset just past the last good record. A damaged record is a torn tail —
// truncated away — only when it sits in the final segment AND no intact
// frame follows it; a damaged frame with good records after it lost
// committed data and is surfaced as ErrCorrupt instead of silently
// truncating history.
func (l *Log) replaySegment(seg uint64, start int64, last bool) (int64, error) {
	path := filepath.Join(l.opts.Dir, segName(seg))
	f, err := l.fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if start > size {
		return 0, fmt.Errorf("log: snapshot offset %d past end of %s (%d bytes)", start, segName(seg), size)
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(f)
	off := start
	for {
		payload, n, err := ReadFrame(r)
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			if !last {
				return 0, fmt.Errorf("%w: %s at offset %d (non-final segment)", ErrCorrupt, segName(seg), off)
			}
			intact, serr := l.frameAfter(f, off, size)
			if serr != nil {
				return 0, serr
			}
			if intact {
				return 0, fmt.Errorf("%w: %s at offset %d (intact records follow the damage)", ErrCorrupt, segName(seg), off)
			}
			l.stats.TruncatedBytes = size - off
			if terr := l.fs.Truncate(path, off); terr != nil {
				return 0, terr
			}
			return off, nil
		}
		e, ok := DecodeEvent(payload)
		if !ok {
			return 0, fmt.Errorf("%w: undecodable record in %s at offset %d", ErrCorrupt, segName(seg), off)
		}
		if err := l.st.Apply(e); err != nil {
			return 0, err
		}
		l.stats.RecoveredEvents++
		off += int64(n)
	}
}

// frameAfter reports whether any intact frame sits strictly after a damaged
// record that starts at off — the discriminator between a torn tail (all
// bytes to EOF belong to one partial append) and mid-segment corruption.
func (l *Log) frameAfter(f faultfs.File, off, size int64) (bool, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, err
	}
	tail := make([]byte, size-off)
	if _, err := io.ReadFull(f, tail); err != nil {
		return false, err
	}
	// Offset 0 is the damaged record itself; any later alignment hiding a
	// CRC-valid frame means data past the damage was once committed.
	return ContainsFrame(tail[1:]), nil
}

// openSegment opens segment seg for appending at offset off (creating it
// when absent).
func (l *Log) openSegment(seg uint64, off int64) error {
	f, err := l.fs.OpenWrite(filepath.Join(l.opts.Dir, segName(seg)))
	if err != nil {
		return err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segIndex = seg
	l.segSize = off
	return nil
}

// State returns the log's live state. It is owned by the log: callers must
// treat it as read-only and must not retain it across Append calls.
func (l *Log) State() *State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Err returns the poison error, if the log has failed permanently.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append durably records one event and applies it to the in-memory state.
// The order is validate → write → apply → fsync: a failed write is healed
// by truncating the torn frame (the event is simply not logged and the
// state untouched, so a transient EIO costs one event, not the log), while
// a failed fsync poisons the log — after fsync failure the page cache
// cannot be trusted, so no retry is sound.
//
// In group-commit mode (Sync with a GroupWindow) the fsync is batched:
// Append blocks on a commit ticket and returns once the fsync covering its
// frame completed — the first waiter of a window leads the batch and
// issues one fsync for everyone. AppendTicket is the non-blocking form.
func (l *Log) Append(e Event) error {
	l.mu.Lock()
	if !l.grouped() {
		defer l.mu.Unlock()
		return l.appendUngroupedLocked(e)
	}
	t, lead, err := l.appendGroupedLocked(e, false)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if lead {
		// The blocking caller waits out the window anyway, so it runs the
		// leader inline instead of paying for a goroutine.
		l.lead(t.b)
	}
	return t.Wait()
}

// appendUngroupedLocked is the classic append path — per-append fsync when
// Sync is set, byte- and op-identical to the pre-group-commit log.
func (l *Log) appendUngroupedLocked(e Event) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return errClosed
	}
	if err := l.st.check(e); err != nil {
		return err
	}
	l.buf = AppendFrame(l.buf[:0], EncodeFields(e.fields()...))
	if _, err := l.f.Write(l.buf); err != nil {
		return l.heal(err)
	}
	l.segSize += int64(len(l.buf))
	if err := l.st.Apply(e); err != nil {
		// check passed, so Apply cannot fail; if it somehow does, the
		// frame is already on disk and the state is suspect — poison.
		return l.poisonLocked(err)
	}
	l.stats.Appends++
	if l.opts.Sync {
		if err := l.fsync(); err != nil {
			return l.poisonLocked(fmt.Errorf("log: fsync failed, log poisoned: %w", err))
		}
		// A leftover AppendBatch tail (possible on a Sync log without a
		// window) is covered by this fsync too.
		l.releaseAllLocked(nil)
	}
	if err := l.maintainLocked(); err != nil {
		return err
	}
	l.publishLocked(e)
	return nil
}

// maintainLocked is the post-append housekeeping shared by every append
// path: segment rotation at the size threshold, then the automatic
// snapshot cadence.
func (l *Log) maintainLocked() error {
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotate(); err != nil {
			// The event is durable but the segment boundary is in an
			// unknown state; no further append can land safely.
			return l.poisonLocked(fmt.Errorf("log: rotation failed, log poisoned: %w", err))
		}
	}
	l.sinceSnapshot++
	if l.opts.SnapshotEvery > 0 && l.sinceSnapshot >= l.opts.SnapshotEvery {
		if err := l.snapshotLocked(); err != nil {
			// Snapshots are accelerators, not the source of truth: a
			// failed one (EIO, rename fault) is counted and retried after
			// the next SnapshotEvery appends. The append itself succeeded —
			// unless the segment fsync inside the snapshot poisoned the log
			// while the append's own frames were still waiting on a group
			// commit; then the append fails like its pending tickets.
			l.stats.SnapshotErrors++
			if l.err != nil && l.durableSeq < l.st.Events {
				return l.err
			}
		}
	}
	return nil
}

// heal recovers the active segment after a failed append write: the frame
// may have landed partially, so the segment is truncated back to the last
// good offset and the write cursor restored. On success the log stays
// usable and the caller's event is simply not logged; if the heal itself
// fails the log is poisoned.
func (l *Log) heal(cause error) error {
	path := filepath.Join(l.opts.Dir, segName(l.segIndex))
	if terr := l.fs.Truncate(path, l.segSize); terr != nil {
		return l.poisonLocked(fmt.Errorf("log: append failed (%v) and heal failed, log poisoned: %w", cause, terr))
	}
	if _, serr := l.f.Seek(l.segSize, io.SeekStart); serr != nil {
		return l.poisonLocked(fmt.Errorf("log: append failed (%v) and reseek failed, log poisoned: %w", cause, serr))
	}
	l.stats.Heals++
	return fmt.Errorf("log: append failed (segment healed): %w", cause)
}

func (l *Log) fsync() error {
	t0 := time.Now()
	err := l.f.Sync()
	d := uint64(time.Since(t0).Nanoseconds())
	l.stats.FsyncCount++
	l.stats.FsyncNanos += d
	if d > l.stats.FsyncMaxNanos {
		l.stats.FsyncMaxNanos = d
	}
	if err == nil {
		// The active segment's fsync covers every frame written so far
		// (earlier segments were fsynced when rotation sealed them).
		l.durableSeq = l.st.Events
	}
	return err
}

// rotate seals the active segment (always fsynced: a sealed segment is
// immutable from here on) and starts the next one. The seal fsync covers
// every frame written so far, so pending commit batches release here —
// a batch spanning a rotation never waits past the segment boundary.
func (l *Log) rotate() error {
	if err := l.fsync(); err != nil {
		return err
	}
	l.releaseAllLocked(nil)
	if err := l.f.Close(); err != nil {
		return err
	}
	l.stats.Segments++
	l.segFirstSeq[l.segIndex+1] = l.st.Events + 1
	return l.openSegment(l.segIndex+1, 0)
}

// Snapshot writes a catalog snapshot covering everything appended so far.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.snapshotLocked()
}

func (l *Log) snapshotLocked() error {
	l.sinceSnapshot = 0
	// A snapshot must never reference a log position that is not yet
	// durable: with per-append fsync off, a crash could otherwise drop the
	// segment's unsynced tail while keeping the (always-fsynced) snapshot,
	// leaving it pointing past the end of the segment it replays from.
	if l.f != nil {
		if err := l.fsync(); err != nil {
			return l.poisonLocked(fmt.Errorf("log: fsync failed, log poisoned: %w", err))
		}
		// The segment fsync covers every pending commit batch.
		l.releaseAllLocked(nil)
	}
	pos := replayPos{seg: l.segIndex, off: l.segSize}
	l.snapSeq++
	path := filepath.Join(l.opts.Dir, snapName(l.snapSeq))
	tmp := path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	write := func(fields ...string) {
		w.Write(AppendFrame(nil, EncodeFields(fields...)))
	}
	write("SNAPSHOT",
		encoding.FieldUint(pos.seg), encoding.FieldUint(uint64(pos.off)),
		encoding.FieldUint(l.st.Events), encoding.FieldUint(uint64(l.st.LastAt)))
	dump := l.st.dump()
	for _, e := range dump {
		write(e.fields()...)
	}
	write("COMMIT", encoding.FieldUint(uint64(len(dump))))
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, path); err != nil {
		return err
	}
	l.lastSnap = pos
	l.stats.Snapshots++
	return nil
}

// loadSnapshot reads one snapshot file into a fresh state.
func loadSnapshot(fs faultfs.FS, path string) (*State, replayPos, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, replayPos{}, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	head, _, err := ReadFrame(r)
	if err != nil {
		return nil, replayPos{}, fmt.Errorf("log: unreadable snapshot header: %w", err)
	}
	fields, ok := DecodeFields(head)
	if !ok || len(fields) != 5 || fields[0] != "SNAPSHOT" {
		return nil, replayPos{}, fmt.Errorf("log: bad snapshot header")
	}
	seg, err1 := parseUint(fields[1])
	off, err2 := parseUint(fields[2])
	events, err3 := parseUint(fields[3])
	lastAt, err4 := parseUint(fields[4])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return nil, replayPos{}, fmt.Errorf("log: bad snapshot header fields")
	}

	st := NewState()
	n := uint64(0)
	for {
		payload, _, err := ReadFrame(r)
		if err != nil {
			return nil, replayPos{}, fmt.Errorf("log: snapshot truncated before commit")
		}
		fields, ok := DecodeFields(payload)
		if !ok {
			return nil, replayPos{}, fmt.Errorf("log: undecodable snapshot record")
		}
		if fields[0] == "COMMIT" {
			want, err := parseUint(fields[1])
			if err != nil || want != n {
				return nil, replayPos{}, fmt.Errorf("log: snapshot commit count mismatch")
			}
			break
		}
		e, ok := eventFromFields(fields)
		if !ok {
			return nil, replayPos{}, fmt.Errorf("log: bad snapshot event")
		}
		if err := st.Apply(e); err != nil {
			return nil, replayPos{}, err
		}
		n++
	}
	// The dump collapses catalog overwrites, so the replay counters are
	// restored from the header rather than recomputed.
	st.Events = events
	st.LastAt = timeseq.Time(lastAt)
	return st, replayPos{seg: seg, off: int64(off)}, nil
}

// Compact removes segments wholly covered by the newest snapshot and all
// older snapshots. The active segment is never removed.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.snapSeq == 0 {
		return nil
	}
	names, err := l.fs.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if v, ok := parseSeq(name, "seg-", ".wal"); ok && v < l.lastSnap.seg {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, name)); err != nil {
				return err
			}
			delete(l.segFirstSeq, v)
		}
		if v, ok := parseSeq(name, "snap-", ".snap"); ok && v < l.snapSeq {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync forces an fsync of the active segment. In group-commit mode it is
// the synchronous commit point: every pending ticket resolves before Sync
// returns — nil on success, the poison error if the fsync failed.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return nil
	}
	if err := l.fsync(); err != nil {
		return l.poisonLocked(fmt.Errorf("log: fsync failed, log poisoned: %w", err))
	}
	l.releaseAllLocked(nil)
	return nil
}

// Close syncs and closes the active segment. Pending commit tickets
// resolve with the final fsync's outcome — none is left hanging.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if l.err != nil {
		l.f.Close()
		l.f = nil
		return l.err
	}
	if err := l.fsync(); err != nil {
		l.releaseAllLocked(err)
		l.f.Close()
		l.f = nil
		return err
	}
	l.releaseAllLocked(nil)
	err := l.f.Close()
	l.f = nil
	return err
}
