package log

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"rtc/internal/faultfs"
)

// waitGoroutines polls until the goroutine count sinks back to at most
// base+slack or the deadline passes, returning the final count — the same
// leak check the client package uses: real leaks hold the count elevated
// for minutes, runtime housekeeping for milliseconds.
func waitGoroutines(t *testing.T, base int, slack int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGroupCommitHammer: 64 concurrent writers over a real commit window,
// with an antagonist issuing Sync and CloseWindow mid-run. Durability must
// be prefix-closed at every Wait return (DurableSeq covers the ticket's
// seq), every append must land exactly once, every grouped append must be
// accounted to a group commit, and the run must shed all its leader
// goroutines. Run under -race via `make race-gc`.
func TestGroupCommitHammer(t *testing.T) {
	const writers, perWriter = 64, 32
	base := runtime.NumGoroutine()
	mem := faultfs.NewMem(42)
	l, err := Open(Options{
		Dir: "wal", FS: mem, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
		Sync: true, GroupWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ptk, err := l.AppendTicket(Image("temp", 5), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ptk.Wait(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var antagonist sync.WaitGroup
	antagonist.Add(1)
	go func() {
		defer antagonist.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
			if i%2 == 0 {
				l.CloseWindow()
			} else if err := l.Sync(); err != nil {
				t.Errorf("mid-run sync: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	seqs := make(chan uint64, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := Sample(0, "temp", "21.5")
				if w%2 == 0 {
					// Blocking form: leader duty runs inline.
					if err := l.Append(e); err != nil {
						t.Errorf("writer %d append %d: %v", w, i, err)
						return
					}
					seqs <- 0 // seq not exposed by Append; counted only
				} else {
					tk, err := l.AppendTicket(e, i%8 == 7)
					if err != nil {
						t.Errorf("writer %d ticket %d: %v", w, i, err)
						return
					}
					if err := tk.Wait(); err != nil {
						t.Errorf("writer %d wait %d: %v", w, i, err)
						return
					}
					if ds := l.DurableSeq(); ds < tk.Seq() {
						t.Errorf("ticket seq %d resolved nil with DurableSeq %d: durability not prefix-closed", tk.Seq(), ds)
						return
					}
					seqs <- tk.Seq()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	antagonist.Wait()
	close(seqs)
	if t.Failed() {
		return
	}

	landed := 0
	seen := make(map[uint64]bool)
	for s := range seqs {
		landed++
		if s == 0 {
			continue
		}
		if seen[s] {
			t.Fatalf("seq %d acknowledged twice", s)
		}
		seen[s] = true
	}
	if landed != writers*perWriter {
		t.Fatalf("%d appends returned, want %d", landed, writers*perWriter)
	}
	total := uint64(writers*perWriter) + 1 // + prologue
	if got := l.State().Events; got != total {
		t.Fatalf("log holds %d events, want %d", got, total)
	}
	st := l.Stats()
	if st.GroupedAppends != st.Appends {
		t.Fatalf("GroupedAppends=%d != Appends=%d: some append's durability was never accounted to a commit",
			st.GroupedAppends, st.Appends)
	}
	if st.GroupCommits == 0 || st.GroupCommits > st.Appends {
		t.Fatalf("GroupCommits=%d out of range for %d appends", st.GroupCommits, st.Appends)
	}
	if st.GroupBatchMax == 0 || st.GroupBatchMax > uint64(writers) {
		t.Fatalf("GroupBatchMax=%d out of range for %d writers", st.GroupBatchMax, writers)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := waitGoroutines(t, base, 4); n > base+4 {
		t.Fatalf("goroutines after hammer: %d, baseline %d — leader leak", n, base)
	}
}

// TestGroupCommitCloseMidHammer: Close lands in the middle of a 16-writer
// storm. Every in-flight ticket must resolve (Close's final fsync commits
// the tail; later appends are refused), every nil-resolved seq must be in
// the recovered log, and no goroutine may outlive the close.
func TestGroupCommitCloseMidHammer(t *testing.T) {
	const writers = 16
	base := runtime.NumGoroutine()
	mem := faultfs.NewMem(43)
	l, err := Open(Options{
		Dir: "wal", FS: mem, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
		Sync: true, GroupWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ptk, err := l.AppendTicket(Image("temp", 5), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ptk.Wait(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	acked := make(chan uint64, 1<<16)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, err := l.AppendTicket(Sample(0, "temp", "21.5"), false)
				if err != nil {
					return // closed (or about to be)
				}
				if tk.Wait() != nil {
					return
				}
				acked <- tk.Seq()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(acked)

	var maxAcked uint64
	for s := range acked {
		if s > maxAcked {
			maxAcked = s
		}
	}
	l2, err := Open(Options{Dir: "wal", FS: mem, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.State().Events; got < maxAcked {
		t.Fatalf("recovered %d events but seq %d was acknowledged before Close", got, maxAcked)
	}
	if n := waitGoroutines(t, base, 4); n > base+4 {
		t.Fatalf("goroutines after mid-run close: %d, baseline %d — leak", n, base)
	}
}
