package rtdb

import (
	"testing"
	"testing/quick"

	"rtc/internal/timeseq"
)

func TestLifespanNormalization(t *testing.T) {
	l := NewLifespan(Interval{5, 7}, Interval{1, 2}, Interval{3, 4}, Interval{9, 8})
	// [1,2] and [3,4] are adjacent → merge; [9,8] is empty → drop.
	want := Lifespan{{1, 4}, {5, 7}}
	// …and [1,4] is adjacent to [5,7] → everything merges to [1,7].
	want = Lifespan{{1, 7}}
	if !l.Equal(want) {
		t.Fatalf("normalized = %v, want %v", l, want)
	}
}

func TestLifespanContains(t *testing.T) {
	l := NewLifespan(Interval{2, 4}, Interval{8, 8}, Interval{20, timeseq.Infinity})
	for _, c := range []struct {
		t    timeseq.Time
		want bool
	}{
		{0, false}, {2, true}, {4, true}, {5, false}, {8, true}, {9, false},
		{19, false}, {20, true}, {1 << 40, true},
	} {
		if got := l.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestLifespanUnionIntersect(t *testing.T) {
	a := NewLifespan(Interval{0, 5}, Interval{10, 15})
	b := NewLifespan(Interval{4, 11})
	u := a.Union(b)
	if !u.Equal(Lifespan{{0, 15}}) {
		t.Errorf("union = %v", u)
	}
	i := a.Intersect(b)
	if !i.Equal(Lifespan{{4, 5}, {10, 11}}) {
		t.Errorf("intersect = %v", i)
	}
}

func TestLifespanComplement(t *testing.T) {
	a := NewLifespan(Interval{2, 5})
	c := a.Complement()
	if !c.Equal(Lifespan{{0, 1}, {6, timeseq.Infinity}}) {
		t.Errorf("complement = %v", c)
	}
	if !Always().Complement().Equal(Lifespan(nil)) {
		t.Errorf("complement of Always = %v", Always().Complement())
	}
	if !NewLifespan().Complement().Equal(Always()) {
		t.Errorf("complement of ∅ = %v", NewLifespan().Complement())
	}
	// Involution.
	if !a.Complement().Complement().Equal(a) {
		t.Errorf("double complement = %v", a.Complement().Complement())
	}
}

// The boolean-algebra claim of §5.1.2, checked pointwise on random
// lifespans: membership respects ∪, ∩ and ¬, and De Morgan holds.
func TestLifespanBooleanAlgebra(t *testing.T) {
	mk := func(xs []uint8) Lifespan {
		var ivals []Interval
		for i := 0; i+1 < len(xs); i += 2 {
			lo, hi := timeseq.Time(xs[i]%64), timeseq.Time(xs[i+1]%64)
			if lo <= hi {
				ivals = append(ivals, Interval{lo, hi})
			}
		}
		return NewLifespan(ivals...)
	}
	f := func(xs, ys []uint8, probe uint8) bool {
		a, b := mk(xs), mk(ys)
		p := timeseq.Time(probe % 80)
		if a.Union(b).Contains(p) != (a.Contains(p) || b.Contains(p)) {
			return false
		}
		if a.Intersect(b).Contains(p) != (a.Contains(p) && b.Contains(p)) {
			return false
		}
		if a.Complement().Contains(p) != !a.Contains(p) {
			return false
		}
		// De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b.
		return a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInstantAndString(t *testing.T) {
	i := Instant(7)
	if !i.Contains(7) || i.Contains(6) || i.Contains(8) {
		t.Error("Instant broken")
	}
	if s := i.String(); s != "{7}" {
		t.Errorf("String = %q", s)
	}
	if s := NewLifespan().String(); s != "∅" {
		t.Errorf("empty String = %q", s)
	}
}
