package rtdb

import (
	"fmt"
	"strconv"
	"testing"

	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

// tempRead simulates the external world: temperature 20 + t/10.
func tempRead(t timeseq.Time) Value {
	return strconv.Itoa(20 + int(t/10))
}

func newTestDB() (*vtime.Scheduler, *DB) {
	s := vtime.New()
	db := New(s)
	db.AddInvariant("limit", "22")
	db.AddImage(&ImageObject{Name: "temp", Period: 5, Read: tempRead})
	db.AddDerived(&DerivedObject{
		Name:    "status",
		Sources: []string{"temp", "limit"},
		Derive: func(src map[string]Value) Value {
			t, _ := strconv.Atoi(src["temp"])
			l, _ := strconv.Atoi(src["limit"])
			if t > l {
				return "high"
			}
			return "ok"
		},
	})
	return s, db
}

func TestSamplingAndArchival(t *testing.T) {
	s, db := newTestDB()
	s.RunUntil(23)
	img, _ := db.Image("temp")
	h := img.History()
	// Samples at 0, 5, 10, 15, 20.
	if len(h) != 5 {
		t.Fatalf("history = %v", h)
	}
	for i, smp := range h {
		if smp.At != timeseq.Time(i*5) {
			t.Fatalf("sample %d at %d", i, smp.At)
		}
		if smp.Value != tempRead(smp.At) {
			t.Fatalf("sample value %q at %d", smp.Value, smp.At)
		}
	}
	// Archival lookup: the snapshot current at time 12 was taken at 10.
	smp, ok := img.At(12)
	if !ok || smp.At != 10 {
		t.Fatalf("At(12) = %+v, %v", smp, ok)
	}
	if _, ok := img.Latest(); !ok {
		t.Fatal("no latest sample")
	}
}

func TestRederiveTimestamps(t *testing.T) {
	s, db := newTestDB()
	s.RunUntil(12)
	if err := db.Rederive("status"); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Derived("status")
	v, stamp, ok := d.Current()
	if !ok {
		t.Fatal("not derived")
	}
	// temp at 10 is 21 ≤ 22 → "ok"; stamp is the oldest source valid time,
	// i.e. the temp sample at 10 (the invariant carries the current time).
	if v != "ok" || stamp != 10 {
		t.Fatalf("Current = (%q, %d)", v, stamp)
	}
	s.RunUntil(31)
	if err := db.Rederive("status"); err != nil {
		t.Fatal(err)
	}
	v, stamp, _ = d.Current()
	// temp at 30 is 23 > 22 → "high".
	if v != "high" || stamp != 30 {
		t.Fatalf("Current = (%q, %d)", v, stamp)
	}
}

func TestRederiveErrors(t *testing.T) {
	s := vtime.New()
	db := New(s)
	if err := db.Rederive("nope"); err == nil {
		t.Error("unknown derived accepted")
	}
	db.AddDerived(&DerivedObject{Name: "d", Sources: []string{"ghost"}, Derive: func(map[string]Value) Value { return "" }})
	if err := db.Rederive("d"); err == nil {
		t.Error("unknown source accepted")
	}
}

// Rules: immediate fires inside the triggering event; deferred at the
// chronon's quiescent point; concurrent in between.
func TestFiringModes(t *testing.T) {
	s := vtime.New()
	db := New(s)
	var order []string
	db.AddRule(Rule{
		Name: "imm", On: "e", Mode: Immediate,
		Then: func(db *DB, e Event) { order = append(order, "imm") },
	})
	db.AddRule(Rule{
		Name: "con", On: "e", Mode: Concurrent,
		Then: func(db *DB, e Event) { order = append(order, "con") },
	})
	db.AddRule(Rule{
		Name: "def", On: "e", Mode: Deferred,
		Then: func(db *DB, e Event) { order = append(order, "def") },
	})
	s.At(3, 1, func() {
		db.Raise(Event{Kind: "e", At: s.Now()})
		order = append(order, "after-raise")
	})
	s.Drain()
	want := []string{"imm", "after-raise", "con", "def"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if len(db.FiringLog()) != 3 {
		t.Errorf("firing log = %v", db.FiringLog())
	}
}

func TestRuleCondition(t *testing.T) {
	s := vtime.New()
	db := New(s)
	fired := 0
	db.AddRule(Rule{
		Name: "guarded", On: "e", Mode: Immediate,
		If:   func(db *DB, e Event) bool { return e.Attr["go"] == "yes" },
		Then: func(db *DB, e Event) { fired++ },
	})
	s.At(0, 0, func() {
		db.Raise(Event{Kind: "e", Attr: map[string]Value{"go": "no"}})
		db.Raise(Event{Kind: "e", Attr: map[string]Value{"go": "yes"}})
	})
	s.Drain()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

// Rule actions may raise further events (forward chaining); runaway
// cascades are caught.
func TestRuleCascadeAndCap(t *testing.T) {
	s := vtime.New()
	db := New(s)
	depth := 0
	db.AddRule(Rule{
		Name: "chain", On: "tick", Mode: Immediate,
		Then: func(db *DB, e Event) {
			depth++
			if depth < 3 {
				db.Raise(Event{Kind: "tick"})
			}
		},
	})
	s.At(0, 0, func() { db.Raise(Event{Kind: "tick"}) })
	s.Drain()
	if depth != 3 {
		t.Errorf("cascade depth = %d, want 3", depth)
	}

	// Non-terminating cascade panics with a diagnostic.
	db2 := New(vtime.New())
	db2.AddRule(Rule{
		Name: "loop", On: "x", Mode: Immediate,
		Then: func(db *DB, e Event) { db.Raise(Event{Kind: "x"}) },
	})
	defer func() {
		if recover() == nil {
			t.Error("runaway cascade did not panic")
		}
	}()
	db2.Raise(Event{Kind: "x"})
}

// The paper's example rule: "on MonthChange if true then del(Date <
// CurrentDate)" — here: each sampling event of temp updates a derived
// object via an immediate rule, the execution model §5.1.2 implies for
// image objects.
func TestSampleTriggersRederive(t *testing.T) {
	s, db := newTestDB()
	db.AddRule(Rule{
		Name: "rederive-status", On: "sample:temp", Mode: Immediate,
		Then: func(db *DB, e Event) { _ = db.Rederive("status") },
	})
	s.RunUntil(31)
	d, _ := db.Derived("status")
	v, stamp, ok := d.Current()
	if !ok || v != "high" || stamp != 30 {
		t.Fatalf("Current = (%q, %d, %v)", v, stamp, ok)
	}
}

func TestConsistencyMetrics(t *testing.T) {
	if Age(10, 4) != 6 || Age(4, 10) != 0 {
		t.Error("Age broken")
	}
	if Dispersion(3, 9) != 6 || Dispersion(9, 3) != 6 {
		t.Error("Dispersion broken")
	}
	if !AbsolutelyConsistent(10, []timeseq.Time{8, 9, 10}, 2) {
		t.Error("absolute consistency false negative")
	}
	if AbsolutelyConsistent(10, []timeseq.Time{5}, 2) {
		t.Error("absolute consistency false positive")
	}
	if !RelativelyConsistent([]timeseq.Time{5, 6, 7}, 2) {
		t.Error("relative consistency false negative")
	}
	if RelativelyConsistent([]timeseq.Time{1, 9}, 2) {
		t.Error("relative consistency false positive")
	}
	if !RelativelyConsistent(nil, 0) {
		t.Error("empty set should be relatively consistent")
	}
}

func TestDBConsistency(t *testing.T) {
	s, db := newTestDB()
	db.AddImage(&ImageObject{Name: "pressure", Period: 9, Read: func(t timeseq.Time) Value {
		return fmt.Sprintf("%d", 100+t)
	}})
	s.RunUntil(10)
	// temp sampled at 10, pressure at 9: ages 0 and 1.
	if !db.AbsoluteConsistency(1) {
		t.Error("ages ≤ 1 flagged inconsistent")
	}
	s.RunUntil(13)
	// Ages 3 and 4 now.
	if db.AbsoluteConsistency(2) {
		t.Error("stale ages passed")
	}
	if !db.RelativeConsistency(1) {
		t.Error("dispersion 1 flagged")
	}
	db.AddImage(&ImageObject{Name: "late", Period: 100, Read: func(timeseq.Time) Value { return "x" }})
	s.RunUntil(40)
	// temp at 40, pressure at 36, late at 13 (its first sample fired when
	// added, at time 13): dispersion 27.
	if db.RelativeConsistency(20) {
		t.Error("large dispersion passed")
	}
}
