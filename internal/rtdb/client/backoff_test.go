package client

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: one seed → one schedule, replayed exactly. The
// torture harness and the unit suites rely on reproducible retry timing.
func TestBackoffDeterministic(t *testing.T) {
	const steps = 64
	a := newBackoff(42, 10*time.Millisecond, time.Second)
	b := newBackoff(42, 10*time.Millisecond, time.Second)
	for i := 0; i < steps; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

// TestBackoffSeedsDecorrelate: two seeds → two different schedules. This is
// the whole point of the jitter — clients that lost the same primary must
// not redial in lockstep.
func TestBackoffSeedsDecorrelate(t *testing.T) {
	const steps = 64
	a := newBackoff(1, 10*time.Millisecond, time.Second)
	b := newBackoff(2, 10*time.Millisecond, time.Second)
	same := 0
	for i := 0; i < steps; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == steps {
		t.Fatalf("seeds 1 and 2 produced identical %d-step schedules", steps)
	}
}

// TestBackoffBounds: every pause stays within [base, max], and the walk
// actually leaves the base (it grows toward max rather than sitting still).
func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 200*time.Millisecond
	bo := newBackoff(7, base, max)
	grew := false
	for i := 0; i < 256; i++ {
		d := bo.Next()
		if d < base || d > max {
			t.Fatalf("step %d: pause %v outside [%v, %v]", i, d, base, max)
		}
		if d > base {
			grew = true
		}
	}
	if !grew {
		t.Fatal("256 steps never left the base pause")
	}
}

// TestBackoffDegenerateRanges: a zero base falls back to a sane default and
// max below base is clamped up, so a misconfigured client still terminates.
func TestBackoffDegenerateRanges(t *testing.T) {
	bo := newBackoff(3, 0, 0)
	for i := 0; i < 16; i++ {
		if d := bo.Next(); d <= 0 {
			t.Fatalf("degenerate backoff produced non-positive pause %v", d)
		}
	}
	bo = newBackoff(3, 100*time.Millisecond, time.Millisecond)
	for i := 0; i < 16; i++ {
		if d := bo.Next(); d != 100*time.Millisecond {
			t.Fatalf("max<base should pin to base; got %v", d)
		}
	}
}
