// Package client is the Go client for the rtwire protocol: dial an rtdbd
// server, inject timed samples, issue aperiodic queries under the §4.1
// deadline discipline, read history as-of a chronon, and fetch metrics
// snapshots.
//
// Deadline translation happens here: the caller states a deadline relative
// to the moment Query is called (the client's issue instant); the client
// measures the wall time it burns before each transmission — queueing,
// redials, retries — in client chronons (Options.ChrononDuration per
// chronon) and ships that as the Elapsed field, so the server can anchor
// the remaining budget at the arrival chronon. A query whose budget is
// gone when it arrives is rejected unevaluated and accounted as a miss by
// the server (Result.ExpiredOnArrival); retries therefore consume the
// deadline instead of silently extending it. Client-relative and
// server-absolute chronons never mix: the wire carries only relative
// quantities, and every absolute chronon in a Result is the server's.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// Options tunes a client. The zero value is serviceable.
type Options struct {
	// Name identifies the client in the Hello frame.
	Name string
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip (default 30s).
	CallTimeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// RetryAttempts is how many times Dial (and a Query that hits a dead
	// connection) retries after the first failure (default 2).
	RetryAttempts int
	// RetryBackoff is the initial pause between retries, doubling each
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// ChrononDuration is the wall-clock length of one client chronon used
	// for deadline translation (default 1ms). A query's Elapsed field is
	// time-since-issue divided by this.
	ChrononDuration time.Duration
}

func (o *Options) defaults() {
	if o.Name == "" {
		o.Name = "rtdb-client"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.RetryAttempts < 0 {
		o.RetryAttempts = 0
	} else if o.RetryAttempts == 0 {
		o.RetryAttempts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.ChrononDuration <= 0 {
		o.ChrononDuration = time.Millisecond
	}
}

// Errors reported by the client.
var (
	// ErrClosed: Close was called.
	ErrClosed = errors.New("client: closed")
	// ErrConnDown: the connection died mid-call and retries ran out.
	ErrConnDown = errors.New("client: connection down")
	// ErrBackpressure mirrors the server's session-queue rejection; for
	// deadline-carrying queries the server accounted a miss.
	ErrBackpressure = errors.New("client: server backpressure")
	// ErrTimeout: no response within CallTimeout.
	ErrTimeout = errors.New("client: call timed out")
)

// Query is one aperiodic query under the client-relative deadline
// discipline.
type Query struct {
	Query     string
	Candidate string
	Kind      deadline.Kind
	// Deadline is relative to the moment Client.Query is called.
	Deadline  timeseq.Time
	MinUseful uint64
	// Decay is the usefulness-decay shape (soft deadlines).
	Decay rtwire.Decay
}

// Result is the server's answer.
type Result struct {
	Answers   []string
	Match     bool
	Useful    uint64
	Missed    bool
	Evaluated bool
	// ExpiredOnArrival: the query's budget was consumed before the server
	// saw it; it was accounted a miss without evaluation.
	ExpiredOnArrival bool
	// Issue and Served are server chronons.
	Issue, Served timeseq.Time
}

// Stats counts client-side events.
type Stats struct {
	Redials      atomic.Uint64
	Backpressure atomic.Uint64 // sample submissions bounced by the server
}

// Client is a connection to an rtdbd server. It is safe for concurrent
// use; responses are matched to callers by request id.
type Client struct {
	addr string
	opt  Options

	// Session is the server session index this connection was mapped to.
	Session uint64

	Stats Stats

	ids atomic.Uint64

	mu     sync.Mutex // guards conn/bw and (re)dials
	conn   net.Conn
	bw     *bufio.Writer
	gen    int // bumped on every successful redial
	closed bool

	pmu     sync.Mutex
	pending map[uint64]chan any
}

// Dial connects and performs the Hello/Welcome handshake, retrying per
// Options.
func Dial(addr string, opt Options) (*Client, error) {
	opt.defaults()
	c := &Client{addr: addr, opt: opt, pending: make(map[uint64]chan any)}
	var err error
	backoff := opt.RetryBackoff
	for attempt := 0; attempt <= opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		c.mu.Lock()
		err = c.connectLocked()
		c.mu.Unlock()
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w", addr, err)
}

// connectLocked dials and handshakes. Caller holds mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
	if err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
	if _, err := conn.Write(rtwire.Hello{Client: c.opt.Name}.Encode()); err != nil {
		conn.Close()
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	br := bufio.NewReader(conn)
	f, err := rtwire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("handshake read: %w", err)
	}
	msg, err := rtwire.Decode(f)
	if err != nil {
		conn.Close()
		return fmt.Errorf("handshake decode: %w", err)
	}
	switch m := msg.(type) {
	case rtwire.Welcome:
		c.Session = m.Session
	case rtwire.Err:
		conn.Close()
		return m
	default:
		conn.Close()
		return fmt.Errorf("handshake: unexpected %s frame", f.Kind)
	}
	_ = conn.SetReadDeadline(time.Time{})
	c.conn, c.bw = conn, bufio.NewWriter(conn)
	c.gen++
	gen := c.gen
	go c.readLoop(conn, br, gen)
	return nil
}

// readLoop dispatches incoming frames to waiting callers until the
// connection dies.
func (c *Client) readLoop(conn net.Conn, br *bufio.Reader, gen int) {
	defer c.failPending(gen)
	for {
		f, err := rtwire.ReadFrame(br)
		if err != nil {
			return
		}
		msg, err := rtwire.Decode(f)
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case rtwire.Result:
			c.deliver(m.ID, m)
		case rtwire.AsOfResult:
			c.deliver(m.ID, m)
		case rtwire.Metrics:
			c.deliver(m.ID, m)
		case rtwire.Flushed:
			c.deliver(m.ID, m)
		case rtwire.Err:
			if !c.deliver(m.ID, m) && m.Code == rtwire.CodeBackpressure {
				// A bounced fire-and-forget sample.
				c.Stats.Backpressure.Add(1)
			}
		case rtwire.Bye:
			return
		}
	}
}

// deliver hands a response to its waiting caller.
func (c *Client) deliver(id uint64, msg any) bool {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if ok {
		ch <- msg
	}
	return ok
}

// failPending wakes every caller of the dead connection generation.
func (c *Client) failPending(gen int) {
	c.mu.Lock()
	current := c.gen == gen
	if current && c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
	if !current {
		return
	}
	c.pmu.Lock()
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- error(ErrConnDown)
	}
	c.pmu.Unlock()
}

// send writes one frame. redial controls whether a dead connection is
// re-established first.
func (c *Client) send(frame []byte, redial bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.conn == nil {
		if !redial {
			return ErrConnDown
		}
		if err := c.connectLocked(); err != nil {
			return fmt.Errorf("%w: %v", ErrConnDown, err)
		}
		c.Stats.Redials.Add(1)
	}
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
	if _, err := c.bw.Write(frame); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	return nil
}

// call sends an id-carrying frame and waits for its response.
func (c *Client) call(id uint64, frame []byte) (any, error) {
	ch := make(chan any, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()
	if err := c.send(frame, true); err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(c.opt.CallTimeout)
	defer timer.Stop()
	select {
	case msg := <-ch:
		if err, ok := msg.(error); ok {
			if we, isWire := msg.(rtwire.Err); !isWire || we.Code != rtwire.CodeBackpressure {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrBackpressure, msg)
		}
		return msg, nil
	case <-timer.C:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, ErrTimeout
	}
}

// nextID allocates a request id (never 0; 0 marks connection-level Errs).
func (c *Client) nextID() uint64 { return c.ids.Add(1) }

// Query issues one aperiodic query. The deadline budget starts now; every
// retry re-stamps the consumed chronons, so time lost to redials shrinks
// the server-side remainder instead of resetting it.
func (c *Client) Query(q Query) (Result, error) {
	issue := time.Now()
	backoff := c.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		id := c.nextID()
		wq := rtwire.Query{
			ID: id, Query: q.Query, Candidate: q.Candidate,
			Kind: q.Kind, Deadline: q.Deadline,
			Elapsed:   timeseq.Time(time.Since(issue) / c.opt.ChrononDuration),
			MinUseful: q.MinUseful, Decay: q.Decay,
		}
		msg, err := c.call(id, wq.Encode())
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrConnDown) {
				continue // redial consumed budget; try again with new Elapsed
			}
			if errors.Is(err, ErrBackpressure) {
				// The server accounted the rejection; report it like the
				// in-process session API does.
				return Result{Missed: q.Kind != deadline.None}, err
			}
			return Result{}, err
		}
		r, ok := msg.(rtwire.Result)
		if !ok {
			return Result{}, fmt.Errorf("client: unexpected response %T", msg)
		}
		return Result{
			Answers: r.Answers, Match: r.Match, Useful: r.Useful,
			Missed: r.Missed, Evaluated: r.Evaluated,
			ExpiredOnArrival: r.ExpiredOnArrival,
			Issue:            r.Issue, Served: r.Served,
		}, nil
	}
	return Result{}, lastErr
}

// InjectSample submits one timed sensor sample, fire-and-forget. A
// server-side rejection arrives asynchronously and is counted in
// Stats.Backpressure.
func (c *Client) InjectSample(image, value string) error {
	return c.send(rtwire.Sample{ID: c.nextID(), Image: image, Value: value}.Encode(), true)
}

// AsOf reads an image object's value as of server chronon at, served from
// the published history snapshot. The returned horizon is the chronon
// through which as-of reads are current.
func (c *Client) AsOf(image string, at timeseq.Time) (value string, ok bool, horizon timeseq.Time, err error) {
	id := c.nextID()
	msg, err := c.call(id, rtwire.AsOf{ID: id, Image: image, At: at}.Encode())
	if err != nil {
		return "", false, 0, err
	}
	r, isR := msg.(rtwire.AsOfResult)
	if !isR {
		return "", false, 0, fmt.Errorf("client: unexpected response %T", msg)
	}
	return r.Value, r.OK, r.Horizon, nil
}

// Metrics fetches the server's metrics snapshot as ordered name/value
// pairs (server rows first, then the net_* wire rows).
func (c *Client) Metrics() (rtwire.Metrics, error) {
	id := c.nextID()
	msg, err := c.call(id, rtwire.MetricsReq{ID: id}.Encode())
	if err != nil {
		return rtwire.Metrics{}, err
	}
	m, ok := msg.(rtwire.Metrics)
	if !ok {
		return rtwire.Metrics{}, fmt.Errorf("client: unexpected response %T", msg)
	}
	return m, nil
}

// Flush blocks until everything this connection submitted before it has
// been applied by the server.
func (c *Client) Flush() error {
	id := c.nextID()
	msg, err := c.call(id, rtwire.Flush{ID: id}.Encode())
	if err != nil {
		return err
	}
	if _, ok := msg.(rtwire.Flushed); !ok {
		return fmt.Errorf("client: unexpected response %T", msg)
	}
	return nil
}

// Close announces an orderly close and tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
		_, _ = c.conn.Write(rtwire.Bye{Reason: "close"}.Encode())
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
