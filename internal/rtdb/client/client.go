// Package client is the Go client for the rtwire protocol: dial an rtdbd
// server, inject timed samples, issue aperiodic queries under the §4.1
// deadline discipline, read history as-of a chronon, and fetch metrics
// snapshots.
//
// Deadline translation happens here: the caller states a deadline relative
// to the moment Query is called (the client's issue instant); the client
// measures the wall time it burns before each transmission — queueing,
// redials, retries — in client chronons (Options.ChrononDuration per
// chronon) and ships that as the Elapsed field, so the server can anchor
// the remaining budget at the arrival chronon. A query whose budget is
// gone when it arrives is rejected unevaluated and accounted as a miss by
// the server (Result.ExpiredOnArrival); retries therefore consume the
// deadline instead of silently extending it. Client-relative and
// server-absolute chronons never mix: the wire carries only relative
// quantities, and every absolute chronon in a Result is the server's.
//
// Failover: the address may be a comma-separated list. On connection loss
// the client rotates through the list with decorrelated-jitter backoff,
// re-stamping consumed chronons into the deadline budget exactly as a
// redial does. A standby answers soft and deadline-less queries (counted
// as degraded server-side) and refuses writes and firm queries with
// CodeReadOnly, which also rotates the client onward in search of the
// primary. Fencing: the client remembers the highest epoch it has seen in
// any Welcome or PromoteInfo and refuses to connect to a node announcing
// an older one — a deposed primary cannot recapture its former clients.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultnet"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// Options tunes a client. The zero value is serviceable.
type Options struct {
	// Name identifies the client in the Hello frame.
	Name string
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip (default 30s).
	CallTimeout time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// RetryAttempts is how many times Dial (and a Query that hits a dead
	// connection) retries after the first failure (default 2).
	RetryAttempts int
	// RetryBackoff is the base pause between retries (default 50ms). The
	// actual pauses walk randomly between it and RetryBackoffMax with
	// decorrelated jitter, so a fleet of clients that lost the same
	// primary does not redial in lockstep.
	RetryBackoff time.Duration
	// RetryBackoffMax caps one retry pause (default 1s).
	RetryBackoffMax time.Duration
	// Seed makes the jittered retry schedule reproducible; 0 derives one
	// from the wall clock.
	Seed uint64
	// HeartbeatInterval paces liveness beacons on an idle connection: the
	// client sends a Heartbeat after this much inbound silence and closes
	// the connection after 3× of it, so a silently dead peer is detected
	// in bounded time instead of hanging until CallTimeout. Default 15s;
	// negative disables heartbeats.
	HeartbeatInterval time.Duration
	// ChrononDuration is the wall-clock length of one client chronon used
	// for deadline translation (default 1ms). A query's Elapsed field is
	// time-since-issue divided by this.
	ChrononDuration time.Duration
	// Dialer makes connections (default faultnet.OS — a real TCP dial).
	// Torture tests pass a faultnet fabric endpoint to inject partitions,
	// cuts, stalls, and corruption under the client deterministically.
	Dialer faultnet.Dialer
}

func (o *Options) defaults() {
	if o.Name == "" {
		o.Name = "rtdb-client"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.RetryAttempts < 0 {
		o.RetryAttempts = 0
	} else if o.RetryAttempts == 0 {
		o.RetryAttempts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano())
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 15 * time.Second
	}
	if o.ChrononDuration <= 0 {
		o.ChrononDuration = time.Millisecond
	}
	if o.Dialer == nil {
		o.Dialer = faultnet.OS{}
	}
}

// Errors reported by the client.
var (
	// ErrClosed: Close was called.
	ErrClosed = errors.New("client: closed")
	// ErrConnDown: the connection died mid-call and retries ran out.
	ErrConnDown = errors.New("client: connection down")
	// ErrBackpressure mirrors the server's session-queue rejection; for
	// deadline-carrying queries the server accounted a miss.
	ErrBackpressure = errors.New("client: server backpressure")
	// ErrTimeout: no response within CallTimeout.
	ErrTimeout = errors.New("client: call timed out")
	// ErrReadOnly: every reachable node is a standby; the write or firm
	// query was refused.
	ErrReadOnly = errors.New("client: server is read-only (standby)")
	// ErrStale: a node announced a fencing epoch older than one the client
	// has already seen — a deposed primary; the connection was refused.
	ErrStale = errors.New("client: stale fencing epoch")
)

// Query is one aperiodic query under the client-relative deadline
// discipline.
type Query struct {
	Query     string
	Candidate string
	Kind      deadline.Kind
	// Deadline is relative to the moment Client.Query is called.
	Deadline  timeseq.Time
	MinUseful uint64
	// Decay is the usefulness-decay shape (soft deadlines).
	Decay rtwire.Decay
}

// Result is the server's answer.
type Result struct {
	Answers   []string
	Match     bool
	Useful    uint64
	Missed    bool
	Evaluated bool
	// ExpiredOnArrival: the query's budget was consumed before the server
	// saw it; it was accounted a miss without evaluation.
	ExpiredOnArrival bool
	// Issue and Served are server chronons.
	Issue, Served timeseq.Time
}

// Stats counts client-side events.
type Stats struct {
	Redials      atomic.Uint64
	Backpressure atomic.Uint64 // sample submissions bounced by the server

	FailedOver        atomic.Uint64 // reconnects that landed on a different address
	StaleRejected     atomic.Uint64 // connections refused for an old fencing epoch
	Degraded          atomic.Uint64 // queries answered by a standby
	ReadOnlyRejects   atomic.Uint64 // submissions refused with CodeReadOnly
	HeartbeatTimeouts atomic.Uint64 // connections cut by the liveness watchdog
	Resubscribes      atomic.Uint64 // subscriptions re-attached after a reconnect
	CorruptFrames     atomic.Uint64 // connections dropped on a damaged inbound frame

	// MaxPrimarySeq is the highest durability watermark heard in heartbeat
	// echoes — a primary advertises its followers' acknowledged seq (what
	// survives its death), a standby its own applied seq. SeqWatermark
	// freezes that high-water mark at the moment of the most recent
	// failover. A node reached after a failover whose log is shorter than
	// SeqWatermark has lost acknowledged writes — load tools check exactly
	// this (heartbeats lag acks, so it is a lower bound).
	MaxPrimarySeq atomic.Uint64
	SeqWatermark  atomic.Uint64
}

// Client is a connection to an rtdbd server (or a failover group of them).
// It is safe for concurrent use; responses are matched to callers by
// request id.
type Client struct {
	addrs []string
	opt   Options

	// Session is the server session index this connection was mapped to.
	Session uint64

	Stats Stats

	ids   atomic.Uint64
	boSeq atomic.Uint64

	// lastRead is the unix-nano timestamp of the newest inbound frame;
	// the heartbeat watchdog reads it.
	lastRead atomic.Int64

	mu       sync.Mutex // guards conn/bw, address rotation, and (re)dials
	conn     net.Conn
	bw       *bufio.Writer
	gen      int // bumped on every successful redial
	closed   bool
	cur      int    // index into addrs of the next dial target
	lastAddr string // address of the previous successful connection
	role     rtwire.Role
	epoch    uint64 // highest fencing epoch seen in any Welcome/PromoteInfo
	shard    uint64 // this listener's shard index, from the Welcome
	shards   uint64 // deployment width announced in the Welcome (>=1)

	pmu     sync.Mutex
	pending map[uint64]chan any

	// smu guards the live subscription registry, keyed by the wire id of
	// each subscription's current attachment (SubOpen/SubResume frame id).
	smu  sync.Mutex
	subs map[uint64]*Subscription

	// done closes when Close is called; every waiter that outlives a call —
	// the heartbeat watchdog, retry backoff pauses, resume loops — selects
	// on it so Close leaks neither goroutines nor timers.
	done chan struct{}
}

// Dial connects and performs the Hello/Welcome handshake, retrying per
// Options. addr may be a comma-separated failover list; dial failures
// rotate through it.
func Dial(addr string, opt Options) (*Client, error) {
	opt.defaults()
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no address to dial")
	}
	c := &Client{
		addrs: addrs, opt: opt,
		pending: make(map[uint64]chan any),
		subs:    make(map[uint64]*Subscription),
		done:    make(chan struct{}),
	}
	bo := newBackoff(opt.Seed, opt.RetryBackoff, opt.RetryBackoffMax)
	var err error
	for attempt := 0; attempt <= opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(bo.Next())
		}
		c.mu.Lock()
		err = c.connectLocked()
		c.mu.Unlock()
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w", addr, err)
}

// connectLocked establishes a connection, walking the whole address ring
// once: a dead or stale node rotates to the next address within the same
// attempt, so one attempt fails only when every address does. Caller
// holds mu.
func (c *Client) connectLocked() error {
	var err error
	for range c.addrs {
		if err = c.connectOneLocked(); err == nil {
			return nil
		}
	}
	return err
}

// connectOneLocked dials the current address and handshakes; any failure
// rotates to the next address so the following try goes elsewhere. Caller
// holds mu.
func (c *Client) connectOneLocked() error {
	addr := c.addrs[c.cur]
	fail := func(conn net.Conn, err error) error {
		if conn != nil {
			conn.Close()
		}
		c.cur = (c.cur + 1) % len(c.addrs)
		return err
	}
	conn, err := c.opt.Dialer.DialTimeout("tcp", addr, c.opt.DialTimeout)
	if err != nil {
		return fail(nil, err)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
	if _, err := conn.Write(rtwire.Hello{Client: c.opt.Name}.Encode()); err != nil {
		return fail(conn, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(c.opt.DialTimeout))
	br := bufio.NewReader(conn)
	f, err := rtwire.ReadFrame(br)
	if err != nil {
		return fail(conn, fmt.Errorf("handshake read: %w", err))
	}
	msg, err := rtwire.Decode(f)
	if err != nil {
		return fail(conn, fmt.Errorf("handshake decode: %w", err))
	}
	switch m := msg.(type) {
	case rtwire.Welcome:
		if m.Epoch < c.epoch {
			// A deposed primary still answering on its old address: its
			// epoch predates one we have already seen. Refuse it.
			c.Stats.StaleRejected.Add(1)
			return fail(conn, fmt.Errorf("%w: %s announced epoch %d, newest seen is %d",
				ErrStale, addr, m.Epoch, c.epoch))
		}
		c.epoch = m.Epoch
		c.role = m.Role
		c.Session = m.Session
		c.shard, c.shards = m.Shard, m.Shards
		if c.shards == 0 {
			c.shards = 1
		}
	case rtwire.Err:
		return fail(conn, m)
	default:
		return fail(conn, fmt.Errorf("handshake: unexpected %s frame", f.Kind))
	}
	_ = conn.SetReadDeadline(time.Time{})
	c.conn, c.bw = conn, bufio.NewWriter(conn)
	if c.lastAddr != "" && c.lastAddr != addr {
		c.Stats.FailedOver.Add(1)
		// The node we land on next must carry everything the old one
		// acknowledged up to the last sequence we heard from it.
		if w := c.Stats.MaxPrimarySeq.Load(); w > c.Stats.SeqWatermark.Load() {
			c.Stats.SeqWatermark.Store(w)
		}
	}
	c.lastAddr = addr
	c.gen++
	gen := c.gen
	c.lastRead.Store(time.Now().UnixNano())
	go c.readLoop(conn, br, gen)
	if c.opt.HeartbeatInterval > 0 {
		go c.heartbeatLoop(conn, gen)
	}
	return nil
}

// heartbeatLoop is the liveness watchdog for one connection generation: it
// beacons a Heartbeat every interval and cuts the connection after 3
// intervals of inbound silence — a silently dead peer (a half-open socket
// behind a one-way partition) costs bounded time, not a CallTimeout. The
// ticker runs at a quarter interval so the silence check is fine-grained
// enough to cut at ~3 intervals instead of quantizing up to 4; beacons
// stay paced at the full interval.
func (c *Client) heartbeatLoop(conn net.Conn, gen int) {
	iv := c.opt.HeartbeatInterval
	t := time.NewTicker(max(iv/4, time.Millisecond))
	defer t.Stop()
	var lastBeacon time.Time
	for {
		select {
		case <-t.C:
		case <-c.done:
			// Close must not strand this goroutine (and its ticker) for up
			// to an interval; exit the moment the client goes away.
			return
		}
		c.mu.Lock()
		stale := c.closed || c.gen != gen
		c.mu.Unlock()
		if stale {
			return
		}
		if time.Since(time.Unix(0, c.lastRead.Load())) >= 3*iv {
			c.Stats.HeartbeatTimeouts.Add(1)
			conn.Close() // the read loop unblocks and fails the pending calls
			c.advance()  // and the next redial tries a different node first
			return
		}
		if now := time.Now(); now.Sub(lastBeacon) >= iv {
			lastBeacon = now
			// The beacon's write deadline is clamped to one interval: a
			// stalled socket must not pin the client mutex for the full
			// WriteTimeout while the watchdog is trying to detect it.
			_ = c.sendTimeout(rtwire.Heartbeat{}.Encode(), false, min(iv, c.opt.WriteTimeout))
		}
	}
}

// noteEpoch folds a peer-announced epoch into the fencing watermark; true
// means the peer is stale (older than the newest epoch seen).
func (c *Client) noteEpoch(e uint64) (stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e < c.epoch {
		return true
	}
	c.epoch = e
	return false
}

// notePromoted records that the connected node announced itself primary.
func (c *Client) notePromoted(e uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e >= c.epoch {
		c.epoch = e
		c.role = rtwire.RolePrimary
	}
}

// rotate abandons the current connection and advances to the next address;
// the next send redials there.
func (c *Client) rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.cur = (c.cur + 1) % len(c.addrs)
}

// advance rotates the dial cursor without touching the live connection —
// the heartbeat watchdog uses it after closing a half-open socket, so the
// redial starts at a different node instead of the one that went silent.
func (c *Client) advance() {
	c.mu.Lock()
	c.cur = (c.cur + 1) % len(c.addrs)
	c.mu.Unlock()
}

// Role returns the role announced by the node the client is (last)
// connected to.
func (c *Client) Role() rtwire.Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Epoch returns the highest fencing epoch the client has seen.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Shard returns the shard index announced by the connected listener (0
// when unsharded).
func (c *Client) Shard() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shard
}

// Shards returns the deployment width announced by the connected listener
// (1 when unsharded).
func (c *Client) Shards() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards
}

// ShardFor computes the owning shard of an object under the deployment
// width the connected listener announced — the client-side half of the
// placement contract: rtwire.ShardOf is part of the on-disk format, so a
// client can route each object to its shard's listener without asking.
func (c *Client) ShardFor(object string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shards <= 1 {
		return 0
	}
	return uint64(rtwire.ShardOf(object, int(c.shards)))
}

// Owns reports whether the connected listener's shard owns the object.
func (c *Client) Owns(object string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards <= 1 || uint64(rtwire.ShardOf(object, int(c.shards))) == c.shard
}

// readLoop dispatches incoming frames to waiting callers until the
// connection dies.
func (c *Client) readLoop(conn net.Conn, br *bufio.Reader, gen int) {
	defer c.failPending(gen)
	// One payload buffer for the connection's lifetime; Decode copies the
	// field strings out before the next frame overwrites it.
	var rbuf []byte
	for {
		f, err := rtwire.ReadFrameBuf(br, &rbuf)
		if err != nil {
			if rtwire.IsCorruptFrame(err) {
				// Byte damage on the wire: the CRC (or framing) caught it.
				// Frame boundaries are unrecoverable — count it and let the
				// connection die; a redial resynchronizes from a handshake.
				c.Stats.CorruptFrames.Add(1)
				conn.Close()
			}
			return
		}
		c.lastRead.Store(time.Now().UnixNano())
		msg, err := rtwire.Decode(f)
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case rtwire.Result:
			c.deliver(m.ID, m)
		case rtwire.AsOfResult:
			c.deliver(m.ID, m)
		case rtwire.Metrics:
			c.deliver(m.ID, m)
		case rtwire.Flushed:
			c.deliver(m.ID, m)
		case rtwire.SubAck:
			c.deliver(m.ID, m)
		case rtwire.Push:
			c.dispatchPush(m)
		case rtwire.Err:
			if !c.deliver(m.ID, m) {
				switch m.Code {
				case rtwire.CodeBackpressure:
					// A bounced fire-and-forget sample.
					c.Stats.Backpressure.Add(1)
				case rtwire.CodeReadOnly:
					// A sample refused by a standby.
					c.Stats.ReadOnlyRejects.Add(1)
				}
			}
		case rtwire.Heartbeat:
			if c.noteEpoch(m.Epoch) {
				// A heartbeat from a deposed primary: cut the link.
				conn.Close()
				return
			}
			for {
				old := c.Stats.MaxPrimarySeq.Load()
				if m.Seq <= old || c.Stats.MaxPrimarySeq.CompareAndSwap(old, m.Seq) {
					break
				}
			}
		case rtwire.PromoteInfo:
			c.notePromoted(m.Epoch)
		case rtwire.Bye:
			return
		}
	}
}

// deliver hands a response to its waiting caller.
func (c *Client) deliver(id uint64, msg any) bool {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if ok {
		ch <- msg
	}
	return ok
}

// failPending wakes every caller of the dead connection generation.
func (c *Client) failPending(gen int) {
	c.mu.Lock()
	current := c.gen == gen
	if current && c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
	if !current {
		return
	}
	c.pmu.Lock()
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- error(ErrConnDown)
	}
	c.pmu.Unlock()
	c.resumeSubs()
}

// send writes one frame. redial controls whether a dead connection is
// re-established first.
func (c *Client) send(frame []byte, redial bool) error {
	return c.sendTimeout(frame, redial, c.opt.WriteTimeout)
}

// sendTimeout is send with an explicit write deadline; the heartbeat
// beacon clamps it to one interval.
func (c *Client) sendTimeout(frame []byte, redial bool, wt time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.conn == nil {
		if !redial {
			return ErrConnDown
		}
		if err := c.connectLocked(); err != nil {
			return fmt.Errorf("%w: %v", ErrConnDown, err)
		}
		c.Stats.Redials.Add(1)
	}
	_ = c.conn.SetWriteDeadline(time.Now().Add(wt))
	if _, err := c.bw.Write(frame); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.conn.Close()
		c.conn = nil
		return fmt.Errorf("%w: %v", ErrConnDown, err)
	}
	return nil
}

// call sends an id-carrying frame and waits for its response.
func (c *Client) call(id uint64, frame []byte) (any, error) {
	ch := make(chan any, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()
	if err := c.send(frame, true); err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(c.opt.CallTimeout)
	defer timer.Stop()
	select {
	case msg := <-ch:
		if err, ok := msg.(error); ok {
			if we, isWire := msg.(rtwire.Err); !isWire || we.Code != rtwire.CodeBackpressure {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrBackpressure, msg)
		}
		return msg, nil
	case <-timer.C:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, ErrTimeout
	}
}

// nextID allocates a request id (never 0; 0 marks connection-level Errs).
func (c *Client) nextID() uint64 { return c.ids.Add(1) }

// Query issues one aperiodic query. The deadline budget starts now; every
// retry re-stamps the consumed chronons, so time lost to redials shrinks
// the server-side remainder instead of resetting it.
func (c *Client) Query(q Query) (Result, error) {
	issue := time.Now()
	// Each call walks its own jittered backoff; the golden-ratio multiplier
	// spreads concurrent calls of one client apart as well.
	bo := newBackoff(c.opt.Seed+c.boSeq.Add(1)*0x9e3779b97f4a7c15,
		c.opt.RetryBackoff, c.opt.RetryBackoffMax)
	var lastErr error
	for attempt := 0; attempt <= c.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			if !c.sleep(bo.Next()) {
				return Result{}, ErrClosed
			}
		}
		id := c.nextID()
		wq := rtwire.Query{
			ID: id, Query: q.Query, Candidate: q.Candidate,
			Kind: q.Kind, Deadline: q.Deadline,
			Elapsed:   timeseq.Time(time.Since(issue) / c.opt.ChrononDuration),
			MinUseful: q.MinUseful, Decay: q.Decay,
		}
		msg, err := c.call(id, wq.Encode())
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrConnDown) {
				continue // redial consumed budget; try again with new Elapsed
			}
			var we rtwire.Err
			if errors.As(err, &we) && we.Code == rtwire.CodeReadOnly {
				// A standby refused the firm query; rotate onward in
				// search of the primary and retry on the shrunken budget.
				c.Stats.ReadOnlyRejects.Add(1)
				c.rotate()
				lastErr = fmt.Errorf("%w: %v", ErrReadOnly, err)
				continue
			}
			if errors.Is(err, ErrBackpressure) {
				// The server accounted the rejection; report it like the
				// in-process session API does.
				return Result{Missed: q.Kind != deadline.None}, err
			}
			return Result{}, err
		}
		r, ok := msg.(rtwire.Result)
		if !ok {
			return Result{}, fmt.Errorf("client: unexpected response %T", msg)
		}
		if c.Role() == rtwire.RoleStandby {
			c.Stats.Degraded.Add(1)
		}
		return Result{
			Answers: r.Answers, Match: r.Match, Useful: r.Useful,
			Missed: r.Missed, Evaluated: r.Evaluated,
			ExpiredOnArrival: r.ExpiredOnArrival,
			Issue:            r.Issue, Served: r.Served,
		}, nil
	}
	return Result{}, lastErr
}

// InjectSample submits one timed sensor sample, fire-and-forget. A
// server-side rejection arrives asynchronously and is counted in
// Stats.Backpressure.
func (c *Client) InjectSample(image, value string) error {
	return c.send(rtwire.Sample{ID: c.nextID(), Image: image, Value: value}.Encode(), true)
}

// AsOf reads an image object's value as of server chronon at, served from
// the published history snapshot. The returned horizon is the chronon
// through which as-of reads are current.
func (c *Client) AsOf(image string, at timeseq.Time) (value string, ok bool, horizon timeseq.Time, err error) {
	id := c.nextID()
	msg, err := c.call(id, rtwire.AsOf{ID: id, Image: image, At: at}.Encode())
	if err != nil {
		return "", false, 0, err
	}
	r, isR := msg.(rtwire.AsOfResult)
	if !isR {
		return "", false, 0, fmt.Errorf("client: unexpected response %T", msg)
	}
	return r.Value, r.OK, r.Horizon, nil
}

// Metrics fetches the server's metrics snapshot as ordered name/value
// pairs (server rows first, then the net_* wire rows).
func (c *Client) Metrics() (rtwire.Metrics, error) {
	id := c.nextID()
	msg, err := c.call(id, rtwire.MetricsReq{ID: id}.Encode())
	if err != nil {
		return rtwire.Metrics{}, err
	}
	m, ok := msg.(rtwire.Metrics)
	if !ok {
		return rtwire.Metrics{}, fmt.Errorf("client: unexpected response %T", msg)
	}
	return m, nil
}

// Flush blocks until everything this connection submitted before it has
// been applied by the server.
func (c *Client) Flush() error {
	id := c.nextID()
	msg, err := c.call(id, rtwire.Flush{ID: id}.Encode())
	if err != nil {
		return err
	}
	if _, ok := msg.(rtwire.Flushed); !ok {
		return fmt.Errorf("client: unexpected response %T", msg)
	}
	return nil
}

// sleep pauses for d; false means Close was called mid-pause. Backoff
// waits use it so a closing client abandons its retry ladder immediately
// instead of finishing the nap first.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.done:
		return false
	}
}

// Close announces an orderly close and tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	// Every subscription ends here: consumers see their channels close and
	// Err() report the client shutdown.
	c.smu.Lock()
	subs := make([]*Subscription, 0, len(c.subs))
	for id, s := range c.subs {
		delete(c.subs, id)
		subs = append(subs, s)
	}
	c.smu.Unlock()
	for _, s := range subs {
		s.finish(ErrClosed)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
		_, _ = c.conn.Write(rtwire.Bye{Reason: "close"}.Encode())
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
