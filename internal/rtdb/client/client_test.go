package client_test

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
)

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func testServerConfig() server.Config {
	return server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "22"},
			Derived: []*rtdb.DerivedObject{{
				Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
			}},
			Images: []*rtdb.ImageObject{{Name: "temp", Period: 5}},
		},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusDerive},
		Sessions: 4,
	}
}

func startServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ns := netserve.New(s, netserve.Options{})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = ns.Close()
		s.Stop()
	})
	return addr.String()
}

// TestDialFailureIsFast: with retries disabled a dial against a dead port
// fails promptly instead of hanging through a backoff ladder.
func TestDialFailureIsFast(t *testing.T) {
	start := time.Now()
	_, err := client.Dial("127.0.0.1:1", client.Options{
		RetryAttempts: -1, DialTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial of a dead port succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dial failure took %v", d)
	}
}

// TestClientEndToEnd drives the whole public client surface against a
// live loopback server.
func TestClientEndToEnd(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, client.Options{Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.InjectSample("temp", "25"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := c.Query(client.Query{Query: "status_q", Candidate: "high"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match || !r.Evaluated {
		t.Fatalf("derived query: %+v", r)
	}

	// Temporal read: learn the horizon with a throwaway read, then read a
	// chronon the snapshot definitely covers.
	_, _, horizon, err := c.AsOf("temp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _, err := c.AsOf("temp", horizon/2); err != nil {
		t.Fatal(err)
	} else if ok && v == "" {
		t.Fatal("as-of returned ok with empty value")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Map()["queries_in"] != 1 {
		t.Fatalf("queries_in = %d, want 1", m.Map()["queries_in"])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The client is closed: further calls fail with ErrClosed.
	if _, err := c.Query(client.Query{Query: "status_q"}); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
}

// TestZeroDeadlineFirmExpires: a firm query with relative deadline 0 is
// the deterministic expired-on-arrival case through the full client path —
// whatever Elapsed the client stamps, E ≥ 0 = D holds, so the server must
// reject it unevaluated and report the miss.
func TestZeroDeadlineFirmExpires(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := c.Query(client.Query{
		Query: "status_q", Kind: deadline.Firm, Deadline: 0, MinUseful: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Missed || r.Evaluated || !r.ExpiredOnArrival {
		t.Fatalf("zero-deadline firm: %+v", r)
	}
}
