package client_test

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"

	"rtc/internal/rtdb/client"
	"rtc/internal/rtwire"
)

// fakeNode is a hand-rolled rtwire endpoint for failure-mode tests: it
// accepts up to accepts connections, answers each Hello with a Welcome
// announcing the given epoch, and then either freezes (swallows inbound
// frames, never writes again — a wedged peer) or closes immediately. After
// the accept budget the listener closes, so further dials are refused.
func fakeNode(t *testing.T, epoch uint64, freeze bool, accepts int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for i := 0; i < accepts; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := rtwire.ReadFrame(br); err != nil {
					return
				}
				_, _ = conn.Write(rtwire.Welcome{
					Session: 0, Chronon: 0, Epoch: epoch, Role: rtwire.RolePrimary,
				}.Encode())
				if freeze {
					_, _ = io.Copy(io.Discard, conn)
				}
			}(conn)
		}
		_ = ln.Close()
	}()
	return ln.Addr().String()
}

// TestHeartbeatDetectsFrozenPeer: the server handshakes and then its writer
// freezes solid. Without heartbeats the pending query would sit until
// CallTimeout (30s); the liveness watchdog must cut the connection within
// 3 heartbeat intervals instead and fail the call with ErrConnDown.
func TestHeartbeatDetectsFrozenPeer(t *testing.T) {
	addr := fakeNode(t, 1, true, 1)
	c, err := client.Dial(addr, client.Options{
		RetryAttempts:     -1,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Query(client.Query{Query: "anything"})
	if err == nil {
		t.Fatal("query against a frozen peer succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("frozen peer took %v to detect; want ~3×50ms", d)
	}
	if got := c.Stats.HeartbeatTimeouts.Load(); got == 0 {
		t.Fatal("watchdog cut the link but HeartbeatTimeouts == 0")
	}
}

// TestStaleEpochFenced: the client first reaches a node at epoch 5; after
// that node goes away, the only reachable node announces epoch 3 — a
// deposed primary. The client must refuse it (StaleRejected) and must not
// regress its epoch watermark.
func TestStaleEpochFenced(t *testing.T) {
	newer := fakeNode(t, 5, false, 1) // handshake once at epoch 5, then gone
	stale := fakeNode(t, 3, true, 16) // a deposed primary, happy to talk

	c, err := client.Dial(newer+","+stale, client.Options{
		RetryAttempts: -1, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Epoch(); got != 5 {
		t.Fatalf("epoch after first handshake = %d, want 5", got)
	}

	// The epoch-5 node closed right after the handshake; give the read
	// loop a moment to notice, then force traffic. Every reconnect lands
	// on the stale node (the newer one refuses dials now) and must be
	// fenced rather than accepted.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats.StaleRejected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale node was never fenced")
		}
		_, _ = c.Query(client.Query{Query: "anything"})
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Epoch(); got != 5 {
		t.Fatalf("epoch watermark regressed to %d after meeting the stale node", got)
	}
}
