package client

import (
	"errors"
	"fmt"
	"sync"

	"rtc/internal/deadline"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// Standing queries: Subscribe registers a periodic query once and the
// server pushes every tick's stamped result back over the connection. The
// client's job is continuity — each push carries a monotone cursor, the
// client remembers the newest one it has seen, and when the connection
// dies it walks the failover ring and re-attaches with SubResume(cursor),
// so delivery continues at cursor+1 on whichever node answers: no
// acknowledged tick is replayed, no skipped tick goes uncounted (drops and
// expiries arrive as cumulative tallies in the pushes themselves).
//
// Flow control is two-staged: the server's bounded queue drops oldest (the
// counted, resumable kind of loss), and the client's channel buffer drops
// newest locally when the consumer lags (counted in LocalDrops — the
// cursor still advances, so a resume never replays what was dropped here).

// ErrSubRefused: the server refused the subscription (unknown query, dead
// envelope, or an inadmissible schedule).
var ErrSubRefused = errors.New("client: subscription refused")

// SubSpec describes one standing query.
type SubSpec struct {
	Query  string
	Period timeseq.Time
	Kind   deadline.Kind
	// Deadline is relative to each tick's issue instant.
	Deadline  timeseq.Time
	MinUseful uint64
	Decay     rtwire.Decay
	// Depth bounds the server-side delivery queue (0: server default).
	Depth uint64
	// Buffer sizes the client-side push channel (default 16).
	Buffer int
}

// Push is one delivered tick of a standing query. Dropped and Expired are
// cumulative for the current attachment, so a consumer can audit delivery:
// received == Cursor − resume base − Dropped − Expired − LocalDrops.
type Push struct {
	Cursor  uint64
	Dropped uint64
	Expired uint64
	Useful  uint64
	Missed  bool
	// Evaluated is false only for degraded placeholders.
	Evaluated bool
	// Degraded marks a push served by a hot standby from replicated state.
	Degraded      bool
	Issue, Served timeseq.Time // server chronons
	Answers       []string
}

// Subscription is one attached standing query. Read pushes from Pushes();
// the channel closes when the subscription ends (Close, a refused resume,
// or client shutdown) and Err then reports why.
type Subscription struct {
	c    *Client
	spec SubSpec
	ch   chan Push

	mu         sync.Mutex
	wireID     uint64 // id of the current attachment's frames
	cursor     uint64 // newest cursor seen; the resume point
	received   uint64
	localDrops uint64
	// dropped/expired mirror the newest push's cumulative tallies — kept
	// even when the push itself is shed locally, so the delivery audit
	// stays closable through consumer lag.
	dropped  uint64
	expired  uint64
	resuming bool
	closed   bool
	err      error
}

// Subscribe registers a standing query and waits for the server's
// admission ack. On connection loss the client re-attaches the
// subscription automatically with the newest cursor it holds.
func (c *Client) Subscribe(spec SubSpec) (*Subscription, error) {
	if spec.Buffer <= 0 {
		spec.Buffer = 16
	}
	s := &Subscription{c: c, spec: spec, ch: make(chan Push, spec.Buffer)}
	// Hold the resume guard through the initial attach so a connection
	// death mid-handshake cannot spawn a concurrent resume for a
	// subscription the caller will be told failed.
	s.mu.Lock()
	s.resuming = true
	s.mu.Unlock()
	err := c.attach(s, false)
	s.mu.Lock()
	s.resuming = false
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// attach sends a SubOpen (fresh) or SubResume (after a reconnect) under a
// new wire id and waits for the ack. The subscription is registered in the
// dispatch map before the frame goes out, so the first push cannot slip
// past the read loop.
func (c *Client) attach(s *Subscription, resume bool) error {
	id := c.nextID()
	sp := s.spec
	var frame []byte
	if resume {
		frame = rtwire.SubResume{
			ID: id, Query: sp.Query, Period: sp.Period, Kind: sp.Kind,
			Deadline: sp.Deadline, MinUseful: sp.MinUseful, Decay: sp.Decay,
			Depth: sp.Depth, AfterCursor: s.Cursor(),
		}.Encode()
	} else {
		frame = rtwire.SubOpen{
			ID: id, Query: sp.Query, Period: sp.Period, Kind: sp.Kind,
			Deadline: sp.Deadline, MinUseful: sp.MinUseful, Decay: sp.Decay,
			Depth: sp.Depth,
		}.Encode()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.wireID = id
	s.mu.Unlock()
	c.smu.Lock()
	c.subs[id] = s
	c.smu.Unlock()
	deregister := func() {
		c.smu.Lock()
		if c.subs[id] == s {
			delete(c.subs, id)
		}
		c.smu.Unlock()
	}
	msg, err := c.call(id, frame)
	if err != nil {
		deregister()
		return err
	}
	ack, ok := msg.(rtwire.SubAck)
	if !ok {
		deregister()
		return fmt.Errorf("client: unexpected subscription response %T", msg)
	}
	if ack.State != rtwire.SubAdmitted {
		deregister()
		return fmt.Errorf("%w: %q", ErrSubRefused, sp.Query)
	}
	return nil
}

// resumeSubs relaunches every live subscription after a connection loss.
// Subscriptions already mid-resume keep their own retry loop; everyone
// else gets one.
func (c *Client) resumeSubs() {
	c.smu.Lock()
	var list []*Subscription
	for id, s := range c.subs {
		delete(c.subs, id)
		if s.beginResume() {
			list = append(list, s)
		}
	}
	c.smu.Unlock()
	for _, s := range list {
		go c.resumeLoop(s)
	}
}

// resumeLoop re-attaches one subscription with backoff, walking the
// failover ring through the normal redial path. Liveness failures retry;
// a refusal or client shutdown ends the subscription with that error.
func (c *Client) resumeLoop(s *Subscription) {
	defer s.endResume()
	bo := newBackoff(c.opt.Seed+c.boSeq.Add(1)*0x9e3779b97f4a7c15,
		c.opt.RetryBackoff, c.opt.RetryBackoffMax)
	var lastErr error
	for attempt := 0; attempt <= c.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			if !c.sleep(bo.Next()) {
				s.finish(ErrClosed)
				return
			}
		}
		err := c.attach(s, true)
		if err == nil {
			c.Stats.Resubscribes.Add(1)
			return
		}
		lastErr = err
		if errors.Is(err, ErrConnDown) || errors.Is(err, ErrTimeout) {
			continue
		}
		break
	}
	s.finish(lastErr)
}

// dispatchPush routes one push frame to its subscription. An unknown id is
// a trailing push of a cancelled or superseded attachment; dropping it is
// safe because its cursor is at or below the acknowledged one.
func (c *Client) dispatchPush(m rtwire.Push) {
	c.smu.Lock()
	s := c.subs[m.ID]
	c.smu.Unlock()
	if s != nil {
		s.deliver(m)
	}
}

// deliver advances the cursor and hands the push to the consumer channel,
// dropping it locally (counted) when the consumer lags. The cursor
// advances either way: resume continuity must not replay what the local
// buffer shed.
func (s *Subscription) deliver(m rtwire.Push) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if m.Cursor > s.cursor {
		s.cursor = m.Cursor
		s.dropped, s.expired = m.Dropped, m.Expired
	}
	p := Push{
		Cursor: m.Cursor, Dropped: m.Dropped, Expired: m.Expired,
		Useful: m.Useful, Missed: m.Missed, Evaluated: m.Evaluated,
		Degraded: m.Degraded, Issue: m.Issue, Served: m.Served,
		Answers: m.Answers,
	}
	select {
	case s.ch <- p:
		s.received++
	default:
		s.localDrops++
	}
}

// beginResume claims the resume guard; false means the subscription is
// closed or another resume loop is already running.
func (s *Subscription) beginResume() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.resuming {
		return false
	}
	s.resuming = true
	return true
}

func (s *Subscription) endResume() {
	s.mu.Lock()
	s.resuming = false
	s.mu.Unlock()
}

// finish ends the subscription: the push channel closes and Err reports
// err. Idempotent.
func (s *Subscription) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	close(s.ch)
}

// Pushes returns the delivery channel. It closes when the subscription
// ends; Err then reports why (nil after a clean Close).
func (s *Subscription) Pushes() <-chan Push { return s.ch }

// Cursor returns the newest cursor received — the resume point.
func (s *Subscription) Cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Received counts pushes handed to the consumer channel.
func (s *Subscription) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Tallies returns the newest cumulative server-side loss counts observed
// for the current attachment — taken from the newest push seen, whether or
// not that push reached the consumer. At quiescence the delivery audit
// closes exactly:
//
//	Received == Cursor − resume base − dropped − expired − LocalDrops
func (s *Subscription) Tallies() (dropped, expired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped, s.expired
}

// LocalDrops counts pushes shed by the client-side buffer (the consumer
// lagged); they are gone, not replayable — the cursor moved past them.
func (s *Subscription) LocalDrops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localDrops
}

// Err reports why the push channel closed; nil while live or after a
// clean Close.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close cancels the subscription on the server (best effort — a dead
// connection just means the server-side teardown accounts it instead) and
// closes the push channel.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	id := s.wireID
	s.mu.Unlock()
	c := s.c
	c.smu.Lock()
	if c.subs[id] == s {
		delete(c.subs, id)
	}
	c.smu.Unlock()
	_, _ = c.call(id, rtwire.SubCancel{ID: id}.Encode())
	s.finish(nil)
	return nil
}
