package client

import (
	"math/rand"
	"time"
)

// backoff generates retry pauses with decorrelated jitter:
//
//	next = min(max, base + rand[0, 3·prev − base])
//
// A deterministic doubling ladder makes every client that lost the same
// primary redial on the same schedule — a lockstep stampede exactly when
// the recovered node is weakest. Jitter decorrelates the fleet: each
// client's schedule is a private random walk between base and max, so
// reconnects arrive spread out. The seed makes a single client's schedule
// reproducible (the torture and unit suites rely on that) while different
// seeds give different schedules.
type backoff struct {
	base, max time.Duration
	prev      time.Duration
	rng       *rand.Rand
}

func newBackoff(seed uint64, base, max time.Duration) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	// prev starts at base so even the first pause is jittered.
	return &backoff{base: base, max: max, prev: base, rng: rand.New(rand.NewSource(int64(seed)))}
}

// Next returns the next pause and advances the walk.
func (b *backoff) Next() time.Duration {
	next := b.base
	if hi := 3 * b.prev; hi > b.base {
		next = b.base + time.Duration(b.rng.Int63n(int64(hi-b.base)+1))
	}
	if next > b.max {
		next = b.max
	}
	b.prev = next
	return next
}
