package client_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"rtc/internal/faultnet"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
)

// waitGoroutines polls until the goroutine count sinks back to at most
// base+slack or the deadline passes, returning the final count. Counting
// (instead of a hard equality) keeps the check robust against runtime
// housekeeping goroutines while still catching real leaks, which hold the
// count elevated for minutes, not milliseconds.
func waitGoroutines(t *testing.T, base int, slack int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseLeaksNoGoroutines: a client with a live connection, an armed
// heartbeat watchdog, and an active subscription must shed every goroutine
// and timer on Close — the watchdog's old `for range ticker.C` shape kept
// the goroutine (and its ticker) alive for up to a full interval after
// Close, which this test pins at a long interval to make the leak loud.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	addr := startServer(t)
	base := runtime.NumGoroutine()

	c, err := client.Dial(addr, client.Options{
		Name: "leak", HeartbeatInterval: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectSample("temp", "20"); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(client.SubSpec{Query: "status_q", Period: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Close ended the subscription too: the channel closes and Err reports
	// the shutdown.
	select {
	case _, ok := <-sub.Pushes():
		if ok {
			// Pushes delivered before the close are fine; drain to the close.
			for range sub.Pushes() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel never closed after client Close")
	}
	if !errors.Is(sub.Err(), client.ErrClosed) {
		t.Fatalf("sub.Err() = %v, want ErrClosed", sub.Err())
	}

	if n := waitGoroutines(t, base, 2); n > base+2 {
		t.Fatalf("goroutines after Close: %d, baseline %d — leak", n, base)
	}
}

// TestCloseUnblocksRetryBackoff: a Query stuck in its retry-backoff pause
// (the server is gone, the ladder is long) must abort the moment Close is
// called instead of sleeping the pause out — the old uninterruptible
// time.Sleep held both the goroutine and the caller hostage.
func TestCloseUnblocksRetryBackoff(t *testing.T) {
	s, err := server.New(server.Config{Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	ns := netserve.New(s, netserve.Options{})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr.String(), client.Options{
		Name:          "backoff-leak",
		RetryAttempts: 100,
		RetryBackoff:  30 * time.Second, // one pause outlasts the whole test
		DialTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the server: the connection dies, redials are refused, and the
	// next Query enters the retry ladder — each rung a 30s pause.
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(client.Query{Query: "anything"})
		done <- err
	}()
	// Let the query fail its first attempt and enter the backoff pause.
	time.Sleep(300 * time.Millisecond)

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrClosed) && !errors.Is(err, client.ErrConnDown) {
			t.Fatalf("interrupted query returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Query still blocked 5s after Close; backoff pause not interruptible")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close-to-unblock took %v", d)
	}
}

// startFabricServer mirrors startServer behind a faultnet fabric so the
// teardown tests can blackhole, reset, and stall the client's wire.
func startFabricServer(t *testing.T, fab *faultnet.Fabric, addr string) {
	t.Helper()
	s, err := server.New(testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ns := netserve.New(s, netserve.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		WriteTimeout:      100 * time.Millisecond,
	})
	ln, err := fab.Listen(addr)
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	go func() { _ = ns.Serve(ln) }()
	t.Cleanup(func() {
		_ = ns.Close()
		s.Stop()
	})
}

// fabricLeakOptions are the client options every fabric teardown test
// uses: a live heartbeat watchdog (the only detector for a blackholed
// flow), short write deadlines, and a fast retry ladder — all the
// machinery whose goroutines must die with Close.
func fabricLeakOptions(fab *faultnet.Fabric, label string) client.Options {
	return client.Options{
		Name: label, Dialer: fab.Dialer(label),
		DialTimeout: 150 * time.Millisecond, CallTimeout: time.Second,
		WriteTimeout:  100 * time.Millisecond,
		RetryAttempts: 4, RetryBackoff: time.Millisecond,
		RetryBackoffMax:   5 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond, Seed: 1,
	}
}

// TestCloseAfterPartitionCutLeaksNoGoroutines: a client whose connection
// is first blackholed (the half-open socket: writes "succeed", nothing
// arrives, so the watchdog trips into a redial loop whose dials hang in
// the partition) and then hard-reset must still shed every goroutine the
// moment Close is called — the watchdog ticker, the redial ladder, the
// reader, and the subscription drainer all included.
func TestCloseAfterPartitionCutLeaksNoGoroutines(t *testing.T) {
	fab := faultnet.NewFabric(31)
	defer fab.Close()
	startFabricServer(t, fab, "leak:1")
	base := runtime.NumGoroutine()

	c, err := client.Dial("leak:1", fabricLeakOptions(fab, "part-cut"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectSample("temp", "20"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(client.SubSpec{Query: "status_q", Period: 3, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range sub.Pushes() {
		}
	}()

	// Blackhole both directions, give the watchdog time to cut and start
	// redialing into the partition, then RST what is left of the old
	// connection.
	fab.PartitionNow(
		faultnet.Direction{From: "part-cut", To: "leak:1"},
		faultnet.Direction{From: "leak:1", To: "part-cut"},
	)
	time.Sleep(120 * time.Millisecond) // ≥ 3 heartbeat intervals
	fab.CutAll("part-cut", "leak:1")

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close took %v with a partitioned redial in flight", d)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel never closed after Close under partition")
	}
	fab.Heal()
	if n := waitGoroutines(t, base, 2); n > base+2 {
		t.Fatalf("goroutines after partition-cut Close: %d, baseline %d — leak", n, base)
	}
}

// TestCloseDuringSlowLorisLeaksNoGoroutines: a peer that accepts the
// connection but absorbs no bytes — every write stalls, on every
// connection the client makes — must not pin client goroutines. Write
// deadlines bound each stalled attempt, the retry ladder stays
// interruptible, and Close reaps the rest even while a write is blocked
// inside the stall.
func TestCloseDuringSlowLorisLeaksNoGoroutines(t *testing.T) {
	fab := faultnet.NewFabric(32)
	defer fab.Close()
	startFabricServer(t, fab, "loris:1")
	base := runtime.NumGoroutine()

	c, err := client.Dial("loris:1", fabricLeakOptions(fab, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectSample("temp", "20"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// The loris: keep re-stalling so every redial lands on a connection
	// that goes silent too — StallAll only reaches conns alive at call
	// time, and the client keeps making new ones.
	stop := make(chan struct{})
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		for {
			select {
			case <-stop:
				return
			default:
				fab.StallAll("slow", "loris:1")
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Pump writes into the stalled socket: each blocks until its write
	// deadline, errors, and walks the retry ladder into the next stall.
	for i := 0; i < 3; i++ {
		_ = c.InjectSample("temp", "21")
	}
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		_, _ = c.Query(client.Query{Query: "status_q"})
	}()
	time.Sleep(50 * time.Millisecond) // let the query wedge in a stalled write

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close took %v with writes wedged in the stall", d)
	}
	select {
	case <-flushDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query still blocked 5s after Close under slow-loris")
	}
	close(stop)
	<-stalled
	fab.Heal()
	if n := waitGoroutines(t, base, 2); n > base+2 {
		t.Fatalf("goroutines after slow-loris Close: %d, baseline %d — leak", n, base)
	}
}

// TestClientSubscribeEndToEnd: the full client subscription surface over a
// real connection — admitted subscribe, cursored pushes as samples advance
// the server clock, clean Close.
func TestClientSubscribeEndToEnd(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, client.Options{Name: "sub-e2e"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe(client.SubSpec{Query: "status_q", Period: 2, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Refusals surface as errors, not dead subscriptions.
	if _, err := c.Subscribe(client.SubSpec{Query: "no_such_q", Period: 2}); !errors.Is(err, client.ErrSubRefused) {
		t.Fatalf("unknown query: err = %v, want ErrSubRefused", err)
	}

	for i := 0; i < 8; i++ {
		if err := c.InjectSample("temp", "25"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	var last uint64
	var got int
collect:
	for {
		select {
		case p, ok := <-sub.Pushes():
			if !ok {
				t.Fatal("push channel closed mid-test")
			}
			if p.Cursor <= last {
				t.Fatalf("cursor not increasing: %d after %d", p.Cursor, last)
			}
			if len(p.Answers) != 1 || p.Answers[0] != "high" {
				t.Fatalf("push answers: %v", p.Answers)
			}
			last = p.Cursor
			got++
			if got >= 3 {
				break collect
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d pushes after 5s", got)
		}
	}
	if sub.Cursor() < last || sub.Received() < uint64(got) {
		t.Fatalf("bookkeeping: cursor %d received %d, saw %d/%d", sub.Cursor(), sub.Received(), last, got)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	for range sub.Pushes() {
	} // drains to close
	if sub.Err() != nil {
		t.Fatalf("clean close left err %v", sub.Err())
	}
}
