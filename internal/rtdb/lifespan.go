// Package rtdb implements the real-time database system of §5.1.2–5.1.3:
// image / derived / invariant objects (after Vrbsky's data model), ages,
// dispersion and absolute/relative consistency, lifespans as a boolean
// algebra of time intervals, active rules with immediate / deferred /
// concurrent firing, periodic sampling of the external world on the virtual
// clock, and the recognition problem for real-time queries as well-behaved
// timed ω-languages (Definition 5.1, languages (9) and (10), Lemma 5.1).
package rtdb

import (
	"fmt"
	"sort"
	"strings"

	"rtc/internal/timeseq"
)

// Interval is a closed interval [Lo, Hi] of chronons; a degenerate interval
// with Lo == Hi represents a single instant, as §5.1.2 prescribes. Hi may be
// timeseq.Infinity for an unbounded interval.
type Interval struct {
	Lo, Hi timeseq.Time
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t timeseq.Time) bool { return iv.Lo <= t && t <= iv.Hi }

// Empty reports an inverted interval.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Lifespan is a finite union of intervals in canonical form: sorted,
// pairwise disjoint, and with adjacent intervals merged. §5.1.2: "The
// lifespan of a data object is defined as a finite union of intervals.
// These intervals are closed under union, intersection and complementation,
// and form therefore a boolean algebra."
type Lifespan []Interval

// NewLifespan normalizes an arbitrary interval collection.
func NewLifespan(ivals ...Interval) Lifespan {
	var keep []Interval
	for _, iv := range ivals {
		if !iv.Empty() {
			keep = append(keep, iv)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].Lo < keep[j].Lo })
	var out Lifespan
	for _, iv := range keep {
		if n := len(out); n > 0 {
			last := &out[n-1]
			// Merge overlapping or adjacent (Hi+1 == Lo) intervals; watch
			// for Infinity overflow.
			if iv.Lo <= last.Hi || (last.Hi != timeseq.Infinity && iv.Lo == last.Hi+1) {
				if iv.Hi > last.Hi {
					last.Hi = iv.Hi
				}
				continue
			}
		}
		out = append(out, iv)
	}
	return out
}

// Instant is the degenerate lifespan {t}.
func Instant(t timeseq.Time) Lifespan { return Lifespan{{Lo: t, Hi: t}} }

// Always is the lifespan [0, ∞).
func Always() Lifespan { return Lifespan{{Lo: 0, Hi: timeseq.Infinity}} }

// Contains reports whether t lies in the lifespan, by binary search.
func (l Lifespan) Contains(t timeseq.Time) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].Hi >= t })
	return i < len(l) && l[i].Contains(t)
}

// Union returns l ∪ o.
func (l Lifespan) Union(o Lifespan) Lifespan {
	return NewLifespan(append(append([]Interval{}, l...), o...)...)
}

// Intersect returns l ∩ o.
func (l Lifespan) Intersect(o Lifespan) Lifespan {
	var out []Interval
	for _, a := range l {
		for _, b := range o {
			lo, hi := a.Lo, a.Hi
			if b.Lo > lo {
				lo = b.Lo
			}
			if b.Hi < hi {
				hi = b.Hi
			}
			if lo <= hi {
				out = append(out, Interval{lo, hi})
			}
		}
	}
	return NewLifespan(out...)
}

// Complement returns the complement of l with respect to [0, ∞).
func (l Lifespan) Complement() Lifespan {
	var out []Interval
	cur := timeseq.Time(0)
	open := true // [cur, …) is currently outside l
	for _, iv := range l {
		if iv.Lo > 0 && open {
			if iv.Lo-1 >= cur {
				out = append(out, Interval{cur, iv.Lo - 1})
			}
		}
		if iv.Hi == timeseq.Infinity {
			open = false
			break
		}
		cur = iv.Hi + 1
	}
	if open {
		out = append(out, Interval{cur, timeseq.Infinity})
	}
	return NewLifespan(out...)
}

// Equal compares canonical lifespans.
func (l Lifespan) Equal(o Lifespan) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the lifespan.
func (l Lifespan) String() string {
	if len(l) == 0 {
		return "∅"
	}
	parts := make([]string, len(l))
	for i, iv := range l {
		if iv.Hi == timeseq.Infinity {
			parts[i] = fmt.Sprintf("[%d,∞)", iv.Lo)
		} else if iv.Lo == iv.Hi {
			parts[i] = fmt.Sprintf("{%d}", iv.Lo)
		} else {
			parts[i] = fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
		}
	}
	return strings.Join(parts, "∪")
}
