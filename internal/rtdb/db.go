package rtdb

import (
	"fmt"
	"sort"
	"strconv"

	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

// Value is the value of a data object (a string, as in the relational
// substrate).
type Value = string

// Sample is one archival snapshot of an image object: the value read from
// the external environment and its sampling (valid) time. §5.1.2 assumes
// valid and transaction time coincide (immediate firing on image updates).
type Sample struct {
	At    timeseq.Time
	Value Value
}

// ImageObject is an object "containing information obtained directly from
// the external environment", sampled every Period chronons. Archival
// variants are kept so that different snapshots at different points in time
// are available (the I_1, …, I_{n-1} of the instance definition).
type ImageObject struct {
	Name   string
	Period timeseq.Time
	// Read produces the external value at a sampling instant — the
	// simulated physical world.
	Read func(t timeseq.Time) Value

	history []Sample
	// sampleKind is the precomputed "sample:<name>" event kind, so the hot
	// injection path does not rebuild the string per sample.
	sampleKind string
}

// Latest returns the most recent sample, if any.
func (o *ImageObject) Latest() (Sample, bool) {
	if len(o.history) == 0 {
		return Sample{}, false
	}
	return o.history[len(o.history)-1], true
}

// At returns the sample that was current at time t (the archival lookup).
func (o *ImageObject) At(t timeseq.Time) (Sample, bool) {
	i := sort.Search(len(o.history), func(i int) bool { return o.history[i].At > t })
	if i == 0 {
		return Sample{}, false
	}
	return o.history[i-1], true
}

// History returns all archival samples, oldest first.
func (o *ImageObject) History() []Sample { return o.history }

// DerivedObject is "computed from a set of image objects and possibly other
// objects"; its timestamp is the oldest valid time of the objects used to
// derive it.
type DerivedObject struct {
	Name    string
	Sources []string
	// Derive computes the value from the named sources' current values.
	Derive func(src map[string]Value) Value

	value Value
	// stamp is the oldest valid time among the sources at derivation.
	stamp timeseq.Time
	valid bool
}

// Current returns the derived value and its timestamp.
func (o *DerivedObject) Current() (Value, timeseq.Time, bool) {
	return o.value, o.stamp, o.valid
}

// FiringMode selects when a triggered rule runs (§5.1.2, active databases).
type FiringMode int

const (
	// Immediate: the rule fires as soon as its event and condition hold.
	Immediate FiringMode = iota
	// Deferred: rule invocation is delayed until the end of the current
	// chronon (the quiescent state in the absence of further rules).
	Deferred
	// Concurrent: the action is spawned as a separate scheduler event,
	// running after the triggering transaction but within the same chronon
	// ordering discipline.
	Concurrent
)

// String implements fmt.Stringer.
func (m FiringMode) String() string {
	switch m {
	case Immediate:
		return "immediate"
	case Deferred:
		return "deferred"
	default:
		return "concurrent"
	}
}

// Event is an occurrence a rule can react to: an external phenomenon or an
// internal change. Attributes are passed to the rule ("events may have
// attributes that are passed to the system").
type Event struct {
	Kind string
	At   timeseq.Time
	Attr map[string]Value
}

// Rule is "on event if condition then action" with a firing mode.
type Rule struct {
	Name string
	On   string // event kind
	Mode FiringMode
	If   func(db *DB, e Event) bool
	Then func(db *DB, e Event)
}

// Scheduler priorities within one chronon: samples happen first, then
// rule cascades, then deferred rules at the quiescent point.
const (
	prioSample     = 0
	prioConcurrent = 5
	prioDeferred   = 9
)

// DB is a live real-time database instance
// B = (I_1, …, I_n, D, V) driven by a virtual-time scheduler.
type DB struct {
	sched      *vtime.Scheduler
	images     map[string]*ImageObject
	derived    map[string]*DerivedObject
	invariants map[string]Value
	rules      []Rule
	// listeners counts rules per event kind; raising an event no rule
	// listens to can then skip building the event entirely.
	listeners map[string]int
	// view is the cached ViewNow result, dropped on every mutation.
	view *View

	deferred        []func()
	deferredArmed   bool
	fired           []string // firing log: "time:rule" for tests/diagnostics
	cascadeDepthCap int
	raiseDepth      int
	maxCascade      int
}

// New creates an empty database bound to a scheduler.
func New(s *vtime.Scheduler) *DB {
	return &DB{
		sched:           s,
		images:          make(map[string]*ImageObject),
		derived:         make(map[string]*DerivedObject),
		invariants:      make(map[string]Value),
		listeners:       make(map[string]int),
		cascadeDepthCap: 64,
	}
}

// Scheduler exposes the underlying clock.
func (db *DB) Scheduler() *vtime.Scheduler { return db.sched }

// Now returns the current virtual time.
func (db *DB) Now() timeseq.Time { return db.sched.Now() }

// AddInvariant registers an invariant object ("a value that is constant
// with time"). Its timestamp is always the current time, per §5.1.2.
func (db *DB) AddInvariant(name string, v Value) {
	db.invariants[name] = v
	db.view = nil
}

// Invariant looks up an invariant object.
func (db *DB) Invariant(name string) (Value, bool) {
	v, ok := db.invariants[name]
	return v, ok
}

// AddImage registers an image object and schedules its periodic sampling
// starting at time 0 (or now, if the clock already advanced). Each sampling
// generates an event "sample:<name>" that the rule engine handles.
//
// An image with a nil Read function is registered in served mode: no
// sampling is scheduled, and its history grows only through InjectSample —
// the shape a server needs when external clients, not a simulated world,
// provide the samples.
func (db *DB) AddImage(o *ImageObject) {
	o.sampleKind = "sample:" + o.Name
	db.images[o.Name] = o
	db.view = nil
	if o.Read == nil {
		return
	}
	start := db.sched.Now()
	db.sched.Every(start, o.Period, prioSample, func() {
		t := db.sched.Now()
		v := o.Read(t)
		o.history = append(o.history, Sample{At: t, Value: v})
		db.view = nil
		db.raiseSample(o, t, v)
	})
}

// raiseSample raises the "sample:<name>" event for a fresh sample — unless
// no rule listens for it, in which case the event (and its attribute map)
// is never built. Rules observe identical behavior either way: an event
// with no matching rule is a no-op in the engine.
func (db *DB) raiseSample(o *ImageObject, t timeseq.Time, v Value) {
	if db.listeners[o.sampleKind] == 0 {
		return
	}
	db.Raise(Event{Kind: o.sampleKind, At: t, Attr: map[string]Value{"value": v}})
}

// InjectSample records an externally supplied sample for the named image at
// the current virtual time and raises the same "sample:<name>" event a
// scheduled sampling would, so active rules fire identically whether the
// value came from a Read function or from a client session.
func (db *DB) InjectSample(name string, v Value) error {
	o, ok := db.images[name]
	if !ok {
		return fmt.Errorf("rtdb: unknown image object %q", name)
	}
	t := db.sched.Now()
	if n := len(o.history); n > 0 && o.history[n-1].At > t {
		return fmt.Errorf("rtdb: sample for %q at %d precedes last sample at %d", name, t, o.history[n-1].At)
	}
	o.history = append(o.history, Sample{At: t, Value: v})
	db.view = nil
	db.raiseSample(o, t, v)
	return nil
}

// Image looks up an image object.
func (db *DB) Image(name string) (*ImageObject, bool) {
	o, ok := db.images[name]
	return o, ok
}

// AddDerived registers a derived object. Recomputation is wired by the
// caller through rules (typically: on sample of any source, rederive) or by
// calling Rederive explicitly; §5.1.2 notes one may, e.g., impose immediate
// firing for image updates but deferred firing for derived objects.
func (db *DB) AddDerived(o *DerivedObject) {
	db.derived[o.Name] = o
	db.view = nil
}

// Derived looks up a derived object.
func (db *DB) Derived(name string) (*DerivedObject, bool) {
	o, ok := db.derived[name]
	return o, ok
}

// Rederive recomputes a derived object from the current source values; the
// timestamp becomes the oldest source valid time.
func (db *DB) Rederive(name string) error {
	o, ok := db.derived[name]
	if !ok {
		return fmt.Errorf("rtdb: unknown derived object %q", name)
	}
	src := make(map[string]Value, len(o.Sources))
	oldest := timeseq.Infinity
	for _, s := range o.Sources {
		if img, ok := db.images[s]; ok {
			smp, has := img.Latest()
			if !has {
				return fmt.Errorf("rtdb: source %q has no sample yet", s)
			}
			src[s] = smp.Value
			if smp.At < oldest {
				oldest = smp.At
			}
			continue
		}
		if v, ok := db.invariants[s]; ok {
			src[s] = v
			// Invariant timestamps are "always the current time".
			if db.Now() < oldest {
				oldest = db.Now()
			}
			continue
		}
		if d, ok := db.derived[s]; ok && d.valid {
			src[s] = d.value
			if d.stamp < oldest {
				oldest = d.stamp
			}
			continue
		}
		return fmt.Errorf("rtdb: unknown source %q for derived %q", s, name)
	}
	o.value = o.Derive(src)
	o.stamp = oldest
	o.valid = true
	return nil
}

// AddRule registers a rule.
func (db *DB) AddRule(r Rule) {
	db.rules = append(db.rules, r)
	db.listeners[r.On]++
}

// Raise delivers an event to the rule engine under the firing-mode
// semantics. Immediate rules run inline (and may cascade, bounded by the
// cascade cap); concurrent rules are scheduled as separate events in the
// same chronon; deferred rules run at the chronon's quiescent point.
func (db *DB) Raise(e Event) {
	db.raise(e, db.raiseDepth)
}

func (db *DB) raise(e Event, depth int) {
	if depth > db.cascadeDepthCap {
		panic(fmt.Sprintf("rtdb: rule cascade deeper than %d (non-terminating rule set?)", db.cascadeDepthCap))
	}
	if depth > db.maxCascade {
		db.maxCascade = depth
	}
	for i := range db.rules {
		r := db.rules[i]
		if r.On != e.Kind {
			continue
		}
		switch r.Mode {
		case Immediate:
			if r.If == nil || r.If(db, e) {
				db.logFiring(r.Name)
				db.runAction(r, e, depth)
			}
		case Concurrent:
			db.sched.At(db.Now(), prioConcurrent, func() {
				if r.If == nil || r.If(db, e) {
					db.logFiring(r.Name)
					db.runAction(r, e, depth)
				}
			})
		case Deferred:
			db.deferred = append(db.deferred, func() {
				// Deferred rules evaluate their condition against the
				// final (quiescent) state.
				if r.If == nil || r.If(db, e) {
					db.logFiring(r.Name)
					db.runAction(r, e, depth)
				}
			})
			if !db.deferredArmed {
				db.deferredArmed = true
				db.sched.At(db.Now(), prioDeferred, db.flushDeferred)
			}
		}
	}
}

// logFiring appends "time:rule" to the firing log.
func (db *DB) logFiring(rule string) {
	db.fired = append(db.fired, strconv.FormatUint(uint64(db.Now()), 10)+":"+rule)
}

func (db *DB) runAction(r Rule, e Event, depth int) {
	// Actions may raise further events; thread the cascade depth through a
	// temporary override of Raise.
	prev := db.raiseDepth
	db.raiseDepth = depth + 1
	r.Then(db, e)
	db.raiseDepth = prev
}

func (db *DB) flushDeferred() {
	db.deferredArmed = false
	pending := db.deferred
	db.deferred = nil
	for _, f := range pending {
		f()
	}
}

// FiringLog returns the recorded rule firings ("time:rule").
func (db *DB) FiringLog() []string { return db.fired }

// CascadeDepthMax returns the deepest rule cascade observed so far — an
// observability hook for the serving layer's metrics block.
func (db *DB) CascadeDepthMax() int { return db.maxCascade }

// ViewNow assembles the §5.1.3 View of the database's current state. The
// maps and histories are shared, not copied: the view is a read-only window
// valid until the database is next mutated, which is exactly the lifetime a
// query evaluation inside a serializing apply loop needs. Between
// mutations the view is cached (only its Now advances), so back-to-back
// query evaluations stop paying a pair of map builds each.
func (db *DB) ViewNow() *View {
	if db.view == nil {
		samples := make(map[string][]Sample, len(db.images))
		for n, o := range db.images {
			samples[n] = o.history
		}
		derived := make(map[string]*DerivedObject, len(db.derived))
		for n, d := range db.derived {
			derived[n] = d
		}
		db.view = &View{Invariants: db.invariants, Samples: samples, Derived: derived}
	}
	db.view.Now = db.Now()
	return db.view
}
