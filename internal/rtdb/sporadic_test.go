package rtdb

import (
	"testing"

	"rtc/internal/core"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

func testSporadic() SporadicSpec {
	sp := testSpec()
	return SporadicSpec{
		Query:  "temp_q",
		First:  3,
		MinGap: 4,
		MaxGap: 11,
		Seed:   17,
		Candidates: func(i uint64, issue timeseq.Time) Value {
			v := sp.ViewAt(issue)
			s, _ := v.Latest("temp")
			return s.Value
		},
	}
}

func TestSporadicIssueTimes(t *testing.T) {
	ss := testSporadic()
	prev := timeseq.Time(0)
	for i := uint64(0); i < 20; i++ {
		at := ss.IssueTime(i)
		if i == 0 {
			if at != ss.First {
				t.Fatalf("first issue at %d", at)
			}
		} else {
			gap := at - prev
			if gap < ss.MinGap || gap > ss.MaxGap {
				t.Fatalf("gap %d out of [%d,%d] at invocation %d", gap, ss.MinGap, ss.MaxGap, i)
			}
		}
		prev = at
	}
	// Deterministic.
	if ss.IssueTime(7) != ss.IssueTime(7) {
		t.Error("issue times not deterministic")
	}
	// Irregular: not all gaps equal (otherwise it degenerates to periodic).
	gaps := map[timeseq.Time]bool{}
	for i := uint64(1); i < 12; i++ {
		gaps[ss.IssueTime(i)-ss.IssueTime(i-1)] = true
	}
	if len(gaps) < 2 {
		t.Error("sporadic gaps look periodic")
	}
}

func TestSporadicWordWellBehaved(t *testing.T) {
	ss := testSporadic()
	w := ss.Word()
	if !word.MonotoneWithin(w, 1500) {
		t.Error("sporadic word not monotone")
	}
	if !word.WellBehavedWithin(w, 1500) {
		t.Error("sporadic word should look well behaved")
	}
	if idx, ok := Lemma51Bound(w, 150, 1_000_000); !ok {
		t.Error("no finite index passes 150")
	} else if w.At(idx).At < 150 {
		t.Error("bound witness wrong")
	}
}

func TestRunSporadicAllServed(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	ss := testSporadic()
	if !sp.MemberN(cat, ss, 8) {
		t.Fatal("ground truth rejects; candidate function wrong")
	}
	res, acc := RunSporadic(sp, ss, cat, reg, 1, 200)
	if res.Verdict != core.AcceptAtHorizon {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if acc.Served() < 8 || acc.Failed() != 0 {
		t.Fatalf("served=%d failed=%d", acc.Served(), acc.Failed())
	}
}

func TestRunSporadicFailure(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	ss := testSporadic()
	good := ss.Candidates
	ss.Candidates = func(i uint64, issue timeseq.Time) Value {
		if i == 3 {
			return "bogus"
		}
		return good(i, issue)
	}
	if sp.MemberN(cat, ss, 8) {
		t.Fatal("ground truth should reject")
	}
	res, acc := RunSporadic(sp, ss, cat, reg, 1, 300)
	if res.Verdict != core.RejectProven {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if acc.Failed() == 0 {
		t.Fatal("failure not recorded")
	}
	if res.FCount > 3 {
		t.Fatalf("FCount = %d after failing invocation 3", res.FCount)
	}
}
