package netserve

import (
	"fmt"
	"sync/atomic"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/server"
)

// benchNet stands up a loopback server with nConns pre-dialed clients, so
// the benchmark loop measures the serving path (frame codec, write queue,
// session, apply loop) and not dial/handshake cost.
func benchNet(b *testing.B, nConns int) []*client.Client {
	b.Helper()
	cfg := testConfig()
	cfg.Sessions = nConns
	cfg.QueueDepth = 256
	s, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	ns := New(s, Options{WriteQueue: 256, MaxInflight: 64})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = ns.Close()
		s.Stop()
	})
	conns := make([]*client.Client, nConns)
	for i := range conns {
		c, err := client.Dial(addr.String(), client.Options{Name: fmt.Sprintf("bench-%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		conns[i] = c
	}
	// Seed one sample so queries have data to answer from.
	if err := conns[0].InjectSample("temp", "21"); err != nil {
		b.Fatal(err)
	}
	if err := conns[0].Flush(); err != nil {
		b.Fatal(err)
	}
	return conns
}

// BenchmarkNetQuery measures firm-deadline query round trips over loopback
// TCP across 4 client connections (the acceptance-criteria shape).
func BenchmarkNetQuery(b *testing.B) {
	conns := benchNet(b, 4)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := conns[next.Add(1)%uint64(len(conns))]
		for pb.Next() {
			r, err := c.Query(client.Query{
				Query: "status_q", Candidate: "ok",
				Kind: deadline.Firm, Deadline: 1 << 30, MinUseful: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !r.Evaluated {
				b.Fatal("query not evaluated")
			}
		}
	})
}

// BenchmarkNetSample measures fire-and-forget sample injection over one
// connection, flushing at the end so every sample is applied.
func BenchmarkNetSample(b *testing.B) {
	conns := benchNet(b, 1)
	c := conns[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.InjectSample("temp", "21"); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}
