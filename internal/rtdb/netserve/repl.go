package netserve

import (
	"errors"
	"time"

	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtwire"
)

// serveReplication is the primary side of WAL streaming: one goroutine per
// subscribed follower, running a two-state machine.
//
//	CATCH-UP: read batches straight from the segment files (ReadSince)
//	  until the follower is at the tail. A sequence that compaction has
//	  removed forces a full-state resync (chunked Snap frames) instead.
//	LIVE: consume the log's tail subscription. Duplicates (already read
//	  during catch-up) are skipped; a gap — the bounded tail buffer
//	  overflowed because this follower is slow — drops back to CATCH-UP.
//
// The send window (opt.ReplWindow) bounds unacknowledged events in flight;
// a follower that stops acking stalls only this goroutine. The apply loop
// is never blocked: the log's tail publish is non-blocking by construction.
//
// Teardown rides on rstop (closed the moment the connection's read loop
// returns) rather than done, because this goroutine is inflight-counted
// and done only closes after the inflight wait.
func (c *conn) serveReplication(sub rtwire.Subscribe) {
	defer c.inflight.Done()
	l := c.n.srv.WAL()
	epoch := c.n.srv.Epoch()
	sent := sub.AfterSeq
	acked := sub.AfterSeq
	hb := time.NewTicker(c.n.opt.HeartbeatInterval)
	defer hb.Stop()

	heartbeat := func() {
		c.tryEnqueue(rtwire.Heartbeat{Epoch: epoch, Chronon: c.n.srv.Now(), Seq: l.Seq()}.Encode())
	}
	// waitWindow blocks until the unacked backlog fits the send window;
	// false means the connection is tearing down or the follower was
	// evicted for stalling.
	waitWindow := func() bool {
		if !c.awaitAcks(&sent, &acked, hb, heartbeat) {
			return false
		}
		// Fold in any acks already queued without blocking.
		for {
			select {
			case ack := <-c.ackCh:
				if ack > acked {
					acked = ack
				}
			default:
				return true
			}
		}
	}
	sendBatch := func(events []wal.SeqEvent) bool {
		payloads := make([]string, len(events))
		for i, se := range events {
			payloads[i] = string(se.Event.Payload())
		}
		ok := c.sendRepl(rtwire.WalBatch{
			Epoch: epoch, FirstSeq: events[0].Seq, Events: payloads,
		}.Encode())
		if ok {
			c.n.Wire.ReplBatchesOut.Add(1)
			sent = events[len(events)-1].Seq
		}
		return ok && waitWindow()
	}

	for {
		// CATCH-UP: drain the segments until the follower is at the tail.
		events, err := l.ReadSince(sent, c.n.opt.ReplBatch)
		switch {
		case err == nil && len(events) > 0:
			if !sendBatch(events) {
				return
			}
			continue
		case errors.Is(err, wal.ErrSeqCompacted):
			var ok bool
			if sent, ok = c.sendResync(l, epoch); !ok {
				return
			}
			continue
		case errors.Is(err, wal.ErrSeqFuture):
			// The follower claims a longer log than ours: it has history
			// we never wrote (a deposed-primary scenario). Refuse rather
			// than stream a divergent suffix.
			c.tryEnqueue(rtwire.Err{Code: rtwire.CodeStale, Msg: "follower is ahead of this log"}.Encode())
			return
		case err != nil:
			return // log closed or poisoned; the follower will redial
		}

		// LIVE: subscribe first, then re-read once — an append landing
		// between the ReadSince above and the subscription would otherwise
		// be lost.
		tail := l.SubscribeTail(c.n.opt.TailBuffer)
		events, err = l.ReadSince(sent, c.n.opt.ReplBatch)
		if err != nil || len(events) > 0 {
			tail.Close()
			if err != nil && !errors.Is(err, wal.ErrSeqCompacted) {
				return
			}
			continue // deliver via catch-up, then try again
		}
		if !c.liveTail(tail, epoch, &sent, &acked, hb, heartbeat) {
			return
		}
		c.n.Wire.ReplGapRestarts.Add(1)
		// Fell out of live mode on a gap: back to catch-up.
	}
}

// liveTail streams the tail subscription until a gap (false abort reasons
// return false; a gap returns true so the caller re-enters catch-up).
func (c *conn) liveTail(tail *wal.Tail, epoch uint64, sent, acked *uint64, hb *time.Ticker, heartbeat func()) (gap bool) {
	defer tail.Close()
	for {
		select {
		case se, ok := <-tail.C:
			if !ok {
				return false // log closed
			}
			if se.Seq <= *sent {
				continue // duplicate of the catch-up read
			}
			if se.Seq != *sent+1 {
				return true // buffer overflowed: catch up from disk
			}
			batch := []wal.SeqEvent{se}
			// Coalesce whatever else is already buffered, stopping at a
			// gap inside the run.
			contiguous := true
		coalesce:
			for len(batch) < c.n.opt.ReplBatch {
				select {
				case next, ok := <-tail.C:
					if !ok {
						break coalesce
					}
					if next.Seq != batch[len(batch)-1].Seq+1 {
						contiguous = false
						break coalesce
					}
					batch = append(batch, next)
				default:
					break coalesce
				}
			}
			payloads := make([]string, len(batch))
			for i, b := range batch {
				payloads[i] = string(b.Event.Payload())
			}
			if !c.sendRepl(rtwire.WalBatch{
				Epoch: epoch, FirstSeq: batch[0].Seq, Events: payloads,
			}.Encode()) {
				return false
			}
			c.n.Wire.ReplBatchesOut.Add(1)
			*sent = batch[len(batch)-1].Seq
			if !contiguous {
				return true
			}
			if !c.awaitAcks(sent, acked, hb, heartbeat) {
				return false
			}
		case ack := <-c.ackCh:
			if ack > *acked {
				*acked = ack
			}
		case <-hb.C:
			heartbeat()
		case <-c.rstop:
			return false
		case <-c.n.quit:
			return false
		}
	}
}

// sendResync streams a full state dump in chunked Snap frames, returning
// the sequence the dump corresponds to. The follower wipes its log and
// bootstraps from the dump — the only recovery when the events it needs
// were compacted away.
func (c *conn) sendResync(l *wal.Log, epoch uint64) (uint64, bool) {
	events, seq, lastAt := l.DumpState()
	c.n.Wire.ReplResyncs.Add(1)
	for start := 0; start < len(events); start += c.n.opt.ReplBatch {
		end := min(start+c.n.opt.ReplBatch, len(events))
		payloads := make([]string, end-start)
		for i, e := range events[start:end] {
			payloads[i] = string(e.Payload())
		}
		if !c.sendRepl(rtwire.WalBatch{
			Epoch: epoch, Snap: rtwire.SnapPart, Events: payloads,
		}.Encode()) {
			return 0, false
		}
		c.n.Wire.ReplBatchesOut.Add(1)
	}
	if !c.sendRepl(rtwire.WalBatch{
		Epoch: epoch, Snap: rtwire.SnapFinal, SnapSeq: seq, SnapLastAt: lastAt,
	}.Encode()) {
		return 0, false
	}
	c.n.Wire.ReplBatchesOut.Add(1)
	return seq, true
}

// awaitAcks blocks while the unacked backlog exceeds the send window,
// folding in follower acks as they arrive. A follower whose window stays
// full with zero ack progress for ReplStallTimeout is evicted: the read
// loop is interrupted so the whole connection tears down, and the
// follower redials into a fresh catch-up. False means stop streaming —
// teardown, quit, or eviction.
func (c *conn) awaitAcks(sent, acked *uint64, hb *time.Ticker, heartbeat func()) bool {
	if *sent-*acked <= uint64(c.n.opt.ReplWindow) {
		return true
	}
	stall := time.NewTimer(c.n.opt.ReplStallTimeout)
	defer stall.Stop()
	for *sent-*acked > uint64(c.n.opt.ReplWindow) {
		select {
		case ack := <-c.ackCh:
			if ack > *acked {
				*acked = ack
				// Progress: push the eviction horizon out.
				if !stall.Stop() {
					select {
					case <-stall.C:
					default:
					}
				}
				stall.Reset(c.n.opt.ReplStallTimeout)
			}
		case <-hb.C:
			heartbeat()
		case <-stall.C:
			c.n.Wire.ReplStallEvictions.Add(1)
			c.interruptRead()
			return false
		case <-c.rstop:
			return false
		case <-c.n.quit:
			return false
		}
	}
	return true
}

// sendRepl queues one replication frame, aborting on teardown instead of
// on done (see serveReplication).
func (c *conn) sendRepl(frame []byte) bool {
	select {
	case c.writeq <- frame:
		return true
	case <-c.rstop:
		return false
	case <-c.n.quit:
		return false
	}
}
