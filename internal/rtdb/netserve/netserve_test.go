package netserve

import (
	"net"
	"strconv"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func testConfig() server.Config {
	return server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "22"},
			Derived: []*rtdb.DerivedObject{{
				Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
			}},
			Images: []*rtdb.ImageObject{{Name: "temp", Period: 5}},
		},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusDerive},
	}
}

// startNet stands up a started rtdb server behind a loopback listener and
// tears both down (listener first, then server — the documented order).
func startNet(t testing.TB, cfg server.Config, opt Options) (*server.Server, *Server, string) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ns := New(s, opt)
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = ns.Close()
		s.Stop()
	})
	return s, ns, addr.String()
}

// checkConservation asserts the two laws the wire layer must not break:
// every query submission is accounted exactly once, and at quiesce every
// accepted sample has been applied.
func checkConservation(t *testing.T, s *server.Server) {
	t.Helper()
	m := s.Metrics.Snapshot()
	if got := m.QueriesRejected + m.DeadlineHit + m.DeadlineMiss + m.NoDeadline; m.QueriesIn != got {
		t.Errorf("conservation: QueriesIn %d != accounted %d (%+v)", m.QueriesIn, got, m)
	}
	if m.SamplesIn != m.SamplesApplied {
		t.Errorf("conservation: SamplesIn %d != SamplesApplied %d", m.SamplesIn, m.SamplesApplied)
	}
}

// TestServeBasics drives every request kind through the full client →
// TCP → session → apply-loop path.
func TestServeBasics(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 2
	s, ns, addr := startNet(t, cfg, Options{})

	c, err := client.Dial(addr, client.Options{Name: "basics"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Class (i): no deadline.
	r, err := c.Query(client.Query{Query: "status_q", Candidate: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match || !r.Evaluated || r.Missed {
		t.Fatalf("no-deadline query: %+v", r)
	}

	// Class (ii): a generous firm deadline is met over the wire.
	r, err = c.Query(client.Query{
		Query: "temp_q", Candidate: "21",
		Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match || r.Missed || !r.Evaluated || r.ExpiredOnArrival {
		t.Fatalf("firm query: %+v", r)
	}

	// Temporal read: learn the horizon, then read at it.
	if _, _, _, err := c.AsOf("temp", 0); err != nil {
		t.Fatal(err)
	}

	// Metrics over the wire: server rows first, then the net_* rows.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	mm := m.Map()
	if mm["queries_in"] != 2 {
		t.Errorf("queries_in over wire = %d, want 2", mm["queries_in"])
	}
	if _, ok := mm["net_frames_in"]; !ok {
		t.Errorf("wire metrics missing net_frames_in: %v", mm)
	}
	if mm["net_conns_accepted"] != 1 {
		t.Errorf("net_conns_accepted = %d, want 1", mm["net_conns_accepted"])
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	if got := ns.Wire.ConnsAccepted.Load(); got != ns.Wire.ConnsClosed.Load() {
		t.Errorf("ConnsAccepted %d != ConnsClosed %d", got, ns.Wire.ConnsClosed.Load())
	}
}

// rawConn is a frame-level test client: it lets the suite hand-craft wire
// images (exact Elapsed values, out-of-order kinds) that the client
// package would never produce.
type rawConn struct {
	t  *testing.T
	nc net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) write(frame []byte) {
	r.t.Helper()
	_ = r.nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.nc.Write(frame); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) read() any {
	r.t.Helper()
	_ = r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := rtwire.ReadFrame(r.nc)
	if err != nil {
		r.t.Fatal(err)
	}
	msg, err := rtwire.Decode(f)
	if err != nil {
		r.t.Fatal(err)
	}
	return msg
}

func (r *rawConn) handshake() rtwire.Welcome {
	r.t.Helper()
	r.write(rtwire.Hello{Client: "raw"}.Encode())
	w, ok := r.read().(rtwire.Welcome)
	if !ok {
		r.t.Fatal("no welcome")
	}
	return w
}

// TestExpiredOnArrivalRawFrame hand-crafts the wire image of a firm query
// whose budget was consumed in transit (Elapsed 10 ≥ Deadline 5). The
// server must reject it unevaluated, answer with a missed Result, and
// account it — deterministically, with no clocks involved.
func TestExpiredOnArrivalRawFrame(t *testing.T) {
	s, ns, addr := startNet(t, testConfig(), Options{})
	rc := dialRaw(t, addr)
	rc.handshake()

	rc.write(rtwire.Query{
		ID: 1, Query: "status_q", Kind: deadline.Firm,
		Deadline: 5, Elapsed: 10, MinUseful: 1,
	}.Encode())
	res, ok := rc.read().(rtwire.Result)
	if !ok {
		t.Fatal("no result")
	}
	if !res.Missed || res.Evaluated || !res.ExpiredOnArrival {
		t.Fatalf("expired-on-arrival result: %+v", res)
	}

	// A live query on the same connection still evaluates.
	rc.write(rtwire.Query{
		ID: 2, Query: "status_q", Kind: deadline.Firm,
		Deadline: 1 << 20, Elapsed: 3, MinUseful: 1,
	}.Encode())
	res, ok = rc.read().(rtwire.Result)
	if !ok {
		t.Fatal("no result")
	}
	if res.Missed || !res.Evaluated || res.ExpiredOnArrival {
		t.Fatalf("live query after expired one: %+v", res)
	}

	rc.write(rtwire.Bye{Reason: "done"}.Encode())
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}

	m := s.Metrics.Snapshot()
	if m.ExpiredOnArrival != 1 {
		t.Errorf("ExpiredOnArrival = %d, want 1", m.ExpiredOnArrival)
	}
	if m.QueriesIn != 2 || m.DeadlineMiss != 1 || m.DeadlineHit != 1 {
		t.Errorf("accounting: %+v", m)
	}
	if got := ns.Wire.ExpiredOnArrival.Load(); got != 1 {
		t.Errorf("wire ExpiredOnArrival = %d, want 1", got)
	}
	checkConservation(t, s)
}

// TestSoftBelowMinUsefulAtDequeue: the query survives arrival (Elapsed 0)
// but evaluation costs 5 chronons against a soft deadline of 3, so at
// dequeue U(5) = 8/(5−3) = 4 < MinUseful 6 — admission control must skip
// the evaluation and account the miss. ChrononDuration is an hour so the
// client-side Elapsed stamp is deterministically 0.
func TestSoftBelowMinUsefulAtDequeue(t *testing.T) {
	cfg := testConfig()
	cfg.EvalCost = 5
	s, _, addr := startNet(t, cfg, Options{})

	c, err := client.Dial(addr, client.Options{ChrononDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := c.Query(client.Query{
		Query: "status_q", Kind: deadline.Soft, Deadline: 3, MinUseful: 6,
		Decay: rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Missed || r.Evaluated || r.ExpiredOnArrival {
		t.Fatalf("admission-skip result: %+v", r)
	}
	if r.Useful != 4 {
		t.Errorf("usefulness at completion = %d, want 4", r.Useful)
	}
	if got := s.Metrics.AdmissionSkip.Load(); got != 1 {
		t.Errorf("AdmissionSkip = %d, want 1", got)
	}

	// Lower the bar below U(5) and the same shape is served late-but-useful.
	r, err = c.Query(client.Query{
		Query: "status_q", Kind: deadline.Soft, Deadline: 3, MinUseful: 3,
		Decay: rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Missed || !r.Evaluated || r.Useful != 4 {
		t.Fatalf("soft-but-useful result: %+v", r)
	}
}

// TestHandshakeDiscipline: a first frame that is not Hello is refused with
// CodeBadRequest; a connection beyond the session pool is refused with
// CodeServerFull; a freed session is reusable.
func TestHandshakeDiscipline(t *testing.T) {
	cfg := testConfig()
	cfg.Sessions = 1
	_, ns, addr := startNet(t, cfg, Options{})

	// Wrong first frame.
	rc := dialRaw(t, addr)
	rc.write(rtwire.Sample{ID: 1, Image: "temp", Value: "9"}.Encode())
	if e, ok := rc.read().(rtwire.Err); !ok || e.Code != rtwire.CodeBadRequest {
		t.Fatalf("non-hello first frame: %+v", e)
	}

	// Pool exhaustion: the only session is held by c1.
	c1, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc2 := dialRaw(t, addr)
	rc2.write(rtwire.Hello{Client: "second"}.Encode())
	if e, ok := rc2.read().(rtwire.Err); !ok || e.Code != rtwire.CodeServerFull {
		t.Fatalf("over-pool dial: %+v", e)
	}

	// Session returns to the pool after close and is reusable.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	var c2 *client.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err = client.Dial(addr, client.Options{RetryAttempts: -1})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never returned to pool: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c2.Close()

	// The poll loop above may itself collect server-full refusals before
	// the session lands back in the pool, so 2 is a floor, not an equality.
	if got := ns.Wire.ConnsRefused.Load(); got < 2 {
		t.Errorf("ConnsRefused = %d, want >= 2", got)
	}
}

// TestSampleBackpressure fills the one-deep session queue of a deliberately
// stalled server (Start comes later) and asserts the overflow comes back as
// an explicit CodeBackpressure Err frame — never silence, never a blocked
// read loop.
func TestSampleBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns := New(s, Options{})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rc := dialRaw(t, addr.String())
	rc.handshake()
	// With no forwarder running, the queue holds exactly one sample.
	rc.write(rtwire.Sample{ID: 1, Image: "temp", Value: "1"}.Encode())
	rc.write(rtwire.Sample{ID: 2, Image: "temp", Value: "2"}.Encode())
	e, ok := rc.read().(rtwire.Err)
	if !ok || e.Code != rtwire.CodeBackpressure || e.ID != 2 {
		t.Fatalf("overflow sample: %+v", e)
	}

	// Start the apply loop so the drain's session flush can complete.
	s.Start()
	rc.write(rtwire.Bye{Reason: "done"}.Encode())
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	s.Stop()

	if got := ns.Wire.BackpressureFrames.Load(); got != 1 {
		t.Errorf("BackpressureFrames = %d, want 1", got)
	}
	checkConservation(t, s)
}
