package netserve

import (
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/rtwire"
)

// expectSubAck reads frames until a SubAck arrives, collecting any pushes
// that race past it (the pump and the read loop share the write queue, so a
// few already-popped pushes may trail a closing ack).
func expectSubAck(t *testing.T, rc *rawConn, pushes *[]rtwire.Push) rtwire.SubAck {
	t.Helper()
	for {
		switch m := rc.read().(type) {
		case rtwire.Push:
			if pushes != nil {
				*pushes = append(*pushes, m)
			}
		case rtwire.SubAck:
			return m
		default:
			t.Fatalf("waiting for SubAck, got %T: %+v", m, m)
		}
	}
}

// TestSubscribeOverWire drives the full standing-query flow frame by frame:
// open, admitted ack, pushes as the clock advances, cancel, closing ack —
// with the client-side cursor audit and the server-side conservation law
// both checked at the end.
func TestSubscribeOverWire(t *testing.T) {
	s, ns, addr := startNet(t, testConfig(), Options{})
	rc := dialRaw(t, addr)
	rc.handshake()

	rc.write(rtwire.SubOpen{
		ID: 7, Query: "temp_q", Period: 2,
		Kind: deadline.Soft, Deadline: 5, Depth: 16,
	}.Encode())
	ack, ok := rc.read().(rtwire.SubAck)
	if !ok || ack.ID != 7 || ack.State != rtwire.SubAdmitted || ack.Cursor != 0 {
		t.Fatalf("open ack: %+v", ack)
	}

	// Each sample apply advances the virtual clock one chronon; period 2
	// means ticks fall due as the samples land. Flush is the barrier: once
	// Flushed arrives, every sample above is applied and every push those
	// applies scheduled is either queued or already on the wire.
	for i := 0; i < 6; i++ {
		rc.write(rtwire.Sample{ID: uint64(i + 1), Image: "temp", Value: "20"}.Encode())
	}
	rc.write(rtwire.Flush{ID: 99}.Encode())

	var pushes []rtwire.Push
collect:
	for {
		switch m := rc.read().(type) {
		case rtwire.Push:
			pushes = append(pushes, m)
		case rtwire.Flushed:
			break collect
		default:
			t.Fatalf("unexpected frame: %T %+v", m, m)
		}
	}

	rc.write(rtwire.SubCancel{ID: 7}.Encode())
	closed := expectSubAck(t, rc, &pushes)
	if closed.ID != 7 || closed.State != rtwire.SubClosed {
		t.Fatalf("close ack: %+v", closed)
	}

	if len(pushes) == 0 {
		t.Fatal("no pushes delivered")
	}
	for i, p := range pushes {
		if p.ID != 7 || !p.Evaluated || p.Missed {
			t.Fatalf("push %d: %+v", i, p)
		}
		if p.Cursor != uint64(i+1) {
			t.Fatalf("push %d cursor = %d, want %d", i, p.Cursor, i+1)
		}
		// The audit a resuming client runs: everything below this cursor is
		// received, dropped, or expired — nothing silently skipped.
		if received := uint64(i + 1); received != p.Cursor-p.Dropped-p.Expired {
			t.Fatalf("audit: received %d, cursor %d, dropped %d, expired %d",
				received, p.Cursor, p.Dropped, p.Expired)
		}
		if len(p.Answers) != 1 || p.Answers[0] != "20" {
			t.Fatalf("push %d answers: %v", i, p.Answers)
		}
	}
	if closed.Cursor < pushes[len(pushes)-1].Cursor {
		t.Fatalf("close ack cursor %d below last push %d", closed.Cursor, pushes[len(pushes)-1].Cursor)
	}

	rc.write(rtwire.Bye{Reason: "done"}.Encode())
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics.Snapshot()
	if m.SubsOpened != 1 || m.SubsClosed != 1 {
		t.Errorf("subs opened/closed = %d/%d", m.SubsOpened, m.SubsClosed)
	}
	if m.PushScheduled == 0 || m.PushAccounted() != m.PushScheduled {
		t.Errorf("push conservation: scheduled %d accounted %d", m.PushScheduled, m.PushAccounted())
	}
	if got := ns.Wire.SubsIn.Load(); got != 1 {
		t.Errorf("wire SubsIn = %d, want 1", got)
	}
	if got := ns.Wire.PushesOut.Load(); got == 0 {
		t.Error("wire PushesOut = 0 after deliveries")
	}
}

// TestSubRefusalsOverWire: an unknown catalog query and a dead-on-arrival
// envelope come back as refused SubAcks (no attachment, no pump); a
// duplicate id and an unknown-id cancel are protocol errors.
func TestSubRefusalsOverWire(t *testing.T) {
	s, _, addr := startNet(t, testConfig(), Options{})
	rc := dialRaw(t, addr)
	rc.handshake()

	rc.write(rtwire.SubOpen{ID: 1, Query: "nope_q", Period: 2}.Encode())
	if a := expectSubAck(t, rc, nil); a.ID != 1 || a.State != rtwire.SubRefused {
		t.Fatalf("unknown query ack: %+v", a)
	}

	// Firm envelope consumed in transit: every tick would be expired before
	// it started, so the subscription is refused outright.
	rc.write(rtwire.SubOpen{
		ID: 2, Query: "status_q", Period: 4,
		Kind: deadline.Firm, Deadline: 3, Elapsed: 5, MinUseful: 1,
	}.Encode())
	if a := expectSubAck(t, rc, nil); a.ID != 2 || a.State != rtwire.SubRefused {
		t.Fatalf("expired envelope ack: %+v", a)
	}

	rc.write(rtwire.SubOpen{
		ID: 3, Query: "status_q", Period: 4,
		Kind: deadline.Firm, Deadline: 3, MinUseful: 1,
	}.Encode())
	if a := expectSubAck(t, rc, nil); a.State != rtwire.SubAdmitted {
		t.Fatalf("live open ack: %+v", a)
	}
	rc.write(rtwire.SubOpen{ID: 3, Query: "status_q", Period: 4}.Encode())
	if e, ok := rc.read().(rtwire.Err); !ok || e.ID != 3 || e.Code != rtwire.CodeBadRequest {
		t.Fatalf("duplicate id: %+v", e)
	}
	rc.write(rtwire.SubCancel{ID: 9}.Encode())
	if e, ok := rc.read().(rtwire.Err); !ok || e.ID != 9 || e.Code != rtwire.CodeBadRequest {
		t.Fatalf("unknown cancel: %+v", e)
	}

	if got := s.Metrics.SubsOpened.Load(); got != 1 {
		t.Errorf("SubsOpened = %d, want 1 (refusals must not count)", got)
	}
}

// TestSubResumeOverWire: after a cancel, SubResume with the last held cursor
// continues delivery at cursor+1 with fresh drop/expiry tallies — the
// reconnect path the client package automates.
func TestSubResumeOverWire(t *testing.T) {
	_, _, addr := startNet(t, testConfig(), Options{})
	rc := dialRaw(t, addr)
	rc.handshake()

	rc.write(rtwire.SubOpen{ID: 1, Query: "status_q", Period: 2, Kind: deadline.Soft, Deadline: 5, Depth: 16}.Encode())
	if a := expectSubAck(t, rc, nil); a.State != rtwire.SubAdmitted {
		t.Fatalf("open ack: %+v", a)
	}
	for i := 0; i < 4; i++ {
		rc.write(rtwire.Sample{ID: uint64(i + 1), Image: "temp", Value: "21"}.Encode())
	}
	rc.write(rtwire.Flush{ID: 50}.Encode())
	var pushes []rtwire.Push
collect:
	for {
		switch m := rc.read().(type) {
		case rtwire.Push:
			pushes = append(pushes, m)
		case rtwire.Flushed:
			break collect
		}
	}
	rc.write(rtwire.SubCancel{ID: 1}.Encode())
	closed := expectSubAck(t, rc, &pushes)
	if closed.State != rtwire.SubClosed || len(pushes) == 0 {
		t.Fatalf("close ack %+v after %d pushes", closed, len(pushes))
	}

	rc.write(rtwire.SubResume{
		ID: 2, Query: "status_q", Period: 2,
		Kind: deadline.Soft, Deadline: 5, Depth: 16,
		AfterCursor: closed.Cursor,
	}.Encode())
	if a := expectSubAck(t, rc, nil); a.ID != 2 || a.State != rtwire.SubAdmitted || a.Cursor != closed.Cursor {
		t.Fatalf("resume ack: %+v", a)
	}
	for i := 0; i < 4; i++ {
		rc.write(rtwire.Sample{ID: uint64(i + 10), Image: "temp", Value: "22"}.Encode())
	}
	rc.write(rtwire.Flush{ID: 51}.Encode())
	var resumed []rtwire.Push
collect2:
	for {
		switch m := rc.read().(type) {
		case rtwire.Push:
			resumed = append(resumed, m)
		case rtwire.Flushed:
			break collect2
		}
	}
	if len(resumed) == 0 {
		t.Fatal("no pushes after resume")
	}
	if first := resumed[0]; first.ID != 2 || first.Cursor != closed.Cursor+1 ||
		first.Dropped != 0 || first.Expired != 0 {
		t.Fatalf("first resumed push: %+v (want cursor %d, fresh tallies)", first, closed.Cursor+1)
	}
}

// TestSubTeardownAccountsQueued: a connection that vanishes mid-stream (no
// Bye, no cancel) still leaves the push books balanced — the pump cancels
// its subscription on teardown and everything parked in the delivery queue
// is accounted dropped.
func TestSubTeardownAccountsQueued(t *testing.T) {
	s, ns, addr := startNet(t, testConfig(), Options{})
	rc := dialRaw(t, addr)
	rc.handshake()

	rc.write(rtwire.SubOpen{ID: 1, Query: "status_q", Period: 2, Kind: deadline.Soft, Deadline: 5, Depth: 4}.Encode())
	if a := expectSubAck(t, rc, nil); a.State != rtwire.SubAdmitted {
		t.Fatalf("open ack: %+v", a)
	}
	for i := 0; i < 8; i++ {
		rc.write(rtwire.Sample{ID: uint64(i + 1), Image: "temp", Value: "20"}.Encode())
	}
	rc.write(rtwire.Flush{ID: 9}.Encode())
	// Wait until the samples are applied (pushes scheduled), then vanish.
	for {
		if _, ok := rc.read().(rtwire.Flushed); ok {
			break
		}
	}
	_ = rc.nc.Close()

	// Close waits for the connection teardown (pump cancel included).
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics.Snapshot()
	if m.SubsOpened != 1 || m.SubsClosed != 1 {
		t.Errorf("subs opened/closed = %d/%d", m.SubsOpened, m.SubsClosed)
	}
	if m.PushScheduled == 0 || m.PushAccounted() != m.PushScheduled {
		t.Errorf("push conservation after abrupt close: scheduled %d accounted %d (%+v)",
			m.PushScheduled, m.PushAccounted(), m)
	}
}

// TestPushMetricsRowsOverWire: the push conservation rows and the wire-level
// subscription counters travel in the metrics frame under their pinned
// names — rtdbload's fan-out audit dereferences them remotely.
func TestPushMetricsRowsOverWire(t *testing.T) {
	_, _, addr := startNet(t, testConfig(), Options{})
	mm := fetchMetricRows(t, addr)
	for _, name := range []string{
		"subs_opened", "subs_closed", "push_scheduled", "pushed",
		"push_dropped", "push_expired", "net_subs_in", "net_pushes_out",
	} {
		if _, ok := mm[name]; !ok {
			t.Errorf("metrics frame missing pinned row %q", name)
		}
	}
}
