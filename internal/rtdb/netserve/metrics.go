package netserve

import (
	"sync/atomic"

	"rtc/internal/rtwire"
)

// WireMetrics is the transport-level counter block — the per-connection
// tallies folded into one aggregate as they happen, in the same
// atomics-only style as server.Metrics. The serving-layer conservation
// laws extend over it:
//
//   - every query frame is accounted: QueriesIn (wire) == queries handed
//     to sessions + ExpiredOnArrival, and the session-level law
//     QueriesIn == QueriesAccounted picks up from there;
//   - backpressure is explicit: a rejected submission produces a
//     BackpressureFrames increment and an Err frame, never silence;
//   - connections balance: ConnsAccepted == ConnsClosed + ConnsRefused +
//     live connections.
type WireMetrics struct {
	ConnsAccepted atomic.Uint64
	ConnsRefused  atomic.Uint64 // handshake failed or no free session
	ConnsClosed   atomic.Uint64

	FramesIn  atomic.Uint64
	FramesOut atomic.Uint64
	BytesIn   atomic.Uint64
	BytesOut  atomic.Uint64

	SamplesIn          atomic.Uint64 // sample frames received
	QueriesIn          atomic.Uint64 // query frames received
	AsOfReads          atomic.Uint64 // as-of frames received
	SubsIn             atomic.Uint64 // sub_open/sub_resume frames received
	PushesOut          atomic.Uint64 // push frames queued for delivery
	ExpiredOnArrival   atomic.Uint64 // queries dead on arrival (subset of QueriesIn)
	BackpressureFrames atomic.Uint64 // Err/backpressure frames produced
	WriteDrops         atomic.Uint64 // best-effort frames dropped on full queues
	DecodeErrors       atomic.Uint64 // frames that failed to parse

	HeartbeatsIn    atomic.Uint64 // client heartbeats echoed
	ReplBatchesOut  atomic.Uint64 // WalBatch frames streamed to followers
	ReplResyncs     atomic.Uint64 // full-state resyncs forced by compaction
	ReplGapRestarts atomic.Uint64 // live-tail gaps that fell back to catch-up

	CorruptFrames      atomic.Uint64 // inbound frames with byte damage (CRC/framing)
	WriteTimeouts      atomic.Uint64 // connections cut on a failed/stalled write
	ReplStallEvictions atomic.Uint64 // followers evicted for acking nothing at a full window
}

// WireSnapshot is a plain copy of the counters at one instant.
type WireSnapshot struct {
	ConnsAccepted, ConnsRefused, ConnsClosed uint64

	FramesIn, FramesOut, BytesIn, BytesOut uint64

	SamplesIn, QueriesIn, AsOfReads      uint64
	SubsIn, PushesOut                    uint64
	ExpiredOnArrival, BackpressureFrames uint64
	WriteDrops, DecodeErrors             uint64

	HeartbeatsIn, ReplBatchesOut uint64
	ReplResyncs, ReplGapRestarts uint64

	CorruptFrames, WriteTimeouts uint64
	ReplStallEvictions           uint64
}

// Snapshot copies the counters.
func (w *WireMetrics) Snapshot() WireSnapshot {
	return WireSnapshot{
		ConnsAccepted:      w.ConnsAccepted.Load(),
		ConnsRefused:       w.ConnsRefused.Load(),
		ConnsClosed:        w.ConnsClosed.Load(),
		FramesIn:           w.FramesIn.Load(),
		FramesOut:          w.FramesOut.Load(),
		BytesIn:            w.BytesIn.Load(),
		BytesOut:           w.BytesOut.Load(),
		SamplesIn:          w.SamplesIn.Load(),
		QueriesIn:          w.QueriesIn.Load(),
		AsOfReads:          w.AsOfReads.Load(),
		SubsIn:             w.SubsIn.Load(),
		PushesOut:          w.PushesOut.Load(),
		ExpiredOnArrival:   w.ExpiredOnArrival.Load(),
		BackpressureFrames: w.BackpressureFrames.Load(),
		WriteDrops:         w.WriteDrops.Load(),
		DecodeErrors:       w.DecodeErrors.Load(),
		HeartbeatsIn:       w.HeartbeatsIn.Load(),
		ReplBatchesOut:     w.ReplBatchesOut.Load(),
		ReplResyncs:        w.ReplResyncs.Load(),
		ReplGapRestarts:    w.ReplGapRestarts.Load(),
		CorruptFrames:      w.CorruptFrames.Load(),
		WriteTimeouts:      w.WriteTimeouts.Load(),
		ReplStallEvictions: w.ReplStallEvictions.Load(),
	}
}

// Pairs flattens the snapshot into named counters in display order, with
// the same "net_" prefix the metrics frame uses.
func (w WireSnapshot) Pairs() []rtwire.MetricPair {
	return w.appendPairs(make([]rtwire.MetricPair, 0, wireMetricCount))
}

// wireMetricCount is the number of pairs appendPairs adds (capacity hint).
const wireMetricCount = 23

// appendPairs appends the wire counters as named pairs (prefixed "net_")
// after the server's rows, so the metrics frame carries one flat table.
func (w WireSnapshot) appendPairs(dst []rtwire.MetricPair) []rtwire.MetricPair {
	add := func(name string, v uint64) {
		dst = append(dst, rtwire.MetricPair{Name: "net_" + name, Value: v})
	}
	add("conns_accepted", w.ConnsAccepted)
	add("conns_refused", w.ConnsRefused)
	add("conns_closed", w.ConnsClosed)
	add("frames_in", w.FramesIn)
	add("frames_out", w.FramesOut)
	add("bytes_in", w.BytesIn)
	add("bytes_out", w.BytesOut)
	add("samples_in", w.SamplesIn)
	add("queries_in", w.QueriesIn)
	add("asof_reads", w.AsOfReads)
	add("subs_in", w.SubsIn)
	add("pushes_out", w.PushesOut)
	add("expired_on_arrival", w.ExpiredOnArrival)
	add("backpressure_frames", w.BackpressureFrames)
	add("write_drops", w.WriteDrops)
	add("decode_errors", w.DecodeErrors)
	add("heartbeats_in", w.HeartbeatsIn)
	add("repl_batches_out", w.ReplBatchesOut)
	add("repl_resyncs", w.ReplResyncs)
	add("repl_gap_restarts", w.ReplGapRestarts)
	add("corrupt_frames", w.CorruptFrames)
	add("write_timeouts", w.WriteTimeouts)
	add("repl_stall_evictions", w.ReplStallEvictions)
	return dst
}
