package netserve

import (
	"rtc/internal/deadline"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtdb/sub"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// This file puts standing queries on the wire. A SubOpen (or SubResume)
// frame attaches one subscription to the connection's server: the envelope
// is translated once through the same remaining = D−E / shifted-decay rule
// as aperiodic queries, the server admits or refuses it, and an admitted
// subscription gets a dedicated pump goroutine that drains the bounded
// delivery queue into the connection's write queue as Push frames.
//
// Delivery accounting stays exact across the hop: the pump stamps each
// frame with the queue's cumulative drop count at pop time, and every
// teardown path — SubCancel, connection loss, server drain — closes the
// queue and books whatever was still parked in it as dropped, so the push
// conservation law (PushScheduled == Pushed + PushDropped + PushExpired)
// holds over TCP exactly as it does in process.
//
// Ordering: the admitting SubAck is enqueued before the pump starts, so it
// always precedes the first Push. A closing SubAck races the pump's final
// pops, so a client may see a few already-popped pushes trail the close —
// they carry cursors at or below the ack's and are safe to discard.

// translateSub maps a subscription's client-relative per-tick envelope onto
// the server's chronon frame, reusing Translate so the rule cannot drift
// from the aperiodic path. expired means the envelope is dead on arrival —
// every tick of the subscription would be expired before it started — and
// the subscription must be refused, not attached.
func translateSub(query string, period timeseq.Time, kind deadline.Kind,
	dl, elapsed timeseq.Time, minUseful uint64, decay rtwire.Decay) (sub.Spec, bool) {
	qr, expired := Translate(rtwire.Query{
		Query: query, Kind: kind, Deadline: dl, Elapsed: elapsed,
		MinUseful: minUseful, Decay: decay,
	})
	return sub.Spec{
		Query: query, Period: period, Kind: kind,
		Deadline: qr.Deadline, MinUseful: minUseful, U: qr.U,
	}, expired
}

// subPump drains one subscription's delivery queue into the connection's
// write queue. It is inflight-counted and, like the replication sender,
// tears down on rstop rather than done.
type subPump struct {
	c  *conn
	id uint64
	ss *server.ServerSub
}

// subAttach admits one SubOpen/SubResume: duplicate ids are a protocol
// error, a refused envelope answers with a refused SubAck (no attachment,
// no pump), an admitted one acks the cursor base and starts its pump.
func (c *conn) subAttach(id uint64, spec sub.Spec, expired bool, depth int, after uint64) {
	c.n.Wire.SubsIn.Add(1)
	if _, dup := c.subs[id]; dup {
		c.tryEnqueue(rtwire.Err{ID: id, Code: rtwire.CodeBadRequest, Msg: "subscription id already in use"}.AppendTo(c.getBuf()))
		return
	}
	if !expired {
		ss, err := c.n.srv.Subscribe(spec, after, depth)
		if err == nil {
			if c.subs == nil {
				c.subs = make(map[uint64]*subPump)
			}
			p := &subPump{c: c, id: id, ss: ss}
			c.subs[id] = p
			c.enqueue(rtwire.SubAck{
				ID: id, State: rtwire.SubAdmitted, Cursor: after, Chronon: c.n.srv.Now(),
			}.AppendTo(c.getBuf()))
			c.inflight.Add(1)
			go p.run()
			return
		}
	}
	c.enqueue(rtwire.SubAck{
		ID: id, State: rtwire.SubRefused, Cursor: after, Chronon: c.n.srv.Now(),
	}.AppendTo(c.getBuf()))
}

// subCancel detaches one subscription. Cancel closes the delivery queue
// (accounting its leftovers as dropped), which the pump observes and exits
// on; the closing SubAck carries the last assigned cursor so the client can
// resume later without a gap.
func (c *conn) subCancel(id uint64) {
	p, ok := c.subs[id]
	if !ok {
		c.tryEnqueue(rtwire.Err{ID: id, Code: rtwire.CodeBadRequest, Msg: "unknown subscription"}.AppendTo(c.getBuf()))
		return
	}
	delete(c.subs, id)
	last, _ := p.ss.Cancel()
	c.enqueue(rtwire.SubAck{
		ID: id, State: rtwire.SubClosed, Cursor: last, Chronon: c.n.srv.Now(),
	}.AppendTo(c.getBuf()))
}

// run pumps pushes until the subscription is cancelled or the connection
// tears down. On rstop it cancels the subscription itself so everything
// still queued is accounted dropped before the inflight wait completes.
func (p *subPump) run() {
	defer p.c.inflight.Done()
	for {
		for {
			push, droppedCum, ok := p.ss.Pop()
			if !ok {
				break
			}
			frame := rtwire.Push{
				ID: p.id, Cursor: push.Cursor, Dropped: droppedCum,
				Expired: push.Expired, Useful: push.Useful,
				Missed: push.Missed, Evaluated: push.Evaluated,
				Issue: push.Issue, Served: push.Served,
				Answers: push.Answers,
			}.AppendTo(p.c.getBuf())
			// Block on the write queue (a slow subscriber's backpressure
			// lands here, where drop-oldest keeps the queue bounded), but
			// stay interruptible: done may never close while this pump is
			// inflight-counted, so teardown rides on rstop.
			select {
			case p.c.writeq <- frame:
				p.c.n.Wire.PushesOut.Add(1)
			case <-p.c.rstop:
				p.c.putBuf(frame)
				_, _ = p.ss.Cancel()
				return
			}
		}
		if p.ss.Queue().Closed() {
			return // cancelled; the read loop already sent the closing ack
		}
		select {
		case <-p.ss.Notify():
		case <-p.c.rstop:
			_, _ = p.ss.Cancel()
			return
		}
	}
}
