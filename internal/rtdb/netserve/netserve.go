// Package netserve puts the rtdbd server on the wire: a TCP listener that
// maps each accepted connection onto one of the server's client sessions
// and speaks the rtwire protocol — timed samples, aperiodic queries with
// the §4.1 deadline envelope, temporal as-of reads, and metrics snapshots.
//
// The serving discipline extends the in-process one without weakening it:
//
//   - Each connection is one timed word. Frames are consumed in FIFO order
//     and submitted to the connection's session, so the per-session
//     ordering guarantees of the apply loop survive the network hop.
//   - Deadlines travel client-relative and are anchored at arrival: a
//     query that arrives with its budget already consumed is rejected
//     unevaluated and accounted as a deadline miss through
//     Metrics.AccountExpired — the conservation law QueriesIn ==
//     QueriesAccounted therefore holds end-to-end over TCP.
//   - Responses go through a bounded per-connection write queue drained by
//     a dedicated writer goroutine; the apply loop never blocks on a slow
//     client. Session-queue overload comes back as an rtwire.Err frame
//     with CodeBackpressure, never as silence.
//   - Close drains gracefully: accepts stop, readers stop, in-flight
//     queries finish, each session is flushed before its id returns to the
//     pool, and queued responses are written out before the socket closes.
package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

// Options tunes the listener. The zero value is serviceable.
type Options struct {
	// WriteQueue bounds the per-connection outgoing frame queue
	// (default 64).
	WriteQueue int
	// MaxInflight bounds concurrent blocking requests (queries, flushes)
	// per connection; further frames wait in the kernel's receive buffer —
	// natural TCP backpressure (default 16).
	MaxInflight int
	// IdleTimeout closes a connection that sends nothing for this long
	// (default 2m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one frame write to a slow client (default 10s).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the Hello/Welcome exchange (default 5s).
	HandshakeTimeout time.Duration
	// HeartbeatInterval paces the liveness beacons the replication sender
	// emits on idle links; client heartbeats are echoed regardless
	// (default 15s).
	HeartbeatInterval time.Duration
	// ReplWindow bounds the unacknowledged events in flight to one
	// follower; a follower that stops acking stalls only its own sender
	// (default 256).
	ReplWindow int
	// ReplBatch bounds the events per WalBatch frame (default 64).
	ReplBatch int
	// TailBuffer sizes the live-tail subscription buffer per follower; on
	// overflow the log drops (never blocks) and the sender falls back to
	// catch-up from the segments (default 1024).
	TailBuffer int
	// ReplStallTimeout evicts a follower whose send window has been full
	// with zero ack progress for this long: the connection is cut and the
	// follower re-catches-up on its redial, instead of pinning a sender
	// goroutine (and the window's worth of buffers) forever behind a
	// half-open socket (default 30s).
	ReplStallTimeout time.Duration
	// Shard and Shards place this listener in a sharded deployment: the
	// Welcome frame advertises them so clients verify placement against
	// rtwire.ShardOf and route object traffic to the owning shard's
	// listener. The zero values mean unsharded (Shards defaults to 1).
	Shard  int
	Shards int
}

func (o *Options) defaults() {
	if o.WriteQueue <= 0 {
		o.WriteQueue = 64
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 16
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 15 * time.Second
	}
	if o.ReplWindow <= 0 {
		o.ReplWindow = 256
	}
	if o.ReplBatch <= 0 {
		o.ReplBatch = 64
	}
	if o.TailBuffer <= 0 {
		o.TailBuffer = 1024
	}
	if o.ReplStallTimeout <= 0 {
		o.ReplStallTimeout = 30 * time.Second
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("netserve: server closed")

// Server serves rtwire connections over one rtdb server.
type Server struct {
	srv *server.Server
	opt Options

	// pool holds the ids of free server sessions; a connection owns
	// exactly one session for its lifetime.
	pool chan int

	mu    sync.Mutex
	ln    net.Listener
	conns map[*conn]struct{}

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// Replication durability watermark: replAcked tracks the highest seq
	// each live follower has acknowledged; replDurable is the monotone max
	// of the minimum across followers — the highest seq known to survive
	// this node's death. Client-facing heartbeats advertise it (never the
	// local WAL tail), so a client's failover watermark only ever covers
	// writes a standby actually holds. Sticky on follower disconnect: what
	// was once replicated stays replicated.
	replMu      sync.Mutex
	replAcked   map[*conn]uint64
	replDurable atomic.Uint64

	// Wire is the transport-level counter block, the per-connection
	// metrics folded into one place (connections add into it live).
	Wire WireMetrics
}

// New wraps srv. Every session of srv is placed in the connection pool, so
// srv.Config.Sessions bounds the concurrent connections; an accept beyond
// that is refused with CodeServerFull.
func New(srv *server.Server, opt Options) *Server {
	opt.defaults()
	n := &Server{
		srv:       srv,
		opt:       opt,
		conns:     make(map[*conn]struct{}),
		replAcked: make(map[*conn]uint64),
		quit:      make(chan struct{}),
	}
	n.pool = make(chan int, srv.Sessions())
	for id := 0; id < srv.Sessions(); id++ {
		n.pool <- id
	}
	return n
}

// NewShardSet wraps every shard of a sharded deployment in its own
// listener: shard i's Welcome announces (i, N) so clients compute
// placement with rtwire.ShardOf and route object traffic to the owning
// shard's address, and each listener carries its own shard's replication
// stream — a follower subscribed to shard i's listener replicates exactly
// shard i's WAL. The set shares one Options template; Shard/Shards are
// overwritten per listener.
func NewShardSet(ss *server.ShardedServer, opt Options) []*Server {
	out := make([]*Server, ss.NumShards())
	for i := range out {
		o := opt
		o.Shard, o.Shards = i, ss.NumShards()
		out[i] = New(ss.Shard(i), o)
	}
	return out
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine. After Close it returns ErrServerClosed.
func (n *Server) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.ln != nil {
		n.mu.Unlock()
		return fmt.Errorf("netserve: Serve called twice")
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-n.quit:
				return ErrServerClosed
			default:
				return err
			}
		}
		n.Wire.ConnsAccepted.Add(1)
		n.wg.Add(1)
		go n.handle(c)
	}
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") in a background
// goroutine and returns the bound listener address.
func (n *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = n.Serve(ln) }()
	return ln.Addr(), nil
}

// Addr returns the bound listener address (nil before Serve/Listen).
func (n *Server) Addr() net.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// Close drains the server: the listener stops accepting, every connection
// stops reading, in-flight requests complete, queued responses are written
// out, each session is flushed, and only then do sockets close. It blocks
// until the drain finishes and is safe to call more than once. The
// underlying rtdb server is NOT stopped — callers stop it after Close so
// in-flight queries can complete during the drain.
func (n *Server) Close() error {
	n.closeOnce.Do(func() {
		close(n.quit)
		n.mu.Lock()
		if n.ln != nil {
			_ = n.ln.Close()
		}
		for c := range n.conns {
			c.interruptRead()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
	return nil
}

// register tracks a live connection so Close can interrupt its read.
func (n *Server) register(c *conn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Server) unregister(c *conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// ReplDurable is the replication durability watermark: the highest WAL
// sequence every follower that has subscribed is known to have acknowledged
// (applied and persisted). Zero until a follower acks. Monotone: a follower
// disconnecting does not retract what it already holds.
func (n *Server) ReplDurable() uint64 { return n.replDurable.Load() }

// replSubscribe registers a follower connection in the durability registry
// with the seq it claims to already hold. The claim is an implicit ack: a
// follower that reconnects already caught up — its final ack frame died
// with the old connection — must still advance the watermark, or a fault
// that eats exactly the last ack wedges ReplDurable forever.
func (n *Server) replSubscribe(c *conn, afterSeq uint64) {
	n.replMu.Lock()
	n.replAcked[c] = afterSeq
	min, ok := n.replMinLocked()
	n.replMu.Unlock()
	if ok {
		n.replAdvance(min)
	}
}

// replAck records one follower acknowledgment and advances the watermark to
// the minimum acked seq across live followers (CAS-max: never backward).
func (n *Server) replAck(c *conn, seq uint64) {
	n.replMu.Lock()
	if cur, ok := n.replAcked[c]; ok && seq > cur {
		n.replAcked[c] = seq
	}
	min, ok := n.replMinLocked()
	n.replMu.Unlock()
	if ok {
		n.replAdvance(min)
	}
}

// replMinLocked is the lowest seq held across live followers; false with
// no followers registered.
func (n *Server) replMinLocked() (uint64, bool) {
	var min uint64
	first := true
	for _, s := range n.replAcked {
		if first || s < min {
			min, first = s, false
		}
	}
	return min, !first
}

// replAdvance CAS-maxes the durability watermark — never backward.
func (n *Server) replAdvance(min uint64) {
	for {
		cur := n.replDurable.Load()
		if min <= cur || n.replDurable.CompareAndSwap(cur, min) {
			return
		}
	}
}

func (n *Server) replForget(c *conn) {
	n.replMu.Lock()
	delete(n.replAcked, c)
	n.replMu.Unlock()
}

// handle runs one accepted socket: handshake, session checkout, read loop,
// drain, teardown.
func (n *Server) handle(nc net.Conn) {
	defer n.wg.Done()
	defer nc.Close()

	// Handshake: the first frame must be a Hello within the timeout.
	_ = nc.SetReadDeadline(time.Now().Add(n.opt.HandshakeTimeout))
	br := bufio.NewReader(nc)
	f, err := rtwire.ReadFrame(br)
	if err != nil || f.Kind != rtwire.KindHello {
		n.Wire.ConnsRefused.Add(1)
		n.writeRaw(nc, rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "expected hello"}.Encode())
		return
	}
	var session int
	select {
	case session = <-n.pool:
	default:
		n.Wire.ConnsRefused.Add(1)
		n.writeRaw(nc, rtwire.Err{Code: rtwire.CodeServerFull, Msg: "no free session"}.Encode())
		return
	}
	defer func() { n.pool <- session }()

	c := &conn{
		n: n, nc: nc, br: br,
		sess:   n.srv.Session(session),
		writeq: make(chan []byte, n.opt.WriteQueue),
		done:   make(chan struct{}),
		wdone:  make(chan struct{}),
		rstop:  make(chan struct{}),
		sem:    make(chan struct{}, n.opt.MaxInflight),
		ackCh:  make(chan uint64, 16),
		wfree:  make(chan []byte, n.opt.WriteQueue+1),
	}
	n.register(c)
	defer n.unregister(c)
	defer n.Wire.ConnsClosed.Add(1)

	go c.writeLoop()
	c.enqueue(rtwire.Welcome{
		Session: uint64(session), Chronon: n.srv.Now(),
		Epoch: n.srv.Epoch(), Role: rtwire.RolePrimary,
		Shards: uint64(n.opt.Shards), Shard: uint64(n.opt.Shard),
	}.Encode())

	c.readLoop()

	// Drain: stop the replication sender first (it exits on rstop, so the
	// inflight wait below cannot deadlock on it), wait for in-flight
	// queries/flushes to enqueue their responses, flush this connection's
	// session so every sample it submitted is applied (SamplesIn ==
	// SamplesApplied survives mid-flight shutdown), announce the close,
	// then let the writer finish the queue.
	close(c.rstop)
	if c.repl {
		n.replForget(c)
	}
	c.inflight.Wait()
	_ = c.sess.Flush()
	c.tryEnqueue(rtwire.Bye{Reason: "drain"}.Encode())
	close(c.done)
	<-c.wdone
}

// writeRaw writes one frame outside any connection write loop (refusals
// during handshake).
func (n *Server) writeRaw(nc net.Conn, frame []byte) {
	_ = nc.SetWriteDeadline(time.Now().Add(n.opt.WriteTimeout))
	if _, err := nc.Write(frame); err == nil {
		n.Wire.FramesOut.Add(1)
		n.Wire.BytesOut.Add(uint64(len(frame)))
	}
}
