package netserve

import (
	"bufio"
	"net"
	"sync"
	"time"

	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

// conn is one live connection bound to one server session.
type conn struct {
	n    *Server
	nc   net.Conn
	br   *bufio.Reader
	sess *server.Session

	// writeq is the bounded outgoing frame queue; writeLoop drains it.
	// done closes after every producer is finished (inflight waited), so
	// the writer can drain-and-exit without racing an enqueue.
	writeq chan []byte
	done   chan struct{}
	wdone  chan struct{}

	// wfree recycles outgoing frame buffers: writeLoop returns each buffer
	// once its bytes are on (or in the bufio layer of) the socket, and
	// handlers encode the next response into a recycled one. Bounded at
	// one more than the write queue, so every in-flight frame plus one
	// being encoded can come from the list; overflow falls to the GC.
	wfree chan []byte

	// rstop closes as soon as the read loop returns — before the inflight
	// wait — so the long-running replication sender (which is inflight-
	// counted) has a teardown signal that does not depend on its own exit.
	rstop chan struct{}

	// sem bounds concurrent blocking requests (queries, flushes); the
	// read loop stalls when it is full, pushing backpressure into TCP.
	sem      chan struct{}
	inflight sync.WaitGroup

	// ackCh carries WalAck sequence numbers from the read loop to the
	// replication sender; repl guards against a second Subscribe.
	ackCh chan uint64
	repl  bool

	// subs maps client-chosen subscription ids to their pumps. Only the
	// read loop touches it (attach, cancel), so it needs no lock; pumps
	// alive at connection teardown clean themselves up on rstop.
	subs map[uint64]*subPump
}

// interruptRead unblocks a pending Read so the read loop can observe the
// server's quit channel.
func (c *conn) interruptRead() { _ = c.nc.SetReadDeadline(time.Now()) }

// getBuf returns a recycled encode buffer (length 0) or nil; append grows
// a nil slice, so callers just encode into whatever comes back.
func (c *conn) getBuf() []byte {
	select {
	case b := <-c.wfree:
		return b[:0]
	default:
		return nil
	}
}

// putBuf offers a spent frame buffer back to the free list.
func (c *conn) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case c.wfree <- b:
	default:
	}
}

// enqueue queues one outgoing frame, blocking until there is room. It is
// used by request handlers, which are allowed to wait on a slow client
// (the apply loop is long done with the request by then); done aborts the
// wait during teardown.
func (c *conn) enqueue(frame []byte) bool {
	select {
	case c.writeq <- frame:
		return true
	case <-c.done:
		return false
	}
}

// tryEnqueue queues one frame without blocking. Best-effort notifications
// (backpressure errors, the drain Bye) use it: under a full queue they are
// dropped and counted rather than stalling the read loop.
func (c *conn) tryEnqueue(frame []byte) bool {
	select {
	case c.writeq <- frame:
		return true
	default:
		c.n.Wire.WriteDrops.Add(1)
		c.putBuf(frame)
		return false
	}
}

// writeLoop drains the write queue to the socket. On done it finishes
// whatever is queued, then signals wdone.
func (c *conn) writeLoop() {
	defer close(c.wdone)
	bw := bufio.NewWriter(c.nc)
	write := func(frame []byte) bool {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.n.opt.WriteTimeout))
		if _, err := bw.Write(frame); err != nil {
			return false
		}
		// Flush eagerly when the queue is empty; otherwise let frames
		// coalesce into one syscall.
		if len(c.writeq) == 0 {
			if err := bw.Flush(); err != nil {
				return false
			}
		}
		c.n.Wire.FramesOut.Add(1)
		c.n.Wire.BytesOut.Add(uint64(len(frame)))
		// bufio has copied (or directly written) the bytes; the buffer is
		// free for the next response.
		c.putBuf(frame)
		return true
	}
	// fail is the write-error path: a client that cannot absorb frames
	// within WriteTimeout is dead weight. Count it and interrupt the read
	// loop so the whole connection tears down now — before this change a
	// dead writer left the reader idling until IdleTimeout while every
	// response silently fell into discard.
	fail := func() {
		c.n.Wire.WriteTimeouts.Add(1)
		c.interruptRead()
		c.discard()
	}
	for {
		select {
		case frame := <-c.writeq:
			if !write(frame) {
				fail()
				return
			}
		case <-c.done:
			for {
				select {
				case frame := <-c.writeq:
					if !write(frame) {
						c.discard()
						return
					}
				default:
					_ = bw.Flush()
					return
				}
			}
		}
	}
}

// discard keeps draining the queue after a write error so producers
// blocked in enqueue never wedge on a dead socket.
func (c *conn) discard() {
	for {
		select {
		case <-c.writeq:
			c.n.Wire.WriteDrops.Add(1)
		case <-c.done:
			// Producers are gone; drop whatever is left.
			for {
				select {
				case <-c.writeq:
					c.n.Wire.WriteDrops.Add(1)
				default:
					return
				}
			}
		}
	}
}

// readLoop consumes the connection's timed word frame by frame until the
// client says Bye, the connection dies, the idle timeout fires, or the
// server drains.
func (c *conn) readLoop() {
	// One payload buffer for the connection's lifetime: Decode copies the
	// field strings out, so the next frame may overwrite it.
	var rbuf []byte
	// The inbound-silence bound is the tighter of IdleTimeout and three
	// heartbeat intervals: a client that beacons every interval but goes
	// silent behind a one-way partition is cut here in bounded time — the
	// server-side half of the watchdog contract.
	idle := min(c.n.opt.IdleTimeout, 3*c.n.opt.HeartbeatInterval)
	for {
		select {
		case <-c.n.quit:
			return
		default:
		}
		_ = c.nc.SetReadDeadline(time.Now().Add(idle))
		f, err := rtwire.ReadFrameBuf(c.br, &rbuf)
		if err != nil {
			if rtwire.IsProtocolError(err) {
				c.n.Wire.DecodeErrors.Add(1)
				if rtwire.IsCorruptFrame(err) {
					// Byte damage (not a mid-frame cut): the CRC or framing
					// caught it. The connection resets — boundaries are gone.
					c.n.Wire.CorruptFrames.Add(1)
				}
			}
			return
		}
		c.n.Wire.FramesIn.Add(1)
		c.n.Wire.BytesIn.Add(uint64(rtwire.HeaderSize + len(f.Payload)))
		if !c.dispatch(f) {
			return
		}
	}
}

// dispatch handles one frame; false ends the connection.
func (c *conn) dispatch(f rtwire.Frame) bool {
	msg, err := rtwire.Decode(f)
	if err != nil {
		c.n.Wire.DecodeErrors.Add(1)
		c.tryEnqueue(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: err.Error()}.AppendTo(c.getBuf()))
		return true
	}
	switch m := msg.(type) {
	case rtwire.Sample:
		c.n.Wire.SamplesIn.Add(1)
		switch err := c.sess.InjectSample(m.Image, m.Value); err {
		case nil:
		case server.ErrBackpressure:
			c.n.Wire.BackpressureFrames.Add(1)
			c.tryEnqueue(rtwire.Err{ID: m.ID, Code: rtwire.CodeBackpressure, Msg: "session queue full"}.AppendTo(c.getBuf()))
		default: // ErrClosed
			c.tryEnqueue(rtwire.Err{ID: m.ID, Code: rtwire.CodeClosed, Msg: err.Error()}.AppendTo(c.getBuf()))
			return false
		}
	case rtwire.Query:
		c.n.Wire.QueriesIn.Add(1)
		select {
		case c.sem <- struct{}{}:
		case <-c.done:
			return false
		}
		c.inflight.Add(1)
		go func() {
			defer c.inflight.Done()
			defer func() { <-c.sem }()
			c.serveQuery(m)
		}()
	case rtwire.AsOf:
		c.n.Wire.AsOfReads.Add(1)
		v, ok := c.n.srv.ValueAsOf(m.Image, m.At)
		c.enqueue(rtwire.AsOfResult{
			ID: m.ID, OK: ok, Value: v, Horizon: c.n.srv.HistoryHorizon(),
		}.AppendTo(c.getBuf()))
	case rtwire.MetricsReq:
		snap := c.n.srv.Metrics.Snapshot()
		pairs := snap.Pairs()
		if c.n.opt.Shards > 1 {
			pairs = snap.PairsSharded(c.n.opt.Shard, c.n.opt.Shards)
		}
		wp := make([]rtwire.MetricPair, 0, len(pairs)+wireMetricCount)
		for _, p := range pairs {
			wp = append(wp, rtwire.MetricPair{Name: p.Name, Value: p.Value})
		}
		wp = c.n.Wire.Snapshot().appendPairs(wp)
		// Durability coordinates: failover tooling compares a promoted
		// node's wal_seq against the watermark heard from the old primary.
		if l := c.n.srv.WAL(); l != nil {
			wp = append(wp,
				rtwire.MetricPair{Name: "wal_seq", Value: l.Seq()},
				// Under group commit wal_durable may trail wal_seq by the
				// open window; they converge at every commit.
				rtwire.MetricPair{Name: "wal_durable", Value: l.DurableSeq()},
			)
		}
		wp = append(wp,
			rtwire.MetricPair{Name: "epoch", Value: c.n.srv.Epoch()},
			rtwire.MetricPair{Name: "repl_durable", Value: c.n.ReplDurable()},
		)
		c.enqueue(rtwire.Metrics{ID: m.ID, Pairs: wp}.AppendTo(c.getBuf()))
	case rtwire.Flush:
		select {
		case c.sem <- struct{}{}:
		case <-c.done:
			return false
		}
		c.inflight.Add(1)
		go func() {
			defer c.inflight.Done()
			defer func() { <-c.sem }()
			if err := c.sess.Flush(); err != nil {
				c.enqueue(rtwire.Err{ID: m.ID, Code: rtwire.CodeClosed, Msg: err.Error()}.AppendTo(c.getBuf()))
				return
			}
			c.enqueue(rtwire.Flushed{ID: m.ID, Chronon: c.n.srv.Now()}.AppendTo(c.getBuf()))
		}()
	case rtwire.Subscribe:
		if c.repl {
			c.tryEnqueue(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "already subscribed"}.AppendTo(c.getBuf()))
			return true
		}
		if c.n.srv.WAL() == nil {
			c.tryEnqueue(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "replication unavailable: server runs without a wal"}.AppendTo(c.getBuf()))
			return true
		}
		c.repl = true
		c.n.replSubscribe(c, m.AfterSeq)
		c.inflight.Add(1)
		go c.serveReplication(m)
	case rtwire.WalAck:
		c.n.replAck(c, m.Seq)
		select {
		case c.ackCh <- m.Seq:
		default: // sender reads acks in batches; a stale one is harmless
		}
	case rtwire.SubOpen:
		spec, expired := translateSub(m.Query, m.Period, m.Kind, m.Deadline, m.Elapsed, m.MinUseful, m.Decay)
		c.subAttach(m.ID, spec, expired, int(m.Depth), 0)
	case rtwire.SubResume:
		spec, expired := translateSub(m.Query, m.Period, m.Kind, m.Deadline, m.Elapsed, m.MinUseful, m.Decay)
		c.subAttach(m.ID, spec, expired, int(m.Depth), m.AfterCursor)
	case rtwire.SubCancel:
		c.subCancel(m.ID)
	case rtwire.Heartbeat:
		c.n.Wire.HeartbeatsIn.Add(1)
		// The echoed Seq is the replication durability watermark, NOT the
		// local WAL tail: a client may rely on it surviving this node's
		// death, so it must only cover what a follower has acknowledged.
		c.tryEnqueue(rtwire.Heartbeat{
			Epoch: c.n.srv.Epoch(), Chronon: c.n.srv.Now(), Seq: c.n.ReplDurable(),
		}.AppendTo(c.getBuf()))
	case rtwire.Bye:
		return false
	default:
		c.tryEnqueue(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "unexpected " + f.Kind.String()}.AppendTo(c.getBuf()))
	}
	return true
}

// serveQuery translates the wire deadline envelope and runs the query
// through this connection's session. An expired-on-arrival query is
// accounted as a miss through the server's metrics block — never
// evaluated, never silently dropped — and answered with a missed Result
// so the client's picture matches the server's books.
func (c *conn) serveQuery(m rtwire.Query) {
	qr, expired := Translate(m)
	if expired {
		c.n.srv.Metrics.AccountExpired()
		c.n.Wire.ExpiredOnArrival.Add(1)
		now := c.n.srv.Now()
		c.enqueue(rtwire.Result{
			ID: m.ID, Missed: true, Evaluated: false,
			Issue: now, Served: now, ExpiredOnArrival: true,
		}.AppendTo(c.getBuf()))
		return
	}
	resp, err := c.sess.Query(qr)
	switch err {
	case nil:
	case server.ErrBackpressure:
		// The server accounted the rejection (and the miss, for
		// deadline-carrying queries); tell the client explicitly.
		c.n.Wire.BackpressureFrames.Add(1)
		c.enqueue(rtwire.Err{ID: m.ID, Code: rtwire.CodeBackpressure, Msg: "session queue full"}.AppendTo(c.getBuf()))
		return
	default:
		c.enqueue(rtwire.Err{ID: m.ID, Code: rtwire.CodeClosed, Msg: err.Error()}.AppendTo(c.getBuf()))
		return
	}
	c.enqueue(rtwire.Result{
		ID: m.ID, Answers: resp.Answers, Match: resp.Match,
		Useful: resp.Useful, Missed: resp.Missed, Evaluated: resp.Evaluated,
		Issue: resp.Issue, Served: resp.Served,
	}.AppendTo(c.getBuf()))
}
