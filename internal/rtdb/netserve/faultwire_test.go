package netserve

import (
	"testing"
	"time"

	"rtc/internal/faultnet"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/server"
)

// startFabricNet stands up the test server behind a faultnet listener so
// the suite can damage the byte streams between a real client and the
// wire layer deterministically.
func startFabricNet(t *testing.T, fab *faultnet.Fabric, addr string, opt Options) (*server.Server, *Server) {
	t.Helper()
	cfg := testConfig()
	cfg.Sessions = 4
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ns := New(s, opt)
	ln, err := fab.Listen(addr)
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	go func() { _ = ns.Serve(ln) }()
	t.Cleanup(func() {
		_ = ns.Close()
		s.Stop()
	})
	return s, ns
}

// fabricClient dials through the fabric with torture-scaled timeouts. hb
// < 0 disables the client heartbeat watchdog (for tests that need a quiet
// wire between arm and fire).
func fabricClient(t *testing.T, fab *faultnet.Fabric, label, addr string, hb time.Duration) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.Options{
		Name: label, Dialer: fab.Dialer(label),
		DialTimeout: 500 * time.Millisecond, CallTimeout: 2 * time.Second,
		WriteTimeout:  500 * time.Millisecond,
		RetryAttempts: 6, RetryBackoff: time.Millisecond,
		RetryBackoffMax:   10 * time.Millisecond,
		HeartbeatInterval: hb, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestCorruptedFrameInboundCountedAndReset: a sample frame whose bytes are
// damaged on the wire must never be decoded — the CRC (or framing) catches
// it, the corrupt_frames counter records it, and the connection resets so
// the desynced stream cannot poison later frames. The client then recovers
// on a fresh connection.
func TestCorruptedFrameInboundCountedAndReset(t *testing.T) {
	fab := faultnet.NewFabric(21)
	defer fab.Close()
	_, ns := startFabricNet(t, fab, "srv:1", Options{})
	c := fabricClient(t, fab, "corrupter", "srv:1", -1)

	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Arm on the very next fabric write: the client's next sample frame
	// takes a seeded byte flip on its way in.
	fab.ArmAt(fab.Ops()+1, faultnet.Fault{Kind: faultnet.FaultCorrupt})
	if err := c.InjectSample("temp", "23"); err != nil {
		t.Fatal(err)
	}

	dl := time.Now().Add(5 * time.Second)
	for ns.Wire.CorruptFrames.Load() == 0 {
		if time.Now().After(dl) {
			t.Fatalf("corrupt frame never counted (decode errors %d)", ns.Wire.DecodeErrors.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if ns.Wire.DecodeErrors.Load() == 0 {
		t.Error("corrupt frame not folded into decode_errors")
	}
	// The damaged frame was never decoded as a sample.
	if got := ns.Wire.SamplesIn.Load(); got != 1 {
		t.Errorf("damaged sample decoded anyway: wire SamplesIn = %d, want 1", got)
	}
	// The connection was reset, not kept on a desynced stream.
	for ns.Wire.ConnsClosed.Load() == 0 {
		if time.Now().After(dl) {
			t.Fatal("damaged connection never reset")
		}
		time.Sleep(time.Millisecond)
	}

	// Recovery: a fresh connection carries traffic again.
	var err error
	for i := 0; i < 200; i++ {
		if err = c.InjectSample("temp", "25"); err == nil {
			if err = c.Flush(); err == nil {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("client never recovered after the reset: %v", err)
	}
	if c.Stats.Redials.Load() == 0 {
		t.Error("no redial recorded after the server reset the damaged connection")
	}
	r, err := c.Query(client.Query{Query: "temp_q", Candidate: "25"})
	if err != nil || !r.Match {
		t.Fatalf("post-recovery query: match=%v err=%v", r.Match, err)
	}
}

// TestCorruptedFrameOutboundCountedAndRotated: byte damage in the other
// direction — a server response corrupted in flight — must hit the client's
// framing checks, count into Stats.CorruptFrames, and rotate the
// connection; the in-flight query retries on the fresh connection and
// still succeeds.
func TestCorruptedFrameOutboundCountedAndRotated(t *testing.T) {
	fab := faultnet.NewFabric(22)
	defer fab.Close()
	startFabricNet(t, fab, "srv:1", Options{})
	c := fabricClient(t, fab, "victim", "srv:1", -1)

	if err := c.InjectSample("temp", "25"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// The wire is quiet: op+1 is the client's query frame, op+2 the
	// server's result — arm the flip for the response.
	fab.ArmAt(fab.Ops()+2, faultnet.Fault{Kind: faultnet.FaultCorrupt})
	r, err := c.Query(client.Query{Query: "temp_q", Candidate: "25"})
	if err != nil {
		t.Fatalf("query through a corrupted result never recovered: %v", err)
	}
	if !r.Match {
		t.Fatalf("post-rotate query result: %+v", r)
	}
	if fired, _ := fab.Fired(); !fired {
		t.Fatal("armed corruption never fired")
	}
	if c.Stats.CorruptFrames.Load() == 0 {
		t.Fatal("client never counted the damaged inbound frame")
	}
	if c.Stats.Redials.Load() == 0 {
		t.Error("client kept reading a desynced connection instead of rotating")
	}
}
