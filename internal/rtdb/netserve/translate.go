package netserve

import (
	"rtc/internal/deadline"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// Translate maps a wire query's client-relative deadline envelope onto the
// server's chronon frame, deciding at the same time whether the query is
// already dead on arrival.
//
// The rule (DESIGN.md §9): the client issued the query at its own instant
// 0 with relative deadline D and has consumed E chronons getting it here
// (queueing, retries — each attempt re-stamps E). The server anchors the
// remainder at the arrival chronon:
//
//	remaining = D − E            (saturating at 0)
//	U'(t)     = U(t + E)         (decay shifted so its origin stays the
//	                              client's issue instant)
//
// Expired on arrival — rejected unevaluated, accounted a miss — is exactly
// the §4.1 admission predicate evaluated at t = 0 with the knowledge that
// usefulness is non-increasing: the deadline has passed (E ≥ D) and even
// serving instantaneously could not reach MinUseful. For firm queries
// usefulness after the deadline is 0 (equation (2)), so E ≥ D alone
// decides; a soft query may still be worth serving if its decayed
// usefulness clears MinUseful.
//
// Boundary cases are part of the contract: D = 0 on a deadline-carrying
// query is expired the instant it is issued (rel ≥ 0 = D always holds);
// D = 2⁶⁴−1 never expires on any feasible horizon and must not overflow.
func Translate(q rtwire.Query) (qr server.QueryRequest, expired bool) {
	qr = server.QueryRequest{
		Query:     q.Query,
		Candidate: q.Candidate,
		Kind:      q.Kind,
		MinUseful: q.MinUseful,
	}
	if q.Kind == deadline.None {
		return qr, false
	}

	late := q.Elapsed >= q.Deadline
	remaining := timeseq.Time(0)
	if !late {
		remaining = q.Deadline - q.Elapsed
	}
	qr.Deadline = remaining

	u := q.Decay.Func(q.Deadline)
	if u != nil {
		if e := q.Elapsed; e > 0 {
			inner := u
			qr.U = func(t timeseq.Time) uint64 { return inner(t + e) }
		} else {
			qr.U = u
		}
	}

	if late {
		// Usefulness already decayed to its arrival value; non-increase
		// makes this the best any evaluation could still achieve.
		arrival := uint64(0)
		if q.Kind == deadline.Soft && qr.U != nil {
			arrival = qr.U(0)
		}
		if q.MinUseful == 0 || arrival < q.MinUseful {
			return qr, true
		}
	}
	return qr, false
}
