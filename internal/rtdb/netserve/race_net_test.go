package netserve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtwire"
)

// TestNetRaceHammer throws 32 concurrent clients at one loopback listener
// — samples, firm and soft queries, as-of reads, metrics fetches, flushes,
// all interleaved — and then checks that the conservation laws survived
// the trip over TCP: every query submission accounted exactly once, every
// accepted sample applied, every accepted connection closed. Run it under
// -race; that is its whole point.
func TestNetRaceHammer(t *testing.T) {
	const (
		clients = 32
		opsPer  = 40
	)
	cfg := testConfig()
	cfg.Sessions = clients
	cfg.QueueDepth = 16
	s, ns, addr := startNet(t, cfg, Options{})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("hammer-%d", id)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for op := 0; op < opsPer; op++ {
				switch op % 8 {
				case 0, 1, 2:
					if err := c.InjectSample("temp", fmt.Sprint(15+op%10)); err != nil &&
						!errors.Is(err, client.ErrBackpressure) {
						errs <- err
						return
					}
				case 3, 4:
					_, err := c.Query(client.Query{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
					})
					if err != nil && !errors.Is(err, client.ErrBackpressure) {
						errs <- err
						return
					}
				case 5:
					_, err := c.Query(client.Query{
						Query: "temp_q", Kind: deadline.Soft, Deadline: 1 << 20,
						MinUseful: 1, Decay: rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 8},
					})
					if err != nil && !errors.Is(err, client.ErrBackpressure) {
						errs <- err
						return
					}
				case 6:
					if _, _, _, err := c.AsOf("temp", 1); err != nil {
						errs <- err
						return
					}
				case 7:
					if _, err := c.Metrics(); err != nil {
						errs <- err
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)

	w := ns.Wire.Snapshot()
	if w.ConnsAccepted != w.ConnsClosed+w.ConnsRefused {
		t.Errorf("connection conservation: accepted %d != closed %d + refused %d",
			w.ConnsAccepted, w.ConnsClosed, w.ConnsRefused)
	}
	if w.QueriesIn == 0 || w.SamplesIn == 0 {
		t.Errorf("hammer did no work: %+v", w)
	}
	if w.DecodeErrors != 0 {
		t.Errorf("decode errors on a clean loopback: %d", w.DecodeErrors)
	}
}

// TestDrainMidFlight closes the listener while 8 clients are mid-hammer.
// The drain contract: in-flight requests finish or are cleanly refused,
// every session is flushed before its id returns to the pool, the laws
// still hold, and a dial after Close fails.
func TestDrainMidFlight(t *testing.T) {
	const clients = 8
	cfg := testConfig()
	cfg.Sessions = clients
	s, ns, addr := startNet(t, cfg, Options{})

	var wg sync.WaitGroup
	started := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{
				Name:          fmt.Sprintf("drain-%d", id),
				RetryAttempts: -1, CallTimeout: 5 * time.Second,
			})
			if err != nil {
				return // raced the close; fine
			}
			defer c.Close()
			started <- struct{}{}
			for op := 0; ; op++ {
				if err := c.InjectSample("temp", fmt.Sprint(op%30)); err != nil {
					return // connection drained out from under us
				}
				if _, err := c.Query(client.Query{
					Query: "status_q", Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
				}); err != nil && !errors.Is(err, client.ErrBackpressure) {
					return
				}
			}
		}(i)
	}

	// Let every client get at least one op in, then pull the plug.
	for i := 0; i < clients; i++ {
		<-started
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Post-drain the laws hold: Close flushed each session before
	// returning, so every accepted sample is applied.
	checkConservation(t, s)
	w := ns.Wire.Snapshot()
	if w.ConnsAccepted != w.ConnsClosed+w.ConnsRefused {
		t.Errorf("connection conservation: accepted %d != closed %d + refused %d",
			w.ConnsAccepted, w.ConnsClosed, w.ConnsRefused)
	}

	// The drained listener accepts no one.
	if _, err := client.Dial(addr, client.Options{
		RetryAttempts: -1, DialTimeout: 500 * time.Millisecond,
	}); err == nil {
		t.Error("dial after Close succeeded")
	}
}
