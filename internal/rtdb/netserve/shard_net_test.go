package netserve

import (
	"fmt"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

// shardNetSpec builds a sharded-deployment spec: n images, a shared
// invariant, and a per-object point query, with the query-home map the
// router uses for placement.
func shardNetSpec(n int) (server.Config, map[string]string) {
	sp := rtdb.Spec{Invariants: map[string]rtdb.Value{"limit": "50"}}
	cat := rtdb.Catalog{}
	home := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		sp.Images = append(sp.Images, &rtdb.ImageObject{Name: name, Period: 5})
		q := "q-" + name
		cat[q] = func(name string) func(*rtdb.View) []rtdb.Value {
			return func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest(name); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			}
		}(name)
		home[q] = name
	}
	return server.Config{Spec: sp, Catalog: cat}, home
}

// startShardSet stands up a sharded deployment behind one listener per
// shard and returns the per-shard addresses.
func startShardSet(t *testing.T, shards int, logs []*wal.Log) (*server.ShardedServer, []string) {
	t.Helper()
	cfg, home := shardNetSpec(4 * shards)
	ss, err := server.NewSharded(server.ShardedConfig{
		Base: cfg, Shards: shards, Logs: logs, QueryHome: home,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	set := NewShardSet(ss, Options{
		HeartbeatInterval: 25 * time.Millisecond,
		ReplBatch:         4, ReplWindow: 16, TailBuffer: 64,
	})
	addrs := make([]string, len(set))
	for i, ns := range set {
		a, err := ns.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a.String()
	}
	t.Cleanup(func() {
		for _, ns := range set {
			_ = ns.Close()
		}
		ss.Stop()
	})
	return ss, addrs
}

// TestShardSetWelcomeRouting: every listener of the set announces its
// (shard, shards) placement in the Welcome, and a client routing objects
// with rtwire.ShardOf — the client-side half of the placement contract —
// lands every sample on the shard that owns it.
func TestShardSetWelcomeRouting(t *testing.T) {
	const shards = 4
	ss, addrs := startShardSet(t, shards, nil)

	clients := make([]*client.Client, shards)
	for i, addr := range addrs {
		c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("route-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if c.Shards() != shards || c.Shard() != uint64(i) {
			t.Fatalf("listener %d announced shard %d/%d, want %d/%d", i, c.Shard(), c.Shards(), i, shards)
		}
	}

	// Client-side placement: route every object to its owner's listener,
	// then read it back through its home-shard query.
	for i := 0; i < 4*shards; i++ {
		obj := fmt.Sprintf("obj-%02d", i)
		owner := clients[0].ShardFor(obj)
		if want := uint64(rtwire.ShardOf(obj, shards)); owner != want {
			t.Fatalf("client places %q on shard %d, rtwire.ShardOf says %d", obj, owner, want)
		}
		for s, c := range clients {
			if got := c.Owns(obj); got != (uint64(s) == owner) {
				t.Fatalf("shard %d Owns(%q) = %v, owner is %d", s, obj, got, owner)
			}
		}
		if err := clients[owner].InjectSample(obj, fmt.Sprintf("%d", 100+i)); err != nil {
			t.Fatal(err)
		}
		if err := clients[owner].Flush(); err != nil {
			t.Fatal(err)
		}
		res, err := clients[owner].Query(client.Query{
			Query: "q-" + obj, Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != 1 || res.Answers[0] != fmt.Sprintf("%d", 100+i) {
			t.Fatalf("object %q read back %v through shard %d", obj, res.Answers, owner)
		}
	}

	// Every shard did real work: the keyspace is wide enough that no
	// listener sat idle.
	for i := 0; i < shards; i++ {
		if m := ss.Shard(i).Metrics.Snapshot(); m.SamplesApplied == 0 {
			t.Errorf("shard %d applied no samples", i)
		}
	}
}

// TestShardMetricsRows pins the rtdbload contract on a sharded metrics
// table: the shard identity arrives as new "shard"/"shards" rows while
// every existing row keeps its name — in particular the by-name wal_seq
// durability lookup (cmd/rtdbload) must resolve unchanged. The unsharded
// listener must NOT grow the label rows (byte-stable degrade).
func TestShardMetricsRows(t *testing.T) {
	const shards = 2
	logs := make([]*wal.Log, shards)
	for i := range logs {
		l, err := wal.Open(wal.Options{Dir: "wal", FS: faultfs.NewMem(uint64(i + 1)), Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	_, addrs := startShardSet(t, shards, logs)

	for i, addr := range addrs {
		c, err := client.Dial(addr, client.Options{Name: "rows"})
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.Metrics()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		mm := m.Map()
		if got, ok := mm["shard"]; !ok || got != uint64(i) {
			t.Fatalf("listener %d: shard row = %d (present=%v), want %d", i, got, ok, i)
		}
		if got := mm["shards"]; got != shards {
			t.Fatalf("listener %d: shards row = %d, want %d", i, got, shards)
		}
		// The rtdbload durability lookup: wal_seq resolves by name and
		// reflects the shard's own WAL (the spec prologue alone appends).
		if seq, ok := mm["wal_seq"]; !ok || seq == 0 {
			t.Fatalf("listener %d: wal_seq row missing or zero (present=%v, value=%d)", i, ok, seq)
		}
		if _, ok := mm["queries_in"]; !ok {
			t.Fatalf("listener %d: base row queries_in lost its name", i)
		}
	}

	// Unsharded degrade: a plain listener's table has no label rows.
	cfg, _ := shardNetSpec(2)
	_, _, addr := startNet(t, cfg, Options{})
	c, err := client.Dial(addr, client.Options{Name: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Map()["shard"]; ok {
		t.Fatal("unsharded listener grew a shard row")
	}
}
