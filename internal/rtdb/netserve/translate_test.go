package netserve

import (
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// TestTranslate is the table over the deadline-translation rule: the
// client-relative deadline minus the consumed budget is anchored at
// arrival, firm queries expired on arrival are rejected unevaluated,
// soft queries survive arrival iff their decayed usefulness still clears
// MinUseful, and the boundary cases (zero deadline, 2⁶⁴−1 deadline) do
// what the contract says without overflow.
func TestTranslate(t *testing.T) {
	maxT := timeseq.Time(^uint64(0))
	hyp := rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 8}
	cases := []struct {
		name          string
		q             rtwire.Query
		wantExpired   bool
		wantRemaining timeseq.Time
	}{
		{
			name:          "no deadline passes through",
			q:             rtwire.Query{Kind: deadline.None, Deadline: 5, Elapsed: 100},
			wantExpired:   false,
			wantRemaining: 0,
		},
		{
			name:          "firm alive: budget shrinks by elapsed",
			q:             rtwire.Query{Kind: deadline.Firm, Deadline: 10, Elapsed: 4, MinUseful: 1},
			wantExpired:   false,
			wantRemaining: 6,
		},
		{
			name:        "firm expired exactly at the deadline",
			q:           rtwire.Query{Kind: deadline.Firm, Deadline: 10, Elapsed: 10, MinUseful: 1},
			wantExpired: true,
		},
		{
			name:        "firm expired past the deadline",
			q:           rtwire.Query{Kind: deadline.Firm, Deadline: 10, Elapsed: 15, MinUseful: 1},
			wantExpired: true,
		},
		{
			name:        "zero-deadline firm is dead on issue",
			q:           rtwire.Query{Kind: deadline.Firm, Deadline: 0, Elapsed: 0, MinUseful: 1},
			wantExpired: true,
		},
		{
			name:          "max-uint64 deadline never expires, no overflow",
			q:             rtwire.Query{Kind: deadline.Firm, Deadline: maxT, Elapsed: 5, MinUseful: 1},
			wantExpired:   false,
			wantRemaining: maxT - 5,
		},
		{
			name: "soft below MinUseful on arrival is rejected unevaluated",
			// U(20) = 8/(20−10) = 0 < MinUseful 1.
			q:           rtwire.Query{Kind: deadline.Soft, Deadline: 10, Elapsed: 20, MinUseful: 1, Decay: hyp},
			wantExpired: true,
		},
		{
			name: "soft still useful past the deadline survives arrival",
			// U(12) = 8/(12−10) = 4 ≥ MinUseful 2; remaining clamps to 0.
			q:             rtwire.Query{Kind: deadline.Soft, Deadline: 10, Elapsed: 12, MinUseful: 2, Decay: hyp},
			wantExpired:   false,
			wantRemaining: 0,
		},
		{
			name:        "soft with no decay past the deadline is useless",
			q:           rtwire.Query{Kind: deadline.Soft, Deadline: 10, Elapsed: 12, MinUseful: 1},
			wantExpired: true,
		},
		{
			name: "soft with MinUseful 0 past the deadline is a provable miss",
			// The server's admission predicate treats MinUseful 0 as
			// "any late completion misses"; the wire layer must agree.
			q:           rtwire.Query{Kind: deadline.Soft, Deadline: 10, Elapsed: 12, MinUseful: 0, Decay: hyp},
			wantExpired: true,
		},
		{
			name: "zero-deadline soft with surviving usefulness",
			// U anchored at td=0: U(5) = 8/5 = 1 ≥ MinUseful 1.
			q:             rtwire.Query{Kind: deadline.Soft, Deadline: 0, Elapsed: 5, MinUseful: 1, Decay: hyp},
			wantExpired:   false,
			wantRemaining: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qr, expired := Translate(tc.q)
			if expired != tc.wantExpired {
				t.Fatalf("expired = %v, want %v (qr %+v)", expired, tc.wantExpired, qr)
			}
			if expired {
				return
			}
			if qr.Deadline != tc.wantRemaining {
				t.Fatalf("remaining deadline = %d, want %d", qr.Deadline, tc.wantRemaining)
			}
			if qr.Kind != tc.q.Kind || qr.MinUseful != tc.q.MinUseful {
				t.Fatalf("envelope mangled: %+v", qr)
			}
		})
	}
}

// TestTranslateShiftsDecay: the reconstructed usefulness function keeps
// the client's issue instant as its origin — U'(t) = U(t + Elapsed) — so
// the server-side relative clock and the client-side one agree about how
// decayed the answer is.
func TestTranslateShiftsDecay(t *testing.T) {
	q := rtwire.Query{
		Kind: deadline.Soft, Deadline: 10, Elapsed: 12, MinUseful: 2,
		Decay: rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 8},
	}
	qr, expired := Translate(q)
	if expired {
		t.Fatal("should survive arrival")
	}
	if qr.U == nil {
		t.Fatal("decay not reconstructed")
	}
	orig := q.Decay.Func(q.Deadline)
	for _, rel := range []timeseq.Time{0, 1, 2, 5, 100} {
		if got, want := qr.U(rel), orig(rel+q.Elapsed); got != want {
			t.Fatalf("U'(%d) = %d, want U(%d) = %d", rel, got, rel+q.Elapsed, want)
		}
	}

	// Zero elapsed: the decay is used unshifted.
	q.Elapsed = 0
	qr, _ = Translate(q)
	for _, rel := range []timeseq.Time{0, 11, 15} {
		if got, want := qr.U(rel), orig(rel); got != want {
			t.Fatalf("unshifted U'(%d) = %d, want %d", rel, got, want)
		}
	}
}
