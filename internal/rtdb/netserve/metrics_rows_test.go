package netserve

import (
	"testing"

	"rtc/internal/faultfs"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/server"
)

// fetchMetricRows dials addr and returns the metrics table by name.
func fetchMetricRows(t *testing.T, addr string) map[string]uint64 {
	t.Helper()
	c, err := client.Dial(addr, client.Options{Name: "rows-probe"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	return m.Map()
}

// TestMetricsDurabilityRows: the wire metrics of a WAL-backed primary must
// carry the durability coordinates failover tooling reads — wal_seq (the
// durable tail a promoted node is checked against), epoch (the fencing
// coordinate), and repl_durable (the follower-acked watermark). rtdbload's
// zero-lost-acked-writes assertion dereferences these by name; losing a row
// silently turns the durability check into a hard failure after failover.
func TestMetricsDurabilityRows(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), FS: faultfs.OS{}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, _, addr := startNet(t, server.Config{Sessions: 2, Log: l}, Options{})

	mm := fetchMetricRows(t, addr)
	for _, name := range []string{"wal_seq", "wal_durable", "epoch", "repl_durable"} {
		if _, ok := mm[name]; !ok {
			t.Errorf("WAL-backed primary metrics missing %q (got %d rows)", name, len(mm))
		}
	}
	if got := mm["epoch"]; got != l.Epoch() {
		t.Errorf("epoch row = %d, want %d", got, l.Epoch())
	}
	if got := mm["wal_seq"]; got != l.Seq() {
		t.Errorf("wal_seq row = %d, want %d", got, l.Seq())
	}
	// No window is open (Sync-off log), so the durable tail equals the tail.
	if got := mm["wal_durable"]; got != mm["wal_seq"] {
		t.Errorf("wal_durable row = %d, want wal_seq %d", got, mm["wal_seq"])
	}
}

// TestMetricsFaultPathRows: every wire-hardening drop path reports under a
// pinned row name — corrupt frames reset on CRC damage, write timeouts
// evict dead-weight readers, repl stall evictions cut wedged followers.
// The torture sweeps and dashboards dereference these by name to prove no
// drop path is silent; losing a row un-counts a whole failure family.
func TestMetricsFaultPathRows(t *testing.T) {
	_, _, addr := startNet(t, server.Config{Sessions: 2}, Options{})

	mm := fetchMetricRows(t, addr)
	for _, name := range []string{
		"net_corrupt_frames", "net_write_timeouts", "net_repl_stall_evictions",
		"net_decode_errors", "net_write_drops",
	} {
		if _, ok := mm[name]; !ok {
			t.Errorf("metrics frame missing pinned fault-path row %q", name)
		}
	}
}

// TestMetricsDurabilityRowsNoWAL: an ephemeral (WAL-less) server still
// reports epoch and repl_durable; wal_seq is rightly absent because there
// is no durable tail to advertise.
func TestMetricsDurabilityRowsNoWAL(t *testing.T) {
	_, _, addr := startNet(t, server.Config{Sessions: 2}, Options{})

	mm := fetchMetricRows(t, addr)
	for _, name := range []string{"epoch", "repl_durable"} {
		if _, ok := mm[name]; !ok {
			t.Errorf("ephemeral server metrics missing %q", name)
		}
	}
	if _, ok := mm["wal_seq"]; ok {
		t.Error("ephemeral server advertises wal_seq with no WAL behind it")
	}
}
