package netserve

import (
	"testing"
	"time"

	"rtc/internal/faultnet"
	"rtc/internal/rtdb/client"
)

// TestHeartbeatOneWayPartition pins the two halves of the watchdog
// contract against a genuine half-open socket: one direction of the
// connection is blackholed (writes look like success, nothing arrives)
// while the other keeps flowing, and whichever side stops hearing frames
// must cut the connection within three heartbeat intervals.
//
//   - client→server blackholed: the client's beacons vanish, the server
//     still writes fine — only its inbound-silence bound
//     (min(IdleTimeout, 3×HeartbeatInterval)) can detect the loss.
//   - server→client blackholed: heartbeat echoes vanish, the client's
//     watchdog (3 intervals without an inbound frame, checked every
//     interval/4) cuts and rotates.
func TestHeartbeatOneWayPartition(t *testing.T) {
	const iv = 60 * time.Millisecond
	cases := []struct {
		name string
		dir  faultnet.Direction
		cut  func(c *client.Client, ns *Server) bool
		what string
	}{
		{
			name: "client-to-server-blackholed",
			dir:  faultnet.Direction{From: "hb", To: "srv:1"},
			cut: func(_ *client.Client, ns *Server) bool {
				return ns.Wire.ConnsClosed.Load() >= 1
			},
			what: "server idle watchdog",
		},
		{
			name: "server-to-client-blackholed",
			dir:  faultnet.Direction{From: "srv:1", To: "hb"},
			cut: func(c *client.Client, _ *Server) bool {
				return c.Stats.HeartbeatTimeouts.Load() >= 1
			},
			what: "client heartbeat watchdog",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fab := faultnet.NewFabric(7)
			defer fab.Close()
			_, ns := startFabricNet(t, fab, "srv:1", Options{HeartbeatInterval: iv})
			c := fabricClient(t, fab, "hb", "srv:1", iv)
			if err := c.InjectSample("temp", "21"); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}

			start := time.Now()
			fab.PartitionNow(tc.dir)
			// 3 intervals is the contract; the slack absorbs scheduler
			// jitter on loaded CI, not a looser bound.
			dl := start.Add(3*iv + 2*time.Second)
			for !tc.cut(c, ns) {
				if time.Now().After(dl) {
					t.Fatalf("%s never cut the half-open connection", tc.what)
				}
				time.Sleep(2 * time.Millisecond)
			}
			elapsed := time.Since(start)
			if elapsed < 2*iv {
				t.Fatalf("%s cut after %v — before the silence bound; that is an error path, not the watchdog", tc.what, elapsed)
			}
			if elapsed > 3*iv+time.Second {
				t.Errorf("%s took %v, want ≈3 intervals (%v)", tc.what, elapsed, 3*iv)
			}
			fab.Heal()
			_ = c.Close()
		})
	}
}
