package torture

import (
	"testing"
)

// TestPartitionSweepShort is the tier-1 bounded variant: a strided walk
// over the fabric's write ops with every fault family represented.
func TestPartitionSweepShort(t *testing.T) {
	rep := Config{Seed: 1, Events: 40, Stride: 29, Logf: t.Logf}.PartitionSweep()
	report(t, rep)
}

// TestPartitionSweepFull arms a network fault at every single fabric
// write op of the full workload — the acceptance bar is ≥ 300 points.
func TestPartitionSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full partition sweep is minutes of work; run without -short")
	}
	rep := Config{Seed: 1, Stride: 1, Logf: t.Logf}.PartitionSweep()
	report(t, rep)
	if rep.Points < 300 {
		t.Fatalf("full sweep exercised only %d fault points, want >= 300", rep.Points)
	}
}

// TestPartitionPointRepro pins one fault point the way `rttorture -mode
// partition -at K` would replay it.
func TestPartitionPointRepro(t *testing.T) {
	rep := Config{Seed: 1, Events: 40, At: 23}.PartitionSweep()
	if rep.Points != 1 {
		t.Fatalf("At should pin exactly one point, got %d", rep.Points)
	}
	report(t, rep)
}
